package protocol

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/txtrace"
)

// runTraced feeds a script through a connection with a span buffer bound, the
// way the server front end wires every connection.
func runTraced(t *testing.T, c *engine.Cache, connID uint64, script string) string {
	t.Helper()
	d := &duplex{in: bytes.NewBufferString(script), out: &bytes.Buffer{}}
	pc := NewConn(c.NewWorker(), d)
	pc.SetSpans(txtrace.NewConnSpans(c.Tracer(), connID))
	if err := pc.Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return d.out.String()
}

// TestStatsSlowlog drives the `stats slowlog` text surface across tracing
// modes and checks the flight-recorder lines carry the span identity.
func TestStatsSlowlog(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()

	// Mode off: header only, zero requests traced (Begin stayed false).
	out := runTraced(t, c, 1, "set foo 0 0 3\r\nbar\r\nget foo\r\nstats slowlog\r\n")
	if statValue(out, "trace_mode") != "off" || statValue(out, "trace_requests") != "0" {
		t.Fatalf("stats slowlog with tracing off:\n%s", out)
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("stats slowlog missing END:\n%s", out)
	}

	// Full mode: every request is traced and kept.
	c.EnableTxTrace(txtrace.ModeFull)
	out = runTraced(t, c, 2, "set foo 0 0 3\r\nbar\r\nget foo\r\nstats slowlog\r\n")
	if statValue(out, "trace_mode") != "full" {
		t.Fatalf("trace_mode:\n%s", out)
	}
	if v := statValue(out, "trace_requests"); v == "0" || v == "" {
		t.Fatalf("trace_requests = %q with full tracing:\n%s", v, out)
	}
	if v := statValue(out, "trace_kept"); v == "0" || v == "" {
		t.Fatalf("trace_kept = %q with full tracing:\n%s", v, out)
	}
	if statValue(out, "slowlog_len") == "" || statValue(out, "slowlog_dropped") == "" {
		t.Fatalf("slowlog gauges missing:\n%s", out)
	}

	// Force a pathological span: RetryK=1 means the first abort-retry chain
	// is captured. A conflict is not guaranteed on an idle cache, so inject
	// one through the tracer directly is not possible here — instead check
	// the spans the full-mode run kept are visible via the recent ring.
	if got := len(c.Tracer().Recent()); got == 0 {
		t.Fatal("full-mode requests left no kept spans")
	}
	for _, sp := range c.Tracer().Recent() {
		if sp.Conn != 2 {
			t.Fatalf("span %d attributed to conn %d, want 2", sp.ID, sp.Conn)
		}
		if sp.Keep != "full" && sp.Keep != "retries" && sp.Keep != "serialized" && sp.Keep != "slow" && sp.Keep != "head" {
			t.Fatalf("span keep = %q", sp.Keep)
		}
	}

	// The binary protocol prefixes its span names.
	c.Tracer().Reset()
	bin := binGet("foo")
	d := &duplex{in: bytes.NewBuffer(bin), out: &bytes.Buffer{}}
	pc := NewConn(c.NewWorker(), d)
	pc.SetSpans(txtrace.NewConnSpans(c.Tracer(), 3))
	if err := pc.Serve(); err != nil {
		t.Fatalf("binary Serve: %v", err)
	}
	recent := c.Tracer().Recent()
	if len(recent) == 0 || recent[0].Cmd != "binary/get" {
		t.Fatalf("binary span cmd: %+v", recent)
	}
}

// TestStatsResetClearsSlowlog is the satellite reset contract: `stats reset`
// clears the tracer's rings and time series exactly once, alongside the
// observer aggregates, while the mode survives.
func TestStatsResetClearsSlowlog(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	c.EnableTxTrace(txtrace.ModeFull)

	out := runTraced(t, c, 1, "set foo 0 0 3\r\nbar\r\nget foo\r\nstats slowlog\r\n")
	if statValue(out, "trace_kept") == "0" {
		t.Fatalf("no spans kept before reset:\n%s", out)
	}

	out = runTraced(t, c, 2, "stats reset\r\nstats slowlog\r\n")
	if !strings.HasPrefix(out, "RESET\r\n") {
		t.Fatalf("no RESET reply:\n%s", out)
	}
	if v := statValue(out, "slowlog_len"); v != "0" {
		t.Errorf("slowlog_len = %q after stats reset, want 0", v)
	}
	// The reset and slowlog requests themselves run traced, so their own
	// spans may land after the clear; nothing from before the reset survives.
	for _, sp := range c.Tracer().Recent() {
		if sp.Cmd != "stats" {
			t.Errorf("pre-reset span (%s) survived stats reset", sp.Cmd)
		}
	}
	// Mode survives: reset clears data, not configuration.
	if statValue(out, "trace_mode") != "full" {
		t.Errorf("trace_mode after reset:\n%s", out)
	}
	// The stats reset line itself ran inside a traced request, so the request
	// counter keeps counting — only the rings were cleared.
	if c.Tracer().Requests() == 0 {
		t.Error("request ordinal stream rewound by stats reset")
	}
}

// binGet builds one binary-protocol GET frame.
func binGet(key string) []byte {
	frame := make([]byte, 24+len(key))
	frame[0] = binMagicReq
	frame[1] = OpGet
	frame[2] = byte(len(key) >> 8)
	frame[3] = byte(len(key))
	frame[11] = byte(len(key)) // bodyLen (no extras)
	copy(frame[24:], key)
	return frame
}
