package stm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialLock is the global readers/writer lock of the GCC TM runtime. Every
// speculative transaction holds it in read mode for its whole lifetime;
// serial-irrevocable transactions hold it in write mode. The single shared
// cache line it occupies is the bottleneck Figure 10 of the paper removes.
//
// When disabled (Config.NoSerialLock), the read side is free and the write
// side degrades to a plain mutex that excludes only other serial transactions.
type serialLock struct {
	state    atomic.Int64  // reader count; writerBit set while a writer owns or waits
	seq      atomic.Uint64 // write-acquisition count; HTM subscribes to this
	disabled bool
	fallback sync.Mutex // write-side mutual exclusion when disabled
}

const writerBit int64 = 1 << 62

// RLock acquires the lock in read mode (transaction begin).
func (l *serialLock) RLock() {
	if l.disabled {
		return
	}
	spins := 0
	for {
		s := l.state.Load()
		if s&writerBit == 0 {
			if l.state.CompareAndSwap(s, s+1) {
				return
			}
			continue
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// RUnlock releases the read side (transaction commit or abort).
func (l *serialLock) RUnlock() {
	if l.disabled {
		return
	}
	l.state.Add(-1)
}

// Lock acquires the lock in write mode (serial transaction begin). Each
// acquisition bumps the subscription sequence, aborting in-flight emulated
// hardware transactions at their commit check.
func (l *serialLock) Lock() {
	if l.disabled {
		l.fallback.Lock()
		l.seq.Add(1)
		return
	}
	// Announce writer intent, then drain readers. Competing writers spin on
	// the bit; there is at most a handful (serialized transactions), so
	// fairness is not a concern here, matching libitm.
	spins := 0
	for {
		s := l.state.Load()
		if s&writerBit == 0 && l.state.CompareAndSwap(s, s|writerBit) {
			break
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
	spins = 0
	for l.state.Load() != writerBit {
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
	l.seq.Add(1)
}

// TryLock attempts a bounded write-mode acquisition: it spins at most the
// given number of iterations first for the writer bit and then again for the
// reader drain. On failure it leaves the lock exactly as it found it —
// including clearing a writer bit it had already claimed — and does NOT bump
// the subscription sequence, so emulated hardware transactions in flight are
// not doomed by an acquisition that never happened. The multi-domain commit
// path uses it to take later shard domains without risking a convoy behind a
// long-running serial transaction.
func (l *serialLock) TryLock(spins int) bool {
	if l.disabled {
		if !l.fallback.TryLock() {
			return false
		}
		l.seq.Add(1)
		return true
	}
	claimed := false
	for i := 0; i < spins; i++ {
		s := l.state.Load()
		if s&writerBit == 0 && l.state.CompareAndSwap(s, s|writerBit) {
			claimed = true
			break
		}
	}
	if !claimed {
		return false
	}
	for i := 0; i < spins; i++ {
		if l.state.Load() == writerBit {
			l.seq.Add(1)
			return true
		}
		if i > 64 {
			runtime.Gosched()
		}
	}
	// Reader drain timed out: retract the claim so blocked readers proceed.
	l.state.Add(-writerBit)
	return false
}

// subscribe waits until no writer is active and returns the current
// acquisition sequence (hardware-transaction begin).
func (l *serialLock) subscribe() uint64 {
	spins := 0
	for l.state.Load()&writerBit != 0 {
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
	return l.seq.Load()
}

// trySubscribe returns the current acquisition sequence if no writer is
// active, without waiting. Callers that publish state before subscribing
// (beginSpeculative) use it so the publish/subscribe order is visible: a
// failure means a writer holds or awaits the lock right now.
func (l *serialLock) trySubscribe() (uint64, bool) {
	if l.state.Load()&writerBit != 0 {
		return 0, false
	}
	return l.seq.Load(), true
}

// waitNoWriter spins until no writer holds or awaits the lock.
func (l *serialLock) waitNoWriter() {
	spins := 0
	for l.state.Load()&writerBit != 0 {
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// stillSubscribed reports whether no serial writer ran or is running since
// the given sequence (hardware-transaction commit check).
func (l *serialLock) stillSubscribed(seq uint64) bool {
	return l.seq.Load() == seq && l.state.Load()&writerBit == 0
}

// Unlock releases the write side.
func (l *serialLock) Unlock() {
	if l.disabled {
		l.fallback.Unlock()
		return
	}
	l.state.Add(-writerBit)
}
