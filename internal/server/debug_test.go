package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestDebugEndpoint drives the debug handler against a live cache: expvar
// JSON, Prometheus text, the pprof index, and the tracing toggle.
func TestDebugEndpoint(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	ts := httptest.NewServer(NewDebugHandler(c))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Seed some traffic with tracing on.
	if _, err := http.Post(ts.URL+"/debug/tm?enable=1", "", nil); err != nil {
		t.Fatal(err)
	}
	w := c.NewWorker()
	w.Set([]byte("k"), 0, 0, []byte("v"))
	w.Get([]byte("k"))

	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars struct {
		Branch string `json:"branch"`
		TM     struct {
			Enabled bool              `json:"enabled"`
			Kinds   map[string]uint64 `json:"kinds"`
		} `json:"tm"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars.Branch != "it-oncommit" || !vars.TM.Enabled || vars.TM.Kinds["commit"] == 0 {
		t.Fatalf("/debug/vars content: %+v\n%s", vars, body)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"mc_curr_items 1",
		"tm_tracing_enabled 1",
		`tm_events_total{kind="commit"}`,
		"# TYPE tm_phase_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	code, body = get("/debug/tm")
	if code != 200 || !strings.Contains(body, "enabled=true") ||
		!strings.Contains(body, "tx observability report") {
		t.Fatalf("/debug/tm = %d:\n%s", code, body)
	}

	// Toggle off, then reset: recording stops, aggregates clear.
	if _, err := http.Post(ts.URL+"/debug/tm?enable=0&reset=1", "", nil); err != nil {
		t.Fatal(err)
	}
	_, body = get("/debug/tm")
	if !strings.Contains(body, "enabled=false") {
		t.Fatalf("tracing still enabled:\n%s", body)
	}
	_, body = get("/debug/vars")
	if strings.Contains(body, `"commit"`) {
		t.Fatalf("kind counters survived reset:\n%s", body)
	}
}

// TestDebugFingerprintEndpoint drives the fingerprint debug surface: the
// toggle endpoint, the JSON snapshot with transport telemetry, /debug/vars
// integration, and the Prometheus names mctop's dashboards alias.
func TestDebugFingerprintEndpoint(t *testing.T) {
	s, c := startFPServer(t)
	ts := httptest.NewServer(NewDebugHandlerServer(c, s))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	w := c.NewWorker()
	w.Set([]byte("dbg-hot"), 0, 0, []byte("v"))
	for i := 0; i < 30; i++ {
		w.Get([]byte("dbg-hot"))
	}

	code, body := get("/debug/fingerprint")
	if code != 200 {
		t.Fatalf("/debug/fingerprint = %d", code)
	}
	var snap struct {
		Enabled     bool `json:"enabled"`
		Fingerprint struct {
			Shards []struct {
				Ops     uint64 `json:"ops"`
				HotKeys []struct {
					Key string `json:"key"`
				} `json:"hot_keys"`
			} `json:"shards"`
		} `json:"fingerprint"`
		EventLoop struct {
			Workers int `json:"workers"`
		} `json:"eventloop"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/fingerprint not JSON: %v\n%s", err, body)
	}
	if !snap.Enabled || len(snap.Fingerprint.Shards) != 4 || snap.EventLoop.Workers <= 0 {
		t.Fatalf("/debug/fingerprint content: %+v", snap)
	}
	found := false
	for _, sh := range snap.Fingerprint.Shards {
		for _, hk := range sh.HotKeys {
			if hk.Key == "dbg-hot" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("hot key missing from /debug/fingerprint:\n%s", body)
	}

	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, `"fingerprint_enabled":true`) && !strings.Contains(body, `"fingerprint_enabled": true`) {
		t.Fatalf("/debug/vars missing fingerprint_enabled (%d):\n%.400s", code, body)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`fp_shard_ops{shard="0"}`,
		"event_overflow_spills_total",
		"poller_wakeups_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Toggle off, then on again, through the endpoint.
	if resp, err := http.Post(ts.URL+"/debug/fingerprint?enable=0", "", nil); err != nil || resp.StatusCode != 200 {
		t.Fatalf("disable toggle: %v %v", err, resp)
	}
	if c.FingerprintEnabled() {
		t.Fatal("POST enable=0 did not disable sampling")
	}
	if resp, err := http.Post(ts.URL+"/debug/fingerprint?enable=1", "", nil); err != nil || resp.StatusCode != 200 {
		t.Fatalf("enable toggle: %v %v", err, resp)
	}
	if !c.FingerprintEnabled() {
		t.Fatal("POST enable=1 did not re-enable sampling")
	}
}
