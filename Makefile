GO ?= go

.PHONY: all build vet test check torture-smoke torture profile

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the tier-1 gate plus the robustness smoke: everything builds, vets
# clean, passes its tests, and survives shrunken fault schedules under the
# race detector.
check: build vet test torture-smoke

# torture-smoke runs the seeded fault-injection harness in its shrunken
# (-torture.short) form. The flag is registered per test package, so only the
# packages that define it may be targeted here.
torture-smoke:
	$(GO) test -race -run Torture -count=1 ./internal/engine ./internal/server -torture.short

# torture runs the full schedules: 3 seeds per branch family in-process plus
# the end-to-end network runs. Slower; the nightly-CI shape.
torture:
	$(GO) test -race -run Torture -count=1 ./internal/engine ./internal/server

# profile runs a short mcbench with transaction observability on and prints
# the serialization causes, conflict heat map, and latency summary.
profile:
	$(GO) run ./cmd/mcbench -profile it-oncommit -ops 2000 -threads 4
