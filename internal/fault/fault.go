// Package fault is a deterministic, seed-reproducible fault-injection layer.
//
// The repository's robustness incidents (DESIGN.md: privatization races
// losing keys during hash expansion, publication-order bugs in assoc
// expansion, maintenance-thread starvation) were all found by accident. This
// package exists so they are provoked on purpose: subsystems expose named
// injection points, and an Injector decides — as a pure function of a seed
// and the per-point hit ordinal — whether each hit fires.
//
// Determinism contract: given the same seed and rates, the n-th hit of a
// given point always makes the same fire/no-fire decision. Goroutine
// interleaving remains the scheduler's, so a failing run is reproduced
// statistically, but the fault schedule itself is exactly replayable from the
// seed (the torture harness prints it on every failure).
//
// The package is a leaf: stm, slab, engine and server all import it, never
// the reverse. A nil *Injector means "no faults" and costs one pointer
// comparison at each site.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Point names one injection site. The catalogue below is the complete set
// wired into the repository; sites pass their own constant, so adding a point
// is adding a constant plus one call.
type Point string

const (
	// STM barrier and commit points (internal/stm/tx.go). Fires only inside
	// speculative transactions — serial-irrevocable attempts are never
	// aborted (that would violate irrevocability), only delayed.
	STMReadAbort   Point = "stm.read.abort"   // forced abort in the read barrier
	STMReadDelay   Point = "stm.read.delay"   // scheduler yield in the read barrier
	STMWriteAbort  Point = "stm.write.abort"  // forced abort in the write barrier
	STMWriteDelay  Point = "stm.write.delay"  // scheduler yield in the write barrier
	STMCommitFail  Point = "stm.commit.fail"  // spurious validation failure at commit
	STMCommitDelay Point = "stm.commit.delay" // scheduler yield entering commit
	STMSerialDelay Point = "stm.serial.delay" // delay acquiring the serial lock

	// Slab allocator (internal/slab): a failed allocation forces the caller
	// onto the eviction path, creating memory pressure on demand.
	SlabAllocFail Point = "slab.alloc.fail"

	// Maintenance threads (internal/engine): delayed wakeups and
	// mid-expansion stalls, the schedules implicated in the lost-key and
	// starvation incidents.
	MaintHashDelay   Point = "maint.hash.delay"   // hash maintainer wakes late
	MaintExpandStall Point = "maint.expand.stall" // stall between expansion bulk moves
	MaintSlabDelay   Point = "maint.slab.delay"   // slab rebalancer wakes late

	// Server/protocol transport (internal/server): connection-level faults.
	ConnDrop       Point = "server.conn.drop"   // close the connection mid-command
	ConnShortRead  Point = "server.conn.shortread"  // deliver one byte per read
	ConnShortWrite Point = "server.conn.shortwrite" // truncate a reply mid-write
	ConnSlow       Point = "server.conn.slow"   // slow-client byte trickling

	// Request tracing (internal/txtrace): not a fault at all — the tracer
	// reuses the injector's deterministic per-ordinal decision as its head
	// sampler, so a trace captured at seed S keeps exactly the same request
	// set when replayed at seed S.
	TraceHeadSample Point = "trace.head.sample"
)

// StmPoints are the points meaningful for a transactional runtime.
func StmPoints() []Point {
	return []Point{STMReadAbort, STMReadDelay, STMWriteAbort, STMWriteDelay,
		STMCommitFail, STMCommitDelay, STMSerialDelay}
}

// EnginePoints are the points meaningful for any engine branch (lock-based
// branches included).
func EnginePoints() []Point {
	return []Point{SlabAllocFail, MaintHashDelay, MaintExpandStall, MaintSlabDelay}
}

// ServerPoints are the connection-level points.
func ServerPoints() []Point {
	return []Point{ConnDrop, ConnShortRead, ConnShortWrite, ConnSlow}
}

// rateScale converts a probability to the integer threshold compared against
// a 16-bit hash slice.
const rateScale = 1 << 16

type pointState struct {
	threshold uint64        // fire when hash16(seed, point, ordinal) < threshold
	hits      atomic.Uint64 // times the point was reached
	fires     atomic.Uint64 // times it fired
	hash      uint64        // precomputed point-name hash
}

// Injector decides, deterministically from its seed, which hits of which
// points fire. Configure points before the run; Fire is safe for concurrent
// use. The zero rate (point not configured) never fires.
type Injector struct {
	seed    uint64
	armed   atomic.Bool
	mu      sync.Mutex // guards points map shape (reads use the snapshot)
	points  map[Point]*pointState
	snap    atomic.Pointer[map[Point]*pointState]
}

// New returns an armed injector with no points configured.
func New(seed uint64) *Injector {
	in := &Injector{seed: seed, points: make(map[Point]*pointState)}
	in.armed.Store(true)
	in.publish()
	return in
}

// Seed returns the seed the injector was built from.
func (in *Injector) Seed() uint64 { return in.seed }

func (in *Injector) publish() {
	snap := make(map[Point]*pointState, len(in.points))
	for p, st := range in.points {
		snap[p] = st
	}
	in.snap.Store(&snap)
}

// Set configures p to fire with probability rate in [0,1]. Setting 0 removes
// the point.
func (in *Injector) Set(p Point, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rate == 0 {
		delete(in.points, p)
	} else {
		st := in.points[p]
		if st == nil {
			st = &pointState{hash: strHash(string(p))}
			in.points[p] = st
		}
		st.threshold = uint64(rate * rateScale)
	}
	in.publish()
}

// Rate returns the configured probability of p.
func (in *Injector) Rate(p Point) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[p]
	if st == nil {
		return 0
	}
	return float64(st.threshold) / rateScale
}

// Arm enables firing (the initial state).
func (in *Injector) Arm() { in.armed.Store(true) }

// Disarm stops all points from firing without losing configuration or
// counters — used between a chaos phase and its invariant-check phase.
func (in *Injector) Disarm() { in.armed.Store(false) }

// Fire reports whether this hit of p triggers its fault. The decision is
// mix(seed, point, ordinal) < threshold, so a given (seed, rates) pair
// replays the same per-point schedule.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	snap := in.snap.Load()
	st := (*snap)[p]
	if st == nil {
		return false
	}
	n := st.hits.Add(1)
	if !in.armed.Load() {
		return false
	}
	if mix(in.seed^st.hash, n)&(rateScale-1) >= st.threshold {
		return false
	}
	st.fires.Add(1)
	return true
}

// Fired returns how many times p has fired.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	snap := in.snap.Load()
	st := (*snap)[p]
	if st == nil {
		return 0
	}
	return st.fires.Load()
}

// Hits returns how many times p was reached.
func (in *Injector) Hits(p Point) uint64 {
	if in == nil {
		return 0
	}
	snap := in.snap.Load()
	st := (*snap)[p]
	if st == nil {
		return 0
	}
	return st.hits.Load()
}

// TotalFired sums fires across all points.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	snap := in.snap.Load()
	var n uint64
	for _, st := range *snap {
		n += st.fires.Load()
	}
	return n
}

// Summary renders the schedule and its activity, one point per line, sorted
// by point name — the reproduction recipe printed with every torture failure.
func (in *Injector) Summary() string {
	if in == nil {
		return "fault: disabled"
	}
	snap := in.snap.Load()
	points := make([]Point, 0, len(*snap))
	for p := range *snap {
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	out := fmt.Sprintf("fault: seed=%d\n", in.seed)
	for _, p := range points {
		st := (*snap)[p]
		out += fmt.Sprintf("  %-24s rate=%.4f hits=%d fired=%d\n",
			p, float64(st.threshold)/rateScale, st.hits.Load(), st.fires.Load())
	}
	return out
}

// RandomSchedule builds an injector whose rates over the given points are
// themselves drawn deterministically from the seed: each point is dropped
// with probability ~1/3 (so schedules differ in shape, not just intensity)
// and otherwise enabled with a rate in (0, maxRate].
func RandomSchedule(seed uint64, points []Point, maxRate float64) *Injector {
	in := New(seed)
	r := seed
	for _, p := range points {
		r = mix(r, strHash(string(p)))
		if r%3 == 0 {
			continue // dropped point
		}
		frac := float64(r>>32&0xFFFF) / 0xFFFF // (0,1]-ish
		rate := maxRate * (0.1 + 0.9*frac)
		in.Set(p, rate)
	}
	return in
}

// ---------------------------------------------------------------------------
// hashing

// mix is splitmix64 over the pair (a, b): statistically strong, allocation
// free, and a pure function of its inputs.
func mix(a, b uint64) uint64 {
	x := a + b*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
