// Command mctop is a live terminal console for a running tm-memcached
// server: it polls the stats surface (stats, stats fingerprint, stats
// tmctl, stats eventloop) at a fixed interval and renders one screen of
// per-shard workload fingerprints — decayed op counts, hot keys, abort mix,
// controller rung — plus transport queue depths and poller counters.
//
//	mctop -addr 127.0.0.1:11211
//	mctop -addr 127.0.0.1:11211 -interval 2s
//	mctop -addr 127.0.0.1:11211 -once        # one frame, no screen control
//
// Enable fingerprinting on the server first (-fingerprint, or POST
// /debug/fingerprint?enable=1); without it the per-shard table is empty.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/mctop"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11211", "server address to poll")
		interval = flag.Duration("interval", time.Second, "poll interval")
		once     = flag.Bool("once", false, "print a single frame and exit (no screen clearing)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-poll dial+query timeout")
	)
	flag.Parse()

	var prev *mctop.Frame
	for {
		cur, err := mctop.Fetch(*addr, *timeout)
		if err != nil {
			if *once {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "mctop: %v (retrying)\n", err)
			time.Sleep(*interval)
			continue
		}
		out := mctop.Render(cur, prev)
		if *once {
			fmt.Print(out)
			return
		}
		// Clear and home; plain ANSI keeps this dependency-free.
		fmt.Print("\x1b[2J\x1b[H" + out)
		prev = cur
		time.Sleep(*interval)
	}
}
