package stm

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	ok := []Config{
		{},
		{Algorithm: LazyAlg, CM: CMBackoff},
		{Algorithm: NOrec, NoSerialLock: true},
		{Algorithm: HTM, HTMCapacity: 64, HTMRetries: 3},
		{Algorithm: SerialAlg},
		{OrecBits: 30, SerializeAfter: 5, WatchdogAge: 10},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}

	bad := []struct {
		c     Config
		field string
	}{
		{Config{Algorithm: Algorithm(99)}, "Algorithm"},
		{Config{CM: ContentionManager(-1)}, "CM"},
		{Config{SerializeAfter: -1}, "SerializeAfter"},
		{Config{HourglassAfter: -2}, "HourglassAfter"},
		{Config{OrecBits: 31}, "OrecBits"},
		{Config{OrecBits: -1}, "OrecBits"},
		{Config{HTMCapacity: -1}, "HTMCapacity"},
		{Config{HTMRetries: -1}, "HTMRetries"},
		{Config{WatchdogAge: -1}, "WatchdogAge"},
		{Config{Algorithm: HTM, NoSerialLock: true}, "NoSerialLock"},
		{Config{Algorithm: SerialAlg, CM: CMHourglass}, "CM"},
		{Config{Algorithm: SerialAlg, CM: CMBackoff}, "CM"},
	}
	for _, tc := range bad {
		err := tc.c.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want %s error", tc.c, tc.field)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Validate(%+v) = %v, not an ErrInvalidConfig", tc.c, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("Validate(%+v) field = %v, want %s", tc.c, err, tc.field)
		}
	}
}
