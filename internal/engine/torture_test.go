package engine_test

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/torture"
)

// tortureShort shrinks the torture runs for quick -race smoke passes:
//
//	go test -race -run Torture -torture.short ./internal/engine
var tortureShort = flag.Bool("torture.short", false, "run shrunken torture schedules")

// tortureSeeds: three distinct schedules per branch family. Each seed draws a
// different fault-point shape and rate vector, so three seeds means three
// materially different torture runs, not three repeats.
var tortureSeeds = []uint64{1, 0xDECAFBAD, 0x5EED5EED5EED}

func runTortureFamily(t *testing.T, branches []engine.Branch) {
	t.Helper()
	for _, b := range branches {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range tortureSeeds {
				rep := torture.Run(torture.Config{
					Branch: b,
					Seed:   seed,
					Short:  *tortureShort,
				})
				if rep.Failed() {
					// Report.String embeds the seed; replay with
					// mctorture -branch <b> -seed <seed>.
					t.Errorf("%s", rep)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}

// TestTortureLockFamily covers the lock-based branches: the pthreads baseline
// and the Figure 2 semaphore restructuring.
func TestTortureLockFamily(t *testing.T) {
	runTortureFamily(t, []engine.Branch{engine.Baseline, engine.Semaphore})
}

// TestTortureIPFamily covers in-place (write-through) transactional branches
// across the staging spectrum.
func TestTortureIPFamily(t *testing.T) {
	runTortureFamily(t, []engine.Branch{engine.IP, engine.IPOnCommit, engine.IPNoLock})
}

// TestTortureITFamily covers the instrumented-volatile (IT) branches.
func TestTortureITFamily(t *testing.T) {
	runTortureFamily(t, []engine.Branch{engine.IT, engine.ITOnCommit, engine.ITNoLock})
}

// TestTortureModeFlap is the controller-swap correctness proof: seeded forced
// algorithm swaps — at least 50 per run, each quiescing its shard through the
// serial lock — while the chaos and stable phases churn a four-domain cache.
// A transaction observing mixed-algorithm state (or a swap clobbering an
// in-flight attempt's effects) surfaces as a lost or corrupted stable key, an
// unbalanced refcount, or a slab accounting mismatch in the check phase.
func TestTortureModeFlap(t *testing.T) {
	for _, b := range []engine.Branch{engine.IPOnCommit, engine.ITOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range tortureSeeds {
				rep := torture.Run(torture.Config{
					Branch:    b,
					Seed:      seed,
					Shards:    4,
					ModeFlaps: 50,
					Short:     *tortureShort,
				})
				if rep.Failed() {
					// Replay: mctorture -branch <b> -seed <seed> -shards 4 -flaps 50
					t.Errorf("%s", rep)
				} else if rep.ModeSwaps < 50 {
					t.Errorf("only %d mode swaps executed, want >= 50", rep.ModeSwaps)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}

// TestTortureSharded runs the torture schedules against a four-domain cache:
// four private hash tables expanding independently under key churn (the
// lost-key check must survive every per-shard expansion), with refcount and
// slab balance validated as the sum over shards. One lock branch and one TM
// branch cover both router paths.
func TestTortureSharded(t *testing.T) {
	for _, b := range []engine.Branch{engine.Baseline, engine.ITOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range tortureSeeds {
				rep := torture.Run(torture.Config{
					Branch: b,
					Seed:   seed,
					Shards: 4,
					Short:  *tortureShort,
				})
				if rep.Failed() {
					// Replay: mctorture -branch <b> -seed <seed> -shards 4
					t.Errorf("%s", rep)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}

// TestTortureTxn is the wire-transaction atomicity proof: concurrent
// cross-shard transfers through CommitTx's N-domain ordered commit while the
// STM and maintenance fault points fire, checked against a conserved unit
// total. A torn commit — one shard's serial domain applied, another's not —
// or a validation that passes on a stale read surfaces as a wrong ledger sum.
func TestTortureTxn(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			for _, seed := range tortureSeeds {
				rep := torture.RunTxn(torture.Config{
					Branch: engine.ITOnCommit,
					Seed:   seed,
					Shards: shards,
					Short:  *tortureShort,
				})
				if rep.Failed() {
					// Replay: mctorture -txn -branch it-oncommit -seed <seed> -shards <n>
					t.Errorf("%s", rep)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}
