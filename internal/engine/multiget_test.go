package engine

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMultiGetRoundTrip: present, missing and expired keys come back in
// order, with per-key found flags, on every branch (batched and per-key
// fallback paths alike).
func TestMultiGetRoundTrip(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		now := c.Now()
		w.Set([]byte("a"), 1, 0, []byte("va"))
		w.Set([]byte("b"), 2, 0, []byte("vb"))
		w.Set([]byte("gone"), 3, now+5, []byte("dead"))
		c.SetTime(now + 10) // "gone" is now past its expiry

		keys := [][]byte{[]byte("a"), []byte("missing"), []byte("gone"), []byte("b")}
		res := w.GetMulti(keys)
		if len(res) != len(keys) {
			t.Fatalf("GetMulti returned %d results for %d keys", len(res), len(keys))
		}
		if !res[0].Found || string(res[0].Value) != "va" || res[0].Flags != 1 || res[0].CAS == 0 {
			t.Errorf("res[a] = %+v", res[0])
		}
		if res[1].Found {
			t.Errorf("missing key reported found: %+v", res[1])
		}
		if res[2].Found {
			t.Errorf("expired key reported found: %+v", res[2])
		}
		if !res[3].Found || string(res[3].Value) != "vb" || res[3].Flags != 2 {
			t.Errorf("res[b] = %+v", res[3])
		}

		// The deferred unlink must have reclaimed the expired item: a
		// subsequent per-key get misses too, and the structure validates.
		if _, _, _, ok := w.Get([]byte("gone")); ok {
			t.Error("expired key still gettable after batched miss")
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Validate after GetMulti: %v", err)
		}
	})
}

// TestMultiGetLargeBatch spans several MultiGetBatch groups and duplicate
// keys in one call.
func TestMultiGetLargeBatch(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		const n = 3*MultiGetBatch + 5
		keys := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			k := fmt.Appendf(nil, "key-%03d", i%40) // some duplicates
			keys = append(keys, k)
			if i < 40 && i%3 != 0 {
				w.Set(k, uint32(i), 0, fmt.Appendf(nil, "value-%03d", i%40))
			}
		}
		res := w.GetMulti(keys)
		for i, k := range keys {
			want := fmt.Appendf(nil, "value-%03d", i%40)
			if res[i].Found && !bytes.Equal(res[i].Value, want) {
				t.Fatalf("res[%d] (%s) = %q, want %q", i, k, res[i].Value, want)
			}
			// Duplicates of the same key must agree within one call.
			for j := 0; j < i; j++ {
				if bytes.Equal(keys[j], k) && res[j].Found != res[i].Found {
					t.Fatalf("duplicate key %s: found=%v at %d but %v at %d", k, res[j].Found, j, res[i].Found, i)
				}
			}
		}
	})
}

// TestMultiGetUsesReadOnlyFastPath: on an atomic transactional IT branch the
// batch commits on the read-only fast path — observable as ROFastCommits —
// and counts every key in the hit/miss statistics.
func TestMultiGetUsesReadOnlyFastPath(t *testing.T) {
	c := newTestCache(t, ITOnCommit)
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	for i := 0; i < MultiGetBatch; i++ {
		w.Set(fmt.Appendf(nil, "k%02d", i), 0, 0, []byte("v"))
	}
	before := c.Runtime().Stats()
	keys := make([][]byte, MultiGetBatch)
	for i := range keys {
		keys[i] = fmt.Appendf(nil, "k%02d", i)
	}
	keys[3] = []byte("nope") // one miss in the middle
	res := w.GetMulti(keys)
	delta := c.Runtime().Stats().Sub(before)
	if delta.ROFastCommits == 0 {
		t.Errorf("batched GetMulti produced no read-only fast commits (delta %+v)", delta)
	}
	hits := 0
	for _, r := range res {
		if r.Found {
			hits++
		}
	}
	if hits != MultiGetBatch-1 {
		t.Errorf("hits = %d, want %d", hits, MultiGetBatch-1)
	}
	s := w.Stats()
	if s.GetCmds != uint64(MultiGetBatch) || s.GetHits != uint64(MultiGetBatch-1) || s.GetMisses != 1 {
		t.Errorf("stats = cmds %d hits %d misses %d", s.GetCmds, s.GetHits, s.GetMisses)
	}
}

// TestMultiGetSnapshotIsolation is the race test for batch snapshot
// isolation: a SET that lands mid-batch must not be half-visible. Reading the
// same key four times in one batch, all four results must be identical even
// while a writer loops on that key. Run under -race by the Makefile's
// batch-race target.
func TestMultiGetSnapshotIsolation(t *testing.T) {
	for _, b := range []Branch{IT, ITMax, ITLib, ITOnCommit, ITNoLock} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newTestCache(t, b)
			c.Start()
			defer c.Stop()
			key := []byte("contended")
			c.NewWorker().Set(key, 0, 0, []byte("gen-000000"))

			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c.NewWorker()
				for i := 1; !stop.Load(); i++ {
					w.Set(key, 0, 0, fmt.Appendf(nil, "gen-%06d", i))
				}
			}()

			r := c.NewWorker()
			keys := [][]byte{key, key, key, key}
			for i := 0; i < 2000; i++ {
				res := r.GetMulti(keys)
				for j := 1; j < len(res); j++ {
					if res[j].Found != res[0].Found || !bytes.Equal(res[j].Value, res[0].Value) || res[j].CAS != res[0].CAS {
						t.Errorf("batch saw two generations at once: %q (cas %d) vs %q (cas %d)",
							res[0].Value, res[0].CAS, res[j].Value, res[j].CAS)
						stop.Store(true)
						wg.Wait()
						return
					}
				}
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}

// TestMultiGetTouchesLRU: hits older than the touch interval still get their
// LRU bump, just outside the read-only batch.
func TestMultiGetTouchesLRU(t *testing.T) {
	c := newTestCache(t, ITOnCommit)
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	now := c.Now()
	w.Set([]byte("old"), 0, 0, []byte("v"))
	c.SetTime(now + 100) // far past the touch interval
	res := w.GetMulti([][]byte{[]byte("old")})
	if !res[0].Found {
		t.Fatal("old key missed")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after touch: %v", err)
	}
}
