package stm

// Hardware-TM emulation.
//
// §5 of the paper observes that "the latest version of GCC requires every
// hardware transaction to use this lock, suggesting that hardware TM will not
// achieve its full potential as long as serialized transactions are the
// common case." To let the repository exercise that claim, the HTM algorithm
// emulates best-effort hardware transactions the way GCC's RTM path uses
// them:
//
//   - speculation is free of per-access bookkeeping costs in real hardware;
//     here it reuses the orec machinery for conflict detection but imposes a
//     CAPACITY limit (HTMCapacity locations) — exceeding it is a capacity
//     abort, the defining limitation of real HTM;
//   - a hardware transaction does not acquire the serial lock; it SUBSCRIBES
//     to it: the lock's acquisition sequence number is read at begin and
//     re-checked at commit, so any serialized transaction in between aborts
//     the hardware transaction (the cache-line invalidation of the lock word
//     in real RTM);
//   - after HTMRetries consecutive aborts the transaction falls back to the
//     global lock (lock elision's fallback path) — which is exactly why
//     frequent serialization destroys HTM throughput.
//
// Statistics: capacity aborts and fallbacks are counted separately so the
// §5 claim can be measured (BenchmarkAblationHTMSerialization).

const (
	defaultHTMCapacity = 64
	defaultHTMRetries  = 3
)

// htmCapacitySignal aborts a hardware transaction whose footprint exceeded
// the capacity.
type htmCapacitySignal struct{}

// htmFootprint returns the transaction's current location footprint.
func (tx *Tx) htmFootprint() int {
	return len(tx.reads) + len(tx.owned) + len(tx.undoW) + len(tx.undoA)
}

// htmCheckCapacity aborts with a capacity signal when the footprint exceeds
// the configured limit.
func (tx *Tx) htmCheckCapacity() {
	if tx.htmFootprint() > tx.rt.cfg.HTMCapacity {
		tx.rt.stats.HTMCapacityAborts.Add(1)
		tx.noteConflict("htm capacity overflow", 0)
		panic(htmCapacitySignal{})
	}
}

// htmMarkEager publishes the thread's eagerSub mark before the attempt's
// first eager write, then re-validates the serial-lock subscription. The
// ordering closes the rollback-vs-serial-writer race: if the re-check passes,
// the mark was visible before any serial acquisition, so that writer's
// drainEagerSubscribed waits for this attempt's undo restore; if it fails,
// nothing has been written yet and the attempt aborts holding no in-place
// state. Publishing at the first write rather than at begin means a hardware
// attempt that has only read — which real RTM would abort asynchronously, but
// the emulation cannot — never stalls a serial writer.
func (tx *Tx) htmMarkEager() {
	th := tx.th
	if th.eagerSub.Load() {
		return
	}
	th.eagerSub.Store(true)
	if !tx.rt.serial.stillSubscribed(tx.htmSeq) {
		th.eagerSub.Store(false)
		tx.noteConflict("conflict: serial-lock subscription", 0)
		panic(abortSignal{})
	}
}
