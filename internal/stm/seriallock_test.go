package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSerialLockReadersShareWritersExclude(t *testing.T) {
	var l serialLock
	l.RLock()
	l.RLock() // readers share
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("writer acquired while readers held the lock")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock()
	l.RUnlock()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired after readers drained")
	}
	l.Unlock()
}

func TestSerialLockWriterBlocksNewReaders(t *testing.T) {
	var l serialLock
	l.Lock()
	var entered atomic.Bool
	done := make(chan struct{})
	go func() {
		l.RLock()
		entered.Store(true)
		l.RUnlock()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if entered.Load() {
		t.Fatal("reader entered while writer held the lock")
	}
	l.Unlock()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("reader starved after writer release")
	}
}

func TestSerialLockWritersMutuallyExclude(t *testing.T) {
	var l serialLock
	var inside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Lock()
				if inside.Add(1) != 1 {
					t.Error("two writers inside")
				}
				inside.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestSerialLockDisabled(t *testing.T) {
	l := serialLock{disabled: true}
	// Read side free; write side a plain mutex.
	l.RLock()
	l.RLock()
	l.Lock() // must not block on the (no-op) readers
	var second atomic.Bool
	done := make(chan struct{})
	go func() {
		l.Lock()
		second.Store(true)
		l.Unlock()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if second.Load() {
		t.Fatal("two writers inside disabled lock")
	}
	l.Unlock()
	<-done
	l.RUnlock()
	l.RUnlock()
}

func TestTWordDirectOps(t *testing.T) {
	w := NewTWord(10)
	if w.AddDirect(5) != 15 {
		t.Error("AddDirect")
	}
	if !w.CompareAndSwapDirect(15, 20) {
		t.Error("CAS success case failed")
	}
	if w.CompareAndSwapDirect(15, 99) {
		t.Error("CAS failure case succeeded")
	}
	if w.LoadDirect() != 20 {
		t.Error("final value wrong")
	}
}

func TestTBytesBounds(t *testing.T) {
	tb := NewTBytes(10)
	if tb.Len() != 10 || tb.Words() != 2 {
		t.Errorf("Len=%d Words=%d", tb.Len(), tb.Words())
	}
	rt := New(Config{})
	th := rt.NewThread()
	// ReadAll with a short destination panics (programmer error).
	err := th.Run(Props{Kind: Atomic}, func(tx *Tx) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for short ReadAll destination")
			}
		}()
		tb.ReadAll(tx, make([]byte, 5))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for long WriteAll source")
			}
		}()
		tb.WriteAll(tx, make([]byte, 11))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	rt := New(Config{})
	if rt.Profile() != nil {
		t.Error("profile non-nil before EnableProfiling")
	}
	th := rt.NewThread()
	// Events without profiling must not crash.
	_ = th.Run(Props{Kind: Relaxed}, func(tx *Tx) { tx.Unsafe("x") })
	rt.EnableProfiling()
	_ = th.Run(Props{Kind: Relaxed, Site: "here"}, func(tx *Tx) { tx.Unsafe("y") })
	p := rt.Profile()
	if p == nil {
		t.Fatal("profile nil after enable")
	}
	causes := p.Causes()
	if len(causes) != 1 || causes[0].Cause != "in-flight switch: y @ here" || causes[0].Count != 1 {
		t.Errorf("causes = %v", causes)
	}
	// Enabling twice keeps the existing profile.
	rt.EnableProfiling()
	if got := rt.Profile(); got != p {
		t.Error("EnableProfiling replaced the live profile")
	}
}

func TestStartSerialProfileAttribution(t *testing.T) {
	rt := New(Config{})
	rt.EnableProfiling()
	th := rt.NewThread()
	_ = th.Run(Props{Kind: Relaxed, StartSerial: true, Site: "do_item_alloc"}, func(tx *Tx) {})
	causes := rt.Profile().Causes()
	if len(causes) != 1 || causes[0].Cause != "start serial @ do_item_alloc" {
		t.Errorf("causes = %v", causes)
	}
}
