package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTestCache builds a small cache for branch b (unstarted maintenance by
// default so single-op tests are deterministic; tests that need maintenance
// call Start themselves).
func newTestCache(t *testing.T, b Branch) *Cache {
	t.Helper()
	return New(Config{
		Branch:    b,
		Shards:    1, // existing single-domain semantics; sharded tests opt in
		MemLimit:  2 << 20,
		HashPower: 8,
		Stripes:   64,
		Automove:  true,
	})
}

func forEachBranch(t *testing.T, fn func(t *testing.T, c *Cache)) {
	t.Helper()
	for _, b := range Branches() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newTestCache(t, b)
			c.Start()
			defer c.Stop()
			fn(t, c)
		})
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if res := w.Set([]byte("hello"), 7, 0, []byte("world")); res != Stored {
			t.Fatalf("Set = %v", res)
		}
		val, flags, cas, ok := w.Get([]byte("hello"))
		if !ok {
			t.Fatal("Get missed")
		}
		if string(val) != "world" || flags != 7 || cas == 0 {
			t.Errorf("Get = (%q, %d, %d)", val, flags, cas)
		}
		if _, _, _, ok := w.Get([]byte("absent")); ok {
			t.Error("Get hit on absent key")
		}
	})
}

func TestOverwriteReplacesValue(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		w.Set([]byte("k"), 0, 0, []byte("v1"))
		w.Set([]byte("k"), 0, 0, []byte("v2-longer"))
		val, _, _, ok := w.Get([]byte("k"))
		if !ok || string(val) != "v2-longer" {
			t.Errorf("Get = %q, %v", val, ok)
		}
		s := w.Stats()
		if s.CurrItems != 1 {
			t.Errorf("CurrItems = %d, want 1", s.CurrItems)
		}
	})
}

func TestAddReplaceSemantics(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if res := w.Replace([]byte("k"), 0, 0, []byte("x")); res != NotStored {
			t.Errorf("Replace on absent = %v", res)
		}
		if res := w.Add([]byte("k"), 0, 0, []byte("a")); res != Stored {
			t.Errorf("Add on absent = %v", res)
		}
		if res := w.Add([]byte("k"), 0, 0, []byte("b")); res != NotStored {
			t.Errorf("Add on present = %v", res)
		}
		if res := w.Replace([]byte("k"), 0, 0, []byte("c")); res != Stored {
			t.Errorf("Replace on present = %v", res)
		}
		val, _, _, _ := w.Get([]byte("k"))
		if string(val) != "c" {
			t.Errorf("value = %q", val)
		}
	})
}

func TestAppendPrepend(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if res := w.Append([]byte("k"), []byte("x")); res != NotStored {
			t.Errorf("Append on absent = %v", res)
		}
		w.Set([]byte("k"), 3, 0, []byte("mid"))
		if res := w.Append([]byte("k"), []byte("-end")); res != Stored {
			t.Errorf("Append = %v", res)
		}
		if res := w.Prepend([]byte("k"), []byte("start-")); res != Stored {
			t.Errorf("Prepend = %v", res)
		}
		val, flags, _, _ := w.Get([]byte("k"))
		if string(val) != "start-mid-end" {
			t.Errorf("value = %q", val)
		}
		if flags != 3 {
			t.Errorf("flags = %d, want preserved 3", flags)
		}
	})
}

func TestCASSemantics(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if res := w.CAS([]byte("k"), 0, 0, []byte("x"), 1); res != NotFound {
			t.Errorf("CAS on absent = %v", res)
		}
		w.Set([]byte("k"), 0, 0, []byte("v1"))
		_, _, cas, _ := w.Get([]byte("k"))
		if res := w.CAS([]byte("k"), 0, 0, []byte("v2"), cas); res != Stored {
			t.Errorf("CAS with good unique = %v", res)
		}
		if res := w.CAS([]byte("k"), 0, 0, []byte("v3"), cas); res != Exists {
			t.Errorf("CAS with stale unique = %v", res)
		}
		val, _, _, _ := w.Get([]byte("k"))
		if string(val) != "v2" {
			t.Errorf("value = %q", val)
		}
	})
}

func TestDelete(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if w.Delete([]byte("k")) {
			t.Error("Delete hit on absent key")
		}
		w.Set([]byte("k"), 0, 0, []byte("v"))
		if !w.Delete([]byte("k")) {
			t.Error("Delete missed")
		}
		if _, _, _, ok := w.Get([]byte("k")); ok {
			t.Error("Get hit after delete")
		}
		s := w.Stats()
		if s.CurrItems != 0 {
			t.Errorf("CurrItems = %d, want 0", s.CurrItems)
		}
	})
}

func TestIncrDecr(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if _, res := w.Incr([]byte("n"), 1); res != DeltaNotFound {
			t.Errorf("Incr absent = %v", res)
		}
		w.Set([]byte("n"), 0, 0, []byte("10"))
		if v, res := w.Incr([]byte("n"), 5); res != DeltaOK || v != 15 {
			t.Errorf("Incr = (%d,%v)", v, res)
		}
		if v, res := w.Decr([]byte("n"), 20); res != DeltaOK || v != 0 {
			t.Errorf("Decr below zero = (%d,%v), want saturate at 0", v, res)
		}
		val, _, _, _ := w.Get([]byte("n"))
		if string(val) != "0" {
			t.Errorf("value = %q", val)
		}
		w.Set([]byte("s"), 0, 0, []byte("abc"))
		if _, res := w.Incr([]byte("s"), 1); res != DeltaNonNumeric {
			t.Errorf("Incr non-numeric = %v", res)
		}
	})
}

func TestIncrGrowsValueText(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		w.Set([]byte("n"), 0, 0, []byte("9"))
		// 9 + 18446744073709551000 forces a much longer decimal text than the
		// original 1-byte value capacity.
		v, res := w.Incr([]byte("n"), 18446744073709551000)
		if res != DeltaOK {
			t.Fatalf("Incr = %v", res)
		}
		val, _, _, ok := w.Get([]byte("n"))
		if !ok || string(val) != fmt.Sprintf("%d", v) {
			t.Errorf("value = %q, want %d", val, v)
		}
	})
}

func TestExpiryAndTouch(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		now := c.Now()
		w.Set([]byte("k"), 0, now+5, []byte("v"))
		if _, _, _, ok := w.Get([]byte("k")); !ok {
			t.Fatal("Get missed before expiry")
		}
		c.SetTime(now + 10)
		if _, _, _, ok := w.Get([]byte("k")); ok {
			t.Error("Get hit after expiry")
		}
		// Touch extends a live item.
		now = c.Now()
		w.Set([]byte("t"), 0, now+5, []byte("v"))
		if !w.Touch([]byte("t"), now+100) {
			t.Error("Touch missed")
		}
		c.SetTime(now + 50)
		if _, _, _, ok := w.Get([]byte("t")); !ok {
			t.Error("Get missed after touch extension")
		}
	})
}

func TestFlushAll(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		w.Set([]byte("a"), 0, 0, []byte("1"))
		w.Set([]byte("b"), 0, 0, []byte("2"))
		w.FlushAll()
		if _, _, _, ok := w.Get([]byte("a")); ok {
			t.Error("a survived flush_all")
		}
		if _, _, _, ok := w.Get([]byte("b")); ok {
			t.Error("b survived flush_all")
		}
		// Items stored after the flush are visible.
		w.Set([]byte("c"), 0, 0, []byte("3"))
		if _, _, _, ok := w.Get([]byte("c")); !ok {
			t.Error("c stored after flush_all is invisible")
		}
	})
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		val := bytes.Repeat([]byte("x"), 4096)
		// 2 MiB limit, ~4.3KiB per item incl. overhead: ~400 fit; store 1500.
		stored := 0
		for i := 0; i < 1500; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			switch res := w.Set(key, 0, 0, val); res {
			case Stored:
				stored++
			case OutOfMemory:
				// Acceptable under extreme pressure (all tails referenced).
			default:
				t.Fatalf("Set %d = %v", i, res)
			}
		}
		s := w.Stats()
		if s.Evictions == 0 {
			t.Errorf("no evictions despite pressure (stored=%d currItems=%d)", stored, s.CurrItems)
		}
		if s.CurrItems == 0 || s.CurrItems > 600 {
			t.Errorf("CurrItems = %d, implausible for a 2MiB cache", s.CurrItems)
		}
		// Recent keys should largely survive (LRU), the oldest be gone.
		if _, _, _, ok := w.Get([]byte("key-1499")); !ok {
			t.Error("most recent key evicted")
		}
		if _, _, _, ok := w.Get([]byte("key-0000")); ok {
			t.Error("oldest key survived heavy eviction")
		}
	})
}

func TestHashExpansion(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		// 2^8 = 256 buckets; store 600 small items to trip the 3/2 threshold.
		for i := 0; i < 600; i++ {
			key := []byte(fmt.Sprintf("exp-%04d", i))
			if res := w.Set(key, 0, 0, []byte("v")); res != Stored {
				t.Fatalf("Set %d = %v", i, res)
			}
		}
		// The maintenance thread expands asynchronously; poll briefly.
		var buckets uint64
		for deadline := 0; deadline < 2000; deadline++ {
			s := w.Stats()
			buckets = s.HashBuckets
			if buckets > 256 && s.HashExpands > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		s := w.Stats()
		if s.HashExpands == 0 {
			t.Fatal("hash expansion never ran")
		}
		// Every item must remain reachable during/after expansion.
		for i := 0; i < 600; i++ {
			key := []byte(fmt.Sprintf("exp-%04d", i))
			if _, _, _, ok := w.Get(key); !ok {
				t.Fatalf("key %s lost during expansion", key)
			}
		}
	})
}

func TestStatsCounters(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		w.Set([]byte("k"), 0, 0, []byte("v"))
		w.Get([]byte("k"))
		w.Get([]byte("miss"))
		w.Delete([]byte("k"))
		w.Delete([]byte("miss"))
		s := w.Stats()
		if s.GetCmds != 2 || s.GetHits != 1 || s.GetMisses != 1 {
			t.Errorf("get stats = %d/%d/%d", s.GetCmds, s.GetHits, s.GetMisses)
		}
		if s.SetCmds != 1 {
			t.Errorf("SetCmds = %d", s.SetCmds)
		}
		if s.DeleteHits != 1 || s.DeleteMiss != 1 {
			t.Errorf("delete stats = %d/%d", s.DeleteHits, s.DeleteMiss)
		}
		if s.TotalItems != 1 {
			t.Errorf("TotalItems = %d", s.TotalItems)
		}
	})
}

func TestConcurrentMixedWorkload(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		const nWorkers = 6
		const nOps = 800
		var wg sync.WaitGroup
		for g := 0; g < nWorkers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c.NewWorker()
				for i := 0; i < nOps; i++ {
					key := []byte(fmt.Sprintf("k-%d", (g*31+i*7)%200))
					switch i % 10 {
					case 0:
						w.Set(key, uint32(g), 0, []byte(fmt.Sprintf("val-%d-%d", g, i)))
					case 1:
						w.Delete(key)
					case 2:
						w.Add(key, 0, 0, []byte("init"))
					default:
						if val, _, _, ok := w.Get(key); ok && len(val) == 0 {
							t.Errorf("hit returned empty value for %s", key)
						}
					}
				}
			}()
		}
		wg.Wait()
		// Consistency: curr_items must equal the number of distinct live keys.
		w := c.NewWorker()
		live := 0
		for i := 0; i < 200; i++ {
			if _, _, _, ok := w.Get([]byte(fmt.Sprintf("k-%d", i))); ok {
				live++
			}
		}
		s := w.Stats()
		if int(s.CurrItems) != live {
			t.Errorf("CurrItems = %d but %d keys answer Get", s.CurrItems, live)
		}
	})
}

// TestConcurrentSameKey hammers one key from all workers: increments must not
// be lost under any branch.
func TestConcurrentSameKey(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w0 := c.NewWorker()
		w0.Set([]byte("ctr"), 0, 0, []byte("0"))
		const nWorkers = 4
		const perW = 300
		var wg sync.WaitGroup
		for g := 0; g < nWorkers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c.NewWorker()
				for i := 0; i < perW; i++ {
					if _, res := w.Incr([]byte("ctr"), 1); res != DeltaOK {
						t.Errorf("Incr = %v", res)
						return
					}
				}
			}()
		}
		wg.Wait()
		val, _, _, ok := w0.Get([]byte("ctr"))
		want := fmt.Sprintf("%d", nWorkers*perW)
		if !ok || string(val) != want {
			t.Errorf("ctr = %q, want %q", val, want)
		}
	})
}

// TestSerializationProfile checks the paper's per-stage serialization shape:
// pre-Max transactional branches serialize (start-serial on the set path,
// volatile switches elsewhere); the onCommit branches never serialize except
// for contention-manager progress (Table 4).
func TestSerializationProfile(t *testing.T) {
	run := func(b Branch) Snapshot {
		c := newTestCache(t, b)
		c.Start()
		defer c.Stop()
		w := c.NewWorker()
		for i := 0; i < 300; i++ {
			key := []byte(fmt.Sprintf("k-%d", i%50))
			if i%10 == 0 {
				w.Set(key, 0, 0, []byte("value"))
			} else {
				w.Get(key)
			}
		}
		return w.Stats()
	}

	pre := run(IPCallable)
	if pre.STM.StartSerial == 0 {
		t.Errorf("IP-Callable: StartSerial = 0, want >0 (set path starts serial pre-Max)")
	}
	if pre.STM.InFlightSwitch == 0 {
		t.Errorf("IP-Callable: InFlightSwitch = 0, want >0 (libc on the link path)")
	}

	preIT := run(ITCallable)
	if preIT.STM.StartSerial == 0 {
		t.Errorf("IT-Callable: StartSerial = 0, want >0 (item transactions start serial pre-Max)")
	}
	if preIT.STM.StartSerial <= pre.STM.StartSerial {
		t.Errorf("IT-Callable StartSerial (%d) should exceed IP-Callable (%d): gets serialize too",
			preIT.STM.StartSerial, pre.STM.StartSerial)
	}

	maxIP := run(IPMax)
	if maxIP.STM.StartSerial != 0 {
		t.Errorf("IP-Max: StartSerial = %d, want 0 (volatiles transactional)", maxIP.STM.StartSerial)
	}
	if maxIP.STM.InFlightSwitch == 0 {
		t.Errorf("IP-Max: InFlightSwitch = 0, want >0 (snprintf still unsafe)")
	}

	lib := run(IPLib)
	if lib.STM.InFlightSwitch >= maxIP.STM.InFlightSwitch && maxIP.STM.InFlightSwitch > 0 {
		t.Errorf("IP-Lib in-flight (%d) should drop below IP-Max (%d)",
			lib.STM.InFlightSwitch, maxIP.STM.InFlightSwitch)
	}

	for _, b := range []Branch{IPOnCommit, ITOnCommit, IPNoLock, ITNoLock} {
		s := run(b)
		if s.STM.InFlightSwitch != 0 || s.STM.StartSerial != 0 {
			t.Errorf("%v: in-flight=%d start-serial=%d, want 0/0 (Table 4)",
				b, s.STM.InFlightSwitch, s.STM.StartSerial)
		}
	}

	// IP runs more, smaller transactions than IT (Table 1's transaction
	// counts): lock acquire/release are separate mini-transactions.
	onIP, onIT := run(IPOnCommit), run(ITOnCommit)
	if onIP.STM.Commits <= onIT.STM.Commits {
		t.Errorf("IP commits (%d) should exceed IT commits (%d)", onIP.STM.Commits, onIT.STM.Commits)
	}
}

func TestParseBranch(t *testing.T) {
	for _, b := range Branches() {
		got, err := ParseBranch(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBranch(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBranch("bogus"); err == nil {
		t.Error("ParseBranch accepted garbage")
	}
}

// TestValidateAfterConcurrentWorkload runs the deep structural validator
// after a heavy mixed workload on every branch: the same state machine under
// 14 synchronization regimes must end structurally consistent.
func TestValidateAfterConcurrentWorkload(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c.NewWorker()
				val := bytes.Repeat([]byte("y"), 700)
				for i := 0; i < 700; i++ {
					key := []byte(fmt.Sprintf("val-%d", (g*37+i*3)%400))
					switch i % 11 {
					case 0, 1, 2:
						w.Set(key, 0, 0, val)
					case 3:
						w.Delete(key)
					case 4:
						w.Append(key, []byte("++"))
					default:
						w.Get(key)
					}
				}
			}()
		}
		wg.Wait()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestValidateEmptyAndSingleton covers the validator's trivial states.
func TestValidateEmptyAndSingleton(t *testing.T) {
	c := newTestCache(t, ITOnCommit)
	c.Start()
	defer c.Stop()
	if err := c.Validate(); err != nil {
		t.Fatalf("empty cache: %v", err)
	}
	w := c.NewWorker()
	w.Set([]byte("one"), 0, 0, []byte("item"))
	if err := c.Validate(); err != nil {
		t.Fatalf("singleton cache: %v", err)
	}
	w.Delete([]byte("one"))
	if err := c.Validate(); err != nil {
		t.Fatalf("emptied cache: %v", err)
	}
}
