package engine

import (
	"fmt"
	"sync"
	"testing"
)

// newShardedCache builds a cache partitioned into the given number of TM
// domains. The total memory limit is scaled so each shard gets the same 2 MiB
// the single-domain test fixture uses.
func newShardedCache(t *testing.T, b Branch, shards int) *Cache {
	t.Helper()
	c := New(Config{
		Branch:    b,
		Shards:    shards,
		MemLimit:  uint64(shards) * (2 << 20),
		HashPower: 6,
		Stripes:   64,
		Automove:  true,
	})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func shardedKey(i int) []byte { return fmt.Appendf(nil, "shkey-%04d", i) }

// forEachShardedBranch runs fn against a started 4-shard cache per branch.
func forEachShardedBranch(t *testing.T, fn func(t *testing.T, c *Cache)) {
	t.Helper()
	for _, b := range Branches() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			fn(t, newShardedCache(t, b, 4))
		})
	}
}

// TestShardedRoutingRoundTrip: with four domains, every stored key comes back
// through the router, deletes land on the owning shard, and the keys actually
// spread — each shard's private hash table holds a non-empty slice of them.
func TestShardedRoutingRoundTrip(t *testing.T) {
	forEachShardedBranch(t, func(t *testing.T, c *Cache) {
		if c.NumShards() != 4 {
			t.Fatalf("NumShards = %d, want 4", c.NumShards())
		}
		w := c.NewWorker()
		const n = 512
		for i := 0; i < n; i++ {
			if res := w.Set(shardedKey(i), uint32(i), 0, fmt.Appendf(nil, "val-%d", i)); res != Stored {
				t.Fatalf("Set %d = %v", i, res)
			}
		}
		for i := 0; i < n; i++ {
			val, flags, _, ok := w.Get(shardedKey(i))
			if !ok || flags != uint32(i) || string(val) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("Get %d = %q flags=%d ok=%v", i, val, flags, ok)
			}
		}
		// The router spreads keys: no shard may be empty with 512 keys on 4
		// domains (the hash is deterministic, so this cannot flake).
		for i, sw := range w.ws {
			if items := sw.Stats().CurrItems; items == 0 {
				t.Errorf("shard %d holds no items out of %d keys", i, n)
			}
		}
		// Deletes route to the same shard the store landed on.
		for i := 0; i < n; i += 2 {
			if !w.Delete(shardedKey(i)) {
				t.Fatalf("Delete %d missed", i)
			}
		}
		for i := 0; i < n; i++ {
			_, _, _, ok := w.Get(shardedKey(i))
			if want := i%2 == 1; ok != want {
				t.Fatalf("after deletes, Get %d ok=%v want %v", i, ok, want)
			}
		}
		if s := w.Stats(); s.CurrItems != n/2 {
			t.Errorf("merged CurrItems = %d, want %d", s.CurrItems, n/2)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
}

// TestShardedGetMulti: a multi-get spanning shards splits into per-shard
// groups and scatters the results back in caller order, with correct per-key
// found flags for present, missing and expired keys; the merged hit/miss
// accounting equals what a single domain would report.
func TestShardedGetMulti(t *testing.T) {
	forEachShardedBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		now := c.Now()
		const n = 100
		want := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k, v := shardedKey(i), fmt.Sprintf("val-%d", i)
			want[string(k)] = v
			w.Set(k, 7, 0, []byte(v))
		}
		w.Set([]byte("doomed"), 0, now+5, []byte("x"))
		c.SetTime(now + 10) // expire "doomed" on every shard

		keys := make([][]byte, 0, n+2)
		for i := 0; i < n; i++ {
			keys = append(keys, shardedKey(i))
			if i == 40 {
				keys = append(keys, []byte("doomed"), []byte("never-set"))
			}
		}
		out := w.GetMulti(keys)
		if len(out) != len(keys) {
			t.Fatalf("%d results for %d keys", len(out), len(keys))
		}
		hits := 0
		for i, r := range out {
			k := string(keys[i])
			switch k {
			case "doomed", "never-set":
				if r.Found {
					t.Errorf("key %q found, want miss", k)
				}
			default:
				if !r.Found || r.Flags != 7 {
					t.Fatalf("key %q: found=%v flags=%d", k, r.Found, r.Flags)
				}
				if string(r.Value) != want[k] {
					t.Errorf("key %q = %q, want %q", k, r.Value, want[k])
				}
				hits++
			}
		}
		if hits != n {
			t.Errorf("hits = %d, want %d", hits, n)
		}
		s := w.Stats()
		if s.GetCmds != uint64(len(keys)) || s.GetHits != uint64(n) || s.GetMisses != 2 {
			t.Errorf("merged get stats = cmds %d hits %d misses %d, want %d/%d/2",
				s.GetCmds, s.GetHits, s.GetMisses, len(keys), n)
		}
		// Multiple shards actually served the batch.
		served := 0
		for _, sw := range w.ws {
			if sw.Stats().GetCmds > 0 {
				served++
			}
		}
		if served < 2 {
			t.Errorf("only %d shards served the multi-get; routing is degenerate", served)
		}
	})
}

// TestShardedGetMultiSnapshotPerShard pins down the documented isolation
// contract: snapshot isolation holds PER SHARD, not globally. Two occurrences
// of the same key inside one batch group always resolve against the same
// snapshot — a concurrent writer's SET either precedes or follows the whole
// group — so their CAS values can never differ, no matter how the writer
// interleaves. (Keys on different shards carry no such guarantee; that is the
// same semantics as a cluster of independent memcached nodes.)
func TestShardedGetMultiSnapshotPerShard(t *testing.T) {
	c := newShardedCache(t, ITOnCommit, 4)
	key := []byte("dup-key")
	w := c.NewWorker()
	w.Set(key, 0, 0, []byte("v0"))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ww := c.NewWorker()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ww.Set(key, 0, 0, fmt.Appendf(nil, "v%d", i))
		}
	}()

	keys := [][]byte{key, []byte("other-a"), key, []byte("other-b"), key}
	for iter := 0; iter < 400; iter++ {
		out := w.GetMulti(keys)
		if !out[0].Found || !out[2].Found || !out[4].Found {
			t.Fatal("dup-key missed; writer only ever overwrites it")
		}
		if out[0].CAS != out[2].CAS || out[2].CAS != out[4].CAS {
			t.Fatalf("iter %d: same key in one batch saw CAS %d/%d/%d — snapshot torn",
				iter, out[0].CAS, out[2].CAS, out[4].CAS)
		}
		if string(out[0].Value) != string(out[2].Value) {
			t.Fatalf("iter %d: same key, different values %q vs %q", iter, out[0].Value, out[2].Value)
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedExpiryAndTouch: SetTime fans out to every shard's clock, so
// expiry is uniform across domains, touch extends items wherever they live,
// and the reclaimed-on-access Expired counters merge.
func TestShardedExpiryAndTouch(t *testing.T) {
	c := newShardedCache(t, ITOnCommit, 4)
	w := c.NewWorker()
	now := c.Now()
	const n = 64
	for i := 0; i < n; i++ {
		w.Set(shardedKey(i), 0, now+5, []byte("v"))
	}
	// Touch extends half of them past the cliff, on whatever shard they live.
	for i := 0; i < n; i += 2 {
		if !w.Touch(shardedKey(i), now+100) {
			t.Fatalf("Touch %d missed", i)
		}
	}
	c.SetTime(now + 50)
	for i := 0; i < n; i++ {
		_, _, _, ok := w.Get(shardedKey(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get %d after expiry: ok=%v want %v", i, ok, want)
		}
	}
	// The odd keys were reclaimed on access; the merged counter saw them all.
	if s := w.Stats(); s.Expired != n/2 {
		t.Errorf("merged Expired = %d, want %d", s.Expired, n/2)
	}
}

// TestShardedFlushAll: flush_all reaches every domain.
func TestShardedFlushAll(t *testing.T) {
	c := newShardedCache(t, ITOnCommit, 4)
	w := c.NewWorker()
	for i := 0; i < 64; i++ {
		w.Set(shardedKey(i), 0, 0, []byte("v"))
	}
	w.FlushAll()
	for i := 0; i < 64; i++ {
		if _, _, _, ok := w.Get(shardedKey(i)); ok {
			t.Fatalf("key %d survived flush_all", i)
		}
	}
	w.Set([]byte("post"), 0, 0, []byte("v"))
	if _, _, _, ok := w.Get([]byte("post")); !ok {
		t.Error("item stored after flush_all is invisible")
	}
}

// TestShardedStatsMergeAndReset is the satellite-1 regression: `stats reset`
// with tracing toggled mid-run. Counters (command, STM) zero on every shard,
// gauges survive, and the shared observer — one collector spanning all
// shards, however many times tracing was flipped — is cleared exactly once.
func TestShardedStatsMergeAndReset(t *testing.T) {
	// Maintenance stays unstarted: the per-shard rebalancer and crawler commit
	// transactions of their own, which would race the zero-counter assertions.
	c := New(Config{Branch: ITOnCommit, Shards: 4, MemLimit: 8 << 20, HashPower: 6})
	w := c.NewWorker()
	load := func() {
		for i := 0; i < 128; i++ {
			w.Set(shardedKey(i), 0, 0, []byte("v"))
			w.Get(shardedKey(i))
		}
	}
	load() // untraced ops first …
	obs := c.EnableTracing()
	load() // … then tracing flips on mid-run

	s := w.Stats()
	if s.SetCmds == 0 || s.GetHits == 0 || s.STM.Commits == 0 {
		t.Fatalf("pre-reset counters empty: %+v", s)
	}
	// The merged STM snapshot is exactly the sum of the per-shard snapshots.
	var commits, aborts, roFast uint64
	for _, ss := range c.ShardStats() {
		commits += ss.Commits
		aborts += ss.Aborts
		roFast += ss.ROFastCommits
	}
	if commits != s.STM.Commits || aborts != s.STM.Aborts || roFast != s.STM.ROFastCommits {
		t.Errorf("per-shard sums (%d/%d/%d) != merged STM (%d/%d/%d)",
			commits, aborts, roFast, s.STM.Commits, s.STM.Aborts, s.STM.ROFastCommits)
	}
	if len(obs.Events()) == 0 {
		t.Fatal("no events recorded with tracing on")
	}

	currItems, currBytes := s.CurrItems, s.CurrBytes
	preCommits := s.STM.Commits
	w.ResetStats()
	// The observer is cleared last in the router's reset, after the per-shard
	// zeroing transactions it would otherwise record — so it reads empty NOW,
	// before the next traced operation.
	if n := len(obs.Events()); n != 0 {
		t.Errorf("%d observer events survived reset", n)
	}
	s = w.Stats()
	if s.SetCmds != 0 || s.GetCmds != 0 || s.GetHits != 0 || s.TotalItems != 0 {
		t.Errorf("command counters survived reset: %+v", s.Aggregated)
	}
	// Reading the stats runs a few bookkeeping transactions per shard, so the
	// STM counters are not exactly zero — but the workload's commits are gone.
	if s.STM.Commits >= preCommits || s.STM.Commits > 4*4 {
		t.Errorf("STM commits = %d after reset (pre-reset %d)", s.STM.Commits, preCommits)
	}
	if s.CurrItems != currItems || s.CurrBytes != currBytes {
		t.Errorf("gauges changed across reset: items %d→%d bytes %d→%d",
			currItems, s.CurrItems, currBytes, s.CurrBytes)
	}

	// Toggle tracing off and on again around another reset: the observer is
	// shared, so neither direction may double-clear or leak a shard's view.
	c.DisableTracing()
	load()
	w.ResetStats()
	c.EnableTracing()
	load()
	if s := w.Stats(); s.STM.Commits == 0 {
		t.Error("no commits after re-enable; tracing toggle wedged the runtimes")
	}
	if len(obs.Events()) == 0 {
		t.Error("no events after re-enable")
	}
}

// TestShardedTracingNoCrossShardConflicts is the domain-independence proof:
// with tracing attached to all four runtimes at disjoint orec bases, a
// concurrent mixed workload must produce ZERO cross-shard orec conflicts —
// two domains sharing a synchronization word is the one thing sharding
// forbids. Runs cleanly under -race (the Makefile's shard-race pass).
func TestShardedTracingNoCrossShardConflicts(t *testing.T) {
	c := newShardedCache(t, ITOnCommit, 4)
	obs := c.EnableTracing()
	if obs.NumShards() != 4 {
		t.Fatalf("observer NumShards = %d, want 4", obs.NumShards())
	}

	const threads, opsPerThread = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			batch := make([][]byte, 8)
			for i := 0; i < opsPerThread; i++ {
				k := shardedKey((g*opsPerThread + i) % 256)
				w.Set(k, 0, 0, []byte("vv"))
				w.Get(k)
				w.Incr([]byte("shared-ctr"), 1)
				for j := range batch {
					batch[j] = shardedKey((i + j) % 256)
				}
				w.GetMulti(batch)
			}
		}()
	}
	wg.Wait()

	if n := obs.CrossShardOrecConflicts(); n != 0 {
		t.Errorf("cross_shard_orec_conflicts = %d, want 0: independent domains shared an orec", n)
	}
	if len(obs.Events()) == 0 {
		t.Error("no events traced")
	}
	if err := c.ValidateQuiescent(); err != nil {
		t.Errorf("ValidateQuiescent: %v", err)
	}
}

// TestShardedConcurrentRouting hammers the router from several workers under
// the race detector and checks that the per-thread counters, summed across
// shards, account for every operation issued.
func TestShardedConcurrentRouting(t *testing.T) {
	for _, b := range []Branch{Baseline, ITOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newShardedCache(t, b, 4)
			const threads, n = 4, 250
			var wg sync.WaitGroup
			for g := 0; g < threads; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := c.NewWorker()
					for i := 0; i < n; i++ {
						key := fmt.Appendf(nil, "cc-%d-%04d", g, i)
						if res := w.Set(key, 0, 0, []byte("v")); res != Stored {
							t.Errorf("Set = %v", res)
							return
						}
						if _, _, _, ok := w.Get(key); !ok {
							t.Errorf("Get %q missed own write", key)
							return
						}
					}
				}()
			}
			wg.Wait()
			w := c.NewWorker()
			s := w.Stats()
			if s.SetCmds != threads*n || s.GetHits != threads*n || s.GetMisses != 0 {
				t.Errorf("merged stats sets=%d hits=%d misses=%d, want %d/%d/0",
					s.SetCmds, s.GetHits, s.GetMisses, threads*n, threads*n)
			}
			if s.CurrItems != threads*n {
				t.Errorf("CurrItems = %d, want %d", s.CurrItems, threads*n)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

// TestShardedOrecScaling: the router shrinks each shard's orec table by
// log2(N) so the total footprint — and the orec-per-key density — match the
// single-domain engine; an explicit override wins.
func TestShardedOrecScaling(t *testing.T) {
	single := New(Config{Branch: ITOnCommit, Shards: 1, MemLimit: 2 << 20})
	total := single.Runtime().OrecCount()
	c4 := New(Config{Branch: ITOnCommit, Shards: 4, MemLimit: 8 << 20})
	var sum int
	for _, rt := range c4.Runtimes() {
		sum += rt.OrecCount()
	}
	if sum != total {
		t.Errorf("4-shard orec total = %d, want %d (constant footprint)", sum, total)
	}
}
