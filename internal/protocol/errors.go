package protocol

// Typed protocol errors. The two memcached error classes — client-caused
// ("CLIENT_ERROR <msg>") and server-caused ("SERVER_ERROR <msg>") — carry
// their exact wire renderings for BOTH protocols: the text line is derived
// from the class and message, the binary status code rides in the value.
// Every recoverable refusal, including the tx* commands', goes through
// replyError / binReplyError so the two paths cannot drift.

// ClientError is a recoverable, client-caused command failure: the command
// was understood but its arguments or state were wrong. The connection stays
// usable.
type ClientError struct {
	Msg    string
	Status uint16 // binary-protocol status code
}

func (e *ClientError) Error() string { return "CLIENT_ERROR " + e.Msg }

// ServerError is a server-side refusal: the command was valid but this server
// (branch configuration, resources) cannot serve it. The connection stays
// usable.
type ServerError struct {
	Msg    string
	Status uint16
}

func (e *ServerError) Error() string { return "SERVER_ERROR " + e.Msg }

// replyError renders a typed error on the text protocol. Unknown error types
// render as SERVER_ERROR: reaching that case is a bug, but the connection
// must still get a parseable line.
func (c *Conn) replyError(err error) error {
	switch e := err.(type) {
	case *ClientError:
		return c.reply("CLIENT_ERROR " + e.Msg + "\r\n")
	case *ServerError:
		return c.reply("SERVER_ERROR " + e.Msg + "\r\n")
	}
	return c.reply("SERVER_ERROR " + err.Error() + "\r\n")
}

// binReplyError renders the same typed error on the binary protocol: the
// class's status code in the header, the message as the value.
func (c *Conn) binReplyError(req binHeader, err error) error {
	switch e := err.(type) {
	case *ClientError:
		return c.binError(req, e.Status, []byte(e.Msg))
	case *ServerError:
		return c.binError(req, e.Status, []byte(e.Msg))
	}
	return c.binError(req, StatusUnknownCommand, []byte(err.Error()))
}
