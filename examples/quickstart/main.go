// Quickstart: the Draft C++ TM Specification surface in five minutes.
//
// Shows the two transaction declarations (atomic and relaxed), a transaction
// expression, the in-flight switch to serial-irrevocable execution when a
// relaxed transaction performs I/O, and the statistics the paper's tables are
// built from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/tm"
)

func main() {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})
	ctx := core.New(rt).NewContext()
	th := ctx.Thread()

	// Shared state: two transactional words.
	checking := stm.NewTWord(100)
	savings := stm.NewTWord(100)

	// __transaction_atomic { ... }: statically (here: dynamically) checked to
	// contain no unsafe operations; never serializes.
	if err := tm.Atomic(th, tm.Options{}, func(tx *stm.Tx) {
		checking.Store(tx, checking.Load(tx)-30)
		savings.Store(tx, savings.Load(tx)+30)
	}); err != nil {
		panic(err)
	}

	// A transaction expression: evaluate a condition transactionally.
	total := core.Expr(ctx, func(tx *stm.Tx) uint64 {
		return checking.Load(tx) + savings.Load(tx)
	})
	fmt.Printf("after transfer: checking=%d savings=%d total=%d\n",
		checking.LoadDirect(), savings.LoadDirect(), total)

	// __transaction_relaxed { ... }: may perform unsafe operations (here,
	// printing). The runtime rolls back the speculation and restarts the body
	// serially and irrevocably — the "in-flight switch" of the paper.
	_ = tm.Relaxed(th, tm.Options{}, func(tx *stm.Tx) {
		balance := checking.Load(tx)
		if balance < 100 {
			tx.Unsafe("fprintf(stderr, ...)") // the I/O below cannot be undone
			fmt.Printf("  [logged from inside a serialized relaxed transaction: balance=%d]\n", balance)
		}
	})

	// The onCommit-handler alternative (§3.5): defer the I/O instead of
	// serializing, keeping the transaction atomic.
	_ = tm.Atomic(th, tm.Options{}, func(tx *stm.Tx) {
		balance := checking.Load(tx)
		tx.OnCommit(func() {
			fmt.Printf("  [logged from an onCommit handler: balance=%d]\n", balance)
		})
	})

	// Condition synchronization with Retry (the primitive §5 of the paper
	// says the specification must provide): a consumer blocks on exactly its
	// predicate, a producer wakes it by committing.
	ready := stm.NewTWord(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		consumer := rt.NewThread()
		_ = tm.Atomic(consumer, tm.Options{}, func(tx *stm.Tx) {
			if ready.Load(tx) == 0 {
				tx.Retry() // sleep until `ready` changes — no condvar, no lost wake-up
			}
			fmt.Printf("  [consumer woke: checking=%d]\n", checking.Load(tx))
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer block on its predicate
	_ = tm.Atomic(th, tm.Options{}, func(tx *stm.Tx) { ready.Store(tx, 1) })
	<-done

	// Serialization-cause profiling (§6 tooling).
	rt.EnableProfiling()
	_ = tm.Relaxed(th, tm.Options{}, func(tx *stm.Tx) { tx.Unsafe("perror") })
	if p := rt.Profile(); p != nil {
		fmt.Print(p)
	}

	s := rt.Stats()
	fmt.Printf("transactions=%d aborts=%d in-flight-switches=%d start-serial=%d retries=%d\n",
		s.Commits, s.Aborts, s.InFlightSwitch, s.StartSerial, s.Retries)
}
