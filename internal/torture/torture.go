// Package torture drives the cache through seeded fault schedules and checks
// it against a sequential model. A run has two chaos phases and a check
// phase:
//
//   - Phase A churns a small keyspace with the full command mix (get, set,
//     add, cas, append, delete, incr) while every STM, slab and maintenance
//     fault point fires at rates drawn from the seed.
//   - Phase B writes a set of stable keys with key-derived values, sized to
//     force hash-table expansion while the maintenance faults are still
//     firing. Slab allocation failure is disabled for this phase so the
//     stable keys cannot be refused or evicted: once Set returns Stored, the
//     key must survive.
//
// The check phase disarms the injector, waits for expansion to finish, and
// asserts the invariants: no ACKed stable key lost or corrupted across
// expansion, stat counters consistent with the harness's own op counts,
// and — via engine.ValidateQuiescent — balanced refcounts and exact slab
// byte accounting. Every failure message carries the seed, so any run
// reproduces from its report alone.
package torture

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/tmctl"
)

// Config parameterizes one torture run. Zero fields take defaults.
type Config struct {
	Branch engine.Branch
	Seed   uint64

	Workers    int     // concurrent chaos workers (default 4)
	Ops        int     // phase-A ops per worker (default 1200)
	StableKeys int     // phase-B keys, sized to force expansion (default 2200)
	HashPower  uint    // initial table = 2^HashPower buckets per shard (default 8; 6 when sharded)
	MemLimit   uint64  // slab budget (default 64 MiB: phase B must not evict)
	MaxRate    float64 // ceiling for per-point fault rates (default 0.02)

	// Shards runs the cache as this many independent TM domains (default 1).
	// Stable keys spread across shards, so each shard's table starts smaller
	// (HashPower default drops to 6) to keep every shard's incremental
	// expander exercised while keys churn — the lost-key check then covers
	// concurrent per-shard expansions, and the refcount/slab balance checks
	// sum over shards via ValidateQuiescent.
	Shards int

	// ModeFlaps, when positive, runs the controller fault schedule: a flapper
	// goroutine forces at least this many algorithm/mode swaps — drawn from
	// the run's seed — across the shards while the chaos phases churn, each
	// swap quiescing its shard through the serial lock. The lost-key,
	// refcount and slab-accounting checks then cover transactions that
	// spanned mode boundaries. Transactional branches only (lock branches
	// have nothing to swap; the flapper is skipped and ModeSwaps stays 0).
	ModeFlaps int

	// EventLoop runs the network phases over the event-driven transport
	// (epoll front end + shard-affine worker pool) instead of goroutine per
	// connection. Only RunNetwork/RunNetworkTxn consult it.
	EventLoop bool

	// Short shrinks the run for -race smoke tests (-torture.short).
	Short bool
}

func (c Config) withDefaults() Config {
	if c.Short {
		if c.Workers == 0 {
			c.Workers = 2
		}
		if c.Ops == 0 {
			c.Ops = 300
		}
		if c.StableKeys == 0 {
			c.StableKeys = 800
		}
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Ops == 0 {
		c.Ops = 1200
	}
	if c.StableKeys == 0 {
		c.StableKeys = 2200
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.HashPower == 0 {
		if c.Shards > 1 {
			// Keys divide across shards; a smaller per-shard table keeps the
			// expansion threshold (3/2 full) within reach of every shard.
			c.HashPower = 6
		} else {
			c.HashPower = 8
		}
	}
	if c.MemLimit == 0 {
		c.MemLimit = 64 << 20
	}
	if c.MaxRate == 0 {
		c.MaxRate = 0.02
	}
	return c
}

// Report is the outcome of a run. Violations is empty on success; every
// entry embeds the seed so a failing schedule can be replayed exactly.
type Report struct {
	Branch      engine.Branch
	Seed        uint64
	Violations  []string
	HashExpands uint64
	FaultsFired uint64
	ModeSwaps   uint64 // forced controller swaps executed (Config.ModeFlaps)
	Faults      string // injector summary (point, rate, hits, fires)
	Elapsed     time.Duration

	// Wire-transaction counters, populated by RunTxn only.
	TxCommits         uint64
	TxConflicts       uint64
	TxSerialFallbacks uint64
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) String() string {
	if !r.Failed() {
		flaps := ""
		if r.ModeSwaps > 0 {
			flaps = fmt.Sprintf(", %d mode swaps", r.ModeSwaps)
		}
		if r.TxCommits > 0 {
			flaps += fmt.Sprintf(", %d tx commits (%d conflicts, %d serial fallbacks)",
				r.TxCommits, r.TxConflicts, r.TxSerialFallbacks)
		}
		return fmt.Sprintf("torture %s seed=%d: ok (%d faults fired, %d hash expansions%s, %v)",
			r.Branch, r.Seed, r.FaultsFired, r.HashExpands, flaps, r.Elapsed.Round(time.Millisecond))
	}
	out := fmt.Sprintf("torture %s seed=%d: %d violation(s):\n", r.Branch, r.Seed, len(r.Violations))
	for _, v := range r.Violations {
		out += "  " + v + "\n"
	}
	return out + r.Faults
}

func (r *Report) violatef(format string, args ...interface{}) {
	r.Violations = append(r.Violations,
		fmt.Sprintf("[seed=%d] ", r.Seed)+fmt.Sprintf(format, args...))
}

// opCounts tallies what one worker actually issued, to reconcile against the
// engine's stat counters in the check phase.
type opCounts struct {
	gets, stores, deletes, deltas uint64
}

func (a *opCounts) add(b opCounts) {
	a.gets += b.gets
	a.stores += b.stores
	a.deletes += b.deletes
	a.deltas += b.deltas
}

// Run executes one in-process torture run and returns its report.
func Run(cfg Config) *Report {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Branch: cfg.Branch, Seed: cfg.Seed}

	points := append(fault.StmPoints(), fault.EnginePoints()...)
	in := fault.RandomSchedule(cfg.Seed, points, cfg.MaxRate)
	in.Arm()

	econf := engine.Config{
		Branch:    cfg.Branch,
		Shards:    cfg.Shards,
		MemLimit:  cfg.MemLimit,
		HashPower: cfg.HashPower,
		Automove:  true,
		Fault:     in,
		Watchdog:  2 * time.Millisecond,
	}
	if cfg.ModeFlaps > 0 {
		// The flapper drives the controller manually (Override); a huge
		// interval keeps its own sampling loop out of the schedule so the
		// swap sequence is exactly the seeded one.
		p := tmctl.DefaultPolicy()
		p.Interval = time.Hour
		econf.TMCtl = &p
	}
	cache := engine.New(econf)
	cache.Start()

	issued := runChaos(cache, cfg, in, rep)

	// Check phase: no more faults, let the table settle, then audit.
	in.Disarm()
	wk := cache.NewWorker()
	waitExpansion(wk, rep)
	checkStats(wk, rep, issued)
	checkStableKeys(wk, cfg, rep)

	cache.Stop()
	if err := cache.ValidateQuiescent(); err != nil {
		rep.violatef("structural validation: %v", err)
	}

	rep.FaultsFired = in.TotalFired()
	rep.Faults = in.Summary()
	rep.Elapsed = time.Since(start)
	return rep
}

// runChaos runs phases A and B — with the mode flapper alongside when
// configured — and returns the totals of what was issued.
func runChaos(cache *engine.Cache, cfg Config, in *fault.Injector, rep *Report) opCounts {
	stopFlaps := startFlapper(cache, cfg, rep)

	// Phase A: full command mix over a churn keyspace, everything armed.
	perWorker := make([]opCounts, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			perWorker[id] = chaosWorker(cache.NewWorker(), cfg, id)
		}(w)
	}
	wg.Wait()

	// Phase B: stable keys under expansion. Allocation failure off — an
	// eviction or refused store here would be indistinguishable from the
	// lost-key bug this phase exists to catch.
	in.Set(fault.SlabAllocFail, 0)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			perWorker[id].add(stableWorker(cache.NewWorker(), cfg, id))
		}(w)
	}
	wg.Wait()

	stopFlaps()

	var total opCounts
	for i := range perWorker {
		total.add(perWorker[i])
	}
	return total
}

// startFlapper launches the forced-swap goroutine when Config.ModeFlaps asks
// for one. The flap schedule — target shard, mode rung, pacing — is a pure
// function of the run's seed. The returned stop function waits until at
// least ModeFlaps swaps have executed (the quiesce protocol makes each swap
// cheap, so trailing flaps on an idling cache finish promptly), then heals
// every shard back to Normal so the check phase and the final structural
// validation also cover the "storm passed" configuration restore.
func startFlapper(cache *engine.Cache, cfg Config, rep *Report) (stop func()) {
	ctl := cache.Controller()
	if cfg.ModeFlaps <= 0 || ctl == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		rng := rngState(cfg.Seed, 0xF1A9)
		modes := []tmctl.Mode{tmctl.ModeTML, tmctl.ModeSerial, tmctl.ModeNormal}
		flaps := 0
		for {
			select {
			case <-done:
				if flaps >= cfg.ModeFlaps {
					return
				}
			default:
			}
			r := rng.next()
			shard := int(r % uint64(cache.NumShards()))
			if err := ctl.Override(shard, modes[(r>>16)%3], false); err != nil {
				rep.violatef("mode flap %d: %v", flaps, err)
				return
			}
			flaps++
			rep.ModeSwaps++
			time.Sleep(time.Duration(500+r>>32%1500) * time.Microsecond)
		}
	}()
	return func() {
		close(done)
		<-finished
		for s := 0; s < cache.NumShards(); s++ {
			if err := ctl.Override(s, tmctl.ModeNormal, false); err != nil {
				rep.violatef("healing shard %d after flaps: %v", s, err)
			}
		}
	}
}

// chaosWorker is one phase-A goroutine: a deterministic op stream from the
// seed and worker id, aimed at a churn keyspace shared by all workers.
func chaosWorker(wk *engine.Worker, cfg Config, id int) opCounts {
	var n opCounts
	rng := rngState(cfg.Seed, uint64(id))
	ctr := []byte(fmt.Sprintf("churn-ctr-%d", id))
	wk.Set(ctr, 0, 0, []byte("0")) // may be refused by an alloc fault; incr then just misses
	n.stores++
	for op := 0; op < cfg.Ops; op++ {
		r := rng.next()
		key := []byte(fmt.Sprintf("churn-%d", r%191)) // shared hot keyspace
		val := chaosValue(r)
		switch r >> 8 % 10 {
		case 0, 1, 2:
			wk.Get(key)
			n.gets++
		case 3, 4:
			wk.Set(key, uint32(r), 0, val)
			n.stores++
		case 5:
			wk.Add(key, 0, 0, val)
			n.stores++
		case 6:
			wk.Delete(key)
			n.deletes++
		case 7:
			if r&1 == 0 {
				wk.Incr(ctr, r%97)
			} else {
				wk.Decr(ctr, r%31)
			}
			n.deltas++
		case 8:
			_, _, cas, ok := wk.Get(key)
			n.gets++
			if ok {
				wk.CAS(key, 0, 0, val, cas)
				n.stores++
			}
		default:
			wk.Append(key, []byte("+t"))
			n.stores++
		}
	}
	return n
}

// stableWorker writes this worker's slice of the stable keyspace, then reads
// it back once while expansion (and the maintenance faults stalling it) is
// still in flight. Stores retry until acknowledged: phase B's contract is
// "ACKed implies present at check time", so refusal by a transient condition
// may not silently weaken it.
func stableWorker(wk *engine.Worker, cfg Config, id int) opCounts {
	var n opCounts
	lo := id * cfg.StableKeys / cfg.Workers
	hi := (id + 1) * cfg.StableKeys / cfg.Workers
	for i := lo; i < hi; i++ {
		for {
			n.stores++
			if wk.Set(stableKey(i), 0, 0, stableValue(cfg.Seed, i)) == engine.Stored {
				break
			}
		}
	}
	for i := lo; i < hi; i++ {
		wk.Get(stableKey(i))
		n.gets++
	}
	return n
}

func stableKey(i int) []byte {
	return []byte(fmt.Sprintf("stable-%06d", i))
}

// stableValue derives the expected value from seed and index alone, so the
// checker needs no shadow copy of the store.
func stableValue(seed uint64, i int) []byte {
	h := (seed ^ uint64(i)*0x9E3779B97F4A7C15) | 1
	return []byte(fmt.Sprintf("v-%06d-%016x", i, h))
}

func chaosValue(r uint64) []byte {
	// 5..~120 bytes so churn spreads across slab classes.
	n := 5 + int(r>>24%116)
	return bytes.Repeat([]byte{byte('a' + r%26)}, n)
}

// waitExpansion lets the hash maintainer finish migrating; the per-key check
// must run against a settled table or a migration bug could masquerade as a
// timing flake.
func waitExpansion(wk *engine.Worker, rep *Report) {
	deadline := time.Now().Add(10 * time.Second)
	for wk.Expanding() {
		if time.Now().After(deadline) {
			rep.violatef("hash expansion still in flight 10s after faults disarmed")
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// checkStats reconciles the engine's counters against what the harness
// actually issued. An injected abort that double-counts (or a lost stat
// transaction) shows up here.
func checkStats(wk *engine.Worker, rep *Report, issued opCounts) {
	s := wk.Stats()
	rep.HashExpands = s.HashExpands
	if s.GetCmds != issued.gets {
		rep.violatef("cmd_get=%d, harness issued %d gets", s.GetCmds, issued.gets)
	}
	if s.GetHits+s.GetMisses != s.GetCmds {
		rep.violatef("get_hits(%d)+get_misses(%d) != cmd_get(%d)", s.GetHits, s.GetMisses, s.GetCmds)
	}
	if s.SetCmds != issued.stores {
		rep.violatef("cmd_set=%d, harness issued %d stores", s.SetCmds, issued.stores)
	}
	if s.DeleteHits+s.DeleteMiss != issued.deletes {
		rep.violatef("delete_hits(%d)+delete_misses(%d) != %d deletes issued",
			s.DeleteHits, s.DeleteMiss, issued.deletes)
	}
	if s.IncrHits+s.IncrMiss != issued.deltas {
		rep.violatef("incr_hits(%d)+incr_misses(%d) != %d incr/decr issued",
			s.IncrHits, s.IncrMiss, issued.deltas)
	}
	if s.CurrItems != s.HashItems {
		rep.violatef("curr_items=%d but hash table holds %d", s.CurrItems, s.HashItems)
	}
	if s.HashExpands == 0 {
		// Not a cache bug, a harness bug: the run never exercised the
		// invariant it exists to test.
		rep.violatef("no hash expansion occurred; run tested nothing (raise StableKeys or lower HashPower)")
	}
}

// checkStableKeys is the lost-key check: every ACKed phase-B key must be
// present with its derived value after expansion.
func checkStableKeys(wk *engine.Worker, cfg Config, rep *Report) {
	lost, corrupt := 0, 0
	for i := 0; i < cfg.StableKeys; i++ {
		val, _, _, ok := wk.Get(stableKey(i))
		switch {
		case !ok:
			lost++
			if lost <= 5 {
				rep.violatef("stable key %q lost across hash expansion", stableKey(i))
			}
		case !bytes.Equal(val, stableValue(cfg.Seed, i)):
			corrupt++
			if corrupt <= 5 {
				rep.violatef("stable key %q corrupted: got %q want %q",
					stableKey(i), val, stableValue(cfg.Seed, i))
			}
		}
	}
	if lost > 5 {
		rep.violatef("... and %d more lost keys", lost-5)
	}
	if corrupt > 5 {
		rep.violatef("... and %d more corrupted keys", corrupt-5)
	}
}

// ---------------------------------------------------------------------------
// deterministic per-worker RNG (splitmix64)

type rng struct{ s uint64 }

func rngState(seed, id uint64) rng {
	return rng{s: seed ^ (id+1)*0x9E3779B97F4A7C15}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	x := r.s
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
