package stm

import (
	"fmt"

	"repro/internal/txobs"
)

// SerializationProfile attributes serialization events to their causes — the
// analogue of the execinfo-based profiling the paper's authors added to the
// GCC TM library ("manually diagnosing the causes of aborts and serialization
// was challenging, and we eventually extended the GCC TM library ... to
// provide more meaningful profiling data", §6).
//
// It is now a compatibility view over the txobs observability layer: cause
// attribution and the conflict heat map share one collection path (the event
// pipeline), and this type merely reads the serialization-cause aggregate
// back out in the legacy shape.
//
// Profiling is off by default; enable it with Runtime.EnableProfiling (which
// enables tracing). Each in-flight switch is attributed to the unsafe
// operation that forced it (the string passed to Tx.Unsafe), and abort-serial
// events to the contention manager.
type SerializationProfile struct {
	obs *txobs.Observer
}

// EnableProfiling turns on serialization-cause attribution (by enabling the
// observability layer's event tracing).
func (rt *Runtime) EnableProfiling() {
	o := rt.EnableTracing()
	rt.prof.CompareAndSwap(nil, &SerializationProfile{obs: o})
}

// Profile returns the current profile, or nil when profiling is disabled.
func (rt *Runtime) Profile() *SerializationProfile { return rt.prof.Load() }

// profileCause counts a serialization cause through the shared pipeline.
// Retained for callers without an event context.
func (rt *Runtime) profileCause(cause string) {
	if o := rt.obs.Load(); o != nil {
		o.RecordSerialCause(cause)
	}
}

// CauseCount is one attributed serialization cause.
type CauseCount struct {
	Cause string
	Count uint64
}

// Causes returns the attributed events, most frequent first.
func (p *SerializationProfile) Causes() []CauseCount {
	cs := p.obs.SerialCauses()
	out := make([]CauseCount, len(cs))
	for i, c := range cs {
		out[i] = CauseCount{Cause: c.Cause, Count: c.Count}
	}
	return out
}

// String renders the profile as a report.
func (p *SerializationProfile) String() string {
	out := "serialization causes:\n"
	for _, c := range p.Causes() {
		out += fmt.Sprintf("  %8d  %s\n", c.Count, c.Cause)
	}
	return out
}
