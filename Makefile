GO ?= go

.PHONY: all build vet lint test check batch-race shard-race trace-race txn-race event-race fingerprint-race torture-smoke torture profile bench-smoke bench-shards bench-trace-overhead bench-tmctl bench-txn bench-conns bench-fingerprint-overhead

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is vet plus staticcheck when the binary is available; the container
# image does not ship it and nothing may be installed, so its absence is a
# skip, not a failure.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go vet ran)"; \
	fi

test:
	$(GO) test ./...

# check is the tier-1 gate plus the robustness smoke: everything builds, lints
# clean, passes its tests, survives shrunken fault schedules under the race
# detector, and keeps the batched multi-get pipeline and the request-tracing
# layer race-clean.
check: build lint test batch-race shard-race trace-race txn-race event-race fingerprint-race torture-smoke

# batch-race runs the multi-get / read-only fast-path tests under the race
# detector: batch snapshot isolation against concurrent writers, the quiet-get
# pipeline, and the RO upgrade path.
batch-race:
	$(GO) test -race -count=1 -run 'MultiGet|ReadOnly|QuietGet|BatchPipeline' ./internal/stm ./internal/engine ./internal/protocol

# shard-race runs the TM-domain partitioning tests under the race detector:
# cross-shard multi-get scatter/gather, concurrent routing from many workers,
# per-shard snapshot isolation, and the zero-cross-shard-conflict proof.
shard-race:
	$(GO) test -race -count=1 -run 'Sharded' ./internal/engine ./internal/protocol

# trace-race is the request-tracing hammer under the race detector: ring
# overflow attribution, the reset-while-toggling storm, the flight-recorder
# hot-label acceptance run, and the protocol/server span wiring.
trace-race:
	$(GO) test -race -count=1 -run 'RingOverflow|TraceResetToggleRace|FlightRecorderNamesHotLabel|HeadSamplingDeterminism|StatsSlowlog|StatsResetClearsSlowlog|DebugTraceEndpoint|ServerBindsSpans' ./internal/txobs ./internal/txtrace ./internal/engine ./internal/protocol ./internal/server

# txn-race runs the wire-transaction stack under the race detector: the
# engine's cross-shard ordered commit (conservation, serial fallback,
# absent-read validation), the protocol transaction machine on both text and
# binary, the connection-lifetime contract, and the full client library
# (conflict retries, concurrent transfers through real TCP). The seeded
# torture conservation run rides in torture-smoke's Torture pattern.
txn-race:
	$(GO) test -race -count=1 -run 'WireTx|TxSupported' ./internal/engine ./internal/server
	$(GO) test -race -count=1 -run 'Tx' ./internal/protocol
	$(GO) test -race -count=1 ./client

# event-race runs the event-driven transport under the race detector: the
# poller accept-storm/concurrent-close smoke (both epoll and the fallback),
# the event-loop server suite (graceful drain, idle reaping, MaxConns
# backpressure, wire-tx implicit abort on disconnect), the heal-probe
# escalation ladder, and the buffer-pool leak guard.
event-race:
	$(GO) test -race -count=1 ./internal/poller
	$(GO) test -race -count=1 -run 'EventLoop|HealProbe|BufferPool' ./internal/server ./internal/tmctl

# fingerprint-race runs the workload-fingerprinting stack under the race
# detector: the sketch/histogram/recorder concurrency suite, the engine
# enable/disable/reset races (including the raced exactly-once reset), the
# poller counter-parity check, the protocol stats surfaces with concurrent
# `stats reset`, the tmctl hot-key gate, and the mctop live-server snapshot.
fingerprint-race:
	$(GO) test -race -count=1 ./internal/fingerprint ./internal/mctop
	$(GO) test -race -count=1 -run 'Fingerprint|HotKeyGate|PollerCounter|StatsResetRaced|StatsFingerprint|OverflowSpill' ./internal/engine ./internal/tmctl ./internal/poller ./internal/server

# torture-smoke runs the seeded fault-injection harness in its shrunken
# (-torture.short) form. The flag is registered per test package, so only the
# packages that define it may be targeted here.
torture-smoke:
	$(GO) test -race -run Torture -count=1 ./internal/engine ./internal/server -torture.short

# torture runs the full schedules: 3 seeds per branch family in-process plus
# the end-to-end network runs. Slower; the nightly-CI shape.
torture:
	$(GO) test -race -run Torture -count=1 ./internal/engine ./internal/server

# bench-smoke is the 10-second read-only fast-path benchmark: the same
# GET-heavy (~9:1) workload through per-key transactions and batched
# read-only multi-gets, written to BENCH_ro_fastpath.json.
bench-smoke:
	$(GO) run ./cmd/mcbench -ro-smoke -ops 80000 -threads 4 -ro-out BENCH_ro_fastpath.json

# bench-shards sweeps the TM-domain count (1, 2, 4, 8 shards) at a fixed
# thread count and writes BENCH_shards.json with per-domain commit/abort
# breakdowns and the cross-shard orec-conflict counter (must be zero).
bench-shards:
	$(GO) run ./cmd/mcbench -shards 1,2,4,8 -threads 8 -ops 3000 -trials 3 -shards-out BENCH_shards.json

# bench-trace-overhead measures the request-tracing cost contract through the
# text protocol: no spans bound, bound-but-off (must stay within 2% of the
# baseline), sampled, and full, median of 3, into BENCH_trace_overhead.json.
bench-trace-overhead:
	$(GO) run ./cmd/mcbench -trace-overhead -ops 60000 -threads 4 -trace-trials 3 -trace-out BENCH_trace_overhead.json

# bench-tmctl injects a seeded single-hot-key contention storm against the
# per-shard feedback controller and writes the degrade/heal trace (per-window
# modes, abort ratios, client p99) to BENCH_tmctl.json.
bench-tmctl:
	$(GO) run ./cmd/mcbench -tmctl-storm -threads 4 -tmctl-out BENCH_tmctl.json

# bench-txn measures wire-transaction commit throughput (single-key,
# same-shard, cross-shard shapes) and the validation-conflict sweep over
# shrinking hot-key pools, written to BENCH_txn.json with GOMAXPROCS/CPU
# metadata.
bench-txn:
	$(GO) run ./cmd/mcbench -txn -threads 4 -ops 3000 -txn-shards 4 -txn-out BENCH_txn.json

# bench-conns runs the connection-scale ladder: hold 1k/10k (100k when the
# descriptor limit allows) idle connections against the event-loop and
# goroutine-per-conn transports, record RSS and goroutine growth per rung,
# then run an identical 64-conn active mix on each; written to
# BENCH_conns.json. Rungs over RLIMIT_NOFILE are recorded as skipped.
bench-conns:
	$(GO) run ./cmd/mcbench -conns -conns-points 1000,10000,100000 -conns-active 64 -conns-active-ops 1500 -conns-out BENCH_conns.json

# bench-fingerprint-overhead measures the workload-fingerprinting cost
# contract: never-enabled vs a repeat run (the measurement floor) vs
# off-after-enable (must sit inside the floor, ≤ 2%) vs sampling live,
# trials interleaved round-robin so process drift cancels, written to
# BENCH_fingerprint_overhead.json.
bench-fingerprint-overhead:
	$(GO) run ./cmd/mcbench -fingerprint-overhead -ops 40000 -threads 4 -fingerprint-trials 11 -fingerprint-out BENCH_fingerprint_overhead.json

# profile runs a short mcbench with transaction observability on and prints
# the serialization causes, conflict heat map, and latency summary.
profile:
	$(GO) run ./cmd/mcbench -profile it-oncommit -ops 2000 -threads 4
