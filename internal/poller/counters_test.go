package poller

import (
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func counterPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func awaitReady(t *testing.T, ch chan Token, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("timeout waiting for readiness delivery (%s)", what)
	}
}

// runCounterScenario drives one poller implementation through a fixed
// two-phase script and returns the deterministic counters (probes,
// synthesized) it ends with. Wakeups are asserted as lower bounds inside
// (the at-least-once contract allows duplicate deliveries), but probes and
// synthesized are exact: one probe per Arm, one synthesized delivery for
// the Arm that found pending input.
func runCounterScenario(t *testing.T, name string, mk func(func(Token)) (Poller, error)) Counters {
	t.Helper()
	readyCh := make(chan Token, 64)
	p, err := mk(func(tok Token) { readyCh <- tok })
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer p.Close()
	cs, ok := p.(CounterSource)
	if !ok {
		t.Fatalf("%s: %T does not implement CounterSource", name, p)
	}

	client, server := counterPair(t)
	defer client.Close()
	defer server.Close()

	// Phase 1: input is already pending when Arm runs, so the Arm probe
	// must synthesize the delivery (the event edge-triggered epoll would
	// otherwise never fire again).
	if _, err := client.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	sc := server.(syscall.Conn)
	rc, err := sc.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	// Park outside the poller until the bytes are visible on the server
	// side, so the Arm probe deterministically finds them.
	if _, err := waitReadable(rc); err != nil {
		t.Fatal(err)
	}
	tok, err := p.Add(server)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Arm(tok); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, readyCh, name+" phase 1")
	c := cs.Counters()
	if c.Probes != 1 || c.Synthesized != 1 || c.Wakeups < 1 {
		t.Fatalf("%s phase 1: %+v, want probes=1 synthesized=1 wakeups≥1", name, c)
	}

	// Phase 2: the buffer is drained before Arm, so the probe finds
	// nothing; the later write must arrive as a plain wakeup, never as a
	// synthesized delivery.
	if _, err := io.ReadFull(server, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.Arm(tok); err != nil {
		t.Fatal(err)
	}
	waitCond(t, name+" second probe", func() bool { return cs.Counters().Probes == 2 })
	if c := cs.Counters(); c.Synthesized != 1 {
		t.Fatalf("%s phase 2 pre-write: %+v, empty-buffer probe must not synthesize", name, c)
	}
	if _, err := client.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, readyCh, name+" phase 2")
	c = cs.Counters()
	if c.Probes != 2 || c.Synthesized != 1 || c.Wakeups < 2 {
		t.Fatalf("%s phase 2: %+v, want probes=2 synthesized=1 wakeups≥2", name, c)
	}

	// Reset clears all three (stats-reset semantics).
	cs.ResetCounters()
	if z := cs.Counters(); z != (Counters{}) {
		t.Fatalf("%s after reset: %+v", name, z)
	}
	return c
}

// TestPollerCounterParity is the cross-implementation contract: on linux
// the platform poller is epoll and NewFallback is the portable goroutine
// parker, and both must report identical Probes/Synthesized counts for the
// identical readiness script — otherwise dashboards lie off-linux. (Off
// linux both constructors build the fallback and the parity is trivial.)
func TestPollerCounterParity(t *testing.T) {
	platform := runCounterScenario(t, "platform", New)
	fallback := runCounterScenario(t, "fallback", NewFallback)
	if platform.Probes != fallback.Probes || platform.Synthesized != fallback.Synthesized {
		t.Fatalf("counter semantics diverge: platform %+v vs fallback %+v", platform, fallback)
	}
}
