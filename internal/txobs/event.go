package txobs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KBegin is a transaction attempt beginning (speculative or serial).
	KBegin Kind = iota
	// KCommit is a successful commit of a source-level transaction.
	KCommit
	// KAbort is an aborted speculative attempt.
	KAbort
	// KInFlightSwitch is a relaxed transaction hitting an unsafe operation and
	// restarting serial-irrevocable (§3's dominant serialization cause).
	KInFlightSwitch
	// KStartSerial is a transaction that began in serial mode.
	KStartSerial
	// KAbortSerial is a transaction serialized for progress after the
	// contention manager's consecutive-abort limit.
	KAbortSerial
	// KHTMFallback is an emulated hardware transaction taking the lock
	// fallback after its retry budget.
	KHTMFallback
	// KWatchdogBackoff and KWatchdogSerialize are starvation-watchdog
	// escalations.
	KWatchdogBackoff
	KWatchdogSerialize
	// KRetryWait is a condition-synchronization retry blocking on its read set.
	KRetryWait
	// KROFastCommit is a read-only transaction committing on the fast path:
	// read-set revalidation against the global timestamp, zero orec
	// acquisitions and zero serial-lock traffic.
	KROFastCommit
	// KROUpgrade is a read-only attempt reaching a write barrier and
	// restarting cleanly on the normal (writer-capable) path.
	KROUpgrade

	kindN
)

var kindNames = [kindN]string{
	"begin", "commit", "abort", "inflight_switch", "start_serial",
	"abort_serial", "htm_fallback", "watchdog_backoff", "watchdog_serialize",
	"retry_wait", "ro_fast_commit", "ro_upgrade",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// serializes reports whether the event kind is a serialization event (the
// category the paper's Tables 1-4 break down).
func (k Kind) serializes() bool {
	switch k {
	case KInFlightSwitch, KStartSerial, KAbortSerial, KHTMFallback,
		KWatchdogBackoff, KWatchdogSerialize:
		return true
	}
	return false
}

// Event is one recorded transaction event. Events are immutable once recorded
// (the ring stores pointers to fully built events).
type Event struct {
	Seq    uint64 // global order across all rings
	When   int64  // UnixNano
	Thread int32  // recording sink id (-1 = runtime-global, e.g. watchdog)
	Kind   Kind
	Serial bool   // the attempt was serial-irrevocable
	Retry  uint32 // consecutive-abort ordinal of the source transaction
	Reads  uint32 // read-set size at event time
	Writes uint32 // write-set size at event time
	Orec   int32  // conflicting orec index, -1 = none/unknown
	Shard  int32  // TM domain (shard) the event came from; 0 when unsharded
	Label  Label  // label of the conflicting location (NoLabel = unnamed)
	Cause  string // serialization/abort cause, "" for begin/commit
	Site   string // source-level transaction site (Props.Site)
	Owner  string // site label of the last traced writer of the conflicting orec, "" = unknown
}

// Ring is a lock-free ring buffer of events. Writers reserve a slot with one
// atomic add and publish the event with one atomic pointer store; readers
// snapshot without blocking writers. Multiple writers are safe (the per-thread
// rings of the runtime happen to have one writer each, but the watchdog and
// tests share rings).
type Ring struct {
	slots   []atomic.Pointer[Event]
	mask    uint64
	head    atomic.Uint64 // number of events ever recorded into this ring
	dropped atomic.Uint64 // events that overwrote an unread slot (ring wrapped)
}

// NewRing creates a ring holding capacity events, rounded up to a power of
// two (minimum 8).
func NewRing(capacity int) *Ring {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], c), mask: uint64(c - 1)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns the number of events ever recorded (recorded - Cap is the
// worst-case number overwritten).
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Record stores ev, overwriting the oldest slot when full. An overwrite is
// counted in dropped so scrapers can tell a quiet ring from a wrapped one:
// the event in the slot keeps its own (correct) shard/thread attribution, the
// counter owns the loss.
func (r *Ring) Record(ev *Event) {
	i := r.head.Add(1) - 1
	if i >= uint64(len(r.slots)) {
		r.dropped.Add(1)
	}
	r.slots[i&r.mask].Store(ev)
}

// Dropped returns the number of events overwritten before any reader could
// have seen them (0 until the ring wraps).
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// reset empties the ring: slots nil'd, head and dropped rewound, so events
// recorded after a stats reset are not misreported as wrap losses.
func (r *Ring) reset() {
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.head.Store(0)
	r.dropped.Store(0)
}

// Snapshot returns the events currently held, oldest first. Concurrent
// writers may overwrite slots during the scan; every returned event is
// nonetheless complete and self-consistent.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Sink is a handle through which one thread records events into its ring and
// the shared aggregates. The hot-path contract: when the observer is
// disabled, Record returns after a single atomic load.
type Sink struct {
	obs  *Observer
	ring *Ring
	id   int32
}

// Ring returns the sink's ring (for tests and diagnostics).
func (s *Sink) Ring() *Ring { return s.ring }

// Record timestamps, sequences, and records ev, updating the observer's
// aggregates (kind counters, cause map, conflict heat map). ev must not be
// reused by the caller afterwards. No-op while the observer is disabled.
func (s *Sink) Record(ev *Event) {
	o := s.obs
	if !o.enabled.Load() {
		return
	}
	ev.Seq = o.seq.Add(1)
	ev.When = time.Now().UnixNano()
	ev.Thread = s.id
	o.aggregate(ev)
	s.ring.Record(ev)
}
