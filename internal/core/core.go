// Package core models the programmer-facing surface of the Draft C++ TM
// Specification (version 1.1) as evaluated by the paper, on top of the
// internal/stm runtime:
//
//   - transaction declarations: tm.Atomic for __transaction_atomic and
//     tm.Relaxed (with the StartSerial option) for __transaction_relaxed —
//     the blessed entry points live in internal/tm; this package holds only
//     what has no tm equivalent;
//   - transaction expressions (the generic Expr; the LoadWord/StoreWord
//     volatile-replacement sugar of §3.3 lives in internal/tm);
//   - function annotations: transaction_safe, transaction_callable, the GCC
//     transaction_pure extension, and the treatment of un-annotated calls
//     (Call / CallPure);
//   - transaction_cancel (stm.Tx.Cancel) and may_cancel_outer (documented
//     no-op here, since our checking is dynamic);
//   - the GCC onCommit/onAbort handler extension (stm.Tx.OnCommit/OnAbort)
//     and AfterCommit, the "register a handler or run it now" idiom the paper
//     needed InTransaction visibility for (§3.5).
//
// GCC's checks are static; ours are dynamic: where GCC would reject a
// program at compile time (an unsafe operation in an atomic transaction, a
// callable function invoked from an atomic transaction), this package panics
// with a descriptive error. The performance-model contract is preserved
// exactly: atomic transactions never serialize except for contention-manager
// progress, while relaxed transactions serialize whenever they reach an
// unsafe operation.
package core

import (
	"errors"
	"fmt"

	"repro/internal/stm"
	"repro/internal/tm"
)

// TM is a transactional-memory domain bound to an stm.Runtime.
type TM struct {
	rt *stm.Runtime
}

// New wraps an stm runtime in the specification-level API.
func New(rt *stm.Runtime) *TM { return &TM{rt: rt} }

// Runtime exposes the underlying runtime (for statistics).
func (tm *TM) Runtime() *stm.Runtime { return tm.rt }

// NewContext creates a per-goroutine execution context.
func (tm *TM) NewContext() *Ctx { return &Ctx{th: tm.rt.NewThread()} }

// Ctx is a per-goroutine context; it owns a runtime thread descriptor.
// Not safe for concurrent use.
type Ctx struct {
	th *stm.Thread
}

// Thread exposes the underlying stm thread descriptor.
func (c *Ctx) Thread() *stm.Thread { return c.th }

// InTransaction reports whether the context is currently executing inside a
// transaction. GCC does not expose this query; the paper's authors patched
// libitm to make it visible so code reachable both transactionally and
// nontransactionally could decide whether to defer work to an onCommit
// handler (§3.5).
func (c *Ctx) InTransaction() bool { return c.th.InTx() }

// Expr evaluates fn as a transaction expression (the specification's
// syntactic sugar for initializing a variable or evaluating a conditional
// transactionally) and returns its result. Like GCC, no single-location
// optimization is applied: the full transaction protocol runs (§3.3 notes
// the performance consequence).
func Expr[T any](c *Ctx, fn func(*stm.Tx) T) T {
	var out T
	// Transaction expressions cannot cancel; any error here is impossible.
	_ = tm.Atomic(c.th, tm.Options{}, func(tx *stm.Tx) { out = fn(tx) })
	return out
}

// AfterCommit runs fn when the current transaction (if any) commits, or
// immediately when called outside a transaction. This is the idiom the paper
// used for sem_post and deferred logging from code reachable both ways.
func (c *Ctx) AfterCommit(fn func()) {
	if tx := c.th.Current(); tx != nil {
		tx.OnCommit(fn)
		return
	}
	fn()
}

// ---------------------------------------------------------------------------
// Function annotations

// Attr is a function annotation from the specification (plus the GCC pure
// extension and the "no annotation" case).
type Attr int

const (
	// AttrSafe marks a transaction_safe function: statically free of unsafe
	// operations, callable from any transaction.
	AttrSafe Attr = iota
	// AttrCallable marks a transaction_callable function: instrumented, but
	// possibly unsafe, so callable only from relaxed transactions. Purely a
	// performance annotation — without it an un-annotated call serializes
	// immediately.
	AttrCallable
	// AttrUnknown is an un-annotated, possibly-unsafe function. A relaxed
	// transaction must become serial and irrevocable before calling it.
	AttrUnknown
	// AttrPure marks a GCC [[transaction_pure]] function: callable from any
	// transaction without instrumentation and without checking. Unsound if
	// the function touches shared state (§3.4's marshaling relies on this).
	AttrPure
)

func (a Attr) String() string {
	switch a {
	case AttrSafe:
		return "transaction_safe"
	case AttrCallable:
		return "transaction_callable"
	case AttrUnknown:
		return "unannotated"
	case AttrPure:
		return "transaction_pure"
	}
	return fmt.Sprintf("Attr(%d)", int(a))
}

// ErrCallableFromAtomic reports a transaction_callable (or un-annotated)
// function invoked from an atomic transaction — a compile error under GCC.
var ErrCallableFromAtomic = errors.New("core: non-safe function called from atomic transaction")

// Call invokes fn from inside tx under the given annotation, enforcing the
// specification's rules:
//
//   - safe: always allowed, instrumented;
//   - callable: rejected in atomic transactions (panic — GCC compile error);
//     in relaxed transactions the call proceeds instrumented, and serializes
//     only if fn itself reaches an unsafe operation;
//   - unknown: rejected in atomic transactions; a relaxed transaction becomes
//     serial and irrevocable before the call (in-flight switch);
//   - pure: always allowed, never checked.
func Call(tx *stm.Tx, attr Attr, name string, fn func(*stm.Tx)) {
	switch attr {
	case AttrSafe, AttrPure:
		fn(tx)
	case AttrCallable:
		if tx.Kind() == stm.Atomic {
			panic(fmt.Errorf("%w: %s is transaction_callable", ErrCallableFromAtomic, name))
		}
		fn(tx)
	case AttrUnknown:
		if tx.Kind() == stm.Atomic {
			panic(fmt.Errorf("%w: %s is not annotated", ErrCallableFromAtomic, name))
		}
		tx.Unsafe("call to un-annotated " + name)
		fn(tx)
	default:
		panic(fmt.Sprintf("core: bad attribute %d", int(attr)))
	}
}

// CallPure invokes a [[transaction_pure]] function that takes no transactional
// arguments. The runtime performs no instrumentation and no checking; the
// caller is responsible for ensuring fn touches only thread-local state (the
// contract the marshaling pattern of §3.4 exploits, and its danger).
func CallPure(tx *stm.Tx, fn func()) { fn() }
