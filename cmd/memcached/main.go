// Command memcached runs the TM-memcached server: the cache engine under any
// synchronization branch from the paper, speaking the memcached text and
// binary protocols over TCP.
//
// Examples:
//
//	memcached -addr :11211 -branch baseline
//	memcached -addr :11211 -branch it-oncommit
//	memcached -addr :11211 -branch ip-nolock -stm norec -cm none
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/stm"
	"repro/internal/tmctl"
	"repro/internal/txtrace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		branchStr = flag.String("branch", "it-oncommit", "synchronization branch (baseline, semaphore, ip, it, ip-callable, it-callable, ip-max, it-max, ip-lib, it-lib, ip-oncommit, it-oncommit, ip-nolock, it-nolock)")
		memLimit  = flag.Uint64("m", 64, "memory limit in MiB")
		hashPower = flag.Uint("hashpower", 16, "initial hash table power (per shard)")
		shards    = flag.Int("shards", 0, "independent TM domains to partition the cache into (0 = GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "verbose event logging to stderr")
		stmAlg    = flag.String("stm", "", "override STM algorithm (mlwt, lazy, norec, serial)")
		cmStr     = flag.String("cm", "", "override contention manager (serialize, none, backoff, hourglass)")
		noLock    = flag.Bool("nolock", false, "override: remove the global serial lock")
		trace     = flag.Bool("trace", false, "enable transaction observability from startup (stats tm/conflicts/latency)")
		txtraceMd = flag.String("txtrace", "off", "request tracing mode from startup: off, sampled, or full (stats slowlog, /debug/trace)")
		debugAddr = flag.String("debug-addr", "", "serve the debug HTTP endpoint (/debug/vars, /metrics, /debug/pprof/) on this address")
		tmCtl     = flag.Bool("tmctl", false, "enable the per-shard feedback controller (stats tmctl, /debug/tmctl)")
		ctlIntvl  = flag.Duration("tmctl-interval", 0, "controller sampling interval (0 = default 1s)")
		ctlDwell  = flag.Duration("tmctl-dwell", 0, "controller minimum dwell time between mode swaps on one shard (0 = default 5s)")
		eventLoop = flag.Bool("event-loop", runtime.GOOS == "linux", "event-driven transport: epoll parks idle connections, a bounded shard-affine worker pool serves ready ones (default on linux; off = goroutine per connection)")
		workers   = flag.Int("workers", 0, "event-loop execution workers (0 = shards+2, capped at 32)")
		fprint    = flag.Bool("fingerprint", false, "enable per-shard workload fingerprinting from startup (stats fingerprint, /debug/fingerprint, mctop; arms the tmctl hot-key gate)")
	)
	flag.Parse()

	b, err := engine.ParseBranch(*branchStr)
	if err != nil {
		log.Fatal(err)
	}
	conf := engine.Config{
		Branch:    b,
		Shards:    *shards,
		MemLimit:  *memLimit << 20,
		HashPower: *hashPower,
		Verbose:   *verbose,
		Automove:  true,
	}
	if *verbose {
		conf.LogSink = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	if *stmAlg != "" || *cmStr != "" || *noLock {
		sc := stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize, NoSerialLock: *noLock}
		if *stmAlg != "" {
			if sc.Algorithm, err = stm.ParseAlgorithm(*stmAlg); err != nil {
				log.Fatal(err)
			}
		}
		if *cmStr != "" {
			if sc.CM, err = stm.ParseCM(*cmStr); err != nil {
				log.Fatal(err)
			}
		}
		conf.STM = &sc
	}
	if *tmCtl {
		p := tmctl.DefaultPolicy()
		p.Interval = *ctlIntvl
		p.MinDwell = *ctlDwell
		conf.TMCtl = &p
	}
	// Validate refuses flag combinations New would otherwise clamp silently
	// or panic on, with the offending field in the message.
	if err := conf.Validate(); err != nil {
		log.Fatal(err)
	}

	cache := engine.New(conf)
	cache.Start()
	if *trace {
		cache.EnableTracing()
	}
	if mode, err := txtrace.ParseMode(*txtraceMd); err != nil {
		log.Fatal(err)
	} else if mode != txtrace.ModeOff {
		cache.EnableTxTrace(mode)
	}
	if *fprint {
		cache.EnableFingerprint()
	}
	srv, err := server.ListenConfig(cache, server.Config{
		Addr:      *addr,
		EventLoop: *eventLoop,
		Workers:   *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	transport := "goroutine-per-conn"
	if srv.EventLoop() {
		transport = "event-loop"
	}
	log.Printf("tm-memcached serving on %s (branch %s, %s transport)", srv.Addr(), b, transport)
	var dbg interface{ Close() error }
	if *debugAddr != "" {
		d, bound, err := server.ListenDebugServer(cache, srv, *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dbg = d
		log.Printf("debug endpoint on http://%s/debug/vars (also /metrics, /debug/pprof/, /debug/tm, /debug/trace, /debug/tmctl, /debug/fingerprint)", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if dbg != nil {
		dbg.Close()
	}
	srv.Close()
	cache.Stop()
}
