package tmlib

import (
	"errors"
	"testing"

	"repro/internal/stm"
)

// expectBounds runs fn in a transaction expecting it to panic with
// ErrMarshalBounds, and asserts the shared buffer keeps its prior contents
// (abort semantics: the panic unwinds with every transactional effect undone).
func expectBounds(t *testing.T, buf *stm.TBytes, fn func(tx *stm.Tx)) {
	t.Helper()
	before := make([]byte, buf.Len())
	buf.ReadAllDirect(before)
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic; want ErrMarshalBounds")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrMarshalBounds) {
			t.Fatalf("panic = %v, want ErrMarshalBounds", r)
		}
		after := make([]byte, buf.Len())
		buf.ReadAllDirect(after)
		if string(after) != string(before) {
			t.Errorf("buffer mutated across aborted marshal: %q -> %q", before, after)
		}
	}()
	_ = th.Run(stm.Props{Kind: stm.Atomic}, fn)
}

func TestCursorReadWriteFull(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		b := tb("hello world")
		c := NewCursor(tx, b, 0)
		if got := c.ReadFull(5); string(got) != "hello" {
			t.Errorf("ReadFull(5) = %q", got)
		}
		if c.Off() != 5 || c.Remaining() != 6 {
			t.Errorf("after read: off %d remaining %d", c.Off(), c.Remaining())
		}
		c.WriteFull([]byte("-earth"))
		if c.Remaining() != 0 {
			t.Errorf("remaining = %d, want 0", c.Remaining())
		}
	})
}

func TestCursorWriteTrunc(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		b := tb("0123456789")
		c := NewCursor(tx, b, 7)
		if n := c.WriteTrunc([]byte("abcdef")); n != 3 {
			t.Errorf("WriteTrunc past-capacity = %d, want 3", n)
		}
		// At the very end: write nothing, return 0 (the old negative-length
		// slice panic).
		if n := c.WriteTrunc([]byte("xyz")); n != 0 {
			t.Errorf("WriteTrunc at end = %d, want 0", n)
		}
	})
}

func TestCursorBounds(t *testing.T) {
	b := tb("abcdef")
	expectBounds(t, b, func(tx *stm.Tx) { NewCursor(tx, b, 7) })
	expectBounds(t, b, func(tx *stm.Tx) { NewCursor(tx, b, -1) })
	expectBounds(t, b, func(tx *stm.Tx) { NewCursor(tx, b, 4).ReadFull(3) })
	expectBounds(t, b, func(tx *stm.Tx) { NewCursor(tx, b, 4).WriteFull([]byte("xyz")) })
	expectBounds(t, b, func(tx *stm.Tx) { MarshalIn(tx, b, 3, 4) })
	expectBounds(t, b, func(tx *stm.Tx) { MarshalIn(tx, b, -1, 2) })
	expectBounds(t, b, func(tx *stm.Tx) { MarshalOut(tx, b, 5, []byte("xy")) })
}

// TestCursorBoundsRollsBackPriorWrites: a committed-looking prefix written
// through the cursor must vanish when a later marshal overflows.
func TestCursorBoundsRollsBackPriorWrites(t *testing.T) {
	b := tb("AAAAAA")
	expectBounds(t, b, func(tx *stm.Tx) {
		c := NewCursor(tx, b, 0)
		c.WriteFull([]byte("BBBB")) // would commit, but...
		c.WriteFull([]byte("CCC"))  // ...this overflows: all of it unwinds
	})
}

// TestSnprintfTruncAtEnd: the snprintf clones hit the fixed truncation path
// instead of slicing negatively when the offset reaches the end.
func TestSnprintfTruncAtEnd(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		dst := tb("0123456789")
		if n := SnprintfUint(tx, dst, dst.Len(), 42); n != 0 {
			t.Errorf("SnprintfUint at end = %d, want 0", n)
		}
		if n := SnprintfUint(tx, dst, 8, 12345); n != 2 {
			t.Errorf("SnprintfUint truncated = %d, want 2", n)
		}
	})
}
