package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestReconfigureSwapTorture hammers a bank-transfer invariant from several
// goroutines while the main goroutine hot-swaps the runtime through every
// algorithm. Any attempt observing mixed-algorithm state (a TML writer
// concurrent with an orec writer, an eager in-place write surviving a flip)
// corrupts the conserved sum.
func TestReconfigureSwapTorture(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMSerialize})
	const (
		accounts = 16
		workers  = 4
		initial  = 1000
	)
	var accts [accounts]*TWord
	for i := range accts {
		accts[i] = NewTWord(initial)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.NewThread()
			i := uint64(w)
			for !stop.Load() {
				i++
				from, to := accts[i%accounts], accts[(i*7+3)%accounts]
				if from == to {
					continue
				}
				mustRun(t, th, Props{Kind: Atomic, Site: "transfer"}, func(tx *Tx) {
					f := from.Load(tx)
					if f == 0 {
						return
					}
					from.Store(tx, f-1)
					to.Store(tx, to.Load(tx)+1)
				})
				// Interleave read-only sum checks: these ride the RO fast path
				// under the orec algorithms and must never see a torn total.
				if i%8 == 0 {
					var sum uint64
					mustRun(t, th, Props{Kind: Atomic, ReadOnly: true, Site: "audit"}, func(tx *Tx) {
						sum = 0
						for _, a := range accts {
							sum += a.Load(tx)
						}
					})
					if sum != accounts*initial {
						t.Errorf("mid-run audit sum = %d, want %d", sum, accounts*initial)
						stop.Store(true)
					}
				}
			}
		}(w)
	}

	cycle := []Algorithm{LazyAlg, TML, SerialAlg, HTM, NOrec, MLWT}
	swaps := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !stop.Load() {
		next := cycle[swaps%len(cycle)]
		if err := rt.Reconfigure(func(d *DynConfig) {
			d.Algorithm = next
			d.SerializeAfter = 10 + swaps%90
		}); err != nil {
			t.Fatalf("Reconfigure: %v", err)
		}
		swaps++
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	var sum uint64
	for _, a := range accts {
		sum += a.LoadDirect()
	}
	if sum != accounts*initial {
		t.Fatalf("final sum = %d, want %d (money not conserved across swaps)", sum, accounts*initial)
	}
	snap := rt.Stats()
	if snap.Reconfigures != uint64(swaps) {
		t.Errorf("Reconfigures = %d, want %d", snap.Reconfigures, swaps)
	}
	if snap.AlgoSwaps == 0 || snap.AlgoSwaps > snap.Reconfigures {
		t.Errorf("AlgoSwaps = %d out of range (Reconfigures = %d)", snap.AlgoSwaps, snap.Reconfigures)
	}
	if swaps < 10 {
		t.Errorf("only %d swaps completed in 2s; quiesce is stalling", swaps)
	}
}

func TestReconfigureNoSerialLock(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, NoSerialLock: true, CM: CMNone})
	if err := rt.Reconfigure(func(d *DynConfig) { d.Algorithm = TML }); err != ErrNoSerialLock {
		t.Fatalf("Reconfigure on NoSerialLock runtime = %v, want ErrNoSerialLock", err)
	}
	if got := rt.Algorithm(); got != MLWT {
		t.Fatalf("algorithm changed to %v despite error", got)
	}
}

// TestBackoffDeterminism proves the satellite requirement: with the jitter
// state seeded from an internal/fault injector seed, the backoff delay
// sequence is a pure function of (seed, thread ordinal, consec) — identical
// across runtimes with the same seed, different across seeds.
func TestBackoffDeterminism(t *testing.T) {
	seq := func(seed uint64, ordinal uint64, n int) []time.Duration {
		in := fault.New(seed)
		rt := New(Config{Algorithm: MLWT, CM: CMBackoff, Fault: in})
		var th *Thread
		for i := uint64(0); i <= ordinal; i++ {
			th = rt.NewThread()
		}
		bc := rt.DynConfig().Backoff
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = backoffDelay(&th.rngState, i+1, bc)
		}
		return out
	}

	a := seq(0xDECAFBAD, 1, 32)
	b := seq(0xDECAFBAD, 1, 32)
	c := seq(0x5EED5EED, 1, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay[%d]: %v != %v for identical seeds", i, a[i], b[i])
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("identical delay sequences for different seeds")
	}

	// The curve must be exponential with jitter inside [w/2, w] where the
	// window w doubles per consecutive abort up to the cap.
	bc := BackoffConfig{}.withDefaults()
	for i, d := range a {
		shift := i + 1
		if shift > bc.MaxShift {
			shift = bc.MaxShift
		}
		w := time.Duration(bc.BaseNs << shift)
		if d < w/2 || d > w {
			t.Errorf("delay[%d] = %v outside window [%v, %v]", i, d, w/2, w)
		}
	}
}

// TestReconfigureRetryBudget checks the dynamic retry budget: shrinking
// SerializeAfter makes CMSerialize escalate earlier, visible as AbortSerial.
func TestReconfigureRetryBudget(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMSerialize})
	if err := rt.Reconfigure(func(d *DynConfig) { d.SerializeAfter = 3 }); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	th := rt.NewThread()
	v := NewTWord(0)
	aborts := 0
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		v.Store(tx, v.Load(tx)+1)
		if aborts < 5 && !tx.Serial() {
			aborts++
			tx.Abort()
		}
	})
	if got := rt.Stats().AbortSerial; got != 1 {
		t.Fatalf("AbortSerial = %d, want 1 (budget 3 with 5 requested aborts)", got)
	}
	if got := v.LoadDirect(); got != 1 {
		t.Fatalf("v = %d, want 1", got)
	}
}
