// Package assoc is memcached's hash table (assoc.c): power-of-two bucket
// arrays with chained items, plus the incremental expansion protocol in which
// a maintenance thread migrates buckets from the old table to a doubled new
// one while lookups consult whichever table still owns their bucket.
//
// Chain membership (HNext and bucket heads) belongs to the item-lock domain;
// the table structure (expansion state, bucket array swap) belongs to the
// cache-lock domain, matching the lock order the paper documents. All shared
// accesses go through an access.Ctx provided by a caller holding the
// appropriate protection.
package assoc

import (
	"repro/internal/access"
	"repro/internal/item"
	"repro/internal/stm"
	"repro/internal/txobs"
)

// Observability labels for the conflict heat map: chain heads are the
// item-lock domain's hottest words, the expansion state is the structure that
// serializes the hash maintenance thread.
var (
	lblHashBucket = txobs.RegisterLabel("hash_bucket")
	lblHashState  = txobs.RegisterLabel("hash_state")
	lblHashItems  = txobs.RegisterLabel("hash_items")
)

// DefaultPowerBits is memcached's initial hash power (16 → 65536 buckets).
// Tests and benchmarks use smaller tables to exercise expansion.
const DefaultPowerBits = 16

// BulkMove is how many buckets one maintenance step migrates
// (DEFAULT_HASH_BULK_MOVE).
const BulkMove = 1

type buckets struct {
	arr   []*stm.TAny
	power uint
}

func newBuckets(power uint) *buckets {
	b := &buckets{arr: make([]*stm.TAny, 1<<power), power: power}
	for i := range b.arr {
		b.arr[i] = stm.NewTAny(nil).Label(lblHashBucket)
	}
	return b
}

func (b *buckets) mask() uint64 { return uint64(len(b.arr)) - 1 }

// Table is the hash table.
type Table struct {
	primary *stm.TAny // *buckets
	old     *stm.TAny // *buckets while expanding, else nil

	// Expanding is the "volatile" expansion flag; ExpandBucket is the next
	// old-table bucket to migrate.
	Expanding    *stm.TWord
	ExpandBucket *stm.TWord

	// Count is hash_items.
	Count *stm.TWord
}

// New creates a table with 2^power buckets.
func New(power uint) *Table {
	return &Table{
		primary:      stm.NewTAny(newBuckets(power)).Label(lblHashState),
		old:          stm.NewTAny(nil).Label(lblHashState),
		Expanding:    stm.NewTWord(0).Label(lblHashState),
		ExpandBucket: stm.NewTWord(0).Label(lblHashState),
		Count:        stm.NewTWord(0).Label(lblHashItems),
	}
}

// Hash is the hash function used for keys (FNV-1a 64, standing in for
// memcached's Jenkins hash).
func Hash(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// bucketFor returns the TAny head of the chain owning hash hv.
//
// Lookups in the IP and lock branches read this structure while holding only
// the key's item lock (memcached's post-1.4.10 scalability design), so the
// routing must stay correct against a concurrent maintainer that holds the
// cache-lock domain but not this key's stripe. The invariants that make that
// safe: (1) an item's own bucket cannot migrate while its stripe is held
// (ExpandStepLocked trylocks the stripe); (2) StartExpand publishes the new
// primary table only after Expanding is visible, so a reader that still sees
// Expanding==0 also still sees the pre-expansion primary.
func (t *Table) bucketFor(c access.Ctx, hv uint64) *stm.TAny {
	p := c.Any(t.primary).(*buckets)
	if c.Word(t.Expanding) != 0 {
		if o, ok := c.Any(t.old).(*buckets); ok {
			ob := hv & o.mask()
			if ob >= c.Word(t.ExpandBucket) {
				return o.arr[ob]
			}
		}
	}
	return p.arr[hv&p.mask()]
}

// Find walks the chain for key, comparing via the context's memcmp (the libc
// call that is unsafe inside transactions before stage Lib).
func (t *Table) Find(c access.Ctx, hv uint64, key []byte) *item.Item {
	it := item.AsItem(c.Any(t.bucketFor(c, hv)))
	for it != nil {
		if it.Hash == hv && it.KeyLen == len(key) && c.Memcmp(it.Key, 0, key) == 0 {
			return it
		}
		it = item.AsItem(c.Any(it.HNext))
	}
	return nil
}

// Insert pushes it onto its chain. The caller ensures the key is absent.
func (t *Table) Insert(c access.Ctx, it *item.Item) {
	b := t.bucketFor(c, it.Hash)
	c.SetAny(it.HNext, c.Any(b))
	c.SetAny(b, it)
	c.AddWord(t.Count, 1)
}

// Delete removes the item with the given key from its chain and returns it,
// or nil if absent.
func (t *Table) Delete(c access.Ctx, hv uint64, key []byte) *item.Item {
	b := t.bucketFor(c, hv)
	var prev *item.Item
	it := item.AsItem(c.Any(b))
	for it != nil {
		if it.Hash == hv && it.KeyLen == len(key) && c.Memcmp(it.Key, 0, key) == 0 {
			next := c.Any(it.HNext)
			if prev == nil {
				c.SetAny(b, next)
			} else {
				c.SetAny(prev.HNext, next)
			}
			c.SetAny(it.HNext, nil)
			c.AddWord(t.Count, ^uint64(0))
			return it
		}
		prev = it
		it = item.AsItem(c.Any(it.HNext))
	}
	return nil
}

// RemoveItem unlinks exactly the given item from its chain (identity, not key,
// comparison — eviction and expiry-reclaim already hold the item pointer) and
// reports whether it was found.
func (t *Table) RemoveItem(c access.Ctx, target *item.Item) bool {
	b := t.bucketFor(c, target.Hash)
	var prev *item.Item
	it := item.AsItem(c.Any(b))
	for it != nil {
		if it == target {
			next := c.Any(it.HNext)
			if prev == nil {
				c.SetAny(b, next)
			} else {
				c.SetAny(prev.HNext, next)
			}
			c.SetAny(it.HNext, nil)
			c.AddWord(t.Count, ^uint64(0))
			return true
		}
		prev = it
		it = item.AsItem(c.Any(it.HNext))
	}
	return false
}

// Size returns the number of buckets in the primary table.
func (t *Table) Size(c access.Ctx) uint64 {
	return uint64(len(c.Any(t.primary).(*buckets).arr))
}

// Items returns hash_items.
func (t *Table) Items(c access.Ctx) uint64 { return c.Word(t.Count) }

// NeedExpand reports whether the item count has outgrown the table (the
// 3/2-full trigger memcached uses before waking the maintenance thread).
func (t *Table) NeedExpand(c access.Ctx) bool {
	if c.Word(t.Expanding) != 0 {
		return false
	}
	p := c.Any(t.primary).(*buckets)
	return c.Word(t.Count) > uint64(len(p.arr))*3/2
}

// StartExpand swaps in a doubled primary table and begins migration
// (assoc_expand). Caller holds the cache-lock domain.
func (t *Table) StartExpand(c access.Ctx) {
	if c.Word(t.Expanding) != 0 {
		return
	}
	p := c.Any(t.primary).(*buckets)
	// Publication order matters for item-lock-only readers: old and the
	// cursor first, then the flag, and the new primary strictly last — a
	// reader observing Expanding==0 must still find the pre-expansion table
	// in primary, and one observing Expanding==1 routes through old.
	c.SetAny(t.old, p)
	c.SetWord(t.ExpandBucket, 0)
	c.SetWord(t.Expanding, 1)
	c.SetAny(t.primary, newBuckets(p.power+1))
}

// Expanding reports whether a migration is in flight.
func (t *Table) IsExpanding(c access.Ctx) bool { return c.Word(t.Expanding) != 0 }

// ExpandStep migrates up to n old-table buckets into the primary table and
// reports whether expansion is still in progress afterwards. Caller holds the
// cache-lock domain.
func (t *Table) ExpandStep(c access.Ctx, n int) bool {
	return t.ExpandStepLocked(c, n, nil)
}

// ExpandStepLocked is ExpandStep with the Figure 1a trylock protocol: the
// maintenance thread holds the cache-lock domain and trylocks each item's
// item lock (later in the lock order — the documented order violation).
// tryLock returns an unlock function and whether the lock was obtained; items
// whose lock is unavailable stay in the old bucket for a later pass (the
// "save_for_later" path), and the bucket cursor only advances once a bucket
// drains. A nil tryLock moves everything unconditionally (the IT branches,
// where TM conflict detection replaces the locks).
func (t *Table) ExpandStepLocked(c access.Ctx, n int, tryLock func(hv uint64) (func(), bool)) bool {
	if c.Word(t.Expanding) == 0 {
		return false
	}
	o := c.Any(t.old).(*buckets)
	p := c.Any(t.primary).(*buckets)
	eb := c.Word(t.ExpandBucket)
	for i := 0; i < n && eb < uint64(len(o.arr)); i++ {
		var keptHead *item.Item
		it := item.AsItem(c.Any(o.arr[eb]))
		for it != nil {
			next := item.AsItem(c.Any(it.HNext))
			moved := true
			if tryLock != nil {
				unlock, ok := tryLock(it.Hash)
				if ok {
					dst := p.arr[it.Hash&p.mask()]
					c.SetAny(it.HNext, c.Any(dst))
					c.SetAny(dst, it)
					unlock()
				} else {
					moved = false // save for later
				}
			} else {
				dst := p.arr[it.Hash&p.mask()]
				c.SetAny(it.HNext, c.Any(dst))
				c.SetAny(dst, it)
			}
			if !moved {
				c.SetAny(it.HNext, keptHead)
				keptHead = it
			}
			it = next
		}
		if keptHead != nil {
			c.SetAny(o.arr[eb], keptHead)
			break // retry this bucket on the next pass
		}
		c.SetAny(o.arr[eb], nil)
		eb++
	}
	c.SetWord(t.ExpandBucket, eb)
	if eb >= uint64(len(o.arr)) {
		c.SetWord(t.Expanding, 0)
		c.SetAny(t.old, nil)
		return false
	}
	return true
}
