// Cachewalk: drive the embedded cache engine across the paper's whole
// transactionalization ladder and watch the serialization profile change —
// the Tables 1-4 story on a laptop-scale workload.
//
//	go run ./examples/cachewalk
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/memslap"
)

func main() {
	fmt.Printf("%-14s %8s %12s %14s %14s %12s %10s\n",
		"branch", "time", "transactions", "in-flight", "start-serial", "abort-serial", "ops/s")
	for _, b := range engine.Branches() {
		// The working set (~2048 × 672 B) exceeds the 1 MiB limit, so
		// eviction — and the sem_post path it exercises — runs continuously.
		c := engine.New(engine.Config{
			Branch:    b,
			MemLimit:  1 << 20,
			HashPower: 10,
			Automove:  true,
		})
		c.Start()
		res := memslap.RunDirect(c, memslap.Config{
			Concurrency:   4,
			ExecuteNumber: 5000,
			KeySpace:      2048,
			ValueSize:     1024,
		})
		var tmCols string
		if rt := c.Runtime(); rt != nil {
			s := rt.Stats()
			tmCols = fmt.Sprintf("%12d %14d %14d %12d", s.Commits, s.InFlightSwitch, s.StartSerial, s.AbortSerial)
		} else {
			tmCols = fmt.Sprintf("%12s %14s %14s %12s", "-", "-", "-", "-")
		}
		c.Stop()
		fmt.Printf("%-14s %7.3fs %s %10.0f\n", b, res.Duration.Seconds(), tmCols, res.OpsPerSec())
	}
	fmt.Println("\nReading the ladder (cf. Tables 1-4 of the paper):")
	fmt.Println("  ip/it + callable  serialize on the set path (volatile-first alloc) and on libc calls;")
	fmt.Println("  *-max             volatiles become transactional: start-serial drops, in-flight remains;")
	fmt.Println("  *-lib             tm_* libraries: most in-flight switches disappear;")
	fmt.Println("  *-oncommit        sem_post/logging deferred: zero mandatory serialization;")
	fmt.Println("  *-nolock          the global readers/writer lock is gone (Figure 10).")
}
