package stm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

// TestNOrecSnapshotConsistency: a NOrec reader mid-transaction must never
// observe half of another transaction's commit, even across its value-based
// re-validations. Two words are always updated together; any read pair must
// match.
func TestNOrecSnapshotConsistency(t *testing.T) {
	rt := New(Config{Algorithm: NOrec, CM: CMNone})
	x, y := NewTWord(0), NewTWord(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rt.NewThread()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
				x.Store(tx, i)
				y.Store(tx, i)
			})
		}
	}()
	th := rt.NewThread()
	for i := 0; i < 5000; i++ {
		var a, b uint64
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			a = x.Load(tx)
			b = y.Load(tx)
		})
		if a != b {
			t.Fatalf("iteration %d: torn snapshot x=%d y=%d", i, a, b)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTBytesWriteReadQuick: WriteAll/ReadAll round-trip for arbitrary
// contents and lengths, under every algorithm.
func TestTBytesWriteReadQuick(t *testing.T) {
	for _, alg := range []Algorithm{MLWT, LazyAlg, NOrec, TML} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			th := rt.NewThread()
			f := func(content []byte, pad uint8) bool {
				tb := NewTBytes(len(content) + int(pad))
				err := th.Run(Props{Kind: Atomic}, func(tx *Tx) {
					tb.WriteAll(tx, content)
				})
				if err != nil {
					return false
				}
				out := make([]byte, tb.Len())
				err = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
					tb.ReadAll(tx, out)
				})
				if err != nil {
					return false
				}
				return bytes.Equal(out[:len(content)], content)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPartialWordWriteAll: WriteAll of a source shorter than the buffer must
// preserve the bytes beyond the source within the same trailing word.
func TestPartialWordWriteAll(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	tb := NewTBytesFrom([]byte("ABCDEFGHIJKLMNOP")) // 16 bytes, 2 words
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		tb.WriteAll(tx, []byte("xyz")) // 3 bytes into word 0
	})
	if got := string(tb.Bytes()); got != "xyzDEFGHIJKLMNOP" {
		t.Errorf("partial WriteAll = %q", got)
	}
}

// TestTAnyNilAndTypes: TAny must carry nil and distinct types faithfully.
func TestTAnyNilAndTypes(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	a := NewTAny(nil)
	if a.LoadDirect() != nil {
		t.Error("initial nil lost")
	}
	type payload struct{ n int }
	p := &payload{n: 7}
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		if a.Load(tx) != nil {
			t.Error("nil load in tx")
		}
		a.Store(tx, p)
	})
	if got := a.LoadDirect(); got != p {
		t.Errorf("pointer identity lost: %v", got)
	}
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		a.Store(tx, "now a string")
	})
	if a.LoadDirect() != "now a string" {
		t.Error("type change lost")
	}
}

// TestSnapshotStatsFields: the snapshot carries every counter.
func TestSnapshotStatsFields(t *testing.T) {
	rt := New(Config{Algorithm: HTM, HTMCapacity: 4, HTMRetries: 1})
	th := rt.NewThread()
	words := make([]*TWord, 16)
	for i := range words {
		words[i] = NewTWord(0)
	}
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		for _, w := range words {
			w.Store(tx, 1)
		}
	})
	s := rt.Stats()
	if s.HTMCapacityAborts == 0 || s.HTMFallbacks == 0 || s.SerialCommits == 0 {
		t.Errorf("HTM counters missing from snapshot: %+v", s)
	}
	rt.ResetStats()
	s = rt.Stats()
	if s.Commits != 0 || s.HTMCapacityAborts != 0 || s.HTMFallbacks != 0 || s.Retries != 0 {
		t.Errorf("ResetStats incomplete: %+v", s)
	}
}
