package fault

import (
	"sync"
	"testing"
)

// collect replays n hits of p and returns the fire/no-fire decision sequence.
func collect(in *Injector, p Point, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = in.Fire(p)
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	a := New(42)
	a.Set(STMReadAbort, 0.25)
	b := New(42)
	b.Set(STMReadAbort, 0.25)
	sa := collect(a, STMReadAbort, 1000)
	sb := collect(b, STMReadAbort, 1000)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("hit %d: decisions diverge for identical seeds", i)
		}
	}
	if a.Fired(STMReadAbort) == 0 {
		t.Fatal("rate 0.25 over 1000 hits never fired")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	a.Set(STMReadAbort, 0.5)
	b := New(2)
	b.Set(STMReadAbort, 0.5)
	sa := collect(a, STMReadAbort, 256)
	sb := collect(b, STMReadAbort, 256)
	same := 0
	for i := range sa {
		if sa[i] == sb[i] {
			same++
		}
	}
	if same == len(sa) {
		t.Fatal("seeds 1 and 2 produced identical 256-hit schedules")
	}
}

func TestRateObserved(t *testing.T) {
	in := New(7)
	in.Set(SlabAllocFail, 0.1)
	const n = 20000
	collect(in, SlabAllocFail, n)
	got := float64(in.Fired(SlabAllocFail)) / n
	if got < 0.05 || got > 0.15 {
		t.Fatalf("rate 0.1 fired at %.3f", got)
	}
}

func TestUnconfiguredAndNilNeverFire(t *testing.T) {
	in := New(3)
	if in.Fire(ConnDrop) {
		t.Fatal("unconfigured point fired")
	}
	var nilIn *Injector
	if nilIn.Fire(ConnDrop) || nilIn.Fired(ConnDrop) != 0 {
		t.Fatal("nil injector fired")
	}
}

func TestDisarmStopsFiring(t *testing.T) {
	in := New(9)
	in.Set(STMCommitFail, 1.0)
	if !in.Fire(STMCommitFail) {
		t.Fatal("rate 1.0 did not fire")
	}
	in.Disarm()
	for i := 0; i < 100; i++ {
		if in.Fire(STMCommitFail) {
			t.Fatal("disarmed injector fired")
		}
	}
	in.Arm()
	fired := false
	for i := 0; i < 10; i++ {
		fired = fired || in.Fire(STMCommitFail)
	}
	if !fired {
		t.Fatal("re-armed injector never fired at rate 1.0")
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(11, StmPoints(), 0.05)
	b := RandomSchedule(11, StmPoints(), 0.05)
	for _, p := range StmPoints() {
		if a.Rate(p) != b.Rate(p) {
			t.Fatalf("point %s: rate %f vs %f from the same seed", p, a.Rate(p), b.Rate(p))
		}
	}
	// Across many seeds, every point must be included sometimes and dropped
	// sometimes, and rates must stay within (0, maxRate].
	included := map[Point]int{}
	for seed := uint64(0); seed < 64; seed++ {
		in := RandomSchedule(seed, StmPoints(), 0.05)
		for _, p := range StmPoints() {
			r := in.Rate(p)
			if r > 0.05+1e-9 {
				t.Fatalf("seed %d point %s rate %f above max", seed, p, r)
			}
			if r > 0 {
				included[p]++
			}
		}
	}
	for _, p := range StmPoints() {
		if included[p] == 0 || included[p] == 64 {
			t.Errorf("point %s included in %d/64 schedules; want variety", p, included[p])
		}
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := New(5)
	in.Set(STMReadDelay, 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				in.Fire(STMReadDelay)
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(STMReadDelay); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}
