// Package sem provides a counting semaphore with the POSIX sem_t surface
// (post / wait / trywait) that the paper substitutes for condition variables
// when transactionalizing memcached's maintenance-thread wake-ups (§3.2,
// Figure 2).
//
// The transformation depends on two properties of a semaphore that a condvar
// lacks: posts are never lost (the count accumulates), and posting requires no
// associated mutex — which is what lets worker threads move the post out of
// the critical section and eventually into an onCommit handler.
package sem

import "sync"

// Sem is a counting semaphore. The zero value is a semaphore with count 0,
// ready to use.
type Sem struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

// New returns a semaphore with the given initial count.
func New(initial int) *Sem {
	if initial < 0 {
		panic("sem: negative initial count")
	}
	return &Sem{count: initial}
}

func (s *Sem) ensureCond() {
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
	}
}

// Post increments the count, waking one waiter (sem_post).
func (s *Sem) Post() {
	s.mu.Lock()
	s.ensureCond()
	s.count++
	s.cond.Signal()
	s.mu.Unlock()
}

// Wait blocks until the count is positive, then decrements it (sem_wait).
func (s *Sem) Wait() {
	s.mu.Lock()
	s.ensureCond()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	s.mu.Unlock()
}

// TryWait decrements the count if it is positive and reports whether it did
// (sem_trywait).
func (s *Sem) TryWait() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Value returns the current count (sem_getvalue); advisory only.
func (s *Sem) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
