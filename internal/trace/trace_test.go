package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
)

func newCache(t *testing.T, b engine.Branch) *engine.Cache {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8, MemLimit: 8 << 20})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// record produces a small mixed trace from two concurrent clients.
func record(t *testing.T) *Trace {
	t.Helper()
	c := newCache(t, engine.Baseline)
	s := NewSession()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := s.NewRecorder(c.NewWorker())
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("t-%d", (g*17+i)%64))
				switch i % 6 {
				case 0:
					r.Set(key, uint32(g), 0, []byte(fmt.Sprintf("v%d", i)))
				case 1:
					r.Delete(key)
				case 2:
					r.Incr(key, 1)
				default:
					r.Get(key)
				}
			}
		}()
	}
	wg.Wait()
	return s.Trace()
}

func TestRecordCaptureShape(t *testing.T) {
	tr := record(t)
	if len(tr.Ops) != 400 {
		t.Fatalf("recorded %d ops, want 400", len(tr.Ops))
	}
	if tr.Clients() != 2 {
		t.Errorf("clients = %d", tr.Clients())
	}
	kinds := map[Kind]int{}
	for _, op := range tr.Ops {
		kinds[op.Kind]++
		if len(op.Key) == 0 {
			t.Fatal("recorded op with empty key")
		}
	}
	if kinds[OpGet] == 0 || kinds[OpSet] == 0 || kinds[OpDelete] == 0 || kinds[OpIncr] == 0 {
		t.Errorf("kind mix = %v", kinds)
	}
	// Per-client order preserved: sets precede their later gets per stream.
	seen := map[int]int{}
	for _, op := range tr.Ops {
		seen[op.Client]++
	}
	if seen[0] != 200 || seen[1] != 200 {
		t.Errorf("per-client counts = %v", seen)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := record(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(got.Ops), len(tr.Ops))
	}
	for i := range got.Ops {
		a, b := got.Ops[i], tr.Ops[i]
		if a.Kind != b.Kind || string(a.Key) != string(b.Key) || string(a.Value) != string(b.Value) ||
			a.Client != b.Client || a.Delta != b.Delta {
			t.Fatalf("op %d mutated: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

// TestReplayAcrossBranches runs one captured trace against several branches:
// every replay must complete without protocol errors, and a single-client
// trace must produce the identical final key population everywhere.
func TestReplayAcrossBranches(t *testing.T) {
	// Single-client trace: fully deterministic final state.
	src := newCache(t, engine.Semaphore)
	s := NewSession()
	r := s.NewRecorder(src.NewWorker())
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("d-%d", i%50))
		switch i % 5 {
		case 0:
			r.Set(key, 0, 0, []byte(fmt.Sprintf("val-%d", i)))
		case 1:
			r.Delete(key)
		default:
			r.Get(key)
		}
	}
	tr := s.Trace()

	// Reference population from the recording cache.
	wantLive := map[string]string{}
	w := src.NewWorker()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("d-%d", i)
		if val, _, _, ok := w.Get([]byte(key)); ok {
			wantLive[key] = string(val)
		}
	}

	for _, b := range []engine.Branch{engine.Baseline, engine.IPCallable, engine.ITMax, engine.ITNoLock} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newCache(t, b)
			res := Replay(c, tr)
			if res.Ops != 300 {
				t.Errorf("replayed %d ops", res.Ops)
			}
			if res.Errors != 0 {
				t.Errorf("replay errors = %d", res.Errors)
			}
			w := c.NewWorker()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("d-%d", i)
				val, _, _, ok := w.Get([]byte(key))
				want, wantOK := wantLive[key]
				if ok != wantOK {
					t.Errorf("key %s: live=%v, want %v", key, ok, wantOK)
					continue
				}
				if ok && string(val) != want {
					t.Errorf("key %s: value %q, want %q", key, val, want)
				}
			}
			if err := c.Validate(); err != nil {
				t.Errorf("post-replay validation: %v", err)
			}
		})
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	c := newCache(t, engine.Baseline)
	if res := Replay(c, &Trace{}); res.Ops != 0 {
		t.Errorf("empty trace replayed %d ops", res.Ops)
	}
}

func TestKindString(t *testing.T) {
	if OpGet.String() != "get" || OpFlushAll.String() != "flush_all" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "get" {
		t.Error("out-of-range kind mapped to a name")
	}
}
