// Package poller provides readiness notification for a large set of idle
// network connections without dedicating a goroutine (and its stack) to each.
//
// The server's event-loop transport registers every accepted connection here
// and parks it while it has no buffered input. When the peer writes (or
// disconnects), the poller invokes the ready callback with the connection's
// Token and the transport hands the connection to an execution worker.
//
// Two implementations exist:
//
//   - linux: a single epoll instance driven by raw syscalls. The first Arm
//     installs an edge-triggered mask (EPOLLIN|EPOLLRDHUP|EPOLLET) once;
//     every later Arm is just a non-consuming MSG_PEEK probe that synthesizes
//     an event if input is already pending. Steady-state cost per served
//     request is therefore one probe syscall, not two epoll_ctl round trips.
//     One goroutine blocks in epoll_wait for the whole server.
//   - everywhere else (and on linux via NewFallback, for tests): a parked
//     goroutine per armed connection that waits inside syscall.RawConn.Read
//     without consuming bytes. This still rides the runtime netpoller, so it
//     costs a goroutine per *armed* connection but zero buffer bytes; it
//     exists so the transport builds and behaves identically off linux.
//
// Tokens are monotonically increasing and never reused, which makes stale
// readiness events (delivered after Remove for a connection whose fd number
// the kernel has already recycled) detectable by the owner's token map.
package poller

import (
	"errors"
	"net"
	"sync/atomic"
)

// Token identifies one registered connection. Tokens are never reused for
// the lifetime of a Poller.
type Token uint64

// ErrClosed is returned by Add/Arm/Remove after Close.
var ErrClosed = errors.New("poller: closed")

// A Poller owns readiness notification for registered connections.
//
// The contract is at-least-once with duplicates allowed: after Add, the
// connection is registered but silent; Arm enables delivery and GUARANTEES a
// callback if the connection is already readable (data, EOF, peer reset —
// anything that would make a Read return). Implementations may deliver
// additional callbacks at any time while the token is registered (the epoll
// implementation is edge-triggered and fires on every new arrival, including
// mid-burst), so the owner must deduplicate — the transport does this with a
// per-connection state machine whose idle→queued transition is a CAS. The
// owner must call Arm every time it parks a connection: that is what closes
// the race between "checked for buffered input" and "went idle" (the Arm
// probe catches bytes that arrived in between). Remove unregisters; it is
// safe to call with events in flight (the owner must tolerate a late
// callback for a removed token).
//
// The ready callback runs on a poller-owned goroutine and may block briefly
// (e.g. on a bounded queue send); while it blocks, delivery of further
// events stalls, which is the transport's backpressure.
type Poller interface {
	// Add registers conn and returns its token. conn must implement
	// syscall.Conn (all *net.TCPConn do). No events are delivered until Arm.
	Add(conn net.Conn) (Token, error)
	// Arm enables readiness callbacks for the token and probes for input
	// that is already pending, synthesizing a callback if so. Call after
	// every park.
	Arm(Token) error
	// Remove unregisters the token. Idempotent.
	Remove(Token) error
	// Close stops event delivery and releases poller resources. It does not
	// close registered connections; the owner sweeps those itself.
	Close() error
}

// New returns the best poller for this platform: epoll on linux, the
// goroutine fallback elsewhere. onReady is invoked when an armed connection
// becomes (or already is) readable; duplicates are possible.
func New(onReady func(Token)) (Poller, error) {
	return newPlatform(onReady)
}

// Counters are a poller's cumulative delivery statistics. Both built-in
// implementations report the same semantics (the fallback-parity test
// enforces it), so dashboards read identically on and off linux:
//
//   - Wakeups counts every onReady delivery, whatever its origin — the
//     wait loop (epoll) or a parked waiter (fallback), plus synthesized
//     deliveries.
//   - Probes counts Arm-time MSG_PEEK readiness probes (one per Arm call
//     that reaches the probe).
//   - Synthesized counts the subset of Wakeups that originated from an Arm
//     probe finding input already pending — the events edge-triggered
//     epoll would otherwise have lost.
type Counters struct {
	Wakeups     uint64 `json:"wakeups"`
	Probes      uint64 `json:"probes"`
	Synthesized uint64 `json:"synthesized"`
}

// CounterSource is implemented by pollers that expose delivery counters
// (both built-in implementations do). The transport type-asserts for it so
// third-party Poller implementations remain valid without counters.
type CounterSource interface {
	Counters() Counters
	// ResetCounters zeroes the counters ("stats reset" semantics).
	ResetCounters()
}

// counters is the shared atomic implementation embedded by both pollers.
type counters struct {
	wakeups     atomic.Uint64
	probes      atomic.Uint64
	synthesized atomic.Uint64
}

func (c *counters) Counters() Counters {
	return Counters{
		Wakeups:     c.wakeups.Load(),
		Probes:      c.probes.Load(),
		Synthesized: c.synthesized.Load(),
	}
}

func (c *counters) ResetCounters() {
	c.wakeups.Store(0)
	c.probes.Store(0)
	c.synthesized.Store(0)
}
