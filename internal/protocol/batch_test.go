package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mcstats"
)

func newBatchCache(t *testing.T, b engine.Branch) *engine.Cache {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// TestTextMultiGetPresentMissingExpired drives the batched text multi-get on
// an IT branch (one read-only transaction per group) and the per-key fallback
// on baseline, asserting identical wire behavior.
func TestTextMultiGetPresentMissingExpired(t *testing.T) {
	for _, b := range []engine.Branch{engine.ITOnCommit, engine.Baseline} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newBatchCache(t, b)
			now := c.Now()
			setup := "set a 1 0 2\r\nva\r\n" +
				fmt.Sprintf("set gone 0 %d 4\r\ndead\r\n", now+5) +
				"set b 2 0 2\r\nvb\r\n"
			if out := runTextOn(t, c, setup); strings.Count(out, "STORED\r\n") != 3 {
				t.Fatalf("setup replies: %q", out)
			}
			c.SetTime(now + 10) // expire "gone"
			out := runTextOn(t, c, "get a missing gone b\r\n")
			want := "VALUE a 1 2\r\nva\r\nVALUE b 2 2\r\nvb\r\nEND\r\n"
			if out != want {
				t.Errorf("multi-get = %q, want %q", out, want)
			}
		})
	}
}

// TestTextMultiGetsCAS: the gets form of the batched path carries CAS tokens.
func TestTextMultiGetsCAS(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	runTextOn(t, c, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n")
	out := runTextOn(t, c, "gets a b\r\n")
	if strings.Count(out, "VALUE ") != 2 || !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("gets a b = %q", out)
	}
	for _, line := range strings.Split(out, "\r\n") {
		if strings.HasPrefix(line, "VALUE ") && len(strings.Fields(line)) != 5 {
			t.Errorf("gets VALUE line lacks cas: %q", line)
		}
	}
}

func runBinaryOn(t *testing.T, c *engine.Cache, frames ...[]byte) []binRes {
	t.Helper()
	in := &bytes.Buffer{}
	for _, f := range frames {
		in.Write(f)
	}
	d := &duplex{in: in, out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return parseBinStream(t, d.out.Bytes())
}

// TestQuietGetPipeline: the canonical binary multiget — a run of GETKQ/GETQ
// closed by NOOP — answers hits in order, stays silent on misses, and the
// NOOP terminator still arrives last.
func TestQuietGetPipeline(t *testing.T) {
	for _, b := range []engine.Branch{engine.ITOnCommit, engine.IPOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newBatchCache(t, b)
			extras := make([]byte, 8)
			res := runBinaryOn(t, c,
				binFrame(OpSet, extras, []byte("k1"), []byte("v1"), 0),
				binFrame(OpSet, extras, []byte("k3"), []byte("v3"), 0),
				binFrame(OpGetKQ, nil, []byte("k1"), nil, 0),
				binFrame(OpGetKQ, nil, []byte("k2"), nil, 0), // miss: no reply
				binFrame(OpGetQ, nil, []byte("k3"), nil, 0),
				binFrame(OpNoop, nil, nil, nil, 0),
			)
			if len(res) != 5 {
				t.Fatalf("%d responses, want 5 (2 sets, 2 hits, noop)", len(res))
			}
			if res[2].opcode != OpGetKQ || string(res[2].key) != "k1" || string(res[2].value) != "v1" {
				t.Errorf("GETKQ hit = %+v", res[2])
			}
			if res[2].cas == 0 {
				t.Error("GETKQ reply lacks cas")
			}
			if res[3].opcode != OpGetQ || len(res[3].key) != 0 || string(res[3].value) != "v3" {
				t.Errorf("GETQ hit = %+v", res[3])
			}
			if res[4].opcode != OpNoop || res[4].status != StatusOK {
				t.Errorf("terminator = %+v", res[4])
			}
		})
	}
}

// TestQuietGetRunSpansBatchBound: a quiet-get pipeline longer than
// engine.MultiGetBatch splits into several runs and still answers every hit
// exactly once, in order.
func TestQuietGetRunSpansBatchBound(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	extras := make([]byte, 8)
	n := 2*engine.MultiGetBatch + 3
	var frames [][]byte
	for i := 0; i < n; i++ {
		frames = append(frames, binFrame(OpSet, extras, fmt.Appendf(nil, "key%03d", i), fmt.Appendf(nil, "val%03d", i), 0))
	}
	for i := 0; i < n; i++ {
		frames = append(frames, binFrame(OpGetKQ, nil, fmt.Appendf(nil, "key%03d", i), nil, 0))
	}
	frames = append(frames, binFrame(OpNoop, nil, nil, nil, 0))
	res := runBinaryOn(t, c, frames...)
	if len(res) != 2*n+1 {
		t.Fatalf("%d responses, want %d", len(res), 2*n+1)
	}
	for i := 0; i < n; i++ {
		r := res[n+i]
		if string(r.key) != fmt.Sprintf("key%03d", i) || string(r.value) != fmt.Sprintf("val%03d", i) {
			t.Fatalf("hit %d out of order: key %q value %q", i, r.key, r.value)
		}
	}
	if res[2*n].opcode != OpNoop {
		t.Fatalf("last reply = %+v, want noop", res[2*n])
	}
}

// TestQuietGetRunStopsAtMalformedFrame: a malformed quiet get (nonzero
// extras) must not be swallowed by run extension — the main loop refuses it
// with a proper error status.
func TestQuietGetRunStopsAtMalformedFrame(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	extras := make([]byte, 8)
	bad := binFrame(OpGetQ, []byte{1, 2, 3, 4}, []byte("k1"), nil, 0)
	res := runBinaryOn(t, c,
		binFrame(OpSet, extras, []byte("k1"), []byte("v1"), 0),
		binFrame(OpGetQ, nil, []byte("k1"), nil, 0),
		bad,
		binFrame(OpNoop, nil, nil, nil, 0),
	)
	if len(res) != 4 {
		t.Fatalf("%d responses, want 4 (set, hit, error, noop)", len(res))
	}
	if res[1].status != StatusOK || string(res[1].value) != "v1" {
		t.Errorf("quiet hit = %+v", res[1])
	}
	if res[2].status == StatusOK {
		t.Errorf("malformed quiet get accepted: %+v", res[2])
	}
	if res[3].opcode != OpNoop {
		t.Errorf("terminator = %+v", res[3])
	}
}

// countingConn counts transport writes; chunks feed the reader one element
// per Read call so tests control exactly what is "already buffered".
type countingConn struct {
	chunks [][]byte
	out    bytes.Buffer
	writes int
}

func (cc *countingConn) Read(p []byte) (int, error) {
	if len(cc.chunks) == 0 {
		return 0, io.EOF
	}
	n := copy(p, cc.chunks[0])
	if n < len(cc.chunks[0]) {
		cc.chunks[0] = cc.chunks[0][n:]
	} else {
		cc.chunks = cc.chunks[1:]
	}
	return n, nil
}

func (cc *countingConn) Write(p []byte) (int, error) {
	cc.writes++
	return cc.out.Write(p)
}

// TestBatchPipelineSingleWrite: a fully pipelined batch of commands produces
// ONE transport write (replies gather until the pipeline drains), while the
// same commands sent one at a time produce one write each (flush-on-idle
// never withholds a reply from a waiting client).
func TestBatchPipelineSingleWrite(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	cmds := []string{
		"set a 0 0 1\r\nx\r\n",
		"set b 0 0 1\r\ny\r\n",
		"get a b\r\n",
		"get a\r\n",
	}

	pipelined := &countingConn{chunks: [][]byte{[]byte(strings.Join(cmds, ""))}}
	if err := NewConn(c.NewWorker(), pipelined).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if pipelined.writes != 1 {
		t.Errorf("pipelined batch: %d transport writes, want 1 (output %q)", pipelined.writes, pipelined.out.String())
	}
	want := "STORED\r\nSTORED\r\nVALUE a 0 1\r\nx\r\nVALUE b 0 1\r\ny\r\nEND\r\nVALUE a 0 1\r\nx\r\nEND\r\n"
	if pipelined.out.String() != want {
		t.Errorf("pipelined output = %q, want %q", pipelined.out.String(), want)
	}

	chunks := make([][]byte, len(cmds))
	for i, s := range cmds {
		chunks[i] = []byte(s)
	}
	sequential := &countingConn{chunks: chunks}
	if err := NewConn(c.NewWorker(), sequential).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if sequential.writes != len(cmds) {
		t.Errorf("sequential commands: %d transport writes, want %d", sequential.writes, len(cmds))
	}
	if sequential.out.String() != want {
		t.Errorf("sequential output = %q, want %q", sequential.out.String(), want)
	}
}

// gatherConn is a countingConn that also implements the writev-style
// interface the protocol probes for.
type gatherConn struct {
	countingConn
	gathered int
}

func (gc *gatherConn) WriteBuffers(bufs net.Buffers) (int64, error) {
	gc.gathered++
	var n int64
	for _, b := range bufs {
		m, err := gc.out.Write(b)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestMultiGetWritevPath: a multi-get response past the writev threshold goes
// out through WriteBuffers as one gathered write; small responses keep using
// the buffered path.
func TestMultiGetWritevPath(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	big := strings.Repeat("z", 3000)
	setup := fmt.Sprintf("set big1 0 0 %d\r\n%s\r\nset big2 0 0 %d\r\n%s\r\n", len(big), big, len(big), big)
	runTextOn(t, c, setup)

	gc := &gatherConn{countingConn: countingConn{chunks: [][]byte{[]byte("get big1 big2\r\n")}}}
	if err := NewConn(c.NewWorker(), gc).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if gc.gathered != 1 {
		t.Errorf("gathered writes = %d, want 1", gc.gathered)
	}
	out := gc.out.String()
	if strings.Count(out, "VALUE ") != 2 || !strings.HasSuffix(out, "END\r\n") {
		t.Errorf("writev multi-get output = %q", out)
	}

	small := &gatherConn{countingConn: countingConn{chunks: [][]byte{[]byte("get big1\r\nquit\r\n")}}}
	// One hit under the threshold? big1 is 3000 bytes — still under 4096.
	if err := NewConn(c.NewWorker(), small).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if small.gathered != 0 {
		t.Errorf("small response used writev (%d gathered writes)", small.gathered)
	}
}

// TestBatchPipelineCounters: the flush/batch counters move the right way.
func TestBatchPipelineCounters(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	var errs mcstats.ConnErrors
	cc := &countingConn{chunks: [][]byte{[]byte("set a 0 0 1\r\nx\r\nget a\r\nget a\r\n")}}
	conn := NewConn(c.NewWorker(), cc)
	conn.SetConnErrors(&errs)
	if err := conn.Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := errs.BatchedReplies.Load(); got != 2 {
		t.Errorf("BatchedReplies = %d, want 2 (all but the final reply deferred)", got)
	}
	if got := errs.Flushes.Load(); got != 1 {
		t.Errorf("Flushes = %d, want 1", got)
	}
}

// TestBinaryPipelineSingleWrite: the binary protocol batches the same way.
func TestBinaryPipelineSingleWrite(t *testing.T) {
	c := newBatchCache(t, engine.ITOnCommit)
	extras := make([]byte, 8)
	var in bytes.Buffer
	in.Write(binFrame(OpSet, extras, []byte("k"), []byte("v"), 0))
	in.Write(binFrame(OpGetQ, nil, []byte("k"), nil, 0))
	in.Write(binFrame(OpNoop, nil, nil, nil, 0))
	cc := &countingConn{chunks: [][]byte{in.Bytes()}}
	if err := NewConn(c.NewWorker(), cc).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if cc.writes != 1 {
		t.Errorf("binary pipeline: %d transport writes, want 1", cc.writes)
	}
	res := parseBinStream(t, cc.out.Bytes())
	if len(res) != 3 {
		t.Fatalf("%d responses, want 3", len(res))
	}
	_ = binary.BigEndian // keep import balanced with binFrame usage
}
