package stm

import (
	"repro/internal/txobs"
)

// Observability integration. The runtime holds two observer pointers: obsAll
// is the persistent observer (created on first enable, survives disable so
// collected data can still be queried), and obs is the active pointer the hot
// paths consult — nil while tracing is disabled. Every event site in the
// runtime therefore costs exactly one atomic pointer load when tracing is
// off.

// EnableTracing activates transaction event tracing, creating the observer
// (sized to the orec table) on first use, and returns it.
func (rt *Runtime) EnableTracing() *txobs.Observer {
	rt.mu.Lock()
	o := rt.obsAll.Load()
	if o == nil {
		o = txobs.New(txobs.Options{Orecs: len(rt.orecs)})
		rt.obsAll.Store(o)
	}
	rt.mu.Unlock()
	o.Enable()
	rt.obs.Store(o)
	return o
}

// AttachTracing installs a shared observer into this runtime and activates
// event recording. A sharded engine calls it on every shard's runtime with
// one observer, the shard's index, and a disjoint orec base offset, so the
// observer's conflict heat map covers all domains without index collisions
// and every event carries its shard. Subsequent Enable/DisableTracing calls
// keep using the attached observer.
func (rt *Runtime) AttachTracing(o *txobs.Observer, shard, orecBase int) {
	rt.obsShard.Store(int32(shard))
	rt.obsBase.Store(int32(orecBase))
	rt.mu.Lock()
	rt.obsAll.Store(o)
	rt.mu.Unlock()
	o.Enable()
	rt.obs.Store(o)
}

// OrecCount returns the size of the runtime's ownership-record table (for
// sizing a shared observer across sharded runtimes).
func (rt *Runtime) OrecCount() int { return len(rt.orecs) }

// DisableTracing stops event recording. The observer (and everything it has
// collected) remains reachable through TracingObserver.
func (rt *Runtime) DisableTracing() {
	if o := rt.obsAll.Load(); o != nil {
		o.Disable()
	}
	rt.obs.Store(nil)
}

// TracingObserver returns the runtime's observer, or nil if tracing was never
// enabled.
func (rt *Runtime) TracingObserver() *txobs.Observer { return rt.obsAll.Load() }

// orecIndex maps a location id to its orec-table index (the same hash
// orecFor uses) plus the runtime's base offset in a shared observer, for
// conflict-event attribution.
func (rt *Runtime) orecIndex(id uint64) int32 {
	return rt.obsBase.Load() + int32((id*0x9E3779B97F4A7C15)>>32&rt.omask)
}

// obsEvent records a runtime-scoped event (no thread context, e.g. watchdog
// escalations). The tracing-disabled cost is the single obs load.
func (rt *Runtime) obsEvent(k txobs.Kind, cause string) {
	if o := rt.obs.Load(); o != nil {
		o.Record(&txobs.Event{Kind: k, Cause: cause, Orec: -1, Shard: rt.obsShard.Load()})
	}
}

// sink returns the thread's recording sink for o, creating it on first use
// (or when tracing was re-enabled with a different observer).
func (th *Thread) sink(o *txobs.Observer) *txobs.Sink {
	if th.obsSinkFor != o {
		th.obsSink = o.NewSink()
		th.obsSinkFor = o
	}
	return th.obsSink
}

// noteConflict stashes the abort cause and the conflicting location id on the
// attempt; the run loop reads them when it records the abort event. Called on
// abort paths only (never on the hot path), so it is unconditional.
func (tx *Tx) noteConflict(cause string, id uint64) {
	tx.abortCause = cause
	tx.conflictID = id
}

// obsRecord builds and records an event carrying the attempt's current
// context: site, serial mode, retry ordinal, read/write-set sizes, and the
// conflicting orec/label when one was noted.
func (tx *Tx) obsRecord(o *txobs.Observer, k txobs.Kind, cause string) {
	ev := &txobs.Event{
		Kind:   k,
		Cause:  cause,
		Site:   tx.props.Site,
		Shard:  tx.rt.obsShard.Load(),
		Serial: tx.serial,
		Retry:  uint32(tx.th.consecAborts.Load()),
		Reads:  uint32(len(tx.reads) + len(tx.nReadsW) + len(tx.nReadsA)),
		Writes: uint32(len(tx.undoW) + len(tx.undoA) + len(tx.redoW) + len(tx.redoA)),
		Orec:   -1,
	}
	if tx.conflictID != 0 {
		ev.Orec = tx.rt.orecIndex(tx.conflictID)
		ev.Label = labelOf(tx.conflictID)
	}
	tx.th.sink(o).Record(ev)
}
