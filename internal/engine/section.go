package engine

import (
	"runtime"

	"repro/internal/access"
	"repro/internal/stm"
	"repro/internal/tm"
)

// domains names the lock domains a critical section needs, in memcached's
// acquisition order: item locks (handled separately, always first), then
// cache, slabs, stats.
type domains struct {
	cache bool
	slabs bool
	stats bool
}

// profile is the static unsafe-operation profile of a critical section — what
// GCC's front end would infer from the source. It decides, per branch stage,
// whether the section can be an atomic transaction, must be relaxed, or must
// begin serially.
type profile struct {
	// volatiles: the section reads or writes a volatile / lock incr location
	// on some path (current_time, refcounts, maintenance flags).
	volatiles bool
	// volatileFirst: a volatile access is the first operation on every path,
	// so before stage Max the transaction begins in serial mode rather than
	// paying for instrumentation up to the inevitable switch ("Start Serial").
	volatileFirst bool
	// libc: the section calls memcmp/memcpy/strtoull/snprintf on some path.
	libc bool
	// io: the section may fprintf or sem_post on some path.
	io bool
	// ro: the section does not write on its expected hot path, so attempt the
	// read-only fast-path commit; the first write barrier upgrades cleanly to
	// the normal path (batched multi-get is the motivating user).
	ro bool
	// site names the source-level critical section for serialization-cause
	// profiling (§6's execinfo-style attribution).
	site string
}

// agent is an execution principal: one worker or one maintenance thread. It
// tracks which domain locks it holds (lock branches allow nested sections)
// and owns the TM context (transactional branches).
type agent struct {
	c    *shard
	tctx *stm.Thread // nil for lock branches
	dctx access.DirectCtx

	heldCache bool
	heldSlabs bool
	heldStats bool
}

// section runs fn as one critical section over the given domains.
//
// Lock branches acquire the missing domain mutexes in order and pass a direct
// context. Transactional branches run fn as a transaction whose kind follows
// the paper's performance model: atomic when the stage profile has made every
// operation in p safe; relaxed otherwise; beginning serial when a volatile
// access starts every path (pre-Max). Nested sections flatten into the
// enclosing transaction, exactly as nested critical sections flatten when
// their locks are replaced by transactions.
func (a *agent) section(d domains, p profile, fn func(access.Ctx)) {
	if !a.c.cfg.tm {
		gotCache := d.cache && !a.heldCache
		gotSlabs := d.slabs && !a.heldSlabs
		gotStats := d.stats && !a.heldStats
		if gotCache {
			a.c.cacheMu.Lock()
			a.heldCache = true
		}
		if gotSlabs {
			a.c.slabsMu.Lock()
			a.heldSlabs = true
		}
		if gotStats {
			a.c.statsMu.Lock()
			a.heldStats = true
		}
		fn(a.dctx)
		if gotStats {
			a.heldStats = false
			a.c.statsMu.Unlock()
		}
		if gotSlabs {
			a.heldSlabs = false
			a.c.slabsMu.Unlock()
		}
		if gotCache {
			a.heldCache = false
			a.c.cacheMu.Unlock()
		}
		return
	}

	prof := a.c.cfg.profile
	run := func(tx *stm.Tx) { fn(access.TxCtx{T: tx, Profile: prof}) }
	unsafePossible := (p.volatiles && !prof.TxVolatiles) ||
		(p.libc && !prof.SafeLibc) ||
		(p.io && !prof.OnCommitIO)
	th := a.tctx
	o := tm.Options{Site: p.site, ReadOnly: p.ro}
	switch {
	case !unsafePossible:
		_ = tm.Atomic(th, o, run)
	case p.volatileFirst && !prof.TxVolatiles:
		o.StartSerial = true
		_ = tm.Relaxed(th, o, run)
	default:
		_ = tm.Relaxed(th, o, run)
	}
}

// gstat updates global statistics. In lock branches each call is its own
// stats-lock critical section — the rapid re-locking pattern of Figure 3 —
// unless the stats lock is already held. In transactional branches the update
// flattens into the enclosing transaction (the paper notes TM invites
// enlarging critical sections here) or runs as its own small transaction.
func (a *agent) gstat(fn func(access.Ctx)) {
	if !a.c.cfg.tm {
		if a.heldStats {
			fn(a.dctx)
			return
		}
		a.c.statsMu.Lock()
		fn(a.dctx)
		a.c.statsMu.Unlock()
		return
	}
	if tx := a.tctx.Current(); tx != nil {
		fn(access.TxCtx{T: tx, Profile: a.c.cfg.profile})
		return
	}
	_ = tm.Atomic(a.tctx, tm.Options{Site: "stats"}, func(tx *stm.Tx) {
		fn(access.TxCtx{T: tx, Profile: a.c.cfg.profile})
	})
}

// ---------------------------------------------------------------------------
// Ambient ("no critical section") volatile access: plain atomics in C,
// mini-transactions after stage Max replaces them (§3.3) — the change that
// inflates transaction counts in Tables 2-4.

func (a *agent) volatileLoad(w *stm.TWord) uint64 {
	if a.c.cfg.tm && a.c.cfg.profile.TxVolatiles {
		return tm.LoadWord(a.tctx, w)
	}
	return w.LoadDirect()
}

func (a *agent) volatileStore(w *stm.TWord, v uint64) {
	if a.c.cfg.tm && a.c.cfg.profile.TxVolatiles {
		tm.StoreWord(a.tctx, w, v)
		return
	}
	w.StoreDirect(v)
}

func (a *agent) volatileAdd(w *stm.TWord, delta uint64) uint64 {
	if a.c.cfg.tm && a.c.cfg.profile.TxVolatiles {
		return tm.AddWord(a.tctx, w, delta)
	}
	return w.AddDirect(delta)
}

// ---------------------------------------------------------------------------
// Item locks.
//
// Lock branches: striped mutexes, blocking in workers, trylock in
// maintenance. IP branches: transactional booleans — acquire and release are
// mini-transactions (Figure 1a), and the in-transaction trylock used by
// eviction and hash expansion reads the boolean through the enclosing
// transaction. IT branches: no item locks; the item critical section itself
// is the transaction.

func (a *agent) stripe(hv uint64) int { return int(hv & a.c.stripeMask) }

// itemLock blocks until the stripe covering hv is held. In the IP branches
// this spins over a trylock mini-transaction, matching memcached's use of a
// pthread lock as a spinlock.
func (a *agent) itemLock(hv uint64) {
	if a.c.cfg.itemTx {
		return // IT: the transaction is the critical section
	}
	s := a.stripe(hv)
	if !a.c.cfg.tm {
		a.c.itemMus[s].Lock()
		return
	}
	for !a.itemTryLockTM(s) {
		runtime.Gosched()
	}
}

// itemTryLock attempts the stripe without blocking (maintenance paths).
func (a *agent) itemTryLock(hv uint64) bool {
	if a.c.cfg.itemTx {
		return true
	}
	s := a.stripe(hv)
	if !a.c.cfg.tm {
		return a.c.itemMus[s].TryLock()
	}
	return a.itemTryLockTM(s)
}

func (a *agent) itemUnlock(hv uint64) {
	if a.c.cfg.itemTx {
		return
	}
	s := a.stripe(hv)
	if !a.c.cfg.tm {
		a.c.itemMus[s].Unlock()
		return
	}
	_ = tm.Atomic(a.tctx, tm.Options{Site: "item_lock"}, func(tx *stm.Tx) {
		a.c.itemFlags[s].Store(tx, 0)
	})
}

// itemTryLockTM is the mini-transaction acquire of Figure 1a's tm_trylock.
func (a *agent) itemTryLockTM(s int) bool {
	ok := false
	_ = tm.Atomic(a.tctx, tm.Options{Site: "item_lock"}, func(tx *stm.Tx) {
		ok = false
		if a.c.itemFlags[s].Load(tx) == 0 {
			a.c.itemFlags[s].Store(tx, 1)
			ok = true
		}
	})
	return ok
}

// victimTryLock is the in-transaction trylock (Figure 1a, line 3): ctx is the
// enclosing section's context, so in the IP branches the boolean is read and
// written speculatively inside the larger transaction, and in lock branches
// it is a mutex TryLock. It returns an unlock closure, or ok=false when the
// stripe is busy ("save for later").
func (a *agent) victimTryLock(ctx access.Ctx, hv uint64) (func(), bool) {
	if a.c.cfg.itemTx {
		return func() {}, true
	}
	s := a.stripe(hv)
	if !a.c.cfg.tm {
		if !a.c.itemMus[s].TryLock() {
			return nil, false
		}
		return a.c.itemMus[s].Unlock, true
	}
	if ctx.Word(a.c.itemFlags[s]) != 0 {
		return nil, false
	}
	ctx.SetWord(a.c.itemFlags[s], 1)
	return func() { ctx.SetWord(a.c.itemFlags[s], 0) }, true
}
