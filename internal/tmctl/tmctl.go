// Package tmctl is the per-shard TM feedback controller: it samples each
// shard runtime's live signals — abort-cause counters, serialization events,
// the read-only fast-path share, the request tracer's anomaly detector, the
// starvation watchdog — and hot-swaps the shard's STM algorithm, contention
// backoff curve and retry budget through stm.Runtime.Reconfigure.
//
// The policy is a three-rung ladder with hysteresis:
//
//	Normal  — the branch's own algorithm; within Normal, read-dominated
//	          shards lean on the orec algorithms' RO fast path (mlwt) and
//	          write-heavy shards on commit-time acquisition (lazy).
//	TML     — a pathological shard degrades to the tiny sequence-lock
//	          algorithm: invisible readers, one writer, no orec traffic,
//	          with a widened backoff window and a shortened retry budget.
//	Serial  — the storm persists: every transaction runs under the serial
//	          lock; throughput floors but progress is guaranteed.
//
// Transitions move one rung at a time, never before MinDwell has elapsed
// since the last swap, and healing additionally demands HealWindows
// consecutive calm sampling windows — a square-wave contention signal
// flipping faster than the dwell time cannot make the mode oscillate.
// Each swap quiesces the shard through its serial lock (Reconfigure drains
// in-flight transactions, flips the config pointer, releases), so no
// transaction ever observes mixed-algorithm state.
package tmctl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stm"
	"repro/internal/txtrace"
)

// Mode is a rung of the degradation ladder.
type Mode int

const (
	ModeNormal Mode = iota
	ModeTML
	ModeSerial
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeTML:
		return "tml"
	case ModeSerial:
		return "serial"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode converts a user-facing mode name (the /debug/tmctl override
// surface) into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "normal":
		return ModeNormal, nil
	case "tml":
		return ModeTML, nil
	case "serial":
		return ModeSerial, nil
	}
	return 0, fmt.Errorf("tmctl: unknown mode %q (normal|tml|serial)", s)
}

// Policy parameterizes the controller. The zero value is unusable; call
// DefaultPolicy and tweak.
type Policy struct {
	// Interval is the sampling period.
	Interval time.Duration

	// DegradeAbortRatio: a window whose aborts/(aborts+commits) reaches this
	// degrades the shard one rung.
	DegradeAbortRatio float64
	// DegradeSerialFrac: a window whose serialization events (start-serial,
	// in-flight switches, abort-serial, watchdog escalations) reach this
	// fraction of commits degrades the shard one rung.
	DegradeSerialFrac float64
	// HealAbortRatio: a window at or below this abort ratio counts as calm.
	HealAbortRatio float64
	// HealWindows consecutive calm windows promote the shard one rung.
	HealWindows int
	// HealBackoffMax caps the heal-probe escalation. Every promotion is a
	// probe: if the shard degrades again before surviving HealWindows calm
	// windows at the higher rung, the heal was premature and the next one
	// demands HealWindows << shift calm windows, with shift growing by one
	// per failed probe up to this cap. A probe that survives resets the
	// shift to zero. This keeps a shard with genuinely bursty contention
	// from ping-ponging across rungs at the dwell frequency while still
	// letting a genuinely calmed shard heal on the first try.
	HealBackoffMax int
	// MinDwell is the minimum time between mode swaps on one shard, in
	// either direction — the hysteresis floor that prevents oscillation.
	MinDwell time.Duration
	// MinSamples: windows with fewer attempts than this carry no contention
	// evidence; they count as calm (an idle shard must not stay degraded)
	// but never as storm.
	MinSamples uint64

	// ROReadBias: within Normal mode, a window whose RO-fast-path commits
	// reach this share of all commits retunes an orec shard to mlwt (eager,
	// cheapest reads); below it the shard retunes to lazy (commit-time
	// acquisition, narrowest write-conflict window). Set to a negative value
	// to disable within-Normal retuning.
	ROReadBias float64

	// BackoffDegraded is the widened contention backoff installed on the TML
	// and Serial rungs.
	BackoffDegraded stm.BackoffConfig
	// RetryBudgetDegraded is the shortened SerializeAfter installed on the
	// TML rung (give up on optimism sooner while the storm lasts).
	RetryBudgetDegraded int

	// AnomalySensitivity halves the degrade thresholds while the tracer's
	// anomaly detector has tripped within the last sampling window, when
	// true (a detector trip is independent evidence the storm is real).
	AnomalySensitivity bool

	// HotKeyGate conditions the Normal→TML degrade on workload shape when a
	// fingerprint source is attached (SetFingerprint). Degrading to TML
	// trades all concurrency for a single-writer sequence lock — a good
	// trade when the aborts come from a few hot keys (TML's invisible
	// readers stop paying orec traffic for them), a bad one when the abort
	// ratio is diffuse across the key space. An abort-ratio-only storm (no
	// serialization evidence) on the Normal rung therefore degrades only if
	// the shard's hot-key concentration is at least this share; otherwise
	// the decision is deferred and counted (gate_deferrals). Storms with
	// serialization evidence, storms on already-degraded rungs, and
	// controllers without a source bypass the gate. Negative disables.
	HotKeyGate float64
}

// DefaultPolicy returns the tuning used by `memcached -tmctl`.
func DefaultPolicy() Policy {
	return Policy{
		Interval:            time.Second,
		DegradeAbortRatio:   0.5,
		DegradeSerialFrac:   0.25,
		HealAbortRatio:      0.1,
		HealWindows:         3,
		HealBackoffMax:      4,
		MinDwell:            5 * time.Second,
		MinSamples:          32,
		ROReadBias:          0.75,
		BackoffDegraded:     stm.BackoffConfig{BaseNs: 256, MaxShift: 14},
		RetryBudgetDegraded: 4,
		AnomalySensitivity:  true,
		HotKeyGate:          0.5,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.Interval <= 0 {
		p.Interval = d.Interval
	}
	if p.DegradeAbortRatio <= 0 {
		p.DegradeAbortRatio = d.DegradeAbortRatio
	}
	if p.DegradeSerialFrac <= 0 {
		p.DegradeSerialFrac = d.DegradeSerialFrac
	}
	if p.HealAbortRatio <= 0 {
		p.HealAbortRatio = d.HealAbortRatio
	}
	if p.HealWindows <= 0 {
		p.HealWindows = d.HealWindows
	}
	if p.HealBackoffMax <= 0 {
		p.HealBackoffMax = d.HealBackoffMax
	}
	if p.MinDwell <= 0 {
		p.MinDwell = d.MinDwell
	}
	if p.MinSamples == 0 {
		p.MinSamples = d.MinSamples
	}
	if p.ROReadBias == 0 {
		p.ROReadBias = d.ROReadBias
	}
	if p.BackoffDegraded == (stm.BackoffConfig{}) {
		p.BackoffDegraded = d.BackoffDegraded
	}
	if p.RetryBudgetDegraded <= 0 {
		p.RetryBudgetDegraded = d.RetryBudgetDegraded
	}
	if p.HotKeyGate == 0 {
		p.HotKeyGate = d.HotKeyGate
	}
	return p
}

// shardCtl is the controller's per-shard state.
type shardCtl struct {
	rt   *stm.Runtime
	base stm.DynConfig // the shard's learned Normal-mode configuration

	mode     Mode
	pinned   bool // manual override holds the mode; auto transitions paused
	lastSwap time.Time
	calm     int // consecutive calm windows toward healing

	// Heal-probe escalation: probing is set by every promotion and cleared
	// when the shard survives HealWindows calm windows at the new rung (the
	// probe succeeded) or degrades again (it failed). healShift widens the
	// calm requirement of the NEXT heal exponentially after each failure.
	probing   bool
	healShift int

	prev     stm.Snapshot
	havePrev bool

	// Status for observers, refreshed each tick.
	lastAbortRatio float64
	lastROShare    float64
	lastConc       float64 // hot-key concentration, when a source is attached
	haveConc       bool

	// Swap counters ("stats reset" clears these; learned state survives).
	degrades      uint64
	promotes      uint64
	retunes       uint64
	gateDeferrals uint64 // Normal→TML degrades held back by the hot-key gate
}

// Controller drives one cache's shard runtimes. All state is behind mu; the
// tick goroutine and the observation/override surfaces share it.
type Controller struct {
	mu     sync.Mutex
	policy Policy
	shards []*shardCtl
	tracer *txtrace.Tracer   // optional anomaly tap (nil: no tap)
	fp     FingerprintSource // optional workload fingerprint (nil: gate off)

	prevAnoms    int // tracer anomaly count at the previous tick
	anomalyTrips uint64

	// Injectable clock and sampler for the hysteresis tests: the square-wave
	// oscillation proof needs exact control of both the window signal and
	// the dwell timeline.
	now    func() time.Time
	sample func(*stm.Runtime) stm.Snapshot

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New builds a controller over the given shard runtimes (one per shard, in
// shard order). tracer may be nil. The controller does not tick until Start.
// Each runtime's configuration at this moment is learned as its Normal-mode
// base; a shard whose runtime cannot be reconfigured (NoSerialLock) must not
// be handed to a controller.
func New(policy Policy, rts []*stm.Runtime, tracer *txtrace.Tracer) *Controller {
	c := &Controller{
		policy: policy.withDefaults(),
		tracer: tracer,
		now:    time.Now,
		sample: (*stm.Runtime).Stats,
	}
	for _, rt := range rts {
		c.shards = append(c.shards, &shardCtl{rt: rt, base: rt.DynConfig()})
	}
	return c
}

// FingerprintSource supplies a live per-shard hot-key concentration
// estimate in [0,1]: the share of the shard's recent operations landing on
// its top-K keys (internal/fingerprint's Observer implements this over its
// decayed Space-Saving sketches). The controller reads it once per shard
// per tick.
type FingerprintSource interface {
	Concentration(shard int) float64
}

// SetFingerprint attaches (nil: detaches) a workload-fingerprint source,
// arming the HotKeyGate on Normal→TML decisions. The engine calls this
// from EnableFingerprint/DisableFingerprint.
func (c *Controller) SetFingerprint(src FingerprintSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fp = src
	if src == nil {
		for _, s := range c.shards {
			s.haveConc = false
		}
	}
}

// Policy returns the controller's (defaulted) policy.
func (c *Controller) Policy() Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// Start launches the sampling goroutine. Safe to call once.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stopCh = make(chan struct{})
	interval := c.policy.Interval
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it. The shards keep
// whatever configuration they last swapped to.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop := c.stopCh
	c.mu.Unlock()
	close(stop)
	c.wg.Wait()
}

// Tick runs one sampling-and-decision pass over every shard. Exported so
// tests (and the torture harness) can drive the controller deterministically
// without the wall-clock goroutine.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()

	// Anomaly tap: did the tracer's detector trip since the last tick?
	anomalous := false
	if c.tracer != nil && c.policy.AnomalySensitivity {
		n := len(c.tracer.Anomalies())
		if n > c.prevAnoms {
			anomalous = true
			c.anomalyTrips += uint64(n - c.prevAnoms)
		}
		c.prevAnoms = n
	}

	for i, s := range c.shards {
		c.tickShard(i, s, now, anomalous)
	}
}

// tickShard judges one shard's window. Caller holds mu.
func (c *Controller) tickShard(idx int, s *shardCtl, now time.Time, anomalous bool) {
	snap := c.sample(s.rt)
	if !s.havePrev || snap.Starts < s.prev.Starts {
		// First window, or the counters went backwards (a "stats reset"
		// raced the controller): re-seed the baseline, judge nothing.
		s.prev, s.havePrev = snap, true
		return
	}
	d := snap.Sub(s.prev)
	s.prev = snap

	attempts := d.Aborts + d.Commits
	abortRatio := 0.0
	roShare := 0.0
	serialFrac := 0.0
	if attempts > 0 {
		abortRatio = float64(d.Aborts) / float64(attempts)
	}
	if d.Commits > 0 {
		roShare = float64(d.ROFastCommits) / float64(d.Commits)
		serial := d.StartSerial + d.InFlightSwitch + d.AbortSerial + d.WatchdogSerializes
		serialFrac = float64(serial) / float64(d.Commits)
	}
	s.lastAbortRatio = abortRatio
	s.lastROShare = roShare
	if c.fp != nil {
		s.lastConc = c.fp.Concentration(idx)
		s.haveConc = true
	}

	if s.pinned {
		return
	}

	degradeAbort := c.policy.DegradeAbortRatio
	degradeSerial := c.policy.DegradeSerialFrac
	if anomalous {
		degradeAbort /= 2
		degradeSerial /= 2
	}

	evidence := attempts >= c.policy.MinSamples
	stormy := evidence && (abortRatio >= degradeAbort || serialFrac >= degradeSerial)
	calm := !evidence || abortRatio <= c.policy.HealAbortRatio

	if calm {
		s.calm++
	} else {
		s.calm = 0
	}

	// A promotion is a heal probe until it has survived HealWindows calm
	// windows at the new rung; surviving pays back the whole escalation.
	if s.probing && s.calm >= c.policy.HealWindows {
		s.probing = false
		s.healShift = 0
	}

	if now.Sub(s.lastSwap) < c.policy.MinDwell {
		return
	}

	switch {
	case stormy && s.mode < ModeSerial:
		if s.mode == ModeNormal && serialFrac < degradeSerial &&
			c.fp != nil && c.policy.HotKeyGate > 0 && s.lastConc < c.policy.HotKeyGate {
			// Hot-key gate: an abort-only storm over a flat key distribution
			// gains nothing from TML's single-writer sequence lock — it
			// would serialize a diffuse workload. Hold the rung, count the
			// deferral, and let the next window (or serialization evidence,
			// which bypasses the gate) decide.
			s.gateDeferrals++
			return
		}
		if s.probing {
			// The storm returned before the probe could be confirmed: the
			// heal failed. Demand exponentially more calm before retrying.
			s.probing = false
			if s.healShift < c.policy.HealBackoffMax {
				s.healShift++
			}
		}
		c.apply(s, s.mode+1, now)
		s.degrades++
		s.calm = 0
	case s.mode > ModeNormal && s.calm >= c.policy.HealWindows<<s.healShift:
		c.apply(s, s.mode-1, now)
		s.promotes++
		s.calm = 0
		s.probing = true
	case s.mode == ModeNormal && evidence && c.policy.ROReadBias > 0:
		// Within Normal: retune orec shards toward the workload. Only
		// mlwt<->lazy moves; other base algorithms are left alone.
		cur := s.rt.Algorithm()
		if cur != stm.MLWT && cur != stm.LazyAlg {
			return
		}
		want := stm.LazyAlg
		if roShare >= c.policy.ROReadBias {
			want = stm.MLWT
		}
		if want != cur {
			if err := s.rt.Reconfigure(func(dc *stm.DynConfig) { dc.Algorithm = want }); err == nil {
				s.retunes++
				s.lastSwap = now
			}
		}
	}
}

// apply installs the configuration for mode on the shard and records the
// swap time. Caller holds mu.
func (c *Controller) apply(s *shardCtl, mode Mode, now time.Time) {
	err := s.rt.Reconfigure(func(d *stm.DynConfig) {
		switch mode {
		case ModeNormal:
			*d = s.base
		case ModeTML:
			*d = s.base
			d.Algorithm = stm.TML
			d.Backoff = c.policy.BackoffDegraded
			d.SerializeAfter = c.policy.RetryBudgetDegraded
		case ModeSerial:
			*d = s.base
			d.Algorithm = stm.SerialAlg
			d.Backoff = c.policy.BackoffDegraded
		}
	})
	if err != nil {
		return
	}
	s.mode = mode
	s.lastSwap = now
}

// Override forces a shard to a mode immediately, bypassing dwell and
// thresholds. pin holds the shard there (automatic transitions pause) until
// Release; without pin the controller may move it again after MinDwell.
func (c *Controller) Override(shard int, mode Mode, pin bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("tmctl: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	s := c.shards[shard]
	prev := s.mode
	c.apply(s, mode, c.now())
	if s.mode != mode {
		return fmt.Errorf("tmctl: reconfigure failed on shard %d", shard)
	}
	switch {
	case mode > prev:
		s.degrades++
	case mode < prev:
		s.promotes++
	}
	s.pinned = pin
	s.calm = 0
	// An operator override is a statement about the shard the controller's
	// probe history no longer reflects: start the heal ladder fresh.
	s.probing = false
	s.healShift = 0
	return nil
}

// Release unpins a shard, handing it back to automatic control at its
// current rung.
func (c *Controller) Release(shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("tmctl: shard %d out of range [0,%d)", shard, len(c.shards))
	}
	c.shards[shard].pinned = false
	return nil
}

// ResetSwapCounters zeroes the per-shard swap counters and the anomaly-trip
// count ("stats reset"). Learned state — base configurations, current modes,
// calm progress, dwell clocks — survives: a reset observes the controller,
// it does not lobotomize it.
func (c *Controller) ResetSwapCounters() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		s.degrades, s.promotes, s.retunes, s.gateDeferrals = 0, 0, 0, 0
	}
	c.anomalyTrips = 0
}

// ShardStatus is one shard's controller view, for `stats tmctl` and
// /debug/tmctl.
type ShardStatus struct {
	Shard      int     `json:"shard"`
	Mode       string  `json:"mode"`
	Algorithm  string  `json:"algorithm"`
	Pinned     bool    `json:"pinned"`
	AbortRatio float64 `json:"abort_ratio"` // last completed window
	ROShare    float64 `json:"ro_share"`    // last completed window
	CalmWins   int     `json:"calm_windows"`
	HealShift  int     `json:"heal_backoff_shift"` // failed-probe escalation level
	Probing    bool    `json:"heal_probing"`       // last promotion not yet confirmed
	Degrades   uint64  `json:"degrades"`
	Promotes   uint64  `json:"promotes"`
	Retunes    uint64  `json:"retunes"`
	// Hot-key fingerprint view: valid only while a source is attached.
	Concentration   float64 `json:"concentration"`
	HaveFingerprint bool    `json:"have_fingerprint"`
	GateDeferrals   uint64  `json:"gate_deferrals"`
}

// Status is the controller-wide snapshot.
type Status struct {
	Interval      time.Duration `json:"interval_ns"`
	Shards        []ShardStatus `json:"shards"`
	Degrades      uint64        `json:"degrades"`
	Promotes      uint64        `json:"promotes"`
	Retunes       uint64        `json:"retunes"`
	AnomalyTrips  uint64        `json:"anomaly_trips"`
	GateDeferrals uint64        `json:"gate_deferrals"`
}

// Snapshot returns the controller's current view of every shard.
func (c *Controller) Snapshot() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Interval: c.policy.Interval, AnomalyTrips: c.anomalyTrips}
	for i, s := range c.shards {
		ss := ShardStatus{
			Shard:      i,
			Mode:       s.mode.String(),
			Algorithm:  s.rt.Algorithm().String(),
			Pinned:     s.pinned,
			AbortRatio: s.lastAbortRatio,
			ROShare:    s.lastROShare,
			CalmWins:   s.calm,
			HealShift:  s.healShift,
			Probing:    s.probing,
			Degrades:   s.degrades,
			Promotes:   s.promotes,
			Retunes:    s.retunes,

			Concentration:   s.lastConc,
			HaveFingerprint: s.haveConc,
			GateDeferrals:   s.gateDeferrals,
		}
		st.Shards = append(st.Shards, ss)
		st.Degrades += s.degrades
		st.Promotes += s.promotes
		st.Retunes += s.retunes
		st.GateDeferrals += s.gateDeferrals
	}
	return st
}
