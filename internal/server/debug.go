// Debug HTTP endpoint: the live introspection surface the `-debug-addr` flag
// exposes. Three families of routes, all read-only except the tracing toggle:
//
//	/debug/vars    expvar-style JSON: the txobs report plus the engine's
//	               stats snapshot under one object
//	/metrics       Prometheus text exposition of the same data
//	/debug/pprof/  net/http/pprof (goroutine/heap/profile/trace), because a
//	               serialization storm diagnosis usually ends in "where are
//	               the worker goroutines blocked?"
//	/debug/tm      GET reports tracing state; POST ?enable=0|1 toggles it;
//	               POST ?reset=1 zeroes the collected aggregates
//	/debug/trace   GET exports the request tracer (OTLP-style span JSON plus
//	               slowlog, conflict graph, time series, anomalies, dumps);
//	               POST ?mode=off|sampled|full switches modes, ?dump=1
//	               captures the flight recorder now, ?reset=1 clears it
//	/debug/fingerprint  GET reports the live workload fingerprint (JSON);
//	               POST ?enable=0|1 toggles sampling, ?reset=1 clears windows
//	/debug/tmctl   GET reports the feedback controller's per-shard modes;
//	               POST ?shard=N&mode=normal|tml|serial[&pin=1] forces a
//	               shard's rung, ?shard=N&release=1 hands it back to
//	               automatic control
package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/tmctl"
	"repro/internal/txtrace"
)

// NewDebugHandler builds the debug mux for one cache, with no transport
// telemetry (see NewDebugHandlerServer).
func NewDebugHandler(cache *engine.Cache) http.Handler {
	return NewDebugHandlerServer(cache, nil)
}

// NewDebugHandlerServer builds the debug mux for one cache; srv, when
// non-nil, contributes the transport's telemetry (queue depths, dispatch
// latency, poller counters) to /debug/vars and /metrics.
func NewDebugHandlerServer(cache *engine.Cache, srv *Server) http.Handler {
	mux := http.NewServeMux()
	transport := func() protocol.TransportStats {
		if srv == nil {
			return nil
		}
		return srv.TransportStats()
	}

	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		vars := map[string]any{
			"branch": cache.Branch().String(),
			"shards": cache.NumShards(),
		}
		if o := cache.Observer(); o != nil {
			vars["tm"] = o.Report(32)
		}
		vars["stats"] = cache.NewWorker().Stats()
		// Always present, even at -shards=1: a dashboard scraping shard_stats
		// must not break when the operator collapses the cache to one domain.
		vars["shard_stats"] = cache.ShardStats()
		if tr := cache.Tracer(); tr != nil {
			vars["trace_mode"] = tr.Mode().String()
			vars["timeseries_seconds"] = tr.TimeSeriesSeconds()
			vars["slowlog_len"] = tr.SlowlogLen()
			vars["slowlog_dropped"] = tr.SlowlogDropped()
		}
		var ringDropped uint64
		if o := cache.Observer(); o != nil {
			ringDropped = o.RingDropped()
		}
		vars["ring_dropped"] = ringDropped
		inuse, idle := protocol.BufferGauges()
		vars["conn_buffers_inuse"] = inuse
		vars["conn_buffers_idle"] = idle
		if ctl := cache.Controller(); ctl != nil {
			vars["tmctl"] = ctl.Snapshot()
		}
		if o := cache.Fingerprint(); o != nil {
			vars["fingerprint_enabled"] = cache.FingerprintEnabled()
			vars["fingerprint"] = o.Snapshot()
		}
		if ts := transport(); ts != nil {
			vars["eventloop"] = ts.EventLoopSnapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(vars)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s := cache.NewWorker().Stats()
		fmt.Fprintf(w, "# TYPE mc_curr_items gauge\nmc_curr_items %d\n", s.CurrItems)
		fmt.Fprintf(w, "# TYPE mc_bytes gauge\nmc_bytes %d\n", s.CurrBytes)
		fmt.Fprintf(w, "# TYPE mc_total_items counter\nmc_total_items %d\n", s.TotalItems)
		fmt.Fprintf(w, "# TYPE mc_evictions counter\nmc_evictions %d\n", s.Evictions)
		fmt.Fprintf(w, "# TYPE tm_commits_total counter\ntm_commits_total %d\n", s.STM.Commits)
		fmt.Fprintf(w, "# TYPE tm_aborts_total counter\ntm_aborts_total %d\n", s.STM.Aborts)
		if o := cache.Observer(); o != nil {
			o.Report(32).WritePrometheus(w)
		}
		if o := cache.Fingerprint(); o != nil {
			snap := o.Snapshot()
			fmt.Fprintf(w, "# TYPE fp_shard_ops gauge\n")
			for i := range snap.Shards {
				fmt.Fprintf(w, "fp_shard_ops{shard=\"%d\"} %d\n", i, snap.Shards[i].Ops)
			}
			fmt.Fprintf(w, "# TYPE fp_shard_concentration gauge\n")
			for i := range snap.Shards {
				fmt.Fprintf(w, "fp_shard_concentration{shard=\"%d\"} %.4f\n", i, snap.Shards[i].Concentration)
			}
			fmt.Fprintf(w, "# TYPE fp_shard_abort_conflicts gauge\n")
			for i := range snap.Shards {
				fmt.Fprintf(w, "fp_shard_abort_conflicts{shard=\"%d\"} %d\n", i, snap.Shards[i].Aborts.Conflicts)
			}
			fmt.Fprintf(w, "# TYPE fp_txn_queue_p99_ns gauge\nfp_txn_queue_p99_ns %d\n", snap.TxnQueue.P99)
			fmt.Fprintf(w, "# TYPE fp_txn_validate_p99_ns gauge\nfp_txn_validate_p99_ns %d\n", snap.TxnValidate.P99)
			fmt.Fprintf(w, "# TYPE fp_txn_apply_p99_ns gauge\nfp_txn_apply_p99_ns %d\n", snap.TxnApply.P99)
			fmt.Fprintf(w, "# TYPE fp_txn_serial_wait_p99_ns gauge\nfp_txn_serial_wait_p99_ns %d\n", snap.TxnSerialWait.P99)
		}
		if ts := transport(); ts != nil {
			es := ts.EventLoopSnapshot()
			fmt.Fprintf(w, "# TYPE event_overflow_spills_total counter\nevent_overflow_spills_total %d\n", es.OverflowSpills)
			fmt.Fprintf(w, "# TYPE event_overflow_len gauge\nevent_overflow_len %d\n", es.OverflowLen)
			fmt.Fprintf(w, "# TYPE event_shared_depth gauge\nevent_shared_depth %d\n", es.SharedDepth)
			fmt.Fprintf(w, "# TYPE event_affine_depth gauge\n")
			for i, d := range es.AffineDepth {
				fmt.Fprintf(w, "event_affine_depth{queue=\"%d\"} %d\n", i, d)
			}
			fmt.Fprintf(w, "# TYPE event_worker_busy gauge\n")
			for i, b := range es.WorkerBusy {
				fmt.Fprintf(w, "event_worker_busy{worker=\"%d\"} %.4f\n", i, b)
			}
			fmt.Fprintf(w, "# TYPE event_dispatch_p99_ns gauge\nevent_dispatch_p99_ns %d\n", es.Dispatch.P99)
			if es.HasPoller {
				fmt.Fprintf(w, "# TYPE poller_wakeups_total counter\npoller_wakeups_total %d\n", es.Poller.Wakeups)
				fmt.Fprintf(w, "# TYPE poller_probes_total counter\npoller_probes_total %d\n", es.Poller.Probes)
				fmt.Fprintf(w, "# TYPE poller_synthesized_total counter\npoller_synthesized_total %d\n", es.Poller.Synthesized)
			}
		}
	})

	mux.HandleFunc("/debug/fingerprint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			switch r.URL.Query().Get("enable") {
			case "1":
				cache.EnableFingerprint()
			case "0":
				cache.DisableFingerprint()
			}
			if r.URL.Query().Get("reset") == "1" {
				if o := cache.Fingerprint(); o != nil {
					o.Reset()
				}
			}
		}
		o := cache.Fingerprint()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if o == nil {
			fmt.Fprintln(w, `{"enabled": false}`)
			return
		}
		out := map[string]any{
			"enabled":     cache.FingerprintEnabled(),
			"fingerprint": o.Snapshot(),
		}
		if ts := transport(); ts != nil {
			out["eventloop"] = ts.EventLoopSnapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})

	mux.HandleFunc("/debug/tm", func(w http.ResponseWriter, r *http.Request) {
		o := cache.Observer()
		if r.Method == http.MethodPost {
			switch r.URL.Query().Get("enable") {
			case "1":
				o = cache.EnableTracing()
			case "0":
				cache.DisableTracing()
			}
			if r.URL.Query().Get("reset") == "1" && o != nil {
				o.Reset()
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o == nil {
			fmt.Fprintln(w, "tracing: never enabled")
			return
		}
		fmt.Fprintf(w, "tracing: enabled=%v\n%s", o.Enabled(), o.Report(16))
	})

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := cache.Tracer()
		if tr == nil {
			http.Error(w, "tracer unavailable", http.StatusServiceUnavailable)
			return
		}
		if r.Method == http.MethodPost {
			if m := r.URL.Query().Get("mode"); m != "" {
				mode, err := txtrace.ParseMode(m)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				cache.EnableTxTrace(mode)
			}
			if r.URL.Query().Get("dump") == "1" {
				tr.TriggerDump("manual: /debug/trace?dump=1")
			}
			if r.URL.Query().Get("reset") == "1" {
				tr.Reset()
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tr.Export())
	})

	mux.HandleFunc("/debug/tmctl", func(w http.ResponseWriter, r *http.Request) {
		ctl := cache.Controller()
		if ctl == nil {
			http.Error(w, "tmctl: controller not enabled (-tmctl)", http.StatusServiceUnavailable)
			return
		}
		if r.Method == http.MethodPost {
			q := r.URL.Query()
			shard, err := strconv.Atoi(q.Get("shard"))
			if err != nil {
				http.Error(w, "tmctl: shard=N required", http.StatusBadRequest)
				return
			}
			switch {
			case q.Get("release") == "1":
				err = ctl.Release(shard)
			case q.Get("mode") != "":
				var mode tmctl.Mode
				mode, err = tmctl.ParseMode(q.Get("mode"))
				if err == nil {
					err = ctl.Override(shard, mode, q.Get("pin") == "1")
				}
			default:
				err = fmt.Errorf("tmctl: mode= or release=1 required")
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(ctl.Snapshot())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// ListenDebug serves the debug handler on addr. Returns the http.Server
// (Close to stop) and the bound listener address.
func ListenDebug(cache *engine.Cache, addr string) (*http.Server, string, error) {
	return ListenDebugServer(cache, nil, addr)
}

// ListenDebugServer is ListenDebug with transport telemetry: when srv is
// non-nil its event-loop snapshot joins /debug/vars, /debug/fingerprint and
// /metrics.
func ListenDebugServer(cache *engine.Cache, srv *Server, addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: NewDebugHandlerServer(cache, srv)}
	go hs.Serve(ln)
	return hs, ln.Addr().String(), nil
}
