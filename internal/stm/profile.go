package stm

import (
	"fmt"
	"sort"
	"sync"
)

// SerializationProfile attributes serialization events to their causes — the
// analogue of the execinfo-based profiling the paper's authors added to the
// GCC TM library ("manually diagnosing the causes of aborts and serialization
// was challenging, and we eventually extended the GCC TM library ... to
// provide more meaningful profiling data", §6).
//
// Profiling is off by default; enable it with Runtime.EnableProfiling. Each
// in-flight switch is attributed to the unsafe operation that forced it (the
// string passed to Tx.Unsafe), and abort-serial events to the contention
// manager.
type SerializationProfile struct {
	mu     sync.Mutex
	causes map[string]uint64
}

// EnableProfiling turns on serialization-cause attribution.
func (rt *Runtime) EnableProfiling() {
	rt.prof.CompareAndSwap(nil, &SerializationProfile{causes: make(map[string]uint64)})
}

// Profile returns the current profile, or nil when profiling is disabled.
func (rt *Runtime) Profile() *SerializationProfile { return rt.prof.Load() }

func (rt *Runtime) profileCause(cause string) {
	p := rt.prof.Load()
	if p == nil {
		return
	}
	p.mu.Lock()
	p.causes[cause]++
	p.mu.Unlock()
}

// CauseCount is one attributed serialization cause.
type CauseCount struct {
	Cause string
	Count uint64
}

// Causes returns the attributed events, most frequent first.
func (p *SerializationProfile) Causes() []CauseCount {
	p.mu.Lock()
	out := make([]CauseCount, 0, len(p.causes))
	for c, n := range p.causes {
		out = append(out, CauseCount{Cause: c, Count: n})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// String renders the profile as a report.
func (p *SerializationProfile) String() string {
	out := "serialization causes:\n"
	for _, c := range p.Causes() {
		out += fmt.Sprintf("  %8d  %s\n", c.Count, c.Cause)
	}
	return out
}
