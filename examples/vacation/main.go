// Vacation: a STAMP-style travel-reservation workload (the benchmark family
// the paper cites as the standard TM evaluation suite) built from the
// transactional data structures in internal/tmds.
//
// Three inventory tables (flights, rooms, cars) are transactional treaps;
// customer itineraries are a transactional hash set of reservation records.
// Each client transaction reserves one unit from up to three tables and
// registers the itinerary atomically: either the whole trip books or none of
// it does. An auditor runs read-only transactions asserting conservation
// (booked units + remaining capacity is constant per table).
//
//	go run ./examples/vacation
package main

import (
	"fmt"
	"sync"

	"repro/internal/stm"
	"repro/internal/tmds"
)

const (
	nResources = 256  // entries per table
	capacity   = 20   // units per entry
	nClients   = 4    // concurrent booking agents
	perClient  = 3000 // booking attempts per agent
)

type table struct {
	name string
	inv  *tmds.Treap // resource id -> *stm.TWord (remaining units)
}

func newTable(th *stm.Thread, name string) *table {
	t := &table{name: name, inv: tmds.NewTreap()}
	_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		for id := uint64(0); id < nResources; id++ {
			t.inv.Insert(tx, id, stm.NewTWord(capacity))
		}
	})
	return t
}

// reserve takes one unit of resource id; reports whether stock remained.
func (t *table) reserve(tx *stm.Tx, id uint64) bool {
	v, ok := t.inv.Get(tx, id)
	if !ok {
		return false
	}
	w := v.(*stm.TWord)
	left := w.Load(tx)
	if left == 0 {
		return false
	}
	w.Store(tx, left-1)
	return true
}

// remaining sums the table's free units.
func (t *table) remaining(tx *stm.Tx) uint64 {
	var sum uint64
	for _, id := range t.inv.Keys(tx) {
		v, _ := t.inv.Get(tx, id)
		sum += v.(*stm.TWord).Load(tx)
	}
	return sum
}

func main() {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})
	setup := rt.NewThread()
	flights := newTable(setup, "flights")
	rooms := newTable(setup, "rooms")
	cars := newTable(setup, "cars")
	itineraries := tmds.NewHashSet(8)

	booked := stm.NewTWord(0) // total units booked, per table kind
	bookedF := stm.NewTWord(0)
	bookedR := stm.NewTWord(0)
	bookedC := stm.NewTWord(0)

	var wg sync.WaitGroup
	var succeeded, failed uint64
	var mu sync.Mutex

	for cl := 0; cl < nClients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			seed := uint64(cl)*2654435761 + 99
			next := func() uint64 {
				seed ^= seed >> 12
				seed ^= seed << 25
				seed ^= seed >> 27
				return seed * 0x2545F4914F6CDD1D
			}
			var ok, fail uint64
			for i := 0; i < perClient; i++ {
				wantFlight := next()%4 != 0
				wantRoom := next()%4 != 0
				wantCar := next()%2 == 0
				f, r, c := next()%nResources, next()%nResources, next()%nResources
				tripID := uint64(cl)<<32 | uint64(i)
				bookedTrip := false
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					bookedTrip = false
					// All-or-nothing: any unavailable leg aborts the whole
					// trip by simply not modifying anything else (reads and
					// tentative writes roll forward only on success paths).
					n := uint64(0)
					if wantFlight {
						if !flights.reserve(tx, f) {
							return
						}
						bookedF.Add(tx, 1)
						n++
					}
					if wantRoom {
						if !rooms.reserve(tx, r) {
							tx.Cancel() // undo the flight leg; the trip fails
						}
						bookedR.Add(tx, 1)
						n++
					}
					if wantCar {
						if !cars.reserve(tx, c) {
							tx.Cancel()
						}
						bookedC.Add(tx, 1)
						n++
					}
					if n == 0 {
						return
					}
					itineraries.Insert(tx, tripID)
					booked.Add(tx, n)
					bookedTrip = true
				})
				if bookedTrip {
					ok++
				} else {
					fail++
				}
			}
			mu.Lock()
			succeeded += ok
			failed += fail
			mu.Unlock()
		}()
	}

	// Auditor: read-only conservation checks while bookings run.
	stop := make(chan struct{})
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	violations := 0
	go func() {
		defer auditWg.Done()
		th := rt.NewThread()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
				total := flights.remaining(tx) + bookedF.Load(tx)
				if total != nResources*capacity {
					violations++
				}
			})
		}
	}()

	wg.Wait()
	close(stop)
	auditWg.Wait()

	th := rt.NewThread()
	var free, sold, trips uint64
	_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		free = flights.remaining(tx) + rooms.remaining(tx) + cars.remaining(tx)
		sold = booked.Load(tx)
		trips = itineraries.Len(tx)
	})
	s := rt.Stats()
	fmt.Printf("trips booked: %d (failed/sold-out: %d), itineraries recorded: %d\n",
		succeeded, failed, trips)
	fmt.Printf("units: sold=%d free=%d total=%d (expected %d)\n",
		sold, free, sold+free, 3*nResources*capacity)
	fmt.Printf("conservation violations observed by auditor: %d\n", violations)
	fmt.Printf("transactions: %d commits, %d aborts\n", s.Commits, s.Aborts)
	if sold+free != 3*nResources*capacity || trips != succeeded || violations > 0 {
		fmt.Println("INVARIANT VIOLATION — this should be impossible")
	}
}
