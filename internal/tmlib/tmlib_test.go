package tmlib

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

// run executes fn inside an atomic transaction on a fresh runtime.
func run(t *testing.T, fn func(tx *stm.Tx)) {
	t.Helper()
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	if err := th.Run(stm.Props{Kind: stm.Atomic}, fn); err != nil {
		t.Fatalf("tx: %v", err)
	}
}

func tb(s string) *stm.TBytes { return stm.NewTBytesFrom([]byte(s)) }

// cstr builds a NUL-terminated transactional string with extra capacity.
func cstr(s string, cap_ int) *stm.TBytes {
	if cap_ < len(s)+1 {
		cap_ = len(s) + 1
	}
	buf := make([]byte, cap_)
	copy(buf, s)
	return stm.NewTBytesFrom(buf)
}

func TestMemcmp(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"", "", 0},
	}
	for _, c := range cases {
		run(t, func(tx *stm.Tx) {
			if got := Memcmp(tx, tb(c.a), 0, tb(c.b), 0, len(c.a)); got != c.want {
				t.Errorf("Memcmp(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
			}
			if got := MemcmpLocal(tx, tb(c.a), 0, []byte(c.b)); got != c.want {
				t.Errorf("MemcmpLocal(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
			}
			if got := MemcmpDirect(tb(c.a), 0, []byte(c.b)); got != c.want {
				t.Errorf("MemcmpDirect(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestMemcmpOffsets(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		a := tb("xxhello")
		b := tb("hello")
		if got := Memcmp(tx, a, 2, b, 0, 5); got != 0 {
			t.Errorf("offset Memcmp = %d, want 0", got)
		}
		if got := MemcmpLocal(tx, a, 2, []byte("hello")); got != 0 {
			t.Errorf("offset MemcmpLocal = %d, want 0", got)
		}
	})
}

func TestMemcpyVariants(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		src := tb("0123456789")
		dst := tb("aaaaaaaaaa")
		Memcpy(tx, dst, 2, src, 4, 3)
		if got := string(dst.Bytes()); got != "aa456aaaaa" {
			t.Errorf("Memcpy result %q", got)
		}
		MemcpyFromLocal(tx, dst, 0, []byte("ZZ"))
		if got := string(dst.Bytes()); got != "ZZ456aaaaa" {
			t.Errorf("MemcpyFromLocal result %q", got)
		}
		out := make([]byte, 4)
		MemcpyToLocal(tx, out, dst, 1, 4)
		if string(out) != "Z456" {
			t.Errorf("MemcpyToLocal got %q", out)
		}
	})
}

func TestStrlen(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		if got := Strlen(tx, cstr("hello", 16)); got != 5 {
			t.Errorf("Strlen = %d, want 5", got)
		}
		if got := Strlen(tx, tb("nonul")); got != 5 {
			t.Errorf("Strlen without NUL = %d, want 5", got)
		}
		if got := StrlenDirect(cstr("hello", 16)); got != 5 {
			t.Errorf("StrlenDirect = %d, want 5", got)
		}
	})
}

func TestStrncmp(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		cases := []struct {
			a, b string
			n    int
			want int
		}{
			{"get", "get", 3, 0},
			{"get", "gets", 3, 0},
			{"get", "gets", 4, -1},
			{"set", "get", 3, 1},
			{"a", "ab", 5, -1},
		}
		for _, c := range cases {
			if got := Strncmp(tx, cstr(c.a, 8), cstr(c.b, 8), c.n); got != c.want {
				t.Errorf("Strncmp(%q,%q,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
			}
		}
	})
}

func TestStrncpyPads(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		dst := tb("XXXXXXXX")
		Strncpy(tx, dst, cstr("ab", 8), 6)
		want := []byte{'a', 'b', 0, 0, 0, 0, 'X', 'X'}
		if !bytes.Equal(dst.Bytes(), want) {
			t.Errorf("Strncpy = %v, want %v", dst.Bytes(), want)
		}
	})
}

func TestStrchr(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		s := cstr("hello world", 16)
		if got := Strchr(tx, s, 'o'); got != 4 {
			t.Errorf("Strchr('o') = %d, want 4", got)
		}
		if got := Strchr(tx, s, 'z'); got != -1 {
			t.Errorf("Strchr('z') = %d, want -1", got)
		}
		if got := Strchr(tx, s, 0); got != 11 {
			t.Errorf("Strchr(0) = %d, want 11", got)
		}
	})
}

func TestRealloc(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		old := tb("hello")
		grown := Realloc(tx, old, 10)
		if grown.Len() != 10 {
			t.Fatalf("Len = %d", grown.Len())
		}
		if got := string(grown.Bytes()[:5]); got != "hello" {
			t.Errorf("content %q", got)
		}
		shrunk := Realloc(tx, old, 3)
		if got := string(shrunk.Bytes()); got != "hel" {
			t.Errorf("shrunk %q", got)
		}
	})
}

func TestMarshalInOut(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		s := tb("shared-data!")
		priv := MarshalIn(tx, s, 7, 4)
		if string(priv) != "data" {
			t.Fatalf("MarshalIn = %q", priv)
		}
		MarshalOut(tx, s, 0, []byte("SHARED"))
		if got := string(s.Bytes()); got != "SHARED-data!" {
			t.Errorf("MarshalOut result %q", got)
		}
	})
}

func TestPureParsersMatchStrconv(t *testing.T) {
	f := func(v int64) bool {
		s := strconv.FormatInt(v, 10)
		got, n := PureStrtol([]byte(s + "xyz"))
		return got == v && n == len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v uint64) bool {
		s := strconv.FormatUint(v, 10)
		got, n := PureStrtoull([]byte("  " + s))
		return got == v && n == len(s)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestPureStrtolEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		n    int
	}{
		{"", 0, 0},
		{"abc", 0, 0},
		{"-", 0, 0},
		{"-42", -42, 3},
		{"+7 ", 7, 2},
		{"  19db", 19, 4},
	}
	for _, c := range cases {
		v, n := PureStrtol([]byte(c.in))
		if v != c.want || n != c.n {
			t.Errorf("PureStrtol(%q) = (%d,%d), want (%d,%d)", c.in, v, n, c.want, c.n)
		}
	}
}

func TestIsspace(t *testing.T) {
	for c, want := range map[byte]bool{' ': true, '\t': true, '\r': true, '\n': true, 'a': false, '0': false} {
		if got := PureIsspace(c); got != want {
			t.Errorf("PureIsspace(%q) = %v", c, got)
		}
	}
	run(t, func(tx *stm.Tx) {
		s := tb("a b")
		if Isspace(tx, s, 0) || !Isspace(tx, s, 1) {
			t.Error("transactional Isspace misclassified")
		}
	})
}

func TestAtoiStrtoullTransactional(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		if got := Atoi(tx, cstr("-123", 8)); got != -123 {
			t.Errorf("Atoi = %d", got)
		}
		v, n := Strtoull(tx, cstr("987 rest", 16))
		if v != 987 || n != 3 {
			t.Errorf("Strtoull = (%d,%d)", v, n)
		}
	})
}

func TestHtons(t *testing.T) {
	if got := Htons(0x1234); got != 0x3412 {
		t.Errorf("Htons = %#x", got)
	}
	if got := Htons(Htons(0xBEEF)); got != 0xBEEF {
		t.Error("Htons not an involution")
	}
}

func TestSnprintfClones(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		dst := stm.NewTBytes(64)
		n := SnprintfStatUint(tx, dst, 0, []byte("curr_items"), 42)
		want := "STAT curr_items 42\r\n"
		if got := string(dst.Bytes()[:n]); got != want {
			t.Errorf("SnprintfStatUint = %q, want %q", got, want)
		}

		n = SnprintfValueHeader(tx, dst, 0, []byte("k1"), 7, 100)
		want = "VALUE k1 7 100\r\n"
		if got := string(dst.Bytes()[:n]); got != want {
			t.Errorf("SnprintfValueHeader = %q, want %q", got, want)
		}

		n = SnprintfUint(tx, dst, 3, 65535)
		if got := string(dst.Bytes()[3 : 3+n]); got != "65535" {
			t.Errorf("SnprintfUint = %q", got)
		}
	})
}

func TestSnprintfTruncates(t *testing.T) {
	run(t, func(tx *stm.Tx) {
		dst := stm.NewTBytes(8)
		n := SnprintfStatUint(tx, dst, 0, []byte("a_very_long_stat_name"), 1)
		if n != 8 {
			t.Errorf("truncated n = %d, want 8", n)
		}
		if got := string(dst.Bytes()); got != "STAT a_v" {
			t.Errorf("truncated content %q", got)
		}
	})
}

// TestMarshalingAtomicityCaveat demonstrates (as a regression-pinned behavior,
// not a bug) the paper's warning that two marshaled calls in one transaction
// can observe non-atomic external state: the pure function's result depends on
// ambient state the TM cannot version.
func TestMarshalingAtomicityCaveat(t *testing.T) {
	locale := "C"
	pureFormat := func(v float64) string {
		if locale == "C" {
			return fmt.Sprintf("%.2f", v)
		}
		return strings.ReplaceAll(fmt.Sprintf("%.2f", v), ".", ",")
	}
	run(t, func(tx *stm.Tx) {
		first := pureFormat(1.5)
		locale = "de_DE" // "administrator changes the locale" mid-transaction
		second := pureFormat(1.5)
		if first == second {
			t.Error("expected the two marshaled calls to disagree — the paper's pathological case")
		}
	})
}
