// mctorture runs seeded fault-injection torture schedules against the cache
// and checks it against a sequential model. Every failure report embeds the
// seed, so any red run reproduces exactly:
//
//	mctorture -branch it-oncommit -seed 42
//	mctorture -branch all -runs 3          # 3 seeds across all 14 branches
//	mctorture -branch ip -net              # through the TCP front end
//	mctorture -branch it-max -txn -shards 4  # cross-shard wire-transaction conservation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/torture"
)

func main() {
	branch := flag.String("branch", "it-oncommit", "branch to torture (see -branch help), or 'all'")
	seed := flag.Uint64("seed", 1, "first schedule seed")
	runs := flag.Int("runs", 1, "number of consecutive seeds per branch")
	netMode := flag.Bool("net", false, "drive ops through the TCP front end with transport faults")
	txnMode := flag.Bool("txn", false, "concurrent cross-shard wire-transaction transfers; checks a conserved global invariant (IT-family branches only, others are skipped)")
	short := flag.Bool("short", false, "shrunken schedules (smoke mode)")
	workers := flag.Int("workers", 0, "chaos workers (0 = default)")
	ops := flag.Int("ops", 0, "phase-A ops per worker (0 = default)")
	stable := flag.Int("stable", 0, "phase-B stable keys (0 = default)")
	rate := flag.Float64("rate", 0, "max per-point fault rate (0 = default 0.02)")
	shards := flag.Int("shards", 0, "TM domains to shard the cache into (0 = single domain)")
	flaps := flag.Int("flaps", 0, "force at least this many seeded controller mode swaps during the run")
	verbose := flag.Bool("v", false, "print the fault schedule summary for green runs too")
	flag.Parse()

	var branches []engine.Branch
	if *branch == "all" {
		branches = engine.Branches()
	} else {
		b, err := engine.ParseBranch(*branch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		branches = []engine.Branch{b}
	}

	failed := false
	for _, b := range branches {
		for s := *seed; s < *seed+uint64(*runs); s++ {
			cfg := torture.Config{
				Branch:     b,
				Seed:       s,
				Shards:     *shards,
				Workers:    *workers,
				Ops:        *ops,
				StableKeys: *stable,
				MaxRate:    *rate,
				ModeFlaps:  *flaps,
				Short:      *short,
			}
			var rep *torture.Report
			switch {
			case *txnMode:
				probe := engine.New(engine.Config{Branch: b, Shards: 2, HashPower: 8})
				if !probe.TxSupported() {
					fmt.Printf("torture %s: skipped (-txn needs wire-transaction support)\n", b)
					continue
				}
				rep = torture.RunTxn(cfg)
			case *netMode:
				rep = torture.RunNetwork(cfg)
			default:
				rep = torture.Run(cfg)
			}
			if rep.Failed() {
				failed = true
				fmt.Print(rep.String())
			} else {
				fmt.Println(rep.String())
				if *verbose {
					fmt.Print(rep.Faults)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
