package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

// duplex is an in-memory transport: the handler reads from `in` and writes to
// `out`.
type duplex struct {
	in  *bytes.Buffer
	out *bytes.Buffer
}

func (d *duplex) Read(p []byte) (int, error) {
	if d.in.Len() == 0 {
		return 0, io.EOF
	}
	return d.in.Read(p)
}

func (d *duplex) Write(p []byte) (int, error) { return d.out.Write(p) }

// runText feeds a script of text commands through a fresh cache and returns
// the full response stream.
func runText(t *testing.T, script string) string {
	t.Helper()
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	d := &duplex{in: bytes.NewBufferString(script), out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return d.out.String()
}

func TestTextSetGet(t *testing.T) {
	out := runText(t, "set foo 7 0 5\r\nhello\r\nget foo\r\n")
	want := "STORED\r\nVALUE foo 7 5\r\nhello\r\nEND\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestTextGetMiss(t *testing.T) {
	if out := runText(t, "get nothing\r\n"); out != "END\r\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTextMultiGet(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a b c\r\n")
	if !strings.Contains(out, "VALUE a 0 1\r\nx\r\n") || !strings.Contains(out, "VALUE b 0 1\r\ny\r\n") {
		t.Errorf("multi-get out = %q", out)
	}
	if strings.Contains(out, "VALUE c") {
		t.Errorf("miss returned a VALUE: %q", out)
	}
}

func TestTextGetsReturnsCAS(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\ngets a\r\n")
	if !strings.Contains(out, "VALUE a 0 1 ") {
		t.Errorf("gets out = %q", out)
	}
}

func TestTextCASFlow(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\ngets a\r\n")
	// Extract the cas token.
	var key string
	var flags, n int
	var cas uint64
	lines := strings.Split(out, "\r\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "VALUE") {
			if _, err := fmtSscanf(l, &key, &flags, &n, &cas); err != nil {
				t.Fatalf("parse %q: %v", l, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no VALUE line in %q", out)
	}
}

func fmtSscanf(l string, key *string, flags, n *int, cas *uint64) (int, error) {
	var tag string
	parts := strings.Fields(l)
	if len(parts) != 5 {
		return 0, io.ErrUnexpectedEOF
	}
	tag = parts[0]
	_ = tag
	*key = parts[1]
	var err error
	if _, err = parseInt(parts[2], flags); err != nil {
		return 0, err
	}
	if _, err = parseInt(parts[3], n); err != nil {
		return 0, err
	}
	var c int
	if _, err = parseInt(parts[4], &c); err != nil {
		return 0, err
	}
	*cas = uint64(c)
	return 5, nil
}

func parseInt(s string, out *int) (int, error) {
	v := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		v = v*10 + int(r-'0')
	}
	*out = v
	return v, nil
}

func TestTextStorageVariants(t *testing.T) {
	out := runText(t, strings.Join([]string{
		"add k 0 0 1\r\na",
		"add k 0 0 1\r\nb",
		"replace k 0 0 1\r\nc",
		"append k 0 0 1\r\nd",
		"prepend k 0 0 1\r\ne",
		"get k",
	}, "\r\n")+"\r\n")
	wantSeq := []string{"STORED", "NOT_STORED", "STORED", "STORED", "STORED", "VALUE k 0 3", "ecd", "END"}
	got := strings.Split(strings.TrimSuffix(out, "\r\n"), "\r\n")
	if len(got) != len(wantSeq) {
		t.Fatalf("got %d lines %q", len(got), out)
	}
	for i := range wantSeq {
		if got[i] != wantSeq[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], wantSeq[i])
		}
	}
}

func TestTextDeleteIncrDecrTouch(t *testing.T) {
	out := runText(t, strings.Join([]string{
		"set n 0 0 2\r\n10",
		"incr n 5",
		"decr n 100",
		"incr n 3",
		"delete n",
		"delete n",
		"incr n 1",
		"touch n 100",
	}, "\r\n")+"\r\n")
	want := "STORED\r\n15\r\n0\r\n3\r\nDELETED\r\nNOT_FOUND\r\nNOT_FOUND\r\nNOT_FOUND\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestTextNoreply(t *testing.T) {
	out := runText(t, "set a 0 0 1 noreply\r\nx\r\nget a\r\n")
	want := "VALUE a 0 1\r\nx\r\nEND\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestTextErrors(t *testing.T) {
	if out := runText(t, "bogus\r\n"); out != "ERROR\r\n" {
		t.Errorf("unknown command out = %q", out)
	}
	if out := runText(t, "incr k notanumber\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Errorf("bad delta out = %q", out)
	}
	if out := runText(t, "set k 0 0\r\n"); out != "ERROR\r\n" {
		t.Errorf("short set out = %q", out)
	}
}

func TestTextStatsAndVersion(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\nget a\r\nstats\r\nversion\r\n")
	if !strings.Contains(out, "STAT cmd_get 1\r\n") || !strings.Contains(out, "STAT get_hits 1\r\n") {
		t.Errorf("stats missing counters: %q", out)
	}
	if !strings.Contains(out, "STAT curr_items 1\r\n") {
		t.Errorf("stats missing curr_items: %q", out)
	}
	if !strings.Contains(out, "VERSION "+Version+"\r\n") {
		t.Errorf("version missing: %q", out)
	}
}

func TestTextFlushAll(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\nflush_all\r\nget a\r\n")
	if !strings.HasSuffix(out, "OK\r\nEND\r\n") {
		t.Errorf("out = %q", out)
	}
}

func TestQuitStopsServing(t *testing.T) {
	out := runText(t, "quit\r\nget a\r\n")
	if out != "" {
		t.Errorf("served after quit: %q", out)
	}
}

// ---------------------------------------------------------------------------
// Binary protocol

func binFrame(opcode byte, extras, key, value []byte, cas uint64) []byte {
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[1] = opcode
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint64(hdr[16:24], cas)
	out := append(hdr, extras...)
	out = append(out, key...)
	return append(out, value...)
}

type binRes struct {
	opcode byte
	status uint16
	extras []byte
	key    []byte
	value  []byte
	cas    uint64
}

func parseBinStream(t *testing.T, b []byte) []binRes {
	t.Helper()
	var out []binRes
	for len(b) > 0 {
		if len(b) < 24 {
			t.Fatalf("truncated frame: %d bytes", len(b))
		}
		if b[0] != 0x81 {
			t.Fatalf("bad magic %#x", b[0])
		}
		keyLen := int(binary.BigEndian.Uint16(b[2:4]))
		extraLen := int(b[4])
		bodyLen := int(binary.BigEndian.Uint32(b[8:12]))
		res := binRes{
			opcode: b[1],
			status: binary.BigEndian.Uint16(b[6:8]),
			cas:    binary.BigEndian.Uint64(b[16:24]),
		}
		body := b[24 : 24+bodyLen]
		res.extras = body[:extraLen]
		res.key = body[extraLen : extraLen+keyLen]
		res.value = body[extraLen+keyLen:]
		out = append(out, res)
		b = b[24+bodyLen:]
	}
	return out
}

func runBinary(t *testing.T, frames ...[]byte) []binRes {
	t.Helper()
	c := engine.New(engine.Config{Branch: engine.IPOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	in := &bytes.Buffer{}
	for _, f := range frames {
		in.Write(f)
	}
	d := &duplex{in: in, out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return parseBinStream(t, d.out.Bytes())
}

func TestBinarySetGet(t *testing.T) {
	extras := make([]byte, 8)
	binary.BigEndian.PutUint32(extras[0:4], 42) // flags
	res := runBinary(t,
		binFrame(OpSet, extras, []byte("bk"), []byte("bv"), 0),
		binFrame(OpGet, nil, []byte("bk"), nil, 0),
		binFrame(OpGet, nil, []byte("miss"), nil, 0),
	)
	if len(res) != 3 {
		t.Fatalf("%d responses", len(res))
	}
	if res[0].status != StatusOK {
		t.Errorf("set status %#x", res[0].status)
	}
	if res[1].status != StatusOK || string(res[1].value) != "bv" {
		t.Errorf("get = status %#x value %q", res[1].status, res[1].value)
	}
	if got := binary.BigEndian.Uint32(res[1].extras); got != 42 {
		t.Errorf("get flags = %d", got)
	}
	if res[1].cas == 0 {
		t.Error("get cas = 0")
	}
	if res[2].status != StatusKeyNotFound {
		t.Errorf("miss status %#x", res[2].status)
	}
}

func TestBinaryIncrCreatesWithInitial(t *testing.T) {
	extras := make([]byte, 20)
	binary.BigEndian.PutUint64(extras[0:8], 5)   // delta
	binary.BigEndian.PutUint64(extras[8:16], 99) // initial
	res := runBinary(t,
		binFrame(OpIncrement, extras, []byte("n"), nil, 0),
		binFrame(OpIncrement, extras, []byte("n"), nil, 0),
	)
	if res[0].status != StatusOK || binary.BigEndian.Uint64(res[0].value) != 99 {
		t.Errorf("first incr = %#x %v", res[0].status, res[0].value)
	}
	if res[1].status != StatusOK || binary.BigEndian.Uint64(res[1].value) != 104 {
		t.Errorf("second incr = %#x %v", res[1].status, res[1].value)
	}
}

func TestBinaryDeleteVersionNoopQuit(t *testing.T) {
	extras := make([]byte, 8)
	res := runBinary(t,
		binFrame(OpSet, extras, []byte("k"), []byte("v"), 0),
		binFrame(OpDelete, nil, []byte("k"), nil, 0),
		binFrame(OpDelete, nil, []byte("k"), nil, 0),
		binFrame(OpNoop, nil, nil, nil, 0),
		binFrame(OpVersion, nil, nil, nil, 0),
		binFrame(OpQuit, nil, nil, nil, 0),
		binFrame(OpNoop, nil, nil, nil, 0), // must not be served
	)
	if len(res) != 6 {
		t.Fatalf("%d responses, want 6 (quit stops serving)", len(res))
	}
	if res[1].status != StatusOK || res[2].status != StatusKeyNotFound {
		t.Errorf("delete statuses %#x %#x", res[1].status, res[2].status)
	}
	if string(res[4].value) != Version {
		t.Errorf("version = %q", res[4].value)
	}
}

func TestBinaryAddReplaceCAS(t *testing.T) {
	extras := make([]byte, 8)
	res := runBinary(t,
		binFrame(OpAdd, extras, []byte("k"), []byte("1"), 0),
		binFrame(OpAdd, extras, []byte("k"), []byte("2"), 0),
		binFrame(OpReplace, extras, []byte("k"), []byte("3"), 0),
		binFrame(OpGet, nil, []byte("k"), nil, 0),
	)
	if res[0].status != StatusOK || res[1].status != StatusItemNotStored || res[2].status != StatusOK {
		t.Errorf("statuses %#x %#x %#x", res[0].status, res[1].status, res[2].status)
	}
	cas := res[3].cas
	res2 := runBinary(t,
		binFrame(OpSet, extras, []byte("j"), []byte("x"), cas), // stale CAS on fresh cache
	)
	if res2[0].status != StatusKeyNotFound {
		t.Errorf("cas on absent = %#x", res2[0].status)
	}
}

func TestBinaryStat(t *testing.T) {
	extras := make([]byte, 8)
	res := runBinary(t,
		binFrame(OpSet, extras, []byte("k"), []byte("v"), 0),
		binFrame(OpStat, nil, nil, nil, 0),
	)
	if len(res) < 3 {
		t.Fatalf("stat returned %d frames", len(res))
	}
	last := res[len(res)-1]
	if len(last.key) != 0 || len(last.value) != 0 {
		t.Error("stat stream not terminated by empty frame")
	}
	foundSet := false
	for _, r := range res[1 : len(res)-1] {
		if string(r.key) == "cmd_set" && string(r.value) == "1" {
			foundSet = true
		}
	}
	if !foundSet {
		t.Error("cmd_set stat missing")
	}
}

func TestProtocolAutoDetect(t *testing.T) {
	// A text command followed by... the same connection cannot switch, but a
	// binary-first connection must be detected from byte 0x80.
	extras := make([]byte, 8)
	res := runBinary(t, binFrame(OpNoop, nil, nil, nil, 0))
	if len(res) != 1 || res[0].status != StatusOK {
		t.Errorf("binary autodetect failed: %+v", res)
	}
	_ = extras
	out := runText(t, "version\r\n")
	if !strings.HasPrefix(out, "VERSION") {
		t.Errorf("text autodetect failed: %q", out)
	}
}

func TestTextGatTouchesExpiry(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	now := c.Now()
	d := &duplex{in: bytes.NewBufferString(
		"set k 0 0 1\r\nx\r\n" +
			fmt.Sprintf("gat %d k\r\n", now+100) +
			fmt.Sprintf("gats %d k missing\r\n", now+100)), out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatal(err)
	}
	out := d.out.String()
	if !strings.Contains(out, "VALUE k 0 1\r\nx\r\n") {
		t.Errorf("gat output %q", out)
	}
	// gats includes a CAS token (4th field).
	if !strings.Contains(out, "VALUE k 0 1 ") {
		t.Errorf("gats missing CAS: %q", out)
	}
	// The touch must actually have extended the expiry.
	w := c.NewWorker()
	c.SetTime(now + 50)
	if _, _, _, ok := w.Get([]byte("k")); !ok {
		t.Error("item expired despite gat extension")
	}
}

func TestTextGatErrors(t *testing.T) {
	if out := runText(t, "gat notanumber k\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Errorf("out = %q", out)
	}
	if out := runText(t, "gat 100\r\n"); !strings.HasPrefix(out, "CLIENT_ERROR") {
		t.Errorf("out = %q", out)
	}
}

func TestBinaryAppendPrependTouchGAT(t *testing.T) {
	extras8 := make([]byte, 8)
	touchExtras := make([]byte, 4) // exptime 0 = never
	res := runBinary(t,
		binFrame(OpSet, extras8, []byte("k"), []byte("mid"), 0),
		binFrame(OpAppend, nil, []byte("k"), []byte("-end"), 0),
		binFrame(OpPrepend, nil, []byte("k"), []byte("start-"), 0),
		binFrame(OpGAT, touchExtras, []byte("k"), nil, 0),
		binFrame(OpTouch, touchExtras, []byte("k"), nil, 0),
		binFrame(OpTouch, touchExtras, []byte("missing"), nil, 0),
		binFrame(OpAppend, nil, []byte("missing"), []byte("x"), 0),
	)
	if res[1].status != StatusOK || res[2].status != StatusOK {
		t.Errorf("append/prepend status %#x %#x", res[1].status, res[2].status)
	}
	if string(res[3].value) != "start-mid-end" {
		t.Errorf("GAT value %q", res[3].value)
	}
	if res[4].status != StatusOK {
		t.Errorf("touch status %#x", res[4].status)
	}
	if res[5].status != StatusKeyNotFound {
		t.Errorf("touch missing status %#x", res[5].status)
	}
	if res[6].status != StatusItemNotStored {
		t.Errorf("append missing status %#x", res[6].status)
	}
}

// TestServeNeverPanicsOnGarbage feeds random byte streams (forced to start
// with both protocol magics and with printable junk) through the handler; it
// must fail cleanly, never panic, and never write a malformed reply frame.
func TestServeNeverPanicsOnGarbage(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 6})
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	f := func(data []byte, binaryFirst bool) bool {
		if binaryFirst {
			data = append([]byte{0x80}, data...)
		} else {
			data = append([]byte("set "), data...)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on input %q: %v", data, r)
			}
		}()
		d := &duplex{in: bytes.NewBuffer(data), out: &bytes.Buffer{}}
		_ = NewConn(w, d).Serve() // transport errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTextPipelining: many commands in one buffer are answered in order.
func TestTextPipelining(t *testing.T) {
	var script strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&script, "set k%02d 0 0 2\r\nv%d\r\n", i, i%10)
	}
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&script, "get k%02d\r\n", i)
	}
	out := runText(t, script.String())
	if got := strings.Count(out, "STORED"); got != 50 {
		t.Errorf("STORED count = %d", got)
	}
	if got := strings.Count(out, "VALUE"); got != 50 {
		t.Errorf("VALUE count = %d", got)
	}
}

// TestBinaryTruncatedFrame: a frame cut off mid-body terminates the
// connection with a transport error and no reply for the partial frame.
func TestBinaryTruncatedFrame(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.IPOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	full := binFrame(OpSet, make([]byte, 8), []byte("k"), []byte("v"), 0)
	d := &duplex{in: bytes.NewBuffer(full[:len(full)-1]), out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err == nil {
		t.Error("Serve returned nil for a truncated frame")
	}
	if res := parseBinStream(t, d.out.Bytes()); len(res) != 0 {
		t.Errorf("got %d replies for a truncated frame", len(res))
	}
}

func TestStatsReset(t *testing.T) {
	out := runText(t, "set a 0 0 1\r\nx\r\nget a\r\nstats reset\r\nstats\r\n")
	if !strings.Contains(out, "RESET\r\n") {
		t.Fatalf("no RESET ack: %q", out)
	}
	if !strings.Contains(out, "STAT cmd_get 0\r\n") || !strings.Contains(out, "STAT cmd_set 0\r\n") {
		t.Errorf("counters not reset: %q", out)
	}
	if !strings.Contains(out, "STAT curr_items 1\r\n") {
		t.Errorf("gauge curr_items should survive reset: %q", out)
	}
}

func TestStatsSlabs(t *testing.T) {
	out := runText(t, "set a 0 0 100\r\n"+strings.Repeat("x", 100)+"\r\nstats slabs\r\n")
	if !strings.Contains(out, ":chunk_size ") || !strings.Contains(out, ":used_chunks 1\r\n") {
		t.Errorf("stats slabs output %q", out)
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Errorf("missing END: %q", out)
	}
}

func TestBinaryQuietGets(t *testing.T) {
	extras := make([]byte, 8)
	res := runBinary(t,
		binFrame(OpSet, extras, []byte("q"), []byte("v"), 0),
		binFrame(OpGetQ, nil, []byte("missing"), nil, 0), // quiet miss: silence
		binFrame(OpGetQ, nil, []byte("q"), nil, 0),       // quiet hit: reply
		binFrame(OpGetK, nil, []byte("q"), nil, 0),       // key echoed
		binFrame(OpGetKQ, nil, []byte("missing"), nil, 0),
		binFrame(OpNoop, nil, nil, nil, 0),
	)
	if len(res) != 4 {
		t.Fatalf("%d replies, want 4 (set, quiet hit, getk, noop)", len(res))
	}
	if res[1].opcode != OpGetQ || string(res[1].value) != "v" {
		t.Errorf("quiet hit = %+v", res[1])
	}
	if res[2].opcode != OpGetK || string(res[2].key) != "q" || string(res[2].value) != "v" {
		t.Errorf("getk = %+v", res[2])
	}
	if res[3].opcode != OpNoop {
		t.Errorf("last reply = %+v, want noop", res[3])
	}
}

func TestTextStoreEdgeCases(t *testing.T) {
	// Oversized nbytes: refused without allocating the claimed size; the
	// declared body is drained (consuming the rest of this small input, as
	// resynchronization requires).
	out := runText(t, "set big 0 0 99999999\r\njunk\r\nversion\r\n")
	if !strings.Contains(out, "CLIENT_ERROR") || strings.Contains(out, "STORED") {
		t.Errorf("oversized set out = %q", out)
	}
	// Bad flags field with noreply: silent, stream stays in sync.
	out = runText(t, "set k notanumber 0 1 noreply\r\nx\r\nget k\r\n")
	if !strings.HasSuffix(out, "END\r\n") || strings.Contains(out, "VALUE") {
		t.Errorf("noreply bad-format out = %q", out)
	}
	// Bad data terminator.
	out = runText(t, "set k 0 0 1\r\nxZZget k\r\n")
	if !strings.Contains(out, "CLIENT_ERROR bad data chunk") {
		t.Errorf("bad terminator out = %q", out)
	}
	// cas with bad unique.
	out = runText(t, "cas k 0 0 1 notanumber\r\nx\r\n")
	if !strings.Contains(out, "CLIENT_ERROR") {
		t.Errorf("bad cas out = %q", out)
	}
	// Negative-looking nbytes (parse failure path).
	out = runText(t, "set k 0 0 -5\r\n")
	if !strings.Contains(out, "CLIENT_ERROR") && !strings.Contains(out, "ERROR") {
		t.Errorf("negative nbytes out = %q", out)
	}
}

func TestTextTouchAndDeleteNoreply(t *testing.T) {
	out := runText(t, "set k 0 0 1\r\nx\r\ntouch k 100 noreply\r\ndelete k noreply\r\nget k\r\n")
	want := "STORED\r\nEND\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
	if got := runText(t, "touch nothere 100\r\n"); got != "NOT_FOUND\r\n" {
		t.Errorf("touch miss = %q", got)
	}
	if got := runText(t, "touch k notanumber\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("touch bad exptime = %q", got)
	}
	if got := runText(t, "touch k\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("touch missing args = %q", got)
	}
}

func TestTextVerbosityAndIncrNoreply(t *testing.T) {
	if got := runText(t, "verbosity 1\r\n"); got != "OK\r\n" {
		t.Errorf("verbosity = %q", got)
	}
	if got := runText(t, "verbosity\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Errorf("verbosity no args = %q", got)
	}
	out := runText(t, "set n 0 0 1\r\n5\r\nincr n 1 noreply\r\nget n\r\n")
	if !strings.Contains(out, "\r\n6\r\n") {
		t.Errorf("incr noreply out = %q", out)
	}
}

func TestBinaryOversizedBody(t *testing.T) {
	// A frame claiming a 100MB body must be refused without allocation.
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[1] = OpSet
	binary.BigEndian.PutUint32(hdr[8:12], 100<<20)
	res := runBinary(t, hdr)
	if len(res) != 1 || res[0].status != StatusValueTooLarge {
		t.Errorf("oversized body res = %+v", res)
	}
}

func TestBinaryBadMagicAndUnknownOpcode(t *testing.T) {
	res := runBinary(t, binFrame(0x42, nil, nil, nil, 0))
	if len(res) != 1 || res[0].status != StatusUnknownCommand {
		t.Errorf("unknown opcode res = %+v", res)
	}
	// Inconsistent lengths: keyLen > bodyLen.
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[1] = OpGet
	binary.BigEndian.PutUint16(hdr[2:4], 10) // key 10 bytes, body 0
	res = runBinary(t, hdr)
	if len(res) != 1 || res[0].status != StatusInvalidArgs {
		t.Errorf("inconsistent lengths res = %+v", res)
	}
}
