package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/txtrace"
)

// TraceOverheadResult quantifies the request-tracing layer's cost contract:
// the same GET-heavy protocol workload (9:1 GET:SET over the text protocol)
// driven with tracing absent, bound-but-off, sampled, and full. The number
// that matters is the disabled point — a connection with a span buffer bound
// but the tracer in ModeOff must pay one atomic load per request and nothing
// else, so its delta against the baseline must stay inside noise (≤ 2%).
type TraceOverheadResult struct {
	Branch string `json:"branch"`
	// Host parallelism at measurement time: the tracing deltas below are only
	// comparable between runs that agree on it.
	GOMAXPROCS int                  `json:"gomaxprocs"`
	CPUs       int                  `json:"cpus"`
	Threads    int                  `json:"threads"`
	OpsPerConn int                  `json:"ops_per_conn"`
	Trials     int                  `json:"trials"` // median-of-N per point
	Points     []TraceOverheadPoint `json:"points"`
}

// TraceOverheadPoint is one tracing configuration's median throughput.
type TraceOverheadPoint struct {
	Config    string  `json:"config"` // baseline | disabled | sampled | full
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// DeltaPct is (baseline - this) / baseline in percent: positive means
	// this configuration is slower than the no-spans baseline.
	DeltaPct float64 `json:"delta_vs_baseline_pct"`
	// ShardBalance is each TM domain's commit share for this configuration's
	// cache (nil on lock-based branches): a skewed point means the delta
	// measured contention on one hot domain, not tracing cost.
	ShardBalance []float64 `json:"shard_balance,omitempty"`
}

// traceOverheadScript builds one connection's request byte stream: ops
// commands at roughly 9:1 GET:SET against the prepopulated keyspace.
func traceOverheadScript(ops, keyspace, vsize int, seed uint64) []byte {
	var b bytes.Buffer
	val := bytes.Repeat([]byte{'v'}, vsize)
	r := rngState(seed)
	for i := 0; i < ops; i++ {
		k := int(nextRand(&r) % uint64(keyspace))
		if i%10 == 9 {
			fmt.Fprintf(&b, "set memslap-key-%08d 0 0 %d\r\n", k, vsize)
			b.Write(val)
			b.WriteString("\r\n")
		} else {
			fmt.Fprintf(&b, "get memslap-key-%08d\r\n", k)
		}
	}
	b.WriteString("quit\r\n")
	return b.Bytes()
}

// scriptConn feeds a canned request stream to protocol.Conn and discards the
// responses — the in-process analogue of a client socket, with no kernel in
// the measurement loop.
type scriptConn struct {
	io.Reader
	io.Writer
}

// RunTraceOverhead measures the four tracing configurations back to back on
// one cache per configuration and reports the median-of-trials throughput for
// each, with deltas against the no-spans baseline.
func RunTraceOverhead(b engine.Branch, threads, trials int, o Options) TraceOverheadResult {
	o = o.withDefaults()
	if trials < 1 {
		trials = 1
	}
	res := TraceOverheadResult{
		Branch: b.String(), Threads: threads, OpsPerConn: o.OpsPerThread, Trials: trials,
		GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}

	scripts := make([][]byte, threads)
	for t := range scripts {
		scripts[t] = traceOverheadScript(o.OpsPerThread, o.KeySpace, o.ValueSize, uint64(t)+1)
	}

	configs := []struct {
		name  string
		spans bool
		mode  txtrace.Mode
	}{
		{"baseline", false, txtrace.ModeOff},
		{"disabled", true, txtrace.ModeOff},
		{"sampled", true, txtrace.ModeSampled},
		{"full", true, txtrace.ModeFull},
	}

	for _, cfg := range configs {
		c := engine.New(engine.Config{
			Branch:    b,
			MemLimit:  256 << 20,
			HashPower: o.HashPower,
		})
		c.Start()
		val := make([]byte, o.ValueSize)
		w0 := c.NewWorker()
		for i := 0; i < o.KeySpace; i++ {
			w0.Set(benchKey(nil, i), 0, 0, val)
		}
		if cfg.mode != txtrace.ModeOff {
			c.EnableTxTrace(cfg.mode)
		}

		var rates []float64
		// Trial -1 is an untimed warm-up: the first configuration measured
		// would otherwise eat the process's cold-start cost and skew every
		// delta computed against it.
		for trial := -1; trial < trials; trial++ {
			var wg sync.WaitGroup
			start := time.Now()
			for t := 0; t < threads; t++ {
				t := t
				wg.Add(1)
				go func() {
					defer wg.Done()
					pc := protocol.NewConn(c.NewWorker(),
						scriptConn{Reader: bytes.NewReader(scripts[t]), Writer: io.Discard})
					if cfg.spans {
						pc.SetSpans(txtrace.NewConnSpans(c.Tracer(), uint64(t)+1))
					}
					pc.Serve()
				}()
			}
			wg.Wait()
			dur := time.Since(start)
			if trial >= 0 {
				rates = append(rates, float64(threads*o.OpsPerThread)/dur.Seconds())
			}
		}
		balance := shardBalance(c)
		c.Stop()

		sort.Float64s(rates)
		med := rates[len(rates)/2]
		res.Points = append(res.Points, TraceOverheadPoint{
			Config:       cfg.name,
			Seconds:      float64(threads*o.OpsPerThread) / med,
			OpsPerSec:    med,
			ShardBalance: balance,
		})
	}

	base := res.Points[0].OpsPerSec
	for i := range res.Points {
		if base > 0 {
			res.Points[i].DeltaPct = (base - res.Points[i].OpsPerSec) / base * 100
		}
	}
	return res
}
