package stm

import "sync/atomic"

// orec is an ownership record. The word holds either a version number (even,
// version = word>>1) or, when the low bit is set, the lock word of the owning
// transaction attempt.
//
// Many locations hash to one orec; that is by design (false conflicts are part
// of the algorithm family being modeled).
type orec struct {
	v atomic.Uint64
	_ [7]uint64 // pad to a cache line to keep orec contention honest
}

func orecLocked(w uint64) bool    { return w&1 != 0 }
func orecVersion(w uint64) uint64 { return w >> 1 }
func versionWord(ver uint64) uint64 {
	return ver << 1
}

// ownedOrec remembers an orec this transaction has locked and the version word
// to restore on abort.
type ownedOrec struct {
	o    *orec
	prev uint64
}

// orecRead is a read-set entry for orec-based algorithms. The location id is
// kept so a validation failure can be attributed (orec index, label) by the
// observability layer.
type orecRead struct {
	o   *orec
	ver uint64 // version word observed at read time (always even)
	id  uint64
}
