package server_test

import (
	"flag"
	"testing"

	"repro/internal/engine"
	"repro/internal/torture"
)

var tortureShort = flag.Bool("torture.short", false, "run shrunken torture schedules")

// TestTortureNetwork is the end-to-end acceptance run: the full fault triad
// (connection drops, slow clients, slab allocation failures) plus the STM and
// maintenance schedule, driven through the TCP front end. Zero invariant
// violations and a clean graceful drain are required.
func TestTortureNetwork(t *testing.T) {
	for _, b := range []engine.Branch{engine.Semaphore, engine.IPOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []uint64{3, 0xFACADE} {
				rep := torture.RunNetwork(torture.Config{
					Branch: b,
					Seed:   seed,
					Short:  *tortureShort,
				})
				if rep.Failed() {
					t.Errorf("%s", rep)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}

// TestTortureNetworkEventLoop reruns the end-to-end chaos schedule over the
// event-driven transport: same fault triad, same invariants, but every
// connection rides the epoll front end and the shard-affine worker pool.
func TestTortureNetworkEventLoop(t *testing.T) {
	for _, b := range []engine.Branch{engine.Semaphore, engine.IPOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range []uint64{7, 0xFACADE} {
				rep := torture.RunNetwork(torture.Config{
					Branch:    b,
					Seed:      seed,
					Short:     *tortureShort,
					EventLoop: true,
				})
				if rep.Failed() {
					t.Errorf("%s", rep)
				} else {
					t.Logf("%s", rep)
				}
			}
		})
	}
}

// TestTortureNetworkEventLoopSharded drives the sharded cache through the
// event-loop transport. The run enables tracing and fails on any
// cross-shard orec conflict: the worker pool's affinity routing must never
// let two TM domains meet on one ownership record.
func TestTortureNetworkEventLoopSharded(t *testing.T) {
	rep := torture.RunNetwork(torture.Config{
		Branch:    engine.ITOnCommit,
		Seed:      11,
		Shards:    4,
		Short:     *tortureShort,
		EventLoop: true,
	})
	if rep.Failed() {
		t.Errorf("%s", rep)
	} else {
		t.Logf("%s", rep)
	}
}
