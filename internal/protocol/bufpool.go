package protocol

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
)

// connBufSize is the pooled per-connection read/write buffer size. It
// matches the bufio default the classic transport has always used, so the
// two transports frame identically; only the lifetime differs.
const connBufSize = 4096

// The pooled transport's buffer economy: a connection owns a reader/writer
// pair only from the moment a worker picks it up to the moment it parks
// back in the poller. The steady-state number of live pairs is therefore
// bounded by the worker count, not the connection count — that is where the
// event-loop transport's RSS win at 100k idle connections comes from.
var (
	readerPool = sync.Pool{New: func() any {
		return bufio.NewReaderSize(nil, connBufSize)
	}}
	writerPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(io.Discard, connBufSize)
	}}

	// bufInUse counts connections currently holding a buffer pair; it is
	// exact, and the leak-guard contract is that it returns to zero when
	// every connection is drained. bufIdle approximates the pairs parked in
	// the pools: Put increments it, a pool-hit Get decrements it, and the GC
	// emptying a pool leaves it high until the next Get cycle — it is a
	// capacity hint, not an accounting identity.
	bufInUse atomic.Int64
	bufIdle  atomic.Int64
)

// BufferGauges reports the pooled-buffer gauges surfaced as
// conn_buffers_inuse / conn_buffers_idle in `stats` and /debug/vars.
func BufferGauges() (inuse, idle int64) {
	return bufInUse.Load(), bufIdle.Load()
}

// AttachBuffers equips a pooled connection with a reader/writer pair from
// the process-wide pools. No-op when buffers are already attached or the
// connection is not pooled (NewConn buffers are permanent).
func (c *Conn) AttachBuffers() {
	if !c.pooled || c.r != nil {
		return
	}
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(c.fbr)
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(c.transport)
	c.r, c.w = br, bw
	bufInUse.Add(1)
	for {
		n := bufIdle.Load()
		if n <= 0 || bufIdle.CompareAndSwap(n, n-1) {
			break
		}
	}
}

// ReleaseBuffers returns the connection's buffer pair to the pools. A
// connection may only release when no request bytes are buffered and all
// replies are flushed; with force false the call refuses (returns false)
// otherwise. force true is the teardown path: pending bytes are abandoned
// with the connection.
func (c *Conn) ReleaseBuffers(force bool) bool {
	if !c.pooled || c.r == nil {
		return true
	}
	if !force && (c.r.Buffered() > 0 || c.w.Buffered() > 0) {
		return false
	}
	c.r.Reset(eofReader{})
	readerPool.Put(c.r)
	c.w.Reset(io.Discard)
	writerPool.Put(c.w)
	c.r, c.w = nil, nil
	bufInUse.Add(-1)
	bufIdle.Add(1)
	return true
}

// eofReader is what a pooled bufio.Reader points at between owners, so a
// use-after-release bug reads EOF instead of another connection's stream.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }
