package protocol

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"repro/internal/engine"
)

// runTextOn feeds a script through an existing cache (so tests can enable
// tracing or run several connections against the same state).
func runTextOn(t *testing.T, c *engine.Cache, script string) string {
	t.Helper()
	d := &duplex{in: bytes.NewBufferString(script), out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return d.out.String()
}

// statValue extracts the value of one STAT line, or "" when absent.
func statValue(out, key string) string {
	for _, line := range strings.Split(out, "\r\n") {
		rest, ok := strings.CutPrefix(line, "STAT "+key+" ")
		if ok {
			return rest
		}
	}
	return ""
}

// TestStatsReset is the protocol-level memcached `stats reset` contract:
// command counters and total_items go to zero, the curr_items/bytes gauges
// survive.
func TestStatsResetContract(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()

	out := runTextOn(t, c,
		"set foo 0 0 3\r\nbar\r\nget foo\r\nget miss\r\nstats\r\n")
	if statValue(out, "cmd_get") != "2" || statValue(out, "cmd_set") != "1" ||
		statValue(out, "total_items") != "1" || statValue(out, "curr_items") != "1" {
		t.Fatalf("pre-reset stats:\n%s", out)
	}

	out = runTextOn(t, c, "stats reset\r\nstats\r\n")
	if !strings.HasPrefix(out, "RESET\r\n") {
		t.Fatalf("no RESET reply:\n%s", out)
	}
	for _, key := range []string{"cmd_get", "cmd_set", "get_hits", "get_misses", "total_items", "evictions"} {
		if v := statValue(out, key); v != "0" {
			t.Errorf("%s = %q after reset, want 0", key, v)
		}
	}
	// Gauges survive.
	if v := statValue(out, "curr_items"); v != "1" {
		t.Errorf("curr_items = %q after reset, want 1", v)
	}
	if v := statValue(out, "bytes"); v == "0" || v == "" {
		t.Errorf("bytes = %q after reset, want preserved", v)
	}
}

// TestStatsHTMAndWatchdogLines checks the plain `stats` reply carries the
// watchdog and HTM emulation counters next to the conn-error lines.
func TestStatsHTMAndWatchdogLines(t *testing.T) {
	out := runText(t, "stats\r\n")
	for _, key := range []string{
		"tm_watchdog_backoff", "tm_watchdog_serialize",
		"tm_htm_capacity_aborts", "tm_htm_fallbacks",
	} {
		if statValue(out, key) == "" {
			t.Errorf("stats reply missing %s:\n%s", key, out)
		}
	}
}

// TestStatsTMSubcommands drives `stats tm`, `stats conflicts`, and
// `stats latency` with tracing off and on.
func TestStatsTMSubcommands(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()

	// Tracing never enabled: conflicts and latency reply a bare disabled
	// marker; stats tm still reports the runtime counters (the read-only
	// fast-path numbers must be observable without tracing).
	for _, sub := range []string{"conflicts", "latency"} {
		out := runTextOn(t, c, "stats "+sub+"\r\n")
		if out != "STAT tracing 0\r\nEND\r\n" {
			t.Fatalf("stats %s with tracing off = %q", sub, out)
		}
	}
	out := runTextOn(t, c, "stats tm\r\n")
	for _, key := range []string{"ro_fast_commit", "ro_upgrade", "tracing"} {
		if statValue(out, key) == "" {
			t.Fatalf("stats tm with tracing off missing %s:\n%s", key, out)
		}
	}
	if !strings.HasSuffix(out, "STAT tracing 0\r\nEND\r\n") {
		t.Fatalf("stats tm with tracing off should end with disabled marker:\n%s", out)
	}

	c.EnableTracing()
	out = runTextOn(t, c, "set foo 0 0 3\r\nbar\r\nget foo\r\nstats tm\r\n")
	if statValue(out, "tracing") != "1" {
		t.Fatalf("stats tm tracing line:\n%s", out)
	}
	if statValue(out, "events_commit") == "" || statValue(out, "events_begin") == "" {
		t.Fatalf("stats tm missing event counts:\n%s", out)
	}

	out = runTextOn(t, c, "stats latency\r\n")
	m := regexp.MustCompile(`STAT cmd_set count=(\d+) mean_ns=\d+ p50_ns=\d+ p95_ns=\d+ p99_ns=\d+ max_ns=\d+`).FindStringSubmatch(out)
	if m == nil || m[1] == "0" {
		t.Fatalf("stats latency missing cmd_set histogram:\n%s", out)
	}
	if !strings.Contains(out, "STAT phase_commit count=") {
		t.Fatalf("stats latency missing commit phase:\n%s", out)
	}

	// `stats conflicts` shape: tracing line always present; label lines only
	// under contention, so just check it terminates correctly.
	out = runTextOn(t, c, "stats conflicts\r\n")
	if statValue(out, "tracing") != "1" || !strings.HasSuffix(out, "END\r\n") {
		t.Fatalf("stats conflicts reply:\n%s", out)
	}

	// `stats reset` also clears the observability aggregates.
	out = runTextOn(t, c, "stats reset\r\nstats latency\r\n")
	if strings.Contains(out, "STAT cmd_set count=") {
		t.Fatalf("latency histograms survived stats reset:\n%s", out)
	}
}
