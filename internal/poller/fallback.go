package poller

import (
	"fmt"
	"net"
	"sync"
	"syscall"
)

// fallbackPoller implements Poller portably: each Arm parks one goroutine
// inside syscall.RawConn.Read, which waits on the runtime netpoller for
// readability WITHOUT consuming any bytes. That preserves the transport's
// invariant that protocol data is only ever read by an execution worker.
//
// Cost: one (small-stack) goroutine per armed connection, but still zero
// buffer bytes per idle connection — the pooled read/write buffers stay
// released while parked. Close does not wait for parked waiters: they hold
// no poller resources and unwind as soon as the owner closes their
// connections (RawConn.Read returns an error on a closed fd).
type fallbackPoller struct {
	counters
	onReady func(Token)

	mu     sync.Mutex
	regs   map[Token]syscall.RawConn
	next   uint64
	closed bool
}

// NewFallback builds the portable goroutine-parking poller. On linux it is
// only used by tests (New returns the epoll poller); elsewhere it is the
// platform implementation.
func NewFallback(onReady func(Token)) (Poller, error) {
	return &fallbackPoller{
		onReady: onReady,
		regs:    make(map[Token]syscall.RawConn),
	}, nil
}

func (p *fallbackPoller) Add(conn net.Conn) (Token, error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return 0, fmt.Errorf("poller: %T does not expose a file descriptor", conn)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	p.next++
	tok := Token(p.next)
	p.regs[tok] = rc
	return tok, nil
}

func (p *fallbackPoller) Arm(tok Token) error {
	p.mu.Lock()
	rc, ok := p.regs[tok]
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("poller: arm of unregistered token %d", tok)
	}
	go func() {
		// The first callback invocation inside waitReadable is this Arm's
		// readiness probe — the exact analogue of the epoll poller's
		// MSG_PEEK in Arm — so it counts as a probe, and a delivery born
		// from it counts as synthesized. Deliveries that parked first are
		// plain wakeups, the analogue of epoll's wait-loop events.
		p.probes.Add(1)
		immediate, err := waitReadable(rc)
		p.mu.Lock()
		_, live := p.regs[tok]
		done := p.closed
		p.mu.Unlock()
		if done || !live {
			return
		}
		// An error from the wait (conn closed under us) is still a readiness
		// event: the owner's read will surface the real error and tear down.
		_ = err
		if immediate {
			p.synthesized.Add(1)
		}
		p.wakeups.Add(1)
		p.onReady(tok)
	}()
	return nil
}

// waitReadable blocks until the connection would not block on read, without
// consuming a byte. RawConn.Read's contract is the netpoller's: the callback
// must attempt the syscall itself and return false only on EAGAIN (the
// runtime resets the descriptor's readiness before each wait, so a callback
// that never probes the socket can sleep through data that arrived earlier).
// MSG_PEEK makes the probe non-destructive: protocol bytes are only ever
// read by an execution worker. immediate reports whether the FIRST probe
// found readiness (no park happened) — the fallback's synthesized-delivery
// signal.
func waitReadable(rc syscall.RawConn) (immediate bool, err error) {
	var buf [1]byte
	first := true
	err = rc.Read(func(fd uintptr) bool {
		n, _, rerr := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK)
		if rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK {
			first = false
			return false
		}
		// Data (n>0), EOF (n==0, err==nil), or a real error: all are
		// readiness — the worker's read will surface whichever it is.
		_ = n
		immediate = first
		return true
	})
	return immediate, err
}

func (p *fallbackPoller) Remove(tok Token) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	delete(p.regs, tok)
	return nil
}

func (p *fallbackPoller) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.regs = make(map[Token]syscall.RawConn)
	return nil
}
