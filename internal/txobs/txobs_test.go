package txobs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingHammer drives one shared ring from N goroutines while a reader
// snapshots concurrently, then checks (a) the total-recorded counter lost
// nothing, (b) retention loss is bounded by the ring capacity, and (c) no
// event was torn (every snapshot entry is internally consistent).
func TestRingHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		capacity   = 256
	)
	o := New(Options{RingCapacity: capacity})
	o.Enable()
	sink := o.NewSink() // one ring, many writers
	if sink.Ring().Cap() != capacity {
		t.Fatalf("ring capacity = %d, want %d", sink.Ring().Cap(), capacity)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range sink.Ring().Snapshot() {
				checkConsistent(t, ev)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Retry and Reads encode the writer identity and iteration;
				// Cause repeats them so tearing would be detectable.
				sink.Record(&Event{
					Kind:   KCommit,
					Retry:  uint32(g),
					Reads:  uint32(i),
					Writes: uint32(g + i),
					Orec:   -1,
					Cause:  fmt.Sprintf("w%d-%d", g, i),
				})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := sink.Ring().Recorded(); got != goroutines*perG {
		t.Fatalf("recorded counter = %d, want %d (lost records)", got, goroutines*perG)
	}
	if got := o.KindCount(KCommit); got != goroutines*perG {
		t.Fatalf("commit kind counter = %d, want %d (lost-commit undercount)", got, goroutines*perG)
	}
	snap := sink.Ring().Snapshot()
	// Retention bounded by capacity: with >>capacity records, every slot holds
	// an event; losses beyond the last `capacity` events are by design.
	if len(snap) != capacity {
		t.Fatalf("final snapshot holds %d events, want full ring of %d", len(snap), capacity)
	}
	seen := map[uint64]bool{}
	for _, ev := range snap {
		checkConsistent(t, ev)
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func checkConsistent(t *testing.T, ev Event) {
	t.Helper()
	want := fmt.Sprintf("w%d-%d", ev.Retry, ev.Reads)
	if ev.Cause != want || ev.Writes != ev.Retry+ev.Reads {
		t.Errorf("torn event: %+v", ev)
	}
	if ev.Seq == 0 || ev.When == 0 {
		t.Errorf("unsequenced event: %+v", ev)
	}
}

// TestDisabledRecordsNothing checks the disabled path is a pure no-op: no
// events retained, no counters moved, no histograms filled.
func TestDisabledRecordsNothing(t *testing.T) {
	o := New(Options{Orecs: 16, RingCapacity: 64})
	sink := o.NewSink()
	for i := 0; i < 100; i++ {
		sink.Record(&Event{Kind: KAbort, Orec: 3, Label: RegisterLabel("test_disabled")})
		o.ObservePhase(PhaseCommit, time.Millisecond)
		o.ObserveCommand("get", time.Millisecond)
		o.RecordSerialCause("should not appear")
	}
	if n := sink.Ring().Recorded(); n != 0 {
		t.Fatalf("disabled ring recorded %d events", n)
	}
	if n := o.KindCount(KAbort); n != 0 {
		t.Fatalf("disabled kind counter = %d", n)
	}
	r := o.Report(0)
	if r.Events != 0 || len(r.Kinds) != 0 || len(r.SerialCauses) != 0 ||
		len(r.ConflictLabels) != 0 || len(r.Phases) != 0 || len(r.Commands) != 0 {
		t.Fatalf("disabled observer accumulated state: %+v", r)
	}
}

// TestPerThreadMerge checks that events recorded through separate per-thread
// sinks merge into one globally ordered stream.
func TestPerThreadMerge(t *testing.T) {
	const threads, each = 4, 50
	o := New(Options{RingCapacity: 128})
	o.Enable()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		s := o.NewSink()
		wg.Add(1)
		go func(s *Sink) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				s.Record(&Event{Kind: KBegin, Orec: -1})
			}
		}(s)
	}
	wg.Wait()
	evs := o.Events()
	if len(evs) != threads*each {
		t.Fatalf("merged %d events, want %d", len(evs), threads*each)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("merge not ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	threadsSeen := map[int32]int{}
	for _, ev := range evs {
		threadsSeen[ev.Thread]++
	}
	if len(threadsSeen) != threads {
		t.Fatalf("events from %d threads, want %d", len(threadsSeen), threads)
	}
}

// TestHeatMapAndReport drives aborts with labels through the aggregation and
// checks the report: per-label counts, per-orec counts, attribution rate.
func TestHeatMapAndReport(t *testing.T) {
	lb := RegisterLabel("test_bucket")
	ll := RegisterLabel("test_lru")
	o := New(Options{Orecs: 32, RingCapacity: 64})
	o.Enable()
	s := o.NewSink()
	for i := 0; i < 10; i++ {
		s.Record(&Event{Kind: KAbort, Orec: 5, Label: lb, Cause: "conflict: location locked"})
	}
	for i := 0; i < 3; i++ {
		s.Record(&Event{Kind: KAbort, Orec: 9, Label: ll, Cause: "conflict: read validation"})
	}
	s.Record(&Event{Kind: KAbortSerial, Orec: 5, Label: lb, Cause: "abort serial: consecutive-abort limit"})
	s.Record(&Event{Kind: KAbortSerial, Orec: -1, Label: NoLabel, Cause: "abort serial: consecutive-abort limit"})

	r := o.Report(10)
	if len(r.ConflictLabels) != 2 || r.ConflictLabels[0].Label != "test_bucket" || r.ConflictLabels[0].Count != 10 {
		t.Fatalf("conflict labels = %+v", r.ConflictLabels)
	}
	if len(r.HotOrecs) != 2 || r.HotOrecs[0].Orec != 5 || r.HotOrecs[0].Count != 10 || r.HotOrecs[0].LastLabel != "test_bucket" {
		t.Fatalf("hot orecs = %+v", r.HotOrecs)
	}
	named, total := o.SerialAttribution()
	if named != 1 || total != 2 {
		t.Fatalf("attribution = %d/%d, want 1/2", named, total)
	}
	if r.Kinds["abort"] != 13 || r.Kinds["abort_serial"] != 2 {
		t.Fatalf("kinds = %+v", r.Kinds)
	}
	if len(r.SerialCauses) != 1 || r.SerialCauses[0].Count != 2 {
		t.Fatalf("serial causes = %+v", r.SerialCauses)
	}

	// Reset zeroes everything resettable.
	o.Reset()
	r = o.Report(0)
	if len(r.Kinds) != 0 || len(r.ConflictLabels) != 0 || len(r.HotOrecs) != 0 || len(o.Events()) != 0 {
		t.Fatalf("report not empty after reset: %+v", r)
	}
}

// TestHistogramQuantiles checks the log-bucketed quantile math.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 must land in the fast
	// bucket's range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(900 * time.Nanosecond) // bucket [512, 1024)
	}
	for i := 0; i < 10; i++ {
		h.Observe(70 * time.Microsecond) // bucket [65536, 131072)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 900*time.Nanosecond || s.P50 > 1024*time.Nanosecond {
		t.Fatalf("p50 = %v, want in [900ns, 1024ns]", s.P50)
	}
	if s.P99 < 70*time.Microsecond || s.P99 > 131072*time.Nanosecond {
		t.Fatalf("p99 = %v, want in [70µs, 131µs]", s.P99)
	}
	if s.Max != 70*time.Microsecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Mean == 0 || s.Mean > 70*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Max != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
}

// TestReportRendering checks the JSON and Prometheus surfaces carry the data.
func TestReportRendering(t *testing.T) {
	o := New(Options{Orecs: 8})
	o.Enable()
	s := o.NewSink()
	s.Record(&Event{Kind: KAbort, Orec: 2, Label: RegisterLabel("test_render"), Cause: "conflict: location locked"})
	o.ObservePhase(PhaseCommit, 3*time.Microsecond)
	o.ObserveCommand("set", 40*time.Microsecond)

	r := o.Report(5)
	js, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"test_render"`, `"commit"`, `"set"`, `"abort"`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("JSON report missing %s: %s", want, js)
		}
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	prom := buf.String()
	for _, want := range []string{
		`tm_events_total{kind="abort"} 1`,
		`tm_conflicts_total{structure="test_render"} 1`,
		`tm_phase_latency_seconds_count{phase="commit"} 1`,
		`tm_command_latency_seconds_bucket{command="set",le="+Inf"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, prom)
		}
	}
	if !strings.Contains(r.String(), "test_render") {
		t.Errorf("text report missing label:\n%s", r)
	}
}
