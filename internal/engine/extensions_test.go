package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTxRefOptCorrectness runs the §5 transactional-refcount optimization
// under contention: gets skip the refcount pair, relying on TM conflict
// detection and privatization safety.
func TestTxRefOptCorrectness(t *testing.T) {
	for _, b := range []Branch{ITOnCommit, ITNoLock} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := New(Config{
				Branch:    b,
				MemLimit:  2 << 20,
				HashPower: 8,
				TxRefOpt:  true,
				Automove:  true,
			})
			c.Start()
			defer c.Stop()

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := c.NewWorker()
					for i := 0; i < 600; i++ {
						key := []byte(fmt.Sprintf("ro-%d", (g*13+i)%100))
						if i%8 == 0 {
							w.Set(key, 1, 0, []byte(fmt.Sprintf("v-%d-%d", g, i)))
						} else if i%17 == 0 {
							w.Delete(key)
						} else if val, _, _, ok := w.Get(key); ok && len(val) < 2 {
							t.Errorf("suspicious value %q", val)
						}
					}
				}()
			}
			wg.Wait()

			// Every linked item must still answer, and refcounts must be
			// exactly the table's reference (gets took none).
			w := c.NewWorker()
			live := 0
			for i := 0; i < 100; i++ {
				if _, _, _, ok := w.Get([]byte(fmt.Sprintf("ro-%d", i))); ok {
					live++
				}
			}
			s := w.Stats()
			if int(s.CurrItems) != live {
				t.Errorf("CurrItems = %d, live = %d", s.CurrItems, live)
			}
		})
	}
}

// TestTxRefOptIgnoredWhereInvalid ensures the flag is a no-op outside
// IT+transactional-volatile branches (IP gets must keep their refcounts:
// their data access is privatized, not transactional).
func TestTxRefOptIgnoredWhereInvalid(t *testing.T) {
	for _, b := range []Branch{Baseline, IP, IPOnCommit, IT} {
		c := New(Config{Branch: b, HashPower: 8, TxRefOpt: true})
		c.Start()
		w := c.NewWorker()
		if got := w.txRefOpt(); got {
			if b != IT { // IT pre-Max has TxVolatiles=false, also invalid
				t.Errorf("%v: txRefOpt active", b)
			}
		}
		w.Set([]byte("k"), 0, 0, []byte("v"))
		if _, _, _, ok := w.Get([]byte("k")); !ok {
			t.Errorf("%v: basic get broken", b)
		}
		c.Stop()
	}
}

// TestSerializationProfiler exercises the §6 execinfo-style attribution: the
// profiler must name the unsafe operations and the sites that caused
// serialization.
func TestSerializationProfiler(t *testing.T) {
	c := New(Config{Branch: ITCallable, HashPower: 8, MemLimit: 1 << 20, Automove: true})
	c.Runtime().EnableProfiling()
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("p-%d", i%64))
		if i%4 == 0 {
			w.Set(key, 0, 0, make([]byte, 512))
		} else {
			w.Get(key)
		}
	}
	p := c.Runtime().Profile()
	if p == nil {
		t.Fatal("profile nil after EnableProfiling")
	}
	causes := p.Causes()
	if len(causes) == 0 {
		t.Fatal("no causes attributed")
	}
	bySite := map[string]uint64{}
	for _, cc := range causes {
		bySite[cc.Cause] = cc.Count
	}
	if bySite["start serial @ item_get"] == 0 {
		t.Errorf("missing item_get start-serial attribution; causes = %v", causes)
	}
	if bySite["start serial @ do_store_item"] == 0 {
		t.Errorf("missing do_store_item attribution; causes = %v", causes)
	}
	if got := p.String(); len(got) == 0 {
		t.Error("empty report")
	}
	// Most frequent first.
	for i := 1; i < len(causes); i++ {
		if causes[i].Count > causes[i-1].Count {
			t.Errorf("causes not sorted: %v", causes)
		}
	}
}

// TestVerboseLogging checks the fprintf path end to end (eviction events
// reach the sink).
func TestVerboseLogging(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	c := New(Config{
		Branch:    IPOnCommit,
		MemLimit:  1 << 20,
		HashPower: 8,
		Verbose:   true,
		Automove:  true,
		LogSink: func(s string) {
			mu.Lock()
			lines = append(lines, s)
			mu.Unlock()
		},
	})
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	val := make([]byte, 4096)
	for i := 0; i < 500; i++ {
		w.Set([]byte(fmt.Sprintf("v-%04d", i)), 0, 0, val)
	}
	s := w.Stats()
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	if s.Evictions > 0 && n == 0 {
		t.Errorf("evictions=%d but no log lines", s.Evictions)
	}
}

// TestSlabRebalancerMovesPages drives two size classes so the slab
// maintainer has a real page move to perform.
func TestSlabRebalancerMovesPages(t *testing.T) {
	for _, b := range []Branch{Semaphore, ITOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := New(Config{Branch: b, MemLimit: 3 << 20, HashPower: 8, Automove: true})
			c.Start()
			defer c.Stop()
			w := c.NewWorker()

			// Fill with small items (class A gets pages)...
			small := make([]byte, 256)
			for i := 0; i < 4000; i++ {
				w.Set([]byte(fmt.Sprintf("s-%05d", i)), 0, 0, small)
			}
			// ...then delete most of them (fully-free pages in class A), and
			// hammer large items so class B starves and evicts.
			for i := 0; i < 4000; i++ {
				w.Delete([]byte(fmt.Sprintf("s-%05d", i)))
			}
			large := make([]byte, 8192)
			for i := 0; i < 600; i++ {
				w.Set([]byte(fmt.Sprintf("l-%04d", i)), 0, 0, large)
			}
			// The rebalancer runs asynchronously on eviction signals; poll.
			for tries := 0; tries < 200 && w.Stats().Reassigned == 0; tries++ {
				time.Sleep(time.Millisecond)
			}
			s := w.Stats()
			if s.Evictions == 0 && s.Reassigned == 0 {
				t.Skip("no pressure generated; covered by slab unit tests")
			}
			// The engine stays correct regardless of whether the move won the
			// race; primarily assert no corruption.
			if _, _, _, ok := w.Get([]byte("l-0599")); !ok {
				t.Error("most recent large item lost")
			}
		})
	}
}

// TestBaselineCondvarMaintenance pins the Figure 2 condition-variable path:
// the Baseline maintainer must wake via cond_signal and expand the table.
func TestBaselineCondvarMaintenance(t *testing.T) {
	c := New(Config{Branch: Baseline, HashPower: 6, MemLimit: 8 << 20})
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	for i := 0; i < 200; i++ {
		w.Set([]byte(fmt.Sprintf("cv-%03d", i)), 0, 0, []byte("v"))
	}
	var buckets uint64
	for tries := 0; tries < 2000; tries++ {
		buckets = w.Stats().HashBuckets
		if buckets > 64 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if buckets <= 64 {
		t.Fatalf("condvar-driven expansion never ran (buckets=%d)", buckets)
	}
	for i := 0; i < 200; i++ {
		if _, _, _, ok := w.Get([]byte(fmt.Sprintf("cv-%03d", i))); !ok {
			t.Fatalf("cv-%03d lost across condvar-driven expansion", i)
		}
	}
}

// TestStopUnderLoad shuts the cache down while workers are mid-flight: Stop
// must return (maintenance threads exit) and workers already in operations
// must complete without panics. Workers check MxCanRun is irrelevant to them —
// only maintenance stops — so operations keep succeeding after Stop.
func TestStopUnderLoad(t *testing.T) {
	for _, b := range []Branch{Baseline, IPOnCommit, ITCallable} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := New(Config{Branch: b, MemLimit: 2 << 20, HashPower: 8, Automove: true})
			c.Start()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := c.NewWorker()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						key := []byte(fmt.Sprintf("s-%d-%d", g, i%50))
						if i%5 == 0 {
							w.Set(key, 0, 0, []byte("v"))
						} else {
							w.Get(key)
						}
					}
				}()
			}
			// Let the workers warm up, then stop maintenance mid-stream.
			time.Sleep(20 * time.Millisecond)
			done := make(chan struct{})
			go func() { c.Stop(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Stop hung under load")
			}
			close(stop)
			wg.Wait()
			// The cache remains usable for direct operations after Stop.
			w := c.NewWorker()
			if res := w.Set([]byte("post"), 0, 0, []byte("stop")); res != Stored {
				t.Errorf("Set after Stop = %v", res)
			}
		})
	}
}

// TestRetryCondSyncMaintenance runs the §5 condition-synchronization
// extension end to end: maintenance threads sleep via stm.Tx.Retry, workers
// never post a semaphore, expansion still happens, and shutdown works.
func TestRetryCondSyncMaintenance(t *testing.T) {
	for _, b := range []Branch{IPOnCommit, ITMax, ITNoLock} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := New(Config{
				Branch:        b,
				MemLimit:      2 << 20,
				HashPower:     6, // 64 buckets: expansion trips quickly
				RetryCondSync: true,
				Automove:      true,
			})
			if !c.retryCondSync() {
				t.Fatalf("retryCondSync inactive for %v", b)
			}
			c.Start()
			w := c.NewWorker()
			for i := 0; i < 300; i++ {
				if res := w.Set([]byte(fmt.Sprintf("rc-%03d", i)), 0, 0, []byte("v")); res != Stored {
					t.Fatalf("Set %d = %v", i, res)
				}
			}
			var buckets uint64
			// Generous deadline: the race detector slows this ~10x.
			deadline := time.Now().Add(20 * time.Second)
			for time.Now().Before(deadline) {
				buckets = w.Stats().HashBuckets
				if buckets > 64 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if buckets <= 64 {
				t.Fatal("Retry-driven expansion never ran")
			}
			for i := 0; i < 300; i++ {
				if _, _, _, ok := w.Get([]byte(fmt.Sprintf("rc-%03d", i))); !ok {
					t.Fatalf("rc-%03d lost", i)
				}
			}
			if got := c.Runtime().Stats().Retries; got == 0 {
				t.Error("maintenance threads never used Retry")
			}
			// Shutdown must wake the Retry waiters.
			done := make(chan struct{})
			go func() { c.Stop(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Stop hung: Retry waiters not woken")
			}
		})
	}
}

// TestRetryCondSyncIgnoredPreMax: the flag needs transactional volatiles.
func TestRetryCondSyncIgnoredPreMax(t *testing.T) {
	c := New(Config{Branch: ITCallable, RetryCondSync: true, HashPower: 8})
	if c.retryCondSync() {
		t.Fatal("retryCondSync active pre-Max")
	}
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	w.Set([]byte("k"), 0, 0, []byte("v"))
	if _, _, _, ok := w.Get([]byte("k")); !ok {
		t.Error("basic op broken")
	}
}
