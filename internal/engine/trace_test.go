package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/txtrace"
)

// TestTraceResetToggleRace is the regression test for `stats reset` racing
// tracing toggles: workers run traced requests while one goroutine flips the
// request tracer's mode, another flips the txobs observer, and a third fires
// ResetStats — all concurrently, under -race. Nothing here asserts counts
// (the interleavings make them unpredictable); the test's job is that the
// exactly-once reset and the mode flips never tear a data structure.
func TestTraceResetToggleRace(t *testing.T) {
	c := New(Config{Branch: ITOnCommit, Shards: 2, HashPower: 8})
	c.Start()
	defer c.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			cs := txtrace.NewConnSpans(c.Tracer(), uint64(g)+1)
			key := []byte(fmt.Sprintf("race-key-%d", g%2))
			val := []byte("v")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if cs.Begin("set") {
					w.SetTxTrace(cs)
					w.Set(key, 0, 0, val)
					w.SetTxTrace(nil)
					cs.End()
				} else {
					w.Set(key, 0, 0, val)
				}
				w.Get(key)
			}
		}()
	}

	wg.Add(3)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.EnableTxTrace(txtrace.ModeSampled)
			c.EnableTxTrace(txtrace.ModeFull)
			c.DisableTxTrace()
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.EnableTracing()
			c.DisableTracing()
		}
	}()
	go func() {
		defer wg.Done()
		w := c.NewWorker()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.ResetStats()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The tracer must still be functional after the storm.
	c.EnableTxTrace(txtrace.ModeFull)
	w := c.NewWorker()
	cs := txtrace.NewConnSpans(c.Tracer(), 99)
	if !cs.Begin("set") {
		t.Fatal("tracer dead after reset/toggle storm")
	}
	w.SetTxTrace(cs)
	w.Set([]byte("after"), 0, 0, []byte("v"))
	w.SetTxTrace(nil)
	cs.End()
	if c.Tracer().Kept() == 0 {
		t.Fatal("full-mode request not kept after storm")
	}
}

// TestFlightRecorderNamesHotLabel is the acceptance test for the tentpole's
// diagnosis loop: a seeded fault-injection run hammers stores (every store
// bumps the shared cas_counter word — the engine's known global hotspot),
// the abort-rate anomaly detector trips, and the auto-captured
// flight-recorder dump's conflict graph must name that hot label.
func TestFlightRecorderNamesHotLabel(t *testing.T) {
	in := fault.New(0x746d2d747261636b) // fixed seed: deterministic delays
	in.Set(fault.STMCommitDelay, 0.05)  // widen the commit window to force conflicts
	c := New(Config{Branch: ITOnCommit, Shards: 1, HashPower: 8, Fault: in})
	c.Start()
	defer c.Stop()
	c.EnableTxTrace(txtrace.ModeFull)
	tr := c.Tracer()
	tr.SetRetryK(1) // any retry chain goes straight to the flight recorder

	// Prepopulate the per-goroutine numeric keys with a fixed-width value so
	// increments update in place (no reallocation, no slab traffic).
	w0 := c.NewWorker()
	for g := 0; g < 8; g++ {
		w0.Set([]byte(fmt.Sprintf("key-%d", g)), 0, 0, []byte("1000000000"))
	}

	deadline := time.Now().Add(10 * time.Second)
	statsW := c.NewWorker()
	// tick drives the per-second sampler by hand (deterministically, instead
	// of sleeping wall-clock seconds): each call is "one second" of history.
	tick := func() {
		st := statsW.Stats()
		tr.Tick(txtrace.Counters{
			Commits:     st.STM.Commits,
			Aborts:      st.STM.Aborts,
			StartSerial: st.STM.StartSerial,
			AbortSerial: st.STM.AbortSerial,
		})
	}
	hammer := func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c.NewWorker()
				cs := txtrace.NewConnSpans(tr, uint64(g)+1)
				key := []byte(fmt.Sprintf("key-%d", g))
				for i := 0; i < 400; i++ {
					// Disjoint keys, in-place increments (no allocation, no
					// shared bucket): the only word every increment shares is
					// the global CAS counter, so that is the injected hotspot
					// the conflict graph must recover.
					if cs.Begin("incr") {
						w.SetTxTrace(cs)
						w.Incr(key, 1)
						w.SetTxTrace(nil)
						cs.End()
					}
				}
			}()
		}
		wg.Wait()
	}

	for round := 0; len(tr.Dumps()) == 0; round++ {
		// Quiet seconds first so the trailing abort mean is ~zero, then one
		// hammered second whose delta dwarfs it: the spike shape the detector
		// is built for.
		tick()
		tick()
		tick()
		hammer()
		tick()
		if time.Now().After(deadline) {
			t.Fatalf("no anomaly dump after %d rounds: aborts=%d anomalies=%+v",
				round+1, statsW.Stats().STM.Aborts, tr.Anomalies())
		}
	}

	dumps := tr.Dumps()
	d := dumps[len(dumps)-1]
	if len(d.Spans) == 0 {
		t.Fatal("anomaly dump captured an empty flight recorder")
	}
	if len(d.Graph) == 0 {
		t.Fatal("anomaly dump has no conflict graph")
	}
	var hasHot bool
	for _, e := range d.Graph {
		if e.Label == "cas_counter" {
			hasHot = true
		}
	}
	if !hasHot {
		t.Fatalf("conflict graph does not name the injected hot label cas_counter: %+v", d.Graph)
	}
	if hot := txtrace.HotLabel(d.Graph); hot == "" {
		t.Fatalf("HotLabel empty over %+v", d.Graph)
	}

	// The same attribution must survive the offline path analyze uses.
	report := txtrace.FormatAnalysis(&txtrace.Export{
		Mode: tr.Mode().String(), Slowlog: d.Spans, ConflictGraph: d.Graph,
		Anomalies: tr.Anomalies(), Dumps: dumps,
	}, 5)
	if !containsStr(report, "cas_counter") {
		t.Fatalf("analysis report lost the hot label:\n%s", report)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
