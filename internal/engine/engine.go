package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/assoc"
	"repro/internal/fault"
	"repro/internal/fingerprint"
	"repro/internal/item"
	"repro/internal/mcstats"
	"repro/internal/sem"
	"repro/internal/slab"
	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/tmctl"
	"repro/internal/txobs"
)

// Heat-map labels for the engine's own shared words.
var (
	lblCurrentTime = txobs.RegisterLabel("current_time")
	lblMaintFlags  = txobs.RegisterLabel("maint_flags")
	lblCasCounter  = txobs.RegisterLabel("cas_counter")
	lblItemStripe  = txobs.RegisterLabel("item_lock_stripe")
)

// Config parameterizes a Cache.
type Config struct {
	Branch Branch

	// Shards partitions the cache into this many independent TM domains, each
	// with its own stm.Runtime (orec table, version clock, serial lock), hash
	// table + incremental expander, slab allocator and per-class LRU heads.
	// Transactions on different shards share zero synchronization words; keys
	// route by the high bits of their hash. Default GOMAXPROCS. MemLimit and
	// HashPower are per-cache: MemLimit divides across shards (floored at one
	// slab page each), while every shard starts at 2^HashPower buckets.
	Shards int

	// STM overrides the branch's default runtime configuration (used by the
	// Figure 11 experiments to swap algorithms and contention managers on the
	// NoLock code base). Nil selects the branch default.
	STM *stm.Config

	// MemLimit bounds slab memory (default 8 MiB: small enough that realistic
	// workloads exercise eviction, as the paper's memslap run does).
	MemLimit uint64
	// HashPower sizes the initial table at 2^HashPower buckets (default 12).
	HashPower uint
	// Stripes is the item-lock stripe count, a power of two (default 1024).
	Stripes int
	// GrowthFactor is the slab growth factor (default 1.25).
	GrowthFactor float64
	// Verbose turns on event logging (the fprintf-to-stderr path).
	Verbose bool
	// LogSink receives verbose log lines; nil discards them.
	LogSink func(string)
	// Automove lets eviction wake the slab rebalancer (the sem_post on the
	// hot path that stage onCommit moves into a handler).
	Automove bool
	// TxRefOpt applies the optimization §5 of the paper says transactional
	// reference counts enable ("it might be possible to replace the
	// modifications of the reference count with a simple read"): in IT
	// branches with transactional volatiles, gets skip the refcount
	// increment/decrement pair entirely — conflict detection already protects
	// the read, and privatization safety covers the data's lifetime.
	TxRefOpt bool
	// RetryCondSync replaces the Figure 2 semaphore machinery with the
	// condition-synchronization primitive §5 says the specification must
	// provide (stm.Tx.Retry): maintenance threads block on exactly their work
	// predicate, and workers need no wake-up calls at all — the hot-path
	// sem_post disappears rather than moving to an onCommit handler. Only
	// effective on transactional branches at stage Max or later (the
	// predicate flags must be transactional for Retry to observe them).
	RetryCondSync bool

	// Fault wires a deterministic fault injector through every layer of the
	// cache: the STM barriers (unless an explicit STM config already carries
	// one), the slab allocator, and the maintenance threads. Nil disables
	// injection at zero cost.
	Fault *fault.Injector
	// Watchdog, when non-zero, enables the STM starvation watchdog at this
	// scan interval (transactional branches only; see stm.Config).
	Watchdog time.Duration

	// TMCtl, when non-nil, enables the per-shard feedback controller
	// (internal/tmctl) under this policy: each shard's algorithm, backoff
	// curve and retry budget are retuned live from its abort and
	// serialization signals. Transactional branches only, and incompatible
	// with an STM override that sets NoSerialLock (no quiesce, no swap).
	TMCtl *tmctl.Policy
}

func (c Config) withDefaults() Config {
	if c.MemLimit == 0 {
		c.MemLimit = 8 << 20
	}
	if c.HashPower == 0 {
		c.HashPower = 12
	}
	if c.Stripes == 0 {
		c.Stripes = 1024
	}
	// A hash chain must be covered by a single stripe (same-bucket items must
	// map to the same item lock), which holds whenever stripes <= buckets.
	for c.Stripes > 1<<c.HashPower {
		c.Stripes /= 2
	}
	if c.GrowthFactor == 0 {
		c.GrowthFactor = slab.DefaultGrowthFactor
	}
	return c
}

// Cache is the memcached engine under one synchronization branch.
type shard struct {
	conf Config
	cfg  branchCfg

	rt *stm.Runtime // nil for lock branches

	tab    *assoc.Table
	lru    *item.LRU
	slabs  *slab.Allocator
	gstats *mcstats.Global

	// Lock-branch synchronization. Order: item stripes, cache, slabs, stats,
	// per-thread stats.
	itemMus  []sync.Mutex
	cacheMu  sync.Mutex
	slabsMu  sync.Mutex
	statsMu  sync.Mutex
	hashCond *sync.Cond // Baseline: maintenance wake-up on cacheMu
	slabCond *sync.Cond // Baseline: on slabsMu

	// IP-branch transactional item locks.
	itemFlags  []*stm.TWord
	stripeMask uint64

	// Semaphore-branch (and later) maintenance wake-ups.
	hashSem *sem.Sem
	slabSem *sem.Sem

	// Volatile globals (C volatiles / C++11 atomics in memcached).
	CurrentTime *stm.TWord // the clock-thread-updated current_time
	MxCanRun    *stm.TWord // maintenance threads may run (Figure 2)
	hashRunning *stm.TWord // hash maintainer awake (mx_running)
	slabRunning *stm.TWord // slab maintainer awake
	flushBefore *stm.TWord // flush_all watermark

	casCounter *stm.TWord // CAS id source (cache-lock domain)

	// Wire-transaction outcome counters (see wiretx.go): plain atomics, not
	// TWords — they are incremented once per CommitTx after the outcome is
	// known, outside any transaction, so a retried attempt cannot double
	// count. A cross-shard transaction is attributed to its lowest touched
	// shard.
	txCommits         atomic.Uint64
	txConflicts       atomic.Uint64
	txSerialFallbacks atomic.Uint64

	// fp is this shard's workload-fingerprint home, nil while fingerprinting
	// is disabled: every op path loads it exactly once (see fingerprint.go).
	fp atomic.Pointer[fingerprint.Shard]

	mu      sync.Mutex // registration of worker stat blocks
	tblocks []*mcstats.Thread

	wg     sync.WaitGroup
	stopCh chan struct{}
}

// New builds a cache for the given configuration. Call Start to launch the
// maintenance threads and clock, and Stop to halt them.
func newShard(conf Config) *shard {
	conf = conf.withDefaults()
	cfg := configFor(conf.Branch)
	c := &shard{
		conf:        conf,
		cfg:         cfg,
		tab:         assoc.New(conf.HashPower),
		gstats:      mcstats.NewGlobal(),
		slabs:       slab.New(conf.MemLimit, conf.GrowthFactor, 0),
		hashSem:     sem.New(0),
		slabSem:     sem.New(0),
		CurrentTime: stm.NewTWord(uint64(time.Now().Unix())).Label(lblCurrentTime),
		MxCanRun:    stm.NewTWord(1).Label(lblMaintFlags),
		hashRunning: stm.NewTWord(0).Label(lblMaintFlags),
		slabRunning: stm.NewTWord(0).Label(lblMaintFlags),
		flushBefore: stm.NewTWord(0).Label(lblMaintFlags),
		casCounter:  stm.NewTWord(0).Label(lblCasCounter),
		stopCh:      make(chan struct{}),
		stripeMask:  uint64(conf.Stripes) - 1,
	}
	c.lru = item.NewLRU(c.slabs.NumClasses())
	c.slabs.SetFault(conf.Fault)
	if cfg.tm {
		sc := stmConfigFor(cfg)
		if conf.STM != nil {
			sc = *conf.STM
		}
		if sc.Fault == nil {
			sc.Fault = conf.Fault
		}
		if sc.WatchdogInterval == 0 {
			sc.WatchdogInterval = conf.Watchdog
		}
		c.rt = stm.New(sc)
		c.itemFlags = make([]*stm.TWord, conf.Stripes)
		for i := range c.itemFlags {
			c.itemFlags[i] = stm.NewTWord(0).Label(lblItemStripe)
		}
	} else {
		c.itemMus = make([]sync.Mutex, conf.Stripes)
		c.hashCond = sync.NewCond(&c.cacheMu)
		c.slabCond = sync.NewCond(&c.slabsMu)
	}
	return c
}

// Runtime returns the shard's STM runtime, or nil for lock branches.
func (c *shard) Runtime() *stm.Runtime { return c.rt }

// newAgent creates an execution principal (worker or maintenance thread).
func (c *shard) newAgent() *agent {
	a := &agent{c: c}
	if c.cfg.tm {
		a.tctx = c.rt.NewThread()
		// The single-source requirement slows the nontransactional clones
		// once the tm_* library exists (§3.4).
		a.dctx = access.DirectCtx{NaiveLibc: c.cfg.profile.SafeLibc}
	}
	return a
}

// Start launches the clock thread and the two maintenance threads.
func (c *shard) Start() {
	if c.rt != nil {
		c.rt.StartWatchdog()
	}
	c.wg.Add(3)
	go c.clockThread()
	go c.hashMaintainer()
	go c.slabMaintainer()
}

// Stop halts maintenance threads and waits for them (Figure 2's
// halt_maintainer: clear mx_can_run, then wake everyone).
func (c *shard) Stop() {
	if c.retryCondSync() {
		// Retry waiters wake on orec changes, so the shutdown flag must be
		// written transactionally.
		tm.StoreWord(c.rt.NewThread(), c.MxCanRun, 0)
	}
	c.MxCanRun.StoreDirect(0)
	close(c.stopCh)
	if c.cfg.condvars {
		c.cacheMu.Lock()
		c.hashCond.Broadcast()
		c.cacheMu.Unlock()
		c.slabsMu.Lock()
		c.slabCond.Broadcast()
		c.slabsMu.Unlock()
	} else {
		c.hashSem.Post()
		c.slabSem.Post()
	}
	c.wg.Wait()
	if c.rt != nil {
		c.rt.StopWatchdog()
	}
}

// SetTime forces the volatile clock (tests of expiry and flush_all).
func (c *shard) SetTime(unix uint64) { c.CurrentTime.StoreDirect(unix) }

// Now reads the volatile clock directly (nontransactional callers).
func (c *shard) Now() uint64 { return c.CurrentTime.LoadDirect() }

// clockThread is memcached's clock handler: a dedicated updater of the
// volatile current_time, at 1 Hz (we tick faster so short runs see motion).
func (c *shard) clockThread() {
	defer c.wg.Done()
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.CurrentTime.StoreDirect(uint64(time.Now().Unix()))
		}
	}
}

// log emits a verbose event line.
func (c *shard) log() func(string) {
	if !c.conf.Verbose {
		return nil
	}
	return c.conf.LogSink
}

// ---------------------------------------------------------------------------
// Maintenance threads (§3.2, Figure 2)

// retryCondSync reports whether the Retry-based maintenance wake-up is
// active (transactional branches, stage Max+).
func (c *shard) retryCondSync() bool {
	return c.conf.RetryCondSync && c.cfg.tm && c.cfg.profile.TxVolatiles
}

// faultSleep stalls briefly when the named injection point fires — the
// delayed-wakeup / mid-expansion-stall schedules implicated in the lost-key
// and starvation incidents.
func (c *shard) faultSleep(p fault.Point, d time.Duration) {
	if c.conf.Fault.Fire(p) {
		time.Sleep(d)
	}
}

// hashMaintainer migrates hash buckets during expansion. Baseline uses the
// condition-variable pattern on the cache lock; every other branch uses the
// semaphore transformation — or, with RetryCondSync, blocks directly on its
// work predicate via stm.Tx.Retry (§5's missing primitive).
func (c *shard) hashMaintainer() {
	defer c.wg.Done()
	a := c.newAgent()
	if c.retryCondSync() {
		c.hashMaintainerRetry(a)
		return
	}
	if c.cfg.condvars {
		c.cacheMu.Lock()
		a.heldCache = true
		for c.MxCanRun.LoadDirect() == 1 {
			work := false
			ctx := a.dctx
			if c.tab.NeedExpand(ctx) {
				c.tab.StartExpand(ctx)
				a.gstat(func(g access.Ctx) { g.AddWord(c.gstats.HashExpands, 1) })
				work = true
			}
			if c.tab.IsExpanding(ctx) {
				c.expandChunk(a, ctx)
				work = true
			}
			if work {
				// Yield the cache lock between bulk moves so workers can
				// make progress during expansion, as memcached does.
				a.heldCache = false
				c.cacheMu.Unlock()
				c.cacheMu.Lock()
				a.heldCache = true
				continue
			}
			c.hashRunning.StoreDirect(0)
			c.hashCond.Wait()
		}
		a.heldCache = false
		c.cacheMu.Unlock()
		return
	}
	for c.MxCanRun.LoadDirect() == 1 {
		c.hashSem.Wait()
		for c.hashSem.TryWait() {
			// Coalesce queued wake-ups into one service pass.
		}
		if c.MxCanRun.LoadDirect() != 1 {
			return
		}
		c.faultSleep(fault.MaintHashDelay, time.Millisecond)
		for {
			progressed := false
			a.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, io: true, site: "assoc_maintenance"}, func(ctx access.Ctx) {
				progressed = false
				if c.tab.NeedExpand(ctx) {
					c.tab.StartExpand(ctx)
					a.gstat(func(g access.Ctx) { g.AddWord(c.gstats.HashExpands, 1) })
					ctx.Fprintf(c.log(), "hash table expansion starting")
					progressed = true
				}
				if c.tab.IsExpanding(ctx) {
					c.expandChunk(a, ctx)
					progressed = true
				}
			})
			if !progressed || c.MxCanRun.LoadDirect() != 1 {
				break
			}
			// Yield between bulk moves: workers holding the stripe the
			// migration needs must get to run, or the save-for-later path
			// (Figure 1a) retries the same bucket unproductively.
			runtime.Gosched()
		}
		a.volatileStore(c.hashRunning, 0)
	}
}

// hashMaintainerRetry is the Retry-based maintainer: one transaction that
// blocks until "shutdown or expansion work exists" becomes true. No
// semaphore, no mx_running flag, no worker-side wake-ups.
func (c *shard) hashMaintainerRetry(a *agent) {
	for {
		shutdown := false
		a.section(domains{cache: true}, profile{volatiles: true, io: true, site: "assoc_maintenance"}, func(ctx access.Ctx) {
			shutdown = false
			if ctx.Volatile(c.MxCanRun) == 0 {
				shutdown = true
				return
			}
			if c.tab.NeedExpand(ctx) {
				c.tab.StartExpand(ctx)
				a.gstat(func(g access.Ctx) { g.AddWord(c.gstats.HashExpands, 1) })
				ctx.Fprintf(c.log(), "hash table expansion starting")
				return
			}
			if c.tab.IsExpanding(ctx) {
				c.expandChunk(a, ctx)
				return
			}
			ctx.Tx().Retry() // sleep on the predicate itself
		})
		if shutdown {
			return
		}
		runtime.Gosched()
	}
}

// slabMaintainerRetry is the Retry-based slab rebalancer.
func (c *shard) slabMaintainerRetry(a *agent) {
	for {
		shutdown := false
		a.section(domains{slabs: true}, profile{volatiles: true, io: true, site: "slab_maintenance"}, func(ctx access.Ctx) {
			shutdown = false
			if ctx.Volatile(c.MxCanRun) == 0 {
				shutdown = true
				return
			}
			if ctx.Volatile(c.slabRunning) == 0 {
				ctx.Tx().Retry() // wait for an eviction notification flag
			}
			ctx.SetVolatile(c.slabRunning, 0)
			c.rebalanceOnce(a, ctx)
		})
		if shutdown {
			return
		}
		runtime.Gosched()
	}
}

// expandChunk migrates a bulk of buckets with the Figure 1a trylock protocol
// against item locks (held later in the lock order than the cache lock the
// maintainer already owns — the documented order violation).
func (c *shard) expandChunk(a *agent, ctx access.Ctx) {
	// A stall here leaves the table half-expanded (old and new arrays both
	// live) while workers race against it — the window of the lost-key
	// incident.
	c.faultSleep(fault.MaintExpandStall, 100*time.Microsecond)
	c.tab.ExpandStepLocked(ctx, assoc.BulkMove, func(hv uint64) (func(), bool) {
		return a.victimTryLock(ctx, hv)
	})
}

// slabMaintainer performs slab page rebalancing, guarded by the rebalance
// boolean that replaced the slab_rebalance trylock (§3.1).
func (c *shard) slabMaintainer() {
	defer c.wg.Done()
	a := c.newAgent()
	if c.retryCondSync() {
		c.slabMaintainerRetry(a)
		return
	}
	if c.cfg.condvars {
		c.slabsMu.Lock()
		a.heldSlabs = true
		for c.MxCanRun.LoadDirect() == 1 {
			if !c.rebalanceOnce(a, a.dctx) {
				c.slabRunning.StoreDirect(0)
				c.slabCond.Wait()
			}
		}
		a.heldSlabs = false
		c.slabsMu.Unlock()
		return
	}
	for c.MxCanRun.LoadDirect() == 1 {
		c.slabSem.Wait()
		for c.slabSem.TryWait() {
			// Coalesce the per-eviction automove notifications: the cost the
			// paper measures is the posting side, not redundant services.
		}
		if c.MxCanRun.LoadDirect() != 1 {
			return
		}
		c.faultSleep(fault.MaintSlabDelay, time.Millisecond)
		a.section(domains{slabs: true}, profile{volatiles: true, volatileFirst: true, io: true, site: "slab_maintenance"}, func(ctx access.Ctx) {
			c.rebalanceOnce(a, ctx)
		})
		a.volatileStore(c.slabRunning, 0)
		runtime.Gosched()
	}
}

// rebalanceOnce attempts one page move; reports whether it made progress.
func (c *shard) rebalanceOnce(a *agent, ctx access.Ctx) bool {
	if !c.slabs.TryStartRebalance(ctx) {
		return false // concurrent maintenance in flight
	}
	moved := false
	if d, r, ok := c.slabs.PickMove(ctx); ok {
		if c.slabs.MovePage(ctx, d, r) {
			a.gstat(func(g access.Ctx) { g.AddWord(c.gstats.Reassigned, 1) })
			ctx.Fprintf(c.log(), "slab page reassigned")
			moved = true
		}
	}
	c.slabs.EndRebalance(ctx)
	return moved
}

// signalHash wakes the hash maintainer if it is idle (the Figure 2 worker
// pattern: check mx_running, set it, post).
func (c *shard) signalHash(ctx access.Ctx) {
	if c.retryCondSync() {
		// The maintainer sleeps on the table's state itself (Retry); the
		// insert that made NeedExpand true is already the wake-up.
		return
	}
	if ctx.Volatile(c.hashRunning) != 0 {
		return
	}
	ctx.SetVolatile(c.hashRunning, 1)
	if c.cfg.condvars {
		c.hashCond.Signal() // caller holds cacheMu
		return
	}
	ctx.SemPost(c.hashSem)
}

// signalSlab notifies the slab maintainer of an eviction (the automove
// decision input). Unlike the hash wake-up, these notifications are not
// deduplicated: every eviction posts, which is exactly the hot-path sem_post
// whose serialization cost the onCommit stage removes (§3.5).
func (c *shard) signalSlab(ctx access.Ctx) {
	if c.retryCondSync() {
		// Setting the notification flag transactionally wakes the Retry
		// waiter; no sem_post (and so no unsafe operation) at all.
		ctx.SetVolatile(c.slabRunning, 1)
		return
	}
	ctx.SetVolatile(c.slabRunning, 1)
	if c.cfg.condvars {
		c.slabCond.Signal() // Baseline holds slabsMu on the eviction path
		return
	}
	ctx.SemPost(c.slabSem)
}
