// Package client is a Go client for the repro memcached server, speaking the
// text protocol plus the wire-transaction extension (txbegin/txcommit).
//
// A Client owns one connection and is not safe for concurrent use; pool
// Clients for concurrency (each transaction is per-connection state on the
// server, so a transaction must stay on one connection anyway).
//
// Transactions run through Tx:
//
//	err := c.Tx(func(tx *client.Tx) error {
//		v, ok, err := tx.Get("balance:a")
//		...
//		tx.Set("balance:a", newA)
//		tx.IncrBy("balance:b", 10)
//		return nil
//	})
//
// Reads inside the callback are served from the transaction's local write-set
// first (read-your-writes); reads that go to the server join the server-side
// read set and are revalidated at commit, so a nil return from Tx means the
// whole callback executed against a consistent snapshot. On TX_CONFLICT the
// callback is re-run from scratch, up to MaxTxRetries times, then Tx returns
// a *ConflictError (errors.Is(err, ErrConflict)).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Typed error sentinels.
var (
	// ErrConflict: the transaction's read set was invalidated and every retry
	// lost too. Matches *ConflictError via errors.Is.
	ErrConflict = errors.New("client: transaction conflict")
	// ErrNotSupported: the server's branch configuration cannot serve wire
	// transactions (lock-based or NoSerialLock builds).
	ErrNotSupported = errors.New("client: transactions not supported by server")
	// ErrNotStored: a plain Set/Add/Replace was refused by the server.
	ErrNotStored = errors.New("client: not stored")
	// ErrCASConflict: a CAS store lost its race.
	ErrCASConflict = errors.New("client: CAS conflict")
	// ErrNonNumeric: Incr/Decr on a non-numeric value.
	ErrNonNumeric = errors.New("client: non-numeric value")
)

// ConflictError reports the key whose commit-time validation failed on the
// last attempt.
type ConflictError struct{ Key string }

func (e *ConflictError) Error() string {
	return "client: transaction conflict on " + strconv.Quote(e.Key)
}
func (e *ConflictError) Is(target error) bool { return target == ErrConflict }

// ServerReplyError is any CLIENT_ERROR / SERVER_ERROR / ERROR line the server
// sent where a success reply was expected.
type ServerReplyError struct{ Line string }

func (e *ServerReplyError) Error() string { return "client: server replied " + strconv.Quote(e.Line) }

// Item is one cache entry as returned by Gets.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	CAS   uint64
}

// Client is one connection to the server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	maxTxRetries int
	retryBackoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithMaxTxRetries sets how many times Tx re-runs its callback after a
// conflict before giving up (default 3; 0 = no retries).
func WithMaxTxRetries(n int) Option { return func(c *Client) { c.maxTxRetries = n } }

// WithRetryBackoff sets the sleep before each conflict retry (default 0: the
// validation is optimistic and cheap, immediate retry is usually right).
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.retryBackoff = d } }

// Dial connects to a server address ("host:port").
func Dial(addr string, opts ...Option) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewFromConn(conn, opts...), nil
}

// NewFromConn wraps an established connection (tests, custom transports).
func NewFromConn(conn net.Conn, opts ...Option) *Client {
	c := &Client{
		conn:         conn,
		r:            bufio.NewReader(conn),
		w:            bufio.NewWriter(conn),
		maxTxRetries: 3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close tears down the connection. An open transaction dies with it — the
// server treats disconnect as txabort.
func (c *Client) Close() error { return c.conn.Close() }

// ---------------------------------------------------------------------------
// plain commands

func (c *Client) roundTrip(cmd string) (string, error) {
	if _, err := c.w.WriteString(cmd); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readLine()
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func isErrorLine(line string) bool {
	return line == "ERROR" ||
		strings.HasPrefix(line, "CLIENT_ERROR ") ||
		strings.HasPrefix(line, "SERVER_ERROR ")
}

// Set stores value under key unconditionally.
func (c *Client) Set(key string, value []byte) error {
	return c.store("set", key, 0, 0, value, 0)
}

// SetWith stores with explicit flags and expiry (relative seconds ≤ 30 days,
// or an absolute timestamp — the server's convention).
func (c *Client) SetWith(key string, flags uint32, exptime uint64, value []byte) error {
	return c.store("set", key, flags, exptime, value, 0)
}

// Add stores only if the key is absent.
func (c *Client) Add(key string, value []byte) error {
	return c.store("add", key, 0, 0, value, 0)
}

// CompareAndSwap stores only if the entry's CAS still matches.
func (c *Client) CompareAndSwap(key string, value []byte, cas uint64) error {
	return c.store("cas", key, 0, 0, value, cas)
}

func (c *Client) store(verb, key string, flags uint32, exptime uint64, value []byte, cas uint64) error {
	var cmd string
	if verb == "cas" {
		cmd = fmt.Sprintf("cas %s %d %d %d %d\r\n", key, flags, exptime, len(value), cas)
	} else {
		cmd = fmt.Sprintf("%s %s %d %d %d\r\n", verb, key, flags, exptime, len(value))
	}
	line, err := c.roundTrip(cmd + string(value) + "\r\n")
	if err != nil {
		return err
	}
	switch line {
	case "STORED":
		return nil
	case "NOT_STORED":
		return ErrNotStored
	case "EXISTS":
		return ErrCASConflict
	case "NOT_FOUND":
		return ErrNotStored
	default:
		return &ServerReplyError{Line: line}
	}
}

// Get fetches one key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	items, err := c.gets("get", []string{key})
	if err != nil || len(items) == 0 {
		return nil, false, err
	}
	return items[0].Value, true, nil
}

// Gets fetches keys with their CAS ids; misses are simply absent from the
// result.
func (c *Client) Gets(keys ...string) ([]Item, error) {
	return c.gets("gets", keys)
}

func (c *Client) gets(verb string, keys []string) ([]Item, error) {
	cmd := verb + " " + strings.Join(keys, " ") + "\r\n"
	if _, err := c.w.WriteString(cmd); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.readValues()
}

// readValues parses a VALUE.../END stream.
func (c *Client) readValues() ([]Item, error) {
	var items []Item
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return items, nil
		}
		if isErrorLine(line) {
			return nil, &ServerReplyError{Line: line}
		}
		var it Item
		var n int
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "VALUE" {
			return nil, &ServerReplyError{Line: line}
		}
		it.Key = fields[1]
		f64, err1 := strconv.ParseUint(fields[2], 10, 32)
		nv, err2 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil {
			return nil, &ServerReplyError{Line: line}
		}
		it.Flags, n = uint32(f64), nv
		if len(fields) >= 5 {
			if it.CAS, err = strconv.ParseUint(fields[4], 10, 64); err != nil {
				return nil, &ServerReplyError{Line: line}
			}
		}
		it.Value = make([]byte, n)
		if _, err := readFull(c.r, it.Value); err != nil {
			return nil, err
		}
		if term, err := c.readLine(); err != nil {
			return nil, err
		} else if term != "" {
			return nil, &ServerReplyError{Line: term}
		}
		items = append(items, it)
	}
}

func readFull(r *bufio.Reader, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Delete removes key; ok reports whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	line, err := c.roundTrip("delete " + key + "\r\n")
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, &ServerReplyError{Line: line}
	}
}

// Incr / Decr adjust a numeric value, returning the new value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) { return c.delta("incr", key, delta) }
func (c *Client) Decr(key string, delta uint64) (uint64, error) { return c.delta("decr", key, delta) }

func (c *Client) delta(verb, key string, delta uint64) (uint64, error) {
	line, err := c.roundTrip(fmt.Sprintf("%s %s %d\r\n", verb, key, delta))
	if err != nil {
		return 0, err
	}
	if line == "NOT_FOUND" {
		return 0, ErrNotStored
	}
	if strings.HasPrefix(line, "CLIENT_ERROR ") {
		return 0, ErrNonNumeric
	}
	v, perr := strconv.ParseUint(line, 10, 64)
	if perr != nil {
		return 0, &ServerReplyError{Line: line}
	}
	return v, nil
}

// Version fetches the server version string.
func (c *Client) Version() (string, error) {
	line, err := c.roundTrip("version\r\n")
	if err != nil {
		return "", err
	}
	v, ok := strings.CutPrefix(line, "VERSION ")
	if !ok {
		return "", &ServerReplyError{Line: line}
	}
	return v, nil
}

// Stats fetches the STAT map.
func (c *Client) Stats() (map[string]string, error) {
	if _, err := c.w.WriteString("stats\r\n"); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if rest, ok := strings.CutPrefix(line, "STAT "); ok {
			if k, v, found := strings.Cut(rest, " "); found {
				out[k] = v
			}
		}
	}
}

// ---------------------------------------------------------------------------
// transactions

// pendingWrite is the local write-set entry backing read-your-writes.
type pendingWrite struct {
	value   []byte
	deleted bool
}

// Tx is the in-flight transaction handle passed to the Tx callback. Mutations
// queue on the server; Get overlays the local write-set so the callback reads
// its own pending writes. Incr/Decr/Touch results are not locally modeled —
// a Get after IncrBy returns the committed (pre-transaction) value.
type Tx struct {
	c      *Client
	writes map[string]pendingWrite
	err    error // first queueing error; poisons the transaction
}

// Tx begins a transaction, runs fn, and commits. A TX_CONFLICT re-runs fn
// from a fresh transaction up to MaxTxRetries times. fn returning an error
// aborts the transaction and returns that error unchanged.
func (c *Client) Tx(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		conflict, err := c.txOnce(fn)
		if err != nil {
			return err
		}
		if conflict == nil {
			return nil
		}
		if attempt >= c.maxTxRetries {
			return conflict
		}
		if c.retryBackoff > 0 {
			time.Sleep(c.retryBackoff)
		}
	}
}

// txOnce runs one attempt. It returns (conflict, nil) when the commit lost
// validation — retryable — and (nil, err) for everything terminal.
func (c *Client) txOnce(fn func(tx *Tx) error) (*ConflictError, error) {
	line, err := c.roundTrip("txbegin\r\n")
	if err != nil {
		return nil, err
	}
	if line != "STARTED" {
		if strings.HasPrefix(line, "SERVER_ERROR ") {
			return nil, ErrNotSupported
		}
		return nil, &ServerReplyError{Line: line}
	}
	tx := &Tx{c: c, writes: make(map[string]pendingWrite)}
	if ferr := fn(tx); ferr != nil || tx.err != nil {
		if _, aerr := c.roundTrip("txabort\r\n"); aerr != nil {
			return nil, aerr
		}
		if ferr == nil {
			ferr = tx.err
		}
		return nil, ferr
	}
	line, err = c.roundTrip("txcommit\r\n")
	if err != nil {
		return nil, err
	}
	if key, ok := strings.CutPrefix(line, "TX_CONFLICT "); ok {
		return &ConflictError{Key: key}, nil
	}
	nStr, ok := strings.CutPrefix(line, "TXRESULT ")
	if !ok {
		return nil, &ServerReplyError{Line: line}
	}
	n, perr := strconv.Atoi(nStr)
	if perr != nil {
		return nil, &ServerReplyError{Line: line}
	}
	// Drain the n per-op result lines and END.
	for i := 0; i < n+1; i++ {
		if _, err := c.readLine(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// queue sends one queueable command and consumes its QUEUED reply. The first
// failure poisons the transaction handle; later calls are no-ops so the
// callback doesn't need per-call error plumbing.
func (tx *Tx) queue(cmd string) {
	if tx.err != nil {
		return
	}
	line, err := tx.c.roundTrip(cmd)
	if err != nil {
		tx.err = err
		return
	}
	if line != "QUEUED" {
		tx.err = &ServerReplyError{Line: line}
	}
}

// Set queues an unconditional store.
func (tx *Tx) Set(key string, value []byte) {
	tx.queue(fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(value), value))
	if tx.err == nil {
		tx.writes[key] = pendingWrite{value: append([]byte(nil), value...)}
	}
}

// Delete queues a delete.
func (tx *Tx) Delete(key string) {
	tx.queue("delete " + key + "\r\n")
	if tx.err == nil {
		tx.writes[key] = pendingWrite{deleted: true}
	}
}

// Touch queues an expiry update.
func (tx *Tx) Touch(key string, exptime uint64) {
	tx.queue(fmt.Sprintf("touch %s %d\r\n", key, exptime))
}

// IncrBy / DecrBy queue numeric adjustments, applied to whatever value the
// key holds at commit.
func (tx *Tx) IncrBy(key string, delta uint64) {
	tx.queue(fmt.Sprintf("incr %s %d\r\n", key, delta))
}
func (tx *Tx) DecrBy(key string, delta uint64) {
	tx.queue(fmt.Sprintf("decr %s %d\r\n", key, delta))
}

// Get reads a key. A key this transaction has Set or Deleted is served from
// the local write-set; otherwise the read goes to the server, joins the
// transaction's read set, and is revalidated at commit — so a committed
// transaction read a consistent snapshot.
func (tx *Tx) Get(key string) (value []byte, ok bool, err error) {
	if tx.err != nil {
		return nil, false, tx.err
	}
	if pw, hit := tx.writes[key]; hit {
		if pw.deleted {
			return nil, false, nil
		}
		return append([]byte(nil), pw.value...), true, nil
	}
	items, err := tx.c.gets("gets", []string{key})
	if err != nil {
		tx.err = err
		return nil, false, err
	}
	if len(items) == 0 {
		return nil, false, nil
	}
	return items[0].Value, true, nil
}

// Err reports the transaction's first queueing error (also returned by Tx).
func (tx *Tx) Err() error { return tx.err }
