package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
)

// Error-path coverage: each malformed input must produce the
// memcached-correct error response AND leave the connection usable for the
// command that follows it on the same stream.

func TestBadBinaryMagicKeepsConnectionUsable(t *testing.T) {
	// A frame with a high-but-wrong magic byte: header layout is trusted for
	// framing, the frame is drained and refused, and the next (valid) frame
	// is served normally.
	bad := make([]byte, 24+3)
	bad[0] = 0x90
	bad[1] = 0x42
	binary.BigEndian.PutUint32(bad[8:12], 3) // 3-byte body follows
	copy(bad[24:], "xyz")

	extras := make([]byte, 8)
	res := runBinary(t,
		bad,
		binFrame(OpSet, extras, []byte("k"), []byte("v"), 0),
		binFrame(OpGet, nil, []byte("k"), nil, 0),
	)
	if len(res) != 3 {
		t.Fatalf("got %d responses, want 3", len(res))
	}
	if res[0].status != StatusUnknownCommand {
		t.Errorf("bad magic status = %#x, want %#x", res[0].status, StatusUnknownCommand)
	}
	if res[1].status != StatusOK || res[2].status != StatusOK {
		t.Errorf("connection unusable after bad magic: set=%#x get=%#x", res[1].status, res[2].status)
	}
	if string(res[2].value) != "v" {
		t.Errorf("get after bad magic returned %q", res[2].value)
	}
}

func TestBadBinaryMagicInsaneLengthKillsConnection(t *testing.T) {
	// Wrong magic with an implausible body length: framing is lost, the
	// connection must die with a protocol-classified error.
	bad := make([]byte, 24)
	bad[0] = 0xff
	binary.BigEndian.PutUint32(bad[8:12], 0xffffffff)

	c := engine.New(engine.Config{Branch: engine.Semaphore, HashPower: 8})
	c.Start()
	defer c.Stop()
	d := &duplex{in: bytes.NewBuffer(bad), out: &bytes.Buffer{}}
	err := NewConn(c.NewWorker(), d).Serve()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("Serve = %v, want ErrProtocol", err)
	}
}

func TestOversizedKeyText(t *testing.T) {
	longKey := strings.Repeat("k", MaxKeyLen+1)
	out := runText(t, "set "+longKey+" 0 0 3\r\nabc\r\nversion\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR bad command line format\r\n") {
		t.Errorf("oversized key reply = %q", out)
	}
	if !strings.Contains(out, "VERSION") {
		t.Errorf("connection unusable after oversized key: %q", out)
	}
	// get with an oversized key has no data block to resync past.
	out = runText(t, "get "+longKey+"\r\nversion\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR key too long\r\n") || !strings.Contains(out, "VERSION") {
		t.Errorf("oversized get key: %q", out)
	}
}

func TestOversizedKeyBinary(t *testing.T) {
	longKey := bytes.Repeat([]byte("k"), MaxKeyLen+1)
	extras := make([]byte, 8)
	res := runBinary(t,
		binFrame(OpSet, extras, longKey, []byte("v"), 0),
		binFrame(OpVersion, nil, nil, nil, 0),
	)
	if len(res) != 2 {
		t.Fatalf("got %d responses, want 2", len(res))
	}
	if res[0].status != StatusInvalidArgs {
		t.Errorf("oversized key status = %#x, want %#x", res[0].status, StatusInvalidArgs)
	}
	if res[1].status != StatusOK {
		t.Errorf("connection unusable after oversized key: %#x", res[1].status)
	}
}

func TestNonNumericIncr(t *testing.T) {
	// Non-numeric stored value.
	out := runText(t, "set n 0 0 3\r\nabc\r\nincr n 1\r\nversion\r\n")
	if !strings.Contains(out, "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n") {
		t.Errorf("incr on non-numeric value: %q", out)
	}
	if !strings.Contains(out, "VERSION") {
		t.Errorf("connection unusable after bad incr: %q", out)
	}
	// Non-numeric delta argument.
	out = runText(t, "set n 0 0 1\r\n5\r\nincr n abc\r\nincr n 2\r\n")
	if !strings.Contains(out, "CLIENT_ERROR invalid numeric delta argument\r\n") {
		t.Errorf("incr with non-numeric delta: %q", out)
	}
	if !strings.HasSuffix(out, "7\r\n") {
		t.Errorf("connection unusable after bad delta: %q", out)
	}
}

func TestTruncatedSetDataBlock(t *testing.T) {
	// Data block shorter than declared: the declared bytes swallow part of
	// the next line, the terminator check fails, and reading to the line
	// boundary resyncs the stream so the following command still runs.
	out := runText(t, "set k 0 0 5\r\nab\r\njunk\r\nversion\r\n")
	if !strings.HasPrefix(out, "CLIENT_ERROR bad data chunk\r\n") {
		t.Errorf("truncated data block reply = %q", out)
	}
	if !strings.Contains(out, "VERSION") {
		t.Errorf("connection unusable after truncated data block: %q", out)
	}

	// Truncated by disconnect mid-block: connection-fatal, classified as a
	// protocol error (the frame can never complete).
	c := engine.New(engine.Config{Branch: engine.Semaphore, HashPower: 8})
	c.Start()
	defer c.Stop()
	d := &duplex{in: bytes.NewBufferString("set k 0 0 5\r\nab"), out: &bytes.Buffer{}}
	err := NewConn(c.NewWorker(), d).Serve()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("Serve = %v, want ErrProtocol", err)
	}
}
