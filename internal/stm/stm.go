// Package stm implements a software transactional memory runtime modeled on
// the architecture of GCC's libitm, the runtime the paper "Transactionalizing
// Legacy Code" (ASPLOS 2014) studies and modifies.
//
// Because Go has no compiler instrumentation, shared locations are explicit
// transactional cells (TWord, TAny, TBytes) and the read/write barriers that
// GCC would emit are method calls on a transaction descriptor (Tx). The
// runtime-level protocol is otherwise structurally faithful to libitm:
//
//   - an ownership-record (orec) table hashed by location id, with a global
//     version clock (the GCC default "ml_wt" algorithm: eager, write-through,
//     undo log, commit-time validation);
//   - an alternative "lazy" algorithm that shares the orec table but buffers
//     updates and acquires locks at commit (footnote 2 of the paper);
//   - the NOrec algorithm (global sequence lock, value-based validation);
//   - a global readers/writer "serial" lock acquired in read mode by every
//     transaction and in write mode by serialized transactions (the bottleneck
//     Figure 10 removes);
//   - serial-irrevocable execution, entered either at begin time ("start
//     serial"), on encountering an unsafe operation ("in-flight switch"), or
//     after 100 consecutive aborts ("abort serial"), with a statistics
//     breakdown matching Tables 1-4 of the paper;
//   - pluggable contention management: the GCC default (serialize after N
//     aborts), no CM at all, randomized exponential backoff, and the
//     "hourglass" manager (gate out new transactions after 128 consecutive
//     aborts until the starving transaction commits).
//
// One Runtime is one TM domain; all transactional locations accessed by its
// transactions must have been created while it is the ambient runtime (ids are
// global, so locations may in fact be shared across runtimes; the orec tables
// are per-runtime). Each worker goroutine creates a Thread descriptor and runs
// transactions through it.
package stm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/txobs"
)

// Algorithm selects the concurrency-control protocol used by speculative
// (non-serial) transactions.
type Algorithm int

const (
	// MLWT is the GCC default: multiple locks, write-through (eager, in-place
	// update with an undo log), encounter-time locking, commit-time read-set
	// validation against orec versions.
	MLWT Algorithm = iota
	// LazyAlg shares the orec table with MLWT but buffers updates in a redo
	// log and acquires orecs at commit time.
	LazyAlg
	// NOrec uses a single global sequence lock and value-based validation;
	// writes are buffered.
	NOrec
	// SerialAlg runs every transaction serially and irrevocably. It exists as
	// a correctness baseline and for tests.
	SerialAlg
	// HTM emulates best-effort hardware transactions with a capacity limit,
	// serial-lock subscription, and lock fallback after HTMRetries aborts
	// (the GCC RTM path §5 discusses). See htm.go.
	HTM
	// TML is the Transactional Mutex Lock: a single global sequence lock,
	// invisible readers, fully serialized writers. See tml.go.
	TML
)

func (a Algorithm) String() string {
	switch a {
	case MLWT:
		return "mlwt"
	case LazyAlg:
		return "lazy"
	case NOrec:
		return "norec"
	case SerialAlg:
		return "serial"
	case HTM:
		return "htm"
	case TML:
		return "tml"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm converts a user-facing name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "mlwt", "gcc", "eager":
		return MLWT, nil
	case "lazy":
		return LazyAlg, nil
	case "norec":
		return NOrec, nil
	case "serial":
		return SerialAlg, nil
	case "htm", "rtm":
		return HTM, nil
	case "tml":
		return TML, nil
	}
	return 0, fmt.Errorf("stm: unknown algorithm %q", s)
}

// ContentionManager selects the policy applied when transactions abort.
type ContentionManager int

const (
	// CMSerialize is the GCC policy: retry immediately, and after
	// Config.SerializeAfter consecutive aborts become serial and irrevocable
	// for the sake of progress (counted as "Abort Serial" in the tables).
	CMSerialize ContentionManager = iota
	// CMNone retries immediately and never serializes.
	CMNone
	// CMBackoff applies randomized exponential backoff between retries.
	CMBackoff
	// CMHourglass lets a transaction that has aborted Config.HourglassAfter
	// consecutive times close a global gate: no new transactions may begin
	// until it commits. It never serializes.
	CMHourglass
)

func (c ContentionManager) String() string {
	switch c {
	case CMSerialize:
		return "serialize"
	case CMNone:
		return "none"
	case CMBackoff:
		return "backoff"
	case CMHourglass:
		return "hourglass"
	}
	return fmt.Sprintf("ContentionManager(%d)", int(c))
}

// ParseCM converts a user-facing name into a ContentionManager.
func ParseCM(s string) (ContentionManager, error) {
	switch s {
	case "serialize", "gcc":
		return CMSerialize, nil
	case "none", "nocm":
		return CMNone, nil
	case "backoff":
		return CMBackoff, nil
	case "hourglass":
		return CMHourglass, nil
	}
	return 0, fmt.Errorf("stm: unknown contention manager %q", s)
}

// Config parameterizes a Runtime.
type Config struct {
	Algorithm Algorithm
	CM        ContentionManager

	// SerializeAfter is the consecutive-abort threshold at which CMSerialize
	// falls back to serial-irrevocable mode. GCC uses 100.
	SerializeAfter int
	// HourglassAfter is the consecutive-abort threshold at which CMHourglass
	// closes the gate. The paper configures 128.
	HourglassAfter int
	// NoSerialLock removes the global readers/writer lock (the Figure 10
	// modification). Speculative transactions then acquire nothing at begin;
	// transactions that must run serially fall back to a plain mutex that
	// excludes only other serial transactions (valid only for workloads with
	// no relaxed transactions, which is the regime Figure 10 studies).
	NoSerialLock bool
	// NoQuiesce disables the privatization-safety quiescence writers perform
	// at commit. ONLY sound for programs that never access transactional data
	// nontransactionally after observing a transactional flag (no
	// privatization idioms) — the Draft C++ TM Specification requires the
	// safety, so this exists purely to measure its cost (see the ablation
	// benchmarks).
	NoQuiesce bool
	// OrecBits sizes the orec table at 1<<OrecBits entries (default 16).
	OrecBits int
	// HTMCapacity bounds the location footprint of an emulated hardware
	// transaction (default 64); exceeding it is a capacity abort.
	HTMCapacity int
	// HTMRetries is how many aborts an emulated hardware transaction takes
	// before falling back to the serial lock (default 3).
	HTMRetries int

	// Fault, when non-nil, injects deterministic faults at the STM's named
	// injection points (forced aborts and delays in the barriers, spurious
	// validation failures at commit, serial-lock acquisition delays). Serial
	// transactions are never aborted — irrevocability is preserved.
	Fault *fault.Injector

	// Seed seeds each thread's jitter state for the exponential abort
	// backoff, making delay sequences reproducible across runs. Zero adopts
	// the fault injector's seed when one is wired, else a fixed default.
	Seed uint64

	// WatchdogInterval enables the starvation watchdog: a goroutine (started
	// by StartWatchdog) that scans threads every interval and escalates any
	// transaction past WatchdogAborts consecutive aborts or WatchdogAge of
	// retrying through the contention-manager ladder: first randomized
	// backoff, then serial-irrevocable execution. Zero disables it.
	WatchdogInterval time.Duration
	// WatchdogAborts is the consecutive-abort threshold (default 64).
	WatchdogAborts uint64
	// WatchdogAge is the source-transaction age threshold (default 50ms).
	WatchdogAge time.Duration
}

const (
	defaultSerializeAfter = 100
	defaultHourglassAfter = 128
	defaultOrecBits       = 16

	defaultWatchdogAborts = 64
	defaultWatchdogAge    = 50 * time.Millisecond
)

// DefaultOrecBits is the orec-table size a zero Config gets (1<<16 entries),
// exported so a sharded embedder can divide the table across runtimes while
// keeping the total footprint — and the orec-per-key density — constant.
const DefaultOrecBits = defaultOrecBits

func (c Config) withDefaults() Config {
	if c.SerializeAfter <= 0 {
		c.SerializeAfter = defaultSerializeAfter
	}
	if c.HourglassAfter <= 0 {
		c.HourglassAfter = defaultHourglassAfter
	}
	if c.OrecBits <= 0 {
		c.OrecBits = defaultOrecBits
	}
	if c.HTMCapacity <= 0 {
		c.HTMCapacity = defaultHTMCapacity
	}
	if c.HTMRetries <= 0 {
		c.HTMRetries = defaultHTMRetries
	}
	if c.Algorithm == HTM {
		// Hardware transactions are defined by their relationship to the
		// fallback lock; removing it is not meaningful (§5).
		c.NoSerialLock = false
	}
	if c.WatchdogAborts == 0 {
		c.WatchdogAborts = defaultWatchdogAborts
	}
	if c.WatchdogAge <= 0 {
		c.WatchdogAge = defaultWatchdogAge
	}
	return c
}

// Runtime is a TM domain: an orec table, a version clock, the global serial
// lock, a contention-management gate, and statistics.
type Runtime struct {
	cfg Config

	// dyn is the runtime-swappable slice of the configuration (algorithm,
	// contention manager, retry budget, backoff curve); see dyn.go. Attempts
	// pin the pointer at begin; Reconfigure swaps it under the serial lock.
	dyn  atomic.Pointer[DynConfig]
	seed uint64 // backoff-jitter seed (Config.Seed, defaulted)

	clock  atomic.Uint64 // global version clock (MLWT, Lazy)
	nseq   atomic.Uint64 // NOrec global sequence lock (odd = writer committing)
	orecs  []orec
	omask  uint64
	serial serialLock
	gate   atomic.Uint64 // hourglass gate: 0 = open, else owner tx lock word

	// txSeq orders transaction begins against commit points for the
	// privatization-safety quiescence protocol (see Tx.endSpeculation).
	txSeq  atomic.Uint64
	thSnap atomic.Pointer[[]*Thread] // lock-free snapshot for quiescence scans

	stats Stats

	prof atomic.Pointer[SerializationProfile]

	// obs is the active observability sink (nil = tracing disabled; the hot
	// paths pay one atomic load to find out). obsAll is the persistent
	// observer, kept across DisableTracing. See obs.go.
	obs    atomic.Pointer[txobs.Observer]
	obsAll atomic.Pointer[txobs.Observer]

	// obsShard and obsBase identify this runtime inside a shared observer
	// (sharded engines): the TM-domain index stamped on every event, and the
	// offset of this runtime's orec range in the observer's heat map. Both
	// zero when the runtime owns its observer alone. See AttachTracing.
	obsShard atomic.Int32
	obsBase  atomic.Int32

	// owners is the orec-owner attribution table for request tracing: one
	// interned site-label pointer per orec slot, stored by traced writers at
	// lock acquisition and read by traced victims at abort. Lazily allocated
	// by EnableOwnerTracking; nil (one pointer load) when tracing never ran.
	// serialOwner is the site of the last traced serial-lock writer — the
	// "who" behind serial-subscription aborts. Both are last-writer-wins
	// approximations; see obs.go.
	owners      atomic.Pointer[[]atomic.Pointer[string]]
	serialOwner atomic.Pointer[string]

	watchStop chan struct{}
	watchWG   sync.WaitGroup

	mu      sync.Mutex
	threads []*Thread
}

// New creates a Runtime from cfg, applying defaults for zero fields.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	rt := &Runtime{
		cfg:   cfg,
		orecs: make([]orec, 1<<cfg.OrecBits),
		omask: uint64(1<<cfg.OrecBits) - 1,
	}
	rt.serial.disabled = cfg.NoSerialLock
	rt.clock.Store(1)
	rt.seed = cfg.Seed
	if rt.seed == 0 && cfg.Fault != nil {
		rt.seed = cfg.Fault.Seed()
	}
	if rt.seed == 0 {
		rt.seed = 0x9E3779B97F4A7C15
	}
	d := DynConfig{
		Algorithm:      cfg.Algorithm,
		CM:             cfg.CM,
		SerializeAfter: cfg.SerializeAfter,
	}.withDefaults()
	rt.dyn.Store(&d)
	return rt
}

// Config returns the configuration the runtime was created with (after
// defaulting).
func (rt *Runtime) Config() Config { return rt.cfg }

// NewThread registers and returns a per-goroutine transaction descriptor.
// A Thread must not be used concurrently from multiple goroutines.
func (rt *Runtime) NewThread() *Thread {
	th := &Thread{rt: rt}
	rt.mu.Lock()
	th.rngState = mixSeed(rt.seed, uint64(len(rt.threads)))
	rt.threads = append(rt.threads, th)
	snap := append([]*Thread(nil), rt.threads...)
	rt.thSnap.Store(&snap)
	rt.mu.Unlock()
	return th
}

// quiesce waits until no thread is still inside a speculative transaction
// that began at or before commit point cs. This is the privatization-safety
// guarantee of the Draft C++ TM Specification, implemented as in libitm:
// after a writer commits (e.g. a mini-transaction acquiring an item lock,
// Figure 1a), doomed concurrent transactions may still hold eager in-place
// writes to the now-private data; the committer must wait for them to finish
// (validate-fail and roll back) before its thread touches that data
// nontransactionally.
func (rt *Runtime) quiesce(cs uint64) {
	snapP := rt.thSnap.Load()
	if snapP == nil {
		return
	}
	for _, th := range *snapP {
		spins := 0
		for {
			a := th.activeSince.Load()
			if a == 0 || a > cs {
				break
			}
			spins++
			if spins > 32 {
				runtime.Gosched()
			}
		}
	}
}

// orecFor maps a location id to its ownership record.
func (rt *Runtime) orecFor(id uint64) *orec {
	return &rt.orecs[(id*0x9E3779B97F4A7C15)>>32&rt.omask]
}
