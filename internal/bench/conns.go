package bench

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/server"
)

// The -conns benchmark: what does an idle connection cost, per transport?
//
// The goroutine-per-connection transport pays a goroutine stack plus a bufio
// reader/writer pair for every connection, busy or not. The event-loop
// transport parks idle connections in the kernel poller and releases their
// buffers to a pool, so an idle connection should cost a registration entry
// and little else. This benchmark holds a ladder of idle connection counts
// against each transport, measures the server process's RSS growth and
// goroutine count at each rung, then runs an identical active request mix at
// a modest connection count to show the event loop does not tax the busy
// path for what it saves on the idle one.
//
// The held connections live in a forked agent process (this binary re-exec'd
// with -conns-agent): RLIMIT_NOFILE counts both halves of a loopback
// connection against whoever owns them, so holding N connections in-process
// would cost 2N descriptors and halve the reachable ladder. With the agent,
// the server side and the client side each spend their own limit. Rungs that
// still do not fit under the limit (with headroom for the listener, poller,
// and active-mix sockets) are recorded as skipped with the reason rather
// than silently dropped.

// ConnPoint is one idle-connection rung for one transport.
type ConnPoint struct {
	RequestedConns int    `json:"requested_conns"`
	HeldConns      int    `json:"held_conns"`
	Skipped        bool   `json:"skipped,omitempty"`
	SkipReason     string `json:"skip_reason,omitempty"`

	RSSBaselineKB int64 `json:"rss_baseline_kb"`
	RSSHeldKB     int64 `json:"rss_held_kb"`
	RSSDeltaKB    int64 `json:"rss_delta_kb"`
	// RSSPerConnB is the marginal resident cost of one idle connection.
	RSSPerConnB float64 `json:"rss_per_conn_bytes"`

	GoroutinesBaseline int `json:"goroutines_baseline"`
	GoroutinesHeld     int `json:"goroutines_held"`

	BuffersInUse int64 `json:"conn_buffers_inuse"`
}

// ConnActiveMix is the busy-path check: a fixed connection count running a
// sequential request-response mix through real sockets.
type ConnActiveMix struct {
	Conns     int     `json:"conns"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// ConnTransportResult is one transport's full ladder plus its active mix.
type ConnTransportResult struct {
	Transport string        `json:"transport"`
	Points    []ConnPoint   `json:"points"`
	Active    ConnActiveMix `json:"active_mix"`
}

// ConnScaleResult is the whole -conns run.
type ConnScaleResult struct {
	Branch       string `json:"branch"`
	Shards       int    `json:"shards"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	CPUs         int    `json:"cpus"`
	RlimitNofile uint64 `json:"rlimit_nofile"`

	Transports []ConnTransportResult `json:"transports"`

	// RSSRatioAtConns is the largest rung both transports actually held;
	// RSSRatio is event-loop RSS delta over goroutine RSS delta there. The
	// acceptance bar is <= 0.25 at 10k.
	RSSRatioAtConns int     `json:"rss_ratio_at_conns"`
	RSSRatio        float64 `json:"rss_ratio_event_vs_goroutine"`
	// ActiveTputRatio is event-loop active-mix throughput over goroutine
	// throughput: the busy path must stay within a few percent of 1.
	ActiveTputRatio float64 `json:"active_tput_ratio_event_vs_goroutine"`
}

// agentHeadroom is the descriptor budget reserved for everything that is not
// a held connection: listener, epoll fd, wake pipe, active-mix sockets,
// stdio, and slack for the Go runtime.
const agentHeadroom = 512

// RunConnScale runs the connection ladder for both transports. exe is the
// binary to re-exec as the holding agent (normally os.Executable()).
func RunConnScale(b engine.Branch, shards, workers int, points []int, activeConns, activeOpsPerConn int, exe string) (ConnScaleResult, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return ConnScaleResult{}, fmt.Errorf("getrlimit: %w", err)
	}
	res := ConnScaleResult{
		Branch:       b.String(),
		Shards:       shards,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CPUs:         runtime.NumCPU(),
		RlimitNofile: uint64(lim.Cur),
	}
	transports := []bool{true, false}
	res.Transports = make([]ConnTransportResult, len(transports))
	for i, eventLoop := range transports {
		res.Transports[i].Transport = "goroutine-per-conn"
		if eventLoop {
			res.Transports[i].Transport = "event-loop"
		}
	}
	// Active mixes run before the idle ladders: the big rungs churn tens of
	// thousands of loopback sockets into TIME_WAIT, which would tax whichever
	// transport's busy-path measurement ran after them.
	for i, eventLoop := range transports {
		tr := &res.Transports[i]
		err := withConnServer(b, shards, workers, eventLoop, func(addr string) error {
			tr.Active = runConnActiveMix(addr, activeConns, activeOpsPerConn)
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("%s active mix: %w", tr.Transport, err)
		}
	}
	for i, eventLoop := range transports {
		tr := &res.Transports[i]
		err := withConnServer(b, shards, workers, eventLoop, func(addr string) error {
			for _, n := range points {
				p, err := runConnPoint(addr, n, exe, lim.Cur)
				if err != nil {
					return fmt.Errorf("at %d conns: %w", n, err)
				}
				tr.Points = append(tr.Points, p)
			}
			return nil
		})
		if err != nil {
			return res, fmt.Errorf("%s ladder: %w", tr.Transport, err)
		}
	}

	// Ratio at the largest rung both transports held.
	ev, gp := res.Transports[0], res.Transports[1]
	for i := len(ev.Points) - 1; i >= 0; i-- {
		e := ev.Points[i]
		if e.Skipped || i >= len(gp.Points) || gp.Points[i].Skipped {
			continue
		}
		g := gp.Points[i]
		res.RSSRatioAtConns = e.HeldConns
		if g.RSSDeltaKB > 0 {
			res.RSSRatio = float64(e.RSSDeltaKB) / float64(g.RSSDeltaKB)
		}
		break
	}
	if gp.Active.OpsPerSec > 0 {
		res.ActiveTputRatio = ev.Active.OpsPerSec / gp.Active.OpsPerSec
	}
	return res, nil
}

// withConnServer builds a fresh cache and server for one transport, seeds the
// active-mix keyspace, runs fn against the listen address, and tears it all
// down again.
func withConnServer(b engine.Branch, shards, workers int, eventLoop bool, fn func(addr string) error) error {
	c := engine.New(engine.Config{Branch: b, Shards: shards, MemLimit: 64 << 20, HashPower: 12})
	c.Start()
	defer c.Stop()
	srv, err := server.ListenConfig(c, server.Config{Addr: "127.0.0.1:0", EventLoop: eventLoop, Workers: workers})
	if err != nil {
		return err
	}
	defer srv.Close()

	// A small keyspace for the active mix.
	w := c.NewWorker()
	val := make([]byte, 100)
	for i := 0; i < 1024; i++ {
		w.Set(fmt.Appendf(nil, "connbench-%04d", i), 0, 0, val)
	}
	return fn(srv.Addr())
}

// settleRSS coaxes the runtime into returning what it can to the OS so RSS
// reflects live memory, then samples it.
func settleRSS() (int64, error) {
	runtime.GC()
	debug.FreeOSMemory()
	time.Sleep(50 * time.Millisecond)
	return readRSSKB()
}

func readRSSKB() (int64, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmRSS:") {
			f := strings.Fields(line)
			if len(f) >= 2 {
				return strconv.ParseInt(f[1], 10, 64)
			}
		}
	}
	return 0, fmt.Errorf("no VmRSS in /proc/self/status")
}

func runConnPoint(addr string, n int, exe string, rlimit uint64) (ConnPoint, error) {
	p := ConnPoint{RequestedConns: n}
	// The server spends one descriptor per held connection; the agent spends
	// one per dialed connection. Both processes live under the same limit, so
	// the rung must fit under it with headroom on each side.
	if uint64(n)+agentHeadroom > rlimit {
		p.Skipped = true
		p.SkipReason = fmt.Sprintf("needs %d descriptors per process; RLIMIT_NOFILE is %d (hard limit, not raisable in this environment)", n+agentHeadroom, rlimit)
		return p, nil
	}

	base, err := settleRSS()
	if err != nil {
		return p, err
	}
	p.RSSBaselineKB = base
	p.GoroutinesBaseline = runtime.NumGoroutine()

	cmd := exec.Command(exe, "-conns-agent", "-conns-addr", addr, "-conns-n", strconv.Itoa(n))
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return p, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return p, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return p, fmt.Errorf("starting agent: %w", err)
	}
	defer func() {
		stdin.Close()
		cmd.Wait()
	}()

	r := bufio.NewReader(stdout)
	line, err := r.ReadString('\n')
	if err != nil {
		return p, fmt.Errorf("agent died before holding: %w", err)
	}
	var held int
	if _, err := fmt.Sscanf(line, "HELD %d", &held); err != nil {
		return p, fmt.Errorf("agent said %q", strings.TrimSpace(line))
	}
	p.HeldConns = held

	rss, err := settleRSS()
	if err != nil {
		return p, err
	}
	p.RSSHeldKB = rss
	p.RSSDeltaKB = rss - base
	if held > 0 {
		p.RSSPerConnB = float64(p.RSSDeltaKB) * 1024 / float64(held)
	}
	p.GoroutinesHeld = runtime.NumGoroutine()
	p.BuffersInUse, _ = protocol.BufferGauges()

	fmt.Fprintf(stdin, "CLOSE\n")
	if _, err := r.ReadString('\n'); err != nil && held > 0 {
		// The agent exits right after acking; EOF here is fine.
		_ = err
	}
	return p, nil
}

// RunConnAgent is the forked half of the benchmark: dial and hold n idle
// connections against addr, complete one command on each (so the server
// counts them as served, not half-open), report, then hold until told to
// close. Runs in its own process so its descriptors do not count against the
// server's limit.
func RunConnAgent(addr string, n int) error {
	conns := make([]net.Conn, 0, n)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, 128) // dial concurrency: outrun the accept loop without SYN-flooding it
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var c net.Conn
			var err error
			for attempt := 0; attempt < 50; attempt++ {
				c, err = net.Dial("tcp", addr)
				if err == nil {
					break
				}
				time.Sleep(time.Duration(10+attempt*10) * time.Millisecond)
			}
			if err == nil {
				_, err = c.Write([]byte("version\r\n"))
			}
			if err == nil {
				_, err = bufio.NewReaderSize(c, 64).ReadString('\n')
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				if c != nil {
					c.Close()
				}
				return
			}
			conns = append(conns, c)
		}()
	}
	wg.Wait()
	if firstErr != nil && len(conns) < n {
		return fmt.Errorf("held %d/%d: %w", len(conns), n, firstErr)
	}

	fmt.Printf("HELD %d\n", len(conns))
	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil {
		return err // parent vanished; the deferred close still runs
	}
	if strings.TrimSpace(line) != "CLOSE" {
		return fmt.Errorf("unexpected command %q", strings.TrimSpace(line))
	}
	for _, c := range conns {
		c.Close()
	}
	conns = nil
	fmt.Println("CLOSED")
	return nil
}

// runConnActiveMix drives conns concurrent sequential clients, each doing
// opsPerConn request-response rounds of an 80/20 get/set mix, and reports
// merged latency quantiles and total throughput.
func runConnActiveMix(addr string, conns, opsPerConn int) ConnActiveMix {
	m := ConnActiveMix{Conns: conns}
	lats := make([][]time.Duration, conns)
	var wg sync.WaitGroup
	var failed sync.Map
	start := time.Now()
	for i := 0; i < conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				failed.Store(i, err)
				return
			}
			defer c.Close()
			r := bufio.NewReader(c)
			rng := rngState(uint64(i) + 0xBEEF)
			ls := make([]time.Duration, 0, opsPerConn)
			for op := 0; op < opsPerConn; op++ {
				key := int(nextRand(&rng) % 1024)
				t0 := time.Now()
				if nextRand(&rng)%10 < 8 {
					fmt.Fprintf(c, "get connbench-%04d\r\n", key)
					for {
						line, err := r.ReadString('\n')
						if err != nil {
							failed.Store(i, err)
							return
						}
						if strings.HasPrefix(line, "END") {
							break
						}
					}
				} else {
					fmt.Fprintf(c, "set connbench-%04d 0 0 100\r\n%s\r\n", key, strings.Repeat("x", 100))
					if _, err := r.ReadString('\n'); err != nil {
						failed.Store(i, err)
						return
					}
				}
				ls = append(ls, time.Since(t0))
			}
			lats[i] = ls
		}()
	}
	wg.Wait()
	m.Seconds = time.Since(start).Seconds()

	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	m.Ops = len(all)
	if m.Seconds > 0 {
		m.OpsPerSec = float64(m.Ops) / m.Seconds
	}
	if len(all) > 0 {
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		m.P50Ms = float64(all[len(all)*50/100]) / 1e6
		m.P99Ms = float64(all[len(all)*99/100]) / 1e6
	}
	return m
}
