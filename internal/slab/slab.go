// Package slab models memcached's slab allocator (slabs.c): memory is carved
// into 1 MiB pages assigned to size classes whose chunk sizes grow by a fixed
// factor; each class keeps a freelist of chunks. Item payloads live in Go
// memory (the garbage collector is our malloc), so what this package manages
// is the accounting and the concurrency structure — the slabs_lock domain the
// paper has to transactionalize, including the slab-rebalance signal whose
// pthread trylock became a transactional boolean (§3.1).
//
// All shared state is accessed through an access.Ctx supplied by the caller,
// which must hold the slabs lock (lock branches) or be inside a transaction
// covering the slabs domain (transactional branches).
package slab

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/fault"
	"repro/internal/stm"
	"repro/internal/txobs"
)

// lblSlabState covers allocator-global words (mem_allocated, the rebalance
// flag); each class's freelist counters get a per-class label so the heat map
// can single out the contended size class.
var lblSlabState = txobs.RegisterLabel("slab_state")

// PageSize is the memcached slab page size (1 MiB).
const PageSize = 1 << 20

// DefaultGrowthFactor matches memcached's -f default of 1.25.
const DefaultGrowthFactor = 1.25

// MinChunkSize is the smallest chunk size (memcached: 48 + item header).
const MinChunkSize = 96

// Class is one slab class.
type Class struct {
	// ChunkSize and PerPage are immutable after initialization.
	ChunkSize int
	PerPage   int

	// Free counts chunks in the freelist; Pages counts pages assigned.
	Free  *stm.TWord
	Pages *stm.TWord
}

// Allocator is the slab allocator.
type Allocator struct {
	classes []Class

	// MemAllocated tracks bytes handed to classes; MemLimit bounds it.
	MemAllocated *stm.TWord
	MemLimit     uint64

	// Rebalance is the transactional boolean that replaced the
	// slab_rebalance pthread lock: set while a page move is in flight so
	// concurrent maintenance backs off (the trylock pattern, §3.1).
	Rebalance *stm.TWord

	// fault, when set, can force Alloc to report a full cache, driving the
	// caller onto the eviction path on demand (SlabAllocFail).
	fault *fault.Injector
}

// New builds an allocator with chunk sizes growing from MinChunkSize by
// factor until maxChunk, with the given total memory limit in bytes.
func New(memLimit uint64, factor float64, maxChunk int) *Allocator {
	if factor <= 1 {
		factor = DefaultGrowthFactor
	}
	if maxChunk <= 0 || maxChunk > PageSize {
		maxChunk = PageSize / 2
	}
	a := &Allocator{
		MemAllocated: stm.NewTWord(0).Label(lblSlabState),
		MemLimit:     memLimit,
		Rebalance:    stm.NewTWord(0).Label(lblSlabState),
	}
	size := MinChunkSize
	for size < maxChunk {
		lbl := txobs.RegisterLabelf("slab_class_%d", len(a.classes))
		a.classes = append(a.classes, Class{
			ChunkSize: size,
			PerPage:   PageSize / size,
			Free:      stm.NewTWord(0).Label(lbl),
			Pages:     stm.NewTWord(0).Label(lbl),
		})
		next := int(float64(size) * factor)
		if next <= size {
			next = size + 8
		}
		size = (next + 7) &^ 7 // 8-byte alignment, as memcached does
	}
	// Final class at maxChunk.
	lbl := txobs.RegisterLabelf("slab_class_%d", len(a.classes))
	a.classes = append(a.classes, Class{
		ChunkSize: maxChunk,
		PerPage:   PageSize / maxChunk,
		Free:      stm.NewTWord(0).Label(lbl),
		Pages:     stm.NewTWord(0).Label(lbl),
	})
	return a
}

// SetFault installs a fault injector (nil disables injection). Call before
// the allocator is shared between goroutines.
func (a *Allocator) SetFault(in *fault.Injector) { a.fault = in }

// NumClasses returns the number of size classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// ChunkSize returns the chunk size of class cls.
func (a *Allocator) ChunkSize(cls int) int { return a.classes[cls].ChunkSize }

// ClassFor returns the smallest class whose chunks fit size bytes, or an
// error if the object is too large for any class (SERVER_ERROR object too
// large for cache).
func (a *Allocator) ClassFor(size int) (int, error) {
	for i := range a.classes {
		if a.classes[i].ChunkSize >= size {
			return i, nil
		}
	}
	return 0, fmt.Errorf("slab: object of %d bytes too large for cache", size)
}

// Alloc takes one chunk from class cls, growing the class by a page if
// memory remains. It reports false when the cache is full and the caller
// must evict (slabs_alloc returning NULL).
func (a *Allocator) Alloc(c access.Ctx, cls int) bool {
	if a.fault.Fire(fault.SlabAllocFail) {
		return false
	}
	cl := &a.classes[cls]
	if free := c.Word(cl.Free); free > 0 {
		c.SetWord(cl.Free, free-1)
		return true
	}
	if c.Word(a.MemAllocated)+PageSize > a.MemLimit {
		return false
	}
	c.AddWord(a.MemAllocated, PageSize)
	c.AddWord(cl.Pages, 1)
	c.SetWord(cl.Free, uint64(cl.PerPage-1)) // one chunk handed out now
	return true
}

// Release returns one chunk of class cls to its freelist (slabs_free).
func (a *Allocator) Release(c access.Ctx, cls int) {
	c.AddWord(a.classes[cls].Free, 1)
}

// FreeChunks returns the freelist length of class cls.
func (a *Allocator) FreeChunks(c access.Ctx, cls int) uint64 {
	return c.Word(a.classes[cls].Free)
}

// PagesOf returns the number of pages assigned to class cls.
func (a *Allocator) PagesOf(c access.Ctx, cls int) uint64 {
	return c.Word(a.classes[cls].Pages)
}

// Allocated returns the bytes currently assigned to classes.
func (a *Allocator) Allocated(c access.Ctx) uint64 { return c.Word(a.MemAllocated) }

// TryStartRebalance attempts to claim the rebalance flag — the transactional
// replacement for pthread_mutex_trylock(slab_rebalance_lock). The caller must
// be inside the slabs concurrency domain.
func (a *Allocator) TryStartRebalance(c access.Ctx) bool {
	if c.Word(a.Rebalance) != 0 {
		return false
	}
	c.SetWord(a.Rebalance, 1)
	return true
}

// EndRebalance clears the rebalance flag.
func (a *Allocator) EndRebalance(c access.Ctx) { c.SetWord(a.Rebalance, 0) }

// RebalanceInFlight reports whether a page move is in progress.
func (a *Allocator) RebalanceInFlight(c access.Ctx) bool { return c.Word(a.Rebalance) != 0 }

// PickMove selects a donor and recipient class for the rebalancer: the donor
// has the most fully-free pages, the recipient has no free chunks. It returns
// ok=false when no useful move exists.
func (a *Allocator) PickMove(c access.Ctx) (donor, recipient int, ok bool) {
	donor, recipient = -1, -1
	var bestFreePages uint64
	for i := range a.classes {
		cl := &a.classes[i]
		freePages := c.Word(cl.Free) / uint64(cl.PerPage)
		if c.Word(cl.Pages) > 1 && freePages > bestFreePages {
			bestFreePages = freePages
			donor = i
		}
		if recipient == -1 && c.Word(cl.Pages) > 0 && c.Word(cl.Free) == 0 {
			recipient = i
		}
	}
	if donor == -1 || recipient == -1 || donor == recipient || bestFreePages == 0 {
		return 0, 0, false
	}
	return donor, recipient, true
}

// MovePage transfers one fully-free page from donor to recipient
// (slab_rebalance_move). The caller must have claimed the rebalance flag.
func (a *Allocator) MovePage(c access.Ctx, donor, recipient int) bool {
	d, r := &a.classes[donor], &a.classes[recipient]
	free := c.Word(d.Free)
	if free < uint64(d.PerPage) || c.Word(d.Pages) == 0 {
		return false
	}
	c.SetWord(d.Free, free-uint64(d.PerPage))
	c.AddWord(d.Pages, ^uint64(0))
	c.AddWord(r.Pages, 1)
	c.AddWord(r.Free, uint64(r.PerPage))
	return true
}
