// Package access defines the data-access layer that lets one body of cache
// code run under every synchronization branch of the paper.
//
// The paper's transactionalization replaces lock-based critical sections with
// transactions stage by stage; at each stage, certain operations are unsafe
// inside transactions (volatile accesses, libc calls, I/O and sem_post) and
// force serialization. Here each critical section receives a Ctx:
//
//   - DirectCtx for lock-based branches (and for privatized item-lock
//     sections of the IP branches): plain and atomic accesses, optimized
//     library calls;
//   - TxCtx for transactional branches: instrumented accesses through the
//     transaction, with the per-stage Profile deciding whether volatiles,
//     libc calls and I/O are performed safely (transactional replacements,
//     tm_* reimplementations, onCommit handlers) or as unsafe operations that
//     serialize the transaction, exactly as the corresponding stage of the
//     paper behaves.
//
// Serialization events in the benchmarks are therefore emergent: they happen
// because this layer really calls stm.Tx.Unsafe at the program points where
// memcached performs the corresponding operation.
package access

import (
	"repro/internal/sem"
	"repro/internal/stm"
	"repro/internal/tmlib"
)

// Profile says which categories of formerly-unsafe operations have been made
// transaction-safe at the current stage of the transactionalization ladder.
type Profile struct {
	// TxVolatiles: volatile variables and lock incr reference counts have
	// been replaced with transactional accesses (stage "Max", §3.3).
	TxVolatiles bool
	// SafeLibc: standard-library calls go to the tm_* reimplementations /
	// marshaling wrappers (stage "Lib", §3.4).
	SafeLibc bool
	// OnCommitIO: fprintf/perror/sem_post are deferred to onCommit handlers
	// (stage "onCommit", §3.5).
	OnCommitIO bool
}

// Ctx is the access context a critical section runs under.
type Ctx interface {
	// InTx reports whether this context is transactional.
	InTx() bool
	// Tx returns the transaction, or nil for a direct context.
	Tx() *stm.Tx

	// Plain shared-data access (lock-protected in lock branches,
	// instrumented in transactional ones).
	Word(w *stm.TWord) uint64
	SetWord(w *stm.TWord, v uint64)
	AddWord(w *stm.TWord, delta uint64) uint64
	Any(a *stm.TAny) any
	SetAny(a *stm.TAny, v any)

	// Volatile / C++11-atomic access (current_time, reference counts,
	// maintenance flags). Unsafe inside transactions until stage Max.
	Volatile(w *stm.TWord) uint64
	SetVolatile(w *stm.TWord, v uint64)
	AddVolatile(w *stm.TWord, delta uint64) uint64

	// Standard-library calls. Unsafe inside transactions until stage Lib.
	Memcmp(s *stm.TBytes, off int, local []byte) int
	MemcpyOut(dst []byte, s *stm.TBytes, off, n int)
	MemcpyIn(dst *stm.TBytes, off int, src []byte)
	MemcpyTB(dst *stm.TBytes, doff int, src *stm.TBytes, soff, n int)
	Strtoull(s *stm.TBytes, off, n int) (uint64, int)
	FormatSuffix(dst *stm.TBytes, off int, flags uint32, n int) int
	FormatUint(dst *stm.TBytes, off int, v uint64) int

	// I/O-adjacent operations. Unsafe inside transactions until stage
	// onCommit.
	Fprintf(log func(string), msg string)
	SemPost(s *sem.Sem)
}

// ---------------------------------------------------------------------------
// DirectCtx

// DirectCtx is the nontransactional context: lock-based branches, and the
// privatized item-lock sections of the IP branches. NaiveLibc selects the
// slowed-down nontransactional clones that the single-source requirement of
// the specification forces on transactionalized builds (§3.4); lock-based
// baselines keep the optimized implementations.
type DirectCtx struct {
	NaiveLibc bool
}

// InTx reports false: this context is nontransactional.
func (DirectCtx) InTx() bool { return false }

// Tx returns nil.
func (DirectCtx) Tx() *stm.Tx { return nil }

// Word reads w directly.
func (DirectCtx) Word(w *stm.TWord) uint64 { return w.LoadDirect() }

// SetWord writes w directly.
func (DirectCtx) SetWord(w *stm.TWord, v uint64) { w.StoreDirect(v) }

// AddWord adds to w directly.
func (DirectCtx) AddWord(w *stm.TWord, delta uint64) uint64 { return w.AddDirect(delta) }

// Any reads a directly.
func (DirectCtx) Any(a *stm.TAny) any { return a.LoadDirect() }

// SetAny writes a directly.
func (DirectCtx) SetAny(a *stm.TAny, v any) { a.StoreDirect(v) }

// Volatile reads w with a plain atomic load.
func (DirectCtx) Volatile(w *stm.TWord) uint64 { return w.LoadDirect() }

// SetVolatile writes w with a plain atomic store.
func (DirectCtx) SetVolatile(w *stm.TWord, v uint64) { w.StoreDirect(v) }

// AddVolatile is the lock incr path.
func (DirectCtx) AddVolatile(w *stm.TWord, delta uint64) uint64 { return w.AddDirect(delta) }

// Memcmp compares shared bytes against a private buffer.
func (c DirectCtx) Memcmp(s *stm.TBytes, off int, local []byte) int {
	if c.NaiveLibc {
		return tmlib.MemcmpDirect(s, off, local)
	}
	// Optimized path: word-wise direct reads, no allocation.
	i := 0
	if off%8 == 0 {
		for ; i+8 <= len(local); i += 8 {
			w := s.WordDirect(off/8 + i/8)
			for b := 0; b < 8; b++ {
				cs := byte(w >> (8 * b))
				if cs != local[i+b] {
					if cs < local[i+b] {
						return -1
					}
					return 1
				}
			}
		}
	}
	for ; i < len(local); i++ {
		cs := byteAtDirect(s, off+i)
		if cs != local[i] {
			if cs < local[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// MemcpyOut copies shared bytes into a private buffer.
func (DirectCtx) MemcpyOut(dst []byte, s *stm.TBytes, off, n int) {
	i := 0
	if off%8 == 0 {
		for ; i+8 <= n; i += 8 {
			w := s.WordDirect(off/8 + i/8)
			for b := 0; b < 8; b++ {
				dst[i+b] = byte(w >> (8 * b))
			}
		}
	}
	for ; i < n; i++ {
		dst[i] = byteAtDirect(s, off+i)
	}
}

// MemcpyIn copies a private buffer into shared bytes.
func (DirectCtx) MemcpyIn(dst *stm.TBytes, off int, src []byte) {
	for i, b := range src {
		setByteAtDirect(dst, off+i, b)
	}
}

// MemcpyTB copies between shared buffers.
func (c DirectCtx) MemcpyTB(dst *stm.TBytes, doff int, src *stm.TBytes, soff, n int) {
	for i := 0; i < n; i++ {
		setByteAtDirect(dst, doff+i, byteAtDirect(src, soff+i))
	}
}

// Strtoull parses an unsigned integer out of shared bytes.
func (c DirectCtx) Strtoull(s *stm.TBytes, off, n int) (uint64, int) {
	buf := make([]byte, n)
	c.MemcpyOut(buf, s, off, n)
	return tmlib.PureStrtoull(buf)
}

// FormatSuffix writes the item header suffix " <flags> <len>\r\n".
func (c DirectCtx) FormatSuffix(dst *stm.TBytes, off int, flags uint32, n int) int {
	out := suffixBytes(flags, n)
	c.MemcpyIn(dst, off, out)
	return len(out)
}

// FormatUint writes a decimal integer.
func (c DirectCtx) FormatUint(dst *stm.TBytes, off int, v uint64) int {
	out := formatUint(v)
	c.MemcpyIn(dst, off, out)
	return len(out)
}

// Fprintf logs immediately.
func (DirectCtx) Fprintf(log func(string), msg string) {
	if log != nil {
		log(msg)
	}
}

// SemPost posts immediately.
func (DirectCtx) SemPost(s *sem.Sem) { s.Post() }

// ---------------------------------------------------------------------------
// TxCtx

// TxCtx is the transactional context for one critical section executed as a
// transaction under the given stage profile.
type TxCtx struct {
	T       *stm.Tx
	Profile Profile
}

// InTx reports true.
func (c TxCtx) InTx() bool { return true }

// Tx returns the transaction.
func (c TxCtx) Tx() *stm.Tx { return c.T }

// Word reads w through the transaction.
func (c TxCtx) Word(w *stm.TWord) uint64 { return w.Load(c.T) }

// SetWord writes w through the transaction.
func (c TxCtx) SetWord(w *stm.TWord, v uint64) { w.Store(c.T, v) }

// AddWord adds to w through the transaction.
func (c TxCtx) AddWord(w *stm.TWord, delta uint64) uint64 { return w.Add(c.T, delta) }

// Any reads a through the transaction.
func (c TxCtx) Any(a *stm.TAny) any { return a.Load(c.T) }

// SetAny writes a through the transaction.
func (c TxCtx) SetAny(a *stm.TAny, v any) { a.Store(c.T, v) }

// Volatile reads a volatile variable. Before stage Max this is unsafe: the
// transaction serializes first (in-flight switch), then reads directly.
func (c TxCtx) Volatile(w *stm.TWord) uint64 {
	if !c.Profile.TxVolatiles {
		c.T.Unsafe("volatile load")
		return w.LoadDirect()
	}
	return w.Load(c.T)
}

// SetVolatile writes a volatile variable (see Volatile).
func (c TxCtx) SetVolatile(w *stm.TWord, v uint64) {
	if !c.Profile.TxVolatiles {
		c.T.Unsafe("volatile store")
		w.StoreDirect(v)
		return
	}
	w.Store(c.T, v)
}

// AddVolatile performs a lock incr-style update (see Volatile).
func (c TxCtx) AddVolatile(w *stm.TWord, delta uint64) uint64 {
	if !c.Profile.TxVolatiles {
		c.T.Unsafe("lock incr")
		return w.AddDirect(delta)
	}
	return w.Add(c.T, delta)
}

// libcGate serializes the transaction if libc is not yet transaction-safe.
func (c TxCtx) libcGate(name string) {
	if !c.Profile.SafeLibc {
		c.T.Unsafe(name)
	}
}

// Memcmp is tm_memcmp after stage Lib, an unsafe libc call before.
func (c TxCtx) Memcmp(s *stm.TBytes, off int, local []byte) int {
	c.libcGate("memcmp")
	return tmlib.MemcmpLocal(c.T, s, off, local)
}

// MemcpyOut is tm_memcpy into private memory.
func (c TxCtx) MemcpyOut(dst []byte, s *stm.TBytes, off, n int) {
	c.libcGate("memcpy")
	tmlib.MemcpyToLocal(c.T, dst, s, off, n)
}

// MemcpyIn is tm_memcpy from private memory.
func (c TxCtx) MemcpyIn(dst *stm.TBytes, off int, src []byte) {
	c.libcGate("memcpy")
	tmlib.MemcpyFromLocal(c.T, dst, off, src)
}

// MemcpyTB is tm_memcpy between shared buffers.
func (c TxCtx) MemcpyTB(dst *stm.TBytes, doff int, src *stm.TBytes, soff, n int) {
	c.libcGate("memcpy")
	tmlib.Memcpy(c.T, dst, doff, src, soff, n)
}

// Strtoull is the marshaling-based safe strtoull after stage Lib.
func (c TxCtx) Strtoull(s *stm.TBytes, off, n int) (uint64, int) {
	c.libcGate("strtoull")
	return tmlib.PureStrtoull(tmlib.MarshalIn(c.T, s, off, n))
}

// FormatSuffix is the snprintf clone building " <flags> <len>\r\n".
func (c TxCtx) FormatSuffix(dst *stm.TBytes, off int, flags uint32, n int) int {
	c.libcGate("snprintf")
	out := suffixBytes(flags, n)
	tmlib.MarshalOut(c.T, dst, off, out)
	return len(out)
}

// FormatUint is the snprintf clone for "%llu".
func (c TxCtx) FormatUint(dst *stm.TBytes, off int, v uint64) int {
	c.libcGate("snprintf")
	out := formatUint(v)
	tmlib.MarshalOut(c.T, dst, off, out)
	return len(out)
}

// Fprintf either defers the write to an onCommit handler (stage onCommit) or
// serializes the transaction and writes immediately.
func (c TxCtx) Fprintf(log func(string), msg string) {
	if log == nil {
		return
	}
	if c.Profile.OnCommitIO {
		c.T.OnCommit(func() { log(msg) })
		return
	}
	c.T.Unsafe("fprintf")
	log(msg)
}

// SemPost either defers the post to an onCommit handler (safe: the only use
// of condition synchronization is waking maintenance threads, §3.5) or
// serializes the transaction and posts immediately.
func (c TxCtx) SemPost(s *sem.Sem) {
	if c.Profile.OnCommitIO {
		c.T.OnCommit(s.Post)
		return
	}
	c.T.Unsafe("sem_post")
	s.Post()
}

// ---------------------------------------------------------------------------
// helpers

func byteAtDirect(s *stm.TBytes, i int) byte { return byte(wordAtDirect(s, i/8) >> (8 * (i % 8))) }

func wordAtDirect(s *stm.TBytes, w int) uint64 {
	// TBytes exposes direct access per call; use ReadAllDirect-equivalent on
	// a single word via the public API.
	return s.WordDirect(w)
}

func setByteAtDirect(s *stm.TBytes, i int, b byte) {
	w := s.WordDirect(i / 8)
	sh := 8 * (i % 8)
	s.SetWordDirect(i/8, w&^(0xFF<<sh)|uint64(b)<<sh)
}

func suffixBytes(flags uint32, n int) []byte {
	out := []byte{' '}
	out = append(out, formatUint(uint64(flags))...)
	out = append(out, ' ')
	out = append(out, formatUint(uint64(n))...)
	return append(out, '\r', '\n')
}

func formatUint(v uint64) []byte {
	if v == 0 {
		return []byte{'0'}
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append([]byte(nil), buf[i:]...)
}

var (
	_ Ctx = DirectCtx{}
	_ Ctx = TxCtx{}
)
