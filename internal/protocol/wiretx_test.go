package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/engine"
)

// newTxCache builds a wire-transaction-capable cache (IT family).
func newTxCache(t *testing.T, shards int) *engine.Cache {
	t.Helper()
	c := engine.New(engine.Config{Branch: engine.ITMax, HashPower: 8, Shards: shards})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// txClient is a live connection to an in-process Conn, for tests that must
// interleave other workers' writes with an open transaction.
type txClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
	done chan struct{} // closed when Serve returns
}

func dialTx(t *testing.T, c *engine.Cache) *txClient {
	t.Helper()
	srv, cli := net.Pipe()
	pc := NewConn(c.NewWorker(), srv)
	done := make(chan struct{})
	go func() {
		pc.Serve()
		srv.Close()
		close(done)
	}()
	tc := &txClient{t: t, conn: cli, r: bufio.NewReader(cli), done: done}
	t.Cleanup(func() {
		cli.Close()
		<-done
	})
	return tc
}

func (tc *txClient) send(s string) {
	tc.t.Helper()
	if _, err := tc.conn.Write([]byte(s)); err != nil {
		tc.t.Fatalf("write %q: %v", s, err)
	}
}

func (tc *txClient) line() string {
	tc.t.Helper()
	l, err := tc.r.ReadString('\n')
	if err != nil {
		tc.t.Fatalf("read line: %v", err)
	}
	return strings.TrimRight(l, "\r\n")
}

func (tc *txClient) expect(want string) {
	tc.t.Helper()
	if got := tc.line(); got != want {
		tc.t.Fatalf("reply = %q, want %q", got, want)
	}
}

func TestTxCommitTextEndToEnd(t *testing.T) {
	c := newTxCache(t, 2)
	w := c.NewWorker()
	if w.Set([]byte("x"), 0, 0, []byte("5")) != engine.Stored {
		t.Fatal("seed failed")
	}

	tc := dialTx(t, c)
	tc.send("txbegin\r\n")
	tc.expect("STARTED")
	tc.send("gets x\r\n")
	val := tc.line() // VALUE x 0 1 <cas>
	if !strings.HasPrefix(val, "VALUE x 0 1 ") {
		t.Fatalf("gets reply = %q", val)
	}
	tc.expect("5")
	tc.expect("END")
	tc.send("set y 0 0 2\r\nhi\r\n")
	tc.expect("QUEUED")
	tc.send("incr x 3\r\n")
	tc.expect("QUEUED")
	tc.send("delete ghost\r\n")
	tc.expect("QUEUED")
	tc.send("txcommit\r\n")
	tc.expect("TXRESULT 3")
	tc.expect("STORED")    // set y
	tc.expect("8")         // incr x: 5+3
	tc.expect("NOT_FOUND") // delete ghost
	tc.expect("END")

	if v, _, _, ok := w.Get([]byte("y")); !ok || string(v) != "hi" {
		t.Fatalf("y = %q, %v", v, ok)
	}
	if v, _, _, _ := w.Get([]byte("x")); string(v) != "8" {
		t.Fatalf("x = %q", v)
	}
}

func TestTxConflictText(t *testing.T) {
	c := newTxCache(t, 1)
	w := c.NewWorker()
	w.Set([]byte("x"), 0, 0, []byte("old"))

	tc := dialTx(t, c)
	tc.send("txbegin\r\n")
	tc.expect("STARTED")
	tc.send("get x\r\n")
	tc.expect("VALUE x 0 3")
	tc.expect("old")
	tc.expect("END")

	// Another client moves x's CAS while the transaction is open.
	if w.Set([]byte("x"), 0, 0, []byte("new")) != engine.Stored {
		t.Fatal("intervening set failed")
	}

	tc.send("set never 0 0 1\r\nz\r\n")
	tc.expect("QUEUED")
	tc.send("txcommit\r\n")
	tc.expect("TX_CONFLICT x")

	if _, _, _, ok := w.Get([]byte("never")); ok {
		t.Fatal("conflicted transaction applied its write")
	}
	// The conflict consumed the transaction: the connection is back to
	// normal dispatch.
	tc.send("txcommit\r\n")
	tc.expect("CLIENT_ERROR no transaction started")
}

// TestTxReadsAreReadCommitted pins the documented in-transaction read
// semantics: reads execute immediately against committed state and do NOT
// observe the transaction's own queued writes (clients wanting
// read-your-writes overlay their local write-set, as the client library
// does).
func TestTxReadsAreReadCommitted(t *testing.T) {
	c := newTxCache(t, 2)
	out := runTextOn(t, c,
		"set k 0 0 3\r\nold\r\n"+
			"txbegin\r\n"+
			"set k 0 0 3\r\nnew\r\n"+
			"get k\r\n"+
			"txabort\r\n")
	want := "STORED\r\nSTARTED\r\nQUEUED\r\nVALUE k 0 3\r\nold\r\nEND\r\nABORTED\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestTxStateErrors(t *testing.T) {
	c := newTxCache(t, 1)
	for _, tc := range []struct {
		script string
		want   string
	}{
		{"txcommit\r\n", "CLIENT_ERROR no transaction started\r\n"},
		{"txabort\r\n", "CLIENT_ERROR no transaction started\r\n"},
		// Nested txbegin drops the open transaction.
		{"txbegin\r\ntxbegin\r\ntxcommit\r\n",
			"STARTED\r\nCLIENT_ERROR transaction already started\r\nCLIENT_ERROR no transaction started\r\n"},
		// Non-queueable commands are refused without killing the transaction.
		{"txbegin\r\nstats\r\nflush_all\r\ntxcommit\r\n",
			"STARTED\r\nCLIENT_ERROR command not allowed inside a transaction\r\n" +
				"CLIENT_ERROR command not allowed inside a transaction\r\nTXRESULT 0\r\nEND\r\n"},
		// version stays available inside a transaction.
		{"txbegin\r\nversion\r\ntxabort\r\n",
			"STARTED\r\nVERSION " + Version + "\r\nABORTED\r\n"},
	} {
		if out := runTextOn(t, c, tc.script); out != tc.want {
			t.Errorf("script %q:\n got %q\nwant %q", tc.script, out, tc.want)
		}
	}
}

func TestTxUnsupportedBranch(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.Baseline, HashPower: 8})
	c.Start()
	defer c.Stop()
	out := runTextOn(t, c, "txbegin\r\n")
	if out != "SERVER_ERROR transactions not supported on this branch\r\n" {
		t.Errorf("text out = %q", out)
	}
	d := &duplex{in: bytes.NewBuffer(binFrame(OpTxBegin, nil, nil, nil, 0)), out: &bytes.Buffer{}}
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	res := parseBinStream(t, d.out.Bytes())
	if len(res) != 1 || res[0].status != StatusUnknownCommand {
		t.Errorf("binary res = %+v", res)
	}
	if string(res[0].value) != "transactions not supported on this branch" {
		t.Errorf("binary msg = %q", res[0].value)
	}
}

func TestTxOpLimitAbortsTransaction(t *testing.T) {
	c := newTxCache(t, 1)
	var sb strings.Builder
	sb.WriteString("txbegin\r\n")
	for i := 0; i <= MaxTxOps; i++ {
		fmt.Fprintf(&sb, "delete k%d\r\n", i)
	}
	sb.WriteString("txcommit\r\n")
	out := runTextOn(t, c, sb.String())
	if got, want := strings.Count(out, "QUEUED\r\n"), MaxTxOps; got != want {
		t.Errorf("QUEUED count = %d, want %d", got, want)
	}
	if !strings.Contains(out, "CLIENT_ERROR transaction operation limit exceeded\r\n") {
		t.Errorf("missing limit error: %q", out)
	}
	// The oversized transaction is gone: nothing committed.
	if !strings.HasSuffix(out, "CLIENT_ERROR no transaction started\r\n") {
		t.Errorf("transaction survived limit violation: %q", out)
	}
}

func TestTxNoreplySuppressesQueued(t *testing.T) {
	c := newTxCache(t, 1)
	out := runTextOn(t, c,
		"txbegin noreply\r\nset a 0 0 1 noreply\r\nx\r\ndelete b noreply\r\ntxcommit\r\n")
	want := "TXRESULT 2\r\nSTORED\r\nNOT_FOUND\r\nEND\r\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestTxBinaryCommitAndConflict(t *testing.T) {
	c := newTxCache(t, 2)
	w := c.NewWorker()
	w.Set([]byte("x"), 0, 0, []byte("old"))

	setExtras := make([]byte, 8)
	d := &duplex{in: &bytes.Buffer{}, out: &bytes.Buffer{}}
	d.in.Write(binFrame(OpTxBegin, nil, nil, nil, 0))
	d.in.Write(binFrame(OpGet, nil, []byte("x"), nil, 0))
	d.in.Write(binFrame(OpSet, setExtras, []byte("y"), []byte("vy"), 0))
	d.in.Write(binFrame(OpTxCommit, nil, nil, nil, 0))
	if err := NewConn(c.NewWorker(), d).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	res := parseBinStream(t, d.out.Bytes())
	if len(res) != 4 {
		t.Fatalf("got %d replies", len(res))
	}
	for i, r := range res {
		if r.status != StatusOK {
			t.Fatalf("reply %d status = %#x", i, r.status)
		}
	}
	if string(res[1].value) != "old" {
		t.Errorf("in-tx get = %q", res[1].value)
	}
	if string(res[3].value) != "1" { // one op applied
		t.Errorf("commit value = %q", res[3].value)
	}
	if v, _, _, ok := w.Get([]byte("y")); !ok || string(v) != "vy" {
		t.Fatalf("y = %q, %v", v, ok)
	}

	// Conflict: read x on a live pipe, move its CAS from outside, commit.
	tcSrv, tcCli := net.Pipe()
	pc := NewConn(c.NewWorker(), tcSrv)
	done := make(chan struct{})
	go func() { pc.Serve(); tcSrv.Close(); close(done) }()
	defer func() { tcCli.Close(); <-done }()
	write := func(b []byte) {
		if _, err := tcCli.Write(b); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	readRes := func() binRes {
		hdr := make([]byte, 24)
		if _, err := io.ReadFull(tcCli, hdr); err != nil {
			t.Fatalf("read header: %v", err)
		}
		bodyLen := int(binary.BigEndian.Uint32(hdr[8:12]))
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(tcCli, body); err != nil {
			t.Fatalf("read body: %v", err)
		}
		all := append(hdr, body...)
		return parseBinStream(t, all)[0]
	}
	write(binFrame(OpTxBegin, nil, nil, nil, 0))
	if r := readRes(); r.status != StatusOK {
		t.Fatalf("txbegin status %#x", r.status)
	}
	write(binFrame(OpGet, nil, []byte("x"), nil, 0))
	if r := readRes(); r.status != StatusOK {
		t.Fatalf("get status %#x", r.status)
	}
	if w.Set([]byte("x"), 0, 0, []byte("moved")) != engine.Stored {
		t.Fatal("intervening set failed")
	}
	write(binFrame(OpTxCommit, nil, nil, nil, 0))
	r := readRes()
	if r.status != StatusKeyExists {
		t.Fatalf("commit status = %#x, want KeyExists", r.status)
	}
	if string(r.key) != "x" {
		t.Errorf("conflict key = %q", r.key)
	}
}

func TestTxStatsLinesAndReset(t *testing.T) {
	c := newTxCache(t, 2)
	script := "txbegin\r\nset a 0 0 1\r\nv\r\ntxcommit\r\nstats\r\n" +
		"stats reset\r\nstats\r\n"
	out := runTextOn(t, c, script)
	first := out[:strings.Index(out, "RESET")]
	rest := out[strings.Index(out, "RESET"):]
	if !strings.Contains(first, "STAT tx_commits 1\r\n") {
		t.Errorf("missing tx_commits 1 before reset:\n%s", first)
	}
	if !strings.Contains(rest, "STAT tx_commits 0\r\n") ||
		!strings.Contains(rest, "STAT tx_conflicts 0\r\n") ||
		!strings.Contains(rest, "STAT tx_serial_fallbacks 0\r\n") {
		t.Errorf("tx counters not reset:\n%s", rest)
	}
}

// TestTxDroppedConnectionLeavesNoState pins the disconnect-is-abort contract:
// a connection that dies mid-transaction leaves the cache untouched and
// other connections fully operational.
func TestTxDroppedConnectionLeavesNoState(t *testing.T) {
	c := newTxCache(t, 2)
	tc := dialTx(t, c)
	tc.send("txbegin\r\n")
	tc.expect("STARTED")
	tc.send("set orphan 0 0 1\r\no\r\n")
	tc.expect("QUEUED")
	tc.conn.Close()
	<-tc.done

	w := c.NewWorker()
	if _, _, _, ok := w.Get([]byte("orphan")); ok {
		t.Fatal("dropped transaction's write leaked")
	}
	out := runTextOn(t, c, "txbegin\r\nset k 0 0 1\r\nv\r\ntxcommit\r\n")
	if !strings.Contains(out, "TXRESULT 1") {
		t.Fatalf("follow-up transaction failed: %q", out)
	}
	if s := w.Stats(); s.TxCommits != 1 {
		t.Fatalf("TxCommits = %d, want 1", s.TxCommits)
	}
}
