// Package item provides memcached's item representation and the per-slab-class
// LRU lists (memcached's items.c), written against the access.Ctx layer so the
// same code runs under locks and under every transactional branch.
//
// Concurrency domains follow memcached 1.4.15:
//
//   - hash-chain membership (HNext) and item payload are protected by the
//     item-lock domain (striped by key hash);
//   - LRU links (Prev/Next), link/unlink and eviction are protected by the
//     cache-lock domain;
//   - Refcount is a "volatile" (lock incr) counter, updated with atomic
//     read-modify-writes in lock-based branches and — after stage Max — with
//     transactional accesses;
//   - Exptime/Time are read against the volatile current_time clock.
package item

import (
	"repro/internal/access"
	"repro/internal/stm"
	"repro/internal/txobs"
)

// Observability labels: every shared word allocated here is tagged with the
// data structure it belongs to, so the conflict heat map (`stats conflicts`)
// can attribute aborts to "item header" vs "LRU head" instead of a bare orec
// index.
var (
	lblItemData     = txobs.RegisterLabel("item_data")
	lblItemHeader   = txobs.RegisterLabel("item_header")
	lblItemRefcount = txobs.RegisterLabel("item_refcount")
	lblHashChain    = txobs.RegisterLabel("hash_chain")
	lblLRULink      = txobs.RegisterLabel("lru_link")
	lblLRUHead      = txobs.RegisterLabel("lru_head")
)

// ItFlags bits (memcached's it_flags).
const (
	// FlagLinked marks an item present in the hash table and LRU.
	FlagLinked = 1 << iota
	// FlagSlabbed marks a chunk sitting in a slab freelist (not a live item).
	FlagSlabbed
)

// Item is one cache entry. Immutable fields (Key bytes, Flags, Class,
// CapBytes) are written once before the item is published; everything else is
// shared state accessed through a Ctx.
type Item struct {
	Key    *stm.TBytes
	KeyLen int
	Hash   uint64
	Class  int
	Flags  uint32

	// Data holds the value; NBytes (mutable: incr/decr rewrite the value in
	// place) is the live length, CapBytes the allocated capacity.
	Data     *stm.TBytes
	NBytes   *stm.TWord
	CapBytes int

	// Suffix is the " <flags> <len>\r\n" header built with the snprintf
	// clone at allocation time (the libc call on the set path).
	Suffix    *stm.TBytes
	SuffixLen *stm.TWord

	Refcount *stm.TWord // volatile / lock incr domain
	ItFlags  *stm.TWord
	Exptime  *stm.TWord
	Time     *stm.TWord // last access (LRU aging)
	CasID    *stm.TWord

	HNext      *stm.TAny // *Item: hash chain (item-lock domain)
	Prev, Next *stm.TAny // *Item: LRU links (cache-lock domain)
}

const suffixCap = 48 // " 4294967295 <len>\r\n" fits comfortably

// New allocates an item for the given key with capacity for nbytes of value
// data. All stores are to captured (not yet published) memory, so they are
// direct, exactly as uninstrumented GCC stores to fresh allocations.
func New(key []byte, hash uint64, flags uint32, exptime uint64, nbytes int, class int) *Item {
	it := &Item{
		Key:       stm.NewTBytesFrom(key).Label(lblItemData),
		KeyLen:    len(key),
		Hash:      hash,
		Class:     class,
		Flags:     flags,
		Data:      stm.NewTBytes(nbytes).Label(lblItemData),
		NBytes:    stm.NewTWord(uint64(nbytes)).Label(lblItemHeader),
		CapBytes:  nbytes,
		Suffix:    stm.NewTBytes(suffixCap).Label(lblItemData),
		SuffixLen: stm.NewTWord(0).Label(lblItemHeader),
		Refcount:  stm.NewTWord(0).Label(lblItemRefcount),
		ItFlags:   stm.NewTWord(0).Label(lblItemHeader),
		Exptime:   stm.NewTWord(exptime).Label(lblItemHeader),
		Time:      stm.NewTWord(0).Label(lblItemHeader),
		CasID:     stm.NewTWord(0).Label(lblItemHeader),
		HNext:     stm.NewTAny(nil).Label(lblHashChain),
		Prev:      stm.NewTAny(nil).Label(lblLRULink),
		Next:      stm.NewTAny(nil).Label(lblLRULink),
	}
	return it
}

// AsItem converts a value read from a TAny link back to an item pointer,
// treating stored nils uniformly.
func AsItem(v any) *Item {
	if v == nil {
		return nil
	}
	return v.(*Item)
}

// Linked reports whether the item is in the hash table/LRU.
func (it *Item) Linked(c access.Ctx) bool { return c.Word(it.ItFlags)&FlagLinked != 0 }

// SetLinked sets or clears the linked flag.
func (it *Item) SetLinked(c access.Ctx, on bool) {
	f := c.Word(it.ItFlags)
	if on {
		f |= FlagLinked
	} else {
		f &^= FlagLinked
	}
	c.SetWord(it.ItFlags, f)
}

// RefIncr bumps the reference count (the lock incr path).
func (it *Item) RefIncr(c access.Ctx) uint64 { return c.AddVolatile(it.Refcount, 1) }

// RefDecr drops the reference count and returns the new value.
func (it *Item) RefDecr(c access.Ctx) uint64 { return c.AddVolatile(it.Refcount, ^uint64(0)) }

// RefGet reads the reference count.
func (it *Item) RefGet(c access.Ctx) uint64 { return c.Volatile(it.Refcount) }

// Expired reports whether the item is past its expiry at time now.
func (it *Item) Expired(c access.Ctx, now uint64) bool {
	e := c.Word(it.Exptime)
	return e != 0 && e <= now
}

// TotalBytes returns the item's accounted size (key + value + suffix + a
// fixed header charge), used for slab class selection and the bytes stat.
func (it *Item) TotalBytes(c access.Ctx) int {
	return it.KeyLen + int(c.Word(it.NBytes)) + suffixCap + headerSize
}

// headerSize approximates sizeof(item) in memcached's accounting.
const headerSize = 48

// SizeFor returns the accounted size for a prospective item.
func SizeFor(keyLen, nbytes int) int { return keyLen + nbytes + suffixCap + headerSize }

// ---------------------------------------------------------------------------
// LRU lists (cache-lock domain)

// LRU holds one doubly-linked list per slab class, most recently used first.
type LRU struct {
	heads []*stm.TAny
	tails []*stm.TAny
	sizes []*stm.TWord
}

// NewLRU creates LRU lists for n slab classes.
func NewLRU(n int) *LRU {
	l := &LRU{
		heads: make([]*stm.TAny, n),
		tails: make([]*stm.TAny, n),
		sizes: make([]*stm.TWord, n),
	}
	for i := range l.heads {
		l.heads[i] = stm.NewTAny(nil).Label(lblLRUHead)
		l.tails[i] = stm.NewTAny(nil).Label(lblLRUHead)
		l.sizes[i] = stm.NewTWord(0).Label(lblLRUHead)
	}
	return l
}

// Classes returns the number of classes.
func (l *LRU) Classes() int { return len(l.heads) }

// Len returns the number of items in class cls.
func (l *LRU) Len(c access.Ctx, cls int) uint64 { return c.Word(l.sizes[cls]) }

// Head returns the most recently used item of class cls, or nil.
func (l *LRU) Head(c access.Ctx, cls int) *Item { return AsItem(c.Any(l.heads[cls])) }

// Tail returns the least recently used item of class cls, or nil.
func (l *LRU) Tail(c access.Ctx, cls int) *Item { return AsItem(c.Any(l.tails[cls])) }

// Link inserts it at the head of its class list.
func (l *LRU) Link(c access.Ctx, it *Item) {
	cls := it.Class
	head := AsItem(c.Any(l.heads[cls]))
	c.SetAny(it.Prev, nil)
	if head != nil {
		c.SetAny(it.Next, head)
		c.SetAny(head.Prev, it)
	} else {
		c.SetAny(it.Next, nil)
		c.SetAny(l.tails[cls], it)
	}
	c.SetAny(l.heads[cls], it)
	c.AddWord(l.sizes[cls], 1)
}

// Unlink removes it from its class list.
func (l *LRU) Unlink(c access.Ctx, it *Item) {
	cls := it.Class
	prev := AsItem(c.Any(it.Prev))
	next := AsItem(c.Any(it.Next))
	if prev != nil {
		c.SetAny(prev.Next, next)
	} else {
		c.SetAny(l.heads[cls], next)
	}
	if next != nil {
		c.SetAny(next.Prev, prev)
	} else {
		c.SetAny(l.tails[cls], prev)
	}
	c.SetAny(it.Prev, nil)
	c.SetAny(it.Next, nil)
	c.AddWord(l.sizes[cls], ^uint64(0))
}

// Touch moves it to the head of its class list (item_update).
func (l *LRU) Touch(c access.Ctx, it *Item, now uint64) {
	l.Unlink(c, it)
	l.Link(c, it)
	c.SetWord(it.Time, now)
}
