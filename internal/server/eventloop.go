package server

import (
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fingerprint"
	"repro/internal/poller"
	"repro/internal/protocol"
	"repro/internal/txtrace"
)

// The event-loop transport splits the front end into two tiers:
//
//	poller (1 goroutine)          workers (bounded pool)
//	  epoll owns idle sockets  →    per-shard queues + shared queue
//	  readiness → enqueue      →    burst: serve commands while input
//	                                 is buffered, flush, park again
//
// A parked connection costs one epoll registration and one small struct —
// no goroutine, no buffers (the bufio pair is pooled and attached only for
// the burst), no engine worker (workers own those; a connection borrows its
// server's handle per burst). Connections whose last command routed to a
// single TM shard are queued to the worker bound to that shard, so a
// transaction's orec table and slab arena stay with one OS thread most of
// the time (the thread/data-mapping argument from Pasqualin et al.);
// multi-shard commands (multi-key get, flush_all, stats, wire transactions)
// ride the shared queue any worker may drain.

// evConn states. Transitions: idle→queued (poller readiness, CAS-guarded so
// duplicate events collapse), queued→running (worker pickup), running→idle
// (park). teardown may run from any state and is idempotent.
const (
	evIdle int32 = iota
	evQueued
	evRunning
)

type evConn struct {
	sc  *servConn
	pc  *protocol.Conn
	tok poller.Token
	fd  int // raw fd for non-consuming readiness probes; -1 if unavailable

	state      atomic.Int32
	lastActive atomic.Int64 // unix nanos of last burst end (idle reaping)
	enqueuedNs atomic.Int64 // stamp set by enqueue, swapped out at pickup
	closed     atomic.Bool
}

// evStats is the transport's telemetry block. It is always on: everything
// here is amortized per dispatch or per burst, never per command, so the
// steady-state cost is two timestamps and two histogram increments per
// burst — noise next to one syscall. Counters and histograms reset on
// `stats reset`; queue depths and overflow length are live gauges.
type evStats struct {
	spills   atomic.Uint64      // enqueues that spilled to the overflow list
	dispatch fingerprint.LogHist // queued→running latency, ns
	burstOps fingerprint.LogHist // commands served per burst

	// busyNs[i] accumulates worker i's time inside bursts; baseNs and
	// winStart snapshot the reset point so the busy fraction is computed
	// over the current window only.
	busyNs   []atomic.Int64
	baseNs   []atomic.Int64
	winStart atomic.Int64
}

type evLoop struct {
	s *Server
	p poller.Poller

	// affineQ[i] feeds the worker bound to shard-class i; a connection whose
	// affinity is shard s is queued to affineQ[s % len(affineQ)]. With
	// workers ≥ shards this is exactly one queue per shard.
	affineQ []chan *evConn
	sharedQ chan *evConn

	stop     chan struct{}
	stopOnce sync.Once

	workerWG sync.WaitGroup
	reapWG   sync.WaitGroup

	mu       sync.Mutex
	conns    map[poller.Token]*evConn
	overflow []*evConn // unbounded spill when every queue is full; take drains it first

	stats evStats
}

const (
	evAffineQueueCap = 256
	evSharedQueueCap = 1024
	evMaxWorkers     = 32
	// evBurstMaxOps caps how many commands one connection may run per burst
	// before it yields the worker, so a pipelining client cannot starve the
	// rest of the pool.
	evBurstMaxOps = 128
)

// newPoller is a test seam: the fallback-poller tests rebind it so the whole
// transport can be exercised over the portable implementation on linux too.
var newPoller = poller.New

func newEvLoop(s *Server) (*evLoop, error) {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = s.cache.NumShards() + 2
	}
	if workers > evMaxWorkers {
		workers = evMaxWorkers
	}
	affine := workers
	if n := s.cache.NumShards(); affine > n {
		affine = n
	}
	ev := &evLoop{
		s:       s,
		sharedQ: make(chan *evConn, evSharedQueueCap),
		stop:    make(chan struct{}),
		conns:   make(map[poller.Token]*evConn),
	}
	ev.affineQ = make([]chan *evConn, affine)
	for i := range ev.affineQ {
		ev.affineQ[i] = make(chan *evConn, evAffineQueueCap)
	}
	ev.stats.busyNs = make([]atomic.Int64, workers)
	ev.stats.baseNs = make([]atomic.Int64, workers)
	ev.stats.winStart.Store(time.Now().UnixNano())
	p, err := newPoller(ev.ready)
	if err != nil {
		return nil, err
	}
	ev.p = p
	for i := 0; i < workers; i++ {
		ev.workerWG.Add(1)
		go ev.workerLoop(i)
	}
	if s.cfg.IdleTimeout > 0 {
		ev.reapWG.Add(1)
		go ev.reapLoop()
	}
	return ev, nil
}

// adopt takes ownership of a freshly accepted connection: builds its
// protocol state (buffers detached, worker unbound), registers it with the
// poller, and arms the first readiness event. Called from the accept loop
// after the connection is registered in s.conns and counted in s.wg.
func (ev *evLoop) adopt(sc *servConn) {
	s := ev.s
	pc := protocol.NewConnPooled(sc)
	pc.SetControl(sc)
	pc.SetConnErrors(&s.errs)
	pc.SetSpans(txtrace.NewConnSpans(s.cache.Tracer(), s.connSeq.Add(1)))
	pc.SetShardTracking(s.cache.NumShards() > 1)
	fd := -1
	if scc, ok := sc.Conn.(syscall.Conn); ok {
		if rc, cerr := scc.SyscallConn(); cerr == nil {
			_ = rc.Control(func(f uintptr) { fd = int(f) })
		}
	}
	c := &evConn{sc: sc, pc: pc, fd: fd}
	c.lastActive.Store(time.Now().UnixNano())
	pc.SetTransport(ev)

	tok, err := ev.p.Add(sc.Conn)
	if err == nil {
		c.tok = tok
		ev.mu.Lock()
		ev.conns[tok] = c
		ev.mu.Unlock()
		err = ev.p.Arm(tok)
	}
	if err != nil {
		// Raced with shutdown, or an exotic transport: tear down; the
		// classic path is not a fallback because Config chose this one.
		ev.teardown(c, err)
	}
}

// ready is the poller's readiness callback. The idle→queued CAS makes
// duplicate or stale events (possible around Remove) harmless.
func (ev *evLoop) ready(tok poller.Token) {
	ev.mu.Lock()
	c := ev.conns[tok]
	ev.mu.Unlock()
	if c == nil {
		return
	}
	if !c.state.CompareAndSwap(evIdle, evQueued) {
		return
	}
	ev.enqueue(c)
}

// enqueue hands a queued connection to the worker pool. It never blocks:
// workers themselves call it (Arm's probe synthesizes readiness inline, and
// the fairness cap requeues a connection mid-stream), so a blocking send on a
// full queue could deadlock the pool against itself. When both the affine and
// shared queues are full the connection spills to an unbounded overflow list.
func (ev *evLoop) enqueue(c *evConn) {
	c.enqueuedNs.Store(time.Now().UnixNano())
	if a := c.pc.Affinity(); a >= 0 && len(ev.affineQ) > 0 {
		// A full affine queue spills onward rather than stalling readiness
		// delivery behind one hot shard.
		select {
		case ev.affineQ[a%len(ev.affineQ)] <- c:
			return
		default:
		}
	}
	select {
	case ev.sharedQ <- c:
		return
	default:
	}
	// No lost wakeup: a worker blocked in take would have completed one of
	// the sends above, so reaching here means every worker is busy and will
	// pass through take (which drains the overflow first) again.
	ev.stats.spills.Add(1)
	ev.mu.Lock()
	ev.overflow = append(ev.overflow, c)
	ev.mu.Unlock()
}

func (ev *evLoop) popOverflow() *evConn {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if len(ev.overflow) == 0 {
		return nil
	}
	c := ev.overflow[0]
	ev.overflow[0] = nil
	ev.overflow = ev.overflow[1:]
	return c
}

func (ev *evLoop) workerLoop(i int) {
	defer ev.workerWG.Done()
	// One engine worker per pool worker, not per connection: a worker handle
	// registers per-shard stat blocks for its lifetime, so per-connection
	// handles would accrete forever at 100k conns; per-pool-worker handles
	// also keep a shard's transactions on the same few OS threads.
	w := ev.s.cache.NewWorker()
	var myQ chan *evConn
	if i < len(ev.affineQ) {
		myQ = ev.affineQ[i]
	}
	for {
		c := ev.take(myQ)
		if c == nil {
			return
		}
		start := time.Now()
		// The enqueue stamp is swapped out so a connection that stays with
		// a worker across the fairness-cap requeue gets a fresh stamp each
		// time it actually waits in a queue.
		if enq := c.enqueuedNs.Swap(0); enq > 0 {
			if d := start.UnixNano() - enq; d > 0 {
				ev.stats.dispatch.Record(uint64(d))
			}
		}
		ev.burst(c, w)
		ev.stats.busyNs[i].Add(int64(time.Since(start)))
	}
}

// take returns the next connection to serve, preferring this worker's
// affine queue, then the shared queue; it only honors stop once both are
// drained (the graceful-drain contract: queued requests finish).
func (ev *evLoop) take(myQ chan *evConn) *evConn {
	if c := ev.popOverflow(); c != nil {
		return c
	}
	if myQ != nil {
		select {
		case c := <-myQ:
			return c
		case c := <-ev.sharedQ:
			return c
		default:
		}
		select {
		case c := <-myQ:
			return c
		case c := <-ev.sharedQ:
			return c
		case <-ev.stop:
			return nil
		}
	}
	select {
	case c := <-ev.sharedQ:
		return c
	default:
	}
	select {
	case c := <-ev.sharedQ:
		return c
	case <-ev.stop:
		return nil
	}
}

// pendingInput reports whether a read on fd would make progress: data, EOF,
// and real errors all count (the burst's read surfaces whichever it is);
// only EAGAIN means "nothing there". fd < 0 (a transport without a raw fd)
// always reports true, degrading to blocking reads.
func pendingInput(fd int) bool {
	if fd < 0 {
		return true
	}
	var b [1]byte
	_, _, err := syscall.Recvfrom(fd, b[:], syscall.MSG_PEEK)
	return err != syscall.EAGAIN && err != syscall.EWOULDBLOCK
}

// burst serves one readiness event: attach pooled buffers, lend the worker's
// engine handle, serve commands until input is exhausted, flush, release the
// buffers, and re-arm the poller. The connection must never be parked with
// buffered input — the poller only sees kernel readiness, so userspace
// leftovers would strand the connection forever.
func (ev *evLoop) burst(c *evConn, w *engine.Worker) {
	c.state.Store(evRunning)
	if c.closed.Load() || ev.s.draining.Load() {
		ev.teardown(c, errDraining)
		return
	}
	pc := c.pc
	// The poller's at-least-once contract allows duplicates: the same bytes
	// can produce both an edge event and an Arm-probe event, so a wakeup may
	// find nothing to read. A blocking first read would pin this worker for a
	// full ReadTimeout, so probe first and re-park for the cost of one
	// syscall — no buffers were attached yet.
	if pc.InputBuffered() == 0 && !pendingInput(c.fd) {
		c.state.Store(evIdle)
		if aerr := ev.p.Arm(c.tok); aerr != nil {
			ev.teardown(c, aerr)
		}
		return
	}
	pc.SetWorker(w)
	pc.AttachBuffers()
	var err error
	ops := 0
	defer func() { ev.stats.burstOps.Record(uint64(ops)) }()
	for {
		if err = pc.ServeOne(); err != nil {
			break
		}
		ops++
		if pc.InputBuffered() > 0 {
			if ops < evBurstMaxOps {
				continue
			}
			// Fairness cap hit with commands still in the userspace buffer.
			// The poller cannot see those bytes, so parking would strand
			// them: flush replies and hand the connection back to the queue
			// explicitly, buffers still attached.
			if err = pc.Flush(); err != nil {
				break
			}
			c.lastActive.Store(time.Now().UnixNano())
			c.state.Store(evQueued)
			ev.enqueue(c)
			return
		}
		if err = pc.Flush(); err != nil {
			break
		}
		// Replies are flushed; if the next request has already arrived, keep
		// the burst going instead of paying a park/re-arm/dispatch round trip
		// — this is what keeps a busy connection near classic-transport
		// throughput. At the fairness cap, park instead: Arm's probe will
		// re-synthesize the event and the connection rejoins the queue tail.
		if ops >= evBurstMaxOps || !pendingInput(c.fd) {
			break
		}
	}
	c.lastActive.Store(time.Now().UnixNano())
	if err != nil {
		ev.teardown(c, err)
		return
	}
	pc.ReleaseBuffers(false)
	if ev.s.draining.Load() {
		ev.teardown(c, errDraining)
		return
	}
	c.state.Store(evIdle)
	if aerr := ev.p.Arm(c.tok); aerr != nil {
		ev.teardown(c, aerr)
	}
}

// expire tears down a PARKED connection from outside the worker pool (the
// idle reaper, the shutdown sweep). The idle→queued CAS steals the
// connection from the poller exactly like a readiness event would, so no
// worker can concurrently own its buffers; if the CAS fails the connection
// is queued, running, or already dying, and its current owner is
// responsible for its fate.
func (ev *evLoop) expire(c *evConn, err error) {
	if c.state.CompareAndSwap(evIdle, evQueued) {
		ev.teardown(c, err)
	}
}

// teardown closes and unregisters a connection. Callers must own the
// connection exclusively (its worker mid-burst, expire's CAS winner, or the
// post-drain final sweep); the closed CAS additionally makes duplicate calls
// from the same shutdown path harmless. Exactly one caller releases the
// MaxConns slot and wg count.
func (ev *evLoop) teardown(c *evConn, err error) {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	if c.tok != 0 {
		_ = ev.p.Remove(c.tok)
		ev.mu.Lock()
		delete(ev.conns, c.tok)
		ev.mu.Unlock()
	}
	// Best-effort flush of batched replies written before the failure (the
	// classic path's Serve does the same before returning); then dropping
	// the protocol state drops any open wire transaction — the implicit
	// txabort on disconnect, same contract as the classic path.
	_ = c.pc.Flush()
	c.pc.ReleaseBuffers(true)
	c.sc.Conn.Close()
	s := ev.s
	s.mu.Lock()
	delete(s.conns, c.sc)
	s.mu.Unlock()
	if s.sem != nil {
		<-s.sem
	}
	if errors.Is(err, protocol.ErrQuit) || errors.Is(err, io.EOF) {
		err = nil
	}
	s.countErr(err)
	s.wg.Done()
}

// reapLoop enforces IdleTimeout for parked connections. The classic
// transport reaps by read deadline; a parked connection has no read in
// flight, so the event loop sweeps instead.
func (ev *evLoop) reapLoop() {
	defer ev.reapWG.Done()
	idle := ev.s.cfg.IdleTimeout
	tick := idle / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ev.stop:
			return
		case <-t.C:
		}
		cut := time.Now().Add(-idle).UnixNano()
		ev.mu.Lock()
		stale := make([]*evConn, 0, 8)
		for _, c := range ev.conns {
			if c.state.Load() == evIdle && c.lastActive.Load() < cut {
				stale = append(stale, c)
			}
		}
		ev.mu.Unlock()
		for _, c := range stale {
			// os.ErrDeadlineExceeded is a net.Error timeout, so countErr
			// files the reap under conn_errors_timeout like the classic path.
			ev.expire(c, os.ErrDeadlineExceeded)
		}
	}
}

// shutdown drains the transport for Server.Close. Order matters:
//
//  1. close(stop) first, so workers stop picking up new connections once
//     their queues run dry.
//  2. p.Close stops readiness delivery (enqueue never blocks, so the poller
//     goroutine can always reach the close check).
//  3. Sweep every PARKED connection via expire (CAS-stolen from the
//     poller). Queued and running connections stay with the workers.
//  4. Workers drain their queues (take prefers work over stop), finish
//     in-flight bursts under the drain deadline, see draining at the next
//     park point, and exit through teardown.
//  5. With every worker joined, a final unconditional sweep catches
//     connections whose queue entry was dropped by the stop/queue select
//     race — at this point no concurrent owner can exist.
func (ev *evLoop) shutdown() {
	ev.stopOnce.Do(func() { close(ev.stop) })
	ev.p.Close()
	for _, c := range ev.snapshot() {
		ev.expire(c, errDraining)
	}
	ev.workerWG.Wait()
	ev.reapWG.Wait()
	for _, c := range ev.snapshot() {
		ev.teardown(c, errDraining)
	}
}

// evLoop implements protocol.TransportStats for `stats eventloop`.
var _ protocol.TransportStats = (*evLoop)(nil)

// EventLoopSnapshot renders the transport's telemetry: queue-depth gauges,
// the overflow-spill counter, dispatch/burst histograms, per-worker busy
// fractions over the current reset window, and the poller's counters when
// its implementation exposes them.
func (ev *evLoop) EventLoopSnapshot() protocol.EventLoopSnapshot {
	s := protocol.EventLoopSnapshot{
		Workers:        len(ev.stats.busyNs),
		AffineCap:      evAffineQueueCap,
		SharedDepth:    len(ev.sharedQ),
		SharedCap:      cap(ev.sharedQ),
		OverflowSpills: ev.stats.spills.Load(),
		Dispatch:       ev.stats.dispatch.Snapshot(),
		BurstOps:       ev.stats.burstOps.Snapshot(),
	}
	s.AffineDepth = make([]int, len(ev.affineQ))
	for i, q := range ev.affineQ {
		s.AffineDepth[i] = len(q)
	}
	ev.mu.Lock()
	s.OverflowLen = len(ev.overflow)
	s.Conns = len(ev.conns)
	ev.mu.Unlock()
	s.WorkerBusy = make([]float64, len(ev.stats.busyNs))
	if elapsed := time.Now().UnixNano() - ev.stats.winStart.Load(); elapsed > 0 {
		for i := range ev.stats.busyNs {
			f := float64(ev.stats.busyNs[i].Load()-ev.stats.baseNs[i].Load()) / float64(elapsed)
			// A burst in flight across the window edge can push the ratio
			// out of range; clamp rather than report nonsense.
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			s.WorkerBusy[i] = f
		}
	}
	if cs, ok := ev.p.(poller.CounterSource); ok {
		s.Poller = cs.Counters()
		s.HasPoller = true
	}
	return s
}

// ResetTransportCounters implements the `stats reset` half of the
// TransportStats contract: counters and histograms clear, the busy window
// restarts, gauges (queue depths, overflow length, conns) are untouched.
func (ev *evLoop) ResetTransportCounters() {
	ev.stats.spills.Store(0)
	ev.stats.dispatch.Reset()
	ev.stats.burstOps.Reset()
	for i := range ev.stats.busyNs {
		ev.stats.baseNs[i].Store(ev.stats.busyNs[i].Load())
	}
	ev.stats.winStart.Store(time.Now().UnixNano())
	if cs, ok := ev.p.(poller.CounterSource); ok {
		cs.ResetCounters()
	}
}

func (ev *evLoop) snapshot() []*evConn {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	out := make([]*evConn, 0, len(ev.conns))
	for _, c := range ev.conns {
		out = append(out, c)
	}
	return out
}
