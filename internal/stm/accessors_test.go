package stm

import (
	"runtime"
	"strings"
	"testing"
)

// TestAccessorsAndStringers covers the small exported surface: per-thread
// counters, kind names, table formatting, and the direct accessors the
// engine's privatized paths rely on.
func TestAccessorsAndStringers(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	w := NewTWord(0)
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		if tx.Kind() != Atomic {
			t.Error("Kind")
		}
		if tx.Thread() != th {
			t.Error("Thread")
		}
		if th.Current() != tx {
			t.Error("Current")
		}
		w.Store(tx, 1)
	})
	if th.Current() != nil {
		t.Error("Current after commit")
	}
	if th.Commits() != 1 || th.Aborts() != 0 {
		t.Errorf("thread counters = %d/%d", th.Commits(), th.Aborts())
	}
	if th.Runtime() != rt {
		t.Error("Runtime")
	}
	if Atomic.String() != "atomic" || Relaxed.String() != "relaxed" {
		t.Error("Kind names")
	}
	if Algorithm(99).String() == "mlwt" || ContentionManager(99).String() == "none" {
		t.Error("out-of-range names mapped")
	}
	if !strings.Contains(Algorithm(99).String(), "Algorithm") {
		t.Error("unknown algorithm formatting")
	}
}

func TestDirectAccessors(t *testing.T) {
	w := NewTWord(1)
	w.StoreDirect(5)
	if w.LoadDirect() != 5 {
		t.Error("TWord StoreDirect")
	}
	a := NewTAny("x")
	a.StoreDirect("y")
	if a.LoadDirect() != "y" {
		t.Error("TAny StoreDirect")
	}
	tb := NewTBytes(16)
	tb.SetWordDirect(1, 0xDEADBEEF)
	if tb.WordDirect(1) != 0xDEADBEEF {
		t.Error("TBytes word direct")
	}
	tb.WriteAllDirect([]byte("abc"))
	if got := string(tb.Bytes()[:3]); got != "abc" {
		t.Errorf("WriteAllDirect = %q", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WriteAllDirect over-length did not panic")
			}
		}()
		tb.WriteAllDirect(make([]byte, 17))
	}()
}

func TestSnapshotFormatting(t *testing.T) {
	s := Snapshot{Commits: 100, InFlightSwitch: 10, StartSerial: 20, AbortSerial: 3,
		Aborts: 50, ThreadCommits: []uint64{40, 60}, ThreadAborts: []uint64{10, 40}}
	row := s.TableRow("test-branch")
	for _, want := range []string{"test-branch", "100", "10 (10.0%)", "20 (20.0%)", "3"} {
		if !strings.Contains(row, want) {
			t.Errorf("TableRow %q missing %q", row, want)
		}
	}
	if got := s.AbortsPerCommit(); got != 0.5 {
		t.Errorf("AbortsPerCommit = %v", got)
	}
	if v := s.AbortRateVariance(); v <= 0 {
		t.Errorf("variance = %v, want > 0 for skewed threads", v)
	}
	var empty Snapshot
	if empty.AbortsPerCommit() != 0 || empty.AbortRateVariance() != 0 {
		t.Error("empty snapshot ratios non-zero")
	}
	zeroRow := Snapshot{}.TableRow("z")
	if !strings.Contains(zeroRow, "z") {
		t.Errorf("zero TableRow = %q", zeroRow)
	}
}

func TestProfileStringFormat(t *testing.T) {
	rt := New(Config{})
	rt.EnableProfiling()
	th := rt.NewThread()
	_ = th.Run(Props{Kind: Relaxed, Site: "spot"}, func(tx *Tx) { tx.Unsafe("op") })
	out := rt.Profile().String()
	if !strings.Contains(out, "serialization causes:") || !strings.Contains(out, "op @ spot") {
		t.Errorf("profile report = %q", out)
	}
}

// TestNOrecReaderRevalidation drives the NOrec mid-read revalidation path: a
// writer commits between a reader's begin and a later load, forcing the
// reader to re-snapshot (not abort) when its prior reads still hold.
func TestNOrecReaderRevalidation(t *testing.T) {
	rt := New(Config{Algorithm: NOrec})
	a, b := NewTWord(1), NewTWord(2)
	unrelated := NewTWord(0)
	th := rt.NewThread()
	attempts := 0
	done := make(chan struct{})
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		attempts++
		_ = a.Load(tx)
		if attempts == 1 {
			go func() {
				defer close(done)
				wth := rt.NewThread()
				// Writes an UNRELATED location: bumps the global sequence
				// without invalidating the reader's value-based read set.
				// Do NOT wait for its Run to return here — the writer
				// quiesces on this reader (privatization safety); its
				// publication is observable via the direct read below.
				_ = wth.Run(Props{Kind: Atomic}, func(wtx *Tx) {
					unrelated.Store(wtx, 1)
				})
			}()
			for unrelated.LoadDirect() != 1 {
				runtime.Gosched()
			}
			for i := 0; i < 200; i++ {
				runtime.Gosched() // grace for the sequence release
			}
		}
		_ = b.Load(tx) // must revalidate and proceed, not abort
	})
	<-done
	if attempts != 1 {
		t.Errorf("attempts = %d; value-based revalidation should avoid the abort", attempts)
	}
}
