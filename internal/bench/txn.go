package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
)

// The -txn benchmark: wire-transaction commit throughput by shape, plus a
// conflict-rate sweep.
//
// Three shapes isolate the commit path's cost layers:
//
//   - single_key: read one key, increment it. One shard touched — the commit
//     is a single speculative transaction, the cheapest possible path.
//   - same_shard: a two-key transfer whose keys hash to the same shard. Still
//     one TM domain, but a bigger read/write set.
//   - cross_shard: a two-key transfer across two shards — the N-domain
//     ordered commit: two serial-irrevocable acquisitions (the second
//     bounded), global fallback when the bounded pass loses.
//
// Every transaction validates its reads CAS-style, so shrinking the key pool
// manufactures real validation conflicts; the sweep reports the conflict and
// serial-fallback rates as the pool tightens.

// TxnShapeResult is one workload shape's measurement.
type TxnShapeResult struct {
	Shape     string  `json:"shape"`
	Seconds   float64 `json:"seconds"`
	TxPerSec  float64 `json:"tx_per_sec"`
	Attempts  uint64  `json:"attempts"`
	Commits   uint64  `json:"commits"`
	Conflicts uint64  `json:"conflicts"`
	// SerialFallbacks counts cross-shard commits that lost the bounded
	// ordered pass and re-ran under the global serial section.
	SerialFallbacks    uint64  `json:"serial_fallbacks"`
	ConflictRate       float64 `json:"conflict_rate"`
	SerialFallbackRate float64 `json:"serial_fallback_rate"`
}

// TxnConflictPoint is one key-pool size in the conflict sweep.
type TxnConflictPoint struct {
	HotKeys            int     `json:"hot_keys"`
	Attempts           uint64  `json:"attempts"`
	Commits            uint64  `json:"commits"`
	Conflicts          uint64  `json:"conflicts"`
	SerialFallbacks    uint64  `json:"serial_fallbacks"`
	ConflictRate       float64 `json:"conflict_rate"`
	SerialFallbackRate float64 `json:"serial_fallback_rate"`
}

// TxnBenchResult is the full -txn run.
type TxnBenchResult struct {
	Branch        string             `json:"branch"`
	Shards        int                `json:"shards"`
	Threads       int                `json:"threads"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	CPUs          int                `json:"cpus"`
	TxPerThread   int                `json:"tx_per_thread"`
	Shapes        []TxnShapeResult   `json:"shapes"`
	ConflictSweep []TxnConflictPoint `json:"conflict_sweep"`
}

// RunTxnBench measures wire-transaction commit throughput on branch b with
// the given shard count. Panics (via engine.CommitTx's own gate) if b cannot
// serve wire transactions — callers check engine TxSupported first.
func RunTxnBench(b engine.Branch, threads, shards int, o Options) TxnBenchResult {
	o = o.withDefaults()
	procs := threads
	if n := runtime.NumCPU(); procs > n {
		procs = n
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	res := TxnBenchResult{
		Branch:      b.String(),
		Shards:      shards,
		Threads:     threads,
		GOMAXPROCS:  procs,
		CPUs:        runtime.NumCPU(),
		TxPerThread: o.OpsPerThread,
	}

	for _, shape := range []string{"single_key", "same_shard", "cross_shard"} {
		res.Shapes = append(res.Shapes, runTxnShape(b, threads, shards, shape, o))
	}
	// Conflict sweep: cross-shard transfers over shrinking key pools. The
	// largest pool approximates no contention; the smallest is a brawl.
	for _, hot := range []int{4096, 256, 32, 8} {
		res.ConflictSweep = append(res.ConflictSweep, runTxnConflictPoint(b, threads, shards, hot, o))
	}
	return res
}

// txnKeyPools buckets generated keys by shard until the two pools the
// workloads draw from — shard 0 and shard 1 (or 0 again on a 1-shard cache)
// — hold count keys each.
func txnKeyPools(c *engine.Cache, count int) [][][]byte {
	pools := make([][][]byte, c.NumShards())
	s2 := 1 % len(pools)
	for i := 0; len(pools[0]) < count || len(pools[s2]) < count; i++ {
		k := fmt.Appendf(nil, "txn-key-%06d", i)
		s := c.ShardOf(k)
		if len(pools[s]) < count {
			pools[s] = append(pools[s], k)
		}
	}
	return pools
}

func txnSeed(c *engine.Cache, pools [][][]byte) {
	w := c.NewWorker()
	for _, pool := range pools {
		for _, k := range pool {
			w.Set(k, 0, 0, []byte("1000000"))
		}
	}
}

func runTxnShape(b engine.Branch, threads, shards int, shape string, o Options) TxnShapeResult {
	c := engine.New(engine.Config{Branch: b, Shards: shards, MemLimit: 64 << 20, HashPower: o.HashPower})
	c.Start()
	defer c.Stop()
	const poolPerShard = 2048
	pools := txnKeyPools(c, poolPerShard)
	txnSeed(c, pools)

	var attempts uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			r := rngState(uint64(t)*0x9E37 + 7)
			var n uint64
			for i := 0; i < o.OpsPerThread; i++ {
				n++
				switch shape {
				case "single_key":
					k := pools[0][nextRand(&r)%poolPerShard]
					_, _, cas, _ := w.Get(k)
					w.CommitTx(
						[]engine.TxRead{{Key: k, CAS: cas}},
						[]engine.TxOp{{Kind: engine.TxIncr, Key: k, Delta: 1}},
					)
				case "same_shard":
					a := pools[0][nextRand(&r)%poolPerShard]
					bk := pools[0][nextRand(&r)%poolPerShard]
					txnTransfer(w, a, bk, false)
				default: // cross_shard
					s2 := 1 % len(pools)
					a := pools[0][nextRand(&r)%poolPerShard]
					bk := pools[s2][nextRand(&r)%poolPerShard]
					txnTransfer(w, a, bk, false)
				}
			}
			mu.Lock()
			attempts += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	dur := time.Since(start)

	s := c.NewWorker().Stats()
	out := TxnShapeResult{
		Shape:           shape,
		Seconds:         dur.Seconds(),
		TxPerSec:        float64(attempts) / dur.Seconds(),
		Attempts:        attempts,
		Commits:         s.TxCommits,
		Conflicts:       s.TxConflicts,
		SerialFallbacks: s.TxSerialFallbacks,
	}
	if attempts > 0 {
		out.ConflictRate = float64(s.TxConflicts) / float64(attempts)
		out.SerialFallbackRate = float64(s.TxSerialFallbacks) / float64(attempts)
	}
	return out
}

// txnTransfer runs one validated two-key transfer: read both balances, move
// one unit a→b. With yield set, the thread gives up its P between reading
// and committing: on a box with fewer CPUs than threads, goroutines otherwise
// run whole iterations back-to-back and the read→commit window never overlaps
// a foreign commit, measuring the scheduler's preemption rate instead of
// validation behavior.
func txnTransfer(w *engine.Worker, a, b []byte, yield bool) engine.TxOutcome {
	_, _, casA, _ := w.Get(a)
	_, _, casB, _ := w.Get(b)
	if yield {
		runtime.Gosched()
	}
	return w.CommitTx(
		[]engine.TxRead{{Key: a, CAS: casA}, {Key: b, CAS: casB}},
		[]engine.TxOp{
			{Kind: engine.TxDecr, Key: a, Delta: 1},
			{Kind: engine.TxIncr, Key: b, Delta: 1},
		},
	)
}

func runTxnConflictPoint(b engine.Branch, threads, shards, hotKeys int, o Options) TxnConflictPoint {
	c := engine.New(engine.Config{Branch: b, Shards: shards, MemLimit: 64 << 20, HashPower: o.HashPower})
	c.Start()
	defer c.Stop()
	perShard := hotKeys / 2
	if perShard < 1 {
		perShard = 1
	}
	pools := txnKeyPools(c, perShard)
	txnSeed(c, pools)
	s2 := 1 % len(pools)

	var attempts uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			r := rngState(uint64(t)*0xA5A5 + 3)
			var n uint64
			for i := 0; i < o.OpsPerThread; i++ {
				n++
				a := pools[0][nextRand(&r)%uint64(len(pools[0]))]
				bk := pools[s2][nextRand(&r)%uint64(len(pools[s2]))]
				txnTransfer(w, a, bk, true)
			}
			mu.Lock()
			attempts += n
			mu.Unlock()
		}()
	}
	wg.Wait()

	s := c.NewWorker().Stats()
	out := TxnConflictPoint{
		HotKeys:         hotKeys,
		Attempts:        attempts,
		Commits:         s.TxCommits,
		Conflicts:       s.TxConflicts,
		SerialFallbacks: s.TxSerialFallbacks,
	}
	if attempts > 0 {
		out.ConflictRate = float64(s.TxConflicts) / float64(attempts)
		out.SerialFallbackRate = float64(s.TxSerialFallbacks) / float64(attempts)
	}
	return out
}
