package txtrace

import (
	"fmt"
	"sync"
)

// Counters is the cumulative counter snapshot the engine's sampler hands to
// Tick once per second: the merged STM statistics across every shard domain
// plus the merged memcached command counters. The tracer fills in its own
// Reqs/Kept/Slow before storing the sample.
type Counters struct {
	Commits            uint64 `json:"commits"`
	Aborts             uint64 `json:"aborts"`
	StartSerial        uint64 `json:"start_serial"`
	InFlightSwitch     uint64 `json:"in_flight_switch"`
	AbortSerial        uint64 `json:"abort_serial"`
	SerialCommits      uint64 `json:"serial_commits"`
	WatchdogBackoffs   uint64 `json:"watchdog_backoffs"`
	WatchdogSerializes uint64 `json:"watchdog_serializes"`
	ROFastCommits      uint64 `json:"ro_fast_commits"`

	Ops       uint64 `json:"ops"` // memcached commands processed
	GetHits   uint64 `json:"get_hits"`
	GetMisses uint64 `json:"get_misses"`

	Reqs uint64 `json:"reqs"` // tracer: requests traced
	Kept uint64 `json:"kept"` // tracer: spans kept
	Slow uint64 `json:"slow"` // tracer: pathological spans captured
}

// Sample is one per-second entry: the second-over-second deltas of Counters
// plus the window p99. Deltas (not cumulative values) are stored so a scrape
// of the ring is directly plottable and the detector's history windows are
// trivially comparable.
type Sample struct {
	When     int64    `json:"when"`
	Delta    Counters `json:"delta"`
	P99Nanos int64    `json:"p99_ns"` // this second's window p99 (0 = idle)
}

// TimeSeries is a bounded per-second history of Samples. One writer (the
// sampler goroutine) pushes; readers snapshot under the same mutex — at 1 Hz
// contention is irrelevant, and the mutex keeps snapshot/reset exact, unlike
// the event rings where lock-freedom buys something.
type TimeSeries struct {
	mu   sync.Mutex
	buf  []Sample
	n    int // filled entries
	next int // write cursor
	prev Counters
	have bool // prev is valid (≥1 push since reset)

	p99Hist []int64 // trailing window p99s for the regression detector
}

// NewTimeSeries creates a ring holding seconds entries.
func NewTimeSeries(seconds int) *TimeSeries {
	if seconds < 8 {
		seconds = 8
	}
	return &TimeSeries{buf: make([]Sample, seconds)}
}

// Len returns the number of seconds of history currently held.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.n
}

// Snapshot returns the held samples, oldest first.
func (ts *TimeSeries) Snapshot() []Sample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Sample, 0, ts.n)
	start := ts.next - ts.n
	for i := 0; i < ts.n; i++ {
		out = append(out, ts.buf[(start+i+len(ts.buf))%len(ts.buf)])
	}
	return out
}

// push stores the delta sample for cumulative counters c, returning the
// stored sample and whether a previous sample existed (false on the first
// push after creation or reset, when no delta is computable).
func (ts *TimeSeries) push(when int64, c Counters, winP99 int64) (Sample, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if !ts.have {
		ts.prev = c
		ts.have = true
		return Sample{}, false
	}
	d := Counters{
		Commits:            c.Commits - ts.prev.Commits,
		Aborts:             c.Aborts - ts.prev.Aborts,
		StartSerial:        c.StartSerial - ts.prev.StartSerial,
		InFlightSwitch:     c.InFlightSwitch - ts.prev.InFlightSwitch,
		AbortSerial:        c.AbortSerial - ts.prev.AbortSerial,
		SerialCommits:      c.SerialCommits - ts.prev.SerialCommits,
		WatchdogBackoffs:   c.WatchdogBackoffs - ts.prev.WatchdogBackoffs,
		WatchdogSerializes: c.WatchdogSerializes - ts.prev.WatchdogSerializes,
		ROFastCommits:      c.ROFastCommits - ts.prev.ROFastCommits,
		Ops:                c.Ops - ts.prev.Ops,
		GetHits:            c.GetHits - ts.prev.GetHits,
		GetMisses:          c.GetMisses - ts.prev.GetMisses,
		Reqs:               c.Reqs - ts.prev.Reqs,
		Kept:               c.Kept - ts.prev.Kept,
		Slow:               c.Slow - ts.prev.Slow,
	}
	ts.prev = c
	s := Sample{When: when, Delta: d, P99Nanos: winP99}
	ts.buf[ts.next%len(ts.buf)] = s
	ts.next = (ts.next + 1) % len(ts.buf)
	if ts.n < len(ts.buf) {
		ts.n++
	}
	if winP99 > 0 {
		ts.p99Hist = append(ts.p99Hist, winP99)
		if len(ts.p99Hist) > 32 {
			ts.p99Hist = ts.p99Hist[len(ts.p99Hist)-32:]
		}
	}
	return s, true
}

// reset empties the history (prev is forgotten too, so the next push only
// re-seeds the baseline — a reset mid-run must not produce one giant delta).
func (ts *TimeSeries) reset() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.n = 0
	ts.next = 0
	ts.have = false
	ts.p99Hist = ts.p99Hist[:0]
}

// Detection thresholds. Absolute floors keep the detector quiet on idle or
// near-idle servers, where tiny denominators make any ratio look dramatic.
const (
	spikeFactor    = 4   // abort_spike: this second ≥ factor × trailing mean
	spikeMinAborts = 50  // ...and at least this many aborts this second
	stormPct       = 25  // serialization_storm: serial events ≥ pct% of commits
	stormMinSerial = 20  // ...and at least this many serial events
	p99Factor      = 4   // p99_regression: window p99 ≥ factor × trailing mean
	p99MinSamples  = 5   // ...with at least this much p99 history
	p99MinNanos    = 1e5 // ...and a window p99 of at least 100µs
	spikeHistory   = 8   // trailing seconds the abort mean is taken over
)

// detect judges the freshly pushed sample against the trailing history and
// returns any anomalies. Caller (Tick) applies the per-kind cooldown.
func (ts *TimeSeries) detect(s Sample) []Anomaly {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var out []Anomaly

	// Trailing abort mean over the seconds before this one.
	if ts.n > 1 {
		hist := ts.n - 1
		if hist > spikeHistory {
			hist = spikeHistory
		}
		var sum uint64
		// The newest sample sits at next-1; history is the hist entries
		// before it.
		for i := 0; i < hist; i++ {
			idx := (ts.next - 2 - i + 2*len(ts.buf)) % len(ts.buf)
			sum += ts.buf[idx].Delta.Aborts
		}
		mean := sum / uint64(hist)
		if s.Delta.Aborts >= spikeMinAborts && s.Delta.Aborts >= spikeFactor*max64(mean, 1) {
			out = append(out, Anomaly{Kind: "abort_spike",
				Detail: fmt.Sprintf("%d aborts/s vs trailing mean %d", s.Delta.Aborts, mean)})
		}
	}

	serial := s.Delta.StartSerial + s.Delta.InFlightSwitch + s.Delta.AbortSerial +
		s.Delta.WatchdogSerializes
	if serial >= stormMinSerial && serial*100 >= stormPct*max64(s.Delta.Commits, 1) {
		out = append(out, Anomaly{Kind: "serialization_storm",
			Detail: fmt.Sprintf("%d serializations/s against %d commits/s", serial, s.Delta.Commits)})
	}

	if s.Delta.WatchdogSerializes > 0 {
		out = append(out, Anomaly{Kind: "watchdog_serialize",
			Detail: fmt.Sprintf("starvation watchdog escalated %d thread(s) to serial", s.Delta.WatchdogSerializes)})
	}

	if s.P99Nanos >= p99MinNanos && len(ts.p99Hist) > p99MinSamples {
		// Mean of the history excluding the newest entry (push appended it).
		var sum int64
		for _, v := range ts.p99Hist[:len(ts.p99Hist)-1] {
			sum += v
		}
		mean := sum / int64(len(ts.p99Hist)-1)
		if mean > 0 && s.P99Nanos >= p99Factor*mean {
			out = append(out, Anomaly{Kind: "p99_regression",
				Detail: fmt.Sprintf("window p99 %dns vs trailing mean %dns", s.P99Nanos, mean)})
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
