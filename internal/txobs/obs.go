package txobs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterizes an Observer.
type Options struct {
	// Orecs sizes the per-orec conflict heat map (the runtime's orec-table
	// size). 0 disables orec-level aggregation (labels still work). For a
	// sharded engine this is the sum of every shard's orec-table size: each
	// shard's runtime records events with a disjoint orec base offset, so one
	// observer covers all domains without index collisions.
	Orecs int
	// Shards is the number of TM domains feeding this observer. >1 enables
	// the per-shard conflict-label heat map and the cross-shard consistency
	// check on the orec heat map. 0 and 1 mean a single (unsharded) domain.
	Shards int
	// RingCapacity is the per-sink event ring size (default 4096).
	RingCapacity int
}

// heatCell is one orec's aggregate: abort count plus the label of the last
// conflicting location that hashed there (label+1; 0 = none seen), plus the
// owning shard (shard+1; 0 = none seen). Since sharded runtimes record with
// disjoint orec bases, a cell seeing two different shards is a bug — counted
// in crossShard, asserted zero by the bench harness.
type heatCell struct {
	n     atomic.Uint64
	last  atomic.Uint32
	shard atomic.Int32
}

// shardCells is one shard's conflict-by-label heat map.
type shardCells struct {
	aborts [MaxLabels]atomic.Uint64
}

// Observer owns the aggregation state of the observability layer: per-kind
// event counters, the conflict heat map, serialization/abort cause maps, and
// the phase and command latency histograms. One Observer serves one cache
// (runtime); it persists across Enable/Disable so collected data survives
// turning tracing off.
type Observer struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	ringCap int

	kinds [kindN]atomic.Uint64

	orecHeat      []heatCell
	labelAborts   [MaxLabels]atomic.Uint64
	serialByLabel [MaxLabels]atomic.Uint64

	// Shard dimension (sharded engines): per-shard conflict labels and the
	// count of orec heat cells that saw events from more than one shard.
	shardHeat  []shardCells
	crossShard atomic.Uint64

	causeMu      sync.Mutex
	serialCauses map[string]uint64
	abortCauses  map[string]uint64

	phases [phaseN]Histogram
	cmds   sync.Map // command name -> *Histogram

	mu     sync.Mutex
	sinks  []*Sink
	global *Sink
}

// New creates a disabled Observer.
func New(opts Options) *Observer {
	if opts.RingCapacity <= 0 {
		opts.RingCapacity = 4096
	}
	o := &Observer{
		ringCap:      opts.RingCapacity,
		serialCauses: make(map[string]uint64),
		abortCauses:  make(map[string]uint64),
	}
	if opts.Orecs > 0 {
		o.orecHeat = make([]heatCell, opts.Orecs)
	}
	if opts.Shards > 1 {
		o.shardHeat = make([]shardCells, opts.Shards)
	}
	o.global = &Sink{obs: o, ring: NewRing(opts.RingCapacity), id: -1}
	return o
}

// Enable turns event recording on.
func (o *Observer) Enable() { o.enabled.Store(true) }

// Disable turns event recording off; collected data is retained.
func (o *Observer) Disable() { o.enabled.Store(false) }

// Enabled reports whether events are being recorded.
func (o *Observer) Enabled() bool { return o.enabled.Load() }

// NewSink registers a new per-thread recording sink with its own event ring.
func (o *Observer) NewSink() *Sink {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := &Sink{obs: o, ring: NewRing(o.ringCap), id: int32(len(o.sinks))}
	o.sinks = append(o.sinks, s)
	return s
}

// Record records a runtime-global event (watchdog escalations and other
// events without a thread context). No-op while disabled.
func (o *Observer) Record(ev *Event) { o.global.Record(ev) }

// aggregate folds one recorded event into the counters, cause maps, and the
// conflict heat map. Called from Sink.Record (enabled path only).
func (o *Observer) aggregate(ev *Event) {
	o.kinds[ev.Kind].Add(1)
	switch {
	case ev.Kind == KAbort:
		if ev.Orec >= 0 && int(ev.Orec) < len(o.orecHeat) {
			c := &o.orecHeat[ev.Orec]
			c.n.Add(1)
			c.last.Store(uint32(ev.Label) + 1)
			owner := ev.Shard + 1
			if prev := c.shard.Load(); prev == 0 {
				c.shard.CompareAndSwap(0, owner)
			} else if prev != owner {
				o.crossShard.Add(1)
			}
		}
		if int(ev.Label) < MaxLabels {
			o.labelAborts[ev.Label].Add(1)
		}
		if int(ev.Shard) < len(o.shardHeat) && int(ev.Label) < MaxLabels {
			o.shardHeat[ev.Shard].aborts[ev.Label].Add(1)
		}
		if ev.Cause != "" {
			o.addCause(&o.abortCauses, ev.Cause)
		}
	case ev.Kind == KAbortSerial:
		if int(ev.Label) < MaxLabels {
			o.serialByLabel[ev.Label].Add(1)
		}
		if ev.Cause != "" {
			o.addCause(&o.serialCauses, ev.Cause)
		}
	case ev.Kind.serializes():
		if ev.Cause != "" {
			o.addCause(&o.serialCauses, ev.Cause)
		}
	}
}

func (o *Observer) addCause(m *map[string]uint64, cause string) {
	o.causeMu.Lock()
	(*m)[cause]++
	o.causeMu.Unlock()
}

// RecordSerialCause counts a serialization cause without an event (the
// compatibility path for stm.SerializationProfile callers). No-op while
// disabled.
func (o *Observer) RecordSerialCause(cause string) {
	if !o.enabled.Load() {
		return
	}
	o.addCause(&o.serialCauses, cause)
}

// KindCount returns the number of events of kind k recorded.
func (o *Observer) KindCount(k Kind) uint64 { return o.kinds[k].Load() }

// CrossShardOrecConflicts returns how many conflict events landed on an orec
// heat cell already owned by a different shard. With disjoint per-shard orec
// bases this must stay zero; nonzero means two TM domains shared a
// synchronization word.
func (o *Observer) CrossShardOrecConflicts() uint64 { return o.crossShard.Load() }

// NumShards returns the shard count the observer was built for (1 when
// unsharded).
func (o *Observer) NumShards() int {
	if len(o.shardHeat) == 0 {
		return 1
	}
	return len(o.shardHeat)
}

// ObservePhase records one STM phase latency.
func (o *Observer) ObservePhase(p Phase, d time.Duration) {
	if !o.enabled.Load() {
		return
	}
	o.phases[p].Observe(d)
}

// ObserveCommand records one server-command latency.
func (o *Observer) ObserveCommand(cmd string, d time.Duration) {
	if !o.enabled.Load() {
		return
	}
	h, ok := o.cmds.Load(cmd)
	if !ok {
		h, _ = o.cmds.LoadOrStore(cmd, &Histogram{})
	}
	h.(*Histogram).Observe(d)
}

// SerialCauses returns the serialization causes, most frequent first (ties
// broken by cause name). This is the collection the legacy
// stm.SerializationProfile reads through.
func (o *Observer) SerialCauses() []CauseCount {
	o.causeMu.Lock()
	out := make([]CauseCount, 0, len(o.serialCauses))
	for c, n := range o.serialCauses {
		out = append(out, CauseCount{Cause: c, Count: n})
	}
	o.causeMu.Unlock()
	sortCauses(out)
	return out
}

// SerialAttribution returns how many abort-serial events carried a named
// label versus the total recorded — the attribution rate of the conflict
// heat map.
func (o *Observer) SerialAttribution() (named, total uint64) {
	for i := range o.serialByLabel {
		n := o.serialByLabel[i].Load()
		total += n
		if i != int(NoLabel) {
			named += n
		}
	}
	return named, total
}

// Events merges every ring's current contents, oldest first.
func (o *Observer) Events() []Event {
	o.mu.Lock()
	sinks := append([]*Sink(nil), o.sinks...)
	o.mu.Unlock()
	sinks = append(sinks, o.global)
	var out []Event
	for _, s := range sinks {
		out = append(out, s.ring.Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset zeroes every resettable aggregate: kind counters, heat map, cause
// maps, histograms, and the ring contents. The event sequence keeps counting
// so post-reset events still order after pre-reset ones.
func (o *Observer) Reset() {
	for i := range o.kinds {
		o.kinds[i].Store(0)
	}
	for i := range o.orecHeat {
		o.orecHeat[i].n.Store(0)
		o.orecHeat[i].last.Store(0)
		o.orecHeat[i].shard.Store(0)
	}
	for i := range o.labelAborts {
		o.labelAborts[i].Store(0)
		o.serialByLabel[i].Store(0)
	}
	for s := range o.shardHeat {
		for i := range o.shardHeat[s].aborts {
			o.shardHeat[s].aborts[i].Store(0)
		}
	}
	o.crossShard.Store(0)
	o.causeMu.Lock()
	clear(o.serialCauses)
	clear(o.abortCauses)
	o.causeMu.Unlock()
	for i := range o.phases {
		o.phases[i].Reset()
	}
	o.cmds.Range(func(_, v any) bool {
		v.(*Histogram).Reset()
		return true
	})
	o.mu.Lock()
	sinks := append([]*Sink(nil), o.sinks...)
	o.mu.Unlock()
	sinks = append(sinks, o.global)
	for _, s := range sinks {
		s.ring.reset()
	}
}

// RingDropped sums the wrap-loss counters of every ring: events overwritten
// before a reader could have snapshotted them. Exported as the ring_dropped
// gauge on the debug surfaces.
func (o *Observer) RingDropped() uint64 {
	o.mu.Lock()
	sinks := append([]*Sink(nil), o.sinks...)
	o.mu.Unlock()
	sinks = append(sinks, o.global)
	var n uint64
	for _, s := range sinks {
		n += s.ring.Dropped()
	}
	return n
}

// ---------------------------------------------------------------------------
// Reporting

// CauseCount is one attributed cause.
type CauseCount struct {
	Cause string `json:"cause"`
	Count uint64 `json:"count"`
}

// LabelCount is one label's aggregate.
type LabelCount struct {
	Label string `json:"label"`
	Count uint64 `json:"count"`
}

// OrecCount is one hot ownership record.
type OrecCount struct {
	Orec      int    `json:"orec"`
	Count     uint64 `json:"count"`
	LastLabel string `json:"last_label"`
	// Shard is the TM domain whose conflicts heated this orec (-1 = none
	// attributed yet). Disjoint per-shard orec bases make this single-valued.
	Shard int `json:"shard"`
}

// Report is a point-in-time structured view of everything the observer has
// collected; it marshals directly to JSON for the debug endpoint.
type Report struct {
	Enabled        bool                    `json:"enabled"`
	Events         uint64                  `json:"events"`
	Kinds          map[string]uint64       `json:"kinds"`
	SerialCauses   []CauseCount            `json:"serial_causes"`
	AbortCauses    []CauseCount            `json:"abort_causes"`
	ConflictLabels []LabelCount            `json:"conflict_labels"`
	SerialLabels   []LabelCount            `json:"serial_labels"`
	HotOrecs       []OrecCount             `json:"hot_orecs"`
	// Shards is the TM domain count; ShardConflicts is the conflict heat map
	// with the shard dimension ("s2/hash_bucket"), only populated when the
	// observer serves more than one shard. CrossShardOrecConflicts counts
	// conflicts whose orec heat cell was owned by another shard — zero by
	// construction when the domains are independent.
	Shards                  int          `json:"shards,omitempty"`
	ShardConflicts          []LabelCount `json:"shard_conflicts,omitempty"`
	CrossShardOrecConflicts uint64       `json:"cross_shard_orec_conflicts"`
	Phases         map[string]HistSnapshot `json:"phases"`
	Commands       map[string]HistSnapshot `json:"commands"`
}

func sortCauses(cs []CauseCount) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Cause < cs[j].Cause
	})
}

func sortLabels(ls []LabelCount) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Count != ls[j].Count {
			return ls[i].Count > ls[j].Count
		}
		return ls[i].Label < ls[j].Label
	})
}

// Report builds a Report, keeping the topOrecs hottest ownership records
// (0 = all non-zero).
func (o *Observer) Report(topOrecs int) Report {
	r := Report{
		Enabled:  o.enabled.Load(),
		Events:   o.seq.Load(),
		Kinds:    make(map[string]uint64, kindN),
		Phases:   make(map[string]HistSnapshot, phaseN),
		Commands: make(map[string]HistSnapshot),
	}
	for k := Kind(0); k < kindN; k++ {
		if n := o.kinds[k].Load(); n > 0 {
			r.Kinds[k.String()] = n
		}
	}
	r.SerialCauses = o.SerialCauses()
	o.causeMu.Lock()
	for c, n := range o.abortCauses {
		r.AbortCauses = append(r.AbortCauses, CauseCount{Cause: c, Count: n})
	}
	o.causeMu.Unlock()
	sortCauses(r.AbortCauses)
	for i := 0; i < NumLabels(); i++ {
		if n := o.labelAborts[i].Load(); n > 0 {
			r.ConflictLabels = append(r.ConflictLabels, LabelCount{Label: Label(i).String(), Count: n})
		}
		if n := o.serialByLabel[i].Load(); n > 0 {
			r.SerialLabels = append(r.SerialLabels, LabelCount{Label: Label(i).String(), Count: n})
		}
	}
	sortLabels(r.ConflictLabels)
	sortLabels(r.SerialLabels)
	for i := range o.orecHeat {
		if n := o.orecHeat[i].n.Load(); n > 0 {
			lc := "(unlabeled)"
			if l := o.orecHeat[i].last.Load(); l > 0 {
				lc = Label(l - 1).String()
			}
			r.HotOrecs = append(r.HotOrecs, OrecCount{
				Orec: i, Count: n, LastLabel: lc,
				Shard: int(o.orecHeat[i].shard.Load()) - 1,
			})
		}
	}
	if len(o.shardHeat) > 0 {
		r.Shards = len(o.shardHeat)
		for s := range o.shardHeat {
			for i := 0; i < NumLabels(); i++ {
				if n := o.shardHeat[s].aborts[i].Load(); n > 0 {
					r.ShardConflicts = append(r.ShardConflicts,
						LabelCount{Label: fmt.Sprintf("s%d/%s", s, Label(i)), Count: n})
				}
			}
		}
		sortLabels(r.ShardConflicts)
	}
	r.CrossShardOrecConflicts = o.crossShard.Load()
	sort.Slice(r.HotOrecs, func(i, j int) bool {
		if r.HotOrecs[i].Count != r.HotOrecs[j].Count {
			return r.HotOrecs[i].Count > r.HotOrecs[j].Count
		}
		return r.HotOrecs[i].Orec < r.HotOrecs[j].Orec
	})
	if topOrecs > 0 && len(r.HotOrecs) > topOrecs {
		r.HotOrecs = r.HotOrecs[:topOrecs]
	}
	for p := Phase(0); p < phaseN; p++ {
		if s := o.phases[p].Snapshot(); s.Count > 0 {
			r.Phases[p.String()] = s
		}
	}
	o.cmds.Range(func(k, v any) bool {
		if s := v.(*Histogram).Snapshot(); s.Count > 0 {
			r.Commands[k.(string)] = s
		}
		return true
	})
	return r
}

// String renders the report as a human-readable summary (mcbench -profile,
// make profile, mctrace replay).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx observability report (%d events):\n", r.Events)
	if len(r.Kinds) > 0 {
		keys := make([]string, 0, len(r.Kinds))
		for k := range r.Kinds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  event counts:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "    %10d  %s\n", r.Kinds[k], k)
		}
	}
	if len(r.SerialCauses) > 0 {
		b.WriteString("  serialization causes:\n")
		for _, c := range r.SerialCauses {
			fmt.Fprintf(&b, "    %10d  %s\n", c.Count, c.Cause)
		}
	}
	if len(r.AbortCauses) > 0 {
		b.WriteString("  abort causes:\n")
		for _, c := range r.AbortCauses {
			fmt.Fprintf(&b, "    %10d  %s\n", c.Count, c.Cause)
		}
	}
	if len(r.ConflictLabels) > 0 {
		b.WriteString("  conflict heat by structure:\n")
		for _, l := range r.ConflictLabels {
			fmt.Fprintf(&b, "    %10d  %s\n", l.Count, l.Label)
		}
	}
	if len(r.SerialLabels) > 0 {
		b.WriteString("  abort-serial by structure:\n")
		for _, l := range r.SerialLabels {
			fmt.Fprintf(&b, "    %10d  %s\n", l.Count, l.Label)
		}
	}
	if r.Shards > 1 {
		fmt.Fprintf(&b, "  shard domains: %d (cross-shard orec conflicts: %d)\n",
			r.Shards, r.CrossShardOrecConflicts)
		if len(r.ShardConflicts) > 0 {
			b.WriteString("  conflict heat by shard/structure:\n")
			for _, l := range r.ShardConflicts {
				fmt.Fprintf(&b, "    %10d  %s\n", l.Count, l.Label)
			}
		}
	}
	if len(r.HotOrecs) > 0 {
		b.WriteString("  hottest orecs:\n")
		for _, oc := range r.HotOrecs {
			fmt.Fprintf(&b, "    %10d  orec %-8d (%s)\n", oc.Count, oc.Orec, oc.LastLabel)
		}
	}
	if len(r.Phases) > 0 {
		b.WriteString("  phase latency:\n")
		for _, p := range sortedHistKeys(r.Phases) {
			fmt.Fprintf(&b, "    %-12s %s\n", p, r.Phases[p])
		}
	}
	if len(r.Commands) > 0 {
		b.WriteString("  command latency:\n")
		for _, c := range sortedHistKeys(r.Commands) {
			fmt.Fprintf(&b, "    %-12s %s\n", c, r.Commands[c])
		}
	}
	return b.String()
}

func sortedHistKeys(m map[string]HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the report in the Prometheus text exposition
// format. Every metric is prefixed "tm_".
func (r Report) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE tm_tracing_enabled gauge\ntm_tracing_enabled %d\n", b2i(r.Enabled))
	fmt.Fprintf(w, "# TYPE tm_events_total counter\n")
	for _, k := range sortedCountKeys(r.Kinds) {
		fmt.Fprintf(w, "tm_events_total{kind=%q} %d\n", k, r.Kinds[k])
	}
	fmt.Fprintf(w, "# TYPE tm_serializations_total counter\n")
	for _, c := range r.SerialCauses {
		fmt.Fprintf(w, "tm_serializations_total{cause=%q} %d\n", c.Cause, c.Count)
	}
	fmt.Fprintf(w, "# TYPE tm_conflicts_total counter\n")
	for _, l := range r.ConflictLabels {
		fmt.Fprintf(w, "tm_conflicts_total{structure=%q} %d\n", l.Label, l.Count)
	}
	fmt.Fprintf(w, "# TYPE tm_abort_serial_total counter\n")
	for _, l := range r.SerialLabels {
		fmt.Fprintf(w, "tm_abort_serial_total{structure=%q} %d\n", l.Label, l.Count)
	}
	if r.Shards > 1 {
		fmt.Fprintf(w, "# TYPE tm_shard_conflicts_total counter\n")
		for _, l := range r.ShardConflicts {
			if s, structure, ok := strings.Cut(l.Label, "/"); ok {
				fmt.Fprintf(w, "tm_shard_conflicts_total{shard=%q,structure=%q} %d\n", s, structure, l.Count)
			}
		}
		fmt.Fprintf(w, "# TYPE tm_cross_shard_orec_conflicts gauge\ntm_cross_shard_orec_conflicts %d\n",
			r.CrossShardOrecConflicts)
	}
	writePromHist := func(name, labelKey string, hists map[string]HistSnapshot) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, k := range sortedHistKeys(hists) {
			h := hists[k]
			var cum uint64
			for b := 0; b < histBuckets; b++ {
				if h.Buckets[b] == 0 {
					continue
				}
				cum += h.Buckets[b]
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
					name, labelKey, k, fmt.Sprintf("%g", float64(bucketUpper(b))/1e9), cum)
			}
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, k, h.Count)
			fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, labelKey, k,
				float64(h.Mean)*float64(h.Count)/1e9)
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, k, h.Count)
		}
	}
	writePromHist("tm_phase_latency_seconds", "phase", r.Phases)
	writePromHist("tm_command_latency_seconds", "command", r.Commands)
}

func sortedCountKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
