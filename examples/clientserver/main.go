// Clientserver: a real TCP memcached server (transactionalized branch) driven
// by the memslap workload generator over the text and binary protocols, plus
// a hand-rolled protocol session — the end-to-end path of the paper's
// experimental setup ("we ran the memcached server and memslap on the same
// machine").
//
//	go run ./examples/clientserver
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"

	"repro/internal/engine"
	"repro/internal/memslap"
	"repro/internal/server"
)

func main() {
	cache := engine.New(engine.Config{
		Branch:   engine.ITOnCommit,
		MemLimit: 32 << 20,
		Automove: true,
	})
	cache.Start()
	defer cache.Stop()

	srv, err := server.Listen(cache, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("tm-memcached (branch %s) listening on %s\n\n", cache.Branch(), srv.Addr())

	// A manual text-protocol session.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	r := bufio.NewReader(conn)
	send := func(lines ...string) {
		for _, l := range lines {
			fmt.Fprintf(conn, "%s\r\n", l)
		}
	}
	recv := func() string {
		line, err := r.ReadString('\n')
		if err != nil {
			log.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}
	send("set greeting 0 0 13", "hello, world!")
	fmt.Printf("  set greeting       -> %s\n", recv())
	send("get greeting")
	fmt.Printf("  get greeting       -> %s", recv())
	fmt.Printf(" / %s", recv())
	fmt.Printf(" / %s\n", recv())
	send("incr missing 1")
	fmt.Printf("  incr missing       -> %s\n", recv())
	send("set counter 0 0 1", "5", "incr counter 37")
	recv() // STORED
	fmt.Printf("  incr counter 37    -> %s\n", recv())
	conn.Close()

	// memslap over the text protocol, then the binary protocol (--binary, as
	// the paper runs it).
	for _, binary := range []bool{false, true} {
		res, err := memslap.RunNetwork(srv.Addr(), memslap.Config{
			Concurrency:   4,
			ExecuteNumber: 2000,
			KeySpace:      1000,
			ValueSize:     256,
			Binary:        binary,
		})
		if err != nil {
			log.Fatal(err)
		}
		proto := "text"
		if binary {
			proto = "binary"
		}
		fmt.Printf("\nmemslap --concurrency=4 --execute-number=2000 (%s protocol):\n", proto)
		fmt.Printf("  %d ops in %.3fs (%.0f ops/s), %d gets (%d hits), %d sets, %d errors\n",
			res.Ops, res.Duration.Seconds(), res.OpsPerSec(), res.Gets, res.Hits, res.Sets, res.Errors)
	}

	// Server-side statistics, as the stats command reports them.
	w := cache.NewWorker()
	s := w.Stats()
	fmt.Printf("\nserver stats: curr_items=%d total_items=%d evictions=%d tm_transactions=%d tm_serialized=%d\n",
		s.CurrItems, s.TotalItems, s.Evictions, s.STM.Commits,
		s.STM.InFlightSwitch+s.STM.StartSerial+s.STM.AbortSerial)
}
