package engine

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/item"
	"repro/internal/slab"
)

// Validate cross-checks the cache's internal structures while quiescent (no
// concurrent workers): every LRU entry must be linked and findable in the
// hash table under its own key, counts must agree across the hash table, the
// LRU lists and the stats counters, and slab accounting must cover every
// live item. It returns nil or a description of the first inconsistency.
//
// This is the deep invariant the branch matrix must preserve: the same
// engine state machine run under 14 different synchronization regimes has to
// end in structurally identical states.
func (c *shard) Validate() error {
	a := c.newAgent()
	var err error
	check := func(ctx access.Ctx) {
		err = nil

		// Walk every LRU list: items must be linked, alive in the table, and
		// doubly-linked consistently.
		lruCount := uint64(0)
		classCounts := make(map[int]uint64)
		for cls := 0; cls < c.lru.Classes(); cls++ {
			var prev *item.Item
			for it := c.lru.Head(ctx, cls); it != nil; it = item.AsItem(ctx.Any(it.Next)) {
				lruCount++
				classCounts[cls]++
				if it.Class != cls {
					err = fmt.Errorf("engine: item in LRU class %d has Class=%d", cls, it.Class)
					return
				}
				if !it.Linked(ctx) {
					err = fmt.Errorf("engine: LRU contains unlinked item (class %d)", cls)
					return
				}
				if got := item.AsItem(ctx.Any(it.Prev)); got != prev {
					err = fmt.Errorf("engine: LRU back-link broken in class %d", cls)
					return
				}
				key := make([]byte, it.KeyLen)
				ctx.MemcpyOut(key, it.Key, 0, it.KeyLen)
				if found := c.tab.Find(ctx, it.Hash, key); found != it {
					err = fmt.Errorf("engine: LRU item %q not findable in hash table", key)
					return
				}
				if rc := ctx.Volatile(it.Refcount); rc < 1 {
					err = fmt.Errorf("engine: linked item %q has refcount %d", key, rc)
					return
				}
				prev = it
			}
			if got := c.lru.Len(ctx, cls); got != classCounts[cls] {
				err = fmt.Errorf("engine: LRU class %d size %d, walk found %d", cls, got, classCounts[cls])
				return
			}
		}

		// Hash table population must equal the LRU population and the stats
		// counter.
		if hashItems := c.tab.Items(ctx); hashItems != lruCount {
			err = fmt.Errorf("engine: hash_items=%d but LRU holds %d", hashItems, lruCount)
			return
		}
		if curr := ctx.Word(c.gstats.CurrItems); curr != lruCount {
			err = fmt.Errorf("engine: curr_items=%d but LRU holds %d", curr, lruCount)
			return
		}

		// Slab accounting: for each class, pages*perPage = free + live.
		for cls := 0; cls < c.slabs.NumClasses(); cls++ {
			pages := c.slabs.PagesOf(ctx, cls)
			free := c.slabs.FreeChunks(ctx, cls)
			perPage := uint64(slab.PageSize / c.slabs.ChunkSize(cls))
			total := pages * perPage
			if free+classCounts[cls] != total {
				err = fmt.Errorf("engine: class %d accounting: pages=%d (chunks %d) free=%d live=%d",
					cls, pages, total, free, classCounts[cls])
				return
			}
		}
	}

	a.section(domains{cache: true, slabs: true, stats: true}, profile{volatiles: true, libc: true}, check)
	return err
}

// Expanding reports whether a hash-table expansion is in flight. The torture
// harness polls it to let migration finish before its invariant checks.
func (w *shardWorker) Expanding() bool {
	var exp bool
	w.section(domains{cache: true}, profile{volatiles: true}, func(ctx access.Ctx) {
		exp = w.c.tab.IsExpanding(ctx)
	})
	return exp
}

// ValidateQuiescent is Validate plus the checks that only hold once every
// worker has returned its references: each linked item's refcount must be
// exactly 1 (the link reference — anything higher is a leaked hold, the
// balanced-refcount invariant the torture harness asserts), and slab memory
// must be within its limit. Call only with no commands in flight.
func (c *shard) ValidateQuiescent() error {
	if err := c.Validate(); err != nil {
		return err
	}
	a := c.newAgent()
	var err error
	check := func(ctx access.Ctx) {
		err = nil
		for cls := 0; cls < c.lru.Classes(); cls++ {
			for it := c.lru.Head(ctx, cls); it != nil; it = item.AsItem(ctx.Any(it.Next)) {
				if rc := ctx.Volatile(it.Refcount); rc != 1 {
					key := make([]byte, it.KeyLen)
					ctx.MemcpyOut(key, it.Key, 0, it.KeyLen)
					err = fmt.Errorf("engine: quiescent item %q has refcount %d, want 1", key, rc)
					return
				}
			}
		}
		if got := c.slabs.Allocated(ctx); got > c.conf.MemLimit {
			err = fmt.Errorf("engine: slab memory %d exceeds limit %d", got, c.conf.MemLimit)
			return
		}
	}
	a.section(domains{cache: true, slabs: true}, profile{volatiles: true, libc: true}, check)
	return err
}
