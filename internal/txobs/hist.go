package txobs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket b counts
// observations with bits.Len64(ns) == b, i.e. durations in [2^(b-1), 2^b)
// nanoseconds; bucket 0 is exactly zero. 48 buckets reach ~78 hours.
const histBuckets = 48

// Histogram is a log-bucketed latency histogram safe for concurrent Observe
// and read. Quantiles are resolved to a bucket's upper bound, so they are
// upper estimates with at most 2x resolution — the trade that makes recording
// three atomic adds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// bucketUpper returns the exclusive upper bound of bucket b in nanoseconds.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 1
	}
	return uint64(1) << b
}

// HistSnapshot is a point-in-time copy of a histogram with derived quantiles.
type HistSnapshot struct {
	Count   uint64          `json:"count"`
	Mean    time.Duration   `json:"mean_ns"`
	P50     time.Duration   `json:"p50_ns"`
	P95     time.Duration   `json:"p95_ns"`
	P99     time.Duration   `json:"p99_ns"`
	Max     time.Duration   `json:"max_ns"`
	Buckets [histBuckets]uint64 `json:"-"`
}

// Snapshot copies the histogram and computes p50/p95/p99/max. The copy is not
// atomic with respect to concurrent Observe calls; each field is individually
// consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Max = time.Duration(h.max.Load())
	if s.Count > 0 {
		s.Mean = time.Duration(h.sum.Load() / s.Count)
	}
	var total uint64
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		total += s.Buckets[i]
	}
	q := func(p float64) time.Duration {
		if total == 0 {
			return 0
		}
		want := uint64(p * float64(total))
		if want == 0 {
			want = 1
		}
		var cum uint64
		for b := 0; b < histBuckets; b++ {
			cum += s.Buckets[b]
			if cum >= want {
				up := bucketUpper(b)
				if m := h.max.Load(); up > m {
					up = m // never report past the observed max
				}
				return time.Duration(up)
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// String renders the snapshot as a one-line summary.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v mean=%v",
		s.Count, s.P50, s.P95, s.P99, s.Max, s.Mean)
}

// Phase identifies an STM latency phase.
type Phase uint8

const (
	// PhaseFirstAbort measures source-transaction entry to its first abort.
	PhaseFirstAbort Phase = iota
	// PhaseBackoff measures one contention-manager backoff wait.
	PhaseBackoff
	// PhaseSerialWait measures waiting to acquire the serial lock's write side.
	PhaseSerialWait
	// PhaseCommit measures a successful commit's validation+publish protocol.
	PhaseCommit

	phaseN
)

var phaseNames = [phaseN]string{"first_abort", "backoff", "serial_wait", "commit"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}
