package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assoc"
	"repro/internal/fingerprint"
	"repro/internal/slab"
	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/tmctl"
	"repro/internal/txobs"
	"repro/internal/txtrace"
)

// Cache is the memcached engine under one synchronization branch, partitioned
// into Config.Shards independent TM domains. Each shard owns a complete
// engine instance — stm.Runtime (orec table, version clock, serial lock),
// hash table with its own incremental expander, slab allocator, per-class LRU
// heads, maintenance threads — so transactions on different shards share zero
// synchronization words. Single-key commands route by an avalanche mix of the
// key hash (see shardIndex; the bucket index and item-lock stripes consume
// the raw low bits, so shard choice stays independent of intra-shard
// placement); multi-gets split into per-shard groups that each ride the
// read-only fast path.
type Cache struct {
	conf   Config
	cfg    branchCfg
	shards []*shard

	// obs is the shared shard-aware observer: one collector spanning every
	// shard's runtime, with disjoint orec base offsets per shard (lock
	// branches: command latency only). Created on first EnableTracing.
	obs   atomic.Pointer[txobs.Observer]
	obsMu sync.Mutex

	// tracer is the request-scoped tracing layer (internal/txtrace): one
	// tracer spanning every shard, created unconditionally at New (mode off;
	// the idle cost is its memory). The sampler goroutine drives its
	// per-second time series while any tracing mode is active.
	tracer      *txtrace.Tracer
	samplerMu   sync.Mutex
	samplerStop chan struct{}
	samplerWG   sync.WaitGroup

	// ctl is the per-shard feedback controller (Config.TMCtl), nil when
	// disabled or on lock branches. Start/Stop bracket its sampling loop.
	ctl *tmctl.Controller

	// Workload fingerprinting (internal/fingerprint): fpObs is created on
	// first EnableFingerprint and lives for the cache's lifetime; fpLive is
	// non-nil only while sampling is on. See fingerprint.go.
	fpObs  atomic.Pointer[fingerprint.Observer]
	fpLive atomic.Pointer[fingerprint.Observer]
	fpMu   sync.Mutex
	fpStop chan struct{}
	fpWG   sync.WaitGroup
}

// New builds a cache for the given configuration. Call Start to launch the
// per-shard maintenance threads and clocks, and Stop to halt them.
func New(conf Config) *Cache {
	conf = conf.withDefaults()
	if conf.Shards == 0 {
		conf.Shards = runtime.GOMAXPROCS(0)
	}
	if conf.Shards < 1 {
		conf.Shards = 1
	}
	c := &Cache{conf: conf, cfg: configFor(conf.Branch)}
	per := conf
	per.MemLimit = conf.MemLimit / uint64(conf.Shards)
	if per.MemLimit < slab.PageSize {
		// A shard below one slab page could never store anything; the floor
		// may raise the effective total limit, the same rounding memcached's
		// page granularity imposes.
		per.MemLimit = slab.PageSize
	}
	if conf.Shards > 1 && c.cfg.tm && (conf.STM == nil || conf.STM.OrecBits == 0) {
		// Each shard holds ~1/N of the keys, so its orec table shrinks by
		// log2(N): constant total footprint (N full-size tables thrash the
		// cache that one table fits) and constant orec-per-key density, i.e.
		// the same false-conflict probability as the single-domain engine.
		// An explicit OrecBits override disables the scaling.
		bits := stm.DefaultOrecBits
		for n := conf.Shards; n > 1 && bits > 10; n >>= 1 {
			bits--
		}
		sc := stmConfigFor(c.cfg)
		if conf.STM != nil {
			sc = *conf.STM
		}
		sc.OrecBits = bits
		per.STM = &sc
	}
	c.shards = make([]*shard, conf.Shards)
	for i := range c.shards {
		c.shards[i] = newShard(per)
	}
	// Request tracing: one tracer for the whole cache. The head sampler
	// inherits the fault injector's seed when one is configured, so a torture
	// run's trace population is reproducible from the same seed that drives
	// its fault schedule. Shard coordinates are stamped on the runtimes up
	// front so span events carry them even while the aggregate observer is
	// off.
	topt := txtrace.Options{}
	if conf.Fault != nil {
		topt.Seed = conf.Fault.Seed()
	}
	c.tracer = txtrace.New(topt)
	if c.cfg.tm {
		base := 0
		for i, s := range c.shards {
			s.rt.SetShardInfo(i, base)
			base += s.rt.OrecCount()
		}
	}
	if conf.TMCtl != nil && c.cfg.tm && (per.STM == nil || !per.STM.NoSerialLock) {
		c.ctl = tmctl.New(*conf.TMCtl, c.Runtimes(), c.tracer)
	}
	return c
}

// shard0 exposes the first shard to in-package white-box tests.
func (c *Cache) shard0() *shard { return c.shards[0] }

// retryCondSync reports whether the Retry-based maintenance wake-up is
// active (identical on every shard; shard 0 answers).
func (c *Cache) retryCondSync() bool { return c.shards[0].retryCondSync() }

// txRefOpt reports whether the §5 transactional-refcount optimization is
// active (identical on every shard).
func (w *Worker) txRefOpt() bool { return w.ws[0].txRefOpt() }

// shardIndex picks the TM domain for a key hash. The raw hash is FNV-1a,
// whose prime (0x100000001B3) maps a change in the key's last byte to bits
// 40+ and 0-8 — bits 32-39 barely move, so routing on any fixed bit range
// sends whole families of similar keys ("key-0001".."key-0999") to one
// shard. A finalizing mixer (the murmur3 fmix64 avalanche) spreads every
// input bit over the whole word first; the result is also independent of the
// low bits assoc.bucketFor consumes inside the shard.
func shardIndex(hv uint64, n int) int {
	hv ^= hv >> 33
	hv *= 0xff51afd7ed558ccd
	hv ^= hv >> 33
	return int(hv % uint64(n))
}

// NumShards returns the number of independent TM domains.
func (c *Cache) NumShards() int { return len(c.shards) }

// ShardOf reports which TM domain key routes to (workload construction:
// benchmarks and tests that need same-shard or cross-shard key sets).
func (c *Cache) ShardOf(key []byte) int {
	if len(c.shards) == 1 {
		return 0
	}
	return shardIndex(assoc.Hash(key), len(c.shards))
}

// ShardOf reports which TM domain key routes to (the event-loop transport
// uses it post-parse to keep a connection on a shard-affine worker queue).
func (w *Worker) ShardOf(key []byte) int { return w.c.ShardOf(key) }

// Branch returns the branch the cache runs under.
func (c *Cache) Branch() Branch { return c.conf.Branch }

// Runtime returns shard 0's STM runtime (nil for lock branches). Callers that
// want the whole picture use Runtimes or ShardStats; single-shard callers
// (the default on a single-core host) see the one runtime they expect.
func (c *Cache) Runtime() *stm.Runtime { return c.shards[0].rt }

// Runtimes returns every shard's STM runtime, or nil for lock branches.
func (c *Cache) Runtimes() []*stm.Runtime {
	if c.shards[0].rt == nil {
		return nil
	}
	out := make([]*stm.Runtime, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.rt
	}
	return out
}

// ShardStats returns a per-shard snapshot of the runtime counters (empty for
// lock branches) — the per-shard commit/abort/ro_fast_commit breakdown the
// shard-sweep benchmark reports.
func (c *Cache) ShardStats() []stm.Snapshot {
	if c.shards[0].rt == nil {
		return nil
	}
	out := make([]stm.Snapshot, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.rt.Stats()
	}
	return out
}

// Start launches every shard's clock thread and maintenance threads, and the
// feedback controller's sampling loop when one is configured.
func (c *Cache) Start() {
	for _, s := range c.shards {
		s.Start()
	}
	if c.ctl != nil {
		c.ctl.Start()
	}
}

// Stop halts every shard's maintenance threads and waits for them, and stops
// the tracing sampler if one is running.
func (c *Cache) Stop() {
	if c.ctl != nil {
		c.ctl.Stop()
	}
	c.DisableFingerprint()
	c.stopSampler()
	c.fpWG.Wait()
	for _, s := range c.shards {
		s.Stop()
	}
}

// SetTime forces the volatile clock on every shard (tests of expiry and
// flush_all).
func (c *Cache) SetTime(unix uint64) {
	for _, s := range c.shards {
		s.SetTime(unix)
	}
}

// Now reads the volatile clock directly (nontransactional callers). All
// shards tick from the same wall clock; shard 0 answers.
func (c *Cache) Now() uint64 { return c.shards[0].Now() }

// EnableTracing turns on the transaction observability layer and returns its
// observer: ONE collector shared by every shard, sized to the sum of the
// shards' orec tables, with each runtime recording at a disjoint orec base
// offset and stamping its shard index on every event. Cross-shard orec
// collisions are therefore impossible by construction — the observer's
// cross-shard conflict counter stays zero while the domains are independent.
// On lock branches only command latency is collected. Safe to call
// repeatedly; the same observer is returned each time.
func (c *Cache) EnableTracing() *txobs.Observer {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	o := c.obs.Load()
	if o == nil {
		opts := txobs.Options{Shards: len(c.shards)}
		if c.shards[0].rt != nil {
			for _, s := range c.shards {
				opts.Orecs += s.rt.OrecCount()
			}
		}
		o = txobs.New(opts)
		c.obs.Store(o)
	}
	if c.shards[0].rt != nil {
		base := 0
		for i, s := range c.shards {
			s.rt.AttachTracing(o, i, base)
			base += s.rt.OrecCount()
		}
	}
	o.Enable()
	return o
}

// DisableTracing stops event recording on every shard; collected data stays
// queryable through Observer.
func (c *Cache) DisableTracing() {
	for _, s := range c.shards {
		if s.rt != nil {
			s.rt.DisableTracing()
		}
	}
	if o := c.obs.Load(); o != nil {
		o.Disable()
	}
}

// Observer returns the shared observability collector, or nil if tracing was
// never enabled on this cache.
func (c *Cache) Observer() *txobs.Observer { return c.obs.Load() }

// Tracer returns the cache's request tracer (never nil; mode off by default).
func (c *Cache) Tracer() *txtrace.Tracer { return c.tracer }

// Controller returns the feedback controller, or nil when Config.TMCtl was
// not set (or the branch has no TM domains to control).
func (c *Cache) Controller() *tmctl.Controller { return c.ctl }

// EnableTxTrace switches request tracing to mode (sampled or full), enables
// orec-owner attribution on every shard runtime, and starts the per-second
// sampler that feeds the time-series ring and anomaly detector. Passing
// ModeOff here is equivalent to DisableTxTrace.
func (c *Cache) EnableTxTrace(mode txtrace.Mode) {
	if mode == txtrace.ModeOff {
		c.DisableTxTrace()
		return
	}
	if c.cfg.tm {
		for _, s := range c.shards {
			s.rt.EnableOwnerTracking()
		}
	}
	c.tracer.SetMode(mode)
	c.startSampler()
}

// DisableTxTrace turns request tracing off (requests go back to the one-
// atomic-load path) and stops the sampler. Collected spans, dumps and the
// time series stay queryable.
func (c *Cache) DisableTxTrace() {
	c.tracer.SetMode(txtrace.ModeOff)
	c.stopSampler()
}

// startSampler launches the 1 Hz tick goroutine once; subsequent calls while
// it runs are no-ops.
func (c *Cache) startSampler() {
	c.samplerMu.Lock()
	defer c.samplerMu.Unlock()
	if c.samplerStop != nil {
		return
	}
	stop := make(chan struct{})
	c.samplerStop = stop
	w := c.NewWorker()
	c.samplerWG.Add(1)
	go func() {
		defer c.samplerWG.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.tracer.Tick(c.traceCounters(w))
			}
		}
	}()
}

// stopSampler halts the tick goroutine and waits for it.
func (c *Cache) stopSampler() {
	c.samplerMu.Lock()
	stop := c.samplerStop
	c.samplerStop = nil
	c.samplerMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	c.samplerWG.Wait()
}

// traceCounters snapshots the cumulative counters the time series tracks,
// merged across shards, through the sampler's own worker.
func (c *Cache) traceCounters(w *Worker) txtrace.Counters {
	s := w.Stats()
	return txtrace.Counters{
		Commits:            s.STM.Commits,
		Aborts:             s.STM.Aborts,
		StartSerial:        s.STM.StartSerial,
		InFlightSwitch:     s.STM.InFlightSwitch,
		AbortSerial:        s.STM.AbortSerial,
		SerialCommits:      s.STM.SerialCommits,
		WatchdogBackoffs:   s.STM.WatchdogBackoffs,
		WatchdogSerializes: s.STM.WatchdogSerializes,
		ROFastCommits:      s.STM.ROFastCommits,
		Ops:                s.Aggregated.Ops(),
		GetHits:            s.Aggregated.GetHits,
		GetMisses:          s.Aggregated.GetMisses,
	}
}

// Validate cross-checks every shard's internal structures while quiescent;
// see shard.Validate for the invariants.
func (c *Cache) Validate() error {
	for i, s := range c.shards {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ValidateQuiescent is Validate plus the balanced-refcount and memory-limit
// checks, summed per shard. Call only with no commands in flight.
func (c *Cache) ValidateQuiescent() error {
	for i, s := range c.shards {
		if err := s.ValidateQuiescent(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Worker is one worker thread's handle on the cache: a per-shard TM context
// and statistics block behind a hash router. Not safe for concurrent use
// (like the shard workers it wraps).
type Worker struct {
	c  *Cache
	ws []*shardWorker
}

// NewWorker registers a new worker across all shards.
func (c *Cache) NewWorker() *Worker {
	w := &Worker{c: c, ws: make([]*shardWorker, len(c.shards))}
	for i, s := range c.shards {
		w.ws[i] = s.newWorker()
	}
	return w
}

// pick routes a hash to its shard's worker. Every key is hashed exactly
// once per command: the same 64-bit value routes the shard here (mixed, see
// shardIndex) and indexes the shard's bucket array and lock stripes inside
// (raw low bits).
func (w *Worker) pick(hv uint64) *shardWorker {
	if len(w.ws) == 1 {
		return w.ws[0]
	}
	return w.ws[shardIndex(hv, len(w.ws))]
}

// Get looks up key and returns a copy of its value.
func (w *Worker) Get(key []byte) (val []byte, flags uint32, cas uint64, found bool) {
	hv := assoc.Hash(key)
	return w.pick(hv).get(hv, key, false, 0)
}

// GetAndTouch is the gat command: fetch and update the expiry in one item
// critical section.
func (w *Worker) GetAndTouch(key []byte, exptime uint64) (val []byte, flags uint32, cas uint64, found bool) {
	hv := assoc.Hash(key)
	return w.pick(hv).get(hv, key, true, exptime)
}

// GetMulti looks up keys and returns a result per key, in order.
//
// Keys group by shard, and each shard's group runs through that shard's
// batched read-only path (groups of MultiGetBatch, one RO transaction each).
// Snapshot isolation is therefore PER SHARD, not global: keys served by one
// shard are mutually consistent within a batch group, but a multi-get
// spanning shards may observe different shards at different instants — the
// same semantics a client gets from a cluster of independent memcached
// nodes, which is what the shards are.
func (w *Worker) GetMulti(keys [][]byte) []GetResult {
	hvs := make([]uint64, len(keys))
	for i, k := range keys {
		hvs[i] = assoc.Hash(k)
	}
	if len(w.ws) == 1 {
		return w.ws[0].getMulti(keys, hvs)
	}
	out := make([]GetResult, len(keys))
	groups := make([][]int, len(w.ws))
	for i := range keys {
		s := shardIndex(hvs[i], len(w.ws))
		groups[s] = append(groups[s], i)
	}
	sub := make([][]byte, 0, len(keys))
	subHvs := make([]uint64, 0, len(keys))
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sub, subHvs = sub[:0], subHvs[:0]
		for _, i := range idxs {
			sub = append(sub, keys[i])
			subHvs = append(subHvs, hvs[i])
		}
		res := w.ws[s].getMulti(sub, subHvs)
		for j, i := range idxs {
			out[i] = res[j]
		}
	}
	return out
}

// Set stores key=value unconditionally.
func (w *Worker) Set(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModeSet, hv, key, flags, exptime, value, 0)
}

// Add stores only if the key is absent.
func (w *Worker) Add(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModeAdd, hv, key, flags, exptime, value, 0)
}

// Replace stores only if the key is present.
func (w *Worker) Replace(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModeReplace, hv, key, flags, exptime, value, 0)
}

// Append appends value to an existing item.
func (w *Worker) Append(key []byte, value []byte) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModeAppend, hv, key, 0, 0, value, 0)
}

// Prepend prepends value to an existing item.
func (w *Worker) Prepend(key []byte, value []byte) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModePrepend, hv, key, 0, 0, value, 0)
}

// CAS stores only if the item's CAS id still equals casUnique.
func (w *Worker) CAS(key []byte, flags uint32, exptime uint64, value []byte, casUnique uint64) StoreResult {
	hv := assoc.Hash(key)
	return w.pick(hv).store(ModeCAS, hv, key, flags, exptime, value, casUnique)
}

// Delete removes key; reports whether it existed.
func (w *Worker) Delete(key []byte) bool {
	hv := assoc.Hash(key)
	return w.pick(hv).del(hv, key)
}

// Incr adds delta to a decimal value in place.
func (w *Worker) Incr(key []byte, delta uint64) (uint64, DeltaResult) {
	hv := assoc.Hash(key)
	return w.pick(hv).delta(hv, key, delta, false)
}

// Decr subtracts delta, saturating at zero.
func (w *Worker) Decr(key []byte, delta uint64) (uint64, DeltaResult) {
	hv := assoc.Hash(key)
	return w.pick(hv).delta(hv, key, delta, true)
}

// Touch updates an item's expiry time; reports whether it existed.
func (w *Worker) Touch(key []byte, exptime uint64) bool {
	hv := assoc.Hash(key)
	return w.pick(hv).touch(hv, key, exptime)
}

// FlushAll marks everything stored before now as expired, on every shard.
func (w *Worker) FlushAll() {
	for _, sw := range w.ws {
		sw.FlushAll()
	}
}

// CacheNow reads the volatile clock the way an operation would.
func (w *Worker) CacheNow() uint64 { return w.ws[0].CacheNow() }

// Expanding reports whether any shard has a hash-table expansion in flight.
func (w *Worker) Expanding() bool {
	for _, sw := range w.ws {
		if sw.Expanding() {
			return true
		}
	}
	return false
}

// Observer exposes the cache's shared observability collector to the
// protocol layer, or nil when tracing was never enabled.
func (w *Worker) Observer() *txobs.Observer { return w.c.Observer() }

// Tracer exposes the cache's request tracer (never nil).
func (w *Worker) Tracer() *txtrace.Tracer { return w.c.Tracer() }

// Controller exposes the feedback controller to the protocol layer (nil when
// not configured).
func (w *Worker) Controller() *tmctl.Controller { return w.c.Controller() }

// SetTxTrace installs (nil: removes) a request-trace sink on every shard
// thread this worker owns: while set, each STM event of the worker's
// transactions — whatever shard the command routes to — is delivered to the
// sink. Lock branches have no TM contexts and the call is a no-op there.
func (w *Worker) SetTxTrace(sink stm.TraceSink) {
	for _, sw := range w.ws {
		if sw.tctx != nil {
			tm.SetTrace(sw.tctx, sink)
		}
	}
}

// NumShards reports the TM domain count, for stats output.
func (w *Worker) NumShards() int { return len(w.ws) }

// Runtimes exposes the per-shard STM runtimes (nil on lock branches), so the
// stats surface can report each shard's live algorithm.
func (w *Worker) Runtimes() []*stm.Runtime { return w.c.Runtimes() }

// ShardStats returns each shard's STM snapshot in shard order, for the
// per-domain breakdown in `stats tm` and the shard bench sweep.
func (w *Worker) ShardStats() []stm.Snapshot { return w.c.ShardStats() }

// Stats aggregates every shard: per-thread blocks and global counters sum
// across shards on read, and the STM snapshot is the field-wise sum of the
// per-shard runtime snapshots.
func (w *Worker) Stats() Snapshot {
	var s Snapshot
	for _, sw := range w.ws {
		ss := sw.Stats()
		s.Aggregated = s.Aggregated.Add(ss.Aggregated)
		s.CurrItems += ss.CurrItems
		s.TotalItems += ss.TotalItems
		s.CurrBytes += ss.CurrBytes
		s.Evictions += ss.Evictions
		s.Expired += ss.Expired
		s.Reassigned += ss.Reassigned
		s.HashExpands += ss.HashExpands
		s.HashItems += ss.HashItems
		s.HashBuckets += ss.HashBuckets
		s.SlabBytes += ss.SlabBytes
		s.TxCommits += ss.TxCommits
		s.TxConflicts += ss.TxConflicts
		s.TxSerialFallbacks += ss.TxSerialFallbacks
		s.STM = s.STM.Add(ss.STM)
	}
	return s
}

// ResetStats zeroes the command counters ("stats reset") on every shard —
// per-thread blocks, global event counters, runtime stats — while gauges
// (curr_items, bytes) survive. The shared observer spans all shards and is
// reset exactly once, whatever the current tracing state: toggling tracing
// mid-run attaches/detaches runtimes but never splits the observer, so a
// reset cannot double-clear one shard's view or miss another's. The request
// tracer gets the same treatment: it is cache-global by construction, so the
// slowlog and time-series rings are cleared exactly once per reset whatever
// the mode toggle is doing concurrently (Tracer.Reset clears data only —
// mode, seed and sampler ordinals survive).
func (w *Worker) ResetStats() {
	for _, sw := range w.ws {
		sw.ResetStats()
	}
	if o := w.c.Observer(); o != nil {
		o.Reset()
	}
	w.c.Tracer().Reset()
	// The controller is cache-global like the tracer: its swap counters clear
	// exactly once per reset, and only the counters — modes, learned base
	// configs and dwell clocks are state, not statistics.
	if w.c.ctl != nil {
		w.c.ctl.ResetSwapCounters()
	}
	// The fingerprint observer spans every shard (one fingerprint.Shard per
	// TM domain plus the cache-global txn-phase histograms), so like the
	// observer and tracer above it clears exactly once per reset — never
	// once per shard — whatever an Enable/Disable toggle is doing
	// concurrently. Enabled-state and recorder bindings survive: reset
	// clears windows, not wiring.
	if o := w.c.Fingerprint(); o != nil {
		o.Reset()
	}
}

// SlabStats reports per-class slab allocator detail, merged across shards
// (chunk-size geometry is identical on every shard, so classes align).
func (w *Worker) SlabStats() []SlabClassStat {
	merged := make(map[int]SlabClassStat)
	for _, sw := range w.ws {
		for _, st := range sw.SlabStats() {
			m := merged[st.Class]
			m.Class, m.ChunkSize = st.Class, st.ChunkSize
			m.Pages += st.Pages
			m.FreeChunks += st.FreeChunks
			m.UsedChunks += st.UsedChunks
			merged[st.Class] = m
		}
	}
	out := make([]SlabClassStat, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	sortSlabStats(out)
	return out
}

func sortSlabStats(s []SlabClassStat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Class > s[j].Class; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
