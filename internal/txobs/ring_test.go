package txobs

import (
	"sync"
	"testing"
)

// TestRingOverflowAttribution hammers several sinks of one observer past
// their ring capacity while a reader snapshots concurrently, and checks the
// overflow contract: every drop is counted in the dropped counter, and no
// surviving event is ever attributed to the wrong recorder — the event in a
// wrapped slot keeps its own shard/thread fields, the counter owns the loss.
// Run under -race this also proves the lock-free ring discipline.
func TestRingOverflowAttribution(t *testing.T) {
	const (
		sinks   = 4
		perSink = 1000
		ringCap = 64 // power of two: NewRing keeps it exact
	)
	o := New(Options{Shards: sinks, RingCapacity: ringCap})
	o.Enable()

	ss := make([]*Sink, sinks)
	for i := range ss {
		ss[i] = o.NewSink()
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range o.Events() {
				if ev.Shard != ev.Thread {
					t.Errorf("mid-run mis-attribution: shard %d in thread %d's ring", ev.Shard, ev.Thread)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < sinks; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSink; i++ {
				// Each recorder stamps its own sink id as the shard, so any
				// event whose Shard disagrees with its ring's Thread id was
				// mis-attributed by an overwrite.
				ss[s].Record(&Event{Kind: KBegin, Orec: -1, Shard: int32(s)})
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	for s, sk := range ss {
		if got := sk.Ring().Recorded(); got != perSink {
			t.Errorf("sink %d recorded %d events, want %d", s, got, perSink)
		}
		if got := sk.Ring().Dropped(); got != perSink-ringCap {
			t.Errorf("sink %d dropped %d, want %d", s, got, perSink-ringCap)
		}
	}
	if got, want := o.RingDropped(), uint64(sinks*(perSink-ringCap)); got != want {
		t.Errorf("RingDropped() = %d, want %d", got, want)
	}

	for _, ev := range o.Events() {
		if ev.Shard != ev.Thread {
			t.Errorf("final mis-attribution: shard %d in thread %d's ring", ev.Shard, ev.Thread)
		}
	}

	// Reset must rewind the loss counters with the contents: post-reset
	// recordings are not wrap losses.
	o.Reset()
	if got := o.RingDropped(); got != 0 {
		t.Errorf("RingDropped() = %d after Reset, want 0", got)
	}
	ss[0].Record(&Event{Kind: KBegin, Orec: -1})
	if got := o.RingDropped(); got != 0 {
		t.Errorf("RingDropped() = %d after one post-reset event, want 0", got)
	}
}
