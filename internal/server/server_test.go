package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

func startServer(t *testing.T, b engine.Branch) (*Server, *engine.Cache) {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8})
	c.Start()
	s, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return s, c
}

func roundTrip(t *testing.T, addr, send string, wantPrefix string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(line, wantPrefix) {
		t.Errorf("reply %q, want prefix %q", line, wantPrefix)
	}
	return line
}

func TestServeTextOverTCP(t *testing.T) {
	s, _ := startServer(t, engine.Baseline)
	roundTrip(t, s.Addr(), "set k 0 0 5\r\nhello\r\n", "STORED")
	roundTrip(t, s.Addr(), "version\r\n", "VERSION")
}

func TestConnectionsShareTheCache(t *testing.T) {
	s, _ := startServer(t, engine.ITOnCommit)
	roundTrip(t, s.Addr(), "set shared 0 0 3\r\nabc\r\n", "STORED")

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "get shared\r\n")
	r := bufio.NewReader(conn)
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "VALUE shared 0 3") {
		t.Errorf("second connection missed: %q", line)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	s, _ := startServer(t, engine.IPOnCommit)
	const conns = 16
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for op := 0; op < 30; op++ {
				key := fmt.Sprintf("k-%d-%d", i, op%5)
				fmt.Fprintf(conn, "set %s 0 0 2\r\nvv\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || line != "STORED\r\n" {
					t.Errorf("set: %q %v", line, err)
					return
				}
				fmt.Fprintf(conn, "get %s\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VALUE") {
					t.Errorf("get: %q %v", line, err)
					return
				}
				r.ReadString('\n') // data
				r.ReadString('\n') // END
			}
		}()
	}
	wg.Wait()
}

func TestCloseTerminates(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.Semaphore, HashPower: 8})
	c.Start()
	defer c.Stop()
	s, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close must be idempotent, got %v", err)
	}
	// The held connection must have been torn down.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still alive after Close")
	}
}

func startServerConfig(t *testing.T, b engine.Branch, cfg Config) *Server {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8})
	c.Start()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := ListenConfig(c, cfg)
	if err != nil {
		t.Fatalf("ListenConfig: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return s
}

func TestMaxConnsBackpressure(t *testing.T) {
	s := startServerConfig(t, engine.Semaphore, Config{MaxConns: 2})

	// Occupy both slots with live connections.
	var held []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "version\r\n")
		if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
			t.Fatalf("held conn %d not served: %v", i, err)
		}
		held = append(held, conn)
	}

	// A third dial connects at TCP level (kernel backlog) but must not be
	// served until a slot frees.
	extra, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	fmt.Fprintf(extra, "version\r\n")
	extra.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := bufio.NewReader(extra).ReadString('\n'); err == nil {
		t.Fatal("third connection served while both slots were held")
	}

	// Free one slot; the queued connection must now be served.
	held[0].Close()
	extra.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(extra).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("queued connection not served after slot freed: %q %v", line, err)
	}
}

func TestGracefulDrainFinishesInFlightCommand(t *testing.T) {
	s := startServerConfig(t, engine.IP, Config{DrainTimeout: 5 * time.Second})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send a command header; hold back the data block so the command is
	// in flight when Close begins.
	fmt.Fprintf(conn, "set drained 0 0 5\r\nhel")
	time.Sleep(50 * time.Millisecond) // let the server start the command

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	time.Sleep(50 * time.Millisecond) // Close is now draining
	fmt.Fprintf(conn, "lo\r\n")
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || line != "STORED\r\n" {
		t.Fatalf("in-flight command not drained: %q %v", line, err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestIdleConnectionsReaped(t *testing.T) {
	s := startServerConfig(t, engine.Semaphore, Config{IdleTimeout: 100 * time.Millisecond})

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// First command succeeds; then sit idle past the timeout.
	fmt.Fprintf(conn, "version\r\n")
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatalf("first command: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("idle connection not reaped")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.ConnErrors().Timeout.Load() == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("conn_errors_timeout = %d, want 1", s.ConnErrors().Timeout.Load())
}

func TestAcceptCloseRace(t *testing.T) {
	// Hammer the accept/Close interleaving: every dialed connection must be
	// torn down even when it lands concurrently with Close. Run detects a
	// leak as a goroutine writing to a closed wg or a stuck wg.Wait.
	for i := 0; i < 20; i++ {
		c := engine.New(engine.Config{Branch: engine.Semaphore, HashPower: 8})
		c.Start()
		s, err := Listen(c, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := net.Dial("tcp", s.Addr())
				if err == nil {
					conn.Close()
				}
			}()
		}
		s.Close() // must not leak a handler past wg.Wait
		wg.Wait()
		c.Stop()
	}
}

func TestStatsReportsConnErrors(t *testing.T) {
	s := startServerConfig(t, engine.Semaphore, Config{})
	// Provoke a protocol error: a binary frame with a truncated body.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[11] = 10 // bodyLen=10, never sent
	conn.Write(hdr)
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.ConnErrors().Protocol.Load() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.ConnErrors().Protocol.Load(); got != 1 {
		t.Fatalf("conn_errors_protocol = %d, want 1", got)
	}

	line := roundTrip(t, s.Addr(), "stats\r\n", "STAT")
	_ = line
}
