// Command memslap is the load generator of the paper's evaluation: a
// fixed-operation-count, 9:1 get/set client matching
//
//	memslap --concurrency=x --execute-number=625000 --binary
//
// pointed at a running memcached (cmd/memcached or the real thing).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/memslap"
)

func main() {
	var (
		addr    = flag.String("servers", "127.0.0.1:11211", "server address")
		conc    = flag.Int("concurrency", 1, "number of client connections")
		execNum = flag.Int("execute-number", 10000, "operations per connection")
		binary  = flag.Bool("binary", false, "use the binary protocol")
		keys    = flag.Int("keyspace", 10000, "distinct keys")
		vsize   = flag.Int("value-size", 1024, "value size in bytes")
		setFrac = flag.Float64("set-fraction", 0.1, "fraction of sets")
		zipf    = flag.Bool("zipf", false, "Zipf-skewed key popularity (hot keys)")
		reconn  = flag.Int("reconnect", 0, "re-dial each connection every N operations (0 = never)")
	)
	flag.Parse()

	res, err := memslap.RunNetwork(*addr, memslap.Config{
		Concurrency:   *conc,
		ExecuteNumber: *execNum,
		Binary:        *binary,
		KeySpace:      *keys,
		ValueSize:     *vsize,
		SetFraction:   *setFrac,
		Zipf:          *zipf,
		Reconnect:     *reconn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ops        %d\n", res.Ops)
	fmt.Printf("gets       %d (hits %d, %.1f%%)\n", res.Gets, res.Hits, 100*float64(res.Hits)/float64(max(res.Gets, 1)))
	fmt.Printf("sets       %d\n", res.Sets)
	fmt.Printf("errors     %d\n", res.Errors)
	fmt.Printf("time       %.3fs\n", res.Duration.Seconds())
	fmt.Printf("throughput %.0f ops/s\n", res.OpsPerSec())
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
