package protocol

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
)

func newShardedProtoCache(t *testing.T, b engine.Branch) *engine.Cache {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, Shards: 4, HashPower: 8})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

// TestShardedStatsOutput: the wire-visible shard surface. `stats` reports the
// domain count, and `stats tm` appends a per-shard commit/abort/fast-path
// breakdown whose columns sum exactly to the merged counters above it — the
// domains share no counters, so the decomposition is exact, not approximate.
func TestShardedStatsOutput(t *testing.T) {
	c := newShardedProtoCache(t, engine.ITOnCommit)
	var script strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&script, "set sk%02d 0 0 1\r\nx\r\nget sk%02d\r\n", i, i)
	}
	runTextOn(t, c, script.String())

	out := runTextOn(t, c, "stats\r\n")
	if v := statValue(out, "shards"); v != "4" {
		t.Fatalf("STAT shards = %q, want 4\n%s", v, out)
	}

	out = runTextOn(t, c, "stats tm\r\n")
	if v := statValue(out, "shards"); v != "4" {
		t.Fatalf("stats tm shards = %q, want 4\n%s", v, out)
	}
	total, _ := strconv.ParseUint(statValue(out, "commits"), 10, 64)
	if total == 0 {
		t.Fatal("commits = 0 after 128 commands")
	}
	var sum uint64
	active := 0
	for i := 0; i < 4; i++ {
		v := statValue(out, fmt.Sprintf("shard_%d_commits", i))
		if v == "" {
			t.Fatalf("stats tm lacks shard_%d_commits:\n%s", i, out)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("shard_%d_commits = %q: %v", i, v, err)
		}
		if n > 0 {
			active++
		}
		sum += n
	}
	// The `stats tm` read itself commits bookkeeping transactions after the
	// merged counter was sampled, so the per-shard sum may run a few ahead of
	// the merged line — never behind it.
	if sum < total || sum > total+16 {
		t.Errorf("per-shard commit sum %d vs merged commits %d", sum, total)
	}
	if active < 2 {
		t.Errorf("only %d shards committed; routing is degenerate", active)
	}
}

// TestShardedStatsConflicts: with tracing on, `stats conflicts` reports the
// cross-shard orec conflict counter — and it must be zero: each domain's
// events land in a disjoint orec-id range by construction.
func TestShardedStatsConflicts(t *testing.T) {
	c := newShardedProtoCache(t, engine.ITOnCommit)
	c.EnableTracing()
	var script strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&script, "set ck%02d 0 0 1\r\nx\r\nget ck%02d ck%02d\r\n", i, i, (i+1)%64)
	}
	runTextOn(t, c, script.String())
	out := runTextOn(t, c, "stats conflicts\r\n")
	if v := statValue(out, "cross_shard_orec_conflicts"); v != "0" {
		t.Errorf("cross_shard_orec_conflicts = %q, want 0\n%s", v, out)
	}
}

// TestShardedBatchPipelineSingleWrite: splitting a pipelined batch across
// four TM domains must not split the transport write. The replies gather
// until the pipeline drains and leave in ONE write, exactly as on a
// single-domain cache — the scatter/gather happens at the engine layer, the
// connection never sees it.
func TestShardedBatchPipelineSingleWrite(t *testing.T) {
	c := newShardedProtoCache(t, engine.ITOnCommit)
	var setup, multi strings.Builder
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("pw%02d", i)
		fmt.Fprintf(&setup, "set %s 0 0 1\r\nv\r\n", keys[i])
	}
	fmt.Fprintf(&multi, "get %s\r\nget %s\r\n", strings.Join(keys, " "), keys[0])

	pipelined := &countingConn{chunks: [][]byte{[]byte(setup.String() + multi.String())}}
	if err := NewConn(c.NewWorker(), pipelined).Serve(); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if pipelined.writes != 1 {
		t.Errorf("pipelined cross-shard batch: %d transport writes, want 1", pipelined.writes)
	}
	out := pipelined.out.String()
	if strings.Count(out, "STORED\r\n") != len(keys) {
		t.Fatalf("setup replies wrong:\n%q", out)
	}
	if strings.Count(out, "VALUE ") != len(keys)+1 || strings.Count(out, "END\r\n") != 2 {
		t.Errorf("multi-get replies wrong:\n%q", out)
	}
	// The 24-key get spans several shards; replies must still be in request
	// order, not shard order.
	last := -1
	for _, line := range strings.Split(out, "\r\n") {
		if k, ok := strings.CutPrefix(line, "VALUE pw"); ok {
			n, _ := strconv.Atoi(strings.Fields(k)[0])
			if n < last && last != len(keys)-1 { // final single get restarts at pw00
				t.Fatalf("VALUE order broken: pw%02d after pw%02d\n%q", n, last, out)
			}
			last = n
		}
	}
}
