package txtrace

import (
	"time"

	"repro/internal/txobs"
)

// ConnSpans is the per-connection span buffer: a single-writer scratch the
// protocol layer drives (Begin before dispatch, End after) and the STM
// runtime feeds through the stm.TraceSink interface while the request's
// worker thread carries the hook. One goroutine serves one connection, so no
// field needs synchronization — the lock-freedom the tentpole asks for is
// the absence of any lock, not atomics: the only shared word on the request
// path is the tracer's mode, read once in Begin.
//
// The scratch (events slice included) is reused across requests; a kept
// span's events are copied out at End, so nothing a consumer sees aliases
// the live buffer.
type ConnSpans struct {
	tr   *Tracer
	conn uint64

	active    bool
	cmd       string
	start     time.Time
	events    []SpanEvent
	truncated int

	aborts     uint32
	maxRetry   uint32
	serialized bool
	maxReads   uint32
	maxWrites  uint32
}

// NewConnSpans binds a span buffer to tracer tr for connection connID. A nil
// tracer is legal and makes Begin always return false.
func NewConnSpans(tr *Tracer, connID uint64) *ConnSpans {
	return &ConnSpans{tr: tr, conn: connID}
}

// Begin opens a request span for cmd. It returns false — after exactly one
// atomic load — when tracing is off; the caller then skips End and never
// installs the STM hook, leaving the request on the untraced fast path.
func (cs *ConnSpans) Begin(cmd string) bool {
	if cs == nil || cs.tr == nil || Mode(cs.tr.mode.Load()) == ModeOff {
		return false
	}
	cs.active = true
	cs.cmd = cmd
	cs.start = time.Now()
	cs.events = cs.events[:0]
	cs.truncated = 0
	cs.aborts = 0
	cs.maxRetry = 0
	cs.serialized = false
	cs.maxReads = 0
	cs.maxWrites = 0
	return true
}

// serializingKind mirrors txobs.Kind.serializes over the flattened names.
func serializingKind(k txobs.Kind) bool {
	switch k {
	case txobs.KInFlightSwitch, txobs.KStartSerial, txobs.KAbortSerial,
		txobs.KHTMFallback, txobs.KWatchdogBackoff, txobs.KWatchdogSerialize:
		return true
	}
	return false
}

// TraceTx implements stm.TraceSink: it copies ev into the span scratch and
// folds it into the running pathology summary. Called synchronously on the
// request's own goroutine from inside the STM run loop.
func (cs *ConnSpans) TraceTx(ev *txobs.Event) {
	if !cs.active {
		return
	}
	switch ev.Kind {
	case txobs.KAbort:
		cs.aborts++
	case txobs.KAbortSerial:
		cs.aborts++
	}
	if ev.Retry > cs.maxRetry {
		cs.maxRetry = ev.Retry
	}
	if serializingKind(ev.Kind) || ev.Serial {
		cs.serialized = true
	}
	if ev.Reads > cs.maxReads {
		cs.maxReads = ev.Reads
	}
	if ev.Writes > cs.maxWrites {
		cs.maxWrites = ev.Writes
	}
	if len(cs.events) >= cs.tr.opt.MaxEventsPerSpan {
		cs.truncated++
		return
	}
	cs.events = append(cs.events, SpanEvent{
		OffNanos: durNanos(time.Since(cs.start)),
		Kind:     ev.Kind.String(),
		Site:     ev.Site,
		Cause:    ev.Cause,
		Owner:    ev.Owner,
		Label:    labelName(ev.Label, ev.Orec),
		Orec:     ev.Orec,
		Shard:    ev.Shard,
		Retry:    ev.Retry,
		Serial:   ev.Serial,
		Reads:    ev.Reads,
		Writes:   ev.Writes,
	})
}

// labelName renders a conflicting location's label; "" when the event has no
// conflicting orec at all.
func labelName(l txobs.Label, orec int32) string {
	if orec < 0 {
		return ""
	}
	return l.String()
}

// End closes the request span and hands it to the tracer's keep decision.
// Must be called exactly once per successful Begin, after the STM hook has
// been removed.
func (cs *ConnSpans) End() {
	if cs == nil || !cs.active {
		return
	}
	cs.active = false
	cs.tr.finish(cs, time.Since(cs.start))
}
