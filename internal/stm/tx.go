package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/txobs"
)

// Kind distinguishes the two transaction declarations of the Draft C++ TM
// Specification.
type Kind int

const (
	// Atomic transactions are statically guaranteed (here: dynamically
	// checked) to contain no unsafe operations, and therefore never serialize
	// except for contention-management progress.
	Atomic Kind = iota
	// Relaxed transactions may perform unsafe operations, at which point they
	// become serial and irrevocable.
	Relaxed
)

func (k Kind) String() string {
	if k == Atomic {
		return "atomic"
	}
	return "relaxed"
}

// Props declares a transaction's static properties, the analogue of what the
// GCC front end derives from the source.
type Props struct {
	Kind Kind
	// StartSerial marks a relaxed transaction that performs an unsafe
	// operation on every code path, so the compiler makes it begin in serial
	// mode rather than pay for instrumented execution up to the switch point
	// (the "Start Serial" column of Tables 1-4).
	StartSerial bool
	// Site labels the source-level transaction for serialization-cause
	// profiling (the execinfo-style attribution of §6). Optional.
	Site string
	// ReadOnly declares that the transaction is expected not to write. For the
	// orec-based algorithms (MLWT, Lazy) the attempt then runs on the read-only
	// fast path: it subscribes to the serial lock instead of taking its read
	// side and commits by revalidating its read set against the global
	// timestamp — zero orec acquisitions, zero serial-lock traffic. A write
	// barrier upgrades cleanly: the attempt is discarded (it has no effects)
	// and the body restarts on the normal path. The flag is a hint, never a
	// contract — other algorithms and serial execution simply ignore it.
	ReadOnly bool
	// TrySerial, together with StartSerial, makes the serial write-lock
	// acquisition bounded: if the lock cannot be taken after a short spin, Run
	// returns ErrSerialBusy instead of blocking. The cross-shard commit path
	// uses it for every domain after the first so that two committers
	// acquiring overlapping shard sets in different orders cannot deadlock —
	// the loser unwinds and retries under the blocking (ordered) protocol.
	TrySerial bool
	// MaxRetries, when positive, bounds the consecutive speculative aborts of
	// this source-level transaction: once the bound is reached Run gives up and
	// returns ErrRetryLimit instead of escalating further. Zero means retry
	// forever (the libitm behaviour).
	MaxRetries int
}

// ErrUnsafeInAtomic reports an unsafe operation attempted inside an atomic
// transaction: the dynamic analogue of the compile error GCC raises.
var ErrUnsafeInAtomic = errors.New("stm: unsafe operation inside atomic transaction")

// ErrCanceled is returned by Run when the transaction canceled itself
// (transaction_cancel): its effects are undone and it is not retried.
var ErrCanceled = errors.New("stm: transaction canceled")

// ErrCancelRelaxed reports transaction_cancel attempted in a relaxed
// transaction, which the specification forbids.
var ErrCancelRelaxed = errors.New("stm: cancel inside relaxed transaction")

// ErrRetryLimit is returned by Run when Props.MaxRetries consecutive
// speculative aborts have been consumed without a commit.
var ErrRetryLimit = errors.New("stm: consecutive-abort retry limit exceeded")

// ErrSerialBusy is returned by Run for a Props.TrySerial transaction whose
// bounded serial-lock acquisition failed. No effects occurred.
var ErrSerialBusy = errors.New("stm: serial lock busy")

// control-flow signals thrown by barrier code and recovered by the run loop.
type abortSignal struct{}
type switchSerialSignal struct{ op string }
type cancelSignal struct{}

// roUpgradeSignal is thrown by a write barrier reached under Props.ReadOnly:
// the attempt has no effects to undo, so the run loop simply restarts the body
// on the normal (writer-capable) path. Not an abort for contention-management
// purposes, mirroring the in-flight serial switch.
type roUpgradeSignal struct{}

type wordSlot struct {
	p *atomic.Uint64
	v uint64
}

type anySlot struct {
	a *TAny
	b *box
}

type wordRedo struct {
	id uint64
	v  uint64
}

// Thread is a per-goroutine transaction descriptor, the analogue of libitm's
// gtm_thread. It is reused across transactions to avoid per-transaction
// allocation. Not safe for concurrent use.
type Thread struct {
	rt  *Runtime
	cur *Tx // non-nil while inside a transaction (flat nesting)
	tx  Tx  // storage reused across transactions

	id       uint64 // hourglass gate identity
	rngState uint64

	// activeSince publishes the begin sequence number of the thread's
	// in-flight speculative transaction (0 = none); committers scan it during
	// privatization-safety quiescence.
	activeSince atomic.Uint64

	// eagerSub marks an in-flight emulated-hardware attempt: subscribed to
	// the serial lock (holding nothing) yet writing eagerly in place. Serial
	// writers drain these after acquiring the lock — the stand-in for real
	// RTM aborting hardware transactions on the lock's cache-line
	// invalidation — since an undo-log rollback racing an uninstrumented
	// serial store would otherwise clobber committed data. Published before
	// the subscription check, mirroring activeSince (see beginSpeculative).
	eagerSub atomic.Bool

	commits atomic.Uint64 // per-thread, for abort-rate variance (§4)
	aborts  atomic.Uint64

	// Watchdog state (see watchdog.go). consecAborts mirrors Run's local
	// consecutive-abort counter; runSince is the UnixNano timestamp at which
	// the in-flight source-level transaction entered Run (0 = idle); escalate
	// is the remedy level the watchdog has imposed.
	consecAborts atomic.Uint64
	runSince     atomic.Int64
	escalate     atomic.Uint32

	// Observability sink, cached per observer (see obs.go). Only touched
	// while tracing is enabled.
	obsSink    *txobs.Sink
	obsSinkFor *txobs.Observer

	// Request-trace hook (see obs.go): non-nil while the current request is
	// being traced. Plain field — the thread is single-owner, and the hook is
	// installed/removed between transactions by the same goroutine.
	trace TraceSink

	// Interned Site pointer cache for owner attribution (see Tx.sitePtr).
	sitePtrVal *string
	sitePtrFor string
}

var threadIDs atomic.Uint64

// Commits returns the number of transactions this thread has committed.
func (th *Thread) Commits() uint64 { return th.commits.Load() }

// Aborts returns the number of speculative attempts this thread has aborted.
func (th *Thread) Aborts() uint64 { return th.aborts.Load() }

// Runtime returns the runtime this thread belongs to.
func (th *Thread) Runtime() *Runtime { return th.rt }

// InTx reports whether the thread is currently inside a transaction. GCC does
// not expose this; the paper's authors had to make it visible to decide
// whether to register an onCommit handler or run it immediately (§3.5).
func (th *Thread) InTx() bool { return th.cur != nil }

// Current returns the in-flight transaction, or nil.
func (th *Thread) Current() *Tx { return th.cur }

func (th *Thread) rand() uint64 {
	// xorshift64*; deterministic per-thread sequence, no global lock.
	x := th.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	th.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// Tx is a transaction attempt descriptor. Barrier methods panic with internal
// signals on conflict; the run loop catches them and retries.
type Tx struct {
	th    *Thread
	rt    *Runtime
	props Props

	serial    bool
	ro        bool      // read-only fast path attempt (orec algorithms only)
	algo      Algorithm // pinned at begin from the dynamic config; never changes mid-attempt
	lockWord  uint64    // odd; unique per attempt
	start     uint64 // clock snapshot (MLWT/Lazy) or sequence snapshot (NOrec/TML)
	htmSeq    uint64 // serial-lock subscription sequence (HTM)
	roSeq     uint64 // serial-lock subscription sequence (read-only fast path)
	tmlWriter bool   // TML: holding the global sequence lock

	reads []orecRead
	owned []ownedOrec
	undoW []wordSlot
	undoA []anySlot

	redoW map[*atomic.Uint64]wordRedo
	redoA map[*TAny]*box

	nReadsW []wordSlot
	nReadsA []anySlot

	onCommit []func()
	onAbort  []func()

	attempts int

	// Conflict attribution for the observability layer (see obs.go): the
	// cause of the pending abort and the id of the location whose orec
	// conflicted (0 = none). Set on abort paths, read by the run loop when it
	// records the abort event, cleared by begin.
	abortCause string
	conflictID uint64

	// traced is set at begin when the thread has a request-trace hook; write
	// barriers then publish this transaction's site into the orec-owner table
	// so victims can name who aborted them.
	traced bool
}

var lockWords atomic.Uint64

// Kind returns the transaction's declared kind.
func (tx *Tx) Kind() Kind { return tx.props.Kind }

// Serial reports whether the attempt is executing in serial-irrevocable mode.
func (tx *Tx) Serial() bool { return tx.serial }

// ReadOnly reports whether the attempt is executing on the read-only fast
// path (it has not upgraded or serialized).
func (tx *Tx) ReadOnly() bool { return tx.ro }

// Thread returns the owning thread descriptor.
func (tx *Tx) Thread() *Thread { return tx.th }

// OnCommit registers fn to run after the transaction commits and has released
// all locks (the GCC extension the paper's stage 5 depends on).
func (tx *Tx) OnCommit(fn func()) { tx.onCommit = append(tx.onCommit, fn) }

// OnAbort registers fn to run after an aborted attempt has undone its memory
// effects, before it retries.
func (tx *Tx) OnAbort(fn func()) { tx.onAbort = append(tx.onAbort, fn) }

// Cancel undoes the transaction's effects and terminates it without retrying.
// Only atomic transactions may cancel (an irrevocable relaxed transaction
// cannot undo its effects).
func (tx *Tx) Cancel() {
	if tx.props.Kind == Relaxed {
		panic(ErrCancelRelaxed)
	}
	panic(cancelSignal{})
}

// Abort requests an explicit retry of the transaction (used by tests and by
// condition-synchronization experiments).
func (tx *Tx) Abort() {
	tx.noteConflict("explicit abort", 0)
	panic(abortSignal{})
}

// Unsafe marks the execution of an operation the TM system cannot undo (I/O,
// a volatile/atomic access, inline assembly, an un-annotated library call).
// In an atomic transaction it panics — the analogue of GCC's compile error.
// In a relaxed transaction it triggers the in-flight switch to serial
// irrevocable mode: the speculation so far is rolled back and the body
// restarts serially, exactly as libitm behaves.
func (tx *Tx) Unsafe(op string) {
	if tx.serial {
		return
	}
	if tx.props.Kind == Atomic {
		panic(fmt.Errorf("%w: %s", ErrUnsafeInAtomic, op))
	}
	if o := tx.rt.obs.Load(); o != nil || tx.th.trace != nil {
		tx.obsRecord(o, txobs.KInFlightSwitch, causeAt("in-flight switch: "+op, tx.props.Site))
	}
	panic(switchSerialSignal{op: op})
}

func causeAt(cause, site string) string {
	if site == "" {
		return cause
	}
	return cause + " @ " + site
}

// Run executes fn as a transaction with the given properties, retrying on
// conflicts per the configured contention manager. Nested calls flatten into
// the enclosing transaction. It returns nil on commit, ErrCanceled if the
// transaction canceled itself.
func (th *Thread) Run(props Props, fn func(*Tx)) error {
	if th.cur != nil {
		// Flat nesting: subsumed by the outer transaction, as in GCC.
		fn(th.cur)
		return nil
	}
	rt := th.rt
	if props.StartSerial && props.Kind == Atomic {
		panic("stm: StartSerial is only meaningful for relaxed transactions")
	}
	if props.TrySerial && !props.StartSerial {
		panic("stm: TrySerial requires StartSerial")
	}

	// serial is sticky across attempts once escalation (in-flight switch,
	// abort-serial, watchdog) demands it; an attempt also runs serial when
	// the dynamic config says SerialAlg, decided per attempt in begin so a
	// controller swapping the domain back to a speculative algorithm takes
	// effect on the very next attempt.
	serial := false
	// The read-only fast path exists for the orec-based algorithms, where a
	// reader otherwise pays serial-lock read acquisition and release on every
	// attempt. NOrec's read-only commit is already free, HTM already
	// subscribes, and TML/serial have nothing to skip; begin applies the hint
	// against the algorithm current at each attempt.
	wantRO := props.ReadOnly
	if props.StartSerial {
		serial = true
		rt.stats.StartSerial.Add(1)
		if o := rt.obs.Load(); o != nil || th.trace != nil {
			th.deliver(o, &txobs.Event{
				Kind: txobs.KStartSerial, Serial: true, Orec: -1,
				Site: props.Site, Cause: causeAt("start serial", props.Site),
				Shard: rt.obsShard.Load(),
			})
		}
	}

	// Source-transaction entry time, for the begin→first-abort phase
	// histogram; sampled only while tracing is on.
	var runT0 time.Time
	if rt.obs.Load() != nil {
		runT0 = time.Now()
	}

	// Publish this source-level transaction to the starvation watchdog; its
	// escalation (and our abort streak) ends when Run returns, however it
	// returns.
	th.runSince.Store(time.Now().UnixNano())
	defer func() {
		th.runSince.Store(0)
		th.consecAborts.Store(0)
		th.escalate.Store(escalateNone)
	}()

	consec := 0 // consecutive aborts of this source-level transaction
	for {
		if rt.dynLoad().CM == CMHourglass && !serial {
			th.gateWait()
		}
		tx := th.begin(props, serial, wantRO && !serial)
		if tx == nil {
			return ErrSerialBusy
		}
		res := tx.execute(fn)
		switch res {
		case resCommit:
			th.commits.Add(1)
			rt.stats.Commits.Add(1)
			if tx.serial {
				rt.stats.SerialCommits.Add(1)
			}
			if th.id != 0 {
				// Release the hourglass gate if this thread ever closed it —
				// unconditional on the current CM, which the controller may
				// have swapped away from hourglass mid-transaction.
				th.gateRelease()
			}
			if o := rt.obs.Load(); o != nil || th.trace != nil {
				tx.obsRecord(o, txobs.KCommit, "")
			}
			th.finish(tx, true)
			return nil
		case resCancel:
			th.finish(tx, false)
			return ErrCanceled
		case resSwitchSerial:
			// In-flight switch: restart the body serially. Not an abort for
			// contention-management purposes.
			rt.stats.InFlightSwitch.Add(1)
			serial = true
			th.finish(tx, false)
			continue
		case resROUpgrade:
			// A write barrier fired under Props.ReadOnly. The attempt wrote
			// nothing and read consistently, so restarting on the
			// writer-capable path is a clean upgrade, not a contention event.
			rt.stats.ROUpgrades.Add(1)
			if o := rt.obs.Load(); o != nil || th.trace != nil {
				tx.obsRecord(o, txobs.KROUpgrade, causeAt("ro upgrade: write in read-only transaction", props.Site))
			}
			wantRO = false
			th.finish(tx, false)
			continue
		case resRetry:
			// Condition synchronization (§5): block until the read set is
			// dirtied by another commit, then re-run. Not an abort for
			// contention-management purposes.
			rt.stats.Retries.Add(1)
			if o := rt.obs.Load(); o != nil || th.trace != nil {
				tx.obsRecord(o, txobs.KRetryWait, "retry: read-set wait")
			}
			th.finish(tx, false)
			tx.waitReadSetChange()
			continue
		case resAbort:
			th.aborts.Add(1)
			rt.stats.Aborts.Add(1)
			consec++
			th.consecAborts.Store(uint64(consec))
			if o := rt.obs.Load(); o != nil || th.trace != nil {
				cause := tx.abortCause
				if cause == "" {
					cause = "conflict: commit validation"
				}
				tx.obsRecord(o, txobs.KAbort, cause)
				if o != nil && consec == 1 && !runT0.IsZero() {
					o.ObservePhase(txobs.PhaseFirstAbort, time.Since(runT0))
				}
			}
			th.finish(tx, false)
			if props.MaxRetries > 0 && consec >= props.MaxRetries {
				return ErrRetryLimit
			}
			// Contention-management decisions read the configuration fresh:
			// the controller may have retuned CM, retry budget, or backoff
			// curve while the attempt ran.
			d := rt.dynLoad()
			if d.Algorithm == HTM && consec >= rt.cfg.HTMRetries {
				// Lock-elision fallback: take the global lock for real.
				rt.stats.HTMFallbacks.Add(1)
				if o := rt.obs.Load(); o != nil || th.trace != nil {
					tx.obsRecord(o, txobs.KHTMFallback, causeAt("htm fallback: retry limit", props.Site))
				}
				serial = true
				continue
			}
			switch d.CM {
			case CMSerialize:
				if consec >= d.SerializeAfter {
					rt.stats.AbortSerial.Add(1)
					// The abort-serial event inherits the conflict that pushed
					// the attempt over the limit, so serialization-for-progress
					// is attributed to a named structure.
					if o := rt.obs.Load(); o != nil || th.trace != nil {
						tx.obsRecord(o, txobs.KAbortSerial, causeAt("abort serial: consecutive-abort limit", props.Site))
					}
					serial = true
				}
			case CMBackoff:
				th.backoff(consec, d.Backoff)
			case CMHourglass:
				if consec >= rt.cfg.HourglassAfter {
					th.gateAcquire()
				}
			case CMNone:
				// Retry immediately — but let the scheduler run the
				// conflicting owner. GCC's threads are preemptible on their
				// own cores; a goroutine spin-retrying on a loaded scheduler
				// would otherwise monopolize its P and livelock.
				runtime.Gosched()
			}
			// Watchdog escalation rides on top of (and past) the configured
			// CM: level 1 adds backoff where the CM has none, level 2 forces
			// the next attempt serial-irrevocable for guaranteed progress.
			switch th.escalate.Load() {
			case escalateBackoff:
				if d.CM != CMBackoff {
					th.backoff(consec, d.Backoff)
				}
			case escalateSerialize:
				serial = true
			}
			continue
		}
	}
}

const (
	resCommit = iota
	resAbort
	resSwitchSerial
	resCancel
	resRetry
	resROUpgrade
)

// trySerialSpins bounds the writer-bit spin and the reader drain of a
// Props.TrySerial acquisition. Long enough to ride out a reader finishing its
// commit, far too short to wait out another serial transaction's body.
const trySerialSpins = 256

func (th *Thread) begin(props Props, serial, wantRO bool) *Tx {
	rt := th.rt
	if serial && props.TrySerial && !rt.serial.TryLock(trySerialSpins) {
		// Bounded acquisition failed. Nothing was published — no stats, no
		// observer event, no th.cur — so the caller sees ErrSerialBusy as if
		// the transaction never started.
		return nil
	}
	tx := &th.tx
	redoW, redoA := tx.redoW, tx.redoA
	*tx = Tx{
		th:       th,
		rt:       rt,
		props:    props,
		lockWord: lockWords.Add(1)<<1 | 1,
		reads:    tx.reads[:0],
		owned:    tx.owned[:0],
		undoW:    tx.undoW[:0],
		undoA:    tx.undoA[:0],
		nReadsW:  tx.nReadsW[:0],
		nReadsA:  tx.nReadsA[:0],
		onCommit: tx.onCommit[:0],
		onAbort:  tx.onAbort[:0],
	}
	tx.redoW, tx.redoA = redoW, redoA
	tx.traced = th.trace != nil
	rt.stats.Starts.Add(1)
	if !serial {
		// Pin the dynamic configuration and acquire the attempt's serial-lock
		// side; a domain reconfigured to SerialAlg makes this attempt serial.
		serial = !th.beginSpeculative(tx, wantRO)
	}
	tx.serial = serial
	if serial {
		if in := rt.cfg.Fault; in != nil && in.Fire(fault.STMSerialDelay) {
			// Stretch the window in which the writer side of the serial lock
			// is being awaited — the regime where reader-side convoying and
			// privatization races live.
			runtime.Gosched()
		}
		if props.TrySerial {
			// Already acquired by the bounded TryLock at the top of begin.
		} else if o := rt.obs.Load(); o != nil {
			t0 := time.Now()
			rt.serial.Lock()
			o.ObservePhase(txobs.PhaseSerialWait, time.Since(t0))
		} else {
			rt.serial.Lock()
		}
		// The acquisition doomed subscribed hardware attempts; wait for their
		// eager in-place state to be rolled back before running irrevocably.
		rt.drainEagerSubscribed()
		if tx.traced {
			rt.noteSerialOwner(tx.sitePtr())
		}
		tx.algo = rt.dynLoad().Algorithm // stable under the write lock
	} else {
		// beginSpeculative already pinned tx.algo, acquired the read side or
		// the subscription (read-only fast path, HTM elision), and published
		// activeSince — which keeps writers' privatization-safety quiescence
		// covering fast-path readers too.
		switch tx.algo {
		case MLWT, HTM, LazyAlg:
			tx.start = rt.clock.Load()
		case NOrec:
			tx.start = rt.norecBegin()
		case TML:
			tx.tmlBegin()
		}
		// A read-only attempt never populates its redo maps (the first write
		// barrier upgrades before touching them), so skip the map setup.
		if !tx.ro && (tx.algo == LazyAlg || tx.algo == NOrec) {
			if tx.redoW == nil {
				tx.redoW = make(map[*atomic.Uint64]wordRedo)
				tx.redoA = make(map[*TAny]*box)
			} else {
				clear(tx.redoW)
				clear(tx.redoA)
			}
		}
	}
	if o := rt.obs.Load(); o != nil || th.trace != nil {
		th.deliver(o, &txobs.Event{
			Kind: txobs.KBegin, Serial: serial, Site: props.Site,
			Retry: uint32(th.consecAborts.Load()), Orec: -1,
			Shard: rt.obsShard.Load(),
		})
	}
	th.cur = tx
	return tx
}

// finish tears down the attempt; on commit it then runs the onCommit
// handlers after all locks are released, outside any transaction, matching
// GCC's ordering (which is what lets them produce out-of-order I/O, §3.5).
func (th *Thread) finish(tx *Tx, committed bool) {
	th.cur = nil
	if !committed {
		return
	}
	for _, fn := range tx.onCommit {
		fn()
	}
}

// execute runs the body once and classifies the outcome.
func (tx *Tx) execute(fn func(*Tx)) (res int) {
	committed := false
	defer func() {
		if committed {
			return
		}
		r := recover()
		tx.rollback()
		switch r.(type) {
		case nil:
			res = resAbort // tryCommit failed
		case abortSignal:
			tx.runOnAbort()
			res = resAbort
		case htmCapacitySignal:
			tx.runOnAbort()
			res = resAbort
		case retrySignal:
			res = resRetry
		case roUpgradeSignal:
			res = resROUpgrade
		case switchSerialSignal:
			res = resSwitchSerial
		case cancelSignal:
			res = resCancel
		default:
			tx.th.cur = nil // leave the transactional context before unwinding
			panic(r)        // user panic: effects undone, then propagate
		}
	}()
	fn(tx)
	if tx.tryCommit() {
		committed = true
		return resCommit
	}
	tx.runOnAbort()
	// rollback handled by the deferred function (r == nil path)
	return resAbort
}

func (tx *Tx) runOnAbort() {
	for _, fn := range tx.onAbort {
		fn()
	}
}

// ---------------------------------------------------------------------------
// Read and write barriers

// faultBarrier consults the injector at a barrier. Delay points yield to the
// scheduler (widening race windows); abort points panic with the ordinary
// abort signal, but only for speculative attempts — aborting a
// serial-irrevocable transaction would violate irrevocability, so serial
// attempts can only be delayed.
func (tx *Tx) faultBarrier(abortP, delayP fault.Point) {
	in := tx.rt.cfg.Fault
	if in == nil {
		return
	}
	if in.Fire(delayP) {
		runtime.Gosched()
	}
	if !tx.serial && in.Fire(abortP) {
		tx.noteConflict("fault injection", 0)
		panic(abortSignal{})
	}
}

func (tx *Tx) loadWord(id uint64, p *atomic.Uint64) uint64 {
	tx.faultBarrier(fault.STMReadAbort, fault.STMReadDelay)
	if tx.serial {
		return p.Load()
	}
	switch tx.algo {
	case MLWT:
		return tx.orecLoad(id, func() uint64 { return p.Load() })
	case HTM:
		v := tx.orecLoad(id, func() uint64 { return p.Load() })
		tx.htmCheckCapacity()
		return v
	case LazyAlg:
		// Read-only attempts skip the redo lookup: they never write, and the
		// maps may hold stale entries from a previous attempt (begin leaves
		// them untouched on the fast path).
		if !tx.ro {
			if e, ok := tx.redoW[p]; ok {
				return e.v
			}
		}
		return tx.orecLoad(id, func() uint64 { return p.Load() })
	case NOrec:
		if e, ok := tx.redoW[p]; ok {
			return e.v
		}
		v := tx.norecLoadWord(p)
		tx.nReadsW = append(tx.nReadsW, wordSlot{p: p, v: v})
		return v
	case TML:
		return tx.tmlLoad(p.Load)
	}
	panic("stm: bad algorithm")
}

func (tx *Tx) storeWord(id uint64, p *atomic.Uint64, v uint64) {
	tx.faultBarrier(fault.STMWriteAbort, fault.STMWriteDelay)
	if tx.ro {
		panic(roUpgradeSignal{})
	}
	if tx.serial {
		// Serial atomic transactions run "instrumented serial": they keep an
		// undo log because they may still cancel. Serial relaxed transactions
		// are irrevocable and write through unlogged, as in libitm.
		if tx.props.Kind == Atomic {
			tx.undoW = append(tx.undoW, wordSlot{p: p, v: p.Load()})
		}
		p.Store(v)
		return
	}
	switch tx.algo {
	case MLWT, HTM:
		if tx.algo == HTM {
			tx.htmMarkEager()
		}
		tx.orecAcquire(id)
		tx.undoW = append(tx.undoW, wordSlot{p: p, v: p.Load()})
		p.Store(v)
		if tx.algo == HTM {
			tx.htmCheckCapacity()
		}
	case LazyAlg, NOrec:
		tx.redoW[p] = wordRedo{id: id, v: v}
	case TML:
		tx.tmlAcquire()
		tx.undoW = append(tx.undoW, wordSlot{p: p, v: p.Load()})
		p.Store(v)
	}
}

func (tx *Tx) loadAny(a *TAny) *box {
	tx.faultBarrier(fault.STMReadAbort, fault.STMReadDelay)
	if tx.serial {
		return a.p.Load()
	}
	switch tx.algo {
	case MLWT, HTM:
		var b *box
		tx.orecLoad(a.id, func() uint64 { b = a.p.Load(); return 0 })
		if tx.algo == HTM {
			tx.htmCheckCapacity()
		}
		return b
	case LazyAlg:
		if !tx.ro {
			if b, ok := tx.redoA[a]; ok {
				return b
			}
		}
		var b *box
		tx.orecLoad(a.id, func() uint64 { b = a.p.Load(); return 0 })
		return b
	case NOrec:
		if b, ok := tx.redoA[a]; ok {
			return b
		}
		b := tx.norecLoadAny(a)
		tx.nReadsA = append(tx.nReadsA, anySlot{a: a, b: b})
		return b
	case TML:
		var b *box
		tx.tmlLoad(func() uint64 { b = a.p.Load(); return 0 })
		return b
	}
	panic("stm: bad algorithm")
}

func (tx *Tx) storeAny(a *TAny, b *box) {
	tx.faultBarrier(fault.STMWriteAbort, fault.STMWriteDelay)
	if tx.ro {
		panic(roUpgradeSignal{})
	}
	if tx.serial {
		if tx.props.Kind == Atomic {
			tx.undoA = append(tx.undoA, anySlot{a: a, b: a.p.Load()})
		}
		a.p.Store(b)
		return
	}
	switch tx.algo {
	case MLWT, HTM:
		if tx.algo == HTM {
			tx.htmMarkEager()
		}
		tx.orecAcquire(a.id)
		tx.undoA = append(tx.undoA, anySlot{a: a, b: a.p.Load()})
		a.p.Store(b)
		if tx.algo == HTM {
			tx.htmCheckCapacity()
		}
	case LazyAlg, NOrec:
		tx.redoA[a] = b
	case TML:
		tx.tmlAcquire()
		tx.undoA = append(tx.undoA, anySlot{a: a, b: a.p.Load()})
		a.p.Store(b)
	}
}

// orecLoad performs the orec-validated read protocol shared by MLWT and Lazy.
// read is invoked to sample the location between the two orec samples.
func (tx *Tx) orecLoad(id uint64, read func() uint64) uint64 {
	o := tx.rt.orecFor(id)
	for {
		w1 := o.v.Load()
		if orecLocked(w1) {
			if w1 == tx.lockWord {
				// We own the orec (write-through): the in-place value is ours.
				return read()
			}
			tx.noteConflict("conflict: location locked (read)", id)
			panic(abortSignal{})
		}
		v := read()
		if o.v.Load() != w1 {
			continue // concurrent update between samples; resample
		}
		if orecVersion(w1) > tx.start {
			tx.extend()
		}
		if tx.ro && !tx.rt.serial.stillSubscribed(tx.roSeq) {
			// A serial writer ran (or is running): its uninstrumented stores
			// bump neither orecs nor the clock, so the subscription is the only
			// thing standing between a fast-path reader and a torn snapshot.
			tx.noteConflict("conflict: serial-lock subscription (read-only)", id)
			panic(abortSignal{})
		}
		tx.reads = append(tx.reads, orecRead{o: o, ver: w1, id: id})
		return v
	}
}

// orecAcquire locks the orec covering id for writing (encounter-time, MLWT).
func (tx *Tx) orecAcquire(id uint64) {
	o := tx.rt.orecFor(id)
	for {
		w := o.v.Load()
		if w == tx.lockWord {
			return
		}
		if orecLocked(w) {
			tx.noteConflict("conflict: location locked (write)", id)
			panic(abortSignal{})
		}
		if orecVersion(w) > tx.start {
			tx.extend()
		}
		if o.v.CompareAndSwap(w, tx.lockWord) {
			tx.owned = append(tx.owned, ownedOrec{o: o, prev: w})
			if tx.traced {
				tx.rt.noteOwner(id, tx.sitePtr())
			}
			return
		}
	}
}

// extend attempts a timestamp extension: revalidate the read set at the
// current clock and adopt it as the new start time. On failure, abort.
func (tx *Tx) extend() {
	now := tx.rt.clock.Load()
	if !tx.validateReads() {
		panic(abortSignal{})
	}
	tx.start = now
}

// validateReads checks every read-set entry is still at its observed version
// (or locked by us, with the pre-lock version matching). On failure it notes
// the failing location for conflict attribution.
func (tx *Tx) validateReads() bool {
	for _, r := range tx.reads {
		cur := r.o.v.Load()
		if cur == r.ver {
			continue
		}
		if cur == tx.lockWord {
			if tx.prevFor(r.o) == r.ver {
				continue
			}
		}
		tx.noteConflict("conflict: read validation", r.id)
		return false
	}
	return true
}

func (tx *Tx) prevFor(o *orec) uint64 {
	for _, ow := range tx.owned {
		if ow.o == o {
			return ow.prev
		}
	}
	return ^uint64(0)
}

// ---------------------------------------------------------------------------
// NOrec

// norecBegin samples an even global sequence number.
func (rt *Runtime) norecBegin() uint64 {
	spins := 0
	for {
		s := rt.nseq.Load()
		if s&1 == 0 {
			return s
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

func (tx *Tx) norecLoadWord(p *atomic.Uint64) uint64 {
	v := p.Load()
	for tx.rt.nseq.Load() != tx.start {
		tx.start = tx.norecValidate()
		v = p.Load()
	}
	return v
}

func (tx *Tx) norecLoadAny(a *TAny) *box {
	b := a.p.Load()
	for tx.rt.nseq.Load() != tx.start {
		tx.start = tx.norecValidate()
		b = a.p.Load()
	}
	return b
}

// norecValidate re-checks every recorded read by value and returns a new
// consistent snapshot, or aborts.
func (tx *Tx) norecValidate() uint64 {
	for {
		t := tx.rt.norecBegin()
		ok := true
		for _, r := range tx.nReadsW {
			if r.p.Load() != r.v {
				ok = false
				break
			}
		}
		if ok {
			for _, r := range tx.nReadsA {
				if r.a.p.Load() != r.b {
					ok = false
					break
				}
			}
		}
		if !ok {
			tx.noteConflict("conflict: value validation", 0)
			panic(abortSignal{})
		}
		if tx.rt.nseq.Load() == t {
			return t
		}
	}
}

// ---------------------------------------------------------------------------
// Commit and rollback

// tryCommit attempts to commit; returns false if validation fails (the caller
// rolls back and retries). It times the commit protocol for the phase
// histogram; when tracing is disabled the only extra cost is the obs load.
func (tx *Tx) tryCommit() bool {
	o := tx.rt.obs.Load()
	if o == nil {
		return tx.commitProtocol()
	}
	t0 := time.Now()
	ok := tx.commitProtocol()
	if ok {
		o.ObservePhase(txobs.PhaseCommit, time.Since(t0))
	}
	return ok
}

func (tx *Tx) commitProtocol() bool {
	rt := tx.rt
	if in := rt.cfg.Fault; in != nil {
		if in.Fire(fault.STMCommitDelay) {
			runtime.Gosched()
		}
		// A spurious validation failure: the caller rolls back and retries,
		// the same path a genuine commit-time conflict takes. Never injected
		// into serial attempts (they are irrevocable and cannot fail).
		if !tx.serial && in.Fire(fault.STMCommitFail) {
			tx.noteConflict("fault injection (commit)", 0)
			return false
		}
	}
	if tx.serial {
		rt.serial.Unlock()
		return true
	}
	if tx.ro {
		return tx.roCommit()
	}
	switch tx.algo {
	case HTM:
		// The lock subscription stands in for real HTM's cache-line
		// monitoring: any serial acquisition since begin aborts us.
		if !rt.serial.stillSubscribed(tx.htmSeq) {
			tx.noteConflict("conflict: serial-lock subscription", 0)
			return false
		}
		wrote := len(tx.owned) > 0
		if wrote {
			if !tx.validateReads() {
				return false
			}
			if !rt.serial.stillSubscribed(tx.htmSeq) {
				tx.noteConflict("conflict: serial-lock subscription", 0)
				return false
			}
			nv := versionWord(rt.clock.Add(1))
			for _, ow := range tx.owned {
				ow.o.v.Store(nv)
			}
			tx.owned = tx.owned[:0]
		}
		tx.endSpeculation(wrote)
		return true
	case MLWT:
		wrote := len(tx.owned) > 0
		if wrote {
			if !tx.validateReads() {
				return false
			}
			nv := versionWord(rt.clock.Add(1))
			for _, ow := range tx.owned {
				ow.o.v.Store(nv)
			}
			tx.owned = tx.owned[:0] // published: nothing to roll back
		}
		rt.serial.RUnlock()
		tx.endSpeculation(wrote)
		return true
	case LazyAlg:
		wrote := len(tx.redoW) > 0 || len(tx.redoA) > 0
		if wrote {
			if !tx.lazyAcquireAll() {
				return false
			}
			if !tx.validateReads() {
				return false
			}
			for p, e := range tx.redoW {
				p.Store(e.v)
			}
			for a, b := range tx.redoA {
				a.p.Store(b)
			}
			nv := versionWord(rt.clock.Add(1))
			for _, ow := range tx.owned {
				ow.o.v.Store(nv)
			}
			tx.owned = tx.owned[:0]
		}
		rt.serial.RUnlock()
		tx.endSpeculation(wrote)
		return true
	case NOrec:
		if len(tx.redoW) == 0 && len(tx.redoA) == 0 {
			rt.serial.RUnlock()
			tx.endSpeculation(false)
			return true
		}
		for !rt.nseq.CompareAndSwap(tx.start, tx.start+1) {
			tx.start = tx.norecValidate() // aborts via panic on conflict
		}
		for p, e := range tx.redoW {
			p.Store(e.v)
		}
		for a, b := range tx.redoA {
			a.p.Store(b)
		}
		rt.nseq.Store(tx.start + 2)
		rt.serial.RUnlock()
		tx.endSpeculation(true)
		return true
	case TML:
		wrote := tx.tmlWriter
		tx.tmlCommit()
		tx.tmlWriter = false
		rt.serial.RUnlock()
		tx.endSpeculation(wrote)
		return true
	}
	panic("stm: bad algorithm")
}

// roCommit is the read-only fast-path commit (extend-on-validate, after the
// LSA timestamp-extension trick and NOrec's free read-only commits): if the
// global clock moved since begin, revalidate the read set at the current
// timestamp; then confirm the serial-lock subscription still stands. No orec
// is acquired, the clock is not bumped, and no serial-lock word is written —
// the whole protocol is loads. Nothing is published, so no quiescence either.
func (tx *Tx) roCommit() bool {
	rt := tx.rt
	if rt.clock.Load() != tx.start && !tx.validateReads() {
		return false
	}
	if !rt.serial.stillSubscribed(tx.roSeq) {
		tx.noteConflict("conflict: serial-lock subscription (read-only)", 0)
		return false
	}
	rt.stats.ROFastCommits.Add(1)
	if o := rt.obs.Load(); o != nil || tx.th.trace != nil {
		tx.obsRecord(o, txobs.KROFastCommit, "")
	}
	tx.endSpeculation(false)
	return true
}

// endSpeculation retires the attempt's speculative window and, after a writer
// commit, performs the privatization-safety quiescence the Draft C++ TM
// Specification requires (and the paper's Figure 1a correctness argument
// relies on): wait until every transaction that began before this commit has
// finished, so their doomed eager writes and rollbacks cannot be observed by
// this thread's subsequent nontransactional (privatized) accesses.
func (tx *Tx) endSpeculation(wrote bool) {
	if tx.algo == HTM {
		tx.th.eagerSub.Store(false)
	}
	tx.th.activeSince.Store(0)
	if wrote && !tx.rt.cfg.NoQuiesce {
		tx.rt.quiesce(tx.rt.txSeq.Add(1))
	}
}

// lazyAcquireAll locks the orecs covering the write set; false on conflict.
func (tx *Tx) lazyAcquireAll() bool {
	for _, e := range tx.redoW {
		if !tx.lazyAcquire(e.id) {
			return false
		}
	}
	for a := range tx.redoA {
		if !tx.lazyAcquire(a.id) {
			return false
		}
	}
	return true
}

func (tx *Tx) lazyAcquire(id uint64) bool {
	o := tx.rt.orecFor(id)
	for {
		w := o.v.Load()
		if w == tx.lockWord {
			return true
		}
		if orecLocked(w) {
			tx.noteConflict("conflict: commit-time lock acquisition", id)
			return false
		}
		if o.v.CompareAndSwap(w, tx.lockWord) {
			tx.owned = append(tx.owned, ownedOrec{o: o, prev: w})
			if tx.traced {
				tx.rt.noteOwner(id, tx.sitePtr())
			}
			return true
		}
	}
}

// rollback undoes in-place effects (MLWT), releases owned orecs at their
// pre-lock versions, and releases the serial lock side held by this attempt.
func (tx *Tx) rollback() {
	rt := tx.rt
	if tx.serial {
		// Atomic serial transactions logged undo entries; relaxed serial ones
		// are irrevocable (nothing to undo; their effects stand).
		for i := len(tx.undoW) - 1; i >= 0; i-- {
			tx.undoW[i].p.Store(tx.undoW[i].v)
		}
		for i := len(tx.undoA) - 1; i >= 0; i-- {
			tx.undoA[i].a.p.Store(tx.undoA[i].b)
		}
		rt.serial.Unlock()
		return
	}
	if tx.algo == TML {
		tx.tmlRollback()
		rt.serial.RUnlock()
		tx.th.activeSince.Store(0)
		return
	}
	for i := len(tx.undoW) - 1; i >= 0; i-- {
		tx.undoW[i].p.Store(tx.undoW[i].v)
	}
	for i := len(tx.undoA) - 1; i >= 0; i-- {
		tx.undoA[i].a.p.Store(tx.undoA[i].b)
	}
	for _, ow := range tx.owned {
		ow.o.v.Store(ow.prev)
	}
	// HTM and read-only fast-path attempts subscribed instead of taking the
	// read lock; there is nothing to release. The eagerSub mark clears only
	// after the undo restore above — a draining serial writer must not
	// proceed while our in-place state is still visible.
	if tx.algo == HTM {
		tx.th.eagerSub.Store(false)
	} else if !tx.ro {
		rt.serial.RUnlock()
	}
	tx.th.activeSince.Store(0)
}

// ---------------------------------------------------------------------------
// Contention-manager mechanics

func (th *Thread) ensureID() uint64 {
	if th.id == 0 {
		th.id = threadIDs.Add(1)
	}
	return th.id
}

func (th *Thread) gateWait() {
	id := th.ensureID()
	spins := 0
	for {
		g := th.rt.gate.Load()
		if g == 0 || g == id {
			return
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

func (th *Thread) gateAcquire() {
	id := th.ensureID()
	spins := 0
	for !th.rt.gate.CompareAndSwap(0, id) {
		if th.rt.gate.Load() == id {
			return
		}
		spins++
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

func (th *Thread) gateRelease() {
	id := th.ensureID()
	th.rt.gate.CompareAndSwap(id, 0)
}

// backoff waits for an exponentially growing interval with deterministic
// seeded jitter (see backoffDelay in dyn.go): the window shape is taken from
// the dynamic config, so a controller can widen a degraded shard's curve
// live. Long waits use the OS timer, which is exactly the preemption
// exposure the paper blames for backoff's poor behaviour at high thread
// counts; short waits burn scheduler yields instead.
func (th *Thread) backoff(consec int, bc BackoffConfig) {
	if o := th.rt.obs.Load(); o != nil {
		t0 := time.Now()
		defer func() { o.ObservePhase(txobs.PhaseBackoff, time.Since(t0)) }()
	}
	ns := uint64(backoffDelay(&th.rngState, consec, bc))
	if ns < 2048 {
		for i := uint64(0); i < ns/16; i++ {
			runtime.Gosched()
		}
		return
	}
	time.Sleep(time.Duration(ns) * time.Nanosecond)
}
