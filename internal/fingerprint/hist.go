package fingerprint

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets covers log2 buckets up to 2^62: enough for nanosecond
// latencies (bucket 35 ≈ 34 s) and value sizes (bucket 30 ≈ 1 GiB) alike.
const histBuckets = 63

// LogHist is a power-of-two-bucketed histogram safe for one concurrent
// writer per call site and any number of snapshot readers. Every field is
// atomic, so readers never block the hot path and the race detector stays
// quiet; quantiles are bucket upper bounds, the same contract txobs uses.
type LogHist struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

func bucketOf(v uint64) int {
	b := bits.Len64(v) // 0 for v==0, else floor(log2(v))+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one observation.
func (h *LogHist) Record(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistSnapshot is the summary form shared by every telemetry surface
// (stats lines, /debug JSON, mctop).
type HistSnapshot struct {
	Count uint64 `json:"count"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
	Max   uint64 `json:"max"`
}

// Snapshot summarizes the histogram. Concurrent Records may land between
// bucket reads; the skew is at most a handful of in-flight observations.
func (h *LogHist) Snapshot() HistSnapshot {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Max: h.max.Load()}
	if total == 0 {
		return s
	}
	s.Mean = h.sum.Load() / total
	quantile := func(q float64) uint64 {
		want := uint64(q * float64(total))
		if want >= total {
			want = total - 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > want {
				if i == 0 {
					return 0
				}
				ub := (uint64(1) << uint(i)) - 1
				if ub > s.Max && s.Max != 0 {
					ub = s.Max
				}
				return ub
			}
		}
		return s.Max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// Reset clears the histogram (counters-only semantics: stats reset).
func (h *LogHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.max.Store(0)
}

// decay halves every bucket and the sum, implementing the exponential
// window. max is left as a high-water mark: it is a gauge, not a rate.
// Concurrent Records may lose an increment across the load/store pair;
// the window is statistical, so that skew is acceptable by design.
func (h *LogHist) decay() {
	for i := range h.buckets {
		h.buckets[i].Store(h.buckets[i].Load() / 2)
	}
	h.sum.Store(h.sum.Load() / 2)
}
