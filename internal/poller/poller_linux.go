//go:build linux

package poller

import (
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
)

func newPlatform(onReady func(Token)) (Poller, error) {
	return NewEpoll(onReady)
}

// wakeToken is reserved for the self-pipe that interrupts epoll_wait on
// Close. Connection tokens start at 1, so it can never collide.
const wakeToken = Token(0)

// epollReg is one registered connection. armed flips once: the first Arm
// installs the edge-triggered mask and every later Arm is syscall-free on
// the epoll side (just the readiness probe).
type epollReg struct {
	fd    int
	armed bool
}

type epollPoller struct {
	counters
	epfd int
	// epf/epRC wrap epfd as a runtime-pollable file: the wait loop parks in
	// the runtime netpoller (RawConn.Read) instead of blocking an OS thread
	// inside epoll_wait. On GOMAXPROCS=1 this matters enormously — an M that
	// returns from a blocking epoll_wait must win the P back from whatever
	// goroutine holds it, which under load takes a sysmon preemption tick
	// (~10-20ms added to every dispatch); a netpoller-parked goroutine is
	// simply made runnable like any other.
	epf     *os.File
	epRC    syscall.RawConn
	wakeR   int
	wakeW   int
	onReady func(Token)

	mu     sync.Mutex
	regs   map[Token]*epollReg
	next   uint64
	closed bool

	loopDone chan struct{}
}

// NewEpoll builds the epoll-backed poller. Exported (rather than hidden
// behind New) so tests can exercise it explicitly next to the fallback.
func NewEpoll(onReady func(Token)) (Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("poller: epoll_create1: %w", err)
	}
	var pipefds [2]int
	if err := syscall.Pipe2(pipefds[:], syscall.O_CLOEXEC|syscall.O_NONBLOCK); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("poller: pipe2: %w", err)
	}
	// Mark the epoll fd non-blocking and hand it to the runtime poller (epoll
	// fds nest: the inner instance reports EPOLLIN when its ready list is
	// non-empty). waitLoop drains with a zero-timeout epoll_wait and parks in
	// the netpoller between batches.
	if err := syscall.SetNonblock(epfd, true); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipefds[0])
		syscall.Close(pipefds[1])
		return nil, fmt.Errorf("poller: set epoll fd nonblocking: %w", err)
	}
	epf := os.NewFile(uintptr(epfd), "epoll")
	epRC, err := epf.SyscallConn()
	if err != nil {
		epf.Close()
		syscall.Close(pipefds[0])
		syscall.Close(pipefds[1])
		return nil, fmt.Errorf("poller: wrap epoll fd: %w", err)
	}
	p := &epollPoller{
		epfd:     epfd,
		epf:      epf,
		epRC:     epRC,
		wakeR:    pipefds[0],
		wakeW:    pipefds[1],
		onReady:  onReady,
		regs:     make(map[Token]*epollReg),
		loopDone: make(chan struct{}),
	}
	// The wake pipe is level-triggered and never drained until Close, so a
	// single write is enough to break out of any future epoll_wait.
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	packToken(&ev, wakeToken)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		p.closeFDs()
		return nil, fmt.Errorf("poller: register wake pipe: %w", err)
	}
	go p.waitLoop()
	return p, nil
}

func (p *epollPoller) closeFDs() {
	if p.epf != nil {
		p.epf.Close() // deregisters from the runtime poller too
	} else {
		syscall.Close(p.epfd)
	}
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// packToken splits a 64-bit token across the Fd and Pad fields of the epoll
// user-data union (EpollEvent has no 64-bit data field in package syscall).
func packToken(ev *syscall.EpollEvent, tok Token) {
	ev.Fd = int32(uint32(tok))
	ev.Pad = int32(uint32(tok >> 32))
}

func unpackToken(ev *syscall.EpollEvent) Token {
	return Token(uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32)
}

// connFD extracts the file descriptor without duplicating it. The fd stays
// owned by the net.Conn; the caller must Remove before closing the conn so
// no reused fd number is left registered.
func connFD(conn net.Conn) (int, error) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return -1, fmt.Errorf("poller: %T does not expose a file descriptor", conn)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return -1, err
	}
	fd := -1
	cerr := rc.Control(func(f uintptr) { fd = int(f) })
	if cerr != nil {
		return -1, cerr
	}
	return fd, nil
}

func (p *epollPoller) Add(conn net.Conn) (Token, error) {
	fd, err := connFD(conn)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, ErrClosed
	}
	p.next++
	tok := Token(p.next)
	// Registered with no event bits: epoll delivers nothing until the first
	// Arm installs the edge-triggered mask with EPOLL_CTL_MOD.
	var ev syscall.EpollEvent
	packToken(&ev, tok)
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		return 0, fmt.Errorf("poller: epoll_ctl add: %w", err)
	}
	p.regs[tok] = &epollReg{fd: fd}
	return tok, nil
}

// Arm installs the edge-triggered mask on first call, then probes the socket
// with a non-consuming MSG_PEEK. The probe is what makes parking race-free:
// an edge that fired while the owner still held the connection (its CAS
// found the state busy, so the event was dropped) left its bytes in the
// kernel buffer, and edge-triggered epoll will not fire for them again — the
// probe on the next Arm finds them and synthesizes the callback.
func (p *epollPoller) Arm(tok Token) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	reg, ok := p.regs[tok]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("poller: arm of unregistered token %d", tok)
	}
	if !reg.armed {
		// syscall.EPOLLET is declared as a negative int (bit 31); mask it
		// into the uint32 events field explicitly.
		const epollET = uint32(1) << 31
		ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | epollET}
		packToken(&ev, tok)
		if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, reg.fd, &ev); err != nil {
			p.mu.Unlock()
			return fmt.Errorf("poller: epoll_ctl mod: %w", err)
		}
		reg.armed = true
	}
	fd := reg.fd
	p.mu.Unlock()

	// Probe outside the lock: onReady may block (bounded-queue backpressure)
	// and must never do so while holding mu. The fd is non-blocking, so the
	// peek returns EAGAIN immediately when nothing is pending; data, EOF
	// (n==0, err==nil) and real errors (including EBADF from a concurrently
	// torn-down conn) all count as readiness — the owner's read surfaces
	// whichever it is, and its token map drops callbacks for removed tokens.
	var buf [1]byte
	p.probes.Add(1)
	n, _, err := syscall.Recvfrom(fd, buf[:], syscall.MSG_PEEK)
	if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
		return nil
	}
	_ = n
	p.mu.Lock()
	_, live := p.regs[tok]
	closed := p.closed
	p.mu.Unlock()
	if closed || !live {
		return nil
	}
	p.synthesized.Add(1)
	p.wakeups.Add(1)
	p.onReady(tok)
	return nil
}

func (p *epollPoller) Remove(tok Token) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	reg, ok := p.regs[tok]
	if !ok {
		return nil
	}
	delete(p.regs, tok)
	// EBADF/ENOENT are fine: the conn may already be closed by the peer path.
	if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, reg.fd, nil); err != nil &&
		err != syscall.EBADF && err != syscall.ENOENT {
		return fmt.Errorf("poller: epoll_ctl del: %w", err)
	}
	return nil
}

func (p *epollPoller) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	// Wake the wait loop; it observes closed and exits.
	_, _ = syscall.Write(p.wakeW, []byte{0})
	<-p.loopDone
	p.closeFDs()
	return nil
}

func (p *epollPoller) waitLoop() {
	defer close(p.loopDone)
	events := make([]syscall.EpollEvent, 128)
	for {
		var n int
		var werr error
		// Zero-timeout drain inside the RawConn.Read callback: returning
		// false parks this goroutine in the runtime netpoller until the epoll
		// fd reports readiness. The runtime resets fd readiness before
		// waiting, so the callback must always attempt the drain first.
		rerr := p.epRC.Read(func(fd uintptr) bool {
			n, werr = syscall.EpollWait(int(fd), events, 0)
			if werr == syscall.EINTR {
				werr = nil
				return false
			}
			return n > 0 || werr != nil
		})
		if rerr != nil || werr != nil {
			// The epoll fd was closed under us (Close won a race) or broke;
			// either way delivery is over.
			return
		}
		for i := 0; i < n; i++ {
			tok := unpackToken(&events[i])
			if tok == wakeToken {
				p.mu.Lock()
				closed := p.closed
				p.mu.Unlock()
				if closed {
					return
				}
				continue
			}
			p.mu.Lock()
			_, live := p.regs[tok]
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return
			}
			if live {
				p.wakeups.Add(1)
				p.onReady(tok)
			}
		}
	}
}
