package fingerprint

import (
	"fmt"
	"sync"
	"testing"
)

func h64(s string) uint64 {
	// FNV-1a + avalanche, matching the engine's routing hash shape closely
	// enough for tests.
	var hv uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		hv ^= uint64(s[i])
		hv *= 1099511628211
	}
	hv ^= hv >> 33
	hv *= 0xff51afd7ed558ccd
	hv ^= hv >> 33
	return hv
}

// TestSketchTopK: a heavily skewed stream must surface the hot keys with
// counts that dominate the tail, and Space-Saving's guarantee holds: any
// key with frequency > N/TopK is monitored.
func TestSketchTopK(t *testing.T) {
	var s Sketch
	// 3 hot keys at 1000 each, 100 cold keys at 3 each.
	for i := 0; i < 1000; i++ {
		for _, k := range []string{"hot_a", "hot_b", "hot_c"} {
			s.Record(h64(k), []byte(k))
		}
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("cold_%03d", i)
			s.Record(h64(k), []byte(k))
		}
	}
	got := s.collect(nil)
	counts := map[string]uint64{}
	for _, hk := range got {
		counts[hk.Key] = hk.Count
	}
	for _, k := range []string{"hot_a", "hot_b", "hot_c"} {
		if counts[k] < 1000 {
			t.Fatalf("hot key %q count %d, want ≥1000 (sketch: %v)", k, counts[k], got)
		}
	}
}

// TestRecorderMixAndConcentration: op-mix counters and the merged
// concentration estimate must reflect a single-hot-key storm.
func TestRecorderMixAndConcentration(t *testing.T) {
	o := New(2)
	r := o.Shard(0).Recorder()
	hot := []byte("stormkey")
	for i := 0; i < 900; i++ {
		r.Record(OpRead, h64("stormkey"), hot, 64, true)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("bg_%04d", i)
		r.Record(OpWrite, h64(k), []byte(k), 128, true)
	}
	snap := o.Snapshot()
	s0 := snap.Shards[0]
	if s0.Reads != 900 || s0.Writes != 100 || s0.Ops != 1000 {
		t.Fatalf("mix: reads=%d writes=%d ops=%d", s0.Reads, s0.Writes, s0.Ops)
	}
	if s0.Concentration < 0.9 {
		t.Fatalf("concentration %.3f, want ≥0.9 for a 90%% single-key storm", s0.Concentration)
	}
	if len(s0.HotKeys) == 0 || s0.HotKeys[0].Key != "stormkey" {
		t.Fatalf("hot keys %v, want stormkey first", s0.HotKeys)
	}
	if o.Concentration(0) < 0.9 {
		t.Fatalf("Concentration(0) = %.3f", o.Concentration(0))
	}
	if c := o.Concentration(1); c != 0 {
		t.Fatalf("idle shard concentration %.3f, want 0", c)
	}
	if s0.VSize.Count != 1000 || s0.VSize.Max < 128 {
		t.Fatalf("vsize snapshot %+v", s0.VSize)
	}
}

// TestDecayWindow: after enough decay ticks with no new traffic the window
// drains toward zero, so concentration reflects *current* traffic.
func TestDecayWindow(t *testing.T) {
	o := New(1)
	r := o.Shard(0).Recorder()
	for i := 0; i < 1000; i++ {
		r.Record(OpRead, h64("old_hot"), []byte("old_hot"), 32, true)
	}
	o.Shard(0).AddAborts(AbortConflict, 800)
	if got := o.Snapshot().Shards[0].Ops; got != 1000 {
		t.Fatalf("pre-decay ops %d", got)
	}
	// 15 halvings: 1000 >> 15 == 0.
	for i := 0; i < 15*decayEvery; i++ {
		o.Tick()
	}
	s := o.Snapshot().Shards[0]
	if s.Ops != 0 || s.Aborts.Conflicts != 0 {
		t.Fatalf("post-decay ops=%d conflicts=%d, want 0/0", s.Ops, s.Aborts.Conflicts)
	}
}

// TestResetClearsEverything: stats-reset semantics — counters and sketches
// clear, and the observer is immediately usable again.
func TestResetClearsEverything(t *testing.T) {
	o := New(1)
	r := o.Shard(0).Recorder()
	r.Record(OpDelete, h64("k"), []byte("k"), -1, false)
	o.Shard(0).AddAborts(AbortWatchdog, 5)
	o.TxnQueue.Record(1234)
	o.TxnSerialWait.Record(99)
	o.Reset()
	s := o.Snapshot()
	sh := s.Shards[0]
	if sh.Ops != 0 || sh.Misses != 0 || len(sh.HotKeys) != 0 || sh.Aborts.Watchdog != 0 {
		t.Fatalf("shard not cleared: %+v", sh)
	}
	if s.TxnQueue.Count != 0 || s.TxnSerialWait.Count != 0 {
		t.Fatalf("txn hists not cleared: %+v", s)
	}
	r.Record(OpRead, h64("k2"), []byte("k2"), 8, true)
	if o.Snapshot().Shards[0].Ops != 1 {
		t.Fatal("observer dead after reset")
	}
}

// TestHistQuantiles: bucket upper-bound quantiles must bracket the data.
func TestHistQuantiles(t *testing.T) {
	var h LogHist
	for i := 0; i < 99; i++ {
		h.Record(100) // bucket 7, ub 127
	}
	h.Record(100000) // bucket 17
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.P50 < 100 || s.P50 > 127 {
		t.Fatalf("p50 %d outside [100,127]", s.P50)
	}
	if s.P99 < 100 {
		t.Fatalf("p99 %d", s.P99)
	}
	if s.Max != 100000 {
		t.Fatalf("max %d", s.Max)
	}
}

// TestFingerprintConcurrentRace: many writers (one per recorder, honoring
// the single-writer contract), plus concurrent snapshots, decay ticks and
// resets. Run under -race by make fingerprint-race.
func TestFingerprintConcurrentRace(t *testing.T) {
	o := New(4)
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			r := o.Shard(w % 4).Recorder()
			for i := 0; i < 5000; i++ {
				k := fmt.Sprintf("k_%d_%d", w, i%37)
				r.Record(Op(i%int(numOps)), h64(k), []byte(k), i%2048, i%3 != 0)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Tick()
			_ = o.Snapshot()
			_ = o.Concentration(1)
			o.TxnValidate.Record(42)
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; i < 50; i++ {
			o.Reset()
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}
