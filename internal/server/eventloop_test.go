package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/poller"
	"repro/internal/protocol"
)

// transports runs a subtest per event-loop poller implementation (the
// platform one and, via the newPoller seam, the portable fallback), so the
// whole transport is exercised over both on every platform.
func transports(t *testing.T, body func(t *testing.T)) {
	t.Run("platform", body)
	t.Run("fallback", func(t *testing.T) {
		old := newPoller
		newPoller = poller.NewFallback
		defer func() { newPoller = old }()
		body(t)
	})
}

func TestEventLoopServesText(t *testing.T) {
	transports(t, func(t *testing.T) {
		s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true})
		if !s.EventLoop() {
			t.Fatal("EventLoop() = false on an event-loop server")
		}
		roundTrip(t, s.Addr(), "set k 0 0 5\r\nhello\r\n", "STORED")
		roundTrip(t, s.Addr(), "version\r\n", "VERSION")

		// Same connection, many sequential commands: the park/arm/burst cycle
		// must hold up across command boundaries.
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for i := 0; i < 50; i++ {
			fmt.Fprintf(conn, "set ek%d 0 0 2\r\nvv\r\n", i)
			if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
				t.Fatalf("set %d: %q", i, line)
			}
			fmt.Fprintf(conn, "get ek%d\r\n", i)
			if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "VALUE") {
				t.Fatalf("get %d: %q", i, line)
			}
			r.ReadString('\n')
			r.ReadString('\n')
		}
	})
}

func TestEventLoopPipelinedBurst(t *testing.T) {
	transports(t, func(t *testing.T) {
		s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true, Workers: 2})
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// One write carrying many commands: the whole pipeline must be served
		// as a burst (parking mid-pipeline with buffered input would hang).
		var b strings.Builder
		const n = 64
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "set pk%d 0 0 3\r\nabc\r\n", i)
		}
		if _, err := conn.Write([]byte(b.String())); err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		for i := 0; i < n; i++ {
			line, err := r.ReadString('\n')
			if err != nil || line != "STORED\r\n" {
				t.Fatalf("pipelined reply %d: %q %v", i, line, err)
			}
		}
	})
}

func TestEventLoopShardedConcurrentClients(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8, Shards: 4})
	c.Start()
	s, err := ListenConfig(c, Config{Addr: "127.0.0.1:0", EventLoop: true, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		c.Stop()
	}()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for op := 0; op < 40; op++ {
				key := fmt.Sprintf("sk-%d-%d", i, op)
				fmt.Fprintf(conn, "set %s 0 0 2\r\nvv\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || line != "STORED\r\n" {
					t.Errorf("set: %q %v", line, err)
					return
				}
				fmt.Fprintf(conn, "get %s\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VALUE") {
					t.Errorf("get: %q %v", line, err)
					return
				}
				r.ReadString('\n')
				r.ReadString('\n')
			}
		}()
	}
	wg.Wait()
}

func TestEventLoopGracefulDrainFinishesInFlightCommand(t *testing.T) {
	transports(t, func(t *testing.T) {
		s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true, DrainTimeout: 5 * time.Second})

		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()

		// Command header without its data block: a worker is now parked inside
		// the command when Close begins.
		fmt.Fprintf(conn, "set drained 0 0 5\r\nhel")
		time.Sleep(100 * time.Millisecond)

		closed := make(chan error, 1)
		go func() { closed <- s.Close() }()

		time.Sleep(50 * time.Millisecond)
		fmt.Fprintf(conn, "lo\r\n")
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil || line != "STORED\r\n" {
			t.Fatalf("in-flight command not drained: %q %v", line, err)
		}
		if err := <-closed; err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

func TestEventLoopIdleConnectionsReaped(t *testing.T) {
	transports(t, func(t *testing.T) {
		s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true, IdleTimeout: 100 * time.Millisecond})
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "version\r\n")
		r := bufio.NewReader(conn)
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatalf("first command: %v", err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := r.ReadString('\n'); err == nil {
			t.Fatal("idle connection not reaped")
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if s.ConnErrors().Timeout.Load() == 1 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("conn_errors_timeout = %d, want 1", s.ConnErrors().Timeout.Load())
	})
}

func TestEventLoopMaxConnsBackpressure(t *testing.T) {
	s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true, MaxConns: 2})
	var held []net.Conn
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "version\r\n")
		if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
			t.Fatalf("held conn %d not served: %v", i, err)
		}
		held = append(held, conn)
	}
	extra, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	fmt.Fprintf(extra, "version\r\n")
	extra.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := bufio.NewReader(extra).ReadString('\n'); err == nil {
		t.Fatal("third connection served while both slots were held")
	}
	held[0].Close()
	extra.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(extra).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("queued connection not served after slot freed: %q %v", line, err)
	}
}

// TestEventLoopWireTxImplicitAbortOnDisconnect proves the wire-transaction
// contract survives the transport refactor: a connection that dies
// mid-transaction — including mid-request, with a command header already
// parsed — leaves no trace in the cache.
func TestEventLoopWireTxImplicitAbortOnDisconnect(t *testing.T) {
	transports(t, func(t *testing.T) {
		s := startServerConfig(t, engine.ITMax, Config{EventLoop: true})

		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "txbegin\r\n")
		if line, _ := r.ReadString('\n'); line != "STARTED\r\n" {
			t.Fatalf("txbegin: %q", line)
		}
		fmt.Fprintf(conn, "set ghost 0 0 5\r\nhello\r\n")
		if line, _ := r.ReadString('\n'); line != "QUEUED\r\n" {
			t.Fatalf("queued set: %q", line)
		}
		// Drop mid-request: a new command's header, no data block, then RST.
		fmt.Fprintf(conn, "set ghost2 0 0 5\r\nhe")
		conn.Close()

		// The queued mutation must never apply — the transaction was
		// connection-local and the disconnect is its implicit abort — and the
		// server must stay healthy for other clients.
		time.Sleep(100 * time.Millisecond)
		roundTrip(t, s.Addr(), "get ghost\r\n", "END")
		roundTrip(t, s.Addr(), "set alive 0 0 2\r\nok\r\n", "STORED")
	})
}

// TestEventLoopBufferPoolLeakGuard drains every connection and asserts the
// in-use buffer gauge returns to its baseline: no burst path may leak a
// pooled buffer pair, and parked connections must hold none.
func TestEventLoopBufferPoolLeakGuard(t *testing.T) {
	s := startServerConfig(t, engine.ITOnCommit, Config{EventLoop: true})
	base, _ := protocol.BufferGauges()

	const conns = 20
	var cs []net.Conn
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, conn)
		r := bufio.NewReader(conn)
		fmt.Fprintf(conn, "set lk%d 0 0 2\r\nvv\r\n", i)
		if line, _ := r.ReadString('\n'); line != "STORED\r\n" {
			t.Fatalf("set: %q", line)
		}
	}
	// All connections are parked now (replies read ⇒ bursts over): parked
	// connections hold zero buffers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if inuse, _ := protocol.BufferGauges(); inuse == base {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if inuse, _ := protocol.BufferGauges(); inuse != base {
		t.Fatalf("parked conns hold %d buffer pairs, want %d", inuse, base)
	}

	for _, c := range cs {
		c.Close()
	}
	for time.Now().Before(deadline) {
		if inuse, _ := protocol.BufferGauges(); inuse == base {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if inuse, _ := protocol.BufferGauges(); inuse != base {
		t.Fatalf("conn_buffers_inuse = %d after drain, want %d", inuse, base)
	}

	// The stats surface must report the gauges.
	resp := statsBlock(t, s.Addr())
	if !strings.Contains(resp, "STAT conn_buffers_inuse ") ||
		!strings.Contains(resp, "STAT conn_buffers_idle ") {
		t.Fatalf("stats missing buffer gauges:\n%s", resp)
	}
}

// statsBlock fetches a full `stats` response.
func statsBlock(t *testing.T, addr string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "stats\r\n")
	r := bufio.NewReader(conn)
	var b strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stats read: %v", err)
		}
		b.WriteString(line)
		if line == "END\r\n" {
			return b.String()
		}
	}
}

// TestEventLoopAcceptStormConcurrentClose is the -race smoke for the
// transport: dialing clients, some sending, some slamming the door, while
// Close races the storm. No leaks, no hangs, no race reports.
func TestEventLoopAcceptStormConcurrentClose(t *testing.T) {
	transports(t, func(t *testing.T) {
		for round := 0; round < 10; round++ {
			c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
			c.Start()
			s, err := ListenConfig(c, Config{Addr: "127.0.0.1:0", EventLoop: true, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for d := 0; d < 8; d++ {
				d := d
				wg.Add(1)
				go func() {
					defer wg.Done()
					conn, err := net.Dial("tcp", s.Addr())
					if err != nil {
						return
					}
					switch d % 3 {
					case 0:
						conn.Close() // immediate hangup
					case 1:
						fmt.Fprintf(conn, "set storm%d 0 0 2\r\nvv\r\n", d)
						conn.Close() // hangup with reply possibly in flight
					default:
						fmt.Fprintf(conn, "version\r\n")
						conn.SetReadDeadline(time.Now().Add(2 * time.Second))
						bufio.NewReader(conn).ReadString('\n')
						conn.Close()
					}
				}()
			}
			done := make(chan struct{})
			go func() {
				s.Close()
				close(done)
			}()
			wg.Wait()
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				t.Fatal("Close hung during accept storm")
			}
			c.Stop()
		}
	})
}
