// Package bench regenerates every figure and table of the paper's evaluation
// (§3-§4): the staged-transactionalization time curves (Figures 4, 6, 8, 9),
// the serialization-cause tables at 4 threads (Tables 1-4), the serial-lock
// removal experiment (Figure 10), the algorithm/contention-manager comparison
// (Figure 11), and the §4 abort-ratio quotes.
//
// Time series use the paper's methodology: every client performs a fixed
// number of operations, so perfect scaling is a flat curve, and the reported
// number is wall-clock seconds for the whole run. Absolute values depend on
// the host; the claims under test are the shapes (who wins, by what factor,
// where the crossovers fall), recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/memslap"
	"repro/internal/stm"
)

// Options scales the experiments. The defaults are laptop-sized; the paper's
// full size is OpsPerThread=625000 on 1..12 threads.
type Options struct {
	Threads      []int // thread counts for figures (default 1,2,4,8,12)
	TableThreads int   // thread count for tables (paper: 4)
	OpsPerThread int   // memslap --execute-number (default 20000)
	KeySpace     int
	ValueSize    int
	// MemLimit defaults to less than the working set, so eviction — and with
	// it the sem_post/logging path whose serialization the Lib→onCommit
	// transition removes — runs continuously, as in the paper's sustained
	// memslap load.
	MemLimit  uint64
	HashPower uint // initial table power; small enough that expansion fires
	Trials    int  // trials per point, averaged (paper: 5)
	// Zipf skews key popularity (hot keys); the paper's memslap run is
	// uniform, so this is exploratory.
	Zipf bool
}

func (o Options) withDefaults() Options {
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 12}
	}
	if o.TableThreads == 0 {
		o.TableThreads = 4
	}
	if o.OpsPerThread == 0 {
		o.OpsPerThread = 20000
	}
	if o.KeySpace == 0 {
		o.KeySpace = 4096
	}
	if o.ValueSize == 0 {
		o.ValueSize = 1024
	}
	if o.MemLimit == 0 {
		o.MemLimit = 2 << 20
	}
	if o.HashPower == 0 {
		o.HashPower = 10
	}
	if o.Trials == 0 {
		o.Trials = 1
	}
	return o
}

// Variant is one curve: a branch plus an optional STM override (Figure 11
// swaps algorithms and contention managers on the NoLock code base).
type Variant struct {
	Label  string
	Branch engine.Branch
	STM    *stm.Config
}

// Point is one measured figure point.
type Point struct {
	Threads int
	Seconds float64
	OpsPerS float64
}

// Series is one labeled curve.
type Series struct {
	Variant Variant
	Points  []Point
}

// Figure is a reproduced figure.
type Figure struct {
	ID     int
	Title  string
	Series []Series
}

// TableRow is one row of Tables 1-4.
type TableRow struct {
	Label        string
	Transactions uint64
	InFlight     uint64
	StartSerial  uint64
	AbortSerial  uint64
}

// Table is a reproduced table.
type Table struct {
	ID    int
	Title string
	Rows  []TableRow
}

// Measurement is one run's combined outcome.
type Measurement struct {
	Seconds float64
	OpsPerS float64
	Stats   stm.Snapshot
}

// Run executes one memslap run against a fresh cache for the variant. With
// multiple trials the MEDIAN time is reported: on a shared or single-core
// host the median resists the scheduler hiccups that skew a mean.
func Run(v Variant, threads int, o Options) Measurement {
	o = o.withDefaults()
	secs := make([]float64, 0, o.Trials)
	rates := make([]float64, 0, o.Trials)
	var snap stm.Snapshot
	for trial := 0; trial < o.Trials; trial++ {
		c := engine.New(engine.Config{
			Branch:    v.Branch,
			Shards:    1, // figure/table baselines measure the single-domain engine
			STM:       v.STM,
			MemLimit:  o.MemLimit,
			HashPower: o.HashPower,
			Automove:  true,
		})
		c.Start()
		res := memslap.RunDirect(c, memslap.Config{
			Concurrency:   threads,
			ExecuteNumber: o.OpsPerThread,
			KeySpace:      o.KeySpace,
			ValueSize:     o.ValueSize,
			Zipf:          o.Zipf,
			Seed:          uint64(trial + 1),
		})
		if rt := c.Runtime(); rt != nil {
			snap = rt.Stats() // counters scale with ops, not trials
		}
		c.Stop()
		secs = append(secs, res.Duration.Seconds())
		rates = append(rates, res.OpsPerSec())
	}
	return Measurement{Seconds: median(secs), OpsPerS: median(rates), Stats: snap}
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func runFigure(id int, title string, variants []Variant, o Options) Figure {
	o = o.withDefaults()
	fig := Figure{ID: id, Title: title}
	for _, v := range variants {
		s := Series{Variant: v}
		for _, th := range o.Threads {
			m := Run(v, th, o)
			s.Points = append(s.Points, Point{Threads: th, Seconds: m.Seconds, OpsPerS: m.OpsPerS})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

func runTable(id int, title string, variants []Variant, o Options) Table {
	o = o.withDefaults()
	tab := Table{ID: id, Title: title}
	for _, v := range variants {
		m := Run(v, o.TableThreads, o)
		tab.Rows = append(tab.Rows, TableRow{
			Label:        v.Label,
			Transactions: m.Stats.Commits,
			InFlight:     m.Stats.InFlightSwitch,
			StartSerial:  m.Stats.StartSerial,
			AbortSerial:  m.Stats.AbortSerial,
		})
	}
	return tab
}

// branch is shorthand for a plain branch variant.
func branch(label string, b engine.Branch) Variant { return Variant{Label: label, Branch: b} }

// Figure-series definitions, matching the paper's legends.

func fig4Variants() []Variant {
	return []Variant{
		branch("Baseline", engine.Baseline),
		branch("Semaphore", engine.Semaphore),
		branch("ItemPriv (IP)", engine.IP),
		branch("ItemTx (IT)", engine.IT),
		branch("IP-Callable", engine.IPCallable),
		branch("IT-Callable", engine.ITCallable),
	}
}

func fig6Variants() []Variant {
	return []Variant{
		branch("Baseline", engine.Baseline),
		branch("IP-Callable", engine.IPCallable),
		branch("IT-Callable", engine.ITCallable),
		branch("IP-Max", engine.IPMax),
		branch("IT-Max", engine.ITMax),
	}
}

func fig8Variants() []Variant {
	return append(fig6Variants(),
		branch("IP-Libraries", engine.IPLib),
		branch("IT-Libraries", engine.ITLib))
}

func fig9Variants() []Variant {
	return []Variant{
		branch("Baseline", engine.Baseline),
		branch("IP-Callable", engine.IPCallable),
		branch("IT-Callable", engine.ITCallable),
		branch("IP-Libraries", engine.IPLib),
		branch("IT-Libraries", engine.ITLib),
		branch("IP-onCommit", engine.IPOnCommit),
		branch("IT-onCommit", engine.ITOnCommit),
	}
}

func fig10Variants() []Variant {
	return []Variant{
		branch("Baseline", engine.Baseline),
		branch("IP-onCommit", engine.IPOnCommit),
		branch("IT-onCommit", engine.ITOnCommit),
		branch("IP-NoLock", engine.IPNoLock),
		branch("IT-NoLock", engine.ITNoLock),
	}
}

// fig11Variants compares STM algorithms and contention managers on the best
// NoLock code base (IP-NoLock = "GCC-NoCM" in the paper).
func fig11Variants() []Variant {
	mk := func(label string, cfg stm.Config) Variant {
		c := cfg
		return Variant{Label: label, Branch: engine.IPNoLock, STM: &c}
	}
	return []Variant{
		branch("Baseline", engine.Baseline),
		mk("GCC-NoCM", stm.Config{Algorithm: stm.MLWT, CM: stm.CMNone, NoSerialLock: true}),
		mk("NOrec", stm.Config{Algorithm: stm.NOrec, CM: stm.CMNone, NoSerialLock: true}),
		mk("Lazy", stm.Config{Algorithm: stm.LazyAlg, CM: stm.CMNone, NoSerialLock: true}),
		mk("GCC-Hourglass", stm.Config{Algorithm: stm.MLWT, CM: stm.CMHourglass, HourglassAfter: 128, NoSerialLock: true}),
		mk("GCC-Backoff", stm.Config{Algorithm: stm.MLWT, CM: stm.CMBackoff, NoSerialLock: true}),
	}
}

// FigureVariants returns the series of figure id in legend order (for
// external harnesses like the repository-level benchmarks).
func FigureVariants(id int) []Variant {
	switch id {
	case 4:
		return fig4Variants()
	case 6:
		return fig6Variants()
	case 8:
		return fig8Variants()
	case 9:
		return fig9Variants()
	case 10:
		return fig10Variants()
	case 11:
		return fig11Variants()
	}
	return nil
}

// TableVariants returns the rows of table id in paper order.
func TableVariants(id int) []Variant {
	switch id {
	case 1:
		return []Variant{
			branch("ItemPriv (IP)", engine.IP),
			branch("ItemTx (IT)", engine.IT),
			branch("IP-Callable", engine.IPCallable),
			branch("IT-Callable", engine.ITCallable),
		}
	case 2:
		return []Variant{
			branch("IP-Callable", engine.IPCallable),
			branch("IT-Callable", engine.ITCallable),
			branch("IP-Max", engine.IPMax),
			branch("IT-Max", engine.ITMax),
		}
	case 3:
		return append(TableVariants(2),
			branch("IP-Lib", engine.IPLib),
			branch("IT-Lib", engine.ITLib))
	case 4:
		return []Variant{
			branch("IP-Callable", engine.IPCallable),
			branch("IT-Callable", engine.ITCallable),
			branch("IP-Lib", engine.IPLib),
			branch("IT-Lib", engine.ITLib),
			branch("IP-onCommit", engine.IPOnCommit),
			branch("IT-onCommit", engine.ITOnCommit),
		}
	}
	return nil
}

// RunFigure reproduces figure id (4, 6, 8, 9, 10 or 11).
func RunFigure(id int, o Options) (Figure, error) {
	switch id {
	case 4:
		return runFigure(4, "Performance of baseline transactional memcached", fig4Variants(), o), nil
	case 6:
		return runFigure(6, "Performance of maximally transactionalized memcached", fig6Variants(), o), nil
	case 8:
		return runFigure(8, "Performance with safe library functions", fig8Variants(), o), nil
	case 9:
		return runFigure(9, "Performance with onCommit handlers", fig9Variants(), o), nil
	case 10:
		return runFigure(10, "Performance without the readers/writer lock", fig10Variants(), o), nil
	case 11:
		return runFigure(11, "Comparison to other TM algorithms and contention managers", fig11Variants(), o), nil
	}
	return Figure{}, fmt.Errorf("bench: no figure %d (paper figures: 4, 6, 8, 9, 10, 11)", id)
}

// RunTable reproduces table id (1-4): serialization causes at TableThreads.
func RunTable(id int, o Options) (Table, error) {
	titles := map[int]string{
		1: "Serialized transactions, baseline transactionalization",
		2: "Serialized transactions, maximal transactionalization",
		3: "Serialized transactions, safe libraries",
		4: "Serialized transactions, onCommit handlers",
	}
	title, ok := titles[id]
	if !ok {
		return Table{}, fmt.Errorf("bench: no table %d (paper tables: 1-4)", id)
	}
	return runTable(id, title, TableVariants(id), o), nil
}

// RunProfiled runs one branch with transaction observability enabled (the
// §6 execinfo-style tooling, now the txobs event pipeline) and returns the
// attribution report: serialization causes, the conflict heat map by named
// structure, and the phase/command latency histograms.
func RunProfiled(b engine.Branch, threads int, o Options) (string, error) {
	o = o.withDefaults()
	c := engine.New(engine.Config{
		Branch:    b,
		Shards:    1, // profile one TM domain; the shard sweep has its own path
		MemLimit:  o.MemLimit,
		HashPower: o.HashPower,
		Automove:  true,
	})
	rt := c.Runtime()
	if rt == nil {
		return "", fmt.Errorf("bench: branch %s is lock-based; nothing to profile", b)
	}
	obs := c.EnableTracing()
	c.Start()
	res := memslap.RunDirect(c, memslap.Config{
		Concurrency:   threads,
		ExecuteNumber: o.OpsPerThread,
		KeySpace:      o.KeySpace,
		ValueSize:     o.ValueSize,
	})
	c.Stop()
	s := rt.Stats()
	head := fmt.Sprintf("%d ops in %.3fs; transactions=%d in-flight=%d start-serial=%d abort-serial=%d\n",
		res.Ops, res.Duration.Seconds(), s.Commits, s.InFlightSwitch, s.StartSerial, s.AbortSerial)
	return head + obs.Report(10).String(), nil
}

// RatioRow is one §4 abort-rate quote.
type RatioRow struct {
	Label           string
	AbortsPerCommit float64
	RateVariance    float64
}

// RunRatios reproduces the §4 abort-ratio measurements at the highest thread
// count ("at 12 threads, NOrec worker threads aborted once per 5 commits,
// Lazy 14 times per 1 commit, and GCC 12.6 times per 1 commit").
func RunRatios(o Options) []RatioRow {
	o = o.withDefaults()
	threads := o.Threads[len(o.Threads)-1]
	var out []RatioRow
	for _, v := range fig11Variants()[1:] { // skip lock-based baseline
		m := Run(v, threads, o)
		out = append(out, RatioRow{
			Label:           v.Label,
			AbortsPerCommit: m.Stats.AbortsPerCommit(),
			RateVariance:    m.Stats.AbortRateVariance(),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Rendering

// String renders the figure as an aligned text table, one row per thread
// count, one column per series — the rows the paper plots.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-8s", "threads")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Variant.Label)
	}
	b.WriteString("\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-8d", p.Threads)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %14.3fs", s.Points[i].Seconds)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders the table in the paper's column format.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s (frequency and cause of serialized transactions)\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-16s %12s %18s %18s %12s\n", "Branch", "Transactions", "In-Flight Switch", "Start Serial", "Abort Serial")
	pct := func(n, total uint64) string {
		if total == 0 {
			return fmt.Sprintf("%d", n)
		}
		return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(total))
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s %12d %18s %18s %12d\n",
			r.Label, r.Transactions, pct(r.InFlight, r.Transactions), pct(r.StartSerial, r.Transactions), r.AbortSerial)
	}
	return b.String()
}
