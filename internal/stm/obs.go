package stm

import (
	"strings"
	"sync/atomic"

	"repro/internal/txobs"
)

// Observability integration. The runtime holds two observer pointers: obsAll
// is the persistent observer (created on first enable, survives disable so
// collected data can still be queried), and obs is the active pointer the hot
// paths consult — nil while tracing is disabled. Every event site in the
// runtime therefore costs exactly one atomic pointer load when tracing is
// off.

// EnableTracing activates transaction event tracing, creating the observer
// (sized to the orec table) on first use, and returns it.
func (rt *Runtime) EnableTracing() *txobs.Observer {
	rt.mu.Lock()
	o := rt.obsAll.Load()
	if o == nil {
		o = txobs.New(txobs.Options{Orecs: len(rt.orecs)})
		rt.obsAll.Store(o)
	}
	rt.mu.Unlock()
	o.Enable()
	rt.obs.Store(o)
	return o
}

// AttachTracing installs a shared observer into this runtime and activates
// event recording. A sharded engine calls it on every shard's runtime with
// one observer, the shard's index, and a disjoint orec base offset, so the
// observer's conflict heat map covers all domains without index collisions
// and every event carries its shard. Subsequent Enable/DisableTracing calls
// keep using the attached observer.
func (rt *Runtime) AttachTracing(o *txobs.Observer, shard, orecBase int) {
	rt.obsShard.Store(int32(shard))
	rt.obsBase.Store(int32(orecBase))
	rt.mu.Lock()
	rt.obsAll.Store(o)
	rt.mu.Unlock()
	o.Enable()
	rt.obs.Store(o)
}

// OrecCount returns the size of the runtime's ownership-record table (for
// sizing a shared observer across sharded runtimes).
func (rt *Runtime) OrecCount() int { return len(rt.orecs) }

// DisableTracing stops event recording. The observer (and everything it has
// collected) remains reachable through TracingObserver.
func (rt *Runtime) DisableTracing() {
	if o := rt.obsAll.Load(); o != nil {
		o.Disable()
	}
	rt.obs.Store(nil)
}

// TracingObserver returns the runtime's observer, or nil if tracing was never
// enabled.
func (rt *Runtime) TracingObserver() *txobs.Observer { return rt.obsAll.Load() }

// orecIndex maps a location id to its orec-table index (the same hash
// orecFor uses) plus the runtime's base offset in a shared observer, for
// conflict-event attribution.
func (rt *Runtime) orecIndex(id uint64) int32 {
	return rt.obsBase.Load() + int32((id*0x9E3779B97F4A7C15)>>32&rt.omask)
}

// obsEvent records a runtime-scoped event (no thread context, e.g. watchdog
// escalations). The tracing-disabled cost is the single obs load.
func (rt *Runtime) obsEvent(k txobs.Kind, cause string) {
	if o := rt.obs.Load(); o != nil {
		o.Record(&txobs.Event{Kind: k, Cause: cause, Orec: -1, Shard: rt.obsShard.Load()})
	}
}

// SetShardInfo stamps the runtime's TM-domain index and orec base offset
// without attaching an observer, so events recorded through a request-trace
// hook carry their shard and orec coordinates even while the aggregate
// observer is off. AttachTracing overwrites these with the same values.
func (rt *Runtime) SetShardInfo(shard, orecBase int) {
	rt.obsShard.Store(int32(shard))
	rt.obsBase.Store(int32(orecBase))
}

// sink returns the thread's recording sink for o, creating it on first use
// (or when tracing was re-enabled with a different observer).
func (th *Thread) sink(o *txobs.Observer) *txobs.Sink {
	if th.obsSinkFor != o {
		th.obsSink = o.NewSink()
		th.obsSinkFor = o
	}
	return th.obsSink
}

// TraceSink receives a copy of every event a thread's transactions emit while
// a request-trace hook is installed (see Thread.SetTraceHook). TraceTx must
// copy the event before returning: the runtime may hand the same pointer to
// the aggregate observer, which stamps and retains it.
type TraceSink interface {
	TraceTx(ev *txobs.Event)
}

// SetTraceHook installs (or, with nil, removes) the thread's request-trace
// hook. The hook makes every event site fire regardless of the aggregate
// observer's state, so a sampled request sees its full span stream even when
// `stats tm` tracing is off. The thread is single-owner; the field is plain.
func (th *Thread) SetTraceHook(t TraceSink) { th.trace = t }

// TraceHook returns the currently installed hook (nil when none).
func (th *Thread) TraceHook() TraceSink { return th.trace }

// deliver fans one event out to the thread's request-trace hook (which copies
// it) and then to the aggregate observer (which takes ownership). Either may
// be absent; callers guarantee at least one is present.
func (th *Thread) deliver(o *txobs.Observer, ev *txobs.Event) {
	if t := th.trace; t != nil {
		t.TraceTx(ev)
	}
	if o != nil {
		th.sink(o).Record(ev)
	}
}

// EnableOwnerTracking allocates the orec-owner attribution table (one
// pointer per orec). Idempotent; called once by the engine when request
// tracing is first enabled. Without it, owner attribution quietly reports
// "" — tracing still works, the conflict graph just has anonymous writers.
func (rt *Runtime) EnableOwnerTracking() {
	if rt.owners.Load() != nil {
		return
	}
	t := make([]atomic.Pointer[string], len(rt.orecs))
	rt.owners.CompareAndSwap(nil, &t)
}

// noteOwner records site as the last traced writer of the orec covering id.
// Last-writer-wins: the table answers "who was here" (approximately), not
// "who holds the lock now" — good enough for a conflict graph, and the
// honest best available once the orec word itself only holds a lock word.
func (rt *Runtime) noteOwner(id uint64, site *string) {
	t := rt.owners.Load()
	if t == nil {
		return
	}
	(*t)[(id*0x9E3779B97F4A7C15)>>32&rt.omask].Store(site)
}

// ownerAt returns the last traced writer's site for the orec covering id,
// "" when unknown.
func (rt *Runtime) ownerAt(id uint64) string {
	t := rt.owners.Load()
	if t == nil {
		return ""
	}
	if p := (*t)[(id*0x9E3779B97F4A7C15)>>32&rt.omask].Load(); p != nil {
		return *p
	}
	return ""
}

// noteSerialOwner records site as the most recent traced serial-lock writer.
func (rt *Runtime) noteSerialOwner(site *string) { rt.serialOwner.Store(site) }

// serialOwnerSite returns the site of the last traced serial-lock writer.
func (rt *Runtime) serialOwnerSite() string {
	if p := rt.serialOwner.Load(); p != nil {
		return *p
	}
	return ""
}

// sitePtr interns the transaction's site label as a stable pointer, cached on
// the thread (sites are static per call site, so the cache almost always
// hits). Used for owner attribution, where an 8-byte pointer store must not
// become a string allocation on the write barrier.
func (tx *Tx) sitePtr() *string {
	th := tx.th
	if th.sitePtrFor != tx.props.Site {
		s := tx.props.Site
		th.sitePtrVal = &s
		th.sitePtrFor = s
	}
	return th.sitePtrVal
}

// noteConflict stashes the abort cause and the conflicting location id on the
// attempt; the run loop reads them when it records the abort event. Called on
// abort paths only (never on the hot path), so it is unconditional.
func (tx *Tx) noteConflict(cause string, id uint64) {
	tx.abortCause = cause
	tx.conflictID = id
}

// obsRecord builds and records an event carrying the attempt's current
// context: site, serial mode, retry ordinal, read/write-set sizes, and the
// conflicting orec/label/owner when one was noted. o may be nil (request
// tracing without the aggregate observer); deliver handles both consumers.
func (tx *Tx) obsRecord(o *txobs.Observer, k txobs.Kind, cause string) {
	ev := &txobs.Event{
		Kind:   k,
		Cause:  cause,
		Site:   tx.props.Site,
		Shard:  tx.rt.obsShard.Load(),
		Serial: tx.serial,
		Retry:  uint32(tx.th.consecAborts.Load()),
		Reads:  uint32(len(tx.reads) + len(tx.nReadsW) + len(tx.nReadsA)),
		Writes: uint32(len(tx.undoW) + len(tx.undoA) + len(tx.redoW) + len(tx.redoA)),
		Orec:   -1,
	}
	if tx.conflictID != 0 {
		ev.Orec = tx.rt.orecIndex(tx.conflictID)
		ev.Label = labelOf(tx.conflictID)
		ev.Owner = tx.rt.ownerAt(tx.conflictID)
	} else if strings.HasPrefix(cause, "conflict: serial-lock subscription") {
		// No orec conflicted — a serial writer's uninstrumented run killed the
		// subscription. Attribute to the last traced serial-lock holder.
		ev.Owner = tx.rt.serialOwnerSite()
	}
	tx.th.deliver(o, ev)
}
