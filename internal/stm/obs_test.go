package stm

import (
	"testing"
	"time"

	"repro/internal/txobs"
)

// TestObsConflictAttribution drives a deterministic conflict: thread A holds
// the orec of a labeled word inside a transaction while thread B reads it,
// aborting until the contention manager serializes B. The observer must
// attribute the aborts and the abort-serial event to the label, fill the heat
// map, and record the phase histograms.
func TestObsConflictAttribution(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMSerialize, SerializeAfter: 3})
	obs := rt.EnableTracing()
	lbl := txobs.RegisterLabel("obs_test_word")
	w := NewTWord(0).Label(lbl)

	thA, thB := rt.NewThread(), rt.NewThread()
	hold := make(chan struct{})
	held := make(chan struct{}, 1)
	aDone := make(chan error, 1)
	go func() {
		aDone <- thA.Run(Props{Site: "holder"}, func(tx *Tx) {
			w.Store(tx, 1) // acquires the orec (eager MLWT)
			select {
			case held <- struct{}{}:
			default:
			}
			<-hold
		})
	}()
	<-held

	bDone := make(chan error, 1)
	go func() {
		bDone <- thB.Run(Props{Site: "aborter"}, func(tx *Tx) { _ = w.Load(tx) })
	}()

	// B aborts against the held orec until it serializes; then it blocks on
	// the serial lock's write side (A holds the read side).
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().AbortSerial == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for abort-serial escalation")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	if err := <-aDone; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if err := <-bDone; err != nil {
		t.Fatalf("aborter: %v", err)
	}

	if n := obs.KindCount(txobs.KAbort); n < 3 {
		t.Fatalf("abort events = %d, want >= 3", n)
	}
	if n := obs.KindCount(txobs.KCommit); n != 2 {
		t.Fatalf("commit events = %d, want 2", n)
	}
	named, total := obs.SerialAttribution()
	if total == 0 || named != total {
		t.Fatalf("abort-serial attribution %d/%d, want all named", named, total)
	}

	r := obs.Report(10)
	if len(r.ConflictLabels) == 0 || r.ConflictLabels[0].Label != "obs_test_word" {
		t.Fatalf("conflict labels = %+v", r.ConflictLabels)
	}
	if len(r.HotOrecs) == 0 || r.HotOrecs[0].LastLabel != "obs_test_word" {
		t.Fatalf("hot orecs = %+v", r.HotOrecs)
	}
	wantOrec := rt.orecIndex(w.id)
	if int32(r.HotOrecs[0].Orec) != wantOrec {
		t.Fatalf("hot orec = %d, want %d", r.HotOrecs[0].Orec, wantOrec)
	}
	if _, ok := r.Phases["first_abort"]; !ok {
		t.Fatalf("missing first_abort phase: %+v", r.Phases)
	}
	if _, ok := r.Phases["serial_wait"]; !ok {
		t.Fatalf("missing serial_wait phase: %+v", r.Phases)
	}
	if s, ok := r.Phases["commit"]; !ok || s.Count < 2 {
		t.Fatalf("commit phase = %+v", r.Phases)
	}

	var sawAbort, sawSerial bool
	for _, ev := range obs.Events() {
		switch ev.Kind {
		case txobs.KAbort:
			if ev.Label == lbl && ev.Orec == wantOrec && ev.Cause == "conflict: location locked (read)" {
				sawAbort = true
			}
		case txobs.KAbortSerial:
			if ev.Label == lbl && ev.Site == "aborter" {
				sawSerial = true
			}
		}
	}
	if !sawAbort || !sawSerial {
		t.Fatalf("missing attributed events (abort=%v serial=%v)", sawAbort, sawSerial)
	}
}

// TestObsDisabled checks nothing is recorded without EnableTracing, and that
// DisableTracing stops recording while keeping collected data queryable.
func TestObsDisabled(t *testing.T) {
	rt := New(Config{Algorithm: MLWT})
	w := NewTWord(0)
	th := rt.NewThread()
	if err := th.Run(Props{}, func(tx *Tx) { w.Store(tx, 1) }); err != nil {
		t.Fatal(err)
	}
	if rt.TracingObserver() != nil {
		t.Fatal("observer exists without EnableTracing")
	}

	o := rt.EnableTracing()
	if err := th.Run(Props{}, func(tx *Tx) { w.Store(tx, 2) }); err != nil {
		t.Fatal(err)
	}
	if n := o.KindCount(txobs.KCommit); n != 1 {
		t.Fatalf("commit events with tracing on = %d, want 1", n)
	}

	rt.DisableTracing()
	if err := th.Run(Props{}, func(tx *Tx) { w.Store(tx, 3) }); err != nil {
		t.Fatal(err)
	}
	if n := o.KindCount(txobs.KCommit); n != 1 {
		t.Fatalf("commit events after DisableTracing = %d, want still 1", n)
	}
	if rt.TracingObserver() != o {
		t.Fatal("observer not retained across DisableTracing")
	}
}

// TestLabelEncoding checks labels ride in the id high bits without disturbing
// the allocation counter, including across a TBytes word range.
func TestLabelEncoding(t *testing.T) {
	l := txobs.RegisterLabel("obs_test_enc")
	w := NewTWord(7).Label(l)
	if labelOf(w.id) != l {
		t.Fatalf("label = %v", labelOf(w.id))
	}
	if w.LoadDirect() != 7 {
		t.Fatalf("value disturbed: %d", w.LoadDirect())
	}
	b := NewTBytes(64).Label(l)
	for i := 0; i < b.Words(); i++ {
		if labelOf(b.baseID+uint64(i)) != l {
			t.Fatalf("word %d lost label", i)
		}
	}
	a := NewTAny("x").Label(l)
	if labelOf(a.id) != l {
		t.Fatalf("TAny label = %v", labelOf(a.id))
	}
	if NewTWord(0).id>>labelShift != 0 {
		t.Fatal("unlabeled word has label bits set")
	}
}
