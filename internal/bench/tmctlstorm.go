package bench

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/tmctl"
)

// TMCtlStormOptions sizes the contention-storm scenario. Zero values take
// the defaults listed on each field.
type TMCtlStormOptions struct {
	Shards     int           // TM domains (default 4)
	Threads    int           // client goroutines (default 4)
	StormDur   time.Duration // single-hot-key phase (default 2s)
	RecoverDur time.Duration // uniform-traffic phase after the storm (default 2.5s)
	Interval   time.Duration // controller sampling interval (default 50ms)
	MinDwell   time.Duration // controller hysteresis floor (default 250ms)
	Seed       uint64        // fault-injector seed (default 1)
	KeySpace   int           // background keyspace (default 4096)
}

func (o TMCtlStormOptions) withDefaults() TMCtlStormOptions {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.StormDur == 0 {
		o.StormDur = 2 * time.Second
	}
	if o.RecoverDur == 0 {
		o.RecoverDur = 2500 * time.Millisecond
	}
	if o.Interval == 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.MinDwell == 0 {
		o.MinDwell = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.KeySpace == 0 {
		o.KeySpace = 4096
	}
	return o
}

// TMCtlStormWindow is one controller-interval sample of the run: what every
// shard's rung was, how contended the hot shard looked, and the client-side
// p99 of the operations completed during the window.
type TMCtlStormWindow struct {
	Ms        int64    `json:"ms"`    // since run start
	Phase     string   `json:"phase"` // storm | recovery
	Modes     []string `json:"modes"` // per-shard controller rung
	HotAborts float64  `json:"hot_abort_ratio"`
	Ops       int      `json:"ops"`
	P99Ms     float64  `json:"p99_ms"`
}

// TMCtlStormResult is the committed artifact for the controller's headline
// claim: under a single-hot-key contention storm the affected shard degrades
// to a pessimistic rung, client p99 stays bounded instead of collapsing into
// retry livelock, and once the storm passes the shard heals back to its
// optimistic base configuration within a bounded number of calm windows.
type TMCtlStormResult struct {
	Branch     string `json:"branch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	Threads    int    `json:"threads"`
	Shards     int    `json:"shards"`
	Seed       uint64 `json:"seed"`

	IntervalMs int64 `json:"interval_ms"`
	MinDwellMs int64 `json:"min_dwell_ms"`
	StormMs    int64 `json:"storm_ms"`
	RecoverMs  int64 `json:"recover_ms"`

	// HotShard is the domain the hot key hashed to, identified post hoc as
	// the shard with the largest abort delta over the storm phase.
	HotShard int `json:"hot_shard"`

	// DegradeAfterMs: run time at the first window where the hot shard had
	// left its optimistic rung. -1 means it never degraded (a failed run).
	DegradeAfterMs int64 `json:"degrade_after_ms"`
	// DeepestMode is the lowest rung the hot shard reached.
	DeepestMode string `json:"deepest_mode"`
	// HealAfterMs: time from storm end to the first window where every
	// shard was back on normal. -1 means it never healed (a failed run).
	HealAfterMs int64 `json:"heal_after_ms"`
	// BaseRestored: the hot shard's runtime config equals its pre-storm base
	// after healing (algorithm, backoff curve and retry budget all restored).
	BaseRestored bool `json:"base_restored"`

	// StormP99MaxMs is the worst per-window client p99 during the storm —
	// the "stays bounded" number. RecoveredP99Ms is the final window's p99.
	StormP99MaxMs  float64 `json:"storm_p99_max_ms"`
	RecoveredP99Ms float64 `json:"recovered_p99_ms"`

	Degrades uint64 `json:"degrades"`
	Promotes uint64 `json:"promotes"`
	Retunes  uint64 `json:"retunes"`

	ShardBalance []float64          `json:"shard_balance"`
	Windows      []TMCtlStormWindow `json:"windows"`
}

// latSink collects client-observed op latencies; the sampler drains it once
// per controller interval to compute per-window p99.
type latSink struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *latSink) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *latSink) drain() []time.Duration {
	l.mu.Lock()
	out := l.ds
	l.ds = nil
	l.mu.Unlock()
	return out
}

func p99ms(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := (len(ds) * 99) / 100
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return float64(ds[idx]) / float64(time.Millisecond)
}

// RunTMCtlStorm injects a single-hot-key contention storm into a sharded
// cache running the feedback controller and records the controller's
// response window by window. Every client hammers read-modify-writes on ONE
// key — all landing in one TM domain — while a seeded STMCommitDelay fault
// widens commit windows so the conflicts actually materialize even on a
// small host. After StormDur the load switches to uniform traffic and the
// run watches the degraded shard heal.
func RunTMCtlStorm(b engine.Branch, o TMCtlStormOptions) TMCtlStormResult {
	o = o.withDefaults()

	in := fault.New(o.Seed)
	in.Set(fault.STMCommitDelay, 0.2) // widen the commit window to force conflicts

	pol := tmctl.DefaultPolicy()
	pol.Interval = o.Interval
	pol.MinDwell = o.MinDwell
	// Disable the within-normal mlwt<->lazy retune: it adapts the hot shard
	// out of the storm (lazy absorbs same-key write conflicts), which is great
	// operationally but muddies THIS experiment — the artifact under test is
	// the degrade/heal ladder, and heal must restore the exact base config.
	pol.ROReadBias = -1

	c := engine.New(engine.Config{
		Branch:    b,
		Shards:    o.Shards,
		MemLimit:  256 << 20,
		HashPower: 10,
		Fault:     in,
		TMCtl:     &pol,
	})
	c.Start()
	defer c.Stop()

	res := TMCtlStormResult{
		Branch:     b.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Threads:    o.Threads,
		Shards:     o.Shards,
		Seed:       o.Seed,
		IntervalMs: o.Interval.Milliseconds(),
		MinDwellMs: o.MinDwell.Milliseconds(),
		StormMs:    o.StormDur.Milliseconds(),
		RecoverMs:  o.RecoverDur.Milliseconds(),
		HotShard:   -1, DegradeAfterMs: -1, HealAfterMs: -1,
	}

	w0 := c.NewWorker()
	hot := []byte("tmctl-storm-hot-key")
	w0.Set(hot, 0, 0, []byte("0"))
	val := make([]byte, 64)
	for i := 0; i < o.KeySpace; i++ {
		w0.Set(benchKey(nil, i), 0, 0, val)
	}
	// The hot shard is whichever domain the hot key hashed to; identify it
	// by abort delta rather than reaching into the router.
	preStats := c.ShardStats()

	// base: any shard's pre-storm dynamic config (New seeds every domain
	// identically), used to prove heal restores the exact configuration.
	base := c.Runtimes()[0].DynConfig()

	lat := &latSink{}
	stormOver := make(chan struct{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < o.Threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			r := rngState(uint64(t) + 0x57a3)
			for {
				select {
				case <-stormOver:
					// Recovery phase: uniform traffic, no hot set.
					for {
						select {
						case <-done:
							return
						default:
						}
						k := benchKey(nil, int(nextRand(&r)%uint64(o.KeySpace)))
						start := time.Now()
						if nextRand(&r)%10 == 0 {
							w.Set(k, 0, 0, val)
						} else {
							w.Get(k)
						}
						lat.add(time.Since(start))
					}
				default:
				}
				// Storm phase: every thread read-modify-writes the one key.
				start := time.Now()
				w.Incr(hot, 1)
				lat.add(time.Since(start))
			}
		}()
	}

	ctl := c.Controller()
	runStart := time.Now()
	stormEnd := runStart.Add(o.StormDur)
	runEnd := stormEnd.Add(o.RecoverDur)
	tick := time.NewTicker(o.Interval)
	defer tick.Stop()
	stormClosed := false
	var winRatios [][]float64 // per-window per-shard abort ratios, for backfill
	for now := range tick.C {
		if !stormClosed && now.After(stormEnd) {
			close(stormOver)
			stormClosed = true
		}
		st := ctl.Snapshot()
		win := TMCtlStormWindow{
			Ms:    time.Since(runStart).Milliseconds(),
			Phase: "storm",
		}
		if stormClosed {
			win.Phase = "recovery"
		}
		allNormal := true
		ratios := make([]float64, 0, len(st.Shards))
		for _, ss := range st.Shards {
			win.Modes = append(win.Modes, ss.Mode)
			ratios = append(ratios, ss.AbortRatio)
			if ss.Mode != "normal" {
				allNormal = false
			}
		}
		ds := lat.drain()
		win.Ops = len(ds)
		win.P99Ms = p99ms(ds)
		if !allNormal && res.DegradeAfterMs < 0 {
			res.DegradeAfterMs = win.Ms
		}
		if stormClosed && allNormal && res.HealAfterMs < 0 {
			res.HealAfterMs = win.Ms - res.StormMs
		}
		res.Windows = append(res.Windows, win)
		winRatios = append(winRatios, ratios)
		if now.After(runEnd) && (allNormal || now.After(runEnd.Add(4*o.RecoverDur))) {
			break
		}
	}
	close(done)
	wg.Wait()

	// Post-hoc analysis over the stats and the recorded windows.
	postStats := c.ShardStats()
	var maxAborts uint64
	for i := range postStats {
		d := postStats[i].Aborts - preStats[i].Aborts
		if res.HotShard < 0 || d > maxAborts {
			res.HotShard, maxAborts = i, d
		}
	}
	deepest := tmctl.ModeNormal
	for i := range res.Windows {
		win := &res.Windows[i]
		if res.HotShard < len(win.Modes) {
			if m, err := tmctl.ParseMode(win.Modes[res.HotShard]); err == nil && m > deepest {
				deepest = m
			}
		}
		if i < len(winRatios) && res.HotShard < len(winRatios[i]) {
			win.HotAborts = winRatios[i][res.HotShard]
		}
	}
	res.DeepestMode = deepest.String()
	final := ctl.Snapshot()
	res.Degrades, res.Promotes, res.Retunes = final.Degrades, final.Promotes, final.Retunes
	if res.HotShard >= 0 && res.HotShard < len(final.Shards) {
		res.BaseRestored = c.Runtimes()[res.HotShard].DynConfig() == base &&
			final.Shards[res.HotShard].Mode == "normal"
	}
	for _, win := range res.Windows {
		if win.Phase == "storm" && win.P99Ms > res.StormP99MaxMs {
			res.StormP99MaxMs = win.P99Ms
		}
	}
	if n := len(res.Windows); n > 0 {
		res.RecoveredP99Ms = res.Windows[n-1].P99Ms
	}
	res.ShardBalance = shardBalance(c)
	return res
}
