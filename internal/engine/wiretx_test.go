package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/assoc"
	"repro/internal/stm"
	"repro/internal/tm"
)

// keysOnShards returns n keys, one per distinct shard, lowest shard first.
func keysOnShards(t *testing.T, shards, n int) [][]byte {
	t.Helper()
	found := make(map[int][]byte)
	for i := 0; len(found) < n && i < 100000; i++ {
		k := []byte(fmt.Sprintf("wtx-key-%d", i))
		s := shardIndex(assoc.Hash(k), shards)
		if _, ok := found[s]; !ok && s < n {
			found[s] = k
		}
	}
	if len(found) < n {
		t.Fatalf("could not find keys for %d distinct shards", n)
	}
	out := make([][]byte, n)
	for s := 0; s < n; s++ {
		out[s] = found[s]
	}
	return out
}

func newWireTxCache(t *testing.T, branch Branch, shards int) (*Cache, *Worker) {
	t.Helper()
	c := New(Config{Branch: branch, Shards: shards, MemLimit: 16 << 20})
	c.Start()
	t.Cleanup(c.Stop)
	return c, c.NewWorker()
}

func TestTxSupportedGating(t *testing.T) {
	for _, tc := range []struct {
		branch Branch
		want   bool
	}{
		{Baseline, false},  // lock branch: no transactions at all
		{Semaphore, false}, // lock branch
		{IP, false},        // item stripes held across transactions
		{IPMax, false},
		{IT, true},
		{ITMax, true},
		{ITLib, true},
		{ITOnCommit, true},
		{ITNoLock, false}, // serial section excludes nothing speculative
	} {
		c := New(Config{Branch: tc.branch, Shards: 2, MemLimit: 8 << 20})
		if got := c.TxSupported(); got != tc.want {
			t.Errorf("TxSupported(%s) = %v, want %v", tc.branch, got, tc.want)
		}
	}
}

func TestWireTxSingleShardCommit(t *testing.T) {
	_, w := newWireTxCache(t, IT, 1)
	if w.Set([]byte("a"), 0, 0, []byte("5")) != Stored {
		t.Fatal("seed set failed")
	}
	_, _, cas, ok := w.Get([]byte("a"))
	if !ok {
		t.Fatal("seed get failed")
	}

	out := w.CommitTx(
		[]TxRead{{Key: []byte("a"), CAS: cas}},
		[]TxOp{
			{Kind: TxIncr, Key: []byte("a"), Delta: 7},
			{Kind: TxSet, Key: []byte("b"), Value: []byte("vb")},
		},
	)
	if !out.Committed {
		t.Fatalf("commit failed: conflict on %q", out.ConflictKey)
	}
	if out.Shards != 1 || out.SerialFallback {
		t.Fatalf("outcome = %+v, want single-shard no-fallback", out)
	}
	if out.Results[0].Kind != TxIncr || out.Results[0].Delta != DeltaOK || out.Results[0].NewValue != 12 {
		t.Fatalf("incr result = %+v", out.Results[0])
	}
	if out.Results[1].Store != Stored {
		t.Fatalf("set result = %+v", out.Results[1])
	}
	if v, _, _, ok := w.Get([]byte("b")); !ok || string(v) != "vb" {
		t.Fatalf("b = %q, %v", v, ok)
	}
	s := w.Stats()
	if s.TxCommits != 1 || s.TxConflicts != 0 || s.TxSerialFallbacks != 0 {
		t.Fatalf("tx counters = %d/%d/%d, want 1/0/0", s.TxCommits, s.TxConflicts, s.TxSerialFallbacks)
	}
}

func TestWireTxConflictAppliesNothing(t *testing.T) {
	_, w := newWireTxCache(t, IT, 2)
	if w.Set([]byte("a"), 0, 0, []byte("old")) != Stored {
		t.Fatal("seed set failed")
	}
	_, _, cas, _ := w.Get([]byte("a"))

	// Another client overwrites "a" after our read: its CAS moves on.
	if w.Set([]byte("a"), 0, 0, []byte("intervening")) != Stored {
		t.Fatal("intervening set failed")
	}

	out := w.CommitTx(
		[]TxRead{{Key: []byte("a"), CAS: cas}},
		[]TxOp{{Kind: TxSet, Key: []byte("never"), Value: []byte("x")}},
	)
	if out.Committed {
		t.Fatal("commit succeeded despite stale read")
	}
	if string(out.ConflictKey) != "a" {
		t.Fatalf("ConflictKey = %q, want a", out.ConflictKey)
	}
	if _, _, _, ok := w.Get([]byte("never")); ok {
		t.Fatal("conflicted transaction applied a write")
	}
	s := w.Stats()
	if s.TxCommits != 0 || s.TxConflicts != 1 {
		t.Fatalf("tx counters = %d commits / %d conflicts, want 0/1", s.TxCommits, s.TxConflicts)
	}
}

func TestWireTxAbsentReadValidates(t *testing.T) {
	_, w := newWireTxCache(t, IT, 1)
	// Reading an absent key records CAS 0; the commit must validate absence.
	out := w.CommitTx(
		[]TxRead{{Key: []byte("ghost"), CAS: 0}},
		[]TxOp{{Kind: TxSet, Key: []byte("ghost"), Value: []byte("now")}},
	)
	if !out.Committed {
		t.Fatalf("absent-read commit failed: %+v", out)
	}
	// Now the key exists: a second transaction that still assumes absence
	// must conflict.
	out = w.CommitTx([]TxRead{{Key: []byte("ghost"), CAS: 0}}, nil)
	if out.Committed {
		t.Fatal("stale absence validated")
	}
}

func TestWireTxCrossShardTransfer(t *testing.T) {
	c, w := newWireTxCache(t, ITMax, 4)
	keys := keysOnShards(t, c.NumShards(), 2)
	a, b := keys[0], keys[1]
	if w.Set(a, 0, 0, []byte("100")) != Stored || w.Set(b, 0, 0, []byte("100")) != Stored {
		t.Fatal("seed sets failed")
	}

	out := w.CommitTx(nil, []TxOp{
		{Kind: TxDecr, Key: a, Delta: 30},
		{Kind: TxIncr, Key: b, Delta: 30},
	})
	if !out.Committed {
		t.Fatalf("cross-shard commit failed: %+v", out)
	}
	if out.Shards != 2 {
		t.Fatalf("Shards = %d, want 2", out.Shards)
	}
	va, _, _, _ := w.Get(a)
	vb, _, _, _ := w.Get(b)
	if string(va) != "70" || string(vb) != "130" {
		t.Fatalf("balances = %s/%s, want 70/130", va, vb)
	}
	if s := w.Stats(); s.TxCommits != 1 {
		t.Fatalf("TxCommits = %d, want 1", s.TxCommits)
	}
}

// TestWireTxSerialFallback forces the bounded second-domain acquisition to
// fail by parking a serial transaction on the higher shard's runtime, and
// checks the commit retries under the global serial section and still
// applies atomically once the lock frees.
func TestWireTxSerialFallback(t *testing.T) {
	c, w := newWireTxCache(t, IT, 4)
	keys := keysOnShards(t, c.NumShards(), 2)
	a, b := keys[0], keys[1]
	if w.Set(a, 0, 0, []byte("10")) != Stored || w.Set(b, 0, 0, []byte("10")) != Stored {
		t.Fatal("seed sets failed")
	}

	// Park a serial transaction on shard 1 (the commit's second, bounded
	// domain — its first domain is blocking, so holding shard 0 would just
	// make the commit wait, not fall back).
	hold := c.shards[1].rt.NewThread()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = tm.Relaxed(hold, tm.With(tm.StartSerial()), func(tx *stm.Tx) {
			close(held)
			<-release
		})
	}()
	<-held

	var out TxOutcome
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		out = w.CommitTx(nil, []TxOp{
			{Kind: TxDecr, Key: a, Delta: 3},
			{Kind: TxIncr, Key: b, Delta: 3},
		})
	}()
	// Give the commit time to lose its bounded acquisition and enter the
	// blocking fallback, then free the parked transaction.
	time.Sleep(100 * time.Millisecond)
	close(release)
	<-done
	<-commitDone

	if !out.Committed {
		t.Fatalf("fallback commit failed: %+v", out)
	}
	if !out.SerialFallback {
		t.Fatal("commit did not take the serial fallback (parked lock not hit?)")
	}
	if s := w.Stats(); s.TxSerialFallbacks != 1 {
		t.Fatalf("TxSerialFallbacks = %d, want 1", s.TxSerialFallbacks)
	}
	va, _, _, _ := w.Get(a)
	vb, _, _, _ := w.Get(b)
	if string(va) != "7" || string(vb) != "13" {
		t.Fatalf("balances = %s/%s, want 7/13", va, vb)
	}
}

// TestWireTxConcurrentTransfersConserve is the in-process miniature of
// mctorture -txn: concurrent cross-shard transfers over a small account set
// must conserve the total, and the engine must stay structurally sound.
func TestWireTxConcurrentTransfersConserve(t *testing.T) {
	c, _ := newWireTxCache(t, ITMax, 4)
	const accounts = 8
	const perAccount = 1000
	seedW := c.NewWorker()
	keys := make([][]byte, accounts)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("acct-%d", i))
		if seedW.Set(keys[i], 0, 0, []byte(fmt.Sprintf("%d", perAccount))) != Stored {
			t.Fatal("seed set failed")
		}
	}

	const workers = 4
	const transfers = 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := c.NewWorker()
			rng := uint64(g)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < transfers; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				// Transfer 1 unit; Decr saturates at zero, so validate the
				// source balance via its CAS to keep the invariant exact.
				v, _, cas, ok := w.Get(keys[from])
				if !ok || len(v) == 0 || string(v) == "0" {
					continue
				}
				w.CommitTx(
					[]TxRead{{Key: keys[from], CAS: cas}},
					[]TxOp{
						{Kind: TxDecr, Key: keys[from], Delta: 1},
						{Kind: TxIncr, Key: keys[to], Delta: 1},
					},
				)
			}
		}(g)
	}
	wg.Wait()

	w := c.NewWorker()
	total := uint64(0)
	for _, k := range keys {
		v, _, _, ok := w.Get(k)
		if !ok {
			t.Fatalf("account %s vanished", k)
		}
		var n uint64
		if _, err := fmt.Sscanf(string(v), "%d", &n); err != nil {
			t.Fatalf("account %s = %q: %v", k, v, err)
		}
		total += n
	}
	if total != accounts*perAccount {
		t.Fatalf("total = %d, want %d (units lost or created)", total, accounts*perAccount)
	}
	if err := c.ValidateQuiescent(); err != nil {
		t.Fatalf("ValidateQuiescent: %v", err)
	}
	s := w.Stats()
	if s.TxCommits == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("tx: %d commits, %d conflicts, %d fallbacks", s.TxCommits, s.TxConflicts, s.TxSerialFallbacks)
}

// TestWireTxStatsReset pins the exactly-once reset of the tx counters.
func TestWireTxStatsReset(t *testing.T) {
	_, w := newWireTxCache(t, IT, 2)
	w.CommitTx(nil, []TxOp{{Kind: TxSet, Key: []byte("k"), Value: []byte("v")}})
	if s := w.Stats(); s.TxCommits != 1 {
		t.Fatalf("TxCommits = %d, want 1", s.TxCommits)
	}
	w.ResetStats()
	if s := w.Stats(); s.TxCommits != 0 || s.TxConflicts != 0 || s.TxSerialFallbacks != 0 {
		t.Fatalf("counters after reset = %d/%d/%d, want zeros", s.TxCommits, s.TxConflicts, s.TxSerialFallbacks)
	}
}
