package torture

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/txobs"
)

// RunNetwork is the end-to-end variant of Run: the same two chaos phases,
// but every operation travels through the TCP front end while the transport
// fault points (connection drops, slow clients, short reads/writes) fire on
// top of the STM/slab/maintenance schedule. Clients model a real peer:
// redial on error, and in phase B retry a store until it is ACKed — the
// invariant being "a STORED reply survives anything short of losing the
// server". The stat-reconciliation check is skipped (a command whose
// connection died mid-reply may or may not have executed); the lost-key,
// refcount, slab-accounting and graceful-drain checks all still apply.
func RunNetwork(cfg Config) *Report {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Branch: cfg.Branch, Seed: cfg.Seed}

	points := append(fault.StmPoints(), fault.EnginePoints()...)
	points = append(points, fault.ServerPoints()...)
	in := fault.RandomSchedule(cfg.Seed, points, cfg.MaxRate)
	// The acceptance triad must fire regardless of the schedule's shape.
	for _, p := range []fault.Point{fault.ConnDrop, fault.ConnSlow, fault.SlabAllocFail} {
		if in.Rate(p) == 0 {
			in.Set(p, cfg.MaxRate/2)
		}
	}
	in.Arm()

	cache := engine.New(engine.Config{
		Branch:    cfg.Branch,
		Shards:    cfg.Shards,
		MemLimit:  cfg.MemLimit,
		HashPower: cfg.HashPower,
		Automove:  true,
		Fault:     in,
		Watchdog:  2 * time.Millisecond,
	})
	cache.Start()

	// Sharded runs watch for domain bleed: an orec conflict between two
	// shards would mean the transport's affinity routing broke isolation.
	var obs *txobs.Observer
	if cfg.Shards > 1 {
		obs = cache.EnableTracing()
	}

	srv, err := server.ListenConfig(cache, server.Config{
		Addr:         "127.0.0.1:0",
		MaxConns:     cfg.Workers + 2,
		IdleTimeout:  2 * time.Second,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainTimeout: 5 * time.Second,
		Fault:        in,
		EventLoop:    cfg.EventLoop,
	})
	if err != nil {
		rep.violatef("listen: %v", err)
		cache.Stop()
		return rep
	}

	// Phase A: churn mix over faulty connections; errors mean redial.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			netChaosWorker(srv.Addr(), cfg, id)
		}(w)
	}
	wg.Wait()

	// Phase B: ACK-retried stable stores; transport faults stay armed, but
	// allocation failure is off so STORED can always eventually be earned.
	in.Set(fault.SlabAllocFail, 0)
	deadline := time.Now().Add(60 * time.Second)
	var mu sync.Mutex
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := &netClient{addr: srv.Addr()}
			defer cl.reset()
			lo := id * cfg.StableKeys / cfg.Workers
			hi := (id + 1) * cfg.StableKeys / cfg.Workers
			for i := lo; i < hi; i++ {
				if err := cl.setAcked(string(stableKey(i)), stableValue(cfg.Seed, i), deadline); err != nil {
					mu.Lock()
					rep.violatef("phase B: %v", err)
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Check phase over a clean transport.
	in.Disarm()
	wk := cache.NewWorker()
	waitExpansion(wk, rep)
	rep.HashExpands = wk.Stats().HashExpands

	if !rep.Failed() {
		cl := &netClient{addr: srv.Addr()}
		checkStableKeysNet(cl, cfg, rep)
		if err := cl.statsSane(); err != nil {
			rep.violatef("stats command: %v", err)
		}
		cl.reset()
	}

	// Graceful drain: Close must return cleanly with no handler leaked.
	if err := srv.Close(); err != nil {
		rep.violatef("graceful drain: Close = %v", err)
	}
	if obs != nil {
		if n := obs.CrossShardOrecConflicts(); n != 0 {
			rep.violatef("cross_shard_orec_conflicts = %d, want 0: shard domains shared an orec", n)
		}
	}
	cache.Stop()
	if err := cache.ValidateQuiescent(); err != nil {
		rep.violatef("structural validation: %v", err)
	}

	rep.FaultsFired = in.TotalFired()
	rep.Faults = in.Summary()
	rep.Elapsed = time.Since(start)
	return rep
}

// netChaosWorker mirrors chaosWorker over the wire. Faults make individual
// ops fail; the worker's only obligation is to keep going.
func netChaosWorker(addr string, cfg Config, id int) {
	cl := &netClient{addr: addr}
	defer cl.reset()
	rng := rngState(cfg.Seed, uint64(id)+0xC0FFEE)
	for op := 0; op < cfg.Ops; op++ {
		r := rng.next()
		key := fmt.Sprintf("churn-%d", r%191)
		switch (r >> 8) % 5 {
		case 0, 1:
			cl.tryGet(key)
		case 2, 3:
			val := chaosValue(r)
			cl.tryCmd(fmt.Sprintf("set %s %d 0 %d\r\n%s\r\n", key, uint32(r), len(val), val))
		default:
			cl.tryCmd("delete " + key + "\r\n")
		}
	}
}

func checkStableKeysNet(cl *netClient, cfg Config, rep *Report) {
	lost, corrupt := 0, 0
	for i := 0; i < cfg.StableKeys; i++ {
		val, found, err := cl.getRetry(string(stableKey(i)), 5)
		if err != nil {
			rep.violatef("check get %s: %v", stableKey(i), err)
			return
		}
		switch {
		case !found:
			lost++
			if lost <= 5 {
				rep.violatef("ACKed stable key %q lost across hash expansion", stableKey(i))
			}
		case string(val) != string(stableValue(cfg.Seed, i)):
			corrupt++
			if corrupt <= 5 {
				rep.violatef("stable key %q corrupted over the wire: got %q", stableKey(i), val)
			}
		}
	}
	if lost > 5 {
		rep.violatef("... and %d more lost keys", lost-5)
	}
	if corrupt > 5 {
		rep.violatef("... and %d more corrupted keys", corrupt-5)
	}
}

// ---------------------------------------------------------------------------
// minimal fault-tolerant text-protocol client

type netClient struct {
	addr string
	conn net.Conn
	r    *bufio.Reader
}

func (c *netClient) ensure() error {
	if c.conn != nil {
		return nil
	}
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var conn net.Conn
		conn, err = net.Dial("tcp", c.addr)
		if err == nil {
			c.conn = conn
			c.r = bufio.NewReader(conn)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("dial %s: %v", c.addr, err)
}

func (c *netClient) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// tryCmd issues one command and reads one reply line, swallowing failures.
func (c *netClient) tryCmd(cmd string) {
	if c.ensure() != nil {
		return
	}
	c.conn.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.WriteString(c.conn, cmd); err != nil {
		c.reset()
		return
	}
	if _, err := c.r.ReadString('\n'); err != nil {
		c.reset()
	}
}

func (c *netClient) tryGet(key string) {
	if _, _, err := c.get(key); err != nil {
		c.reset()
	}
}

// get does a single-attempt retrieval: (value, found, transport error).
func (c *netClient) get(key string) ([]byte, bool, error) {
	if err := c.ensure(); err != nil {
		return nil, false, err
	}
	c.conn.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.WriteString(c.conn, "get "+key+"\r\n"); err != nil {
		return nil, false, err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, false, err
	}
	if line == "END\r\n" {
		return nil, false, nil
	}
	if !strings.HasPrefix(line, "VALUE ") {
		return nil, false, fmt.Errorf("get %s: unexpected reply %q", key, line)
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, false, fmt.Errorf("get %s: bad VALUE line %q", key, line)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, false, fmt.Errorf("get %s: bad length in %q", key, line)
	}
	val := make([]byte, n+2) // data + CRLF
	if _, err := io.ReadFull(c.r, val); err != nil {
		return nil, false, err
	}
	if end, err := c.r.ReadString('\n'); err != nil || end != "END\r\n" {
		return nil, false, fmt.Errorf("get %s: missing END (%q, %v)", key, end, err)
	}
	return val[:n], true, nil
}

func (c *netClient) getRetry(key string, attempts int) ([]byte, bool, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		val, found, err := c.get(key)
		if err == nil {
			return val, found, nil
		}
		lastErr = err
		c.reset()
	}
	return nil, false, lastErr
}

// setAcked stores key=val and retries across any failure until a STORED
// reply is read or the deadline passes. Set is idempotent with a fixed
// value, so retrying a possibly-executed store is safe.
func (c *netClient) setAcked(key string, val []byte, deadline time.Time) error {
	cmd := fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(val), val)
	for time.Now().Before(deadline) {
		if err := c.ensure(); err != nil {
			return err
		}
		c.conn.SetDeadline(time.Now().Add(3 * time.Second))
		if _, err := io.WriteString(c.conn, cmd); err != nil {
			c.reset()
			continue
		}
		line, err := c.r.ReadString('\n')
		if err != nil {
			c.reset()
			continue
		}
		if line == "STORED\r\n" {
			return nil
		}
		// Any other reply (out of memory, ERROR after a dropped byte):
		// reset framing and try again.
		c.reset()
	}
	return fmt.Errorf("set %s: no STORED ack before deadline", key)
}

// statsSane fetches `stats` and requires a well-formed STAT...END block that
// includes the counters the hardened front end is supposed to export.
func (c *netClient) statsSane() error {
	if err := c.ensure(); err != nil {
		return err
	}
	c.conn.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.WriteString(c.conn, "stats\r\n"); err != nil {
		return err
	}
	seen := map[string]bool{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return err
		}
		if line == "END\r\n" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "STAT" {
			return fmt.Errorf("bad stats line %q", line)
		}
		seen[fields[1]] = true
	}
	for _, want := range []string{"curr_items", "tm_watchdog_backoff", "tm_watchdog_serialize", "conn_errors_io"} {
		if !seen[want] {
			return fmt.Errorf("stats output missing %q", want)
		}
	}
	return nil
}
