// Package tmds provides transactional data structures built on the STM
// runtime: a sorted linked-list set, a hash set, a red-black tree and a FIFO
// queue. They serve three purposes: additional workloads for evaluating the
// TM implementations (the role the paper's conclusion proposes for its
// transactionalized memcached), test fixtures that stress the runtime with
// pointer-heavy transactions, and examples of writing new code directly
// against the transactional API rather than retrofitting locks.
package tmds

import (
	"repro/internal/stm"
	"repro/internal/txobs"
)

// Heat-map labels for the transactional data structures.
var (
	lblList  = txobs.RegisterLabel("tmds_list")
	lblQueue = txobs.RegisterLabel("tmds_queue")
)

// listNode is a sorted singly-linked list node. Key is immutable; Next is
// transactional.
type listNode struct {
	key  uint64
	val  *stm.TAny
	next *stm.TAny // *listNode
}

func asListNode(v any) *listNode {
	if v == nil {
		return nil
	}
	return v.(*listNode)
}

// List is a sorted transactional linked-list set (the classic STM
// microbenchmark structure). The zero value is not usable; create with
// NewList.
type List struct {
	head *stm.TAny // sentinel -> first node
	size *stm.TWord
}

// NewList creates an empty list.
func NewList() *List {
	return &List{head: stm.NewTAny(nil).Label(lblList), size: stm.NewTWord(0).Label(lblList)}
}

// locate returns the first node with node.key >= key and its predecessor
// link (the TAny to update for insertion/removal).
func (l *List) locate(tx *stm.Tx, key uint64) (link *stm.TAny, node *listNode) {
	link = l.head
	node = asListNode(link.Load(tx))
	for node != nil && node.key < key {
		link = node.next
		node = asListNode(link.Load(tx))
	}
	return link, node
}

// Insert adds key=val; reports false if the key was already present (the
// value is not replaced, set semantics).
func (l *List) Insert(tx *stm.Tx, key uint64, val any) bool {
	link, node := l.locate(tx, key)
	if node != nil && node.key == key {
		return false
	}
	n := &listNode{key: key, val: stm.NewTAny(val).Label(lblList), next: stm.NewTAny(node).Label(lblList)}
	link.Store(tx, n)
	l.size.Add(tx, 1)
	return true
}

// Remove deletes key; reports whether it was present.
func (l *List) Remove(tx *stm.Tx, key uint64) bool {
	link, node := l.locate(tx, key)
	if node == nil || node.key != key {
		return false
	}
	link.Store(tx, node.next.Load(tx))
	l.size.Add(tx, ^uint64(0))
	return true
}

// Contains reports whether key is present.
func (l *List) Contains(tx *stm.Tx, key uint64) bool {
	_, node := l.locate(tx, key)
	return node != nil && node.key == key
}

// Get returns the value stored at key.
func (l *List) Get(tx *stm.Tx, key uint64) (any, bool) {
	_, node := l.locate(tx, key)
	if node == nil || node.key != key {
		return nil, false
	}
	return node.val.Load(tx), true
}

// Len returns the element count.
func (l *List) Len(tx *stm.Tx) uint64 { return l.size.Load(tx) }

// Keys returns the keys in order (a full read of the structure — a large
// read-set transaction).
func (l *List) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	node := asListNode(l.head.Load(tx))
	for node != nil {
		out = append(out, node.key)
		node = asListNode(node.next.Load(tx))
	}
	return out
}

// ---------------------------------------------------------------------------

// HashSet is a transactional hash set: fixed buckets, each a sorted list.
type HashSet struct {
	buckets []*List
	mask    uint64
}

// NewHashSet creates a set with 2^powerBits buckets.
func NewHashSet(powerBits uint) *HashSet {
	h := &HashSet{buckets: make([]*List, 1<<powerBits), mask: 1<<powerBits - 1}
	for i := range h.buckets {
		h.buckets[i] = NewList()
	}
	return h
}

func (h *HashSet) bucket(key uint64) *List {
	return h.buckets[(key*0x9E3779B97F4A7C15)>>32&h.mask]
}

// Insert adds key; reports false if already present.
func (h *HashSet) Insert(tx *stm.Tx, key uint64) bool {
	return h.bucket(key).Insert(tx, key, nil)
}

// Remove deletes key; reports whether it was present.
func (h *HashSet) Remove(tx *stm.Tx, key uint64) bool {
	return h.bucket(key).Remove(tx, key)
}

// Contains reports membership.
func (h *HashSet) Contains(tx *stm.Tx, key uint64) bool {
	return h.bucket(key).Contains(tx, key)
}

// Len sums the bucket sizes (a cross-bucket read transaction).
func (h *HashSet) Len(tx *stm.Tx) uint64 {
	var n uint64
	for _, b := range h.buckets {
		n += b.Len(tx)
	}
	return n
}

// ---------------------------------------------------------------------------

// Queue is a transactional FIFO queue.
type Queue struct {
	head *stm.TAny // *queueNode, oldest
	tail *stm.TAny // *queueNode, newest
	size *stm.TWord
}

type queueNode struct {
	val  any
	next *stm.TAny
}

func asQueueNode(v any) *queueNode {
	if v == nil {
		return nil
	}
	return v.(*queueNode)
}

// NewQueue creates an empty queue.
func NewQueue() *Queue {
	return &Queue{head: stm.NewTAny(nil).Label(lblQueue), tail: stm.NewTAny(nil).Label(lblQueue), size: stm.NewTWord(0).Label(lblQueue)}
}

// Push appends val.
func (q *Queue) Push(tx *stm.Tx, val any) {
	n := &queueNode{val: val, next: stm.NewTAny(nil).Label(lblQueue)}
	if t := asQueueNode(q.tail.Load(tx)); t != nil {
		t.next.Store(tx, n)
	} else {
		q.head.Store(tx, n)
	}
	q.tail.Store(tx, n)
	q.size.Add(tx, 1)
}

// Pop removes and returns the oldest value; ok=false when empty.
func (q *Queue) Pop(tx *stm.Tx) (any, bool) {
	h := asQueueNode(q.head.Load(tx))
	if h == nil {
		return nil, false
	}
	next := h.next.Load(tx)
	q.head.Store(tx, next)
	if asQueueNode(next) == nil {
		q.tail.Store(tx, nil)
	}
	q.size.Add(tx, ^uint64(0))
	return h.val, true
}

// Len returns the element count.
func (q *Queue) Len(tx *stm.Tx) uint64 { return q.size.Load(tx) }
