package stm

import (
	"sync/atomic"

	"repro/internal/txobs"
)

// ids numbers transactional locations. Location ids, not addresses, feed the
// orec hash; this sidesteps Go's lack of stable addresses-as-integers without
// package unsafe.
var ids atomic.Uint64

func nextID() uint64          { return ids.Add(1) }
func reserveIDs(n int) uint64 { return ids.Add(uint64(n)) - uint64(n) + 1 }

// Location ids carry an optional txobs label in their high bits: the low 48
// bits are the allocation counter, the top 16 a Label naming the data
// structure the location belongs to. An aborting transaction can then
// attribute the conflicting access to a named structure from the id alone —
// no map lookup, no pointer chasing, nothing on the commit fast path.
const (
	labelShift = 48
	labelMask  = uint64(1)<<labelShift - 1
)

func labelOf(id uint64) txobs.Label { return txobs.Label(id >> labelShift) }

// Label tags the location for conflict attribution in the observability
// layer. Call it at creation, before the location is shared; it returns the
// receiver so constructors chain: stm.NewTWord(0).Label(refcountLabel).
func (t *TWord) Label(l txobs.Label) *TWord {
	t.id = t.id&labelMask | uint64(l)<<labelShift
	return t
}

// Label tags the location for conflict attribution (see TWord.Label).
func (t *TAny) Label(l txobs.Label) *TAny {
	t.id = t.id&labelMask | uint64(l)<<labelShift
	return t
}

// Label tags every word of the buffer for conflict attribution (see
// TWord.Label).
func (t *TBytes) Label(l txobs.Label) *TBytes {
	t.baseID = t.baseID&labelMask | uint64(l)<<labelShift
	return t
}

// TWord is a word-sized transactional location (counters, booleans, sizes,
// reference counts). The zero value is not usable; create with NewTWord.
type TWord struct {
	id uint64
	w  atomic.Uint64
}

// NewTWord creates a word location holding v.
func NewTWord(v uint64) *TWord {
	t := &TWord{id: nextID()}
	t.w.Store(v)
	return t
}

// Load reads the word inside tx.
func (t *TWord) Load(tx *Tx) uint64 { return tx.loadWord(t.id, &t.w) }

// Store writes the word inside tx.
func (t *TWord) Store(tx *Tx, v uint64) { tx.storeWord(t.id, &t.w, v) }

// Add adds delta (two's-complement) inside tx and returns the new value.
func (t *TWord) Add(tx *Tx, delta uint64) uint64 {
	v := t.Load(tx) + delta
	t.Store(tx, v)
	return v
}

// LoadDirect reads the word outside any transaction. It is the privatized /
// nontransactional access path (only correct when the caller has otherwise
// excluded transactional writers, e.g. by privatization).
func (t *TWord) LoadDirect() uint64 { return t.w.Load() }

// StoreDirect writes the word outside any transaction.
func (t *TWord) StoreDirect(v uint64) { t.w.Store(v) }

// AddDirect atomically adds delta outside any transaction and returns the new
// value — the analogue of memcached's inline-assembly `lock incr` reference
// count updates (a C++11-atomic-like access, unsafe inside transactions).
func (t *TWord) AddDirect(delta uint64) uint64 { return t.w.Add(delta) }

// CompareAndSwapDirect performs an atomic compare-and-swap outside any
// transaction (trylock-style volatile usage).
func (t *TWord) CompareAndSwapDirect(old, new uint64) bool {
	return t.w.CompareAndSwap(old, new)
}

// box wraps an arbitrary value so TAny can be read and written atomically.
type box struct{ v any }

// TAny is a transactional location holding an arbitrary value (pointers to
// items, strings, ...). The zero value is not usable; create with NewTAny.
type TAny struct {
	id uint64
	p  atomic.Pointer[box]
}

// NewTAny creates a location holding v.
func NewTAny(v any) *TAny {
	t := &TAny{id: nextID()}
	t.p.Store(&box{v: v})
	return t
}

// Load reads the value inside tx.
func (t *TAny) Load(tx *Tx) any { return tx.loadAny(t).v }

// Store writes the value inside tx.
func (t *TAny) Store(tx *Tx, v any) { tx.storeAny(t, &box{v: v}) }

// LoadDirect reads the value outside any transaction (privatized access).
func (t *TAny) LoadDirect() any { return t.p.Load().v }

// StoreDirect writes the value outside any transaction.
func (t *TAny) StoreDirect(v any) { t.p.Store(&box{v: v}) }

// TBytes is a transactional byte buffer, stored as 64-bit words so that the
// word-granular barriers (and the word-vs-byte logging costs the paper
// discusses for memcpy under buffered-update algorithms) are faithfully
// reproduced. Length is fixed at creation, like a C allocation.
type TBytes struct {
	baseID uint64
	n      int
	words  []atomic.Uint64
}

// NewTBytes allocates a transactional buffer of n bytes, zero-filled.
func NewTBytes(n int) *TBytes {
	nw := (n + 7) / 8
	return &TBytes{baseID: reserveIDs(nw), n: n, words: make([]atomic.Uint64, nw)}
}

// NewTBytesFrom allocates a transactional buffer holding a copy of src,
// written nontransactionally (fresh, captured memory — GCC would not
// instrument these stores either).
func NewTBytesFrom(src []byte) *TBytes {
	t := NewTBytes(len(src))
	for i, b := range src {
		w := &t.words[i/8]
		w.Store(w.Load() | uint64(b)<<(8*(i%8)))
	}
	return t
}

// Len returns the buffer length in bytes.
func (t *TBytes) Len() int { return t.n }

// LoadWord reads word i (8 bytes) inside tx.
func (t *TBytes) LoadWord(tx *Tx, i int) uint64 {
	return tx.loadWord(t.baseID+uint64(i), &t.words[i])
}

// StoreWord writes word i inside tx.
func (t *TBytes) StoreWord(tx *Tx, i int, v uint64) {
	tx.storeWord(t.baseID+uint64(i), &t.words[i], v)
}

// Words returns the number of 64-bit words backing the buffer.
func (t *TBytes) Words() int { return len(t.words) }

// WordDirect reads word i outside any transaction (privatized access).
func (t *TBytes) WordDirect(i int) uint64 { return t.words[i].Load() }

// SetWordDirect writes word i outside any transaction.
func (t *TBytes) SetWordDirect(i int, v uint64) { t.words[i].Store(v) }

// ByteAt reads byte i inside tx (a word-granular read, as instrumented code
// would issue).
func (t *TBytes) ByteAt(tx *Tx, i int) byte {
	return byte(t.LoadWord(tx, i/8) >> (8 * (i % 8)))
}

// SetByteAt writes byte i inside tx via a word read-modify-write.
func (t *TBytes) SetByteAt(tx *Tx, i int, b byte) {
	w := t.LoadWord(tx, i/8)
	sh := 8 * (i % 8)
	w = w&^(0xFF<<sh) | uint64(b)<<sh
	t.StoreWord(tx, i/8, w)
}

// ReadAll copies the whole buffer out inside tx.
func (t *TBytes) ReadAll(tx *Tx, dst []byte) {
	if len(dst) < t.n {
		panic("stm: TBytes.ReadAll: destination too short")
	}
	for i := 0; i < len(t.words); i++ {
		w := t.LoadWord(tx, i)
		for b := 0; b < 8 && i*8+b < t.n; b++ {
			dst[i*8+b] = byte(w >> (8 * b))
		}
	}
}

// WriteAll copies src into the buffer inside tx.
func (t *TBytes) WriteAll(tx *Tx, src []byte) {
	if len(src) > t.n {
		panic("stm: TBytes.WriteAll: source too long")
	}
	for i := 0; i*8 < len(src); i++ {
		var w uint64
		full := i*8+8 <= len(src)
		if !full {
			w = t.LoadWord(tx, i)
		}
		for b := 0; b < 8 && i*8+b < len(src); b++ {
			sh := 8 * b
			w = w&^(0xFF<<sh) | uint64(src[i*8+b])<<sh
		}
		t.StoreWord(tx, i, w)
	}
}

// ReadAllDirect copies the buffer out nontransactionally (privatized access).
func (t *TBytes) ReadAllDirect(dst []byte) {
	if len(dst) < t.n {
		panic("stm: TBytes.ReadAllDirect: destination too short")
	}
	for i := 0; i < len(t.words); i++ {
		w := t.words[i].Load()
		for b := 0; b < 8 && i*8+b < t.n; b++ {
			dst[i*8+b] = byte(w >> (8 * b))
		}
	}
}

// WriteAllDirect copies src into the buffer nontransactionally.
func (t *TBytes) WriteAllDirect(src []byte) {
	if len(src) > t.n {
		panic("stm: TBytes.WriteAllDirect: source too long")
	}
	for i := 0; i*8 < len(src); i++ {
		var w uint64
		if i*8+8 > len(src) {
			w = t.words[i].Load()
		}
		for b := 0; b < 8 && i*8+b < len(src); b++ {
			sh := 8 * b
			w = w&^(0xFF<<sh) | uint64(src[i*8+b])<<sh
		}
		t.words[i].Store(w)
	}
}

// Bytes returns a fresh nontransactional copy (direct reads).
func (t *TBytes) Bytes() []byte {
	dst := make([]byte, t.n)
	t.ReadAllDirect(dst)
	return dst
}
