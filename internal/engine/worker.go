package engine

import (
	"sync"

	"repro/internal/access"
	"repro/internal/assoc"
	"repro/internal/fingerprint"
	"repro/internal/item"
	"repro/internal/mcstats"
	"repro/internal/slab"
	"repro/internal/stm"
)

// StoreMode selects the storage-command semantics.
type StoreMode int

const (
	ModeSet StoreMode = iota
	ModeAdd
	ModeReplace
	ModeAppend
	ModePrepend
	ModeCAS
)

// StoreResult is the outcome of a storage command.
type StoreResult int

const (
	Stored StoreResult = iota
	NotStored
	Exists   // CAS mismatch
	NotFound // CAS/append on missing key
	TooLarge
	OutOfMemory
)

func (r StoreResult) String() string {
	switch r {
	case Stored:
		return "STORED"
	case NotStored:
		return "NOT_STORED"
	case Exists:
		return "EXISTS"
	case NotFound:
		return "NOT_FOUND"
	case TooLarge:
		return "SERVER_ERROR object too large for cache"
	case OutOfMemory:
		return "SERVER_ERROR out of memory storing object"
	}
	return "SERVER_ERROR unknown store result"
}

// DeltaResult is the outcome of incr/decr.
type DeltaResult int

const (
	DeltaOK DeltaResult = iota
	DeltaNotFound
	DeltaNonNumeric
)

// touchInterval is the LRU-bump threshold in seconds (memcached uses 60; we
// use 1 so second-scale runs exercise the cache-lock path occasionally).
const touchInterval = 1

// Worker is one worker thread's handle on the cache: it owns a TM context, a
// per-thread statistics block, and the per-thread stats lock.
type shardWorker struct {
	agent
	stats *mcstats.Thread
	// statsMu is the per-thread stats lock of lock branches. Transactional
	// branches replaced these uncontended locks with transactions, because
	// any mutex operation is unsafe inside a transaction (§3.1).
	statsMu sync.Mutex

	// fpRec is this worker's single-writer fingerprint recorder, bound
	// lazily to the observer generation fpFor the first time an op runs
	// with fingerprinting enabled (see fingerprint.go).
	fpRec *fingerprint.Recorder
	fpFor *fingerprint.Shard
}

// NewWorker registers a new worker.
func (c *shard) newWorker() *shardWorker {
	w := &shardWorker{stats: mcstats.NewThread()}
	w.agent = *c.newAgent()
	c.mu.Lock()
	c.tblocks = append(c.tblocks, w.stats)
	c.mu.Unlock()
	return w
}

// tstat updates this worker's statistics block: a per-thread-lock critical
// section in lock branches, a small atomic transaction otherwise.
func (w *shardWorker) tstat(fn func(access.Ctx)) {
	if !w.c.cfg.tm {
		w.statsMu.Lock()
		fn(w.dctx)
		w.statsMu.Unlock()
		return
	}
	w.section(domains{}, profile{}, fn)
}

// CacheNow reads the volatile clock the way an operation would (a lock incr
// style read, or a mini-transaction after stage Max).
func (w *shardWorker) CacheNow() uint64 { return w.volatileLoad(w.c.CurrentTime) }

// txRefOpt reports whether the §5 transactional-refcount optimization is
// active: only meaningful when item sections are transactions and refcounts
// are transactional.
func (w *shardWorker) txRefOpt() bool {
	return w.c.conf.TxRefOpt && w.c.cfg.itemTx && w.c.cfg.profile.TxVolatiles
}

// expired applies both the item's exptime and the flush_all watermark.
func (w *shardWorker) expired(ctx access.Ctx, it *item.Item, now, flushAt uint64) bool {
	if it.Expired(ctx, now) {
		return true
	}
	return flushAt != 0 && ctx.Word(it.Time) < flushAt
}

// releaseRef drops a reference taken by this worker outside any critical
// section (memcached's item_remove): a lock incr before stage Max, a
// mini-transaction after. The final reference frees the chunk.
func (w *shardWorker) releaseRef(it *item.Item) {
	if w.volatileAdd(it.Refcount, ^uint64(0)) == 0 {
		w.freeChunk(it)
	}
}

// freeChunk returns the item's chunk to its slab class.
func (w *shardWorker) freeChunk(it *item.Item) {
	w.section(domains{slabs: true}, profile{}, func(ctx access.Ctx) {
		w.c.slabs.Release(ctx, it.Class)
	})
}

// unlinkLocked removes a linked item from the hash table, LRU and global
// stats. Caller holds the item's stripe (lock/IP) or runs inside the item
// transaction (IT), plus the cache-lock domain. It drops the hash table's
// reference; if that was the last one, the chunk is freed (slabs domain,
// nested — one of the lock-inside-lock patterns of §3.1).
func (w *shardWorker) unlinkLocked(ctx access.Ctx, it *item.Item) {
	if !it.Linked(ctx) {
		return
	}
	w.c.tab.RemoveItem(ctx, it)
	w.c.lru.Unlink(ctx, it)
	it.SetLinked(ctx, false)
	size := uint64(it.TotalBytes(ctx))
	w.gstat(func(g access.Ctx) {
		g.AddWord(w.c.gstats.CurrItems, ^uint64(0))
		g.AddWord(w.c.gstats.CurrBytes, ^(size - 1))
	})
	if ctx.AddVolatile(it.Refcount, ^uint64(0)) == 0 {
		w.section(domains{slabs: true}, profile{}, func(sctx access.Ctx) {
			w.c.slabs.Release(sctx, it.Class)
		})
	}
}

// ---------------------------------------------------------------------------
// Get

// Get looks up key and returns a copy of its value.
func (w *shardWorker) Get(key []byte) (val []byte, flags uint32, cas uint64, found bool) {
	return w.get(assoc.Hash(key), key, false, 0)
}

// GetAndTouch is the gat command: fetch and update the expiry in one item
// critical section.
func (w *shardWorker) GetAndTouch(key []byte, exptime uint64) (val []byte, flags uint32, cas uint64, found bool) {
	return w.get(assoc.Hash(key), key, true, exptime)
}

// get takes the key's hash from the caller: the sharded router already
// computed it to pick this shard, and hashing is the one per-op cost that
// would otherwise double under sharding.
func (w *shardWorker) get(hv uint64, key []byte, touch bool, exptime uint64) (val []byte, flags uint32, cas uint64, found bool) {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)

	var hit *item.Item
	var needTouch bool

	body := func(ctx access.Ctx) {
		// Reset outputs: a transactional context may retry this closure.
		val, flags, cas, found = nil, 0, 0, false
		hit, needTouch = nil, false

		it := w.c.tab.Find(ctx, hv, key)
		if it == nil {
			return
		}
		if w.expired(ctx, it, now, flushAt) {
			w.section(domains{cache: true}, profile{volatiles: true, libc: true, site: "do_item_unlink"}, func(cctx access.Ctx) {
				w.unlinkLocked(cctx, it)
			})
			w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.Expired, 1) })
			return
		}
		if !w.txRefOpt() {
			it.RefIncr(ctx)
		}
		if touch {
			ctx.SetWord(it.Exptime, exptime)
		}
		n := int(ctx.Word(it.NBytes))
		val = make([]byte, n)
		ctx.MemcpyOut(val, it.Data, 0, n)
		flags = it.Flags
		cas = ctx.Word(it.CasID)
		needTouch = now-ctx.Word(it.Time) >= touchInterval
		hit = it
		found = true
	}

	if w.c.cfg.itemTx {
		// IT: the item critical section is one transaction (Figure 1b). Its
		// first operation is a Find, which reads the volatile expansion flag,
		// and it calls memcmp/memcpy — the unsafe profile pre-Max/pre-Lib.
		w.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, libc: true, site: "item_get"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}

	if hit != nil {
		if needTouch {
			// item_update: an occasional cache-lock critical section.
			w.section(domains{cache: true}, profile{site: "item_update"}, func(ctx access.Ctx) {
				if hit.Linked(ctx) {
					w.c.lru.Touch(ctx, hit, now)
				}
			})
		}
		if !w.txRefOpt() {
			w.releaseRef(hit)
		}
	}

	w.tstat(func(ctx access.Ctx) {
		ctx.AddWord(w.stats.GetCmds, 1)
		if found {
			ctx.AddWord(w.stats.GetHits, 1)
		} else {
			ctx.AddWord(w.stats.GetMisses, 1)
		}
	})
	size := -1
	if found {
		size = len(val)
	}
	w.fpRecord(fingerprint.OpRead, hv, key, size, found)
	return val, flags, cas, found
}

// ---------------------------------------------------------------------------
// Storage commands

// Set stores key=value unconditionally.
func (w *shardWorker) Set(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	return w.store(ModeSet, assoc.Hash(key), key, flags, exptime, value, 0)
}

// Add stores only if the key is absent.
func (w *shardWorker) Add(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	return w.store(ModeAdd, assoc.Hash(key), key, flags, exptime, value, 0)
}

// Replace stores only if the key is present.
func (w *shardWorker) Replace(key []byte, flags uint32, exptime uint64, value []byte) StoreResult {
	return w.store(ModeReplace, assoc.Hash(key), key, flags, exptime, value, 0)
}

// Append appends value to an existing item.
func (w *shardWorker) Append(key []byte, value []byte) StoreResult {
	return w.store(ModeAppend, assoc.Hash(key), key, 0, 0, value, 0)
}

// Prepend prepends value to an existing item.
func (w *shardWorker) Prepend(key []byte, value []byte) StoreResult {
	return w.store(ModePrepend, assoc.Hash(key), key, 0, 0, value, 0)
}

// CAS stores only if the item's CAS id still equals casUnique.
func (w *shardWorker) CAS(key []byte, flags uint32, exptime uint64, value []byte, casUnique uint64) StoreResult {
	return w.store(ModeCAS, assoc.Hash(key), key, flags, exptime, value, casUnique)
}

func (w *shardWorker) store(mode StoreMode, hv uint64, key []byte, flags uint32, exptime uint64, value []byte, casUnique uint64) StoreResult {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)
	res := NotStored

	body := func(ictx access.Ctx) {
		res = NotStored
		old := w.c.tab.Find(ictx, hv, key)
		if old != nil && w.expired(ictx, old, now, flushAt) {
			w.section(domains{cache: true}, profile{volatiles: true, libc: true, site: "do_item_unlink"}, func(cctx access.Ctx) {
				w.unlinkLocked(cctx, old)
			})
			w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.Expired, 1) })
			old = nil
		}

		switch mode {
		case ModeAdd:
			if old != nil {
				res = NotStored
				return
			}
		case ModeReplace:
			if old == nil {
				res = NotStored
				return
			}
		case ModeCAS:
			if old == nil {
				res = NotFound
				return
			}
			if ictx.Word(old.CasID) != casUnique {
				res = Exists
				w.tstat(func(ctx access.Ctx) { ctx.AddWord(w.stats.CasBadval, 1) })
				return
			}
		case ModeAppend, ModePrepend:
			if old == nil {
				res = NotStored
				return
			}
		}

		// Assemble the new value. Append/prepend read the old item's data —
		// the memcpy from shared memory that needs tm_memcpy (§3.4).
		newVal := value
		if mode == ModeAppend || mode == ModePrepend {
			oldN := int(ictx.Word(old.NBytes))
			buf := make([]byte, oldN+len(value))
			if mode == ModeAppend {
				ictx.MemcpyOut(buf[:oldN], old.Data, 0, oldN)
				copy(buf[oldN:], value)
			} else {
				copy(buf, value)
				ictx.MemcpyOut(buf[len(value):], old.Data, 0, oldN)
			}
			newVal = buf
			flags = old.Flags
			exptime = ictx.Word(old.Exptime)
		}

		size := item.SizeFor(len(key), len(newVal))
		cls, err := w.c.slabs.ClassFor(size)
		if err != nil {
			res = TooLarge
			return
		}

		newIt, ok := w.allocItem(key, hv, flags, exptime, newVal, cls, flushAt)
		if !ok {
			res = OutOfMemory
			return
		}
		w.linkItem(old, newIt)
		res = Stored
	}

	if w.c.cfg.itemTx {
		w.section(domains{cache: true, slabs: true}, profile{volatiles: true, volatileFirst: true, libc: true, io: true, site: "do_store_item"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}

	w.tstat(func(ctx access.Ctx) {
		ctx.AddWord(w.stats.SetCmds, 1)
		if mode == ModeCAS {
			switch res {
			case Stored:
				ctx.AddWord(w.stats.CasHits, 1)
			case NotFound:
				ctx.AddWord(w.stats.CasMiss, 1)
			}
		}
	})
	w.fpRecord(fingerprint.OpWrite, hv, key, len(value), res == Stored)
	return res
}

// allocItem is do_item_alloc: the cache+slabs critical section whose first
// operation reads the volatile current_time and which builds the item suffix
// with snprintf — relaxed and start-serial pre-Max, in-flight serial pre-Lib
// (§3.3). On memory pressure it evicts from the LRU tail.
func (w *shardWorker) allocItem(key []byte, hv uint64, flags uint32, exptime uint64, val []byte, cls int, flushAt uint64) (*item.Item, bool) {
	var newIt *item.Item
	ok := false
	w.section(domains{cache: true, slabs: true}, profile{volatiles: true, volatileFirst: true, libc: true, io: true, site: "do_item_alloc"}, func(ctx access.Ctx) {
		newIt, ok = nil, false
		allocNow := ctx.Volatile(w.c.CurrentTime)
		if !w.c.slabs.Alloc(ctx, cls) {
			if !w.evictOne(ctx, cls, allocNow, flushAt) {
				return
			}
			if !w.c.slabs.Alloc(ctx, cls) {
				return
			}
		}
		if allocNow < flushAt {
			allocNow = flushAt // keep a same-second flush_all from eating the new item
		}
		// Fresh (captured) memory: uninstrumented stores, as GCC emits.
		newIt = item.New(key, hv, flags, exptime, len(val), cls)
		newIt.Data.WriteAllDirect(val)
		newIt.Refcount.StoreDirect(1) // the creator's handle
		newIt.Time.StoreDirect(allocNow)
		n := ctx.FormatSuffix(newIt.Suffix, 0, flags, len(val))
		newIt.SuffixLen.StoreDirect(uint64(n))
		ok = true
	})
	return newIt, ok
}

// linkItem is do_item_link / do_store_item: the cache-lock critical section
// that replaces old (if any) with newIt, with global stats via the stats lock
// (the Figure 3 rapid re-locking) and the hash-expansion signal via sem_post
// (unsafe until stage onCommit).
func (w *shardWorker) linkItem(old, newIt *item.Item) {
	w.section(domains{cache: true}, profile{volatiles: true, libc: true, io: true, site: "do_item_link"}, func(ctx access.Ctx) {
		if old != nil {
			w.unlinkLocked(ctx, old)
		}
		w.c.tab.Insert(ctx, newIt)
		w.c.lru.Link(ctx, newIt)
		newIt.SetLinked(ctx, true)
		ctx.SetWord(newIt.CasID, ctx.AddWord(w.c.casCounter, 1))
		size := uint64(newIt.TotalBytes(ctx))
		w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.TotalItems, 1) })
		w.gstat(func(g access.Ctx) {
			g.AddWord(w.c.gstats.CurrItems, 1)
			g.AddWord(w.c.gstats.CurrBytes, size)
		})
		if w.c.tab.NeedExpand(ctx) {
			w.c.signalHash(ctx)
		}
	})
}

// evictOne frees one chunk in class cls by evicting (or reclaiming, if
// expired) an unreferenced LRU-tail item. Runs inside the alloc critical
// section; in the IP and lock branches each candidate's item lock is
// trylocked from within (Figure 1a) and busy candidates are skipped — the
// save_for_later path.
func (w *shardWorker) evictOne(ctx access.Ctx, cls int, now, flushAt uint64) bool {
	it := w.c.lru.Tail(ctx, cls)
	for tries := 0; it != nil && tries < 5; tries++ {
		if ctx.Volatile(it.Refcount) > 1 {
			it = item.AsItem(ctx.Any(it.Prev))
			continue
		}
		unlock, ok := w.victimTryLock(ctx, it.Hash)
		if !ok {
			it = item.AsItem(ctx.Any(it.Prev)) // save for later
			continue
		}
		wasExpired := w.expired(ctx, it, now, flushAt)
		w.unlinkLocked(ctx, it)
		unlock()
		if wasExpired {
			w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.Expired, 1) })
		} else {
			// The Figure 3 pattern: a second, separate stats-lock acquisition
			// right after the first.
			w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.Evictions, 1) })
			ctx.Fprintf(w.c.log(), "evicted item to make room")
			if w.c.conf.Automove {
				w.c.signalSlab(ctx)
			}
		}
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Delete, Incr/Decr, Touch, FlushAll

// Delete removes key; reports whether it existed.
func (w *shardWorker) Delete(key []byte) bool {
	return w.del(assoc.Hash(key), key)
}

func (w *shardWorker) del(hv uint64, key []byte) bool {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)
	found := false

	body := func(ictx access.Ctx) {
		found = false
		it := w.c.tab.Find(ictx, hv, key)
		if it == nil {
			return
		}
		live := !w.expired(ictx, it, now, flushAt)
		w.section(domains{cache: true}, profile{volatiles: true, libc: true, site: "do_item_unlink"}, func(ctx access.Ctx) {
			w.unlinkLocked(ctx, it)
		})
		found = live
	}

	if w.c.cfg.itemTx {
		w.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, libc: true, site: "item_delete"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}

	w.tstat(func(ctx access.Ctx) {
		if found {
			ctx.AddWord(w.stats.DeleteHits, 1)
		} else {
			ctx.AddWord(w.stats.DeleteMiss, 1)
		}
	})
	w.fpRecord(fingerprint.OpDelete, hv, key, -1, found)
	return found
}

// Incr adds delta to a decimal value in place (incr command); Decr subtracts,
// saturating at zero. The value parse and re-format are the strtoull/snprintf
// libc calls of §3.4.
func (w *shardWorker) Incr(key []byte, delta uint64) (uint64, DeltaResult) {
	return w.delta(assoc.Hash(key), key, delta, false)
}

// Decr subtracts delta, saturating at zero.
func (w *shardWorker) Decr(key []byte, delta uint64) (uint64, DeltaResult) {
	return w.delta(assoc.Hash(key), key, delta, true)
}

func (w *shardWorker) delta(hv uint64, key []byte, delta uint64, decr bool) (uint64, DeltaResult) {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)
	var out uint64
	res := DeltaNotFound

	body := func(ictx access.Ctx) {
		out, res = 0, DeltaNotFound
		it := w.c.tab.Find(ictx, hv, key)
		if it == nil || w.expired(ictx, it, now, flushAt) {
			return
		}
		n := int(ictx.Word(it.NBytes))
		v, used := ictx.Strtoull(it.Data, 0, n)
		if used == 0 || used != n {
			res = DeltaNonNumeric
			return
		}
		if decr {
			if delta > v {
				v = 0
			} else {
				v -= delta
			}
		} else {
			v += delta
		}
		// Re-format in place when the new text fits the chunk (memcached
		// rewrites the value buffer); otherwise allocate a replacement item
		// through the normal alloc/link path.
		if digits := decimalDigits(v); digits <= it.CapBytes {
			written := ictx.FormatUint(it.Data, 0, v)
			ictx.SetWord(it.NBytes, uint64(written))
			w.section(domains{cache: true}, profile{}, func(ctx access.Ctx) {
				ctx.SetWord(it.CasID, ctx.AddWord(w.c.casCounter, 1))
			})
		} else {
			text := make([]byte, 0, 20)
			text = appendUint(text, v)
			cls, err := w.c.slabs.ClassFor(item.SizeFor(len(key), len(text)))
			if err != nil {
				return
			}
			repl, ok := w.allocItem(key, hv, it.Flags, ictx.Word(it.Exptime), text, cls, flushAt)
			if !ok {
				return
			}
			w.linkItem(it, repl)
		}
		out, res = v, DeltaOK
	}

	if w.c.cfg.itemTx {
		// io: the grow path links a replacement item, which may signal the
		// hash maintainer.
		w.section(domains{cache: true, slabs: true}, profile{volatiles: true, volatileFirst: true, libc: true, io: true, site: "add_delta"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}

	w.tstat(func(ctx access.Ctx) {
		if res == DeltaOK {
			ctx.AddWord(w.stats.IncrHits, 1)
		} else {
			ctx.AddWord(w.stats.IncrMiss, 1)
		}
	})
	w.fpRecord(fingerprint.OpDelta, hv, key, -1, res == DeltaOK)
	return out, res
}

// decimalDigits returns the decimal text length of v.
func decimalDigits(v uint64) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, buf[i:]...)
}

// Touch updates an item's expiry time; reports whether it existed.
func (w *shardWorker) Touch(key []byte, exptime uint64) bool {
	return w.touch(assoc.Hash(key), key, exptime)
}

func (w *shardWorker) touch(hv uint64, key []byte, exptime uint64) bool {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)
	found := false
	body := func(ictx access.Ctx) {
		found = false
		it := w.c.tab.Find(ictx, hv, key)
		if it == nil || w.expired(ictx, it, now, flushAt) {
			return
		}
		ictx.SetWord(it.Exptime, exptime)
		found = true
	}
	if w.c.cfg.itemTx {
		w.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, libc: true, site: "item_touch"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}
	w.tstat(func(ctx access.Ctx) { ctx.AddWord(w.stats.TouchCmds, 1) })
	w.fpRecord(fingerprint.OpTouch, hv, key, -1, found)
	return found
}

// FlushAll marks everything stored before now as expired (lazy reclamation,
// via the flush watermark volatile).
func (w *shardWorker) FlushAll() {
	now := w.volatileLoad(w.c.CurrentTime)
	w.volatileStore(w.c.flushBefore, now+1)
}

// ---------------------------------------------------------------------------
// Stats

// Snapshot is the "stats" command payload.
type Snapshot struct {
	mcstats.Aggregated
	CurrItems   uint64
	TotalItems  uint64
	CurrBytes   uint64
	Evictions   uint64
	Expired     uint64
	Reassigned  uint64
	HashExpands uint64
	HashItems   uint64
	HashBuckets uint64
	SlabBytes   uint64
	// Wire-transaction counters (tx_commits / tx_conflicts /
	// tx_serial_fallbacks in the stats surface), attributed to the lowest
	// shard a transaction touched.
	TxCommits         uint64
	TxConflicts       uint64
	TxSerialFallbacks uint64
	STM               stm.Snapshot
}

// ResetStats zeroes this shard's command counters: every per-thread block
// registered on the shard and the shard's global event counters; gauges
// (curr_items, bytes) survive. The shared observer is NOT touched here — it
// spans all shards, so the router resets it exactly once (resetting it per
// shard would wipe other shards' post-reset events, and its lifecycle is
// independent of any one runtime's tracing state).
func (w *shardWorker) ResetStats() {
	w.c.mu.Lock()
	blocks := append([]*mcstats.Thread(nil), w.c.tblocks...)
	w.c.mu.Unlock()
	w.section(domains{}, profile{}, func(ctx access.Ctx) {
		for _, b := range blocks {
			for _, word := range []*stm.TWord{
				b.GetCmds, b.GetHits, b.GetMisses, b.SetCmds,
				b.DeleteHits, b.DeleteMiss, b.IncrHits, b.IncrMiss,
				b.CasHits, b.CasMiss, b.CasBadval, b.TouchCmds, b.Expired,
			} {
				ctx.SetWord(word, 0)
			}
		}
	})
	w.gstat(func(g access.Ctx) {
		g.SetWord(w.c.gstats.Evictions, 0)
		g.SetWord(w.c.gstats.Expired, 0)
		g.SetWord(w.c.gstats.TotalItems, 0)
		g.SetWord(w.c.gstats.Reassigned, 0)
		g.SetWord(w.c.gstats.HashExpands, 0)
		// Gauges (CurrItems, CurrBytes) survive reset, as in memcached.
	})
	// Wire-transaction counters live on the shard (each shard's worker clears
	// exactly its own shard's, so the router's per-shard reset loop clears
	// each exactly once).
	w.c.txCommits.Store(0)
	w.c.txConflicts.Store(0)
	w.c.txSerialFallbacks.Store(0)
	if w.c.rt != nil {
		w.c.rt.ResetStats()
	}
}

// SlabClassStat is one row of "stats slabs".
type SlabClassStat struct {
	Class      int
	ChunkSize  int
	Pages      uint64
	FreeChunks uint64
	UsedChunks uint64
}

// SlabStats reports per-class slab allocator detail (the "stats slabs"
// command), read under the slabs lock domain.
func (w *shardWorker) SlabStats() []SlabClassStat {
	var out []SlabClassStat
	w.section(domains{slabs: true}, profile{}, func(ctx access.Ctx) {
		out = out[:0]
		for cls := 0; cls < w.c.slabs.NumClasses(); cls++ {
			pages := w.c.slabs.PagesOf(ctx, cls)
			if pages == 0 {
				continue
			}
			free := w.c.slabs.FreeChunks(ctx, cls)
			perPage := uint64(slab.PageSize / w.c.slabs.ChunkSize(cls))
			out = append(out, SlabClassStat{
				Class:      cls,
				ChunkSize:  w.c.slabs.ChunkSize(cls),
				Pages:      pages,
				FreeChunks: free,
				UsedChunks: pages*perPage - free,
			})
		}
	})
	return out
}

// Stats aggregates per-thread blocks (taking each per-thread lock, or one
// transaction) and reads the global counters under the stats lock.
func (w *shardWorker) Stats() Snapshot {
	var s Snapshot
	w.c.mu.Lock()
	blocks := append([]*mcstats.Thread(nil), w.c.tblocks...)
	w.c.mu.Unlock()

	w.section(domains{}, profile{}, func(ctx access.Ctx) {
		s.Aggregated = mcstats.Aggregate(ctx, blocks)
	})
	w.section(domains{cache: true, stats: true}, profile{volatiles: true}, func(ctx access.Ctx) {
		s.CurrItems = ctx.Word(w.c.gstats.CurrItems)
		s.TotalItems = ctx.Word(w.c.gstats.TotalItems)
		s.CurrBytes = ctx.Word(w.c.gstats.CurrBytes)
		s.Evictions = ctx.Word(w.c.gstats.Evictions)
		s.Expired = ctx.Word(w.c.gstats.Expired)
		s.Reassigned = ctx.Word(w.c.gstats.Reassigned)
		s.HashExpands = ctx.Word(w.c.gstats.HashExpands)
		s.HashItems = w.c.tab.Items(ctx)
		s.HashBuckets = w.c.tab.Size(ctx)
	})
	w.section(domains{slabs: true}, profile{}, func(ctx access.Ctx) {
		s.SlabBytes = w.c.slabs.Allocated(ctx)
	})
	s.TxCommits = w.c.txCommits.Load()
	s.TxConflicts = w.c.txConflicts.Load()
	s.TxSerialFallbacks = w.c.txSerialFallbacks.Load()
	if w.c.rt != nil {
		s.STM = w.c.rt.Stats()
	}
	return s
}
