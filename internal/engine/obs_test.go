package engine

import (
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/stm"
	"repro/internal/txobs"
)

// TestObsSerialAttribution is the acceptance test for the conflict heat map:
// on the it-oncommit branch with tracing on, abort-serial escalations must
// attribute to a named data structure (the label riding on the conflicting
// location's id) at a >= 90% rate.
//
// The conflict is staged deterministically (the machine may have one CPU, so
// organic overlap is rare): a holder agent keeps the cas_counter orec acquired
// inside an open transaction while a worker's Set — whose commit also bumps
// cas_counter — aborts against it until the contention manager serializes it.
func TestObsSerialAttribution(t *testing.T) {
	sc := stmConfigFor(configFor(ITOnCommit))
	sc.CM = stm.CMSerialize
	sc.SerializeAfter = 2
	c := New(Config{
		Branch:    ITOnCommit,
		STM:       &sc,
		MemLimit:  2 << 20,
		HashPower: 4,
		Stripes:   4,
	})
	c.Start()
	defer c.Stop()
	obs := c.EnableTracing()

	holder := c.shard0().newAgent()
	hold := make(chan struct{})
	held := make(chan struct{}, 1)
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		holder.section(domains{cache: true}, profile{site: "obs-test holder"}, func(ctx access.Ctx) {
			ctx.SetWord(c.shard0().casCounter, ctx.Word(c.shard0().casCounter)+1)
			select {
			case held <- struct{}{}:
			default:
			}
			<-hold
		})
	}()
	<-held

	setterDone := make(chan struct{})
	go func() {
		defer close(setterDone)
		w := c.NewWorker()
		w.Set([]byte("hot"), 0, 0, []byte("v"))
	}()

	deadline := time.Now().Add(5 * time.Second)
	for c.Runtime().Stats().AbortSerial == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for abort-serial escalation")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	<-holderDone
	<-setterDone

	if n := obs.KindCount(txobs.KCommit); n == 0 {
		t.Fatal("no commit events recorded")
	}
	if n := obs.KindCount(txobs.KAbort); n < 2 {
		t.Fatalf("abort events = %d, want >= 2", n)
	}
	named, total := obs.SerialAttribution()
	if total == 0 {
		t.Fatal("no abort-serial events recorded")
	}
	if float64(named) < 0.9*float64(total) {
		r := obs.Report(10)
		t.Fatalf("abort-serial attribution %d/%d < 90%%\nreport:\n%s", named, total, r)
	}

	r := obs.Report(10)
	if len(r.ConflictLabels) == 0 || r.ConflictLabels[0].Label != "cas_counter" {
		t.Fatalf("conflict labels = %+v", r.ConflictLabels)
	}
	if len(r.SerialLabels) == 0 || r.SerialLabels[0].Label != "cas_counter" {
		t.Fatalf("serial labels = %+v", r.SerialLabels)
	}
	if len(r.HotOrecs) == 0 || r.HotOrecs[0].LastLabel != "cas_counter" {
		t.Fatalf("hot orecs = %+v", r.HotOrecs)
	}
}

// TestObsLockBranchCommandLatency checks the lock-branch observer path:
// EnableTracing returns a standalone observer that collects command latency
// (there is no runtime to trace).
func TestObsLockBranchCommandLatency(t *testing.T) {
	c := newTestCache(t, Baseline)
	if c.Observer() != nil {
		t.Fatal("observer before EnableTracing")
	}
	o := c.EnableTracing()
	if o == nil || c.Observer() != o {
		t.Fatal("EnableTracing/Observer mismatch")
	}
	if again := c.EnableTracing(); again != o {
		t.Fatal("EnableTracing not idempotent")
	}
	o.ObserveCommand("get", 1234)
	if s, ok := o.Report(0).Commands["get"]; !ok || s.Count != 1 {
		t.Fatalf("command histogram = %+v", o.Report(0).Commands)
	}
	c.DisableTracing()
	o.ObserveCommand("get", 1234)
	if s := o.Report(0).Commands["get"]; s.Count != 1 {
		t.Fatalf("recorded while disabled: %+v", s)
	}
}

// TestResetStatsPreservesGauges checks the memcached `stats reset` contract at
// the engine level: counters (total_items, evictions) go to zero, gauges
// (curr_items, bytes) survive.
func TestResetStatsPreservesGauges(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		w.Set([]byte("a"), 0, 0, []byte("v1"))
		w.Set([]byte("b"), 0, 0, []byte("v2"))
		w.Get([]byte("a"))
		before := w.Stats()
		if before.TotalItems == 0 || before.CurrItems != 2 || before.GetCmds == 0 {
			t.Fatalf("pre-reset snapshot: %+v", before)
		}
		w.ResetStats()
		after := w.Stats()
		if after.TotalItems != 0 || after.GetCmds != 0 || after.SetCmds != 0 {
			t.Fatalf("counters survived reset: %+v", after)
		}
		if after.CurrItems != before.CurrItems || after.CurrBytes != before.CurrBytes {
			t.Fatalf("gauges did not survive reset: before %+v after %+v", before, after)
		}
	})
}
