package txtrace

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Mode is the tracer's operating mode. The numeric values are stable: they
// are what ConnSpans.Begin reads with its single atomic load.
type Mode int32

const (
	// ModeOff records nothing; Begin returns false after one atomic load.
	ModeOff Mode = iota
	// ModeSampled keeps the deterministic 1-in-N head sample plus every
	// pathological request (retry chain ≥ K, serialization, latency > p99
	// estimate) — the always-sample escape hatch that makes rare pathologies
	// visible at low overhead.
	ModeSampled
	// ModeFull keeps every request. Diagnostic sessions only.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSampled:
		return "sampled"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int32(m))
}

// ParseMode converts a user-facing mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "0", "false":
		return ModeOff, nil
	case "sampled", "on", "1", "true":
		return ModeSampled, nil
	case "full", "2":
		return ModeFull, nil
	}
	return 0, fmt.Errorf("txtrace: unknown mode %q (off|sampled|full)", s)
}

// Options parameterizes a Tracer. The zero value gets usable defaults.
type Options struct {
	// Seed drives the deterministic head sampler (fault.TraceHeadSample):
	// the n-th request's sample decision is a pure function of (Seed, n), so
	// a trace population is replayable. 0 picks a fixed default.
	Seed uint64
	// SampleEvery is the head-sampling rate in sampled mode: on average one
	// request in SampleEvery is kept absent any pathology (default 64).
	SampleEvery int
	// RetryK is the abort-retry chain length at which a request is always
	// kept (default 4).
	RetryK int
	// RecentCap sizes the kept-span ring backing /debug/trace (default 256).
	RecentCap int
	// SlowCap sizes the slow-transaction flight-recorder ring (default 128).
	SlowCap int
	// TimeSeriesLen is the per-second counter history length (default 120).
	TimeSeriesLen int
	// MaxEventsPerSpan caps the event tree of one span; past it events are
	// counted in Span.Truncated instead of retained (default 256).
	MaxEventsPerSpan int
	// P99Decay is the EWMA weight of the newest per-second p99 observation
	// in the rolling estimate, in percent (default 20).
	P99Decay int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 0x7478747261636531 // "txtrace1"
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.RetryK <= 0 {
		o.RetryK = 4
	}
	if o.RecentCap <= 0 {
		o.RecentCap = 256
	}
	if o.SlowCap <= 0 {
		o.SlowCap = 128
	}
	if o.TimeSeriesLen <= 0 {
		o.TimeSeriesLen = 120
	}
	if o.MaxEventsPerSpan <= 0 {
		o.MaxEventsPerSpan = 256
	}
	if o.P99Decay <= 0 || o.P99Decay > 100 {
		o.P99Decay = 20
	}
	return o
}

// GraphKey identifies one conflict-graph edge: the site that held the
// contended resource (owner), the site that aborted on it (victim), and the
// structure label the conflict landed on.
type GraphKey struct {
	Owner  string `json:"owner"`
	Victim string `json:"victim"`
	Label  string `json:"label"`
}

// GraphEdge is one weighted who-aborted-whom edge.
type GraphEdge struct {
	GraphKey
	Count uint64 `json:"count"`
}

// Anomaly is one detector trip.
type Anomaly struct {
	When   int64  `json:"when"`
	Kind   string `json:"kind"` // abort_spike | serialization_storm | p99_regression | watchdog_serialize
	Detail string `json:"detail"`
}

// Dump is one flight-recorder capture: the slowlog contents and conflict
// graph frozen at the moment an anomaly tripped (or a manual dump was asked
// for).
type Dump struct {
	When   int64       `json:"when"`
	Reason string      `json:"reason"`
	Spans  []Span      `json:"spans"`
	Graph  []GraphEdge `json:"graph"`
}

// maxDumps bounds the auto-capture list; older dumps fall off.
const maxDumps = 8

// durBuckets is the per-second latency histogram resolution: bucket i holds
// durations in [2^i, 2^(i+1)) nanoseconds.
const durBuckets = 48

// Tracer owns the request-tracing state for one cache: the mode word, the
// deterministic head sampler, the kept-span and flight-recorder rings, the
// conflict graph, the per-second time series with its anomaly detector, and
// the rolling p99 latency estimate.
type Tracer struct {
	mode atomic.Int32
	opt  Options

	sampler *fault.Injector

	spanSeq atomic.Uint64 // kept spans
	reqSeq  atomic.Uint64 // all traced requests (= head-sampler ordinals)
	slowN   atomic.Uint64 // pathological spans ever captured

	// estP99 is the rolling p99 latency estimate in nanoseconds, updated by
	// Tick from the previous second's histogram. It starts effectively
	// infinite so the latency keep-rule cannot fire before one full tick of
	// evidence exists.
	estP99 atomic.Int64

	// winDur is the current second's request-latency histogram (log2-ns
	// buckets), harvested and zeroed by Tick.
	winDur [durBuckets]atomic.Uint64

	recent *SpanRing // all kept spans (head sample + pathological)
	slow   *SpanRing // flight recorder: pathological spans only

	graphMu sync.Mutex
	graph   map[GraphKey]uint64

	ts *TimeSeries

	anomMu    sync.Mutex
	anomalies []Anomaly
	dumps     []Dump
	lastAnom  map[string]time.Time
	cooldown  time.Duration
}

// New creates a Tracer in ModeOff.
func New(opt Options) *Tracer {
	opt = opt.withDefaults()
	t := &Tracer{
		opt:      opt,
		sampler:  fault.New(opt.Seed),
		recent:   NewSpanRing(opt.RecentCap),
		slow:     NewSpanRing(opt.SlowCap),
		graph:    make(map[GraphKey]uint64),
		ts:       NewTimeSeries(opt.TimeSeriesLen),
		lastAnom: make(map[string]time.Time),
		cooldown: 10 * time.Second,
	}
	t.sampler.Set(fault.TraceHeadSample, 1/float64(opt.SampleEvery))
	t.estP99.Store(math.MaxInt64)
	return t
}

// SetMode switches the operating mode.
func (t *Tracer) SetMode(m Mode) { t.mode.Store(int32(m)) }

// Mode returns the current operating mode.
func (t *Tracer) Mode() Mode { return Mode(t.mode.Load()) }

// Seed returns the head-sampler seed (for reproducing a trace population).
func (t *Tracer) Seed() uint64 { return t.sampler.Seed() }

// RetryK returns the always-keep retry-chain threshold.
func (t *Tracer) RetryK() int { return t.opt.RetryK }

// SetRetryK adjusts the always-keep retry-chain threshold at runtime (tests
// and diagnostic sessions; not synchronized with in-flight requests, which
// read it once at End).
func (t *Tracer) SetRetryK(k int) {
	if k > 0 {
		t.opt.RetryK = k
	}
}

// EstP99 returns the rolling p99 latency estimate (an effectively infinite
// value until the first tick).
func (t *Tracer) EstP99() time.Duration { return time.Duration(t.estP99.Load()) }

// Requests returns the number of requests traced (Begin returned true).
func (t *Tracer) Requests() uint64 { return t.reqSeq.Load() }

// Kept returns the number of spans kept by any rule.
func (t *Tracer) Kept() uint64 { return t.spanSeq.Load() }

// SlowCaptured returns the number of pathological spans ever recorded into
// the flight recorder (including ones since overwritten).
func (t *Tracer) SlowCaptured() uint64 { return t.slowN.Load() }

// SlowlogLen returns the number of spans currently in the flight recorder.
func (t *Tracer) SlowlogLen() int { return t.slow.Len() }

// SlowlogDropped returns flight-recorder wrap losses.
func (t *Tracer) SlowlogDropped() uint64 { return t.slow.Dropped() }

// Slowlog snapshots the flight recorder, oldest first.
func (t *Tracer) Slowlog() []Span { return t.slow.Snapshot() }

// Recent snapshots the kept-span ring, oldest first.
func (t *Tracer) Recent() []Span { return t.recent.Snapshot() }

// TimeSeriesSeconds returns how many per-second samples are held.
func (t *Tracer) TimeSeriesSeconds() int { return t.ts.Len() }

// observeDur folds one request latency into the current second's histogram.
func (t *Tracer) observeDur(d time.Duration) {
	if d < 1 {
		d = 1
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= durBuckets {
		b = durBuckets - 1
	}
	t.winDur[b].Add(1)
}

// harvestP99 snapshots and zeroes the window histogram, returning the p99 of
// the window (bucket upper bound) and the request count. Zero count returns
// (0, 0).
func (t *Tracer) harvestP99() (p99 time.Duration, n uint64) {
	var counts [durBuckets]uint64
	for i := range t.winDur {
		counts[i] = t.winDur[i].Swap(0)
		n += counts[i]
	}
	if n == 0 {
		return 0, 0
	}
	rank := n - (n / 100) // ceil(0.99 n)-ish without float
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return time.Duration(uint64(1) << uint(i+1)), n
		}
	}
	return time.Duration(uint64(1) << durBuckets), n
}

// updateP99 folds a fresh window p99 into the rolling estimate (EWMA). The
// first observation replaces the infinite sentinel outright.
func (t *Tracer) updateP99(winP99 time.Duration) {
	cur := t.estP99.Load()
	if cur == math.MaxInt64 {
		t.estP99.Store(int64(winP99))
		return
	}
	w := int64(t.opt.P99Decay)
	t.estP99.Store((cur*(100-w) + int64(winP99)*w) / 100)
}

// finish runs the keep decision for one completed request span. Called by
// ConnSpans.End with the connection's single-writer scratch state; everything
// copied out of cs here must be copied by value.
func (t *Tracer) finish(cs *ConnSpans, dur time.Duration) {
	seq := t.reqSeq.Add(1)
	// The head-sample coin is flipped for every traced request, pathological
	// or not, so the decision for request n is always a pure function of
	// (seed, n) — pathology changes what else is kept, never the coin.
	head := t.sampler.Fire(fault.TraceHeadSample)
	t.observeDur(dur)

	keep := ""
	pathological := false
	switch {
	case int(cs.maxRetry) >= t.opt.RetryK:
		keep, pathological = "retries", true
	case cs.serialized:
		keep, pathological = "serialized", true
	case int64(dur) > t.estP99.Load():
		keep, pathological = "slow", true
	case Mode(t.mode.Load()) == ModeFull:
		keep = "full"
	case head:
		keep = "head"
	}
	if keep == "" {
		return
	}

	sp := &Span{
		ID:         t.spanSeq.Add(1),
		Conn:       cs.conn,
		Seq:        seq,
		Cmd:        cs.cmd,
		Start:      cs.start.UnixNano(),
		DurNanos:   durNanos(dur),
		Aborts:     cs.aborts,
		MaxRetry:   cs.maxRetry,
		Serialized: cs.serialized,
		MaxReads:   cs.maxReads,
		MaxWrites:  cs.maxWrites,
		Keep:       keep,
		Truncated:  cs.truncated,
		Events:     append([]SpanEvent(nil), cs.events...),
	}
	t.recent.Record(sp)
	if pathological {
		t.slow.Record(sp)
		t.slowN.Add(1)
	}
	t.addGraphEdges(sp)
}

// addGraphEdges folds a kept span's abort events into the who-aborted-whom
// conflict graph. Anonymous owners are aggregated under "(unknown)" so the
// graph still shows the victim/label shape when owner tracking is cold.
func (t *Tracer) addGraphEdges(sp *Span) {
	t.graphMu.Lock()
	defer t.graphMu.Unlock()
	for i := range sp.Events {
		ev := &sp.Events[i]
		if ev.Kind != "abort" && ev.Kind != "abort_serial" {
			continue
		}
		owner := ev.Owner
		if owner == "" {
			owner = "(unknown)"
		}
		victim := ev.Site
		if victim == "" {
			victim = "(unlabeled)"
		}
		t.graph[GraphKey{Owner: owner, Victim: victim, Label: ev.Label}]++
	}
}

// Graph returns the conflict graph, heaviest edge first.
func (t *Tracer) Graph() []GraphEdge {
	t.graphMu.Lock()
	out := make([]GraphEdge, 0, len(t.graph))
	for k, n := range t.graph {
		out = append(out, GraphEdge{GraphKey: k, Count: n})
	}
	t.graphMu.Unlock()
	sortEdges(out)
	return out
}

// Anomalies returns the detector trips, oldest first.
func (t *Tracer) Anomalies() []Anomaly {
	t.anomMu.Lock()
	defer t.anomMu.Unlock()
	return append([]Anomaly(nil), t.anomalies...)
}

// Dumps returns the captured flight-recorder dumps, oldest first.
func (t *Tracer) Dumps() []Dump {
	t.anomMu.Lock()
	defer t.anomMu.Unlock()
	return append([]Dump(nil), t.dumps...)
}

// TriggerDump captures the flight recorder and conflict graph now. Used by
// the debug endpoint's dump=1 action; the anomaly detector calls the same
// capture on a trip.
func (t *Tracer) TriggerDump(reason string) Dump {
	d := Dump{
		When:   time.Now().UnixNano(),
		Reason: reason,
		Spans:  t.slow.Snapshot(),
		Graph:  t.Graph(),
	}
	t.anomMu.Lock()
	t.dumps = append(t.dumps, d)
	if len(t.dumps) > maxDumps {
		t.dumps = t.dumps[len(t.dumps)-maxDumps:]
	}
	t.anomMu.Unlock()
	return d
}

// noteAnomaly records a detector trip and auto-captures a dump, rate-limited
// per anomaly kind by the cooldown.
func (t *Tracer) noteAnomaly(kind, detail string, now time.Time) {
	t.anomMu.Lock()
	if last, ok := t.lastAnom[kind]; ok && now.Sub(last) < t.cooldown {
		t.anomMu.Unlock()
		return
	}
	t.lastAnom[kind] = now
	t.anomalies = append(t.anomalies, Anomaly{When: now.UnixNano(), Kind: kind, Detail: detail})
	if len(t.anomalies) > 64 {
		t.anomalies = t.anomalies[len(t.anomalies)-64:]
	}
	t.anomMu.Unlock()
	t.TriggerDump("anomaly: " + kind + " (" + detail + ")")
}

// Tick advances the per-second time series with the current cumulative
// counters, refreshes the p99 estimate from the window histogram, and runs
// the anomaly detector over the new sample. The engine's sampler goroutine
// calls it once per second while tracing is enabled.
func (t *Tracer) Tick(c Counters) {
	now := time.Now()
	winP99, n := t.harvestP99()
	if n > 0 {
		t.updateP99(winP99)
	}
	c.Reqs = t.reqSeq.Load()
	c.Kept = t.spanSeq.Load()
	c.Slow = t.slowN.Load()
	sample, prevOK := t.ts.push(now.UnixNano(), c, int64(winP99))
	if !prevOK {
		return // first sample: no deltas to judge yet
	}
	for _, a := range t.ts.detect(sample) {
		t.noteAnomaly(a.Kind, a.Detail, now)
	}
}

// Reset clears everything `stats reset` owns: both span rings, the conflict
// graph, the time series, anomalies, dumps, and the window histogram. The
// mode, seed, sampler ordinals, and sequence counters survive — reset is a
// data clear, not a reconfiguration, and keeping the sampler's ordinal
// stream intact preserves the determinism contract across resets.
func (t *Tracer) Reset() {
	t.recent.reset()
	t.slow.reset()
	t.slowN.Store(0)
	t.graphMu.Lock()
	clear(t.graph)
	t.graphMu.Unlock()
	t.ts.reset()
	t.anomMu.Lock()
	t.anomalies = nil
	t.dumps = nil
	clear(t.lastAnom)
	t.anomMu.Unlock()
	for i := range t.winDur {
		t.winDur[i].Store(0)
	}
}

func sortEdges(es []GraphEdge) {
	sortSlice(es, func(a, b GraphEdge) bool {
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Victim < b.Victim
	})
}
