package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
)

// ShardDomainStat is one TM domain's slice of the sweep workload: the
// commit/abort/fast-path counters its private runtime accumulated. Summing
// the Commits column across domains reproduces the merged `stats tm` number
// exactly — the domains share no counters.
type ShardDomainStat struct {
	Shard         int    `json:"shard"`
	Commits       uint64 `json:"commits"`
	Aborts        uint64 `json:"aborts"`
	ROFastCommits uint64 `json:"ro_fast_commits"`
}

// ShardPoint is one shard count in the sweep. The timed phase runs with
// tracing off (perf numbers first); CrossShardOrecConflicts comes from a
// shorter traced verification pass afterwards and must be zero — each
// domain's events land in a disjoint orec-id range, so a nonzero count
// would mean two runtimes shared a synchronization word.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is this point's throughput over the 1-shard point's.
	Speedup float64 `json:"speedup_vs_1_shard"`

	Commits       uint64 `json:"commits_total"`
	Aborts        uint64 `json:"aborts_total"`
	StartSerial   uint64 `json:"start_serial_total"`
	ROFastCommits uint64 `json:"ro_fast_commits_total"`

	Domains []ShardDomainStat `json:"domains"`
	// Balance is each domain's commit share at this point — the uniform
	// keyspace should keep every entry near 1/Shards, and a skewed entry
	// flags a point whose speedup number measured routing imbalance instead
	// of synchronization scaling.
	Balance                 []float64 `json:"shard_balance"`
	CrossShardOrecConflicts uint64    `json:"cross_shard_orec_conflicts"`
}

// ShardSweepResult is the -shards benchmark: the same mixed workload driven
// at a fixed thread count over increasing shard counts. What scales is not
// the keys (the keyspace is shared and uniform) but the synchronization:
// every shard owns a private version clock, orec table, serial lock and LRU
// heads, so conflict aborts, serialize escalations and retry backoff sleeps
// are confined to the domain that earned them.
type ShardSweepResult struct {
	Branch       string       `json:"branch"`
	Threads      int          `json:"threads"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	CPUs         int          `json:"cpus"`
	OpsPerThread int          `json:"ops_per_thread"`
	KeySpace     int          `json:"keyspace"`
	ValueSize    int          `json:"value_size"`
	Trials       int          `json:"trials"`
	Points       []ShardPoint `json:"points"`
}

// RunShardSweep measures one branch at a fixed thread count across the given
// shard counts. GOMAXPROCS is set to min(threads, NumCPU) for the duration:
// raised to the thread count so the domains can actually run in parallel,
// but never past the hardware — oversubscribing Ps on a small box replaces
// the measurement with Go scheduler thrash (every spin-wait Gosched becomes
// a cross-P handoff) without adding any real concurrency.
func RunShardSweep(b engine.Branch, threads int, shardCounts []int, o Options) ShardSweepResult {
	o = o.withDefaults()
	procs := threads
	if n := runtime.NumCPU(); procs > n {
		procs = n
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	res := ShardSweepResult{
		Branch:       b.String(),
		Threads:      threads,
		GOMAXPROCS:   procs,
		CPUs:         runtime.NumCPU(),
		OpsPerThread: o.OpsPerThread,
		KeySpace:     o.KeySpace,
		ValueSize:    o.ValueSize,
		Trials:       o.Trials,
	}
	var base float64
	for _, n := range shardCounts {
		p := runShardPoint(b, threads, n, o)
		if n == 1 || base == 0 {
			base = p.OpsPerSec
		}
		if base > 0 {
			p.Speedup = p.OpsPerSec / base
		}
		res.Points = append(res.Points, p)
	}
	return res
}

func runShardPoint(b engine.Branch, threads, shards int, o Options) ShardPoint {
	p := ShardPoint{Shards: shards}

	var bestDur time.Duration
	var ops uint64
	for trial := 0; trial < o.Trials; trial++ {
		c := newShardCache(b, shards, o)
		prepopulate(c, o)
		dur, n := shardPhase(c, threads, o, o.OpsPerThread)
		if trial == 0 || dur < bestDur {
			bestDur, ops = dur, n
			p.Domains = p.Domains[:0]
			p.Commits, p.Aborts, p.StartSerial, p.ROFastCommits = 0, 0, 0, 0
			for i, ss := range c.ShardStats() {
				p.Domains = append(p.Domains, ShardDomainStat{
					Shard:         i,
					Commits:       ss.Commits,
					Aborts:        ss.Aborts,
					ROFastCommits: ss.ROFastCommits,
				})
				p.Commits += ss.Commits
				p.Aborts += ss.Aborts
				p.StartSerial += ss.StartSerial
				p.ROFastCommits += ss.ROFastCommits
			}
		}
		c.Stop()
	}
	p.Seconds = bestDur.Seconds()
	p.OpsPerSec = float64(ops) / bestDur.Seconds()
	if p.Commits > 0 {
		p.Balance = make([]float64, len(p.Domains))
		for i, d := range p.Domains {
			p.Balance[i] = float64(d.Commits) / float64(p.Commits)
		}
	}

	// Verification pass, traced: the heat map gains a shard dimension and
	// the observer CASes an owner onto every orec cell it sees; a second
	// owner would increment the cross-shard counter. Domains occupy
	// disjoint orec-id ranges, so this must stay zero.
	c := newShardCache(b, shards, o)
	obs := c.EnableTracing()
	prepopulate(c, o)
	shardPhase(c, threads, o, o.OpsPerThread/4+1)
	p.CrossShardOrecConflicts = obs.CrossShardOrecConflicts()
	c.Stop()
	return p
}

func newShardCache(b engine.Branch, shards int, o Options) *engine.Cache {
	c := engine.New(engine.Config{
		Branch:    b,
		Shards:    shards,
		MemLimit:  o.MemLimit * 64, // fits the working set: conflicts, not eviction, are under test
		HashPower: o.HashPower,
	})
	c.Start()
	return c
}

func prepopulate(c *engine.Cache, o Options) {
	w := c.NewWorker()
	val := make([]byte, o.ValueSize)
	kbuf := make([]byte, 0, 32)
	for i := 0; i < o.KeySpace; i++ {
		w.Set(benchKey(kbuf, i), 0, 0, val)
	}
	for i := 0; i < numCounters; i++ {
		w.Set(counterKey(i), 0, 0, []byte("0"))
	}
}

// numCounters sizes the INCR key set: wide enough that two threads landing
// on the same counter at once is rare (same-key write-write conflicts are
// shard-count-independent and would only blur the sweep).
const numCounters = 1024

// shardPhase drives the mixed workload: per group, one cross-shard GetMulti
// of MultiGetBatch keys on the read-only fast path, four SETs (each SET
// rewrites a size-class LRU head — the hottest word a domain owns), and one
// INCR over the full keyspace (a read-modify-write transaction with a wide
// conflict window, but no deliberate same-key hot set: same-key conflicts
// cannot shard away, so a hot-counter mix would only add noise common to
// every point). Returns (wall time, ops completed) where one key lookup,
// store or delta each count as one op.
func shardPhase(c *engine.Cache, threads int, o Options, groups int) (time.Duration, uint64) {
	val := make([]byte, o.ValueSize)
	workers := make([]*engine.Worker, threads)
	for i := range workers {
		workers[i] = c.NewWorker()
	}
	var total uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := workers[t]
			r := rngState(uint64(t) + 0x5AD)
			group := make([][]byte, engine.MultiGetBatch)
			var n uint64
			for g := 0; g < groups; g++ {
				for i := range group {
					group[i] = benchKey(nil, int(nextRand(&r)%uint64(o.KeySpace)))
				}
				w.GetMulti(group)
				n += uint64(len(group))
				for s := 0; s < 4; s++ {
					w.Set(benchKey(nil, int(nextRand(&r)%uint64(o.KeySpace))), 0, 0, val)
					n++
				}
				w.Incr(counterKey(int(nextRand(&r)%numCounters)), 1)
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	return time.Since(start), total
}

func counterKey(n int) []byte {
	return fmt.Appendf(nil, "shard-ctr-%04d", n)
}
