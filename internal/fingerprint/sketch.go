package fingerprint

import "sync/atomic"

// TopK is the hot-key sketch capacity per recorder. Space-Saving guarantees
// any key with true frequency > N/TopK is present, which is exactly the
// "one or a few hot keys" question the tmctl gate asks.
const TopK = 16

// sketchEntry is one monitored key. All fields are atomic so snapshot
// readers can race the single writer without locks; a reader that observes
// a mid-replacement entry sees a key/count pairing that is off by one
// replacement — tolerable for telemetry, invisible after the next window.
type sketchEntry struct {
	hash  atomic.Uint64
	count atomic.Uint64
	errs  atomic.Uint64 // Space-Saving overestimation bound for this entry
	key   atomic.Pointer[string]
}

// Sketch is a Space-Saving top-K frequency sketch (Metwally et al.) with a
// SINGLE writer — the engine worker that owns the recorder — and lock-free
// concurrent readers. The key string is materialized only when an entry is
// first monitored or replaced, so steady state on a stable hot set costs
// zero allocations per recorded op.
type Sketch struct {
	entries [TopK]sketchEntry
	used    atomic.Int32
}

// Record counts one access to the key identified by its full 64-bit item
// hash. Distinct keys colliding on all 64 bits are treated as one — the
// routing hash already avalanches, so this is beyond negligible for a
// top-16 telemetry sketch.
func (s *Sketch) Record(hv uint64, key []byte) {
	n := int(s.used.Load())
	minIdx := 0
	minCnt := ^uint64(0)
	for i := 0; i < n; i++ {
		e := &s.entries[i]
		if e.hash.Load() == hv {
			e.count.Add(1)
			return
		}
		if c := e.count.Load(); c < minCnt {
			minCnt, minIdx = c, i
		}
	}
	if n < TopK {
		e := &s.entries[n]
		k := string(key)
		e.key.Store(&k)
		e.hash.Store(hv)
		e.errs.Store(0)
		e.count.Store(1)
		s.used.Store(int32(n + 1))
		return
	}
	// Evict the minimum: the newcomer inherits its count as the
	// overestimation error, per the Space-Saving update rule.
	e := &s.entries[minIdx]
	k := string(key)
	e.key.Store(&k)
	e.hash.Store(hv)
	e.errs.Store(minCnt)
	e.count.Store(minCnt + 1)
}

// decay halves every monitored count, aging the window. Runs on the
// observer tick concurrently with the writer; a lost increment across the
// load/store pair only blurs the window boundary.
func (s *Sketch) decay() {
	n := int(s.used.Load())
	for i := 0; i < n; i++ {
		e := &s.entries[i]
		e.count.Store(e.count.Load() / 2)
		e.errs.Store(e.errs.Load() / 2)
	}
}

// reset forgets every monitored key.
func (s *Sketch) reset() {
	s.used.Store(0)
	for i := range s.entries {
		s.entries[i].count.Store(0)
		s.entries[i].errs.Store(0)
		s.entries[i].hash.Store(0)
	}
}

// HotKey is one entry of a sketch snapshot.
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// collect appends the sketch's live entries to dst.
func (s *Sketch) collect(dst []HotKey) []HotKey {
	n := int(s.used.Load())
	for i := 0; i < n; i++ {
		e := &s.entries[i]
		c := e.count.Load()
		if c == 0 {
			continue
		}
		kp := e.key.Load()
		if kp == nil {
			continue
		}
		dst = append(dst, HotKey{Key: *kp, Count: c, Err: e.errs.Load()})
	}
	return dst
}
