package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/stm"
	"repro/internal/tm"
)

func newTM() *TM { return New(stm.New(stm.Config{})) }

func TestAtomicCommits(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	v := stm.NewTWord(0)
	if err := tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) { v.Store(tx, 3) }); err != nil {
		t.Fatal(err)
	}
	if v.LoadDirect() != 3 {
		t.Errorf("v = %d, want 3", v.LoadDirect())
	}
}

func TestExprAndVolatileSugar(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	v := stm.NewTWord(10)
	if got := tm.LoadWord(c.Thread(), v); got != 10 {
		t.Errorf("LoadWord = %d", got)
	}
	tm.StoreWord(c.Thread(), v, 11)
	if got := Expr(c, func(tx *stm.Tx) uint64 { return v.Load(tx) * 2 }); got != 22 {
		t.Errorf("Expr = %d", got)
	}
	if got := tm.AddWord(c.Thread(), v, ^uint64(0)); got != 10 { // -1 two's complement
		t.Errorf("AddWord(-1) = %d", got)
	}
}

func TestInTransaction(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	if c.InTransaction() {
		t.Error("InTransaction outside = true")
	}
	_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		if !c.InTransaction() {
			t.Error("InTransaction inside = false")
		}
	})
}

func TestAfterCommit(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	var order []string
	_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		c.AfterCommit(func() { order = append(order, "deferred") })
		order = append(order, "body")
	})
	c.AfterCommit(func() { order = append(order, "immediate") })
	want := []string{"body", "deferred", "immediate"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestCallSafeFromAtomic(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	v := stm.NewTWord(0)
	_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		Call(tx, AttrSafe, "tm_memcpy", func(tx *stm.Tx) { v.Store(tx, 1) })
	})
	if v.LoadDirect() != 1 {
		t.Error("safe call lost its store")
	}
}

func TestCallCallableFromAtomicPanics(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrCallableFromAtomic) {
			t.Fatalf("panic = %v, want ErrCallableFromAtomic", r)
		}
	}()
	_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		Call(tx, AttrCallable, "maybe_log", func(tx *stm.Tx) {})
	})
	t.Fatal("no panic")
}

func TestCallUnknownFromRelaxedSerializes(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	ran := false
	_ = tm.Relaxed(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		Call(tx, AttrUnknown, "vsnprintf", func(tx *stm.Tx) {
			ran = true
			if !tx.Serial() {
				t.Error("unknown call proceeded without irrevocability")
			}
		})
	})
	if !ran {
		t.Fatal("function never ran")
	}
	if got := m.Runtime().Stats().InFlightSwitch; got != 1 {
		t.Errorf("InFlightSwitch = %d, want 1", got)
	}
}

func TestCallCallableFromRelaxedDoesNotSerializeWhenSafePathTaken(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	verbose := false
	_ = tm.Relaxed(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		Call(tx, AttrCallable, "maybe_fprintf", func(tx *stm.Tx) {
			if verbose {
				tx.Unsafe("fprintf(stderr, ...)")
			}
		})
		if tx.Serial() {
			t.Error("serialized although the unsafe branch was not taken")
		}
	})
	if got := m.Runtime().Stats().InFlightSwitch; got != 0 {
		t.Errorf("InFlightSwitch = %d, want 0", got)
	}

	// And when the flag is on, the same code serializes in flight (the
	// fprintf example from §2 of the paper).
	verbose = true
	_ = tm.Relaxed(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		Call(tx, AttrCallable, "maybe_fprintf", func(tx *stm.Tx) {
			if verbose {
				tx.Unsafe("fprintf(stderr, ...)")
			}
		})
	})
	if got := m.Runtime().Stats().InFlightSwitch; got != 1 {
		t.Errorf("InFlightSwitch = %d, want 1", got)
	}
}

func TestCallPure(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	ran := false
	_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		CallPure(tx, func() { ran = true })
	})
	if !ran {
		t.Error("pure function did not run")
	}
}

func TestRelaxedStartSerialCounts(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	_ = tm.Relaxed(c.Thread(), tm.With(tm.StartSerial()), func(tx *stm.Tx) {
		if !tx.Serial() {
			t.Error("not serial")
		}
	})
	s := m.Runtime().Stats()
	if s.StartSerial != 1 {
		t.Errorf("StartSerial = %d, want 1", s.StartSerial)
	}
}

func TestCancelThroughSpecLayer(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	v := stm.NewTWord(5)
	err := tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		v.Store(tx, 6)
		tx.Cancel()
	})
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if v.LoadDirect() != 5 {
		t.Error("cancel did not roll back")
	}
}

func TestConcurrentContexts(t *testing.T) {
	m := newTM()
	ctr := stm.NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.NewContext()
			for i := 0; i < 1000; i++ {
				_ = tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) { ctr.Add(tx, 1) })
			}
		}()
	}
	wg.Wait()
	if ctr.LoadDirect() != 8000 {
		t.Errorf("ctr = %d, want 8000", ctr.LoadDirect())
	}
}

func TestAttrString(t *testing.T) {
	for attr, want := range map[Attr]string{
		AttrSafe:     "transaction_safe",
		AttrCallable: "transaction_callable",
		AttrUnknown:  "unannotated",
		AttrPure:     "transaction_pure",
	} {
		if got := attr.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(attr), got, want)
		}
	}
}

// TestNestedCancelPropagates pins may_cancel_outer semantics: with flat
// nesting, a transaction_safe function that cancels unwinds the OUTER
// transaction (the case §2 says needs the annotation under separate
// compilation).
func TestNestedCancelPropagates(t *testing.T) {
	m := newTM()
	c := m.NewContext()
	v := stm.NewTWord(1)
	err := tm.Atomic(c.Thread(), tm.Options{}, func(tx *stm.Tx) {
		v.Store(tx, 2)
		// A nested atomic block (flattened) cancels: the whole outer
		// transaction's effects must vanish.
		_ = tm.Atomic(c.Thread(), tm.Options{}, func(inner *stm.Tx) {
			inner.Cancel()
		})
		t.Error("statement after nested cancel executed")
	})
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("outer err = %v, want ErrCanceled", err)
	}
	if v.LoadDirect() != 1 {
		t.Errorf("v = %d, want 1 (outer effects undone)", v.LoadDirect())
	}
}
