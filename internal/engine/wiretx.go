package engine

import (
	"time"

	"repro/internal/access"
	"repro/internal/assoc"
	"repro/internal/stm"
	"repro/internal/tm"
)

// Wire transactions: the engine half of the txbegin/txcommit protocol
// extension. The protocol layer queues a client's mutations and records the
// CAS value of every in-transaction read; CommitTx turns that record into one
// server-side transaction over the touched keys — validate every read
// CAS-style, then apply every queued op, atomically.
//
// Keys may hash to different shards, and the shards are fully independent TM
// domains (disjoint orec tables, clocks, serial locks), so a cross-shard
// commit cannot ride a single speculative transaction. Instead it is the
// first N-domain commit path: the touched shards' serial write locks are
// acquired in ascending shard-index order by opening a serial-irrevocable
// transaction on each shard's worker thread, innermost-first work runs with
// all domains held, and the nested commits release in descending order. The
// ascending-order rule makes the blocking protocol deadlock-free; the first
// pass additionally bounds every acquisition after the first (stm's TrySerial
// hook) so a committer that loses the race unwinds — serial transactions that
// ran nothing commit empty — and retries under the global fallback: every
// domain, ascending, blocking. Single-shard transactions skip all of this and
// run as one speculative relaxed transaction; if the op mix reaches an unsafe
// operation under the branch's profile, the runtime's in-flight switch
// escalates it to serial exactly as it does any other section.

// TxOpKind is a queued wire-transaction mutation.
type TxOpKind int

const (
	TxSet TxOpKind = iota
	TxDel
	TxTouch
	TxIncr
	TxDecr
)

func (k TxOpKind) String() string {
	switch k {
	case TxSet:
		return "set"
	case TxDel:
		return "delete"
	case TxTouch:
		return "touch"
	case TxIncr:
		return "incr"
	case TxDecr:
		return "decr"
	}
	return "txop?"
}

// TxOp is one queued mutation. Exptime is absolute (the protocol layer
// resolves relative times at queue time, so a transaction held open does not
// shift its items' expiries).
type TxOp struct {
	Kind    TxOpKind
	Key     []byte
	Flags   uint32
	Exptime uint64
	Value   []byte
	Delta   uint64 // incr/decr amount
}

// TxRead is one in-transaction read to validate at commit: the key and the
// CAS id observed when the client issued the get (0 = the key was absent).
type TxRead struct {
	Key []byte
	CAS uint64
}

// TxOpResult is the per-op outcome reported in the commit reply.
type TxOpResult struct {
	Kind     TxOpKind
	Store    StoreResult // TxSet
	Found    bool        // TxDel, TxTouch
	NewValue uint64      // TxIncr, TxDecr
	Delta    DeltaResult // TxIncr, TxDecr
}

// TxOutcome is the result of CommitTx.
type TxOutcome struct {
	// Committed reports that every read validated and every op applied. When
	// false, ConflictKey names the first read whose CAS no longer matched and
	// nothing was applied.
	Committed   bool
	ConflictKey []byte
	Results     []TxOpResult
	// SerialFallback reports that the ordered first pass lost its bounded
	// acquisition race and the commit re-ran under the global serial section.
	SerialFallback bool
	// Shards is the number of distinct TM domains the transaction touched.
	Shards int
}

// TxSupported reports whether the branch can serve wire transactions. Three
// things disqualify a configuration:
//
//   - lock branches: there is no transaction to map the client's onto;
//   - IP-family branches: item stripes are transactional booleans HELD ACROSS
//     transactions (acquire commits, body runs, release commits), so a
//     serial-irrevocable commit that spins on a stripe held by another worker
//     deadlocks — the owner needs the serial lock's read side to release;
//   - NoSerialLock runtimes: without the global readers/writer lock a serial
//     section excludes only other serial sections, not speculative
//     transactions, so the multi-key commit would not be atomic.
func (c *Cache) TxSupported() bool {
	return c.cfg.tm && c.cfg.itemTx && !c.shards[0].rt.Config().NoSerialLock
}

// TxSupported reports whether the branch can serve wire transactions.
func (w *Worker) TxSupported() bool { return w.c.TxSupported() }

// CommitTx validates reads and applies ops as one atomic transaction across
// every touched shard. The caller must have gated on TxSupported.
func (w *Worker) CommitTx(reads []TxRead, ops []TxOp) TxOutcome {
	if !w.c.TxSupported() {
		panic("engine: CommitTx on branch " + w.c.conf.Branch.String() + " without wire-transaction support")
	}

	// Hash every key exactly once; the same value routes the shard and
	// indexes inside it.
	readHvs := make([]uint64, len(reads))
	opHvs := make([]uint64, len(ops))
	touched := make([]bool, len(w.ws))
	seen := 0
	note := func(hv uint64) {
		s := 0
		if len(w.ws) > 1 {
			s = shardIndex(hv, len(w.ws))
		}
		if !touched[s] {
			touched[s] = true
			seen++
		}
	}
	for i := range reads {
		readHvs[i] = assoc.Hash(reads[i].Key)
		note(readHvs[i])
	}
	for i := range ops {
		opHvs[i] = assoc.Hash(ops[i].Key)
		note(opHvs[i])
	}
	order := make([]int, 0, seen)
	for s := range w.ws {
		if touched[s] {
			order = append(order, s)
		}
	}

	out := TxOutcome{Results: make([]TxOpResult, len(ops)), Shards: len(order)}

	// Phase-latency instrumentation: one atomic load per commit while
	// fingerprinting is off. bodyAt marks the final body entry, so
	// commitAt→bodyAt is the serial-acquisition wait of a cross-shard
	// commit (TrySerial spins and the global-fallback reacquisition
	// included); validate and apply are timed inside the body itself.
	fpo := w.c.fingerprintLive()
	var commitAt, bodyAt time.Time
	if fpo != nil {
		commitAt = time.Now()
	}

	// body runs with every touched domain held (or inside the single-shard
	// speculative transaction, which may retry it — everything it writes to
	// `out` is reset up front so a re-run starts clean). Validation of ALL
	// reads strictly precedes the first apply: a serial-irrevocable
	// transaction cannot roll back, so nothing may be written until the whole
	// read set is known good.
	body := func() {
		out.Committed, out.ConflictKey = false, nil
		var phaseAt time.Time
		if fpo != nil {
			bodyAt = time.Now()
			phaseAt = bodyAt
		}
		ok := true
		for i := range reads {
			sw := w.pick(readHvs[i])
			if sw.casOf(readHvs[i], reads[i].Key) != reads[i].CAS {
				out.ConflictKey = reads[i].Key
				ok = false
				break
			}
		}
		if fpo != nil {
			now := time.Now()
			fpo.TxnValidate.Record(uint64(now.Sub(phaseAt)))
			phaseAt = now
		}
		if !ok {
			return
		}
		for i := range ops {
			out.Results[i] = w.pick(opHvs[i]).applyTxOp(opHvs[i], &ops[i])
		}
		if fpo != nil {
			fpo.TxnApply.Record(uint64(time.Since(phaseAt)))
		}
		out.Committed = true
	}

	low := 0 // counter-attribution shard: lowest touched index
	switch len(order) {
	case 0:
		// Empty transaction: trivially consistent.
		out.Committed = true
	case 1:
		low = order[0]
		sw := w.ws[low]
		_ = tm.Relaxed(sw.tctx, tm.Options{Site: "wiretx_commit"}, func(*stm.Tx) { body() })
	default:
		low = order[0]
		if !w.orderedCommit(order, 0, body, true) {
			// A later domain was busy: every serial transaction opened so far
			// committed empty (descending release), so nothing happened.
			// Re-run under the global serial section — every domain, still
			// ascending, all blocking — which cannot lose a race.
			out.SerialFallback = true
			all := make([]int, len(w.ws))
			for i := range all {
				all[i] = i
			}
			w.orderedCommit(all, 0, body, false)
		}
	}

	// Cross-shard commits report how long the final successful pass waited
	// for its serial locks; single-shard commits have no serial acquisition
	// to wait on (in-flight escalation aside) and are skipped.
	if fpo != nil && len(order) > 1 && !bodyAt.IsZero() {
		fpo.TxnSerialWait.Record(uint64(bodyAt.Sub(commitAt)))
	}

	sh := w.ws[low].c
	if out.SerialFallback {
		sh.txSerialFallbacks.Add(1)
	}
	if out.Committed {
		sh.txCommits.Add(1)
	} else {
		sh.txConflicts.Add(1)
	}
	return out
}

// orderedCommit opens a serial-irrevocable transaction on each listed shard's
// worker thread in ascending index order — each nested inside the previous,
// so releases unwind in descending order — and runs body with all of them
// held. When try is set, every acquisition after the first is bounded
// (TrySerial); a busy domain returns false with nothing run. The threads are
// distinct per shard, so the nesting never flattens here; the operations body
// issues DO flatten, each into its own shard's open serial transaction.
func (w *Worker) orderedCommit(order []int, k int, body func(), try bool) bool {
	if k == len(order) {
		body()
		return true
	}
	o := tm.Options{StartSerial: true, Site: "wiretx_commit"}
	if try && k > 0 {
		o.TrySerial = true
	}
	ok := true
	err := tm.Relaxed(w.ws[order[k]].tctx, o, func(*stm.Tx) {
		ok = w.orderedCommit(order, k+1, body, try)
	})
	if err != nil {
		return false // stm.ErrSerialBusy: this domain never opened
	}
	return ok
}

// casOf reads the current CAS id of key on this shard (0 = absent or
// expired): the commit-time revalidation of an in-transaction read. Inside
// CommitTx it flattens into the shard's open transaction; the profile matches
// item_get minus the copy-out (Find reads the volatile expansion flag and
// compares keys with memcmp).
func (w *shardWorker) casOf(hv uint64, key []byte) uint64 {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)
	var cas uint64
	body := func(ctx access.Ctx) {
		cas = 0
		it := w.c.tab.Find(ctx, hv, key)
		if it == nil || w.expired(ctx, it, now, flushAt) {
			return
		}
		cas = ctx.Word(it.CasID)
	}
	if w.c.cfg.itemTx {
		w.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, libc: true, ro: true, site: "wiretx_validate"}, body)
	} else {
		w.itemLock(hv)
		body(w.dctx)
		w.itemUnlock(hv)
	}
	return cas
}

// applyTxOp applies one queued mutation through the shard's normal internals,
// flattening into whatever transaction is open on this shard's thread.
func (w *shardWorker) applyTxOp(hv uint64, op *TxOp) TxOpResult {
	r := TxOpResult{Kind: op.Kind}
	switch op.Kind {
	case TxSet:
		r.Store = w.store(ModeSet, hv, op.Key, op.Flags, op.Exptime, op.Value, 0)
	case TxDel:
		r.Found = w.del(hv, op.Key)
	case TxTouch:
		r.Found = w.touch(hv, op.Key, op.Exptime)
	case TxIncr:
		r.NewValue, r.Delta = w.delta(hv, op.Key, op.Delta, false)
	case TxDecr:
		r.NewValue, r.Delta = w.delta(hv, op.Key, op.Delta, true)
	}
	return r
}
