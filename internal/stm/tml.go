package stm

// TML — Transactional Mutex Lock (Dalessandro, Dice, Scott, Shavit and
// Spear, "Transactional Mutex Locks", Euro-Par 2010; Spear is the paper's
// last author). The minimal STM: one global sequence lock.
//
//   - Readers snapshot an even sequence number at begin and re-check it on
//     every load; any change aborts them (no logs, no orecs, no validation
//     pass — the cheapest possible read barrier).
//   - The first write acquires the sequence lock by CAS to odd; the writer
//     then runs exclusive and writes in place. Commit releases at +2.
//
// TML is the degenerate point of the design space the paper's §4 explores:
// zero instrumentation metadata, perfect read scalability when writes are
// rare, and total serialization of writers. Comparing it against mlwt/
// lazy/norec on the memcached workload (BenchmarkTmdsListLookup, Figure 11
// harness via `-stm tml`) shows why GCC chose per-location orecs.
//
// The global sequence word reuses Runtime.nseq (NOrec's seqlock); the two
// algorithms never coexist in one runtime.

// tmlBegin samples an even sequence (reader mode).
func (tx *Tx) tmlBegin() {
	tx.start = tx.rt.norecBegin()
	tx.tmlWriter = false
}

// tmlLoad validates the snapshot after a direct read.
func (tx *Tx) tmlLoad(read func() uint64) uint64 {
	v := read()
	if !tx.tmlWriter && tx.rt.nseq.Load() != tx.start {
		tx.noteConflict("conflict: global sequence lock (read)", 0)
		panic(abortSignal{})
	}
	return v
}

// tmlAcquire upgrades to writer mode (first write).
func (tx *Tx) tmlAcquire() {
	if tx.tmlWriter {
		return
	}
	if !tx.rt.nseq.CompareAndSwap(tx.start, tx.start+1) {
		tx.noteConflict("conflict: global sequence lock (write)", 0)
		panic(abortSignal{})
	}
	tx.tmlWriter = true
}

// tmlCommit releases the sequence lock if held.
func (tx *Tx) tmlCommit() {
	if tx.tmlWriter {
		tx.rt.nseq.Store(tx.start + 2)
	}
}

// tmlRollback undoes in-place writes and releases the lock. The version
// still advances (+2): readers that overlapped the aborted writer must not
// be allowed to commit against its transient states.
func (tx *Tx) tmlRollback() {
	if !tx.tmlWriter {
		return
	}
	for i := len(tx.undoW) - 1; i >= 0; i-- {
		tx.undoW[i].p.Store(tx.undoW[i].v)
	}
	for i := len(tx.undoA) - 1; i >= 0; i-- {
		tx.undoA[i].a.p.Store(tx.undoA[i].b)
	}
	tx.rt.nseq.Store(tx.start + 2)
	tx.tmlWriter = false
}
