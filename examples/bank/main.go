// Bank: concurrent transfers under every STM algorithm and contention
// manager, demonstrating that the invariant (total balance) holds and how
// algorithm/CM choice changes abort behaviour — the §4 story of the paper in
// miniature.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stm"
)

const (
	accounts   = 64
	initial    = 1000
	goroutines = 8
	transfers  = 5000
)

func run(cfg stm.Config) (total uint64, snap stm.Snapshot) {
	rt := stm.New(cfg)
	accts := make([]*stm.TWord, accounts)
	for i := range accts {
		accts[i] = stm.NewTWord(initial)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			seed := uint64(g)*2654435761 + 12345
			next := func() uint64 {
				seed ^= seed >> 12
				seed ^= seed << 25
				seed ^= seed >> 27
				return seed * 0x2545F4914F6CDD1D
			}
			for i := 0; i < transfers; i++ {
				from := int(next() % accounts)
				to := int(next() % accounts)
				if from == to {
					continue
				}
				amount := next() % 10
				yield := i%7 == 0
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					f := accts[from].Load(tx)
					if f < amount {
						return
					}
					if yield {
						// Stretch some transactions across a scheduling
						// boundary so they genuinely overlap (and conflict)
						// even on a single-core host.
						runtime.Gosched()
					}
					accts[from].Store(tx, f-amount)
					accts[to].Store(tx, accts[to].Load(tx)+amount)
				})
			}
		}()
	}
	wg.Wait()

	th := rt.NewThread()
	_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		total = 0
		for _, a := range accts {
			total += a.Load(tx)
		}
	})
	return total, rt.Stats()
}

func main() {
	configs := []struct {
		name string
		cfg  stm.Config
	}{
		{"GCC default (mlwt + serialize-after-100)", stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize}},
		{"GCC-NoCM (mlwt, no serial lock)", stm.Config{Algorithm: stm.MLWT, CM: stm.CMNone, NoSerialLock: true}},
		{"NOrec", stm.Config{Algorithm: stm.NOrec, CM: stm.CMNone, NoSerialLock: true}},
		{"Lazy", stm.Config{Algorithm: stm.LazyAlg, CM: stm.CMNone, NoSerialLock: true}},
		{"Hourglass", stm.Config{Algorithm: stm.MLWT, CM: stm.CMHourglass, NoSerialLock: true}},
		{"Backoff", stm.Config{Algorithm: stm.MLWT, CM: stm.CMBackoff, NoSerialLock: true}},
	}
	want := uint64(accounts * initial)
	for _, c := range configs {
		total, s := run(c.cfg)
		status := "OK"
		if total != want {
			status = fmt.Sprintf("BROKEN (total=%d, want %d)", total, want)
		}
		fmt.Printf("%-44s %s  commits=%-6d aborts=%-6d aborts/commit=%.2f abort-serial=%d\n",
			c.name, status, s.Commits, s.Aborts, s.AbortsPerCommit(), s.AbortSerial)
	}
}
