package bench

import "repro/internal/engine"

// shardBalance reports each TM domain's share of total commits — the
// per-point shard balance every BENCH_*.json records, so a skewed run (one
// hot domain soaking the workload while the rest idle) is visible in the
// committed artifact instead of needing a raw counter dump to diagnose.
// Returns nil when no domain committed anything (lock-based branches).
func shardBalance(c *engine.Cache) []float64 {
	stats := c.ShardStats()
	var total uint64
	for _, ss := range stats {
		total += ss.Commits
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(stats))
	for i, ss := range stats {
		out[i] = float64(ss.Commits) / float64(total)
	}
	return out
}
