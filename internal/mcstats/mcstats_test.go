package mcstats

import (
	"testing"

	"repro/internal/access"
	"repro/internal/stm"
)

var dc = access.DirectCtx{}

func TestGlobalCountersZeroed(t *testing.T) {
	g := NewGlobal()
	for name, w := range map[string]*stm.TWord{
		"TotalItems": g.TotalItems, "CurrItems": g.CurrItems,
		"CurrBytes": g.CurrBytes, "Evictions": g.Evictions,
		"Expired": g.Expired, "Reassigned": g.Reassigned,
		"HashExpands": g.HashExpands,
	} {
		if w == nil {
			t.Fatalf("%s nil", name)
		}
		if w.LoadDirect() != 0 {
			t.Errorf("%s = %d", name, w.LoadDirect())
		}
	}
}

func TestAggregateSums(t *testing.T) {
	a, b := NewThread(), NewThread()
	dc.AddWord(a.GetCmds, 10)
	dc.AddWord(a.GetHits, 6)
	dc.AddWord(b.GetCmds, 5)
	dc.AddWord(b.GetHits, 1)
	dc.AddWord(b.SetCmds, 7)
	dc.AddWord(a.CasBadval, 2)
	agg := Aggregate(dc, []*Thread{a, b})
	if agg.GetCmds != 15 || agg.GetHits != 7 || agg.SetCmds != 7 || agg.CasBadval != 2 {
		t.Errorf("Aggregate = %+v", agg)
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := Aggregate(dc, nil)
	if agg != (Aggregated{}) {
		t.Errorf("Aggregate(nil) = %+v", agg)
	}
}

func TestAggregateTransactional(t *testing.T) {
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	blk := NewThread()
	err := th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		ctx := access.TxCtx{T: tx}
		ctx.AddWord(blk.GetMisses, 3)
		agg := Aggregate(ctx, []*Thread{blk})
		if agg.GetMisses != 3 {
			t.Errorf("in-tx aggregate = %+v", agg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
