package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryWakesOnWrite(t *testing.T) {
	for _, alg := range []Algorithm{MLWT, LazyAlg, NOrec, HTM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			flag := NewTWord(0)
			payload := NewTWord(0)
			var got uint64
			var woke atomic.Bool
			done := make(chan struct{})
			go func() {
				defer close(done)
				th := rt.NewThread()
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					if flag.Load(tx) == 0 {
						tx.Retry()
					}
					got = payload.Load(tx)
				})
				woke.Store(true)
			}()
			time.Sleep(20 * time.Millisecond)
			if woke.Load() {
				t.Fatal("consumer proceeded before the flag was set")
			}
			th := rt.NewThread()
			mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
				payload.Store(tx, 42)
				flag.Store(tx, 1)
			})
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Retry never woke")
			}
			if got != 42 {
				t.Errorf("consumer read %d, want 42 (must see the producer's whole commit)", got)
			}
			if rt.Stats().Retries == 0 {
				t.Error("Retries stat not counted")
			}
		})
	}
}

func TestRetryEmptyReadSetPanics(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty-read-set Retry")
		}
	}()
	_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) { tx.Retry() })
}

// TestRetryBlockingQueue implements the classic blocking pop with Retry: no
// lost wake-ups even with many producers and consumers.
func TestRetryBlockingQueue(t *testing.T) {
	rt := New(Config{})
	head := NewTAny(nil) // simple Treiber-style transactional stack
	type node struct {
		v    int
		next any
	}
	const producers, perP, consumers = 3, 200, 3
	total := producers * perP

	var consumed atomic.Int64
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for {
				if consumed.Load() >= int64(total) {
					return
				}
				var v int
				popped := false
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					popped = false
					h := head.Load(tx)
					if h == nil {
						// Blocking pop — but bounded: give up via a plain
						// check outside so the test can finish.
						if consumed.Load() >= int64(total) {
							return
						}
						tx.Retry()
					}
					n := h.(*node)
					head.Store(tx, n.next)
					v = n.v
					popped = true
				})
				if popped {
					consumed.Add(1)
					sum.Add(int64(v))
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < perP; i++ {
				v := p*perP + i
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					head.Store(tx, &node{v: v, next: head.Load(tx)})
				})
			}
		}()
	}

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("queue drain hung: consumed %d/%d", consumed.Load(), total)
	}
	want := int64(total) * int64(total-1) / 2
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d (every value exactly once)", sum.Load(), want)
	}
}

// TestRetryFig2Replacement re-expresses the paper's Figure 2 maintenance
// pattern with Retry instead of the cond->semaphore transformation: the
// maintainer sleeps on exactly the predicate "work pending or shutdown".
func TestRetryFig2Replacement(t *testing.T) {
	rt := New(Config{})
	workPending := NewTWord(0)
	canRun := NewTWord(1)
	var served atomic.Int64
	done := make(chan struct{})
	go func() { // the maintainer
		defer close(done)
		th := rt.NewThread()
		for {
			shutdown := false
			mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
				shutdown = false
				if canRun.Load(tx) == 0 {
					shutdown = true
					return
				}
				if workPending.Load(tx) == 0 {
					tx.Retry() // no condvar, no semaphore, no mx_running flag
				}
				workPending.Store(tx, workPending.Load(tx)-1)
			})
			if shutdown {
				return
			}
			served.Add(1)
		}
	}()

	th := rt.NewThread()
	for i := 0; i < 25; i++ { // workers signal by writing the predicate
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			workPending.Store(tx, workPending.Load(tx)+1)
		})
	}
	deadline := time.After(10 * time.Second)
	for served.Load() < 25 {
		select {
		case <-deadline:
			t.Fatalf("maintainer served %d/25", served.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) { canRun.Store(tx, 0) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("maintainer did not shut down")
	}
}

// TestOnAbortAsBackoff pins the paper's §5 remark that onAbort handlers'
// "only role we envisioned ... was to employ backoff after a failed
// transaction": a user-level contention manager built from OnAbort.
func TestOnAbortAsBackoff(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMNone})
	hot := NewTWord(0)
	backoffs := 0
	th := rt.NewThread()
	attempts := 0
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		attempts++
		tx.OnAbort(func() {
			backoffs++ // a real handler would sleep here
		})
		if attempts < 4 {
			tx.Abort()
		}
		hot.Store(tx, 1)
	})
	if backoffs != 3 {
		t.Errorf("onAbort ran %d times, want 3", backoffs)
	}
}
