// Package engine implements the memcached cache engine once, against the
// access.Ctx layer, and instantiates it under every synchronization branch of
// the paper: the lock-based baseline, the semaphore variant (§3.2), the two
// item-lock strategies (IP = privatizing transactional item locks, IT = item
// critical sections as transactions, §3.1/Figure 1), and the staged
// transactionalization ladder (Callable §3.3, Max §3.3, Lib §3.4,
// onCommit §3.5, NoLock §4).
package engine

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/stm"
)

// Branch selects a synchronization strategy from the paper.
type Branch int

const (
	// Baseline is stock memcached: pthread-style mutexes and condition
	// variables.
	Baseline Branch = iota
	// Semaphore is Baseline with condition variables replaced by semaphores
	// (Figure 2) — the precondition for transactionalization.
	Semaphore
	// IP replaces locks with transactions but keeps item locks as
	// transactional booleans; item data is privatized (Figure 1a).
	IP
	// IT replaces item-lock critical sections with transactions (Figure 1b).
	IT
	// IPCallable / ITCallable add transaction_callable annotations. The paper
	// found no measurable effect (§3.3, Figure 4); the branches exist so the
	// figure has all its series.
	IPCallable
	ITCallable
	// IPMax / ITMax replace volatiles and lock incr reference counts with
	// transactional accesses ("maximal" transactionalization, §3.3).
	IPMax
	ITMax
	// IPLib / ITLib add the transaction-safe standard library (§3.4).
	IPLib
	ITLib
	// IPOnCommit / ITOnCommit move sem_post and logging into onCommit
	// handlers; every transaction is atomic (§3.5).
	IPOnCommit
	ITOnCommit
	// IPNoLock / ITNoLock additionally remove the global readers/writer lock
	// from the TM runtime and run without contention management (§4).
	IPNoLock
	ITNoLock
)

var branchNames = map[Branch]string{
	Baseline:   "baseline",
	Semaphore:  "semaphore",
	IP:         "ip",
	IT:         "it",
	IPCallable: "ip-callable",
	ITCallable: "it-callable",
	IPMax:      "ip-max",
	ITMax:      "it-max",
	IPLib:      "ip-lib",
	ITLib:      "it-lib",
	IPOnCommit: "ip-oncommit",
	ITOnCommit: "it-oncommit",
	IPNoLock:   "ip-nolock",
	ITNoLock:   "it-nolock",
}

func (b Branch) String() string {
	if s, ok := branchNames[b]; ok {
		return s
	}
	return fmt.Sprintf("Branch(%d)", int(b))
}

// ParseBranch resolves a branch name.
func ParseBranch(s string) (Branch, error) {
	for b, name := range branchNames {
		if name == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown branch %q", s)
}

// Branches lists every branch in ladder order.
func Branches() []Branch {
	return []Branch{
		Baseline, Semaphore,
		IP, IT, IPCallable, ITCallable,
		IPMax, ITMax, IPLib, ITLib,
		IPOnCommit, ITOnCommit, IPNoLock, ITNoLock,
	}
}

// branchCfg is the derived static configuration of a branch.
type branchCfg struct {
	tm       bool // transactional branch
	itemTx   bool // IT family: item sections are transactions
	callable bool // annotations applied (no measurable semantic effect, §3.3)
	profile  access.Profile
	noLock   bool // remove the global serial lock; no contention management
	condvars bool // Baseline only: condition variables instead of semaphores
}

func configFor(b Branch) branchCfg {
	switch b {
	case Baseline:
		return branchCfg{condvars: true}
	case Semaphore:
		return branchCfg{}
	case IP:
		return branchCfg{tm: true}
	case IT:
		return branchCfg{tm: true, itemTx: true}
	case IPCallable:
		return branchCfg{tm: true, callable: true}
	case ITCallable:
		return branchCfg{tm: true, itemTx: true, callable: true}
	case IPMax:
		return branchCfg{tm: true, callable: true, profile: access.Profile{TxVolatiles: true}}
	case ITMax:
		return branchCfg{tm: true, itemTx: true, callable: true, profile: access.Profile{TxVolatiles: true}}
	case IPLib:
		return branchCfg{tm: true, callable: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true}}
	case ITLib:
		return branchCfg{tm: true, itemTx: true, callable: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true}}
	case IPOnCommit:
		return branchCfg{tm: true, callable: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}}
	case ITOnCommit:
		return branchCfg{tm: true, itemTx: true, callable: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}}
	case IPNoLock:
		return branchCfg{tm: true, callable: true, noLock: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}}
	case ITNoLock:
		return branchCfg{tm: true, itemTx: true, callable: true, noLock: true, profile: access.Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}}
	}
	panic(fmt.Sprintf("engine: bad branch %d", int(b)))
}

// stmConfigFor returns the default STM configuration for a branch, which the
// caller may override (Figure 11 swaps algorithms and contention managers on
// the NoLock code base).
func stmConfigFor(cfg branchCfg) stm.Config {
	sc := stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize}
	if cfg.noLock {
		sc.NoSerialLock = true
		sc.CM = stm.CMNone
	}
	return sc
}
