package tmctl

import (
	"testing"
	"time"

	"repro/internal/stm"
)

// fakeFeed drives a controller deterministically: a virtual clock advanced
// by the test, and a synthetic per-tick contention signal converted into the
// cumulative snapshots tickShard expects.
type fakeFeed struct {
	now   time.Time
	accum stm.Snapshot
}

func newFeed(c *Controller) *fakeFeed {
	f := &fakeFeed{now: time.Unix(1000, 0)}
	c.now = func() time.Time { return f.now }
	c.sample = func(*stm.Runtime) stm.Snapshot { return f.accum }
	return f
}

// window appends one sampling window's worth of signal: commits and aborts
// (ROFastCommits fixed at zero) — abort ratio = aborts/(aborts+commits).
func (f *fakeFeed) window(commits, aborts uint64) {
	f.accum.Commits += commits
	f.accum.Aborts += aborts
	f.accum.Starts += commits + aborts
}

func newTestController(p Policy) (*Controller, *fakeFeed) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})
	c := New(p, []*stm.Runtime{rt}, nil)
	f := newFeed(c)
	// Seed the baseline window so the next Tick computes a real delta.
	c.Tick()
	return c, f
}

// TestHysteresisSquareWave is the oscillation proof the issue asks for: a
// contention signal flipping between storm and calm every window — faster
// than MinDwell — must not flap the mode. The controller may degrade once
// per dwell period at most, and with the square wave calm half the time the
// heal path (HealWindows consecutive calm windows) never fires, so the
// shard ratchets to Serial and stays there: swaps are bounded by the rung
// count, not by the signal frequency.
func TestHysteresisSquareWave(t *testing.T) {
	p := Policy{
		Interval:          100 * time.Millisecond,
		DegradeAbortRatio: 0.5,
		HealAbortRatio:    0.1,
		HealWindows:       3,
		MinDwell:          time.Second, // = 10 windows
		MinSamples:        10,
	}
	c, f := newTestController(p)

	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			f.window(10, 90) // storm: abort ratio 0.9
		} else {
			f.window(100, 0) // calm: abort ratio 0
		}
		f.now = f.now.Add(100 * time.Millisecond)
		c.Tick()
	}

	st := c.Snapshot()
	swaps := st.Degrades + st.Promotes
	// 400 windows, 200 of them stormy: an uncontrolled flapper would swap
	// hundreds of times. The ladder has two rungs to descend and the calm
	// streak never reaches HealWindows, so at most 2 degrades and 0
	// promotes survive the hysteresis.
	if st.Degrades != 2 || st.Promotes != 0 {
		t.Fatalf("square wave: degrades=%d promotes=%d (want 2/0); status %+v",
			st.Degrades, st.Promotes, st)
	}
	if swaps > 2 {
		t.Fatalf("mode flapped: %d swaps under a square-wave signal", swaps)
	}
	if got := st.Shards[0].Mode; got != "serial" {
		t.Fatalf("mode = %s, want serial (ratcheted down, heal never fires)", got)
	}
}

// TestDegradeAndHeal walks the full round trip: a sustained storm marches
// Normal -> TML -> Serial one dwell period per rung; a sustained calm heals
// Serial -> TML -> Normal at HealWindows consecutive calm windows per rung
// (bounded self-heal interval). The base configuration must be restored
// exactly on return to Normal.
func TestDegradeAndHeal(t *testing.T) {
	p := Policy{
		Interval:          100 * time.Millisecond,
		DegradeAbortRatio: 0.5,
		HealAbortRatio:    0.1,
		HealWindows:       2,
		MinDwell:          300 * time.Millisecond,
		MinSamples:        10,
	}
	c, f := newTestController(p)
	base := c.shards[0].base

	tick := func(commits, aborts uint64) {
		f.window(commits, aborts)
		f.now = f.now.Add(100 * time.Millisecond)
		c.Tick()
	}

	for i := 0; i < 10 && c.shards[0].mode != ModeSerial; i++ {
		tick(10, 90)
	}
	if got := c.shards[0].mode; got != ModeSerial {
		t.Fatalf("sustained storm did not reach serial (mode %v)", got)
	}
	if got := c.shards[0].rt.Algorithm(); got != stm.SerialAlg {
		t.Fatalf("runtime algorithm = %v, want serial", got)
	}

	healed := -1
	for i := 0; i < 20; i++ {
		tick(100, 0)
		if c.shards[0].mode == ModeNormal {
			healed = i
			break
		}
	}
	if healed < 0 {
		t.Fatal("shard did not self-heal within 20 calm windows")
	}
	st := c.Snapshot()
	if st.Degrades != 2 || st.Promotes != 2 {
		t.Fatalf("degrades=%d promotes=%d, want 2/2", st.Degrades, st.Promotes)
	}
	if got := c.shards[0].rt.DynConfig(); got != base {
		t.Fatalf("healed config %+v != base %+v", got, base)
	}
}

// TestIdleShardHeals: an idle shard (windows below MinSamples) carries no
// storm evidence and must heal rather than stay degraded forever.
func TestIdleShardHeals(t *testing.T) {
	p := Policy{
		HealWindows: 2,
		MinDwell:    100 * time.Millisecond,
		MinSamples:  10,
	}
	c, f := newTestController(p)
	if err := c.Override(0, ModeSerial, false); err != nil {
		t.Fatalf("Override: %v", err)
	}
	for i := 0; i < 10 && c.shards[0].mode != ModeNormal; i++ {
		f.window(1, 0) // near-idle
		f.now = f.now.Add(200 * time.Millisecond)
		c.Tick()
	}
	if got := c.shards[0].mode; got != ModeNormal {
		t.Fatalf("idle shard stuck at %v", got)
	}
}

// TestOverridePin: a pinned shard ignores automatic transitions entirely
// until released.
func TestOverridePin(t *testing.T) {
	p := Policy{
		DegradeAbortRatio: 0.5,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		HealWindows:       2,
	}
	c, f := newTestController(p)
	if err := c.Override(0, ModeTML, true); err != nil {
		t.Fatalf("Override: %v", err)
	}
	for i := 0; i < 10; i++ {
		f.window(10, 90) // storm that would normally degrade further
		f.now = f.now.Add(200 * time.Millisecond)
		c.Tick()
	}
	if got := c.shards[0].mode; got != ModeTML {
		t.Fatalf("pinned shard moved to %v", got)
	}
	if err := c.Release(0); err != nil {
		t.Fatalf("Release: %v", err)
	}
	for i := 0; i < 5 && c.shards[0].mode == ModeTML; i++ {
		f.window(10, 90)
		f.now = f.now.Add(200 * time.Millisecond)
		c.Tick()
	}
	if got := c.shards[0].mode; got != ModeSerial {
		t.Fatalf("released shard did not resume automatic control (mode %v)", got)
	}

	if err := c.Override(99, ModeTML, false); err == nil {
		t.Fatal("Override out of range succeeded")
	}
}

// TestResetSwapCountersPreservesLearnedState: "stats reset" semantics — the
// counters zero exactly once, the mode, dwell clock and calm progress stay.
func TestResetSwapCountersPreservesLearnedState(t *testing.T) {
	p := Policy{
		DegradeAbortRatio: 0.5,
		HealAbortRatio:    0.1,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		HealWindows:       5,
	}
	c, f := newTestController(p)
	f.window(10, 90)
	f.now = f.now.Add(200 * time.Millisecond)
	c.Tick()
	if c.Snapshot().Degrades != 1 {
		t.Fatalf("setup: degrades = %d, want 1", c.Snapshot().Degrades)
	}
	mode := c.shards[0].mode
	c.ResetSwapCounters()
	st := c.Snapshot()
	if st.Degrades != 0 || st.Promotes != 0 || st.Retunes != 0 || st.AnomalyTrips != 0 {
		t.Fatalf("counters not cleared: %+v", st)
	}
	if c.shards[0].mode != mode {
		t.Fatalf("reset changed mode %v -> %v", mode, c.shards[0].mode)
	}
	if c.shards[0].base != c.shards[0].rt.DynConfig() && mode == ModeNormal {
		t.Fatal("reset disturbed learned base config")
	}
}

// TestRetuneByROShare: within Normal mode a read-dominated window retunes
// the shard to mlwt and a write-heavy one to lazy, with the dwell time
// gating each move.
func TestRetuneByROShare(t *testing.T) {
	p := Policy{
		DegradeAbortRatio: 0.9,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		ROReadBias:        0.75,
		HealWindows:       2,
	}
	c, f := newTestController(p)

	// Write-heavy window: no RO fast-path commits.
	f.window(100, 0)
	f.now = f.now.Add(200 * time.Millisecond)
	c.Tick()
	if got := c.shards[0].rt.Algorithm(); got != stm.LazyAlg {
		t.Fatalf("write-heavy window: algorithm %v, want lazy", got)
	}

	// Read-dominated window: 90% of commits on the RO fast path.
	f.accum.Commits += 100
	f.accum.ROFastCommits += 90
	f.accum.Starts += 100
	f.now = f.now.Add(200 * time.Millisecond)
	c.Tick()
	if got := c.shards[0].rt.Algorithm(); got != stm.MLWT {
		t.Fatalf("read-dominated window: algorithm %v, want mlwt", got)
	}
	if got := c.Snapshot().Retunes; got != 2 {
		t.Fatalf("retunes = %d, want 2", got)
	}
}

// TestStatsResetMidFlight: counters going backwards (a stats reset between
// ticks) must re-seed the baseline, not judge a bogus giant delta.
func TestStatsResetMidFlight(t *testing.T) {
	p := Policy{DegradeAbortRatio: 0.5, MinDwell: 100 * time.Millisecond, MinSamples: 10, HealWindows: 2}
	c, f := newTestController(p)
	f.window(1000, 0)
	f.now = f.now.Add(200 * time.Millisecond)
	c.Tick()
	// Reset: cumulative counters drop to a small stormy-looking remainder.
	f.accum = stm.Snapshot{Starts: 5, Commits: 1, Aborts: 4}
	f.now = f.now.Add(200 * time.Millisecond)
	c.Tick()
	if got := c.shards[0].mode; got != ModeNormal {
		t.Fatalf("controller degraded on a stats-reset artifact (mode %v)", got)
	}
}

// TestHealProbeEscalation: every promotion is a probe. A probe that fails —
// the shard degrades again before surviving HealWindows calm windows at the
// new rung — doubles the calm streak the next heal demands; a probe that
// survives resets the requirement to the baseline. The whole timeline runs
// on the injected clock, one window per tick.
func TestHealProbeEscalation(t *testing.T) {
	p := Policy{
		Interval:          100 * time.Millisecond,
		DegradeAbortRatio: 0.5,
		HealAbortRatio:    0.1,
		HealWindows:       2,
		HealBackoffMax:    3,
		MinDwell:          300 * time.Millisecond,
		MinSamples:        10,
		ROReadBias:        -1, // no retune noise in this test
	}
	c, f := newTestController(p)
	s := c.shards[0]

	tick := func(commits, aborts uint64) {
		f.window(commits, aborts)
		f.now = f.now.Add(100 * time.Millisecond)
		c.Tick()
	}
	storm := func() { tick(10, 90) }
	calm := func() { tick(100, 0) }
	// calmUntilPromote returns how many calm windows the promotion took.
	calmUntilPromote := func(limit int) int {
		before := s.promotes
		for i := 1; i <= limit; i++ {
			calm()
			if s.promotes > before {
				return i
			}
		}
		t.Fatalf("no promotion within %d calm windows (mode %v, shift %d)",
			limit, s.mode, s.healShift)
		return 0
	}
	// failProbe storms until the shard degrades again (dwell-gated).
	failProbe := func() {
		before := s.degrades
		for i := 0; i < 10 && s.degrades == before; i++ {
			storm()
		}
		if s.degrades == before {
			t.Fatal("storm did not degrade the shard")
		}
	}

	storm() // Normal -> TML (first dwell clock starts far in the past)
	if s.mode != ModeTML {
		t.Fatalf("mode %v after first storm, want tml", s.mode)
	}

	// First heal: baseline requirement. Dwell is 3 windows and HealWindows
	// is 2, so the promotion lands on the first post-dwell calm window.
	if n := calmUntilPromote(10); n != 3 {
		t.Fatalf("first heal took %d calm windows, want 3 (dwell-bounded)", n)
	}
	if !s.probing || s.healShift != 0 {
		t.Fatalf("after promote: probing=%v shift=%d, want probing shift 0", s.probing, s.healShift)
	}

	// The probe fails: storm returns before 2 calm windows pass.
	failProbe()
	if s.probing || s.healShift != 1 {
		t.Fatalf("after failed probe: probing=%v shift=%d, want !probing shift 1", s.probing, s.healShift)
	}

	// Second heal now demands 2<<1 = 4 calm windows (dwell only covers 3).
	if n := calmUntilPromote(10); n != 4 {
		t.Fatalf("post-failure heal took %d calm windows, want 4", n)
	}

	// Fail again: shift escalates to 2, heal demands 8 windows.
	failProbe()
	if s.healShift != 2 {
		t.Fatalf("second failed probe: shift %d, want 2", s.healShift)
	}
	if n := calmUntilPromote(20); n != 8 {
		t.Fatalf("heal after two failures took %d calm windows, want 8", n)
	}

	// This probe survives: 2 calm windows at the higher rung confirm the
	// heal and pay back the escalation entirely.
	calm()
	calm()
	if s.probing || s.healShift != 0 {
		t.Fatalf("surviving probe: probing=%v shift=%d, want confirmed shift 0", s.probing, s.healShift)
	}
	st := c.Snapshot().Shards[0]
	if st.HealShift != 0 || st.Probing {
		t.Fatalf("status heal_backoff_shift=%d heal_probing=%v, want 0/false", st.HealShift, st.Probing)
	}

	// And the next heal cycle is back to the baseline requirement.
	failProbe() // degrade (not probing: shift must stay 0)
	if s.healShift != 0 {
		t.Fatalf("degrade outside a probe moved shift to %d", s.healShift)
	}
	if n := calmUntilPromote(10); n != 3 {
		t.Fatalf("post-confirmation heal took %d calm windows, want 3 again", n)
	}
}

// TestHealProbeEscalationCap: the shift never exceeds HealBackoffMax no
// matter how many probes fail.
func TestHealProbeEscalationCap(t *testing.T) {
	p := Policy{
		Interval:          100 * time.Millisecond,
		DegradeAbortRatio: 0.5,
		HealAbortRatio:    0.1,
		HealWindows:       1,
		HealBackoffMax:    1,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		ROReadBias:        -1,
	}
	c, f := newTestController(p)
	s := c.shards[0]
	tick := func(commits, aborts uint64) {
		f.window(commits, aborts)
		f.now = f.now.Add(200 * time.Millisecond) // every tick clears dwell
		c.Tick()
	}

	tick(10, 90) // Normal -> TML
	for round := 0; round < 4; round++ {
		// Heal (1<<shift calm windows at most 2 here), then fail the probe.
		for i := 0; i < 4 && s.mode != ModeNormal; i++ {
			tick(100, 0)
		}
		if s.mode != ModeNormal {
			t.Fatalf("round %d: heal never fired (shift %d)", round, s.healShift)
		}
		tick(10, 90) // probe fails immediately
		if s.healShift > p.HealBackoffMax {
			t.Fatalf("round %d: shift %d exceeds cap %d", round, s.healShift, p.HealBackoffMax)
		}
	}
	if s.healShift != 1 {
		t.Fatalf("final shift %d, want capped at 1", s.healShift)
	}
}

// fakeSource is a deterministic FingerprintSource: a fixed concentration
// per shard.
type fakeSource map[int]float64

func (f fakeSource) Concentration(shard int) float64 { return f[shard] }

// TestHotKeyGateDefersDiffuseStorms is the fingerprint-consumption proof:
// two shards see the IDENTICAL abort-only storm, and the only difference
// between them is the workload shape the fingerprint reports — shard 0's
// aborts concentrate on hot keys (0.9), shard 1's are diffuse (0.1). With
// HotKeyGate at 0.5 the controller must degrade shard 0 to TML and hold
// shard 1 at Normal, counting the deferral. Serialization evidence then
// bypasses the gate: the same diffuse shard degrades once the storm carries
// start-serial events.
func TestHotKeyGateDefersDiffuseStorms(t *testing.T) {
	p := Policy{
		DegradeAbortRatio: 0.5,
		DegradeSerialFrac: 0.3,
		HealAbortRatio:    0.1,
		HealWindows:       5,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		ROReadBias:        -1, // no retune noise
		HotKeyGate:        0.5,
	}
	rt0 := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})
	rt1 := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})
	c := New(p, []*stm.Runtime{rt0, rt1}, nil)
	f := newFeed(c) // both shards sample the same cumulative signal
	c.SetFingerprint(fakeSource{0: 0.9, 1: 0.1})
	c.Tick() // seed baselines

	tick := func(commits, aborts uint64) {
		f.window(commits, aborts)
		f.now = f.now.Add(200 * time.Millisecond)
		c.Tick()
	}

	// Phase 1: abort-only storm (no serialization events → serialFrac 0).
	tick(10, 90)
	if got := c.shards[0].mode; got != ModeTML {
		t.Fatalf("concentrated shard 0 mode = %v, want tml", got)
	}
	if got := c.shards[1].mode; got != ModeNormal {
		t.Fatalf("diffuse shard 1 mode = %v, want normal (gated)", got)
	}
	st := c.Snapshot()
	if st.Shards[1].GateDeferrals == 0 {
		t.Fatal("gate fired but deferral counter is 0")
	}
	if st.Shards[0].GateDeferrals != 0 {
		t.Fatalf("concentrated shard counted %d deferrals", st.Shards[0].GateDeferrals)
	}
	if !st.Shards[1].HaveFingerprint || st.Shards[1].Concentration != 0.1 {
		t.Fatalf("shard 1 status %+v, want have_fingerprint with conc 0.1", st.Shards[1])
	}
	if st.GateDeferrals == 0 {
		t.Fatal("summary gate_deferrals = 0")
	}

	// The storm persisting without serial evidence keeps deferring — the
	// diffuse shard must not ratchet down on abort ratio alone.
	before := c.shards[1].gateDeferrals
	tick(10, 90)
	if got := c.shards[1].mode; got != ModeNormal {
		t.Fatalf("sustained diffuse storm degraded shard 1 to %v", got)
	}
	if c.shards[1].gateDeferrals <= before {
		t.Fatal("sustained storm did not grow the deferral count")
	}

	// Phase 2: serialization evidence joins the storm (start-serial on every
	// commit → serialFrac 1.0 ≥ DegradeSerialFrac). The gate must step aside:
	// TML cannot be wrong when the runtime is already serializing.
	f.accum.StartSerial += 100
	tick(10, 90)
	if got := c.shards[1].mode; got != ModeTML {
		t.Fatalf("serial-evidence storm still gated: shard 1 mode = %v, want tml", got)
	}

	// stats reset clears the deferral counters but not the learned rungs.
	c.ResetSwapCounters()
	st = c.Snapshot()
	if st.GateDeferrals != 0 || st.Shards[1].GateDeferrals != 0 {
		t.Fatalf("reset left gate deferrals: %+v", st)
	}
	if c.shards[1].mode != ModeTML {
		t.Fatal("reset disturbed the mode ladder")
	}
}

// TestHotKeyGateDetachAndDisable: detaching the source (DisableFingerprint
// path) restores ungated threshold decisions, and a negative HotKeyGate
// disables the gate even with a source attached.
func TestHotKeyGateDetachAndDisable(t *testing.T) {
	p := Policy{
		DegradeAbortRatio: 0.5,
		DegradeSerialFrac: 0.3,
		MinDwell:          100 * time.Millisecond,
		MinSamples:        10,
		HealWindows:       5,
		ROReadBias:        -1,
		HotKeyGate:        0.5,
	}
	c, f := newTestController(p)
	c.SetFingerprint(fakeSource{0: 0.0})
	tick := func() {
		f.window(10, 90)
		f.now = f.now.Add(200 * time.Millisecond)
		c.Tick()
	}
	tick()
	if got := c.shards[0].mode; got != ModeNormal {
		t.Fatalf("diffuse storm with source attached degraded to %v", got)
	}
	c.SetFingerprint(nil)
	if c.Snapshot().Shards[0].HaveFingerprint {
		t.Fatal("detach left have_fingerprint set")
	}
	tick()
	if got := c.shards[0].mode; got != ModeTML {
		t.Fatalf("detached controller still gated: mode %v, want tml", got)
	}

	// Fresh controller, gate explicitly disabled: source attached but the
	// diffuse storm degrades anyway.
	p.HotKeyGate = -1
	c2, f2 := newTestController(p)
	c2.SetFingerprint(fakeSource{0: 0.0})
	f2.window(10, 90)
	f2.now = f2.now.Add(200 * time.Millisecond)
	c2.Tick()
	if got := c2.shards[0].mode; got != ModeTML {
		t.Fatalf("HotKeyGate<0 still gated: mode %v, want tml", got)
	}
}
