package mctop_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mctop"
	"repro/internal/server"
)

// startServer boots a multi-shard cache with fingerprinting on, served by
// the event-loop transport — the exact deployment mctop is built for.
func startServer(t *testing.T) (*engine.Cache, *server.Server) {
	t.Helper()
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8, Shards: 4})
	c.Start()
	c.EnableFingerprint()
	s, err := server.ListenConfig(c, server.Config{Addr: "127.0.0.1:0", EventLoop: true})
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return c, s
}

// drive sends a skewed workload: one scorching key plus a spread of cold
// ones, so the fingerprint has both a hot-key entry and a mix to report.
func drive(t *testing.T, addr string, rounds int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	expect := func(want string) {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, want) {
			t.Fatalf("reply %q (err %v), want prefix %q", line, err, want)
		}
	}
	fmt.Fprintf(conn, "set scorcher 0 0 4\r\nhhhh\r\n")
	expect("STORED")
	for i := 0; i < rounds; i++ {
		fmt.Fprintf(conn, "get scorcher\r\n")
		expect("VALUE")
		r.ReadString('\n') // value
		r.ReadString('\n') // END
		key := fmt.Sprintf("cold-%d", i)
		fmt.Fprintf(conn, "set %s 0 0 2\r\ncc\r\n", key)
		expect("STORED")
	}
}

func TestMctopLiveServerSnapshot(t *testing.T) {
	_, s := startServer(t)
	drive(t, s.Addr(), 100)

	first, err := mctop.Fetch(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s.Addr(), 50)
	// Frames need distinct timestamps for the rate columns.
	time.Sleep(10 * time.Millisecond)
	cur, err := mctop.Fetch(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if !cur.HasFP || !cur.FingerprintOn {
		t.Fatalf("fingerprint surface not detected: %+v", cur)
	}
	if len(cur.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(cur.Shards))
	}
	var totalOps uint64
	hotShard := -1
	for i := range cur.Shards {
		totalOps += cur.Shards[i].Ops
		for _, hk := range cur.Shards[i].HotKeys {
			if hk.Key == "scorcher" {
				hotShard = i
			}
		}
	}
	if totalOps == 0 {
		t.Fatal("no ops in any shard fingerprint")
	}
	if hotShard < 0 {
		t.Fatalf("hot key missing from every shard's sketch: %+v", cur.Shards)
	}
	if c := cur.Shards[hotShard].Concentration; c <= 0 || c > 1 {
		t.Fatalf("hot shard concentration = %v, want (0, 1]", c)
	}
	if !cur.HasEL || cur.Workers == 0 {
		t.Fatalf("event-loop telemetry missing: %+v", cur)
	}
	if cur.PollWakeups == 0 {
		t.Fatal("poller wakeups = 0 after live traffic")
	}
	if cur.CmdGet <= first.CmdGet {
		t.Fatalf("cmd_get did not advance between frames: %d -> %d", first.CmdGet, cur.CmdGet)
	}

	// The rendered console must carry the multi-shard view: a row per
	// shard, the hot key with its count, the transport line, and rates.
	out := mctop.Render(cur, first)
	wants := []string{"mctop —", "transport: event-loop", "poller: wakeups=", "scorcher:", "shard"}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered frame missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n < 4+len(cur.Shards) {
		t.Fatalf("rendered frame too short (%d lines):\n%s", n, out)
	}
	// One row per shard, numbered.
	for i := range cur.Shards {
		if !strings.Contains(out, fmt.Sprintf("\n%-5d", i)) {
			t.Fatalf("rendered frame missing row for shard %d:\n%s", i, out)
		}
	}

	// Render with no previous frame blanks the rate columns instead of
	// dividing by zero.
	if out0 := mctop.Render(cur, nil); !strings.Contains(out0, "get=-") {
		t.Fatalf("first-frame render should blank rates:\n%s", out0)
	}
}

// TestMctopClassicServer covers the degraded columns: a classic-transport,
// never-fingerprinted server still yields a frame and a renderable screen.
func TestMctopClassicServer(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	s, err := server.ListenConfig(c, server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	defer func() {
		s.Close()
		c.Stop()
	}()
	f, err := mctop.Fetch(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasEL {
		t.Fatal("classic transport reported event-loop telemetry")
	}
	if f.HasFP && f.FingerprintOn {
		t.Fatal("never-enabled fingerprint reported as on")
	}
	out := mctop.Render(f, nil)
	if !strings.Contains(out, "transport: classic") {
		t.Fatalf("classic render:\n%s", out)
	}
}
