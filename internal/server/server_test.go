package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

func startServer(t *testing.T, b engine.Branch) (*Server, *engine.Cache) {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8})
	c.Start()
	s, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return s, c
}

func roundTrip(t *testing.T, addr, send string, wantPrefix string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(send)); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(line, wantPrefix) {
		t.Errorf("reply %q, want prefix %q", line, wantPrefix)
	}
	return line
}

func TestServeTextOverTCP(t *testing.T) {
	s, _ := startServer(t, engine.Baseline)
	roundTrip(t, s.Addr(), "set k 0 0 5\r\nhello\r\n", "STORED")
	roundTrip(t, s.Addr(), "version\r\n", "VERSION")
}

func TestConnectionsShareTheCache(t *testing.T) {
	s, _ := startServer(t, engine.ITOnCommit)
	roundTrip(t, s.Addr(), "set shared 0 0 3\r\nabc\r\n", "STORED")

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "get shared\r\n")
	r := bufio.NewReader(conn)
	line, _ := r.ReadString('\n')
	if !strings.HasPrefix(line, "VALUE shared 0 3") {
		t.Errorf("second connection missed: %q", line)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	s, _ := startServer(t, engine.IPOnCommit)
	const conns = 16
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for op := 0; op < 30; op++ {
				key := fmt.Sprintf("k-%d-%d", i, op%5)
				fmt.Fprintf(conn, "set %s 0 0 2\r\nvv\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || line != "STORED\r\n" {
					t.Errorf("set: %q %v", line, err)
					return
				}
				fmt.Fprintf(conn, "get %s\r\n", key)
				if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "VALUE") {
					t.Errorf("get: %q %v", line, err)
					return
				}
				r.ReadString('\n') // data
				r.ReadString('\n') // END
			}
		}()
	}
	wg.Wait()
}

func TestCloseTerminates(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.Semaphore, HashPower: 8})
	c.Start()
	defer c.Stop()
	s, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err == nil {
		t.Error("double Close did not error")
	}
	// The held connection must have been torn down.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection still alive after Close")
	}
}
