package access

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sem"
	"repro/internal/stm"
)

func runTx(t *testing.T, rt *stm.Runtime, kind stm.Kind, p Profile, fn func(TxCtx)) error {
	t.Helper()
	th := rt.NewThread()
	return th.Run(stm.Props{Kind: kind}, func(tx *stm.Tx) {
		fn(TxCtx{T: tx, Profile: p})
	})
}

func TestDirectCtxBasics(t *testing.T) {
	c := DirectCtx{}
	w := stm.NewTWord(5)
	if c.Word(w) != 5 {
		t.Error("Word")
	}
	c.SetWord(w, 6)
	if c.AddWord(w, 2) != 8 {
		t.Error("AddWord")
	}
	a := stm.NewTAny("x")
	c.SetAny(a, "y")
	if c.Any(a) != "y" {
		t.Error("Any")
	}
	if c.InTx() || c.Tx() != nil {
		t.Error("DirectCtx claims to be transactional")
	}
	if c.Volatile(w) != 8 {
		t.Error("Volatile")
	}
	c.SetVolatile(w, 1)
	if c.AddVolatile(w, 1) != 2 {
		t.Error("AddVolatile")
	}
}

func TestDirectCtxLibc(t *testing.T) {
	for _, naive := range []bool{false, true} {
		c := DirectCtx{NaiveLibc: naive}
		s := stm.NewTBytesFrom([]byte("hello world"))
		if c.Memcmp(s, 0, []byte("hello world")) != 0 {
			t.Errorf("naive=%v: Memcmp equal failed", naive)
		}
		if c.Memcmp(s, 6, []byte("world")) != 0 {
			t.Errorf("naive=%v: Memcmp offset failed", naive)
		}
		if c.Memcmp(s, 0, []byte("hellp")) >= 0 {
			t.Errorf("naive=%v: Memcmp ordering failed", naive)
		}
		out := make([]byte, 5)
		c.MemcpyOut(out, s, 6, 5)
		if string(out) != "world" {
			t.Errorf("naive=%v: MemcpyOut = %q", naive, out)
		}
	}

	c := DirectCtx{}
	dst := stm.NewTBytes(16)
	c.MemcpyIn(dst, 2, []byte("abc"))
	if got := dst.Bytes()[2:5]; !bytes.Equal(got, []byte("abc")) {
		t.Errorf("MemcpyIn = %q", got)
	}
	src := stm.NewTBytesFrom([]byte("0123456789"))
	c.MemcpyTB(dst, 0, src, 5, 3)
	if got := dst.Bytes()[:3]; !bytes.Equal(got, []byte("567")) {
		t.Errorf("MemcpyTB = %q", got)
	}
	v, n := c.Strtoull(stm.NewTBytesFrom([]byte("321x")), 0, 4)
	if v != 321 || n != 3 {
		t.Errorf("Strtoull = (%d,%d)", v, n)
	}
	buf := stm.NewTBytes(64)
	wrote := c.FormatSuffix(buf, 0, 7, 100)
	if got := string(buf.Bytes()[:wrote]); got != " 7 100\r\n" {
		t.Errorf("FormatSuffix = %q", got)
	}
	wrote = c.FormatUint(buf, 0, 42)
	if got := string(buf.Bytes()[:wrote]); got != "42" {
		t.Errorf("FormatUint = %q", got)
	}
}

func TestDirectCtxIO(t *testing.T) {
	c := DirectCtx{}
	var logged string
	c.Fprintf(func(s string) { logged = s }, "event")
	if logged != "event" {
		t.Error("Fprintf did not log")
	}
	c.Fprintf(nil, "dropped") // must not panic
	s := sem.New(0)
	c.SemPost(s)
	if !s.TryWait() {
		t.Error("SemPost lost")
	}
}

func TestTxCtxInstrumentedAccess(t *testing.T) {
	rt := stm.New(stm.Config{})
	w := stm.NewTWord(1)
	a := stm.NewTAny(10)
	err := runTx(t, rt, stm.Atomic, Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}, func(c TxCtx) {
		if !c.InTx() || c.Tx() == nil {
			t.Error("TxCtx not transactional")
		}
		c.SetWord(w, c.Word(w)+1)
		if c.AddWord(w, 3) != 5 {
			t.Error("AddWord")
		}
		c.SetAny(a, c.Any(a).(int)*2)
		if c.Volatile(w) != 5 {
			t.Error("Volatile (transactional)")
		}
		c.SetVolatile(w, 7)
		if c.AddVolatile(w, 1) != 8 {
			t.Error("AddVolatile (transactional)")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.LoadDirect() != 8 || a.LoadDirect() != 20 {
		t.Errorf("after commit: w=%d a=%v", w.LoadDirect(), a.LoadDirect())
	}
}

func TestTxCtxVolatileUnsafePreMax(t *testing.T) {
	rt := stm.New(stm.Config{})
	w := stm.NewTWord(0)
	// In a relaxed transaction, the volatile access triggers the in-flight
	// switch, then proceeds directly.
	err := runTx(t, rt, stm.Relaxed, Profile{}, func(c TxCtx) {
		if c.AddVolatile(w, 1) != 1 {
			t.Error("AddVolatile value")
		}
		if !c.Tx().Serial() {
			t.Error("not serialized by volatile access")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats().InFlightSwitch; got != 1 {
		t.Errorf("InFlightSwitch = %d", got)
	}
	// In an atomic transaction it is the compile-error analogue.
	defer func() {
		r := recover()
		if err, ok := r.(error); !ok || !errors.Is(err, stm.ErrUnsafeInAtomic) {
			t.Fatalf("panic = %v", r)
		}
	}()
	_ = runTx(t, rt, stm.Atomic, Profile{}, func(c TxCtx) { c.Volatile(w) })
	t.Fatal("no panic")
}

func TestTxCtxLibcGate(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := stm.NewTBytesFrom([]byte("payload!"))
	// Pre-Lib: memcmp serializes a relaxed transaction.
	err := runTx(t, rt, stm.Relaxed, Profile{TxVolatiles: true}, func(c TxCtx) {
		if c.Memcmp(s, 0, []byte("payload!")) != 0 {
			t.Error("Memcmp result")
		}
		if !c.Tx().Serial() {
			t.Error("memcmp did not serialize pre-Lib")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Post-Lib: the tm_* version runs inside an atomic transaction.
	err = runTx(t, rt, stm.Atomic, Profile{TxVolatiles: true, SafeLibc: true}, func(c TxCtx) {
		if c.Memcmp(s, 0, []byte("payload!")) != 0 {
			t.Error("tm_memcmp result")
		}
		dst := make([]byte, 4)
		c.MemcpyOut(dst, s, 0, 4)
		if string(dst) != "payl" {
			t.Errorf("MemcpyOut = %q", dst)
		}
		if c.Tx().Serial() {
			t.Error("safe library call serialized")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxCtxLibcWriters(t *testing.T) {
	rt := stm.New(stm.Config{})
	prof := Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}
	dst := stm.NewTBytes(32)
	src := stm.NewTBytesFrom([]byte("abcdefgh"))
	err := runTx(t, rt, stm.Atomic, prof, func(c TxCtx) {
		c.MemcpyIn(dst, 0, []byte("XY"))
		c.MemcpyTB(dst, 2, src, 0, 4)
		n := c.FormatUint(dst, 6, 99)
		if n != 2 {
			t.Errorf("FormatUint n = %d", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(dst.Bytes()[:8]); got != "XYabcd99" {
		t.Errorf("dst = %q", got)
	}
	v, n := uint64(0), 0
	err = runTx(t, rt, stm.Atomic, prof, func(c TxCtx) {
		v, n = c.Strtoull(stm.NewTBytesFrom([]byte("777")), 0, 3)
	})
	if err != nil || v != 777 || n != 3 {
		t.Errorf("Strtoull = (%d,%d,%v)", v, n, err)
	}
}

func TestTxCtxIODeferred(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := sem.New(0)
	var logged []string

	// onCommit stage: both the log write and the post happen only at commit.
	err := runTx(t, rt, stm.Atomic, Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}, func(c TxCtx) {
		c.Fprintf(func(m string) { logged = append(logged, m) }, "deferred")
		c.SemPost(s)
		if len(logged) != 0 || s.TryWait() {
			t.Error("I/O happened inside the transaction despite OnCommitIO")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != 1 || logged[0] != "deferred" {
		t.Errorf("logged = %v", logged)
	}
	if !s.TryWait() {
		t.Error("post not delivered at commit")
	}

	// Pre-onCommit: the post serializes the relaxed transaction and happens
	// immediately.
	err = runTx(t, rt, stm.Relaxed, Profile{TxVolatiles: true, SafeLibc: true}, func(c TxCtx) {
		c.SemPost(s)
		if !c.Tx().Serial() {
			t.Error("sem_post did not serialize")
		}
		if !s.TryWait() {
			t.Error("post not visible inside serialized transaction")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxCtxIONotRunOnCancel(t *testing.T) {
	rt := stm.New(stm.Config{})
	s := sem.New(0)
	err := runTx(t, rt, stm.Atomic, Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}, func(c TxCtx) {
		c.SemPost(s)
		c.Tx().Cancel()
	})
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if s.TryWait() {
		t.Error("deferred post delivered despite cancel")
	}
}
