// Package fingerprint characterizes the live workload per TM shard: a
// Space-Saving hot-key sketch, the read/write/delete mix, a key-skew
// concentration estimate, a value-size log-histogram, and the abort-cause
// mix, all kept in exponentially decayed windows so consumers (stats
// fingerprint, /debug/fingerprint, mctop, and the tmctl hot-key gate) see
// the last few seconds of traffic rather than process lifetime totals.
//
// The design contract mirrors txobs/txtrace: when fingerprinting is
// disabled the engine hot path pays exactly one atomic pointer load (nil).
// When enabled, each engine worker owns a private single-writer Recorder —
// all fields atomic, so any number of snapshot readers race it without
// locks and without upsetting the race detector, and the record path takes
// no locks and (on a stable hot set) performs no allocations.
package fingerprint

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Op classifies one engine operation for the mix counters.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpDelete
	OpDelta
	OpTouch
	numOps
)

// Abort causes mirrored from the per-shard STM runtime by the observer
// tick (the fingerprint layer itself never imports stm).
const (
	AbortConflict = iota // plain validation/acquisition aborts
	AbortStartSerial
	AbortAbortSerial // abort-threshold escalations to the serial lock
	AbortInflight    // in-flight config switches
	AbortWatchdog    // starvation-watchdog serializations
	numAborts
)

// decayEvery: the observer decays its windows every decayEvery ticks. At
// the engine's 1 Hz tick this gives a half-life of 4 s — responsive enough
// for mctop, stable enough that the tmctl gate is not whipsawed by a
// single quiet second.
const decayEvery = 4

// Recorder is the per-engine-worker sampling point. Exactly one goroutine
// writes it (the worker that asked the shard for it); snapshots may read
// it at any time.
type Recorder struct {
	ops    [numOps]atomic.Uint64
	hits   atomic.Uint64
	misses atomic.Uint64
	vsize  LogHist
	sketch Sketch
}

// Record samples one operation. size < 0 means "no value involved"
// (deletes, touches, misses); hit carries found/stored semantics.
func (r *Recorder) Record(op Op, hv uint64, key []byte, size int, hit bool) {
	if op < numOps {
		r.ops[op].Add(1)
	}
	if hit {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
	if size >= 0 {
		r.vsize.Record(uint64(size))
	}
	r.sketch.Record(hv, key)
}

func (r *Recorder) decay() {
	for i := range r.ops {
		r.ops[i].Store(r.ops[i].Load() / 2)
	}
	r.hits.Store(r.hits.Load() / 2)
	r.misses.Store(r.misses.Load() / 2)
	r.vsize.decay()
	r.sketch.decay()
}

func (r *Recorder) reset() {
	for i := range r.ops {
		r.ops[i].Store(0)
	}
	r.hits.Store(0)
	r.misses.Store(0)
	r.vsize.Reset()
	r.sketch.reset()
}

// Shard aggregates the recorders of every worker that has touched one TM
// shard, plus the shard's abort-cause window (fed by the observer tick as
// plain deltas).
type Shard struct {
	mu     sync.Mutex
	recs   []*Recorder
	aborts [numAborts]atomic.Uint64
}

// Recorder allocates and registers a new single-writer recorder. Called
// once per (worker, shard, enable-generation) — never on the op path.
func (s *Shard) Recorder() *Recorder {
	r := &Recorder{}
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
	return r
}

// AddAborts folds one sampling interval's abort-cause deltas into the
// decayed window. cause is one of the Abort* constants.
func (s *Shard) AddAborts(cause int, n uint64) {
	if cause >= 0 && cause < numAborts && n > 0 {
		s.aborts[cause].Add(n)
	}
}

func (s *Shard) recorders() []*Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Recorder(nil), s.recs...)
}

func (s *Shard) decay() {
	for _, r := range s.recorders() {
		r.decay()
	}
	for i := range s.aborts {
		s.aborts[i].Store(s.aborts[i].Load() / 2)
	}
}

func (s *Shard) reset() {
	for _, r := range s.recorders() {
		r.reset()
	}
	for i := range s.aborts {
		s.aborts[i].Store(0)
	}
}

// AbortsSnapshot is the decayed abort-cause window of one shard.
type AbortsSnapshot struct {
	Conflicts      uint64 `json:"conflicts"`
	StartSerial    uint64 `json:"start_serial"`
	AbortSerial    uint64 `json:"abort_serial"`
	InflightSwitch uint64 `json:"inflight_switch"`
	Watchdog       uint64 `json:"watchdog"`
}

// ShardSnapshot is one shard's merged fingerprint.
type ShardSnapshot struct {
	Ops           uint64         `json:"ops"`
	Reads         uint64         `json:"reads"`
	Writes        uint64         `json:"writes"`
	Deletes       uint64         `json:"deletes"`
	Deltas        uint64         `json:"deltas"`
	Touches       uint64         `json:"touches"`
	Hits          uint64         `json:"hits"`
	Misses        uint64         `json:"misses"`
	Concentration float64        `json:"concentration"`
	HotKeys       []HotKey       `json:"hot_keys"`
	VSize         HistSnapshot   `json:"vsize"`
	Aborts        AbortsSnapshot `json:"aborts"`
}

// Snapshot is the whole observer, JSON-shaped for /debug/fingerprint.
type Snapshot struct {
	Shards        []ShardSnapshot `json:"shards"`
	TxnQueue      HistSnapshot    `json:"txn_queue_ns"`
	TxnValidate   HistSnapshot    `json:"txn_validate_ns"`
	TxnApply      HistSnapshot    `json:"txn_apply_ns"`
	TxnSerialWait HistSnapshot    `json:"txn_serial_wait_ns"`
}

// Observer owns the per-shard fingerprints plus the wire-transaction phase
// histograms (cache-global: a cross-shard commit has no single home shard).
type Observer struct {
	shards []*Shard
	ticks  atomic.Uint64

	TxnQueue      LogHist
	TxnValidate   LogHist
	TxnApply      LogHist
	TxnSerialWait LogHist
}

// New builds an observer for n shards.
func New(n int) *Observer {
	o := &Observer{shards: make([]*Shard, n)}
	for i := range o.shards {
		o.shards[i] = &Shard{}
	}
	return o
}

// NumShards reports the shard count the observer was built for.
func (o *Observer) NumShards() int { return len(o.shards) }

// Shard returns the fingerprint home of shard i.
func (o *Observer) Shard(i int) *Shard { return o.shards[i] }

// Tick advances the decay clock; the engine sampler calls it at 1 Hz.
// Every decayEvery-th tick halves all windows.
func (o *Observer) Tick() {
	if o.ticks.Add(1)%decayEvery != 0 {
		return
	}
	for _, s := range o.shards {
		s.decay()
	}
}

// merge folds all recorders of shard s into one view.
func (s *Shard) snapshot() ShardSnapshot {
	var snap ShardSnapshot
	byHash := make(map[uint64]HotKey)
	var vsize HistSnapshot
	var vsum, vcount, vmax uint64
	var counts [histBuckets]uint64
	for _, r := range s.recorders() {
		snap.Reads += r.ops[OpRead].Load()
		snap.Writes += r.ops[OpWrite].Load()
		snap.Deletes += r.ops[OpDelete].Load()
		snap.Deltas += r.ops[OpDelta].Load()
		snap.Touches += r.ops[OpTouch].Load()
		snap.Hits += r.hits.Load()
		snap.Misses += r.misses.Load()
		n := int(r.sketch.used.Load())
		for i := 0; i < n; i++ {
			e := &r.sketch.entries[i]
			c := e.count.Load()
			if c == 0 {
				continue
			}
			kp := e.key.Load()
			if kp == nil {
				continue
			}
			hv := e.hash.Load()
			prev := byHash[hv]
			byHash[hv] = HotKey{Key: *kp, Count: prev.Count + c, Err: prev.Err + e.errs.Load()}
		}
		for i := range counts {
			counts[i] += r.vsize.buckets[i].Load()
		}
		vsum += r.vsize.sum.Load()
		if m := r.vsize.max.Load(); m > vmax {
			vmax = m
		}
	}
	snap.Ops = snap.Reads + snap.Writes + snap.Deletes + snap.Deltas + snap.Touches
	for _, c := range counts {
		vcount += c
	}
	vsize = summarize(counts, vcount, vsum, vmax)
	snap.VSize = vsize
	hot := make([]HotKey, 0, len(byHash))
	for _, hk := range byHash {
		hot = append(hot, hk)
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		return hot[i].Key < hot[j].Key
	})
	if len(hot) > TopK {
		hot = hot[:TopK]
	}
	snap.HotKeys = hot
	var hotSum uint64
	for _, hk := range hot {
		hotSum += hk.Count
	}
	if snap.Ops > 0 {
		snap.Concentration = float64(hotSum) / float64(snap.Ops)
		if snap.Concentration > 1 {
			snap.Concentration = 1 // racing decay can skew the ratio past 1
		}
	}
	snap.Aborts = AbortsSnapshot{
		Conflicts:      s.aborts[AbortConflict].Load(),
		StartSerial:    s.aborts[AbortStartSerial].Load(),
		AbortSerial:    s.aborts[AbortAbortSerial].Load(),
		InflightSwitch: s.aborts[AbortInflight].Load(),
		Watchdog:       s.aborts[AbortWatchdog].Load(),
	}
	return snap
}

// summarize builds a HistSnapshot from pre-merged bucket counts.
func summarize(counts [histBuckets]uint64, total, sum, max uint64) HistSnapshot {
	s := HistSnapshot{Count: total, Max: max}
	if total == 0 {
		return s
	}
	s.Mean = sum / total
	quantile := func(q float64) uint64 {
		want := uint64(q * float64(total))
		if want >= total {
			want = total - 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > want {
				if i == 0 {
					return 0
				}
				ub := (uint64(1) << uint(i)) - 1
				if ub > max && max != 0 {
					ub = max
				}
				return ub
			}
		}
		return max
	}
	s.P50 = quantile(0.50)
	s.P95 = quantile(0.95)
	s.P99 = quantile(0.99)
	return s
}

// Snapshot merges every shard and the transaction-phase histograms.
func (o *Observer) Snapshot() Snapshot {
	out := Snapshot{
		Shards:        make([]ShardSnapshot, len(o.shards)),
		TxnQueue:      o.TxnQueue.Snapshot(),
		TxnValidate:   o.TxnValidate.Snapshot(),
		TxnApply:      o.TxnApply.Snapshot(),
		TxnSerialWait: o.TxnSerialWait.Snapshot(),
	}
	for i, s := range o.shards {
		out.Shards[i] = s.snapshot()
	}
	return out
}

// Concentration reports shard i's current hot-key concentration — the
// decayed-window share of operations landing on the merged top-K keys.
// This is the tmctl FingerprintSource contract.
func (o *Observer) Concentration(shard int) float64 {
	if shard < 0 || shard >= len(o.shards) {
		return 0
	}
	return o.shards[shard].snapshot().Concentration
}

// Reset clears every counter window and the txn-phase histograms —
// exactly-once semantics belong to the caller (the stats reset router).
func (o *Observer) Reset() {
	for _, s := range o.shards {
		s.reset()
	}
	o.TxnQueue.Reset()
	o.TxnValidate.Reset()
	o.TxnApply.Reset()
	o.TxnSerialWait.Reset()
}
