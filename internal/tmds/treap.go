package tmds

import (
	"repro/internal/stm"
	"repro/internal/txobs"
)

// lblTreap tags treap words for the conflict heat map.
var lblTreap = txobs.RegisterLabel("tmds_treap")

// Treap is a transactional ordered map implemented as a treap (a binary
// search tree ordered by key, heap-ordered by a per-key pseudo-random
// priority). Rotations touch a handful of transactional links, making it a
// good medium-size-write-set workload; lookups are read-only transactions of
// logarithmic depth.
//
// Priorities are derived deterministically from the key, so the structure's
// shape is a pure function of its contents — convenient for testing and for
// replayable benchmarks.
type Treap struct {
	root *stm.TAny // *treapNode
	size *stm.TWord
}

type treapNode struct {
	key  uint64
	prio uint64
	val  *stm.TAny
	l, r *stm.TAny // *treapNode
}

func asTreapNode(v any) *treapNode {
	if v == nil {
		return nil
	}
	return v.(*treapNode)
}

func prioFor(key uint64) uint64 {
	x := key + 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// NewTreap creates an empty tree.
func NewTreap() *Treap {
	return &Treap{root: stm.NewTAny(nil).Label(lblTreap), size: stm.NewTWord(0).Label(lblTreap)}
}

// Get returns the value at key.
func (t *Treap) Get(tx *stm.Tx, key uint64) (any, bool) {
	n := asTreapNode(t.root.Load(tx))
	for n != nil {
		switch {
		case key == n.key:
			return n.val.Load(tx), true
		case key < n.key:
			n = asTreapNode(n.l.Load(tx))
		default:
			n = asTreapNode(n.r.Load(tx))
		}
	}
	return nil, false
}

// Contains reports whether key is present.
func (t *Treap) Contains(tx *stm.Tx, key uint64) bool {
	_, ok := t.Get(tx, key)
	return ok
}

// Len returns the element count.
func (t *Treap) Len(tx *stm.Tx) uint64 { return t.size.Load(tx) }

// Insert adds or replaces key=val; reports whether the key was newly added.
func (t *Treap) Insert(tx *stm.Tx, key uint64, val any) bool {
	added := false
	newRoot := t.insert(tx, asTreapNode(t.root.Load(tx)), key, val, &added)
	t.root.Store(tx, newRoot)
	if added {
		t.size.Add(tx, 1)
	}
	return added
}

func (t *Treap) insert(tx *stm.Tx, n *treapNode, key uint64, val any, added *bool) *treapNode {
	if n == nil {
		*added = true
		return &treapNode{
			key:  key,
			prio: prioFor(key),
			val:  stm.NewTAny(val).Label(lblTreap),
			l:    stm.NewTAny(nil).Label(lblTreap),
			r:    stm.NewTAny(nil).Label(lblTreap),
		}
	}
	switch {
	case key == n.key:
		n.val.Store(tx, val)
		return n
	case key < n.key:
		child := t.insert(tx, asTreapNode(n.l.Load(tx)), key, val, added)
		n.l.Store(tx, child)
		if child.prio > n.prio {
			return t.rotateRight(tx, n)
		}
	default:
		child := t.insert(tx, asTreapNode(n.r.Load(tx)), key, val, added)
		n.r.Store(tx, child)
		if child.prio > n.prio {
			return t.rotateLeft(tx, n)
		}
	}
	return n
}

// rotateRight lifts n's left child.
func (t *Treap) rotateRight(tx *stm.Tx, n *treapNode) *treapNode {
	l := asTreapNode(n.l.Load(tx))
	n.l.Store(tx, l.r.Load(tx))
	l.r.Store(tx, n)
	return l
}

// rotateLeft lifts n's right child.
func (t *Treap) rotateLeft(tx *stm.Tx, n *treapNode) *treapNode {
	r := asTreapNode(n.r.Load(tx))
	n.r.Store(tx, r.l.Load(tx))
	r.l.Store(tx, n)
	return r
}

// Remove deletes key; reports whether it was present.
func (t *Treap) Remove(tx *stm.Tx, key uint64) bool {
	removed := false
	newRoot := t.remove(tx, asTreapNode(t.root.Load(tx)), key, &removed)
	t.root.Store(tx, newRoot)
	if removed {
		t.size.Add(tx, ^uint64(0))
	}
	return removed
}

func (t *Treap) remove(tx *stm.Tx, n *treapNode, key uint64, removed *bool) *treapNode {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.l.Store(tx, t.remove(tx, asTreapNode(n.l.Load(tx)), key, removed))
	case key > n.key:
		n.r.Store(tx, t.remove(tx, asTreapNode(n.r.Load(tx)), key, removed))
	default:
		*removed = true
		return t.merge(tx, asTreapNode(n.l.Load(tx)), asTreapNode(n.r.Load(tx)))
	}
	return n
}

// merge joins two treaps where every key in l precedes every key in r.
func (t *Treap) merge(tx *stm.Tx, l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.r.Store(tx, t.merge(tx, asTreapNode(l.r.Load(tx)), r))
		return l
	default:
		r.l.Store(tx, t.merge(tx, l, asTreapNode(r.l.Load(tx))))
		return r
	}
}

// Keys returns the keys in ascending order.
func (t *Treap) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	var walk func(n *treapNode)
	walk = func(n *treapNode) {
		if n == nil {
			return
		}
		walk(asTreapNode(n.l.Load(tx)))
		out = append(out, n.key)
		walk(asTreapNode(n.r.Load(tx)))
	}
	walk(asTreapNode(t.root.Load(tx)))
	return out
}

// CheckInvariants validates BST order and heap priority; it returns false on
// the first violation (tests).
func (t *Treap) CheckInvariants(tx *stm.Tx) bool {
	var check func(n *treapNode, lo, hi uint64, hasLo, hasHi bool) bool
	check = func(n *treapNode, lo, hi uint64, hasLo, hasHi bool) bool {
		if n == nil {
			return true
		}
		if hasLo && n.key <= lo {
			return false
		}
		if hasHi && n.key >= hi {
			return false
		}
		l, r := asTreapNode(n.l.Load(tx)), asTreapNode(n.r.Load(tx))
		if l != nil && l.prio > n.prio {
			return false
		}
		if r != nil && r.prio > n.prio {
			return false
		}
		return check(l, lo, n.key, hasLo, true) && check(r, n.key, hi, true, hasHi)
	}
	return check(asTreapNode(t.root.Load(tx)), 0, 0, false, false)
}
