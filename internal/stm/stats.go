package stm

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Stats collects runtime-wide transaction statistics. The column names match
// Tables 1-4 of the paper: Transactions (commits), In-Flight Switch (relaxed
// transactions that hit unsafe code on a branch and switched to serial),
// Start Serial (transactions that began in serial mode), Abort Serial
// (transactions serialized for progress after consecutive aborts).
type Stats struct {
	Starts         atomic.Uint64 // attempts, including retries
	Commits        atomic.Uint64
	Aborts         atomic.Uint64
	InFlightSwitch atomic.Uint64
	StartSerial    atomic.Uint64
	AbortSerial    atomic.Uint64
	SerialCommits  atomic.Uint64

	// HTM emulation (§5): capacity aborts and lock-fallback events.
	HTMCapacityAborts atomic.Uint64
	HTMFallbacks      atomic.Uint64

	// Retries counts Tx.Retry condition-synchronization waits.
	Retries atomic.Uint64

	// Read-only fast path (Props.ReadOnly): commits that validated by
	// timestamp extension with zero orec acquisitions, and attempts that hit a
	// write barrier and upgraded to the normal path.
	ROFastCommits atomic.Uint64
	ROUpgrades    atomic.Uint64

	// Starvation-watchdog actions (see watchdog.go): threads escalated to
	// randomized backoff, and threads escalated to serial-irrevocable
	// execution for guaranteed progress.
	WatchdogBackoffs   atomic.Uint64
	WatchdogSerializes atomic.Uint64

	// Dynamic reconfiguration (see dyn.go): total Reconfigure calls, and the
	// subset that changed the algorithm (controller mode swaps).
	Reconfigures atomic.Uint64
	AlgoSwaps    atomic.Uint64
}

// Snapshot is a point-in-time copy of Stats plus per-thread breakdowns.
type Snapshot struct {
	Starts         uint64
	Commits        uint64
	Aborts         uint64
	InFlightSwitch uint64
	StartSerial    uint64
	AbortSerial    uint64
	SerialCommits  uint64

	HTMCapacityAborts uint64
	HTMFallbacks      uint64
	Retries           uint64

	ROFastCommits uint64
	ROUpgrades    uint64

	WatchdogBackoffs   uint64
	WatchdogSerializes uint64

	Reconfigures uint64
	AlgoSwaps    uint64

	ThreadCommits []uint64
	ThreadAborts  []uint64
}

// Stats returns a snapshot of the runtime's counters.
func (rt *Runtime) Stats() Snapshot {
	s := Snapshot{
		Starts:         rt.stats.Starts.Load(),
		Commits:        rt.stats.Commits.Load(),
		Aborts:         rt.stats.Aborts.Load(),
		InFlightSwitch: rt.stats.InFlightSwitch.Load(),
		StartSerial:    rt.stats.StartSerial.Load(),
		AbortSerial:    rt.stats.AbortSerial.Load(),
		SerialCommits:  rt.stats.SerialCommits.Load(),

		HTMCapacityAborts: rt.stats.HTMCapacityAborts.Load(),
		HTMFallbacks:      rt.stats.HTMFallbacks.Load(),
		Retries:           rt.stats.Retries.Load(),

		ROFastCommits: rt.stats.ROFastCommits.Load(),
		ROUpgrades:    rt.stats.ROUpgrades.Load(),

		WatchdogBackoffs:   rt.stats.WatchdogBackoffs.Load(),
		WatchdogSerializes: rt.stats.WatchdogSerializes.Load(),

		Reconfigures: rt.stats.Reconfigures.Load(),
		AlgoSwaps:    rt.stats.AlgoSwaps.Load(),
	}
	rt.mu.Lock()
	for _, th := range rt.threads {
		s.ThreadCommits = append(s.ThreadCommits, th.commits.Load())
		s.ThreadAborts = append(s.ThreadAborts, th.aborts.Load())
	}
	rt.mu.Unlock()
	return s
}

// ResetStats zeroes the counters (between experiment phases).
func (rt *Runtime) ResetStats() {
	rt.stats.Starts.Store(0)
	rt.stats.Commits.Store(0)
	rt.stats.Aborts.Store(0)
	rt.stats.InFlightSwitch.Store(0)
	rt.stats.StartSerial.Store(0)
	rt.stats.AbortSerial.Store(0)
	rt.stats.SerialCommits.Store(0)
	rt.stats.HTMCapacityAborts.Store(0)
	rt.stats.HTMFallbacks.Store(0)
	rt.stats.Retries.Store(0)
	rt.stats.ROFastCommits.Store(0)
	rt.stats.ROUpgrades.Store(0)
	rt.stats.WatchdogBackoffs.Store(0)
	rt.stats.WatchdogSerializes.Store(0)
	rt.stats.Reconfigures.Store(0)
	rt.stats.AlgoSwaps.Store(0)
	rt.mu.Lock()
	for _, th := range rt.threads {
		th.commits.Store(0)
		th.aborts.Store(0)
	}
	rt.mu.Unlock()
}

// Sub returns s - base, field-wise (per-thread slices are dropped): the delta
// accumulated between two snapshots.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	return Snapshot{
		Starts:         s.Starts - base.Starts,
		Commits:        s.Commits - base.Commits,
		Aborts:         s.Aborts - base.Aborts,
		InFlightSwitch: s.InFlightSwitch - base.InFlightSwitch,
		StartSerial:    s.StartSerial - base.StartSerial,
		AbortSerial:    s.AbortSerial - base.AbortSerial,
		SerialCommits:  s.SerialCommits - base.SerialCommits,
		ROFastCommits:  s.ROFastCommits - base.ROFastCommits,
		ROUpgrades:     s.ROUpgrades - base.ROUpgrades,

		WatchdogBackoffs:   s.WatchdogBackoffs - base.WatchdogBackoffs,
		WatchdogSerializes: s.WatchdogSerializes - base.WatchdogSerializes,
		Reconfigures:       s.Reconfigures - base.Reconfigures,
		AlgoSwaps:          s.AlgoSwaps - base.AlgoSwaps,
	}
}

// Add returns the field-wise sum of s and o — merging per-shard runtime
// snapshots into one engine-level view. Per-thread breakdowns concatenate
// (each shard's runtime numbers its own threads).
func (s Snapshot) Add(o Snapshot) Snapshot {
	s.Starts += o.Starts
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.InFlightSwitch += o.InFlightSwitch
	s.StartSerial += o.StartSerial
	s.AbortSerial += o.AbortSerial
	s.SerialCommits += o.SerialCommits
	s.HTMCapacityAborts += o.HTMCapacityAborts
	s.HTMFallbacks += o.HTMFallbacks
	s.Retries += o.Retries
	s.ROFastCommits += o.ROFastCommits
	s.ROUpgrades += o.ROUpgrades
	s.WatchdogBackoffs += o.WatchdogBackoffs
	s.WatchdogSerializes += o.WatchdogSerializes
	s.Reconfigures += o.Reconfigures
	s.AlgoSwaps += o.AlgoSwaps
	s.ThreadCommits = append(append([]uint64(nil), s.ThreadCommits...), o.ThreadCommits...)
	s.ThreadAborts = append(append([]uint64(nil), s.ThreadAborts...), o.ThreadAborts...)
	return s
}

// AbortsPerCommit returns the ratio the paper quotes in §4 ("NOrec worker
// threads aborted once per 5 commits, Lazy 14 times per commit, ...").
func (s Snapshot) AbortsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// AbortRateVariance returns the variance across threads of per-thread abort
// rate (aborts / (aborts+commits)); §4 uses its spread to diagnose starvation.
func (s Snapshot) AbortRateVariance() float64 {
	var rates []float64
	for i := range s.ThreadCommits {
		tot := s.ThreadCommits[i] + s.ThreadAborts[i]
		if tot == 0 {
			continue
		}
		rates = append(rates, float64(s.ThreadAborts[i])/float64(tot))
	}
	if len(rates) == 0 {
		return 0
	}
	var mean float64
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	var v float64
	for _, r := range rates {
		v += (r - mean) * (r - mean)
	}
	v /= float64(len(rates))
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// TableRow formats the snapshot as a row of Tables 1-4: transactions,
// in-flight switches, start-serial, abort-serial (with percentages of total
// transactions, as the paper prints them).
func (s Snapshot) TableRow(branch string) string {
	pct := func(n uint64) string {
		if s.Commits == 0 {
			return "0"
		}
		return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(s.Commits))
	}
	return fmt.Sprintf("%-16s %10d  %-18s %-18s %d",
		branch, s.Commits, pct(s.InFlightSwitch), pct(s.StartSerial), s.AbortSerial)
}
