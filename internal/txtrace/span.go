// Package txtrace is the request-scoped tracing layer: it threads one span
// per protocol request from the server transport down through every STM
// attempt that request runs, and feeds three consumers — a slow-transaction
// flight recorder, an OTLP-style JSON export, and the mctrace analyze
// conflict-graph reconstruction.
//
// The layer's cost contract mirrors txobs's: with tracing off, a request
// pays exactly one atomic load (ConnSpans.Begin reading the tracer mode).
// Everything else — per-event copies, the keep decision, ring publication —
// happens only on requests whose connection holds an active span.
//
// Sampling is adaptive head sampling: in sampled mode a deterministic
// 1-in-N head sampler (driven by internal/fault's seeded per-ordinal
// decision, point fault.TraceHeadSample) picks a baseline population, and
// every pathological request — an abort-retry chain of length ≥ K, any
// serialization, or latency above the rolling p99 estimate — is always kept
// regardless of the coin. Full mode keeps everything; off records nothing.
package txtrace

import (
	"sort"
	"sync/atomic"
	"time"
)

// SpanEvent is one STM event inside a request span: a begin, an abort (with
// cause, conflicting orec, and the owner label of the writer that held it),
// a serialization, or a commit. It is a flattened copy of txobs.Event plus
// the offset from the span start, so a span is self-contained once exported.
type SpanEvent struct {
	OffNanos int64  `json:"off_ns"` // offset from span start
	Kind     string `json:"kind"`
	Site     string `json:"site,omitempty"`
	Cause    string `json:"cause,omitempty"`
	Owner    string `json:"owner,omitempty"` // site of the conflicting writer
	Label    string `json:"label,omitempty"` // structure label of the conflicting orec
	Orec     int32  `json:"orec"`            // conflicting orec index, -1 = none
	Shard    int32  `json:"shard"`
	Retry    uint32 `json:"retry"` // consecutive-abort ordinal at event time
	Serial   bool   `json:"serial,omitempty"`
	Reads    uint32 `json:"reads"`
	Writes   uint32 `json:"writes"`
}

// Span is one kept request: identity, timing, its pathology summary, and the
// full event tree. Spans are immutable once published to a ring.
type Span struct {
	ID    uint64 `json:"id"`   // tracer-global span id (kept spans only)
	Conn  uint64 `json:"conn"` // connection id
	Seq   uint64 `json:"seq"`  // request ordinal on the tracer (all requests)
	Cmd   string `json:"cmd"`  // protocol command ("get", "incr", "binary/set", ...)
	Start int64  `json:"start"`

	DurNanos   int64  `json:"dur_ns"`
	Aborts     uint32 `json:"aborts"`      // abort events in the span
	MaxRetry   uint32 `json:"max_retry"`   // longest consecutive-abort chain seen
	Serialized bool   `json:"serialized"`  // any serialization event
	MaxReads   uint32 `json:"max_reads"`   // largest read set of any attempt
	MaxWrites  uint32 `json:"max_writes"`  // largest write set of any attempt
	Keep       string `json:"keep"`        // retries | serialized | slow | head | full
	Truncated  int    `json:"truncated"`   // events past the per-span cap, dropped

	Events []SpanEvent `json:"events"`
}

// SpanRing is a lock-free ring of kept spans, same discipline as txobs.Ring:
// writers reserve with one atomic add and publish with one pointer store,
// readers snapshot without blocking, overwrites past the capacity are counted
// in dropped rather than silently absorbed.
type SpanRing struct {
	slots   []atomic.Pointer[Span]
	mask    uint64
	head    atomic.Uint64
	dropped atomic.Uint64
}

// NewSpanRing creates a ring holding capacity spans (rounded up to a power of
// two, minimum 8).
func NewSpanRing(capacity int) *SpanRing {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], c), mask: uint64(c - 1)}
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Len returns the number of spans currently held.
func (r *SpanRing) Len() int {
	if h := r.head.Load(); h < uint64(len(r.slots)) {
		return int(h)
	}
	return len(r.slots)
}

// Recorded returns the number of spans ever recorded.
func (r *SpanRing) Recorded() uint64 { return r.head.Load() }

// Dropped returns the number of spans overwritten at wrap.
func (r *SpanRing) Dropped() uint64 { return r.dropped.Load() }

// Record publishes sp, overwriting (and counting) the oldest when full.
func (r *SpanRing) Record(sp *Span) {
	i := r.head.Add(1) - 1
	if i >= uint64(len(r.slots)) {
		r.dropped.Add(1)
	}
	r.slots[i&r.mask].Store(sp)
}

// Snapshot returns the spans currently held, oldest first (by span ID).
func (r *SpanRing) Snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if sp := r.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// reset empties the ring and rewinds head and dropped.
func (r *SpanRing) reset() {
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.head.Store(0)
	r.dropped.Store(0)
}

// durNanos is a helper bridging time.Duration and the int64 JSON fields.
func durNanos(d time.Duration) int64 { return int64(d) }
