package bench

import (
	"repro/internal/engine"
	"strings"
	"testing"
)

// small keeps harness unit tests fast; shapes are asserted by the root-level
// shape tests and recorded in EXPERIMENTS.md at full scale.
var small = Options{
	Threads:      []int{1, 2},
	TableThreads: 2,
	OpsPerThread: 400,
	KeySpace:     256,
	ValueSize:    128,
	MemLimit:     8 << 20,
}

func TestRunFigureIDs(t *testing.T) {
	for _, id := range []int{4, 6, 8, 9, 10, 11} {
		fig, err := RunFigure(id, small)
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		if fig.ID != id || len(fig.Series) == 0 {
			t.Errorf("figure %d malformed: %+v", id, fig.ID)
		}
		for _, s := range fig.Series {
			if len(s.Points) != len(small.Threads) {
				t.Errorf("figure %d series %q has %d points", id, s.Variant.Label, len(s.Points))
			}
			for _, p := range s.Points {
				if p.Seconds <= 0 || p.OpsPerS <= 0 {
					t.Errorf("figure %d series %q: empty point %+v", id, s.Variant.Label, p)
				}
			}
		}
		if out := fig.String(); !strings.Contains(out, "threads") {
			t.Errorf("figure %d renders %q", id, out)
		}
	}
	if _, err := RunFigure(5, small); err == nil {
		t.Error("figure 5 accepted (paper has no figure 5 experiment)")
	}
}

func TestRunTableIDs(t *testing.T) {
	for _, id := range []int{1, 2, 3, 4} {
		tab, err := RunTable(id, small)
		if err != nil {
			t.Fatalf("table %d: %v", id, err)
		}
		if len(tab.Rows) < 4 {
			t.Errorf("table %d has %d rows", id, len(tab.Rows))
		}
		for _, r := range tab.Rows {
			if r.Transactions == 0 {
				t.Errorf("table %d row %q: zero transactions", id, r.Label)
			}
		}
		if out := tab.String(); !strings.Contains(out, "Start Serial") {
			t.Errorf("table %d renders %q", id, out)
		}
	}
	if _, err := RunTable(9, small); err == nil {
		t.Error("table 9 accepted")
	}
}

func TestTable4OnCommitRowsAreClean(t *testing.T) {
	tab, err := RunTable(4, small)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if !strings.Contains(r.Label, "onCommit") {
			continue
		}
		if r.InFlight != 0 || r.StartSerial != 0 {
			t.Errorf("%s: in-flight=%d start-serial=%d, want 0/0", r.Label, r.InFlight, r.StartSerial)
		}
	}
}

func TestRunRatios(t *testing.T) {
	rows := RunRatios(Options{
		Threads:      []int{2},
		OpsPerThread: 400,
		KeySpace:     128,
		ValueSize:    128,
	})
	if len(rows) != 5 {
		t.Fatalf("%d ratio rows", len(rows))
	}
	for _, r := range rows {
		if r.AbortsPerCommit < 0 {
			t.Errorf("%s: negative ratio", r.Label)
		}
	}
}

func TestFigureAndTableVariants(t *testing.T) {
	for _, id := range []int{4, 6, 8, 9, 10, 11} {
		vs := FigureVariants(id)
		if len(vs) < 5 {
			t.Errorf("figure %d: %d variants", id, len(vs))
		}
		for _, v := range vs {
			if v.Label == "" {
				t.Errorf("figure %d: unlabeled variant", id)
			}
		}
	}
	if FigureVariants(5) != nil {
		t.Error("figure 5 returned variants")
	}
	for _, id := range []int{1, 2, 3, 4} {
		if len(TableVariants(id)) < 4 {
			t.Errorf("table %d variants short", id)
		}
	}
	if TableVariants(9) != nil {
		t.Error("table 9 returned variants")
	}
}

func TestRunProfiled(t *testing.T) {
	rep, err := RunProfiled(engine.ITCallable, 2, Options{
		OpsPerThread: 300, KeySpace: 128, ValueSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "serialization causes:") || !strings.Contains(rep, "item_get") {
		t.Errorf("report = %q", rep)
	}
	if _, err := RunProfiled(engine.Baseline, 1, Options{OpsPerThread: 10}); err == nil {
		t.Error("profiling a lock branch should error")
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("median(nil)")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}
