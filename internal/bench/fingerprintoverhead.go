package bench

import (
	"bytes"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/protocol"
)

// FingerprintOverheadResult quantifies the workload-fingerprinting cost
// contract with the same in-process protocol harness as the tracing bench:
// a GET-heavy 9:1 workload driven against four cache configurations.
//
//   - disabled:        fingerprinting never enabled — the contractual one
//     atomic nil load per op. This is the reference point.
//   - disabled_repeat: the identical configuration measured again. Its delta
//     against "disabled" is pure host noise and defines the measurement
//     floor every other delta must be read against.
//   - off_after_enable: EnableFingerprint then DisableFingerprint before
//     measuring — proves Disable actually restores the cheap path rather
//     than leaving recorders bound.
//   - enabled:         sampling live (sketch, mix, size histogram per op).
//
// The contract holds when |delta(off_after_enable)| and |delta(disabled_repeat)|
// are both within noise (≤ 2%); the enabled point is informational.
type FingerprintOverheadResult struct {
	Branch     string `json:"branch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
	Threads    int    `json:"threads"`
	OpsPerConn int    `json:"ops_per_conn"`
	Trials     int    `json:"trials"` // median-of-N per point
	// Floor is |delta(disabled_repeat)|: the host's measurement noise for
	// this run, in percent. Deltas under it are not signal.
	FloorPct float64                    `json:"measurement_floor_pct"`
	Points   []FingerprintOverheadPoint `json:"points"`
}

// FingerprintOverheadPoint is one configuration's median throughput.
type FingerprintOverheadPoint struct {
	Config    string  `json:"config"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// DeltaPct is (disabled - this) / disabled in percent: positive means
	// this configuration is slower than the never-enabled reference.
	DeltaPct float64 `json:"delta_vs_disabled_pct"`
}

// RunFingerprintOverhead measures the four fingerprinting configurations
// back to back, one fresh cache per configuration, median-of-trials each.
func RunFingerprintOverhead(b engine.Branch, threads, trials int, o Options) FingerprintOverheadResult {
	o = o.withDefaults()
	if trials < 1 {
		trials = 1
	}
	res := FingerprintOverheadResult{
		Branch: b.String(), Threads: threads, OpsPerConn: o.OpsPerThread, Trials: trials,
		GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}

	scripts := make([][]byte, threads)
	for t := range scripts {
		scripts[t] = traceOverheadScript(o.OpsPerThread, o.KeySpace, o.ValueSize, uint64(t)+1)
	}

	configs := []struct {
		name string
		prep func(*engine.Cache)
	}{
		{"disabled", nil},
		{"disabled_repeat", nil},
		{"off_after_enable", func(c *engine.Cache) {
			c.EnableFingerprint()
			c.DisableFingerprint()
		}},
		{"enabled", func(c *engine.Cache) { c.EnableFingerprint() }},
	}

	// One live cache per configuration, and trials interleaved across the
	// configurations round-robin: slow whole-process drift (heap growth, GC
	// pacing, CPU thermal state) then hits every configuration equally
	// instead of biasing whichever one happened to run last.
	caches := make([]*engine.Cache, len(configs))
	for i, cfg := range configs {
		c := engine.New(engine.Config{
			Branch:    b,
			MemLimit:  256 << 20,
			HashPower: o.HashPower,
		})
		c.Start()
		val := make([]byte, o.ValueSize)
		w0 := c.NewWorker()
		for i := 0; i < o.KeySpace; i++ {
			w0.Set(benchKey(nil, i), 0, 0, val)
		}
		if cfg.prep != nil {
			cfg.prep(c)
		}
		caches[i] = c
	}

	runOnce := func(c *engine.Cache) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				pc := protocol.NewConn(c.NewWorker(),
					scriptConn{Reader: bytes.NewReader(scripts[t]), Writer: io.Discard})
				pc.Serve()
			}()
		}
		wg.Wait()
		return float64(threads*o.OpsPerThread) / time.Since(start).Seconds()
	}

	rates := make([][]float64, len(configs))
	// Trial -1 is an untimed warm-up round (same rationale as the tracing
	// bench: nobody's measured trials should eat process cold-start).
	for trial := -1; trial < trials; trial++ {
		for i := range configs {
			r := runOnce(caches[i])
			if trial >= 0 {
				rates[i] = append(rates[i], r)
			}
		}
	}
	for i, cfg := range configs {
		caches[i].Stop()
		sort.Float64s(rates[i])
		med := rates[i][len(rates[i])/2]
		res.Points = append(res.Points, FingerprintOverheadPoint{
			Config:    cfg.name,
			Seconds:   float64(threads*o.OpsPerThread) / med,
			OpsPerSec: med,
		})
	}

	base := res.Points[0].OpsPerSec
	for i := range res.Points {
		if base > 0 {
			res.Points[i].DeltaPct = (base - res.Points[i].OpsPerSec) / base * 100
		}
	}
	if f := res.Points[1].DeltaPct; f < 0 {
		res.FloorPct = -f
	} else {
		res.FloorPct = f
	}
	return res
}
