package txtrace

import (
	"fmt"
	"sort"
	"strings"
)

// The /debug/trace export is OTLP-shaped: resourceSpans → scopeSpans → spans
// with attribute lists and span events, the structure OTLP/JSON collectors
// expect — plus repository-specific top-level sections (slowlog, conflict
// graph, time series, anomalies, dumps) that mctrace analyze consumes. No
// OTLP dependency is taken (or available); the shapes are hand-rolled.

// OTLPKeyValue is one OTLP attribute.
type OTLPKeyValue struct {
	Key   string    `json:"key"`
	Value OTLPValue `json:"value"`
}

// OTLPValue is the subset of OTLP's AnyValue this exporter emits.
type OTLPValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    int64  `json:"intValue,omitempty"`
	BoolValue   bool   `json:"boolValue,omitempty"`
}

// OTLPEvent is one span event.
type OTLPEvent struct {
	TimeUnixNano int64          `json:"timeUnixNano"`
	Name         string         `json:"name"`
	Attributes   []OTLPKeyValue `json:"attributes,omitempty"`
}

// OTLPSpan is one request span in OTLP shape.
type OTLPSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	Name              string         `json:"name"`
	StartTimeUnixNano int64          `json:"startTimeUnixNano"`
	EndTimeUnixNano   int64          `json:"endTimeUnixNano"`
	Attributes        []OTLPKeyValue `json:"attributes,omitempty"`
	Events            []OTLPEvent    `json:"events,omitempty"`
}

// OTLPScopeSpans groups spans under an instrumentation scope.
type OTLPScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []OTLPSpan `json:"spans"`
}

// OTLPResourceSpans is the top-level OTLP grouping.
type OTLPResourceSpans struct {
	Resource struct {
		Attributes []OTLPKeyValue `json:"attributes,omitempty"`
	} `json:"resource"`
	ScopeSpans []OTLPScopeSpans `json:"scopeSpans"`
}

// Export is the full /debug/trace document.
type Export struct {
	Mode           string              `json:"mode"`
	Seed           uint64              `json:"seed"`
	Requests       uint64              `json:"requests"`
	Kept           uint64              `json:"kept"`
	SlowlogLen     int                 `json:"slowlog_len"`
	SlowlogDropped uint64              `json:"slowlog_dropped"`
	RecentDropped  uint64              `json:"recent_dropped"`
	EstP99Nanos    int64               `json:"est_p99_ns"`
	ResourceSpans  []OTLPResourceSpans `json:"resourceSpans"`
	Slowlog        []Span              `json:"slowlog"`
	ConflictGraph  []GraphEdge         `json:"conflict_graph"`
	TimeSeries     []Sample            `json:"timeseries"`
	Anomalies      []Anomaly           `json:"anomalies"`
	Dumps          []Dump              `json:"dumps"`
}

func strAttr(k, v string) OTLPKeyValue {
	return OTLPKeyValue{Key: k, Value: OTLPValue{StringValue: v}}
}
func intAttr(k string, v int64) OTLPKeyValue {
	return OTLPKeyValue{Key: k, Value: OTLPValue{IntValue: v}}
}

// otlpSpan renders one Span.
func otlpSpan(sp Span) OTLPSpan {
	o := OTLPSpan{
		TraceID:           fmt.Sprintf("%016x%016x", sp.Conn, sp.Seq),
		SpanID:            fmt.Sprintf("%016x", sp.ID),
		Name:              sp.Cmd,
		StartTimeUnixNano: sp.Start,
		EndTimeUnixNano:   sp.Start + sp.DurNanos,
		Attributes: []OTLPKeyValue{
			strAttr("keep", sp.Keep),
			intAttr("conn", int64(sp.Conn)),
			intAttr("aborts", int64(sp.Aborts)),
			intAttr("max_retry", int64(sp.MaxRetry)),
			{Key: "serialized", Value: OTLPValue{BoolValue: sp.Serialized}},
			intAttr("max_reads", int64(sp.MaxReads)),
			intAttr("max_writes", int64(sp.MaxWrites)),
		},
	}
	if sp.Truncated > 0 {
		o.Attributes = append(o.Attributes, intAttr("truncated_events", int64(sp.Truncated)))
	}
	for _, ev := range sp.Events {
		oe := OTLPEvent{TimeUnixNano: sp.Start + ev.OffNanos, Name: ev.Kind}
		oe.Attributes = append(oe.Attributes, intAttr("shard", int64(ev.Shard)), intAttr("retry", int64(ev.Retry)))
		if ev.Site != "" {
			oe.Attributes = append(oe.Attributes, strAttr("site", ev.Site))
		}
		if ev.Cause != "" {
			oe.Attributes = append(oe.Attributes, strAttr("cause", ev.Cause))
		}
		if ev.Owner != "" {
			oe.Attributes = append(oe.Attributes, strAttr("owner", ev.Owner))
		}
		if ev.Label != "" {
			oe.Attributes = append(oe.Attributes, strAttr("label", ev.Label))
		}
		if ev.Orec >= 0 {
			oe.Attributes = append(oe.Attributes, intAttr("orec", int64(ev.Orec)))
		}
		o.Events = append(o.Events, oe)
	}
	return o
}

// Export builds the full /debug/trace document from the tracer's state.
func (t *Tracer) Export() Export {
	ex := Export{
		Mode:           t.Mode().String(),
		Seed:           t.Seed(),
		Requests:       t.Requests(),
		Kept:           t.Kept(),
		SlowlogLen:     t.SlowlogLen(),
		SlowlogDropped: t.SlowlogDropped(),
		RecentDropped:  t.recent.Dropped(),
		EstP99Nanos:    t.estP99.Load(),
		Slowlog:        t.Slowlog(),
		ConflictGraph:  t.Graph(),
		TimeSeries:     t.ts.Snapshot(),
		Anomalies:      t.Anomalies(),
		Dumps:          t.Dumps(),
	}
	rs := OTLPResourceSpans{}
	rs.Resource.Attributes = []OTLPKeyValue{strAttr("service.name", "memcached-tm")}
	ss := OTLPScopeSpans{}
	ss.Scope.Name = "internal/txtrace"
	for _, sp := range t.Recent() {
		ss.Spans = append(ss.Spans, otlpSpan(sp))
	}
	rs.ScopeSpans = []OTLPScopeSpans{ss}
	ex.ResourceSpans = []OTLPResourceSpans{rs}
	return ex
}

// ---------------------------------------------------------------------------
// Analysis (mctrace analyze and the automated tests)

// Attempt is one reconstructed transaction attempt inside a retry chain.
type Attempt struct {
	Site    string `json:"site"`
	Outcome string `json:"outcome"` // abort | abort_serial | commit | ...
	Cause   string `json:"cause,omitempty"`
	Owner   string `json:"owner,omitempty"`
	Label   string `json:"label,omitempty"`
	Retry   uint32 `json:"retry"`
}

// Chain is one reconstructed retry chain: the consecutive attempts of one
// source-level transaction inside one request span, ending in its final
// outcome.
type Chain struct {
	SpanID   uint64    `json:"span_id"`
	Conn     uint64    `json:"conn"`
	Cmd      string    `json:"cmd"`
	Site     string    `json:"site"`
	Attempts []Attempt `json:"attempts"`
}

// terminalKind reports whether the event kind ends an attempt.
func terminalKind(k string) bool {
	switch k {
	case "commit", "abort", "abort_serial", "ro_fast_commit", "ro_upgrade",
		"inflight_switch", "htm_fallback", "retry_wait":
		return true
	}
	return false
}

// Chains reconstructs the retry chains of the given spans: events are walked
// in order, each begin opens (or extends) the chain of its site, each
// terminal event closes an attempt, and a commit (or the end of the span)
// closes the chain.
func Chains(spans []Span) []Chain {
	var out []Chain
	for _, sp := range spans {
		var cur *Chain
		flush := func() {
			if cur != nil && len(cur.Attempts) > 0 {
				out = append(out, *cur)
			}
			cur = nil
		}
		for _, ev := range sp.Events {
			switch {
			case ev.Kind == "begin" || ev.Kind == "start_serial":
				if cur == nil || cur.Site != ev.Site {
					flush()
					cur = &Chain{SpanID: sp.ID, Conn: sp.Conn, Cmd: sp.Cmd, Site: ev.Site}
				}
			case terminalKind(ev.Kind):
				if cur == nil {
					cur = &Chain{SpanID: sp.ID, Conn: sp.Conn, Cmd: sp.Cmd, Site: ev.Site}
				}
				cur.Attempts = append(cur.Attempts, Attempt{
					Site: ev.Site, Outcome: ev.Kind, Cause: ev.Cause,
					Owner: ev.Owner, Label: ev.Label, Retry: ev.Retry,
				})
				if ev.Kind == "commit" || ev.Kind == "ro_fast_commit" {
					flush()
				}
			}
		}
		flush()
	}
	return out
}

// GraphFromSpans recomputes the who-aborted-whom conflict graph from raw
// spans (the offline analogue of Tracer.Graph, used by mctrace analyze on a
// saved export whose live graph section may be absent or stale).
func GraphFromSpans(spans []Span) []GraphEdge {
	m := make(map[GraphKey]uint64)
	for _, sp := range spans {
		for _, ev := range sp.Events {
			if ev.Kind != "abort" && ev.Kind != "abort_serial" {
				continue
			}
			owner := ev.Owner
			if owner == "" {
				owner = "(unknown)"
			}
			victim := ev.Site
			if victim == "" {
				victim = "(unlabeled)"
			}
			m[GraphKey{Owner: owner, Victim: victim, Label: ev.Label}]++
		}
	}
	out := make([]GraphEdge, 0, len(m))
	for k, n := range m {
		out = append(out, GraphEdge{GraphKey: k, Count: n})
	}
	sortEdges(out)
	return out
}

// HotLabel returns the label carrying the most conflict-graph weight, "" if
// the graph is empty. Unlabeled edges are ignored unless nothing is labeled.
func HotLabel(edges []GraphEdge) string {
	byLabel := make(map[string]uint64)
	for _, e := range edges {
		byLabel[e.Label] += e.Count
	}
	best, bestN := "", uint64(0)
	for l, n := range byLabel {
		if l == "" || l == "(unlabeled)" || l == "(none)" {
			continue
		}
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best
}

// FormatAnalysis renders the human-readable mctrace analyze report: the
// summary header, reconstructed retry chains (longest first, capped), and
// the who-aborted-whom conflict graph.
func FormatAnalysis(ex *Export, maxChains int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: mode=%s seed=%#x requests=%d kept=%d slowlog=%d (dropped %d) est_p99=%dns\n",
		ex.Mode, ex.Seed, ex.Requests, ex.Kept, ex.SlowlogLen, ex.SlowlogDropped, ex.EstP99Nanos)
	if len(ex.Anomalies) > 0 {
		b.WriteString("anomalies:\n")
		for _, a := range ex.Anomalies {
			fmt.Fprintf(&b, "  %-22s %s\n", a.Kind, a.Detail)
		}
	}

	spans := ex.Slowlog
	if len(spans) == 0 {
		// Fall back to the recent-span section of the OTLP payload via the
		// dumps (raw spans are only exported in slowlog and dumps).
		for _, d := range ex.Dumps {
			spans = append(spans, d.Spans...)
		}
	}
	chains := Chains(spans)
	sort.Slice(chains, func(i, j int) bool {
		if len(chains[i].Attempts) != len(chains[j].Attempts) {
			return len(chains[i].Attempts) > len(chains[j].Attempts)
		}
		return chains[i].SpanID < chains[j].SpanID
	})
	if maxChains <= 0 {
		maxChains = 10
	}
	if len(chains) > 0 {
		fmt.Fprintf(&b, "retry chains (%d total, longest %d shown):\n", len(chains), min(maxChains, len(chains)))
		for i, c := range chains {
			if i >= maxChains {
				break
			}
			fmt.Fprintf(&b, "  span %d conn %d %s @ %s: %d attempt(s)\n", c.SpanID, c.Conn, c.Cmd, c.Site, len(c.Attempts))
			for _, a := range c.Attempts {
				line := "    " + a.Outcome
				if a.Cause != "" {
					line += ": " + a.Cause
				}
				if a.Label != "" {
					line += " [" + a.Label + "]"
				}
				if a.Owner != "" {
					line += " <- " + a.Owner
				}
				b.WriteString(line + "\n")
			}
		}
	}

	graph := ex.ConflictGraph
	if len(graph) == 0 {
		graph = GraphFromSpans(spans)
	}
	if len(graph) > 0 {
		b.WriteString("who-aborted-whom (owner -> victim [label] count):\n")
		for _, e := range graph {
			fmt.Fprintf(&b, "  %-24s -> %-24s [%s] %d\n", e.Owner, e.Victim, e.Label, e.Count)
		}
		if hot := HotLabel(graph); hot != "" {
			fmt.Fprintf(&b, "hottest label: %s\n", hot)
		}
	} else {
		b.WriteString("no conflicts recorded\n")
	}
	return b.String()
}

// sortSlice adapts sort.Slice to a typed less function.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}
