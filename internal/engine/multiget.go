package engine

import (
	"repro/internal/access"
	"repro/internal/assoc"
	"repro/internal/fingerprint"
	"repro/internal/item"
)

// GetResult is one key's outcome in a batched multi-get.
type GetResult struct {
	Value []byte
	Flags uint32
	CAS   uint64
	Found bool
}

// MultiGetBatch bounds how many keys share one read-only batch transaction.
// Larger batches amortize begin/validate/commit further but lengthen the
// window a concurrent writer can invalidate; 16 keeps the read set around the
// size of one text-protocol pipeline line.
const MultiGetBatch = 16

// GetMulti looks up keys and returns a result per key, in order.
//
// On the IT branches (the item critical section is a transaction) keys are
// processed in groups of at most MultiGetBatch, each group as ONE read-only
// transaction: per-key GETs pay one serial-lock round trip, one begin, one
// validate and one commit each, while a batch pays them once for the whole
// group and — on the branches whose get path is otherwise write-free —
// commits on the read-only fast path with zero orec acquisitions. The group
// also gives the memcached multi-get its snapshot isolation: a concurrent SET
// either fully precedes or fully follows the group's validation point.
//
// Lock and IP branches have no cross-key section to share (item stripes are
// per-key), so they fall back to the per-key path.
func (w *shardWorker) GetMulti(keys [][]byte) []GetResult {
	hvs := make([]uint64, len(keys))
	for i, k := range keys {
		hvs[i] = assoc.Hash(k)
	}
	return w.getMulti(keys, hvs)
}

// getMulti is GetMulti with the key hashes already computed: the sharded
// router hashes every key once to group it by shard and hands the hashes
// down with the group.
func (w *shardWorker) getMulti(keys [][]byte, hvs []uint64) []GetResult {
	out := make([]GetResult, len(keys))
	if !w.c.cfg.itemTx {
		for i, k := range keys {
			out[i].Value, out[i].Flags, out[i].CAS, out[i].Found = w.get(hvs[i], k, false, 0)
		}
		return out
	}
	for start := 0; start < len(keys); start += MultiGetBatch {
		end := min(start+MultiGetBatch, len(keys))
		w.getBatch(keys[start:end], hvs[start:end], out[start:end])
	}
	return out
}

// getBatch runs one bounded group of lookups as a single read-only item
// transaction and handles the deferred write work afterwards.
func (w *shardWorker) getBatch(keys [][]byte, hvs []uint64, out []GetResult) {
	now := w.volatileLoad(w.c.CurrentTime)
	flushAt := w.volatileLoad(w.c.flushBefore)

	hits := make([]*item.Item, len(keys))
	needTouch := make([]bool, len(keys))
	var stale []*item.Item

	body := func(ctx access.Ctx) {
		// Reset all outputs: a transactional context may retry this closure.
		for i := range out {
			out[i] = GetResult{}
			hits[i] = nil
			needTouch[i] = false
		}
		stale = stale[:0]
		for i, k := range keys {
			it := w.c.tab.Find(ctx, hvs[i], k)
			if it == nil {
				continue
			}
			if w.expired(ctx, it, now, flushAt) {
				// The per-key path unlinks in place; here the unlink is
				// deferred past the batch commit so the batch itself stays
				// read-only. An expired item is a miss either way.
				stale = append(stale, it)
				continue
			}
			// No RefIncr: inside one transaction the refcount round trip is
			// pure overhead (the §5 TxRefOpt observation) and it would
			// upgrade the batch off the read-only fast path. Conflict
			// detection protects the reads; the deferred touch/unlink
			// sections below re-check Linked before dereferencing state.
			n := int(ctx.Word(it.NBytes))
			buf := make([]byte, n)
			ctx.MemcpyOut(buf, it.Data, 0, n)
			out[i] = GetResult{Value: buf, Flags: it.Flags, CAS: ctx.Word(it.CasID), Found: true}
			needTouch[i] = now-ctx.Word(it.Time) >= touchInterval
			hits[i] = it
		}
	}

	// Same unsafe profile as the per-key item_get section — Find reads the
	// volatile expansion flag first, values are copied out with memcpy — plus
	// the read-only hint. Pre-Lib stages will therefore start serial or
	// switch in flight exactly as before; on Lib and later the whole batch
	// commits on the read-only fast path.
	w.section(domains{cache: true}, profile{volatiles: true, volatileFirst: true, libc: true, ro: true, site: "item_get_multi"}, body)

	for _, it := range stale {
		reclaimed := false
		w.section(domains{cache: true}, profile{volatiles: true, libc: true, site: "do_item_unlink"}, func(cctx access.Ctx) {
			reclaimed = it.Linked(cctx)
			if reclaimed {
				w.unlinkLocked(cctx, it)
			}
		})
		if reclaimed {
			w.gstat(func(g access.Ctx) { g.AddWord(w.c.gstats.Expired, 1) })
		}
	}
	for i, it := range hits {
		if it == nil || !needTouch[i] {
			continue
		}
		it := it
		w.section(domains{cache: true}, profile{site: "item_update"}, func(ctx access.Ctx) {
			if it.Linked(ctx) {
				w.c.lru.Touch(ctx, it, now)
			}
		})
	}

	w.tstat(func(ctx access.Ctx) {
		ctx.AddWord(w.stats.GetCmds, uint64(len(keys)))
		var h uint64
		for i := range out {
			if out[i].Found {
				h++
			}
		}
		ctx.AddWord(w.stats.GetHits, h)
		ctx.AddWord(w.stats.GetMisses, uint64(len(keys))-h)
	})
	// One disabled-path atomic load for the whole batch, then per-key
	// samples: a multi-get is len(keys) reads in the workload mix.
	if w.c.fp.Load() != nil {
		for i := range keys {
			size := -1
			if out[i].Found {
				size = len(out[i].Value)
			}
			w.fpRecord(fingerprint.OpRead, hvs[i], keys[i], size, out[i].Found)
		}
	}
}
