package sem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPostThenWait(t *testing.T) {
	s := New(0)
	s.Post()
	s.Wait() // must not block
	if got := s.Value(); got != 0 {
		t.Errorf("Value = %d, want 0", got)
	}
}

func TestInitialCount(t *testing.T) {
	s := New(3)
	for i := 0; i < 3; i++ {
		if !s.TryWait() {
			t.Fatalf("TryWait %d failed", i)
		}
	}
	if s.TryWait() {
		t.Error("TryWait succeeded on empty semaphore")
	}
}

func TestPostsAccumulate(t *testing.T) {
	// The property that makes the Fig. 2 transformation correct: posts issued
	// before the waiter arrives are not lost (unlike cond_signal).
	s := New(0)
	for i := 0; i < 5; i++ {
		s.Post()
	}
	for i := 0; i < 5; i++ {
		if !s.TryWait() {
			t.Fatalf("post %d was lost", i)
		}
	}
}

func TestWaitBlocksUntilPost(t *testing.T) {
	s := New(0)
	var woke atomic.Bool
	done := make(chan struct{})
	go func() {
		s.Wait()
		woke.Store(true)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if woke.Load() {
		t.Fatal("Wait returned before Post")
	}
	s.Post()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait did not wake after Post")
	}
}

func TestManyWaitersManyPosters(t *testing.T) {
	s := New(0)
	const n = 50
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Wait()
			served.Add(1)
		}()
	}
	for i := 0; i < n; i++ {
		go s.Post()
	}
	wg.Wait()
	if served.Load() != n {
		t.Errorf("served = %d, want %d", served.Load(), n)
	}
	if s.TryWait() {
		t.Error("extra count left over")
	}
}

func TestNegativeInitialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative initial count")
		}
	}()
	New(-1)
}
