package assoc

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/item"
	"repro/internal/stm"
)

var dc = access.DirectCtx{}

func mk(key string) *item.Item {
	k := []byte(key)
	return item.New(k, Hash(k), 0, 0, 1, 0)
}

func TestInsertFindDelete(t *testing.T) {
	tab := New(4)
	it := mk("hello")
	tab.Insert(dc, it)
	if got := tab.Find(dc, it.Hash, []byte("hello")); got != it {
		t.Fatal("Find missed after Insert")
	}
	if got := tab.Find(dc, Hash([]byte("other")), []byte("other")); got != nil {
		t.Fatal("Find hit absent key")
	}
	if tab.Items(dc) != 1 {
		t.Errorf("Items = %d", tab.Items(dc))
	}
	del := tab.Delete(dc, it.Hash, []byte("hello"))
	if del != it {
		t.Fatal("Delete missed")
	}
	if tab.Find(dc, it.Hash, []byte("hello")) != nil {
		t.Fatal("Find hit after Delete")
	}
	if tab.Items(dc) != 0 {
		t.Errorf("Items = %d", tab.Items(dc))
	}
}

func TestChainCollisions(t *testing.T) {
	tab := New(1) // 2 buckets: guaranteed collisions
	items := make([]*item.Item, 20)
	for i := range items {
		items[i] = mk(fmt.Sprintf("key-%d", i))
		tab.Insert(dc, items[i])
	}
	for i, it := range items {
		if got := tab.Find(dc, it.Hash, []byte(fmt.Sprintf("key-%d", i))); got != it {
			t.Fatalf("key-%d lost in chain", i)
		}
	}
	// Delete from middle of chains.
	for i := 0; i < 20; i += 2 {
		if tab.Delete(dc, items[i].Hash, []byte(fmt.Sprintf("key-%d", i))) == nil {
			t.Fatalf("delete key-%d failed", i)
		}
	}
	for i := 0; i < 20; i++ {
		got := tab.Find(dc, items[i].Hash, []byte(fmt.Sprintf("key-%d", i)))
		if i%2 == 0 && got != nil {
			t.Errorf("deleted key-%d still found", i)
		}
		if i%2 == 1 && got != items[i] {
			t.Errorf("surviving key-%d lost", i)
		}
	}
}

func TestRemoveItemByIdentity(t *testing.T) {
	tab := New(2)
	a, b := mk("aa"), mk("bb")
	tab.Insert(dc, a)
	tab.Insert(dc, b)
	if !tab.RemoveItem(dc, a) {
		t.Fatal("RemoveItem missed")
	}
	if tab.RemoveItem(dc, a) {
		t.Fatal("RemoveItem found twice")
	}
	if tab.Find(dc, b.Hash, []byte("bb")) != b {
		t.Fatal("unrelated item lost")
	}
}

func TestExpansionPreservesItems(t *testing.T) {
	tab := New(3) // 8 buckets
	var items []*item.Item
	for i := 0; i < 50; i++ {
		it := mk(fmt.Sprintf("k-%d", i))
		tab.Insert(dc, it)
		items = append(items, it)
	}
	if !tab.NeedExpand(dc) {
		t.Fatal("NeedExpand = false at 50/8")
	}
	tab.StartExpand(dc)
	if !tab.IsExpanding(dc) {
		t.Fatal("not expanding after StartExpand")
	}
	if tab.Size(dc) != 16 {
		t.Errorf("primary size = %d, want 16", tab.Size(dc))
	}
	// Everything must be reachable mid-expansion, stepping one bucket at a
	// time and checking after each step.
	for step := 0; tab.IsExpanding(dc); step++ {
		tab.ExpandStep(dc, 1)
		for i, it := range items {
			if got := tab.Find(dc, it.Hash, []byte(fmt.Sprintf("k-%d", i))); got != it {
				t.Fatalf("k-%d lost at step %d", i, step)
			}
		}
		if step > 100 {
			t.Fatal("expansion never finished")
		}
	}
	if tab.Items(dc) != 50 {
		t.Errorf("Items = %d", tab.Items(dc))
	}
	// Insert/delete still work after expansion.
	extra := mk("extra")
	tab.Insert(dc, extra)
	if tab.Find(dc, extra.Hash, []byte("extra")) != extra {
		t.Error("post-expansion insert lost")
	}
}

func TestExpandStepLockedSavesForLater(t *testing.T) {
	tab := New(1) // 2 buckets, everything collides
	var items []*item.Item
	for i := 0; i < 8; i++ {
		it := mk(fmt.Sprintf("k-%d", i))
		tab.Insert(dc, it)
		items = append(items, it)
	}
	tab.StartExpand(dc)

	// First pass: refuse every lock — nothing may move, bucket must not
	// advance, and every item stays findable.
	still := tab.ExpandStepLocked(dc, 1, func(hv uint64) (func(), bool) { return nil, false })
	if !still {
		t.Fatal("expansion finished despite locks denied")
	}
	for i, it := range items {
		if got := tab.Find(dc, it.Hash, []byte(fmt.Sprintf("k-%d", i))); got != it {
			t.Fatalf("k-%d lost after denied pass", i)
		}
	}

	// Second pass: grant all locks until done.
	locks := 0
	for tab.IsExpanding(dc) {
		tab.ExpandStepLocked(dc, 1, func(hv uint64) (func(), bool) {
			locks++
			return func() {}, true
		})
	}
	if locks == 0 {
		t.Error("trylock callback never invoked")
	}
	for i, it := range items {
		if got := tab.Find(dc, it.Hash, []byte(fmt.Sprintf("k-%d", i))); got != it {
			t.Fatalf("k-%d lost after expansion", i)
		}
	}
}

func TestExpansionUnderTransactions(t *testing.T) {
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	tab := New(2)
	run := func(fn func(access.Ctx)) {
		err := th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
			fn(access.TxCtx{T: tx, Profile: access.Profile{TxVolatiles: true, SafeLibc: true}})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		it := mk(fmt.Sprintf("t-%d", i))
		run(func(c access.Ctx) { tab.Insert(c, it) })
	}
	run(func(c access.Ctx) {
		if tab.NeedExpand(c) {
			tab.StartExpand(c)
		}
	})
	for {
		var expanding bool
		run(func(c access.Ctx) { expanding = tab.ExpandStep(c, 2) })
		if !expanding {
			break
		}
	}
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("t-%d", i))
		var found bool
		run(func(c access.Ctx) { found = tab.Find(c, Hash(key), key) != nil })
		if !found {
			t.Fatalf("t-%d lost", i)
		}
	}
}

func TestHashQuality(t *testing.T) {
	// Property: equal keys hash equal; a one-byte flip changes the hash
	// (overwhelmingly likely for FNV on short keys).
	f := func(key []byte) bool {
		if len(key) == 0 {
			return true
		}
		h := Hash(key)
		if h != Hash(append([]byte(nil), key...)) {
			return false
		}
		mod := append([]byte(nil), key...)
		mod[0] ^= 0xFF
		return Hash(mod) != h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
