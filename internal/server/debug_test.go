package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestDebugEndpoint drives the debug handler against a live cache: expvar
// JSON, Prometheus text, the pprof index, and the tracing toggle.
func TestDebugEndpoint(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	ts := httptest.NewServer(NewDebugHandler(c))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Seed some traffic with tracing on.
	if _, err := http.Post(ts.URL+"/debug/tm?enable=1", "", nil); err != nil {
		t.Fatal(err)
	}
	w := c.NewWorker()
	w.Set([]byte("k"), 0, 0, []byte("v"))
	w.Get([]byte("k"))

	code, body := get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars struct {
		Branch string `json:"branch"`
		TM     struct {
			Enabled bool              `json:"enabled"`
			Kinds   map[string]uint64 `json:"kinds"`
		} `json:"tm"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars.Branch != "it-oncommit" || !vars.TM.Enabled || vars.TM.Kinds["commit"] == 0 {
		t.Fatalf("/debug/vars content: %+v\n%s", vars, body)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"mc_curr_items 1",
		"tm_tracing_enabled 1",
		`tm_events_total{kind="commit"}`,
		"# TYPE tm_phase_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}

	code, body = get("/debug/tm")
	if code != 200 || !strings.Contains(body, "enabled=true") ||
		!strings.Contains(body, "tx observability report") {
		t.Fatalf("/debug/tm = %d:\n%s", code, body)
	}

	// Toggle off, then reset: recording stops, aggregates clear.
	if _, err := http.Post(ts.URL+"/debug/tm?enable=0&reset=1", "", nil); err != nil {
		t.Fatal(err)
	}
	_, body = get("/debug/tm")
	if !strings.Contains(body, "enabled=false") {
		t.Fatalf("tracing still enabled:\n%s", body)
	}
	_, body = get("/debug/vars")
	if strings.Contains(body, `"commit"`) {
		t.Fatalf("kind counters survived reset:\n%s", body)
	}
}
