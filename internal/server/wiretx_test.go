package server

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestWireTxConnLifetime pins the server-side transaction lifetime contract:
// a wire transaction is per-connection state that dies with the connection —
// an abrupt disconnect mid-transaction leaves nothing behind, and a server
// Close while a transaction is open drains cleanly.
func TestWireTxConnLifetime(t *testing.T) {
	cache := engine.New(engine.Config{Branch: engine.ITMax, HashPower: 10, Shards: 2, MemLimit: 16 << 20})
	cache.Start()
	defer cache.Stop()
	s, err := Listen(cache, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	send := func(conn net.Conn, r *bufio.Reader, cmd, want string) {
		t.Helper()
		if _, err := conn.Write([]byte(cmd)); err != nil {
			t.Fatalf("write %q: %v", cmd, err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read reply to %q: %v", cmd, err)
		}
		if got := strings.TrimRight(line, "\r\n"); got != want {
			t.Fatalf("reply to %q = %q, want %q", cmd, got, want)
		}
	}

	// Connection 1: open a transaction, queue a write, vanish.
	c1, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r1 := bufio.NewReader(c1)
	send(c1, r1, "txbegin\r\n", "STARTED")
	send(c1, r1, "set orphan 0 0 1\r\no\r\n", "QUEUED")
	c1.Close()

	// Connection 2: the orphaned transaction must not have applied, and a
	// fresh transaction on a fresh connection works.
	c2, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r2 := bufio.NewReader(c2)
	send(c2, r2, "get orphan\r\n", "END")
	send(c2, r2, "txbegin\r\n", "STARTED")
	send(c2, r2, "set k 0 0 1\r\nv\r\n", "QUEUED")
	send(c2, r2, "txcommit\r\n", "TXRESULT 1")
	if line, _ := r2.ReadString('\n'); strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("op result = %q", line)
	}
	if line, _ := r2.ReadString('\n'); strings.TrimRight(line, "\r\n") != "END" {
		t.Fatalf("terminator = %q", line)
	}

	// Connection 3 holds a transaction open across server Close: drain must
	// not hang on it (the transaction holds no engine resource).
	c3, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r3 := bufio.NewReader(c3)
	send(c3, r3, "txbegin\r\n", "STARTED")
	send(c3, r3, "delete k\r\n", "QUEUED")

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an open transaction")
	}
	c2.Close()
	c3.Close()

	// The undrained queued delete never applied.
	w := cache.NewWorker()
	if v, _, _, ok := w.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("k = %q, %v — open transaction applied at shutdown", v, ok)
	}
}
