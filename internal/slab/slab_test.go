package slab

import (
	"testing"

	"repro/internal/access"
	"repro/internal/stm"
)

var dc = access.DirectCtx{}

func TestClassSizesGrow(t *testing.T) {
	a := New(64<<20, 1.25, 8192)
	if a.NumClasses() < 10 {
		t.Fatalf("NumClasses = %d, want a real ladder", a.NumClasses())
	}
	prev := 0
	for i := 0; i < a.NumClasses(); i++ {
		cs := a.ChunkSize(i)
		if cs <= prev {
			t.Errorf("class %d size %d not increasing", i, cs)
		}
		if cs%8 != 0 {
			t.Errorf("class %d size %d not 8-aligned", i, cs)
		}
		prev = cs
	}
}

func TestClassFor(t *testing.T) {
	a := New(64<<20, 1.25, 8192)
	cls, err := a.ClassFor(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.ChunkSize(cls) < 100 {
		t.Errorf("chunk %d too small", a.ChunkSize(cls))
	}
	if cls > 0 && a.ChunkSize(cls-1) >= 100 {
		t.Errorf("not the smallest fitting class")
	}
	if _, err := a.ClassFor(1 << 30); err == nil {
		t.Error("huge object accepted")
	}
}

func TestAllocGrowsByPage(t *testing.T) {
	a := New(4<<20, 1.25, 8192)
	cls, _ := a.ClassFor(1000)
	if !a.Alloc(dc, cls) {
		t.Fatal("first Alloc failed")
	}
	per := PageSize / a.ChunkSize(cls)
	if got := a.FreeChunks(dc, cls); got != uint64(per-1) {
		t.Errorf("free after first alloc = %d, want %d", got, per-1)
	}
	if got := a.PagesOf(dc, cls); got != 1 {
		t.Errorf("pages = %d", got)
	}
	if got := a.Allocated(dc); got != PageSize {
		t.Errorf("allocated = %d", got)
	}
}

func TestAllocExhaustsAtLimit(t *testing.T) {
	a := New(2<<20, 1.25, 8192) // two pages
	cls, _ := a.ClassFor(100000)
	per := PageSize / a.ChunkSize(cls)
	total := 0
	for a.Alloc(dc, cls) {
		total++
		if total > 3*per {
			t.Fatal("allocator never exhausted")
		}
	}
	if total != 2*per {
		t.Errorf("allocated %d chunks, want %d", total, 2*per)
	}
	// Release returns capacity.
	a.Release(dc, cls)
	if !a.Alloc(dc, cls) {
		t.Error("Alloc failed after Release")
	}
}

func TestRebalanceFlag(t *testing.T) {
	a := New(4<<20, 1.25, 8192)
	if !a.TryStartRebalance(dc) {
		t.Fatal("flag initially claimed")
	}
	if a.TryStartRebalance(dc) {
		t.Error("second claim succeeded — trylock semantics broken")
	}
	if !a.RebalanceInFlight(dc) {
		t.Error("in-flight not visible")
	}
	a.EndRebalance(dc)
	if !a.TryStartRebalance(dc) {
		t.Error("claim after release failed")
	}
}

func TestPickAndMovePage(t *testing.T) {
	a := New(8<<20, 2.0, 8192)
	donor, _ := a.ClassFor(1000)
	recipient, _ := a.ClassFor(8000)
	if donor == recipient {
		t.Fatal("test needs distinct classes")
	}
	// Donor: two pages, fully free after releases. Recipient: one page, empty
	// freelist.
	if !a.Alloc(dc, donor) {
		t.Fatal("alloc donor")
	}
	a.Release(dc, donor)
	// Force second page by draining the first.
	for a.FreeChunks(dc, donor) > 0 {
		a.Alloc(dc, donor)
	}
	a.Alloc(dc, donor)
	for a.FreeChunks(dc, donor) > 0 {
		a.Alloc(dc, donor)
	}
	// Now give all chunks back: 2 pages fully free.
	per := PageSize / a.ChunkSize(donor)
	for i := 0; i < 2*per; i++ {
		a.Release(dc, donor)
	}
	// Recipient with zero free chunks.
	if !a.Alloc(dc, recipient) {
		t.Fatal("alloc recipient")
	}
	for a.FreeChunks(dc, recipient) > 0 {
		a.Alloc(dc, recipient)
	}

	d, r, ok := a.PickMove(dc)
	if !ok {
		t.Fatal("PickMove found nothing")
	}
	if d != donor || r != recipient {
		t.Errorf("PickMove = (%d,%d), want (%d,%d)", d, r, donor, recipient)
	}
	beforeR := a.PagesOf(dc, recipient)
	if !a.MovePage(dc, d, r) {
		t.Fatal("MovePage failed")
	}
	if a.PagesOf(dc, recipient) != beforeR+1 {
		t.Error("recipient page count unchanged")
	}
	if got := a.FreeChunks(dc, recipient); got != uint64(PageSize/a.ChunkSize(recipient)) {
		t.Errorf("recipient free = %d", got)
	}
	if a.PagesOf(dc, donor) != 1 {
		t.Errorf("donor pages = %d, want 1", a.PagesOf(dc, donor))
	}
}

func TestMovePageRefusesPartialPages(t *testing.T) {
	a := New(8<<20, 2.0, 8192)
	cls, _ := a.ClassFor(1000)
	a.Alloc(dc, cls) // one chunk in use: page not fully free
	if a.MovePage(dc, cls, cls+1) {
		t.Error("moved a partially-used page")
	}
}

func TestAllocatorUnderTransactions(t *testing.T) {
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	a := New(4<<20, 1.25, 8192)
	cls, _ := a.ClassFor(500)
	err := th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		ctx := access.TxCtx{T: tx, Profile: access.Profile{TxVolatiles: true, SafeLibc: true}}
		if !a.Alloc(ctx, cls) {
			t.Error("Alloc in tx failed")
		}
		a.Release(ctx, cls)
	})
	if err != nil {
		t.Fatal(err)
	}
	per := PageSize / a.ChunkSize(cls)
	if got := a.FreeChunks(dc, cls); got != uint64(per) {
		t.Errorf("free = %d, want %d", got, per)
	}
}

func TestDefaultFactorAndBounds(t *testing.T) {
	a := New(1<<20, 0, 0) // defaults
	if a.NumClasses() == 0 {
		t.Fatal("no classes")
	}
	last := a.ChunkSize(a.NumClasses() - 1)
	if last > PageSize/2 {
		t.Errorf("largest chunk %d exceeds default max", last)
	}
}
