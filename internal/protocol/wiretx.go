package protocol

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/engine"
)

// Wire transactions: the protocol half of the txbegin/txcommit extension, a
// MULTI/EXEC-shaped command group mapped onto one engine transaction.
//
//	txbegin                          → STARTED
//	get k1 k2                        → normal VALUE/END reply, reads recorded
//	set/delete/touch/incr/decr ...   → QUEUED (noreply honored)
//	txcommit                         → TXRESULT <n> + one line per op + END
//	                                   or TX_CONFLICT <key>
//	txabort                          → ABORTED
//
// In-transaction reads execute immediately against committed state — they do
// NOT see the transaction's own queued writes (the client library overlays
// its local write-set for read-your-writes; the wire contract is
// read-committed at queue time, atomic at commit). Every read records the CAS
// it observed (0 = absent); txcommit revalidates the whole read set before
// applying anything, so a commit that returns TXRESULT is a serializable
// execution: the reads were still current at the instant the writes applied.
//
// The transaction lives entirely in connection-local memory until txcommit —
// no engine resource is held while the client is queueing — so an abandoned
// transaction costs nothing and disconnect is the implicit txabort.
//
// Limits, checked at every tx command: at most MaxTxOps reads+ops, at most
// MaxTxBytes of queued keys and values, and TxTTL between txbegin and
// txcommit. Exceeding any of them aborts the transaction (the client must
// restart it) — a limit violation means the client's model of the
// transaction is wrong, and half a transaction must never commit.

const (
	// MaxTxOps bounds the read set plus the queued ops of one transaction.
	MaxTxOps = 64
	// MaxTxBytes bounds the connection-local memory a transaction may queue.
	MaxTxBytes = 512 << 10
	// TxTTL bounds how long a transaction may stay open; the read set only
	// grows staler, so an old transaction would mostly conflict anyway.
	TxTTL = 5 * time.Second
)

// txState is one connection's open transaction.
type txState struct {
	reads    []engine.TxRead
	ops      []engine.TxOp
	bytes    int
	started  time.Time // txbegin time, for the fingerprint queue-phase histogram
	deadline time.Time
}

// txNoteQueuePhase records the txbegin→txcommit queueing span into the
// fingerprint observer — one atomic load and nothing else when sampling is
// off. The queue phase is protocol-side (client think time plus pipelining),
// so the engine cannot time it; validate/apply/serial-wait are timed inside
// CommitTx itself.
func (c *Conn) txNoteQueuePhase(t *txState) {
	if o := c.worker.FingerprintLive(); o != nil && !t.started.IsZero() {
		o.TxnQueue.Record(uint64(time.Since(t.started)))
	}
}

var (
	errTxUnsupported = &ServerError{Msg: "transactions not supported on this branch", Status: StatusUnknownCommand}
	errTxOpen        = &ClientError{Msg: "transaction already started", Status: StatusInvalidArgs}
	errTxNotStarted  = &ClientError{Msg: "no transaction started", Status: StatusInvalidArgs}
	errTxTimeout     = &ClientError{Msg: "transaction timed out", Status: StatusInvalidArgs}
	errTxTooManyOps  = &ClientError{Msg: "transaction operation limit exceeded", Status: StatusValueTooLarge}
	errTxTooLarge    = &ClientError{Msg: "transaction byte limit exceeded", Status: StatusValueTooLarge}
	errTxBadCommand  = &ClientError{Msg: "command not allowed inside a transaction", Status: StatusInvalidArgs}
)

// txCheck validates the open transaction at a tx command boundary: it must
// exist and be within its TTL. A timed-out transaction is dropped here.
func (c *Conn) txCheck() error {
	if c.tx == nil {
		return errTxNotStarted
	}
	if time.Now().After(c.tx.deadline) {
		c.tx = nil
		return errTxTimeout
	}
	return nil
}

// txAdmit charges one record of the given byte cost against the transaction's
// limits, aborting it on overflow.
func (c *Conn) txAdmit(cost int) error {
	t := c.tx
	if len(t.reads)+len(t.ops) >= MaxTxOps {
		c.tx = nil
		return errTxTooManyOps
	}
	if t.bytes+cost > MaxTxBytes {
		c.tx = nil
		return errTxTooLarge
	}
	t.bytes += cost
	return nil
}

func (c *Conn) txRecordRead(key []byte, cas uint64) error {
	if err := c.txAdmit(len(key)); err != nil {
		return err
	}
	c.tx.reads = append(c.tx.reads, engine.TxRead{Key: key, CAS: cas})
	return nil
}

func (c *Conn) txQueue(op engine.TxOp) error {
	if err := c.txAdmit(len(op.Key) + len(op.Value)); err != nil {
		return err
	}
	c.tx.ops = append(c.tx.ops, op)
	return nil
}

// ---------------------------------------------------------------------------
// text protocol

func (c *Conn) cmdTxBegin(args [][]byte) error {
	if !c.worker.TxSupported() {
		return c.replyError(errTxUnsupported)
	}
	if c.tx != nil {
		// A nested txbegin means the client lost track of its own state;
		// dropping the open transaction is safer than silently merging two.
		c.tx = nil
		return c.replyError(errTxOpen)
	}
	now := time.Now()
	c.tx = &txState{started: now, deadline: now.Add(TxTTL)}
	return c.replyMaybe(args, "STARTED\r\n")
}

func (c *Conn) cmdTxAbort(args [][]byte) error {
	if err := c.txCheck(); err != nil {
		return c.replyError(err)
	}
	c.tx = nil
	return c.replyMaybe(args, "ABORTED\r\n")
}

func (c *Conn) cmdTxCommit() error {
	if err := c.txCheck(); err != nil {
		return c.replyError(err)
	}
	t := c.tx
	c.tx = nil
	c.txNoteQueuePhase(t)
	out := c.worker.CommitTx(t.reads, t.ops)
	if !out.Committed {
		return c.reply("TX_CONFLICT " + string(out.ConflictKey) + "\r\n")
	}
	fmt.Fprintf(c.w, "TXRESULT %d\r\n", len(out.Results))
	for i := range out.Results {
		c.w.WriteString(txResultLine(&out.Results[i]))
		c.w.Write(crlf)
	}
	return c.reply("END\r\n")
}

// txResultLine renders one queued op's outcome exactly as the standalone
// command would have replied.
func txResultLine(r *engine.TxOpResult) string {
	switch r.Kind {
	case engine.TxSet:
		return r.Store.String()
	case engine.TxDel:
		if r.Found {
			return "DELETED"
		}
		return "NOT_FOUND"
	case engine.TxTouch:
		if r.Found {
			return "TOUCHED"
		}
		return "NOT_FOUND"
	default: // TxIncr, TxDecr
		switch r.Delta {
		case engine.DeltaOK:
			return strconv.FormatUint(r.NewValue, 10)
		case engine.DeltaNotFound:
			return "NOT_FOUND"
		default:
			return "CLIENT_ERROR cannot increment or decrement non-numeric value"
		}
	}
}

// dispatchTextInTx routes commands while a transaction is open: reads execute
// immediately (and join the read set), the five queueable mutations queue,
// version/quit pass through, everything else is refused without disturbing
// the transaction.
func (c *Conn) dispatchTextInTx(cmd string, args [][]byte) error {
	if err := c.txCheck(); err != nil {
		return c.replyError(err)
	}
	switch cmd {
	case "get", "gets":
		return c.cmdTxGet(args, cmd == "gets")
	case "set":
		return c.cmdTxSet(args)
	case "delete":
		return c.cmdTxDelete(args)
	case "touch":
		return c.cmdTxTouch(args)
	case "incr", "decr":
		return c.cmdTxDelta(cmd, args)
	case "version":
		return c.reply("VERSION " + Version + "\r\n")
	case "quit":
		return ErrQuit
	default:
		return c.replyError(errTxBadCommand)
	}
}

func (c *Conn) cmdTxGet(args [][]byte, withCAS bool) error {
	if len(args) == 0 {
		return c.clientError("get requires a key")
	}
	for _, key := range args {
		if len(key) > MaxKeyLen {
			return c.clientError("key too long")
		}
	}
	results := c.worker.GetMulti(args)
	// Record every key — misses record CAS 0, so the commit validates
	// continued absence exactly as it validates an unchanged value.
	for i, key := range args {
		cas := uint64(0)
		if results[i].Found {
			cas = results[i].CAS
		}
		if err := c.txRecordRead(key, cas); err != nil {
			return c.replyError(err)
		}
	}
	for i, key := range args {
		r := &results[i]
		if !r.Found {
			continue
		}
		if withCAS {
			fmt.Fprintf(c.w, "VALUE %s %d %d %d\r\n", key, r.Flags, len(r.Value), r.CAS)
		} else {
			fmt.Fprintf(c.w, "VALUE %s %d %d\r\n", key, r.Flags, len(r.Value))
		}
		c.w.Write(r.Value)
		c.w.Write(crlf)
	}
	return c.reply("END\r\n")
}

// cmdTxSet parses exactly like the standalone set — including draining the
// data block on a bad command line so the connection stays aligned — but
// queues instead of applying.
func (c *Conn) cmdTxSet(args [][]byte) error {
	if len(args) < 4 {
		return c.reply("ERROR\r\n")
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(string(args[1]), 10, 32)
	exptime, err2 := strconv.ParseUint(string(args[2]), 10, 64)
	nbytes, err3 := strconv.Atoi(string(args[3]))
	noreply := len(args) > 4 && string(args[4]) == "noreply"
	if err1 != nil || err2 != nil || err3 != nil || nbytes < 0 ||
		nbytes > MaxBodyLen || len(key) > MaxKeyLen {
		if nbytes >= 0 {
			c.discard(nbytes + 2)
		}
		if noreply {
			return c.flushIfIdle()
		}
		return c.clientError("bad command line format")
	}
	data := make([]byte, nbytes)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return fmt.Errorf("%w: set data block truncated: %v", ErrProtocol, err)
	}
	term, err := c.readLine()
	if err != nil {
		return fmt.Errorf("%w: set data block unterminated: %v", ErrProtocol, err)
	}
	if len(term) != 0 {
		if noreply {
			return c.flushIfIdle()
		}
		return c.clientError("bad data chunk")
	}
	qerr := c.txQueue(engine.TxOp{
		Kind:    engine.TxSet,
		Key:     key,
		Flags:   uint32(flags),
		Exptime: absoluteExptime(c.worker, exptime),
		Value:   data,
	})
	return c.txQueuedReply(noreply, qerr)
}

func (c *Conn) cmdTxDelete(args [][]byte) error {
	if len(args) < 1 {
		return c.clientError("delete requires a key")
	}
	qerr := c.txQueue(engine.TxOp{Kind: engine.TxDel, Key: args[0]})
	return c.txQueuedReply(hasNoreply(args[1:]), qerr)
}

func (c *Conn) cmdTxTouch(args [][]byte) error {
	if len(args) < 2 {
		return c.clientError("touch requires key and exptime")
	}
	exptime, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return c.clientError("invalid exptime argument")
	}
	qerr := c.txQueue(engine.TxOp{
		Kind:    engine.TxTouch,
		Key:     args[0],
		Exptime: absoluteExptime(c.worker, exptime),
	})
	return c.txQueuedReply(hasNoreply(args[2:]), qerr)
}

func (c *Conn) cmdTxDelta(cmd string, args [][]byte) error {
	if len(args) < 2 {
		return c.clientError("incr/decr require key and value")
	}
	delta, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return c.clientError("invalid numeric delta argument")
	}
	kind := engine.TxIncr
	if cmd == "decr" {
		kind = engine.TxDecr
	}
	qerr := c.txQueue(engine.TxOp{Kind: kind, Key: args[0], Delta: delta})
	return c.txQueuedReply(hasNoreply(args[2:]), qerr)
}

// txQueuedReply finishes a queueing command: a limit violation renders as a
// typed error (even under noreply — the transaction just died and the client
// must find out), success as QUEUED unless suppressed.
func (c *Conn) txQueuedReply(noreply bool, qerr error) error {
	if qerr != nil {
		return c.replyError(qerr)
	}
	if noreply {
		return c.flushIfIdle()
	}
	return c.reply("QUEUED\r\n")
}

func hasNoreply(rest [][]byte) bool {
	return len(rest) > 0 && string(rest[len(rest)-1]) == "noreply"
}

// ---------------------------------------------------------------------------
// binary protocol

func (c *Conn) binTxBegin(req binHeader) error {
	if !c.worker.TxSupported() {
		return c.binReplyError(req, errTxUnsupported)
	}
	if c.tx != nil {
		c.tx = nil
		return c.binReplyError(req, errTxOpen)
	}
	now := time.Now()
	c.tx = &txState{started: now, deadline: now.Add(TxTTL)}
	return c.binReply(req, StatusOK, nil, nil, nil, 0)
}

func (c *Conn) binTxAbort(req binHeader) error {
	if err := c.txCheck(); err != nil {
		return c.binReplyError(req, err)
	}
	c.tx = nil
	return c.binReply(req, StatusOK, nil, nil, nil, 0)
}

// binTxCommit commits; a conflict renders as StatusKeyExists — the binary
// protocol's CAS-mismatch status — with the losing key in the key field.
func (c *Conn) binTxCommit(req binHeader) error {
	if err := c.txCheck(); err != nil {
		return c.binReplyError(req, err)
	}
	t := c.tx
	c.tx = nil
	c.txNoteQueuePhase(t)
	out := c.worker.CommitTx(t.reads, t.ops)
	if !out.Committed {
		return c.binReply(req, StatusKeyExists, nil, out.ConflictKey, []byte("Transaction conflict"), 0)
	}
	return c.binReply(req, StatusOK, nil, nil, appendUintBin(nil, uint64(len(out.Results))), 0)
}

// dispatchBinaryInTx mirrors dispatchTextInTx for binary frames. Quiet gets
// are refused inside a transaction: every read must be individually
// acknowledged, since each one grows the validated read set.
func (c *Conn) dispatchBinaryInTx(req binHeader, extras, key, value []byte) error {
	if err := c.txCheck(); err != nil {
		return c.binReplyError(req, err)
	}
	switch req.opcode {
	case OpGet, OpGetK:
		if len(extras) != 0 {
			return c.binError(req, StatusInvalidArgs, []byte("Get takes no extras"))
		}
		val, flags, cas, ok := c.worker.Get(key)
		rcas := uint64(0)
		if ok {
			rcas = cas
		}
		if err := c.txRecordRead(key, rcas); err != nil {
			return c.binReplyError(req, err)
		}
		if !ok {
			return c.binError(req, StatusKeyNotFound, []byte("Not found"))
		}
		var fx [4]byte
		fx[0], fx[1], fx[2], fx[3] = byte(flags>>24), byte(flags>>16), byte(flags>>8), byte(flags)
		replyKey := []byte(nil)
		if req.opcode == OpGetK {
			replyKey = key
		}
		return c.binReply(req, StatusOK, fx[:], replyKey, val, cas)

	case OpSet:
		if len(extras) < 8 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		flags := uint32(extras[0])<<24 | uint32(extras[1])<<16 | uint32(extras[2])<<8 | uint32(extras[3])
		exp := uint64(extras[4])<<24 | uint64(extras[5])<<16 | uint64(extras[6])<<8 | uint64(extras[7])
		err := c.txQueue(engine.TxOp{
			Kind:    engine.TxSet,
			Key:     key,
			Flags:   flags,
			Exptime: absoluteExptime(c.worker, exp),
			Value:   value,
		})
		return c.binTxQueuedReply(req, err)

	case OpDelete:
		return c.binTxQueuedReply(req, c.txQueue(engine.TxOp{Kind: engine.TxDel, Key: key}))

	case OpTouch:
		if len(extras) < 4 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		exp := uint64(extras[0])<<24 | uint64(extras[1])<<16 | uint64(extras[2])<<8 | uint64(extras[3])
		err := c.txQueue(engine.TxOp{
			Kind:    engine.TxTouch,
			Key:     key,
			Exptime: absoluteExptime(c.worker, exp),
		})
		return c.binTxQueuedReply(req, err)

	case OpIncrement, OpDecrement:
		if len(extras) < 20 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		var delta uint64
		for _, b := range extras[0:8] {
			delta = delta<<8 | uint64(b)
		}
		kind := engine.TxIncr
		if req.opcode == OpDecrement {
			kind = engine.TxDecr
		}
		// The create-if-missing initial value is not honored inside a
		// transaction: the queued delta applies to whatever exists at commit.
		return c.binTxQueuedReply(req, c.txQueue(engine.TxOp{Kind: kind, Key: key, Delta: delta}))

	case OpNoop:
		return c.binReply(req, StatusOK, nil, nil, nil, 0)
	case OpVersion:
		return c.binReply(req, StatusOK, nil, nil, []byte(Version), 0)
	case OpQuit:
		c.binReply(req, StatusOK, nil, nil, nil, 0)
		return ErrQuit
	default:
		return c.binReplyError(req, errTxBadCommand)
	}
}

func (c *Conn) binTxQueuedReply(req binHeader, qerr error) error {
	if qerr != nil {
		return c.binReplyError(req, qerr)
	}
	return c.binReply(req, StatusOK, nil, nil, nil, 0)
}
