package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
)

// ROFastpathResult is the outcome of the read-only fast-path smoke benchmark:
// the same GET-heavy workload (roughly 9:1 GET:SET, the classic memcached
// mix) driven once through per-key Get transactions and once through batched
// GetMulti groups, on the same branch. The claim under test: a batch of
// MultiGetBatch lookups committing as ONE read-only transaction (zero orec
// acquisitions, zero serial-lock round trips, no clock bump, no quiescence
// wait) beats the same lookups paying per-key begin/validate/commit.
type ROFastpathResult struct {
	Branch string `json:"branch"`
	// Host parallelism at measurement time: a 1-CPU box cannot show the
	// batched fast path's scalability win, only its per-op constant-cost win,
	// so the artifact must say which machine shape produced it.
	GOMAXPROCS int     `json:"gomaxprocs"`
	CPUs       int     `json:"cpus"`
	Threads    int     `json:"threads"`
	Keys       uint64  `json:"keys_per_phase"` // key lookups per phase
	Sets       uint64  `json:"sets_per_phase"`
	GetSet     float64 `json:"get_set_ratio"`

	PerKeySeconds  float64 `json:"per_key_seconds"`
	PerKeyKeysPerS float64 `json:"per_key_keys_per_sec"`

	BatchedSeconds  float64 `json:"batched_seconds"`
	BatchedKeysPerS float64 `json:"batched_keys_per_sec"`

	// Speedup is batched throughput over per-key throughput (>1 means the
	// batch wins).
	Speedup float64 `json:"speedup"`

	// Fast-path counters accumulated during the batched phase only: the
	// zero-orec commits the batch achieved and the clean upgrades where a
	// deferred touch/unlink made a "read-only" section write after all.
	ROFastCommits uint64 `json:"ro_fast_commits"`
	ROUpgrades    uint64 `json:"ro_upgrades"`

	// ShardBalance is each domain's commit share over the whole run (this
	// benchmark pins Shards:1, so a healthy run reads [1.0]).
	ShardBalance []float64 `json:"shard_balance"`
}

// RunROFastpath runs the two phases back to back on a fresh cache and reports
// both rates plus the fast-path counter deltas for the batched phase.
// OpsPerThread is interpreted as key-group count per thread (each group is
// engine.MultiGetBatch keys); the same prepopulated keyspace serves both
// phases so hit rates match.
func RunROFastpath(b engine.Branch, threads int, o Options) ROFastpathResult {
	o = o.withDefaults()
	c := engine.New(engine.Config{
		Branch:    b,
		Shards:    1,         // isolate the fast-path effect from sharding
		MemLimit:  256 << 20, // no eviction: both phases see identical residency
		HashPower: o.HashPower,
	})
	c.Start()
	defer c.Stop()

	// Prepopulate so the GET phases run at full hit rate.
	val := make([]byte, o.ValueSize)
	w0 := c.NewWorker()
	kbuf := make([]byte, 0, 32)
	for i := 0; i < o.KeySpace; i++ {
		w0.Set(benchKey(kbuf, i), 0, 0, val)
	}

	groups := o.OpsPerThread / engine.MultiGetBatch
	if groups == 0 {
		groups = 1
	}

	// phase drives every worker through `groups` groups of MultiGetBatch key
	// lookups with one SET per group and a second SET every fourth group:
	// 16 gets to 1.75 sets ≈ 9:1.
	phase := func(batched bool) (time.Duration, uint64, uint64) {
		workers := make([]*engine.Worker, threads)
		for i := range workers {
			workers[i] = c.NewWorker()
		}
		var keys, sets uint64
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rngState(uint64(t) + 1)
				group := make([][]byte, engine.MultiGetBatch)
				var k, s uint64
				for g := 0; g < groups; g++ {
					for i := range group {
						group[i] = benchKey(nil, int(nextRand(&r)%uint64(o.KeySpace)))
					}
					if batched {
						workers[t].GetMulti(group)
					} else {
						for _, gk := range group {
							workers[t].Get(gk)
						}
					}
					k += uint64(len(group))
					workers[t].Set(group[0], 0, 0, val)
					s++
					if g%4 == 0 {
						workers[t].Set(group[len(group)-1], 0, 0, val)
						s++
					}
				}
				mu.Lock()
				keys += k
				sets += s
				mu.Unlock()
			}()
		}
		wg.Wait()
		return time.Since(start), keys, sets
	}

	res := ROFastpathResult{
		Branch:     b.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Threads:    threads,
	}

	perKeyDur, keys, sets := phase(false)
	res.Keys, res.Sets = keys, sets
	res.GetSet = float64(keys) / float64(sets)
	res.PerKeySeconds = perKeyDur.Seconds()
	res.PerKeyKeysPerS = float64(keys) / perKeyDur.Seconds()

	var before, after uint64
	if rt := c.Runtime(); rt != nil {
		before = rt.Stats().ROFastCommits
	}
	batchedDur, keys2, _ := phase(true)
	if rt := c.Runtime(); rt != nil {
		s := rt.Stats()
		after = s.ROFastCommits
		res.ROUpgrades = s.ROUpgrades
	}
	res.ROFastCommits = after - before
	res.BatchedSeconds = batchedDur.Seconds()
	res.BatchedKeysPerS = float64(keys2) / batchedDur.Seconds()
	if res.PerKeyKeysPerS > 0 {
		res.Speedup = res.BatchedKeysPerS / res.PerKeyKeysPerS
	}
	res.ShardBalance = shardBalance(c)
	return res
}

// benchKey matches memslap's key format so prepopulation and lookups agree.
func benchKey(buf []byte, n int) []byte {
	return fmt.Appendf(buf[:0], "memslap-key-%08d", n)
}

// rngState / nextRand: the same splitmix-style generator memslap uses,
// duplicated here so the benchmark does not reach into memslap internals.
func rngState(seed uint64) uint64 { return seed*0x9E3779B97F4A7C15 + 1 }

func nextRand(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
