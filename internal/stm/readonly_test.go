package stm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
)

// roAlgorithms are the orec-based algorithms with a read-only fast path.
var roAlgorithms = []Algorithm{MLWT, LazyAlg}

// TestReadOnlyFastCommit proves the fast path's contract on the algorithms
// that have one: every read-only commit validates by timestamp, bumps no
// global clock (zero orec acquisitions have nothing to publish), and counts
// in ROFastCommits.
func TestReadOnlyFastCommit(t *testing.T) {
	for _, alg := range roAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			th := rt.NewThread()
			x, y := NewTWord(3), NewTWord(6)
			clock0 := rt.clock.Load()
			const N = 100
			for i := 0; i < N; i++ {
				var sum uint64
				mustRun(t, th, Props{Kind: Atomic, ReadOnly: true}, func(tx *Tx) {
					if !tx.ReadOnly() {
						t.Error("tx.ReadOnly() = false inside a read-only attempt")
					}
					sum = x.Load(tx) + y.Load(tx)
				})
				if sum != 9 {
					t.Fatalf("read-only sum = %d, want 9", sum)
				}
			}
			if got := rt.stats.ROFastCommits.Load(); got != N {
				t.Errorf("ROFastCommits = %d, want %d", got, N)
			}
			if got := rt.stats.Commits.Load(); got != N {
				t.Errorf("Commits = %d, want %d", got, N)
			}
			// The decisive zero-write-effects check: a read-only commit must
			// not advance the global timestamp — only orec release does that,
			// and the fast path acquires none.
			if got := rt.clock.Load(); got != clock0 {
				t.Errorf("global clock moved %d -> %d across read-only commits", clock0, got)
			}
		})
	}
}

// TestReadOnlyHintIgnoredElsewhere: algorithms without orecs (or without
// speculation at all) run a ReadOnly transaction on their normal path.
func TestReadOnlyHintIgnoredElsewhere(t *testing.T) {
	for _, alg := range []Algorithm{NOrec, SerialAlg, HTM, TML} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			th := rt.NewThread()
			v := NewTWord(7)
			var got uint64
			mustRun(t, th, Props{Kind: Relaxed, ReadOnly: true}, func(tx *Tx) {
				got = v.Load(tx)
			})
			if got != 7 {
				t.Fatalf("Load = %d, want 7", got)
			}
			if n := rt.stats.ROFastCommits.Load(); n != 0 {
				t.Errorf("ROFastCommits = %d on %v, want 0 (no fast path)", n, alg)
			}
		})
	}
}

// TestReadOnlyUpgrade: the first write barrier in a read-only attempt
// restarts it on the writer-capable path — cleanly, not as a contention
// abort — and the transaction still commits with its effects intact.
func TestReadOnlyUpgrade(t *testing.T) {
	for _, alg := range roAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			th := rt.NewThread()
			x, y := NewTWord(1), NewTWord(0)
			mustRun(t, th, Props{Kind: Atomic, ReadOnly: true}, func(tx *Tx) {
				y.Store(tx, x.Load(tx)+41) // "read-only" turns out to write
			})
			if got := y.LoadDirect(); got != 42 {
				t.Fatalf("after upgrade commit y = %d, want 42", got)
			}
			if got := rt.stats.ROUpgrades.Load(); got != 1 {
				t.Errorf("ROUpgrades = %d, want 1", got)
			}
			if got := rt.stats.Aborts.Load(); got != 0 {
				t.Errorf("Aborts = %d, want 0 (upgrade is not a contention abort)", got)
			}
			if got := rt.stats.ROFastCommits.Load(); got != 0 {
				t.Errorf("ROFastCommits = %d, want 0 (the commit wrote)", got)
			}
		})
	}
}

// TestReadOnlySnapshotUnderWriters is the race test for the fast path: with
// writers continuously moving value between two words (sum invariant 100),
// read-only transactions must never observe a torn sum — timestamp
// revalidation has to catch every mid-flight writer. Run under -race by the
// Makefile's batch-race target.
func TestReadOnlySnapshotUnderWriters(t *testing.T) {
	for _, alg := range roAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			x, y := NewTWord(100), NewTWord(0)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := rt.NewThread()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
							v := x.Load(tx)
							d := v / 2
							x.Store(tx, v-d)
							y.Store(tx, y.Load(tx)+d)
						})
						mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
							v := y.Load(tx)
							y.Store(tx, 0)
							x.Store(tx, x.Load(tx)+v)
						})
					}
				}()
			}
			th := rt.NewThread()
			for i := 0; i < 3000; i++ {
				var sum uint64
				mustRun(t, th, Props{Kind: Atomic, ReadOnly: true}, func(tx *Tx) {
					sum = x.Load(tx) + y.Load(tx)
				})
				if sum != 100 {
					t.Errorf("read-only snapshot saw x+y = %d, want 100", sum)
					break
				}
			}
			close(stop)
			wg.Wait()
			if t.Failed() {
				return
			}
			if rt.stats.ROFastCommits.Load() == 0 {
				t.Error("no read-only fast commits recorded under contention")
			}
		})
	}
}

// TestMaxRetries: a transaction that aborts every attempt returns
// ErrRetryLimit once Props.MaxRetries consecutive aborts accumulate, instead
// of escalating to serial execution.
func TestMaxRetries(t *testing.T) {
	in := fault.New(1)
	in.Set(fault.STMReadAbort, 1) // every speculative read barrier aborts
	rt := New(Config{Algorithm: MLWT, Fault: in})
	th := rt.NewThread()
	v := NewTWord(0)
	err := th.Run(Props{Kind: Atomic, MaxRetries: 5}, func(tx *Tx) { v.Load(tx) })
	if !errors.Is(err, ErrRetryLimit) {
		t.Fatalf("Run = %v, want ErrRetryLimit", err)
	}
	if got := rt.stats.Aborts.Load(); got != 5 {
		t.Errorf("Aborts = %d, want 5", got)
	}
	// Without the bound the same transaction escalates to serial and commits.
	if err := th.Run(Props{Kind: Relaxed}, func(tx *Tx) { v.Load(tx) }); err != nil {
		t.Fatalf("unbounded Run = %v, want nil (serial escalation)", err)
	}
}
