package stm

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

var algorithms = []Algorithm{MLWT, LazyAlg, NOrec, SerialAlg, HTM, TML}

func forEachAlg(t *testing.T, fn func(t *testing.T, rt *Runtime)) {
	t.Helper()
	for _, alg := range algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			fn(t, New(Config{Algorithm: alg}))
		})
	}
}

func mustRun(t *testing.T, th *Thread, props Props, fn func(*Tx)) {
	t.Helper()
	if err := th.Run(props, fn); err != nil {
		// Errorf, not Fatalf: mustRun is called from worker goroutines.
		t.Errorf("Run: %v", err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTWord(7)
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			if got := v.Load(tx); got != 7 {
				t.Errorf("initial Load = %d, want 7", got)
			}
			v.Store(tx, 42)
			if got := v.Load(tx); got != 42 {
				t.Errorf("read-own-write = %d, want 42", got)
			}
		})
		if got := v.LoadDirect(); got != 42 {
			t.Errorf("after commit = %d, want 42", got)
		}
	})
}

func TestTAnyRoundTrip(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTAny("hello")
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			if got := v.Load(tx); got != "hello" {
				t.Errorf("Load = %v", got)
			}
			v.Store(tx, 99)
			if got := v.Load(tx); got != 99 {
				t.Errorf("read-own-write = %v", got)
			}
		})
		if got := v.LoadDirect(); got != 99 {
			t.Errorf("after commit = %v", got)
		}
	})
}

func TestCancelRollsBack(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTWord(1)
		err := th.Run(Props{Kind: Atomic}, func(tx *Tx) {
			v.Store(tx, 2)
			tx.Cancel()
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if got := v.LoadDirect(); got != 1 {
			t.Errorf("after cancel = %d, want 1 (rolled back)", got)
		}
	})
}

func TestCancelInRelaxedPanics(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	defer func() {
		if r := recover(); !errors.Is(r.(error), ErrCancelRelaxed) {
			t.Fatalf("panic = %v, want ErrCancelRelaxed", r)
		}
	}()
	_ = th.Run(Props{Kind: Relaxed}, func(tx *Tx) { tx.Cancel() })
	t.Fatal("no panic")
}

func TestUserPanicRollsBackAndPropagates(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTWord(1)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("panic = %v, want boom", r)
				}
			}()
			_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
				v.Store(tx, 2)
				panic("boom")
			})
		}()
		if got := v.LoadDirect(); got != 1 {
			t.Errorf("after panic = %d, want 1 (rolled back)", got)
		}
		// The runtime must be reusable afterwards.
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) { v.Store(tx, 3) })
		if got := v.LoadDirect(); got != 3 {
			t.Errorf("after recovery tx = %d, want 3", got)
		}
	})
}

func TestUnsafeInAtomicPanics(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	v := NewTWord(1)
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrUnsafeInAtomic) {
			t.Fatalf("panic = %v, want ErrUnsafeInAtomic", r)
		}
		if got := v.LoadDirect(); got != 1 {
			t.Errorf("value = %d, want 1 (rolled back)", got)
		}
	}()
	_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
		v.Store(tx, 2)
		tx.Unsafe("fprintf")
	})
	t.Fatal("no panic")
}

func TestUnsafeInRelaxedSwitchesSerial(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	v := NewTWord(0)
	runs := 0
	mustRun(t, th, Props{Kind: Relaxed}, func(tx *Tx) {
		runs++
		v.Store(tx, v.Load(tx)+1)
		tx.Unsafe("fprintf")
		if !tx.Serial() {
			t.Error("not serial after Unsafe")
		}
	})
	if runs != 2 {
		t.Errorf("body ran %d times, want 2 (speculative + serial restart)", runs)
	}
	if got := v.LoadDirect(); got != 1 {
		t.Errorf("value = %d, want 1 (speculative attempt rolled back)", got)
	}
	s := rt.Stats()
	if s.InFlightSwitch != 1 {
		t.Errorf("InFlightSwitch = %d, want 1", s.InFlightSwitch)
	}
	if s.SerialCommits != 1 {
		t.Errorf("SerialCommits = %d, want 1", s.SerialCommits)
	}
}

func TestStartSerial(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	v := NewTWord(0)
	mustRun(t, th, Props{Kind: Relaxed, StartSerial: true}, func(tx *Tx) {
		if !tx.Serial() {
			t.Error("not serial at start")
		}
		tx.Unsafe("write") // no-op when already serial
		v.Store(tx, 5)
	})
	s := rt.Stats()
	if s.StartSerial != 1 {
		t.Errorf("StartSerial = %d, want 1", s.StartSerial)
	}
	if s.InFlightSwitch != 0 {
		t.Errorf("InFlightSwitch = %d, want 0", s.InFlightSwitch)
	}
	if v.LoadDirect() != 5 {
		t.Error("store lost")
	}
}

func TestOnCommitRunsOnceAfterCommit(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTWord(0)
		calls := 0
		sawValue := uint64(0)
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			v.Store(tx, 9)
			tx.OnCommit(func() {
				calls++
				sawValue = v.LoadDirect() // locks already released
				if th.InTx() {
					t.Error("onCommit handler ran inside a transaction")
				}
			})
		})
		if calls != 1 {
			t.Errorf("onCommit ran %d times, want 1", calls)
		}
		if sawValue != 9 {
			t.Errorf("onCommit saw %d, want 9", sawValue)
		}
	})
}

func TestOnCommitNotRunOnCancel(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	calls := 0
	_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
		tx.OnCommit(func() { calls++ })
		tx.Cancel()
	})
	if calls != 0 {
		t.Errorf("onCommit ran %d times after cancel, want 0", calls)
	}
}

func TestOnAbortRunsPerAbort(t *testing.T) {
	rt := New(Config{SerializeAfter: 3})
	th := rt.NewThread()
	aborts := 0
	attempts := 0
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		attempts++
		tx.OnAbort(func() { aborts++ })
		if !tx.Serial() {
			tx.Abort()
		}
	})
	// 3 speculative attempts abort, then the CM serializes the 4th.
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	if aborts != 3 {
		t.Errorf("onAbort ran %d times, want 3", aborts)
	}
	if got := rt.Stats().AbortSerial; got != 1 {
		t.Errorf("AbortSerial = %d, want 1", got)
	}
}

func TestFlatNesting(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		v := NewTWord(0)
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			v.Store(tx, 1)
			// Nested Run flattens into the same transaction.
			mustRun(t, th, Props{Kind: Atomic}, func(inner *Tx) {
				if inner != tx {
					t.Error("nested transaction got a fresh descriptor")
				}
				v.Store(inner, v.Load(inner)+1)
			})
		})
		if got := v.LoadDirect(); got != 2 {
			t.Errorf("value = %d, want 2", got)
		}
	})
}

// TestConcurrentCounter checks atomicity of read-modify-write under real
// contention for every algorithm.
func TestConcurrentCounter(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		const goroutines = 8
		const perG = 2000
		ctr := NewTWord(0)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := rt.NewThread()
				for i := 0; i < perG; i++ {
					mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
						ctr.Store(tx, ctr.Load(tx)+1)
					})
				}
			}()
		}
		wg.Wait()
		if got := ctr.LoadDirect(); got != goroutines*perG {
			t.Errorf("counter = %d, want %d", got, goroutines*perG)
		}
	})
}

// TestBankInvariant transfers money among accounts from many goroutines and
// checks that every transactional snapshot and the final state conserve the
// total: the classic opacity/atomicity smoke test.
func TestBankInvariant(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		const nAcct = 16
		const total = nAcct * 100
		accts := make([]*TWord, nAcct)
		for i := range accts {
			accts[i] = NewTWord(100)
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := rt.NewThread()
				for i := 0; i < 1500; i++ {
					from := (g*7 + i) % nAcct
					to := (g*13 + i*5 + 1) % nAcct
					if from == to {
						continue
					}
					mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
						f := accts[from].Load(tx)
						if f == 0 {
							return
						}
						accts[from].Store(tx, f-1)
						accts[to].Store(tx, accts[to].Load(tx)+1)
					})
					if i%64 == 0 {
						// Observer transaction: the snapshot must conserve total.
						var sum uint64
						mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
							sum = 0
							for _, a := range accts {
								sum += a.Load(tx)
							}
						})
						if sum != total {
							t.Errorf("snapshot sum = %d, want %d", sum, total)
						}
					}
				}
			}()
		}
		wg.Wait()
		var sum uint64
		for _, a := range accts {
			sum += a.LoadDirect()
		}
		if sum != total {
			t.Errorf("final sum = %d, want %d", sum, total)
		}
	})
}

func TestNoSerialLockStillAtomic(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMNone, NoSerialLock: true})
	ctr := NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 2000; i++ {
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					ctr.Store(tx, ctr.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := ctr.LoadDirect(); got != 16000 {
		t.Errorf("counter = %d, want 16000", got)
	}
}

func TestContentionManagersProgress(t *testing.T) {
	for _, cm := range []ContentionManager{CMSerialize, CMNone, CMBackoff, CMHourglass} {
		cm := cm
		t.Run(cm.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: MLWT, CM: cm, HourglassAfter: 4, SerializeAfter: 8})
			ctr := NewTWord(0)
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := rt.NewThread()
					for i := 0; i < 1000; i++ {
						mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
							ctr.Store(tx, ctr.Load(tx)+1)
						})
					}
				}()
			}
			wg.Wait()
			if got := ctr.LoadDirect(); got != 6000 {
				t.Errorf("counter = %d, want 6000", got)
			}
		})
	}
}

func TestRelaxedSerialAndSpeculativeCoexist(t *testing.T) {
	// Relaxed transactions that go irrevocable must exclude speculative ones
	// via the global readers/writer lock.
	rt := New(Config{Algorithm: MLWT})
	ctr := NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 1000; i++ {
				if g == 0 && i%10 == 0 {
					mustRun(t, th, Props{Kind: Relaxed}, func(tx *Tx) {
						v := ctr.Load(tx)
						tx.Unsafe("logging")
						ctr.Store(tx, v+1)
					})
				} else {
					mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
						ctr.Store(tx, ctr.Load(tx)+1)
					})
				}
			}
		}()
	}
	wg.Wait()
	if got := ctr.LoadDirect(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if rt.Stats().InFlightSwitch == 0 {
		t.Error("expected in-flight switches")
	}
}

func TestTBytesRoundTrip(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		src := []byte("the quick brown fox jumps over the lazy dog")
		tb := NewTBytesFrom(src)
		if !bytes.Equal(tb.Bytes(), src) {
			t.Fatalf("NewTBytesFrom round trip = %q", tb.Bytes())
		}
		dst := make([]byte, len(src))
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			tb.ReadAll(tx, dst)
		})
		if !bytes.Equal(dst, src) {
			t.Errorf("ReadAll = %q", dst)
		}
		repl := []byte("THE QUICK")
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			tb.WriteAll(tx, repl)
		})
		want := append([]byte("THE QUICK"), src[9:]...)
		if !bytes.Equal(tb.Bytes(), want) {
			t.Errorf("after WriteAll = %q, want %q", tb.Bytes(), want)
		}
	})
}

func TestTBytesByteOpsQuick(t *testing.T) {
	rt := New(Config{})
	th := rt.NewThread()
	// Property: SetByteAt then ByteAt observes the byte; other bytes keep
	// their values.
	f := func(data []byte, idx uint16, b byte) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		tb := NewTBytesFrom(data)
		var got byte
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			tb.SetByteAt(tx, i, b)
			got = tb.ByteAt(tx, i)
		})
		if got != b {
			return false
		}
		out := tb.Bytes()
		for j := range data {
			want := data[j]
			if j == i {
				want = b
			}
			if out[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTBytesConcurrentWriters(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		// Each goroutine repeatedly overwrites the whole buffer with its own
		// fill byte inside one transaction; readers must never observe a mix.
		tb := NewTBytesFrom(bytes.Repeat([]byte{'z'}, 64))
		var writers sync.WaitGroup
		for g := 0; g < 3; g++ {
			fill := byte('a' + g)
			writers.Add(1)
			go func() {
				defer writers.Done()
				th := rt.NewThread()
				buf := bytes.Repeat([]byte{fill}, 64)
				for i := 0; i < 300; i++ {
					mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
						tb.WriteAll(tx, buf)
					})
				}
			}()
		}
		stop := make(chan struct{})
		var reader sync.WaitGroup
		reader.Add(1)
		go func() {
			defer reader.Done()
			th := rt.NewThread()
			dst := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					tb.ReadAll(tx, dst)
				})
				first := dst[0]
				for _, c := range dst {
					if c != first {
						t.Errorf("torn read: %q", dst)
						return
					}
				}
			}
		}()
		writers.Wait()
		close(stop)
		reader.Wait()
	})
}

func TestStatsSubAndRatios(t *testing.T) {
	a := Snapshot{Commits: 10, Aborts: 20, InFlightSwitch: 1}
	b := Snapshot{Commits: 30, Aborts: 25, InFlightSwitch: 4}
	d := b.Sub(a)
	if d.Commits != 20 || d.Aborts != 5 || d.InFlightSwitch != 3 {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.AbortsPerCommit(); got != 0.25 {
		t.Errorf("AbortsPerCommit = %v", got)
	}
}

func TestParseHelpers(t *testing.T) {
	for _, s := range []string{"mlwt", "lazy", "norec", "serial"} {
		if _, err := ParseAlgorithm(s); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", s, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
	for _, s := range []string{"serialize", "none", "backoff", "hourglass"} {
		if _, err := ParseCM(s); err != nil {
			t.Errorf("ParseCM(%q): %v", s, err)
		}
	}
	if _, err := ParseCM("nope"); err == nil {
		t.Error("ParseCM accepted garbage")
	}
}
