package protocol

import (
	"fmt"

	"repro/internal/fingerprint"
	"repro/internal/poller"
)

// EventLoopSnapshot is one transport's telemetry at a point in time. The
// event-loop transport implements TransportStats by filling this in; the
// classic goroutine-per-connection transport has no queues to report and
// simply never installs a TransportStats, which `stats eventloop` renders
// as "eventloop 0".
type EventLoopSnapshot struct {
	Workers int `json:"workers"`
	Conns   int `json:"conns"`

	// Queue gauges: instantaneous depths, not counters — they survive a
	// stats reset by construction.
	AffineDepth []int `json:"affine_depth"`
	AffineCap   int   `json:"affine_cap"`
	SharedDepth int   `json:"shared_depth"`
	SharedCap   int   `json:"shared_cap"`
	OverflowLen int   `json:"overflow_len"`

	// OverflowSpills counts enqueues that found both the affine and shared
	// queues full and spilled to the unbounded overflow list — the transport's
	// saturation signal (previously a silent append).
	OverflowSpills uint64 `json:"overflow_spills"`

	// Dispatch is the queued→running latency in nanoseconds; BurstOps is the
	// commands-served-per-burst distribution (its unit is ops, not ns).
	Dispatch fingerprint.HistSnapshot `json:"dispatch_ns"`
	BurstOps fingerprint.HistSnapshot `json:"burst_ops"`

	// WorkerBusy is each pool worker's busy fraction (time inside bursts /
	// wall time) since start or the last reset.
	WorkerBusy []float64 `json:"worker_busy"`

	// Poller counters, when the poller implements poller.CounterSource.
	Poller    poller.Counters `json:"poller"`
	HasPoller bool            `json:"has_poller_counters"`
}

// TransportStats is implemented by transports that expose queue/dispatch
// telemetry (the event-loop transport). The server installs it per
// connection via SetTransport; `stats eventloop` reads it and `stats reset`
// resets its counters (gauges survive).
type TransportStats interface {
	EventLoopSnapshot() EventLoopSnapshot
	// ResetTransportCounters zeroes the transport's counters and histograms
	// and restarts the busy-fraction window. Gauges (queue depths, overflow
	// length, connection count) are unaffected.
	ResetTransportCounters()
}

// SetTransport installs the transport's telemetry source for the stats
// surface (nil for transports without one).
func (c *Conn) SetTransport(ts TransportStats) { c.tstats = ts }

// fpHist renders one histogram snapshot as a single STAT line. unit suffixes
// the quantile field names ("_ns" for durations, "" for dimensionless).
func (c *Conn) fpHist(name, unit string, s fingerprint.HistSnapshot) {
	fmt.Fprintf(c.w, "STAT %s count=%d mean%s=%d p50%s=%d p95%s=%d p99%s=%d max%s=%d\r\n",
		name, s.Count, unit, s.Mean, unit, s.P50, unit, s.P95, unit, s.P99, unit, s.Max)
}

// cmdStatsEventLoop reports the transport telemetry (`stats eventloop`).
func (c *Conn) cmdStatsEventLoop() error {
	if c.tstats == nil {
		fmt.Fprintf(c.w, "STAT eventloop 0\r\n")
		return c.reply("END\r\n")
	}
	s := c.tstats.EventLoopSnapshot()
	fmt.Fprintf(c.w, "STAT eventloop 1\r\n")
	fmt.Fprintf(c.w, "STAT workers %d\r\n", s.Workers)
	fmt.Fprintf(c.w, "STAT conns %d\r\n", s.Conns)
	fmt.Fprintf(c.w, "STAT shared_depth %d\r\n", s.SharedDepth)
	fmt.Fprintf(c.w, "STAT shared_cap %d\r\n", s.SharedCap)
	fmt.Fprintf(c.w, "STAT overflow_len %d\r\n", s.OverflowLen)
	fmt.Fprintf(c.w, "STAT event_overflow_spills %d\r\n", s.OverflowSpills)
	for i, d := range s.AffineDepth {
		fmt.Fprintf(c.w, "STAT affine_%d_depth %d\r\n", i, d)
	}
	fmt.Fprintf(c.w, "STAT affine_cap %d\r\n", s.AffineCap)
	for i, b := range s.WorkerBusy {
		fmt.Fprintf(c.w, "STAT worker_%d_busy %.3f\r\n", i, b)
	}
	c.fpHist("dispatch_ns", "_ns", s.Dispatch)
	c.fpHist("burst_ops", "", s.BurstOps)
	if s.HasPoller {
		fmt.Fprintf(c.w, "STAT poller_wakeups %d\r\n", s.Poller.Wakeups)
		fmt.Fprintf(c.w, "STAT poller_probes %d\r\n", s.Poller.Probes)
		fmt.Fprintf(c.w, "STAT poller_synthesized %d\r\n", s.Poller.Synthesized)
	}
	return c.reply("END\r\n")
}

// cmdStatsFingerprint reports the decayed per-shard workload fingerprints
// (`stats fingerprint`). A cache where fingerprinting was never enabled
// replies with a bare disabled marker; a disabled-but-collected cache still
// reports its last windows with fingerprint 0 on the first line.
func (c *Conn) cmdStatsFingerprint() error {
	o := c.worker.Fingerprint()
	if o == nil {
		fmt.Fprintf(c.w, "STAT fingerprint 0\r\n")
		return c.reply("END\r\n")
	}
	snap := o.Snapshot()
	fmt.Fprintf(c.w, "STAT fingerprint %d\r\n", boolInt(c.worker.FingerprintEnabled()))
	fmt.Fprintf(c.w, "STAT shards %d\r\n", len(snap.Shards))
	c.fpHist("txn_queue", "_ns", snap.TxnQueue)
	c.fpHist("txn_validate", "_ns", snap.TxnValidate)
	c.fpHist("txn_apply", "_ns", snap.TxnApply)
	c.fpHist("txn_serial_wait", "_ns", snap.TxnSerialWait)
	for i := range snap.Shards {
		sh := &snap.Shards[i]
		stat := func(k string, v uint64) {
			fmt.Fprintf(c.w, "STAT shard_%d_%s %d\r\n", i, k, v)
		}
		stat("ops", sh.Ops)
		stat("reads", sh.Reads)
		stat("writes", sh.Writes)
		stat("deletes", sh.Deletes)
		stat("deltas", sh.Deltas)
		stat("touches", sh.Touches)
		stat("hits", sh.Hits)
		stat("misses", sh.Misses)
		fmt.Fprintf(c.w, "STAT shard_%d_concentration %.3f\r\n", i, sh.Concentration)
		c.fpHist(fmt.Sprintf("shard_%d_vsize", i), "", sh.VSize)
		stat("abort_conflicts", sh.Aborts.Conflicts)
		stat("abort_start_serial", sh.Aborts.StartSerial)
		stat("abort_abort_serial", sh.Aborts.AbortSerial)
		stat("abort_inflight_switch", sh.Aborts.InflightSwitch)
		stat("abort_watchdog", sh.Aborts.Watchdog)
		// Hot keys ride in the value position (count, then error bound, then
		// the key itself last so keys with no spaces parse unambiguously).
		for j, hk := range sh.HotKeys {
			fmt.Fprintf(c.w, "STAT shard_%d_hot_%d %d %d %s\r\n", i, j, hk.Count, hk.Err, hk.Key)
		}
	}
	return c.reply("END\r\n")
}
