// Command mctrace generates, inspects and replays cache workload traces
// (internal/trace): the same captured operation stream, replayed against any
// synchronization branch of the paper.
//
//	mctrace gen -o run.trace -ops 50000 -clients 4       # synthesize
//	mctrace info run.trace                               # inspect
//	mctrace replay -branch it-oncommit run.trace         # replay
//	mctrace replay -branch baseline -branch it-nolock run.trace
//
// It also analyzes request-trace exports (internal/txtrace): retry-chain
// reconstruction and the who-aborted-whom conflict graph, from a saved
// /debug/trace JSON document or live from a running server's debug port.
//
//	mctrace analyze trace.json                           # saved export
//	mctrace analyze -addr 127.0.0.1:11212                # live /debug/trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/txtrace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mctrace gen|info|replay|analyze [flags] [file]")
	os.Exit(2)
}

// analyze reads a /debug/trace export (from a file argument or a live debug
// address) and prints the retry-chain and conflict-graph report.
func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	addr := fs.String("addr", "", "debug address to fetch /debug/trace from (instead of a file)")
	chains := fs.Int("chains", 10, "retry chains to print (longest first)")
	raw := fs.Bool("json", false, "re-emit the export as indented JSON instead of the report")
	fs.Parse(args)

	var data []byte
	var err error
	switch {
	case *addr != "":
		var resp *http.Response
		resp, err = http.Get("http://" + *addr + "/debug/trace")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET /debug/trace: %s", resp.Status)
		}
		data, err = io.ReadAll(resp.Body)
	case fs.NArg() == 1:
		data, err = os.ReadFile(fs.Arg(0))
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}

	var ex txtrace.Export
	if err := json.Unmarshal(data, &ex); err != nil {
		log.Fatalf("parse export: %v", err)
	}
	if *raw {
		out, _ := json.MarshalIndent(&ex, "", "  ")
		os.Stdout.Write(append(out, '\n'))
		return
	}
	fmt.Print(txtrace.FormatAnalysis(&ex, *chains))
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "run.trace", "output file")
	ops := fs.Int("ops", 10000, "operations per client")
	clients := fs.Int("clients", 4, "client streams")
	keyspace := fs.Int("keyspace", 4096, "distinct keys")
	vsize := fs.Int("value-size", 512, "value size")
	zipf := fs.Bool("zipf", false, "Zipf-skewed keys")
	fs.Parse(args)

	// Record a memslap-shaped run against a baseline cache.
	c := engine.New(engine.Config{Branch: engine.Baseline, MemLimit: 64 << 20})
	c.Start()
	defer c.Stop()
	s := trace.NewSession()
	done := make(chan struct{}, *clients)
	for g := 0; g < *clients; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			r := s.NewRecorder(c.NewWorker())
			seed := uint64(g)*0x9E3779B97F4A7C15 + 7
			next := func() uint64 {
				seed ^= seed >> 12
				seed ^= seed << 25
				seed ^= seed >> 27
				return seed * 0x2545F4914F6CDD1D
			}
			val := make([]byte, *vsize)
			for i := 0; i < *ops; i++ {
				kn := int(next() % uint64(*keyspace))
				if *zipf {
					kn = kn % (kn%64 + 1) // crude skew for the generator tool
				}
				key := fmt.Appendf(nil, "trace-key-%08d", kn)
				switch {
				case next()%10 == 0:
					r.Set(key, 0, 0, val)
				case next()%50 == 0:
					r.Delete(key)
				default:
					r.Get(key)
				}
			}
		}()
	}
	for g := 0; g < *clients; g++ {
		<-done
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr := s.Trace()
	if err := tr.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d ops (%d clients) to %s\n", len(tr.Ops), tr.Clients(), *out)
}

func loadFile(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := loadFile(fs.Arg(0))
	kinds := map[trace.Kind]int{}
	keys := map[string]struct{}{}
	for _, op := range tr.Ops {
		kinds[op.Kind]++
		keys[string(op.Key)] = struct{}{}
	}
	fmt.Printf("ops: %d, clients: %d, distinct keys: %d\n", len(tr.Ops), tr.Clients(), len(keys))
	for k := trace.OpGet; k <= trace.OpFlushAll; k++ {
		if n := kinds[k]; n > 0 {
			fmt.Printf("  %-10s %d\n", k, n)
		}
	}
}

type branchList []string

func (b *branchList) String() string     { return fmt.Sprint(*b) }
func (b *branchList) Set(s string) error { *b = append(*b, s); return nil }

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var branches branchList
	fs.Var(&branches, "branch", "branch to replay against (repeatable)")
	mem := fs.Uint64("m", 64, "memory limit MiB")
	prof := fs.Bool("txobs", false, "trace each replay and print the per-branch observability report (heat map + latency)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if len(branches) == 0 {
		branches = branchList{"it-oncommit"}
	}
	tr := loadFile(fs.Arg(0))
	for _, name := range branches {
		b, err := engine.ParseBranch(name)
		if err != nil {
			log.Fatal(err)
		}
		c := engine.New(engine.Config{Branch: b, MemLimit: *mem << 20, Automove: true})
		c.Start()
		if *prof {
			c.EnableTracing()
		}
		start := time.Now()
		res := trace.Replay(c, tr)
		dur := time.Since(start)
		w := c.NewWorker()
		snap := w.Stats()
		c.Stop()
		fmt.Printf("%-14s %8.3fs  %8.0f ops/s  hits=%d errors=%d curr_items=%d tm_serialized=%d\n",
			b, dur.Seconds(), float64(res.Ops)/dur.Seconds(), res.Hits, res.Errors,
			snap.CurrItems, snap.STM.InFlightSwitch+snap.STM.StartSerial+snap.STM.AbortSerial)
		if *prof {
			if o := c.Observer(); o != nil {
				fmt.Print(o.Report(10))
			}
		}
	}
}
