package stm

import (
	"time"

	"repro/internal/txobs"
)

// Starvation watchdog.
//
// The paper's §4 diagnoses starvation from abort-rate variance after the
// fact; the maintenance-thread starvation incident in DESIGN.md (20×
// run-to-run variance) was likewise found post-hoc. The watchdog turns that
// diagnosis into a live controller: a goroutine scans every registered
// thread and, when one is starving — too many consecutive aborts of the same
// source-level transaction, or too long since that transaction first began —
// escalates it through the contention-manager ladder independent of the
// configured CM:
//
//	level 0 → 1: apply randomized exponential backoff between retries
//	level 1 → 2: run the next attempt serial-irrevocable (guaranteed progress)
//
// Escalation resets when the transaction finally commits (or cancels). The
// actions are counted in Stats (WatchdogBackoffs, WatchdogSerializes) and
// surfaced by the server's `stats` command, so a production starvation event
// is visible, attributed, and bounded instead of an unexplained variance.

// escalation levels stored in Thread.escalate.
const (
	escalateNone      = 0
	escalateBackoff   = 1
	escalateSerialize = 2
)

// StartWatchdog launches the starvation watchdog when Config.WatchdogInterval
// is non-zero. It is a no-op otherwise, or when already running. Call
// StopWatchdog to halt it.
func (rt *Runtime) StartWatchdog() {
	if rt.cfg.WatchdogInterval <= 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.watchStop != nil {
		return
	}
	rt.watchStop = make(chan struct{})
	rt.watchWG.Add(1)
	go rt.watchdogLoop(rt.watchStop)
}

// StopWatchdog halts the watchdog and waits for it to exit. Safe to call
// multiple times and without a prior StartWatchdog.
func (rt *Runtime) StopWatchdog() {
	rt.mu.Lock()
	stop := rt.watchStop
	rt.watchStop = nil
	rt.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	rt.watchWG.Wait()
}

func (rt *Runtime) watchdogLoop(stop chan struct{}) {
	defer rt.watchWG.Done()
	t := time.NewTicker(rt.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			rt.watchdogScan(time.Now())
		}
	}
}

// watchdogScan inspects each thread once and escalates the starving ones one
// level. Escalating one level per scan (rather than straight to serial)
// keeps the cheap remedy first: backoff resolves most livelock-shaped
// starvation, and serialization — which costs every other thread its
// concurrency — is reserved for transactions backoff did not save.
func (rt *Runtime) watchdogScan(now time.Time) {
	snapP := rt.thSnap.Load()
	if snapP == nil {
		return
	}
	for _, th := range *snapP {
		since := th.runSince.Load()
		starving := th.consecAborts.Load() >= rt.cfg.WatchdogAborts ||
			(since != 0 && now.UnixNano()-since >= int64(rt.cfg.WatchdogAge))
		if !starving {
			continue
		}
		switch th.escalate.Load() {
		case escalateNone:
			th.escalate.Store(escalateBackoff)
			rt.stats.WatchdogBackoffs.Add(1)
			rt.obsEvent(txobs.KWatchdogBackoff, "watchdog: backoff")
		case escalateBackoff:
			th.escalate.Store(escalateSerialize)
			rt.stats.WatchdogSerializes.Add(1)
			rt.obsEvent(txobs.KWatchdogSerialize, "watchdog: serialize")
		}
	}
}
