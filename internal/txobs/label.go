// Package txobs is the transaction observability layer: a label registry for
// naming transactional data structures, per-thread lock-free event rings
// recording begin/abort/serialize/commit events, a conflict heat map
// aggregated by ownership record and by label, and log-bucketed latency
// histograms per STM phase and per server command.
//
// The paper's authors report that "manually diagnosing the causes of aborts
// and serialization was challenging", and extended the GCC TM library with
// custom profiling (§6). This package is that extension made first-class: the
// runtime records structured events instead of ad-hoc counters, and the
// server exposes them live (`stats tm`, `stats conflicts`, `stats latency`,
// and an HTTP debug endpoint).
//
// The package deliberately imports nothing from the rest of the repository so
// the STM runtime, engine, and server can all depend on it.
package txobs

import (
	"fmt"
	"sync"
)

// Label identifies a named class of transactional locations ("hash_bucket",
// "lru_head", "slab_class_3", ...). The zero Label means unlabeled. Labels
// are registered globally and encoded by the STM into location ids, so an
// aborting transaction can attribute the conflicting access to a named
// structure without any lookup on the hot path.
type Label uint16

// NoLabel is the zero label: a location that was never tagged.
const NoLabel Label = 0

// MaxLabels bounds the registry (and sizes the observer's per-label
// aggregation arrays). Registration past the limit returns NoLabel rather
// than growing without bound.
const MaxLabels = 1024

var labelReg = struct {
	sync.RWMutex
	byName map[string]Label
	names  []string
}{
	byName: make(map[string]Label),
	names:  []string{"(unlabeled)"},
}

// RegisterLabel interns name and returns its Label. Registering the same name
// twice returns the same Label; registering more than MaxLabels distinct
// names returns NoLabel for the overflow.
func RegisterLabel(name string) Label {
	labelReg.RLock()
	l, ok := labelReg.byName[name]
	labelReg.RUnlock()
	if ok {
		return l
	}
	labelReg.Lock()
	defer labelReg.Unlock()
	if l, ok := labelReg.byName[name]; ok {
		return l
	}
	if len(labelReg.names) >= MaxLabels {
		return NoLabel
	}
	l = Label(len(labelReg.names))
	labelReg.names = append(labelReg.names, name)
	labelReg.byName[name] = l
	return l
}

// RegisterLabelf is RegisterLabel with Sprintf formatting (slab classes etc.).
func RegisterLabelf(format string, args ...any) Label {
	return RegisterLabel(fmt.Sprintf(format, args...))
}

// String returns the registered name, or "(unlabeled)" for NoLabel.
func (l Label) String() string {
	labelReg.RLock()
	defer labelReg.RUnlock()
	if int(l) < len(labelReg.names) {
		return labelReg.names[l]
	}
	return fmt.Sprintf("label(%d)", uint16(l))
}

// NumLabels returns the number of registered labels (including NoLabel).
func NumLabels() int {
	labelReg.RLock()
	defer labelReg.RUnlock()
	return len(labelReg.names)
}
