package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// Binary protocol framing (the subset memslap --binary exercises, plus the
// administrative opcodes).
const (
	binMagicReq = 0x80
	binMagicRes = 0x81
)

// Opcodes.
const (
	OpGet       = 0x00
	OpGetQ      = 0x09 // quiet get: no reply on miss (pipelined multigets)
	OpGetK      = 0x0c // get returning the key in the reply
	OpGetKQ     = 0x0d
	OpSet       = 0x01
	OpAdd       = 0x02
	OpReplace   = 0x03
	OpDelete    = 0x04
	OpIncrement = 0x05
	OpDecrement = 0x06
	OpQuit      = 0x07
	OpFlush     = 0x08
	OpNoop      = 0x0a
	OpVersion   = 0x0b
	OpAppend    = 0x0e
	OpPrepend   = 0x0f
	OpStat      = 0x10
	OpTouch     = 0x1c
	OpGAT       = 0x1d

	// Wire-transaction extension opcodes (vendor range, see wiretx.go).
	OpTxBegin  = 0xe0
	OpTxCommit = 0xe1
	OpTxAbort  = 0xe2
)

// Response status codes.
const (
	StatusOK             = 0x0000
	StatusKeyNotFound    = 0x0001
	StatusKeyExists      = 0x0002
	StatusValueTooLarge  = 0x0003
	StatusInvalidArgs    = 0x0004
	StatusItemNotStored  = 0x0005
	StatusNonNumeric     = 0x0006
	StatusUnknownCommand = 0x0081
	StatusOutOfMemory    = 0x0082
)

type binHeader struct {
	opcode   byte
	keyLen   uint16
	extraLen byte
	status   uint16
	bodyLen  uint32
	opaque   uint32
	cas      uint64
}

// serveBinaryOne handles one binary request frame.
func (c *Conn) serveBinaryOne() error {
	var hdr [24]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: truncated binary header: %v", ErrProtocol, err)
		}
		return err
	}
	if hdr[0] != binMagicReq {
		// Malformed magic (a high first byte that is not 0x80): the header
		// layout is still the only framing we have, so trust its body length
		// if sane, drain the frame, and refuse it — leaving the connection
		// aligned on the next frame. An insane length means framing is lost
		// for good and the connection must die.
		bl := binary.BigEndian.Uint32(hdr[8:12])
		if bl > MaxBodyLen {
			return fmt.Errorf("%w: bad magic 0x%02x with %d-byte body", ErrProtocol, hdr[0], bl)
		}
		io.CopyN(io.Discard, c.r, int64(bl))
		return c.binError(binHeader{opcode: hdr[1]}, StatusUnknownCommand, []byte("Bad magic"))
	}
	req := binHeader{
		opcode:   hdr[1],
		keyLen:   binary.BigEndian.Uint16(hdr[2:4]),
		extraLen: hdr[4],
		bodyLen:  binary.BigEndian.Uint32(hdr[8:12]),
		opaque:   binary.BigEndian.Uint32(hdr[12:16]),
		cas:      binary.BigEndian.Uint64(hdr[16:24]),
	}
	if req.bodyLen > MaxBodyLen {
		// A hostile or corrupt frame must not make us allocate its claimed
		// body. Drain what we can and refuse.
		io.CopyN(io.Discard, c.r, int64(req.bodyLen))
		return c.binError(req, StatusValueTooLarge, []byte("Too large"))
	}
	body := make([]byte, req.bodyLen)
	if _, err := io.ReadFull(c.r, body); err != nil {
		return fmt.Errorf("%w: truncated binary body: %v", ErrProtocol, err)
	}
	if int(req.extraLen)+int(req.keyLen) > len(body) {
		return c.binError(req, StatusInvalidArgs, nil)
	}
	if req.keyLen > MaxKeyLen {
		// The frame is consumed, so the protocol's 250-byte key limit is a
		// per-command refusal, not a connection error.
		return c.binError(req, StatusInvalidArgs, []byte("Key too long"))
	}
	extras := body[:req.extraLen]
	key := body[req.extraLen : int(req.extraLen)+int(req.keyLen)]
	value := body[int(req.extraLen)+int(req.keyLen):]

	// Same span bracket as the text path; the span's cmd is prefixed so a
	// flight-recorder line says which protocol carried the request.
	if cs := c.spans; cs != nil && cs.Begin("binary/"+binOpName(req.opcode)) {
		c.worker.SetTxTrace(cs)
		err := c.dispatchBinaryTimed(req, extras, key, value)
		c.worker.SetTxTrace(nil)
		cs.End()
		return err
	}
	return c.dispatchBinaryTimed(req, extras, key, value)
}

func (c *Conn) dispatchBinaryTimed(req binHeader, extras, key, value []byte) error {
	if o := c.worker.Observer(); o != nil && o.Enabled() {
		t0 := time.Now()
		err := c.dispatchBinary(req, extras, key, value)
		o.ObserveCommand(binOpName(req.opcode), time.Since(t0))
		return err
	}
	return c.dispatchBinary(req, extras, key, value)
}

// binOpName maps an opcode to the command-latency histogram key, matching the
// text protocol's command names where the semantics match.
func binOpName(op byte) string {
	switch op {
	case OpGet, OpGetQ, OpGetK, OpGetKQ:
		return "get"
	case OpSet:
		return "set"
	case OpAdd:
		return "add"
	case OpReplace:
		return "replace"
	case OpAppend:
		return "append"
	case OpPrepend:
		return "prepend"
	case OpDelete:
		return "delete"
	case OpIncrement:
		return "incr"
	case OpDecrement:
		return "decr"
	case OpTouch:
		return "touch"
	case OpGAT:
		return "gat"
	case OpFlush:
		return "flush_all"
	case OpStat:
		return "stats"
	case OpNoop:
		return "noop"
	case OpVersion:
		return "version"
	case OpQuit:
		return "quit"
	case OpTxBegin:
		return "txbegin"
	case OpTxCommit:
		return "txcommit"
	case OpTxAbort:
		return "txabort"
	default:
		return fmt.Sprintf("op_0x%02x", op)
	}
}

// dispatchBinary routes one parsed binary frame. Affinity defaults to
// shared (-1); the single-key arms note the key's shard once validated.
// Quiet-get runs stay shared: they batch many keys across shards.
func (c *Conn) dispatchBinary(req binHeader, extras, key, value []byte) error {
	c.noteShared()
	switch req.opcode {
	case OpTxBegin:
		return c.binTxBegin(req)
	case OpTxCommit:
		return c.binTxCommit(req)
	case OpTxAbort:
		return c.binTxAbort(req)
	}
	if c.tx != nil {
		return c.dispatchBinaryInTx(req, extras, key, value)
	}
	switch req.opcode {
	case OpGetQ, OpGetKQ:
		if len(extras) != 0 {
			// Get carries no extras; enforcing this here keeps the main
			// path's acceptance aligned with the run-extension filter in
			// takeBufferedQuietGet, which skips such frames.
			return c.binError(req, StatusInvalidArgs, []byte("Get takes no extras"))
		}
		return c.serveQuietGetRun(req, key)

	case OpGet, OpGetK:
		if len(extras) != 0 {
			return c.binError(req, StatusInvalidArgs, []byte("Get takes no extras"))
		}
		c.noteKey(key)
		val, flags, cas, ok := c.worker.Get(key)
		if !ok {
			return c.binError(req, StatusKeyNotFound, []byte("Not found"))
		}
		var fx [4]byte
		binary.BigEndian.PutUint32(fx[:], flags)
		replyKey := []byte(nil)
		if req.opcode == OpGetK {
			replyKey = key
		}
		return c.binReply(req, StatusOK, fx[:], replyKey, val, cas)

	case OpSet, OpAdd, OpReplace:
		if len(extras) < 8 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		flags := binary.BigEndian.Uint32(extras[0:4])
		exptime := absoluteExptime(c.worker, uint64(binary.BigEndian.Uint32(extras[4:8])))
		c.noteKey(key)
		var res engine.StoreResult
		switch {
		case req.cas != 0:
			res = c.worker.CAS(key, flags, exptime, value, req.cas)
		case req.opcode == OpSet:
			res = c.worker.Set(key, flags, exptime, value)
		case req.opcode == OpAdd:
			res = c.worker.Add(key, flags, exptime, value)
		default:
			res = c.worker.Replace(key, flags, exptime, value)
		}
		switch res {
		case engine.Stored:
			return c.binReply(req, StatusOK, nil, nil, nil, 0)
		case engine.Exists:
			return c.binError(req, StatusKeyExists, []byte("Data exists for key"))
		case engine.NotFound:
			return c.binError(req, StatusKeyNotFound, []byte("Not found"))
		case engine.TooLarge:
			return c.binError(req, StatusValueTooLarge, []byte("Too large"))
		case engine.OutOfMemory:
			return c.binError(req, StatusOutOfMemory, []byte("Out of memory"))
		default:
			return c.binError(req, StatusItemNotStored, []byte("Not stored"))
		}

	case OpAppend, OpPrepend:
		c.noteKey(key)
		var res engine.StoreResult
		if req.opcode == OpAppend {
			res = c.worker.Append(key, value)
		} else {
			res = c.worker.Prepend(key, value)
		}
		if res == engine.Stored {
			return c.binReply(req, StatusOK, nil, nil, nil, 0)
		}
		return c.binError(req, StatusItemNotStored, []byte("Not stored"))

	case OpTouch, OpGAT:
		if len(extras) < 4 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		exptime := absoluteExptime(c.worker, uint64(binary.BigEndian.Uint32(extras[0:4])))
		c.noteKey(key)
		if req.opcode == OpTouch {
			if c.worker.Touch(key, exptime) {
				return c.binReply(req, StatusOK, nil, nil, nil, 0)
			}
			return c.binError(req, StatusKeyNotFound, []byte("Not found"))
		}
		val, flags, cas, ok := c.worker.GetAndTouch(key, exptime)
		if !ok {
			return c.binError(req, StatusKeyNotFound, []byte("Not found"))
		}
		var fx [4]byte
		binary.BigEndian.PutUint32(fx[:], flags)
		return c.binReply(req, StatusOK, fx[:], nil, val, cas)

	case OpDelete:
		c.noteKey(key)
		if c.worker.Delete(key) {
			return c.binReply(req, StatusOK, nil, nil, nil, 0)
		}
		return c.binError(req, StatusKeyNotFound, []byte("Not found"))

	case OpIncrement, OpDecrement:
		if len(extras) < 20 {
			return c.binError(req, StatusInvalidArgs, nil)
		}
		delta := binary.BigEndian.Uint64(extras[0:8])
		initial := binary.BigEndian.Uint64(extras[8:16])
		expRaw := binary.BigEndian.Uint32(extras[16:20])
		c.noteKey(key)
		var v uint64
		var res engine.DeltaResult
		if req.opcode == OpIncrement {
			v, res = c.worker.Incr(key, delta)
		} else {
			v, res = c.worker.Decr(key, delta)
		}
		if res == engine.DeltaNotFound {
			// 0xffffffff means "do not create".
			if expRaw == 0xffffffff {
				return c.binError(req, StatusKeyNotFound, []byte("Not found"))
			}
			text := make([]byte, 0, 20)
			text = appendUintBin(text, initial)
			if sr := c.worker.Add(key, 0, absoluteExptime(c.worker, uint64(expRaw)), text); sr != engine.Stored {
				return c.binError(req, StatusOutOfMemory, []byte("Out of memory"))
			}
			v = initial
		} else if res == engine.DeltaNonNumeric {
			return c.binError(req, StatusNonNumeric, []byte("Non-numeric value"))
		}
		var out [8]byte
		binary.BigEndian.PutUint64(out[:], v)
		return c.binReply(req, StatusOK, nil, nil, out[:], 0)

	case OpFlush:
		c.worker.FlushAll()
		return c.binReply(req, StatusOK, nil, nil, nil, 0)

	case OpNoop:
		return c.binReply(req, StatusOK, nil, nil, nil, 0)

	case OpVersion:
		return c.binReply(req, StatusOK, nil, nil, []byte(Version), 0)

	case OpStat:
		// One stat per frame, terminated by an empty key/value frame.
		s := c.worker.Stats()
		stats := []struct {
			k string
			v uint64
		}{
			{"cmd_get", s.GetCmds}, {"get_hits", s.GetHits},
			{"get_misses", s.GetMisses}, {"cmd_set", s.SetCmds},
			{"curr_items", s.CurrItems}, {"evictions", s.Evictions},
			{"tm_transactions", s.STM.Commits}, {"tm_aborts", s.STM.Aborts},
		}
		for _, kv := range stats {
			var buf [20]byte
			n := copy(buf[:], appendUintBin(nil, kv.v))
			if err := c.binReplyNoFlush(req, StatusOK, nil, []byte(kv.k), buf[:n], 0); err != nil {
				return err
			}
		}
		return c.binReply(req, StatusOK, nil, nil, nil, 0)

	case OpQuit:
		c.binReply(req, StatusOK, nil, nil, nil, 0)
		return ErrQuit

	default:
		return c.binError(req, StatusUnknownCommand, []byte("Unknown command"))
	}
}

// quietGet is one frame of a pipelined quiet-get run.
type quietGet struct {
	req binHeader
	key []byte
}

// serveQuietGetRun handles a GetQ/GetKQ frame plus any directly following
// quiet-get frames already sitting in the read buffer as ONE batched
// read-only multi-get: the idiomatic pipelined multiget (GETKQ ... GETKQ,
// NOOP) becomes one engine transaction per bounded group instead of one
// transaction per key. Only fully buffered frames join the run — extension
// never blocks on the transport — so the terminating NOOP (or any non-quiet
// opcode, or a frame still in flight) is simply left for the main loop.
func (c *Conn) serveQuietGetRun(first binHeader, firstKey []byte) error {
	run := []quietGet{{req: first, key: firstKey}}
	for len(run) < engine.MultiGetBatch {
		req, key, ok := c.takeBufferedQuietGet()
		if !ok {
			break
		}
		run = append(run, quietGet{req: req, key: key})
	}
	keys := make([][]byte, len(run))
	for i := range run {
		keys[i] = run[i].key
	}
	results := c.worker.GetMulti(keys)
	for i := range run {
		r := &results[i]
		if !r.Found {
			continue // quiet miss: no reply at all
		}
		var fx [4]byte
		binary.BigEndian.PutUint32(fx[:], r.Flags)
		replyKey := []byte(nil)
		if run[i].req.opcode == OpGetKQ {
			replyKey = run[i].key
		}
		if err := c.binReplyNoFlush(run[i].req, StatusOK, fx[:], replyKey, r.Value, r.CAS); err != nil {
			return err
		}
	}
	return c.flushIfIdle()
}

// takeBufferedQuietGet consumes and returns the next request frame iff it is
// a complete, well-formed quiet get already held in the read buffer. Any
// other frame — including a malformed quiet get, which the main loop's
// validation must refuse with a proper error reply — is left untouched.
func (c *Conn) takeBufferedQuietGet() (binHeader, []byte, bool) {
	if c.r.Buffered() < 24 {
		return binHeader{}, nil, false
	}
	hdr, err := c.r.Peek(24)
	if err != nil || hdr[0] != binMagicReq || (hdr[1] != OpGetQ && hdr[1] != OpGetKQ) {
		return binHeader{}, nil, false
	}
	keyLen := binary.BigEndian.Uint16(hdr[2:4])
	extraLen := hdr[4]
	bodyLen := binary.BigEndian.Uint32(hdr[8:12])
	if extraLen != 0 || keyLen == 0 || keyLen > MaxKeyLen || uint32(keyLen) != bodyLen {
		return binHeader{}, nil, false
	}
	if c.r.Buffered() < 24+int(bodyLen) {
		return binHeader{}, nil, false // body not fully pipelined yet: don't block
	}
	req := binHeader{
		opcode:  hdr[1],
		keyLen:  keyLen,
		bodyLen: bodyLen,
		opaque:  binary.BigEndian.Uint32(hdr[12:16]),
		cas:     binary.BigEndian.Uint64(hdr[16:24]),
	}
	c.r.Discard(24)
	key := make([]byte, bodyLen)
	io.ReadFull(c.r, key) // fully buffered above; cannot fail or block
	return req, key, true
}

func appendUintBin(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, buf[i:]...)
}

func (c *Conn) binReply(req binHeader, status uint16, extras, key, value []byte, cas uint64) error {
	if err := c.binReplyNoFlush(req, status, extras, key, value, cas); err != nil {
		return err
	}
	return c.flushIfIdle()
}

func (c *Conn) binReplyNoFlush(req binHeader, status uint16, extras, key, value []byte, cas uint64) error {
	var hdr [24]byte
	hdr[0] = binMagicRes
	hdr[1] = req.opcode
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint16(hdr[6:8], status)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(hdr[12:16], req.opaque)
	binary.BigEndian.PutUint64(hdr[16:24], cas)
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	c.w.Write(extras)
	c.w.Write(key)
	_, err := c.w.Write(value)
	return err
}

func (c *Conn) binError(req binHeader, status uint16, msg []byte) error {
	return c.binReply(req, status, nil, nil, msg, 0)
}
