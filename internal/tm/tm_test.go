package tm_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/tm"
)

func TestOptionsBuilder(t *testing.T) {
	o := tm.With(tm.ReadOnly(), tm.StartSerial(), tm.Label("site"), tm.MaxRetries(3))
	want := tm.Options{ReadOnly: true, StartSerial: true, Site: "site", MaxRetries: 3}
	if o != want {
		t.Fatalf("With(...) = %+v, want %+v", o, want)
	}
	if z := tm.With(); z != (tm.Options{}) {
		t.Fatalf("With() = %+v, want zero", z)
	}
}

func TestAtomicRelaxedRoundTrip(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	v := stm.NewTWord(1)

	if err := tm.Atomic(th, tm.Options{Site: "t"}, func(tx *stm.Tx) { v.Store(tx, 2) }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if err := tm.Relaxed(th, tm.With(tm.StartSerial()), func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) }); err != nil {
		t.Fatalf("Relaxed: %v", err)
	}
	if got := v.LoadDirect(); got != 3 {
		t.Fatalf("v = %d, want 3", got)
	}
	if got := rt.Stats().StartSerial; got != 1 {
		t.Fatalf("StartSerial = %d, want 1 (the Relaxed run)", got)
	}

	tm.StoreWord(th, v, 10)
	if got := tm.AddWord(th, v, 5); got != 15 {
		t.Fatalf("AddWord = %d, want 15", got)
	}
	if got := tm.LoadWord(th, v); got != 15 {
		t.Fatalf("LoadWord = %d, want 15", got)
	}
}

func TestReadOnlyOptionReachesFastPath(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	v := stm.NewTWord(9)
	var got uint64
	if err := tm.Atomic(th, tm.With(tm.ReadOnly()), func(tx *stm.Tx) { got = v.Load(tx) }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got != 9 {
		t.Fatalf("Load = %d", got)
	}
	if rt.Stats().ROFastCommits != 1 {
		t.Fatalf("ROFastCommits = %d, want 1", rt.Stats().ROFastCommits)
	}
}

func TestMaxRetriesOptionPropagates(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	tries := 0
	err := tm.Atomic(th, tm.With(tm.MaxRetries(2)), func(tx *stm.Tx) {
		tries++
		tx.Abort()
	})
	if !errors.Is(err, stm.ErrRetryLimit) {
		t.Fatalf("err = %v, want ErrRetryLimit", err)
	}
	if tries != 2 {
		t.Fatalf("body ran %d times, want 2", tries)
	}
}

// TestFrontDoorEquivalentToRawRun is the behavioral-equivalence test that
// guarded the core.Ctx shim deletion: the tm entry points must do exactly what
// a hand-built stm.Props run does — same effects, same stats deltas, same kind
// of transaction — so callers ported off the shims (which themselves delegated
// here) observe no behavior change.
func TestFrontDoorEquivalentToRawRun(t *testing.T) {
	type counters struct {
		commits, startSerial, roFast uint64
	}
	// run executes one workload shape either through raw stm.Thread.Run with
	// hand-built Props (raw=true) or through the tm package, on a fresh
	// runtime, and returns the final word value plus the stats counters.
	run := func(raw bool) (uint64, counters) {
		rt := stm.New(stm.Config{Algorithm: stm.MLWT})
		ctx := core.New(rt).NewContext()
		th := ctx.Thread()
		v := stm.NewTWord(0)

		if raw {
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) { v.Store(tx, 5) })
			_ = th.Run(stm.Props{Kind: stm.Relaxed}, func(tx *stm.Tx) { v.Store(tx, v.Load(tx)*2) })
			_ = th.Run(stm.Props{Kind: stm.Relaxed, StartSerial: true}, func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) })
			var load, add uint64
			_ = th.Run(stm.Props{Kind: stm.Atomic, ReadOnly: true}, func(tx *stm.Tx) { load = v.Load(tx) })
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) { add = v.Add(tx, 3) })
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) { v.Store(tx, load+add) })
		} else {
			_ = tm.Atomic(th, tm.Options{}, func(tx *stm.Tx) { v.Store(tx, 5) })
			_ = tm.Relaxed(th, tm.Options{}, func(tx *stm.Tx) { v.Store(tx, v.Load(tx)*2) })
			_ = tm.Relaxed(th, tm.With(tm.StartSerial()), func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) })
			load := tm.LoadWord(th, v)
			add := tm.AddWord(th, v, 3)
			tm.StoreWord(th, v, load+add)
		}
		s := rt.Stats()
		return v.LoadDirect(), counters{s.Commits, s.StartSerial, s.ROFastCommits}
	}

	rawVal, rawStats := run(true)
	newVal, newStats := run(false)
	if rawVal != newVal {
		t.Errorf("final value: raw Props %d, tm %d", rawVal, newVal)
	}
	if rawStats != newStats {
		t.Errorf("stats deltas: raw Props %+v, tm %+v", rawStats, newStats)
	}
}

// TestTrySerialBusy pins the bounded serial acquisition used by the
// cross-shard commit path: while one thread holds the serial lock, a
// TrySerial transaction on another thread returns stm.ErrSerialBusy without
// running its body; once the lock is free it runs serially and commits.
func TestTrySerialBusy(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	holder := rt.NewThread()
	other := rt.NewThread()
	v := stm.NewTWord(0)

	hold := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = tm.Relaxed(holder, tm.With(tm.StartSerial()), func(tx *stm.Tx) {
			close(hold)
			<-release
		})
	}()
	<-hold

	ran := false
	err := tm.Relaxed(other, tm.With(tm.StartSerial(), tm.TrySerial()), func(tx *stm.Tx) { ran = true })
	if !errors.Is(err, stm.ErrSerialBusy) {
		t.Fatalf("err = %v, want ErrSerialBusy", err)
	}
	if ran {
		t.Fatal("body ran although the serial lock was busy")
	}

	close(release)
	<-done
	if err := tm.Relaxed(other, tm.With(tm.StartSerial(), tm.TrySerial()), func(tx *stm.Tx) {
		if !tx.Serial() {
			t.Error("TrySerial transaction not serial")
		}
		ran = true
		v.Store(tx, 7)
	}); err != nil {
		t.Fatalf("uncontended TrySerial: %v", err)
	}
	if !ran || v.LoadDirect() != 7 {
		t.Fatalf("uncontended TrySerial did not commit (ran=%v v=%d)", ran, v.LoadDirect())
	}
}
