package tmds

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stm"
)

func newTh() *stm.Thread { return stm.New(stm.Config{}).NewThread() }

func atomically(t *testing.T, th *stm.Thread, fn func(*stm.Tx)) {
	t.Helper()
	if err := th.Run(stm.Props{Kind: stm.Atomic}, fn); err != nil {
		t.Errorf("tx: %v", err)
	}
}

// ---------------------------------------------------------------------------
// List

func TestListBasics(t *testing.T) {
	th := newTh()
	l := NewList()
	atomically(t, th, func(tx *stm.Tx) {
		if !l.Insert(tx, 5, "five") || !l.Insert(tx, 1, "one") || !l.Insert(tx, 9, "nine") {
			t.Error("insert failed")
		}
		if l.Insert(tx, 5, "again") {
			t.Error("duplicate insert succeeded")
		}
		if !l.Contains(tx, 1) || !l.Contains(tx, 5) || !l.Contains(tx, 9) || l.Contains(tx, 2) {
			t.Error("contains wrong")
		}
		if v, ok := l.Get(tx, 5); !ok || v != "five" {
			t.Errorf("Get(5) = %v,%v", v, ok)
		}
		keys := l.Keys(tx)
		if len(keys) != 3 || keys[0] != 1 || keys[1] != 5 || keys[2] != 9 {
			t.Errorf("keys = %v", keys)
		}
		if !l.Remove(tx, 5) || l.Remove(tx, 5) {
			t.Error("remove semantics wrong")
		}
		if l.Len(tx) != 2 {
			t.Errorf("len = %d", l.Len(tx))
		}
	})
}

func TestListMatchesModelQuick(t *testing.T) {
	th := newTh()
	type op struct {
		Key    uint8
		Insert bool
	}
	f := func(ops []op) bool {
		l := NewList()
		model := map[uint64]bool{}
		ok := true
		atomically(t, th, func(tx *stm.Tx) {
			for _, o := range ops {
				k := uint64(o.Key % 32)
				if o.Insert {
					if l.Insert(tx, k, nil) == model[k] {
						ok = false
					}
					model[k] = true
				} else {
					if l.Remove(tx, k) != model[k] {
						ok = false
					}
					delete(model, k)
				}
			}
			var want []uint64
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := l.Keys(tx)
			if len(got) != len(want) {
				ok = false
				return
			}
			for i := range got {
				if got[i] != want[i] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestListConcurrentDisjointSum(t *testing.T) {
	rt := stm.New(stm.Config{})
	l := NewList()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 300; i++ {
				k := uint64(g*1000 + i)
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					l.Insert(tx, k, nil)
				})
			}
		}()
	}
	wg.Wait()
	th := rt.NewThread()
	atomically(t, th, func(tx *stm.Tx) {
		if got := l.Len(tx); got != 1800 {
			t.Errorf("len = %d, want 1800", got)
		}
		keys := l.Keys(tx)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("order violated at %d: %d >= %d", i, keys[i-1], keys[i])
			}
		}
	})
}

// ---------------------------------------------------------------------------
// HashSet

func TestHashSetBasics(t *testing.T) {
	th := newTh()
	h := NewHashSet(4)
	atomically(t, th, func(tx *stm.Tx) {
		for k := uint64(0); k < 100; k++ {
			if !h.Insert(tx, k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		if h.Len(tx) != 100 {
			t.Errorf("len = %d", h.Len(tx))
		}
		for k := uint64(0); k < 100; k += 2 {
			if !h.Remove(tx, k) {
				t.Fatalf("remove %d failed", k)
			}
		}
		for k := uint64(0); k < 100; k++ {
			want := k%2 == 1
			if h.Contains(tx, k) != want {
				t.Errorf("contains(%d) != %v", k, want)
			}
		}
	})
}

func TestHashSetConcurrentMembership(t *testing.T) {
	rt := stm.New(stm.Config{CM: stm.CMSerialize})
	h := NewHashSet(6)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 500; i++ {
				k := uint64((g*striped + i) % 256)
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					if i%3 == 0 {
						h.Remove(tx, k)
					} else {
						h.Insert(tx, k)
					}
				})
			}
		}()
	}
	wg.Wait()
	// No duplicates: removing every key exactly once must empty the set.
	th := rt.NewThread()
	atomically(t, th, func(tx *stm.Tx) {
		n := h.Len(tx)
		var removed uint64
		for k := uint64(0); k < 256; k++ {
			if h.Remove(tx, k) {
				removed++
			}
		}
		if removed != n || h.Len(tx) != 0 {
			t.Errorf("len=%d removed=%d rest=%d", n, removed, h.Len(tx))
		}
	})
}

const striped = 61

// ---------------------------------------------------------------------------
// Treap

func TestTreapBasics(t *testing.T) {
	th := newTh()
	tr := NewTreap()
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []uint64{5, 2, 8, 1, 9, 3, 7} {
			if !tr.Insert(tx, k, k*10) {
				t.Fatalf("insert %d failed", k)
			}
		}
		if tr.Insert(tx, 5, uint64(555)) {
			t.Error("re-insert reported as new")
		}
		if v, ok := tr.Get(tx, 5); !ok || v != uint64(555) {
			t.Errorf("Get(5) = %v (re-insert must replace value)", v)
		}
		if tr.Len(tx) != 7 {
			t.Errorf("len = %d", tr.Len(tx))
		}
		keys := tr.Keys(tx)
		want := []uint64{1, 2, 3, 5, 7, 8, 9}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys = %v", keys)
			}
		}
		if !tr.CheckInvariants(tx) {
			t.Error("invariants violated after inserts")
		}
		for _, k := range []uint64{1, 9, 5} {
			if !tr.Remove(tx, k) {
				t.Fatalf("remove %d failed", k)
			}
		}
		if tr.Remove(tx, 1) {
			t.Error("double remove succeeded")
		}
		if !tr.CheckInvariants(tx) {
			t.Error("invariants violated after removals")
		}
		if tr.Len(tx) != 4 {
			t.Errorf("len = %d", tr.Len(tx))
		}
	})
}

func TestTreapMatchesModelQuick(t *testing.T) {
	th := newTh()
	type op struct {
		Key    uint16
		Insert bool
	}
	f := func(ops []op) bool {
		tr := NewTreap()
		model := map[uint64]bool{}
		ok := true
		atomically(t, th, func(tx *stm.Tx) {
			for _, o := range ops {
				k := uint64(o.Key % 128)
				if o.Insert {
					if tr.Insert(tx, k, nil) == model[k] {
						ok = false
					}
					model[k] = true
				} else {
					if tr.Remove(tx, k) != model[k] {
						ok = false
					}
					delete(model, k)
				}
			}
			if !tr.CheckInvariants(tx) {
				ok = false
			}
			if int(tr.Len(tx)) != len(model) {
				ok = false
			}
			for _, k := range tr.Keys(tx) {
				if !model[k] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTreapConcurrent(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.MLWT, stm.LazyAlg, stm.NOrec} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := stm.New(stm.Config{Algorithm: alg})
			tr := NewTreap()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := rt.NewThread()
					for i := 0; i < 250; i++ {
						k := uint64((g*striped + i*7) % 512)
						_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
							if i%4 == 0 {
								tr.Remove(tx, k)
							} else {
								tr.Insert(tx, k, g)
							}
						})
					}
				}()
			}
			wg.Wait()
			th := rt.NewThread()
			atomically(t, th, func(tx *stm.Tx) {
				if !tr.CheckInvariants(tx) {
					t.Error("invariants violated after concurrent use")
				}
				keys := tr.Keys(tx)
				if uint64(len(keys)) != tr.Len(tx) {
					t.Errorf("len mismatch: walk=%d size=%d", len(keys), tr.Len(tx))
				}
			})
		})
	}
}

// ---------------------------------------------------------------------------
// Queue

func TestQueueFIFO(t *testing.T) {
	th := newTh()
	q := NewQueue()
	atomically(t, th, func(tx *stm.Tx) {
		if _, ok := q.Pop(tx); ok {
			t.Error("pop from empty succeeded")
		}
		for i := 0; i < 10; i++ {
			q.Push(tx, i)
		}
		if q.Len(tx) != 10 {
			t.Errorf("len = %d", q.Len(tx))
		}
		for i := 0; i < 10; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != i {
				t.Fatalf("pop %d = %v,%v", i, v, ok)
			}
		}
		if q.Len(tx) != 0 {
			t.Errorf("len after drain = %d", q.Len(tx))
		}
		// Interleave empties and refills (tail handling).
		q.Push(tx, "a")
		q.Pop(tx)
		q.Push(tx, "b")
		if v, _ := q.Pop(tx); v != "b" {
			t.Errorf("tail reset broken: %v", v)
		}
	})
}

func TestQueueProducersConsumers(t *testing.T) {
	rt := stm.New(stm.Config{})
	q := NewQueue()
	const producers, perP = 4, 500
	var wg sync.WaitGroup
	var consumed sync.Map
	var consumedN int64
	var mu sync.Mutex
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < perP; i++ {
				v := g*perP + i
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) { q.Push(tx, v) })
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			idle := 0
			for idle < 1000 {
				var v any
				var ok bool
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) { v, ok = q.Pop(tx) })
				if !ok {
					idle++
					continue
				}
				idle = 0
				if _, dup := consumed.LoadOrStore(v, true); dup {
					t.Errorf("value %v consumed twice", v)
					return
				}
				mu.Lock()
				consumedN++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Drain the rest single-threaded.
	th := rt.NewThread()
	for {
		var ok bool
		var v any
		atomically(t, th, func(tx *stm.Tx) { v, ok = q.Pop(tx) })
		if !ok {
			break
		}
		if _, dup := consumed.LoadOrStore(v, true); dup {
			t.Fatalf("value %v consumed twice (drain)", v)
		}
		consumedN++
	}
	if consumedN != producers*perP {
		t.Errorf("consumed %d, want %d", consumedN, producers*perP)
	}
}

// ---------------------------------------------------------------------------
// SkipList

func TestSkipListBasics(t *testing.T) {
	th := newTh()
	s := NewSkipList(0)
	atomically(t, th, func(tx *stm.Tx) {
		for _, k := range []uint64{50, 20, 80, 10, 90, 30, 70, 60, 40} {
			if !s.Insert(tx, k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		if s.Insert(tx, 50) {
			t.Error("duplicate insert succeeded")
		}
		if s.Len(tx) != 9 {
			t.Errorf("len = %d", s.Len(tx))
		}
		keys := s.Keys(tx)
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("unsorted: %v", keys)
			}
		}
		if !s.CheckInvariants(tx) {
			t.Error("invariants violated after inserts")
		}
		for _, k := range []uint64{10, 90, 50} {
			if !s.Remove(tx, k) {
				t.Fatalf("remove %d failed", k)
			}
		}
		if s.Remove(tx, 10) {
			t.Error("double remove succeeded")
		}
		if !s.Contains(tx, 20) || s.Contains(tx, 10) {
			t.Error("membership wrong after removals")
		}
		if !s.CheckInvariants(tx) {
			t.Error("invariants violated after removals")
		}
	})
}

func TestSkipListMatchesModelQuick(t *testing.T) {
	th := newTh()
	type op struct {
		Key    uint16
		Insert bool
	}
	f := func(ops []op) bool {
		s := NewSkipList(8)
		model := map[uint64]bool{}
		ok := true
		atomically(t, th, func(tx *stm.Tx) {
			for _, o := range ops {
				k := uint64(o.Key % 200)
				if o.Insert {
					if s.Insert(tx, k) == model[k] {
						ok = false
					}
					model[k] = true
				} else {
					if s.Remove(tx, k) != model[k] {
						ok = false
					}
					delete(model, k)
				}
			}
			if !s.CheckInvariants(tx) {
				ok = false
			}
			if int(s.Len(tx)) != len(model) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSkipListConcurrent(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.MLWT, stm.NOrec, stm.TML} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := stm.New(stm.Config{Algorithm: alg})
			s := NewSkipList(12)
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := rt.NewThread()
					for i := 0; i < 250; i++ {
						k := uint64((g*striped + i*11) % 600)
						_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
							if i%5 == 0 {
								s.Remove(tx, k)
							} else {
								s.Insert(tx, k)
							}
						})
					}
				}()
			}
			wg.Wait()
			th := rt.NewThread()
			atomically(t, th, func(tx *stm.Tx) {
				if !s.CheckInvariants(tx) {
					t.Error("invariants violated after concurrent use")
				}
			})
		})
	}
}
