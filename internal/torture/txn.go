package torture

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// RunTxn is the wire-transaction variant of Run: concurrent cross-shard
// transfers under a seeded fault schedule, checked against a conserved global
// invariant. A fixed set of accounts spread over at least two TM domains is
// seeded with a known number of units; workers then move units between random
// accounts with validated transactions (read both balances with their CAS,
// commit TxDecr/TxIncr through the N-domain ordered commit). A transfer only
// commits if every read validates, so a committed TxDecr can never saturate
// at zero: the validated balance is by definition still current at apply
// time. When the dust settles the units must all still be there — a torn
// cross-shard commit (one domain applied, the other not) shows up as a
// wrong total.
//
// All STM and maintenance fault points stay armed for the whole transfer
// phase. Slab allocation failure is the one exception, disabled for the same
// reason phase B of Run disables it: the apply phase of a commit is
// irrevocable, so a refused allocation inside it (an incr whose value text
// outgrows its chunk) surfaces as a per-op failure by design — which the
// conservation check could not tell apart from the lost-units bug it exists
// to catch. Run covers allocation failure; this run covers atomicity.
//
// The check phase also requires cross_shard_orec_conflicts == 0: the ordered
// commit acquires whole serial domains and must never let two shards meet on
// a single orec.
func RunTxn(cfg Config) *Report {
	if cfg.Shards < 2 {
		cfg.Shards = 2 // the subject under test is the cross-shard commit
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Branch: cfg.Branch, Seed: cfg.Seed}

	points := append(fault.StmPoints(), fault.EnginePoints()...)
	in := fault.RandomSchedule(cfg.Seed, points, cfg.MaxRate)
	in.Set(fault.SlabAllocFail, 0)

	cache := engine.New(engine.Config{
		Branch:    cfg.Branch,
		Shards:    cfg.Shards,
		MemLimit:  cfg.MemLimit,
		HashPower: cfg.HashPower,
		Automove:  true,
		Fault:     in,
		Watchdog:  2 * time.Millisecond,
	})
	cache.Start()
	if !cache.TxSupported() {
		rep.violatef("branch %s does not support wire transactions", cfg.Branch)
		cache.Stop()
		return rep
	}
	obs := cache.EnableTracing()

	// Seed the ledger before arming faults: the invariant is defined by what
	// was acknowledged, and an alloc-refused seed store would just shrink the
	// run, not test anything.
	const perAccount = 1_000_000
	accounts := make([][]byte, 8*cfg.Shards)
	wk := cache.NewWorker()
	shardsSeen := map[int]bool{}
	for i := range accounts {
		accounts[i] = []byte(fmt.Sprintf("acct-%03d", i))
		if wk.Set(accounts[i], 0, 0, []byte(strconv.Itoa(perAccount))) != engine.Stored {
			rep.violatef("seeding account %s refused with faults disarmed", accounts[i])
			cache.Stop()
			return rep
		}
		shardsSeen[cache.ShardOf(accounts[i])] = true
	}
	if len(shardsSeen) < 2 {
		// Not a cache bug, a harness bug: every transfer would be single-shard
		// and the run would never exercise the ordered commit.
		rep.violatef("accounts landed on %d shard(s); cross-shard commit untested", len(shardsSeen))
		cache.Stop()
		return rep
	}

	in.Arm()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txnTransferWorker(cache.NewWorker(), cfg, accounts, id)
		}(w)
	}
	wg.Wait()
	in.Disarm()

	// Check phase: conservation, counters, domain independence, structure.
	waitExpansion(wk, rep)
	var total uint64
	for _, acct := range accounts {
		v, _, _, ok := wk.Get(acct)
		if !ok {
			rep.violatef("account %s vanished", acct)
			continue
		}
		n, err := strconv.ParseUint(string(v), 10, 64)
		if err != nil {
			rep.violatef("account %s corrupted to %q", acct, v)
			continue
		}
		total += n
	}
	if want := uint64(len(accounts)) * perAccount; total != want {
		rep.violatef("units not conserved: ledger sums to %d, want %d (%+d)",
			total, want, int64(total)-int64(want))
	}

	s := wk.Stats()
	rep.TxCommits = s.TxCommits
	rep.TxConflicts = s.TxConflicts
	rep.TxSerialFallbacks = s.TxSerialFallbacks
	if s.TxCommits == 0 {
		rep.violatef("no wire transaction committed; run tested nothing")
	}
	if n := obs.CrossShardOrecConflicts(); n != 0 {
		rep.violatef("cross_shard_orec_conflicts = %d, want 0: shard domains shared an orec", n)
	}

	cache.Stop()
	if err := cache.ValidateQuiescent(); err != nil {
		rep.violatef("structural validation: %v", err)
	}

	rep.FaultsFired = in.TotalFired()
	rep.Faults = in.Summary()
	rep.Elapsed = time.Since(start)
	return rep
}

// txnTransferWorker issues cfg.Ops validated transfers between random
// accounts. A conflicted or per-op-failed transfer simply doesn't move units
// — both outcomes leave the ledger sum intact, which is the point. Every
// fourth transfer splits across two destinations so the commit spans up to
// three serial domains, not just the two-domain common case.
func txnTransferWorker(wk *engine.Worker, cfg Config, accounts [][]byte, id int) {
	rng := rngState(cfg.Seed, uint64(id)+0x7AB5)
	n := uint64(len(accounts))
	for op := 0; op < cfg.Ops; op++ {
		r := rng.next()
		from := accounts[r%n]
		to := accounts[(r>>16)%n]
		if string(from) == string(to) {
			continue
		}
		amount := 1 + r>>32%5

		vF, _, casF, okF := wk.Get(from)
		_, _, casT, okT := wk.Get(to)
		if !okF || !okT {
			continue // account under churn elsewhere; next iteration
		}
		bal, err := strconv.ParseUint(string(vF), 10, 64)
		if err != nil || bal < 2*amount {
			continue
		}
		reads := []engine.TxRead{{Key: from, CAS: casF}, {Key: to, CAS: casT}}
		ops := []engine.TxOp{
			{Kind: engine.TxDecr, Key: from, Delta: amount},
			{Kind: engine.TxIncr, Key: to, Delta: amount},
		}
		if r>>48%4 == 0 {
			to2 := accounts[(r>>24)%n]
			if string(to2) != string(from) && string(to2) != string(to) {
				_, _, cas2, ok2 := wk.Get(to2)
				if ok2 {
					reads = append(reads, engine.TxRead{Key: to2, CAS: cas2})
					ops[0].Delta = 2 * amount
					ops = append(ops, engine.TxOp{Kind: engine.TxIncr, Key: to2, Delta: amount})
				}
			}
		}
		wk.CommitTx(reads, ops)
	}
}
