package engine

import (
	"errors"
	"testing"

	"repro/internal/stm"
)

func TestEngineConfigValidate(t *testing.T) {
	ok := []Config{
		{},
		{Branch: ITOnCommit, STM: &stm.Config{Algorithm: stm.NOrec}},
		{Branch: Baseline, Stripes: 256, HashPower: 20, GrowthFactor: 1.5},
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}

	bad := []struct {
		c     Config
		field string
	}{
		{Config{Branch: Branch(99)}, "Branch"},
		{Config{Branch: Baseline, STM: &stm.Config{}}, "STM"},
		{Config{Branch: ITOnCommit, STM: &stm.Config{OrecBits: 40}}, "STM"},
		{Config{HashPower: 31}, "HashPower"},
		{Config{Stripes: 3}, "Stripes"},
		{Config{Stripes: -8}, "Stripes"},
		{Config{GrowthFactor: 0.9}, "GrowthFactor"},
		{Config{Watchdog: -1}, "Watchdog"},
	}
	for _, tc := range bad {
		err := tc.c.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want %s error", tc.c, tc.field)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Validate(%+v) = %v, not ErrInvalidConfig", tc.c, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != tc.field {
			t.Errorf("Validate(%+v) = %v, want field %s", tc.c, err, tc.field)
		}
	}

	// An invalid STM override unwraps to the STM sentinel too.
	err := Config{Branch: ITOnCommit, STM: &stm.Config{OrecBits: 40}}.Validate()
	if !errors.Is(err, stm.ErrInvalidConfig) {
		t.Errorf("embedded STM error does not unwrap: %v", err)
	}
}
