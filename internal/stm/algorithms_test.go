package stm

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestReadOwnWritesAcrossAlgorithms: buffered algorithms must satisfy reads
// from the redo log.
func TestReadOwnWritesAcrossAlgorithms(t *testing.T) {
	forEachAlg(t, func(t *testing.T, rt *Runtime) {
		th := rt.NewThread()
		w := NewTWord(1)
		a := NewTAny("one")
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			w.Store(tx, 2)
			a.Store(tx, "two")
			if w.Load(tx) != 2 {
				t.Error("word read-own-write failed")
			}
			if a.Load(tx) != "two" {
				t.Error("any read-own-write failed")
			}
			w.Store(tx, 3)
			if w.Load(tx) != 3 {
				t.Error("second word overwrite not visible")
			}
		})
		if w.LoadDirect() != 3 || a.LoadDirect() != "two" {
			t.Error("commit lost buffered writes")
		}
	})
}

// TestWriteSkewPrevented: two transactions each read both cells and write one;
// serializability forbids both committing on the same snapshot. We force
// overlap with a rendezvous.
func TestWriteSkewPrevented(t *testing.T) {
	for _, alg := range []Algorithm{MLWT, LazyAlg, NOrec} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			for iter := 0; iter < 200; iter++ {
				rt := New(Config{Algorithm: alg, CM: CMNone})
				x, y := NewTWord(0), NewTWord(0)
				var ready, done sync.WaitGroup
				ready.Add(2)
				done.Add(2)
				barrier := make(chan struct{})
				body := func(read, write *TWord) {
					defer done.Done()
					th := rt.NewThread()
					first := true
					_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
						if read.Load(tx) == 0 {
							if first {
								first = false
								ready.Done()
								<-barrier // both transactions have read
							}
							write.Store(tx, 1)
						}
					})
				}
				go body(x, y)
				go body(y, x)
				ready.Wait()
				close(barrier)
				done.Wait()
				if x.LoadDirect() == 1 && y.LoadDirect() == 1 {
					t.Fatalf("iter %d: write skew admitted (x=y=1)", iter)
				}
			}
		})
	}
}

// TestTimestampExtension: a reader that sees a newer version mid-transaction
// extends its snapshot instead of aborting when the read set is still valid.
//
// The writer runs in its own goroutine and is NOT awaited inside the reader's
// body: a writer's commit quiesces (privatization safety) until concurrent
// transactions finish, so a reader that blocked on the writer's return would
// deadlock by design.
func TestTimestampExtension(t *testing.T) {
	rt := New(Config{Algorithm: MLWT})
	a, b := NewTWord(1), NewTWord(10)

	done := make(chan struct{})
	th := rt.NewThread()
	attempts := 0
	var got uint64
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		attempts++
		_ = a.Load(tx)
		if attempts == 1 {
			go func() {
				defer close(done)
				wth := rt.NewThread()
				_ = wth.Run(Props{Kind: Atomic}, func(wtx *Tx) {
					b.Store(wtx, 20)
				})
			}()
			// Wait for the writer's in-place store to land, plus a grace
			// period for its version publication (it cannot finish its Run —
			// it is quiescing on us — but publication precedes quiescence).
			for b.LoadDirect() != 20 {
				runtime.Gosched()
			}
			for i := 0; i < 200; i++ {
				runtime.Gosched()
			}
		}
		got = b.Load(tx)
	})
	<-done
	if got != 20 {
		t.Errorf("final read = %d, want 20", got)
	}
	// Attempt 1 may abort only if the load raced the writer's still-locked
	// orec; the extension machinery makes a second abort impossible.
	if attempts > 2 {
		t.Errorf("reader ran %d times; timestamp extension should bound retries", attempts)
	}
}

// TestSerialLockExcludesWriters: while a serial (relaxed, irrevocable)
// transaction runs, speculative transactions must not commit.
func TestSerialLockExcludesSpeculation(t *testing.T) {
	rt := New(Config{Algorithm: MLWT})
	w := NewTWord(0)
	inSerial := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rt.NewThread()
		_ = th.Run(Props{Kind: Relaxed, StartSerial: true}, func(tx *Tx) {
			w.Store(tx, 1)
			close(inSerial)
			<-release
			w.Store(tx, 2)
		})
	}()
	<-inSerial
	committed := make(chan struct{})
	go func() {
		th := rt.NewThread()
		_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
			w.Store(tx, w.Load(tx)+10)
		})
		close(committed)
	}()
	select {
	case <-committed:
		t.Fatal("speculative transaction committed while a serial transaction held the lock")
	default:
	}
	close(release)
	<-committed
	wg.Wait()
	if got := w.LoadDirect(); got != 12 {
		t.Errorf("final = %d, want 12 (serial writes then +10)", got)
	}
}

// TestOrecFalseConflicts: many variables hashing to few orecs must still
// behave correctly (a tiny orec table maximizes collisions).
func TestOrecFalseConflicts(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, OrecBits: 2}) // 4 orecs
	words := make([]*TWord, 64)
	for i := range words {
		words[i] = NewTWord(0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 500; i++ {
				idx := (g*16 + i) % 64
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					words[idx].Store(tx, words[idx].Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	var sum uint64
	for _, w := range words {
		sum += w.LoadDirect()
	}
	if sum != 4*500 {
		t.Errorf("sum = %d, want 2000", sum)
	}
}

// TestQuickTransactionalSemantics is a property test: any sequence of
// read/write/add steps applied transactionally to TWords matches a plain
// model executed sequentially.
func TestQuickTransactionalSemantics(t *testing.T) {
	type step struct {
		Var   uint8
		Op    uint8 // 0 = add, 1 = store, 2 = load (no-op for state)
		Value uint8
	}
	rt := New(Config{})
	th := rt.NewThread()
	f := func(steps []step) bool {
		const nv = 4
		words := make([]*TWord, nv)
		model := make([]uint64, nv)
		for i := range words {
			words[i] = NewTWord(0)
		}
		err := th.Run(Props{Kind: Atomic}, func(tx *Tx) {
			for _, s := range steps {
				v := int(s.Var) % nv
				switch s.Op % 3 {
				case 0:
					words[v].Add(tx, uint64(s.Value))
				case 1:
					words[v].Store(tx, uint64(s.Value))
				case 2:
					_ = words[v].Load(tx)
				}
			}
		})
		if err != nil {
			return false
		}
		for _, s := range steps {
			v := int(s.Var) % nv
			switch s.Op % 3 {
			case 0:
				model[v] += uint64(s.Value)
			case 1:
				model[v] = uint64(s.Value)
			}
		}
		for i := range model {
			if words[i].LoadDirect() != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestLazyCommitConflict: two lazy transactions writing the same location
// under forced overlap must serialize correctly (one aborts or they order).
func TestLazyCommitTimeConflict(t *testing.T) {
	rt := New(Config{Algorithm: LazyAlg, CM: CMNone})
	w := NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 1000; i++ {
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					w.Store(tx, w.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := w.LoadDirect(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
}

// TestQuiesceNoDeadlock: many writers committing concurrently (each quiescing
// on the others) must make progress.
func TestQuiesceNoDeadlock(t *testing.T) {
	rt := New(Config{Algorithm: MLWT, CM: CMNone})
	words := make([]*TWord, 16)
	for i := range words {
		words[i] = NewTWord(0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 2000; i++ {
				w := words[(g+i)%16]
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					w.Store(tx, w.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	var sum uint64
	for _, w := range words {
		sum += w.LoadDirect()
	}
	if sum != 8*2000 {
		t.Errorf("sum = %d", sum)
	}
}

// TML coverage: the minimal global-seqlock STM must pass the same semantic
// suite as the orec-based algorithms.
func TestTMLSemantics(t *testing.T) {
	rt := New(Config{Algorithm: TML})
	th := rt.NewThread()
	w := NewTWord(1)
	a := NewTAny("x")
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		if w.Load(tx) != 1 {
			t.Error("initial load")
		}
		w.Store(tx, 2)
		a.Store(tx, "y")
		if w.Load(tx) != 2 || a.Load(tx) != "y" {
			t.Error("read-own-write")
		}
	})
	if w.LoadDirect() != 2 || a.LoadDirect() != "y" {
		t.Error("commit lost")
	}
	// Cancel rolls back and releases the writer lock.
	err := th.Run(Props{Kind: Atomic}, func(tx *Tx) {
		w.Store(tx, 99)
		tx.Cancel()
	})
	if err == nil || w.LoadDirect() != 2 {
		t.Errorf("cancel: err=%v w=%d", err, w.LoadDirect())
	}
	// The lock must be free again.
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) { w.Store(tx, 3) })
	if w.LoadDirect() != 3 {
		t.Error("post-cancel store lost")
	}
}

func TestTMLConcurrent(t *testing.T) {
	rt := New(Config{Algorithm: TML})
	ctr := NewTWord(0)
	accts := make([]*TWord, 8)
	for i := range accts {
		accts[i] = NewTWord(100)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 1500; i++ {
				from, to := (g+i)%8, (g*3+i*5+1)%8
				if from == to {
					continue
				}
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					ctr.Store(tx, ctr.Load(tx)+1)
					f := accts[from].Load(tx)
					if f == 0 {
						return
					}
					accts[from].Store(tx, f-1)
					accts[to].Store(tx, accts[to].Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	var sum uint64
	for _, a := range accts {
		sum += a.LoadDirect()
	}
	if sum != 800 {
		t.Errorf("sum = %d, want 800", sum)
	}
}

func TestTMLRetry(t *testing.T) {
	rt := New(Config{Algorithm: TML})
	flag := NewTWord(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		th := rt.NewThread()
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			if flag.Load(tx) == 0 {
				tx.Retry()
			}
		})
	}()
	th := rt.NewThread()
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) { flag.Store(tx, 1) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TML Retry never woke")
	}
}
