package stm

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig is the sentinel every *ConfigError matches via errors.Is,
// so callers can test for "some config problem" without enumerating fields.
var ErrInvalidConfig = errors.New("stm: invalid config")

// ConfigError reports one invalid Config field (or field combination). It is
// the typed replacement for the silent clamping withDefaults historically did:
// construction still tolerates zero values, but front ends that accept user
// input (flag parsing, network control planes) call Config.Validate first and
// surface the reason.
type ConfigError struct {
	Field  string // the offending Config field ("Algorithm", "CM", ...)
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("stm: invalid config: %s: %s", e.Field, e.Reason)
}

// Is makes errors.Is(err, ErrInvalidConfig) true for every ConfigError.
func (e *ConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// Validate checks the configuration for out-of-range values and meaningless
// combinations. Zero values are legal (New applies defaults); Validate only
// rejects settings that cannot mean what the user asked for.
func (c Config) Validate() error {
	if c.Algorithm < MLWT || c.Algorithm > TML {
		return &ConfigError{"Algorithm", fmt.Sprintf("unknown algorithm %d", int(c.Algorithm))}
	}
	if c.CM < CMSerialize || c.CM > CMHourglass {
		return &ConfigError{"CM", fmt.Sprintf("unknown contention manager %d", int(c.CM))}
	}
	if c.SerializeAfter < 0 {
		return &ConfigError{"SerializeAfter", "must be >= 0 (0 = default)"}
	}
	if c.HourglassAfter < 0 {
		return &ConfigError{"HourglassAfter", "must be >= 0 (0 = default)"}
	}
	if c.OrecBits < 0 || c.OrecBits > 30 {
		return &ConfigError{"OrecBits", "must be in [0, 30] (0 = default)"}
	}
	if c.HTMCapacity < 0 {
		return &ConfigError{"HTMCapacity", "must be >= 0 (0 = default)"}
	}
	if c.HTMRetries < 0 {
		return &ConfigError{"HTMRetries", "must be >= 0 (0 = default)"}
	}
	if c.WatchdogAge < 0 {
		return &ConfigError{"WatchdogAge", "must be >= 0 (0 = default)"}
	}
	if c.Algorithm == HTM && c.NoSerialLock {
		// withDefaults silently forced the lock back on; make the conflict
		// visible where a user asked for it explicitly.
		return &ConfigError{"NoSerialLock", "hardware transactions are defined by their fallback lock (§5); it cannot be removed"}
	}
	if c.Algorithm == SerialAlg && c.CM == CMHourglass {
		return &ConfigError{"CM", "hourglass gates speculative attempts; serial-only execution never aborts"}
	}
	if c.Algorithm == SerialAlg && c.CM == CMBackoff {
		return &ConfigError{"CM", "backoff spaces speculative retries; serial-only execution never aborts"}
	}
	return nil
}
