// Package memslap reproduces the workload generator of the paper's
// evaluation: memslap v1.0 run as
//
//	memslap --concurrency=x --execute-number=625000 --binary
//
// Each of x concurrent clients issues a fixed number of operations (so
// "perfect scaling corresponds to an execution time that remains constant at
// higher thread counts"), with memslap's default 9:1 get:set mix over a
// shared key space.
//
// Two transports are provided: Direct drives engine workers in-process (used
// by the benchmark harness, so the figures measure synchronization rather
// than loopback networking), and Network speaks the real text or binary
// protocol over TCP (used by cmd/memslap and the integration tests).
package memslap

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
)

// Config mirrors the memslap options the paper sets.
type Config struct {
	// Concurrency is the number of client threads (memslap --concurrency).
	Concurrency int
	// ExecuteNumber is operations per client (memslap --execute-number;
	// 625000 in the paper — scale down for quick runs).
	ExecuteNumber int
	// SetFraction is the fraction of sets (memslap default: 0.1).
	SetFraction float64
	// KeySpace is the number of distinct keys (memslap win_size-ish default:
	// 10000).
	KeySpace int
	// ValueSize is the value payload size (memslap default 1024).
	ValueSize int
	// Binary selects the binary protocol on the network transport
	// (--binary, as the paper runs).
	Binary bool
	// Zipf skews key popularity with a Zipf-like distribution (s≈1) instead
	// of uniform choice, concentrating traffic on hot keys — the contention
	// regime where TM algorithm and CM choice matter most.
	Zipf bool
	// Reconnect, when >0, makes each network client close and re-dial its
	// connection every Reconnect operations — connection churn that stresses
	// the accept path, the MaxConns slot accounting, and per-connection
	// worker setup/teardown. Ignored by the direct transport.
	Reconnect int
	// Seed makes runs reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Concurrency == 0 {
		c.Concurrency = 1
	}
	if c.ExecuteNumber == 0 {
		c.ExecuteNumber = 10000
	}
	if c.SetFraction == 0 {
		c.SetFraction = 0.1
	}
	if c.KeySpace == 0 {
		c.KeySpace = 10000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
	return c
}

// Result summarizes one run.
type Result struct {
	Duration time.Duration
	Ops      uint64
	Gets     uint64
	Sets     uint64
	Hits     uint64
	Errors   uint64
}

// OpsPerSec returns throughput.
func (r Result) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// rng is a per-client xorshift64* generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func key(buf []byte, n int) []byte {
	return fmt.Appendf(buf[:0], "memslap-key-%08d", n)
}

func value(n, size int) []byte {
	v := bytes.Repeat([]byte{byte('a' + n%26)}, size)
	copy(v, fmt.Sprintf("val-%d-", n))
	return v
}

// clientOps runs one client's operation stream against any executor.
type executor interface {
	get(key []byte) (hit bool, err error)
	set(key, val []byte) error
}

// zipfPick maps a uniform random draw to a Zipf-like rank over n keys using
// the inverse-CDF approximation rank ≈ n^u - 1 (s = 1), cheap enough for the
// hot path and heavy-tailed enough to concentrate traffic.
func zipfPick(u uint64, n int) int {
	// Normalize to (0,1], then exponentiate: n^x = 2^(x*log2(n)).
	x := float64(u>>11) / float64(1<<53)
	if x <= 0 {
		x = 1.0 / float64(1<<53)
	}
	log2n := 0.0
	for m := n; m > 1; m >>= 1 {
		log2n++
	}
	rank := int(pow2(x*log2n)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// pow2 computes 2^y for y >= 0 without importing math (stdlib-only habit
// aside, this keeps the generator allocation- and call-free).
func pow2(y float64) float64 {
	i := int(y)
	frac := y - float64(i)
	p := 1.0
	for ; i > 0; i-- {
		p *= 2
	}
	// 2^frac ≈ 1 + frac*(0.6931 + frac*(0.2402 + frac*0.0555)) (Taylor-ish)
	return p * (1 + frac*(0.69314718+frac*(0.24022651+frac*0.05550411)))
}

func drive(id int, cfg Config, ex executor) (gets, sets, hits, errs uint64) {
	r := rng{s: cfg.Seed + uint64(id)*0x9E3779B97F4A7C15 + 1}
	setThreshold := uint64(cfg.SetFraction * float64(^uint64(0)))
	kbuf := make([]byte, 0, 32)
	val := value(id, cfg.ValueSize)
	for i := 0; i < cfg.ExecuteNumber; i++ {
		var kn int
		if cfg.Zipf {
			kn = zipfPick(r.next(), cfg.KeySpace)
		} else {
			kn = int(r.next() % uint64(cfg.KeySpace))
		}
		k := key(kbuf, kn)
		if r.next() < setThreshold {
			sets++
			if err := ex.set(k, val); err != nil {
				errs++
			}
		} else {
			gets++
			hit, err := ex.get(k)
			if err != nil {
				errs++
			} else if hit {
				hits++
			}
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Direct transport

type directExec struct{ w *engine.Worker }

func (d directExec) get(k []byte) (bool, error) {
	_, _, _, ok := d.w.Get(k)
	return ok, nil
}

func (d directExec) set(k, v []byte) error {
	if res := d.w.Set(k, 0, 0, v); res != engine.Stored {
		return fmt.Errorf("memslap: set: %v", res)
	}
	return nil
}

// RunDirect drives the cache in-process with cfg.Concurrency workers.
func RunDirect(c *engine.Cache, cfg Config) Result {
	cfg = cfg.withDefaults()
	workers := make([]*engine.Worker, cfg.Concurrency)
	for i := range workers {
		workers[i] = c.NewWorker()
	}
	var res Result
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			gets, sets, hits, errs := drive(i, cfg, directExec{w: workers[i]})
			mu.Lock()
			res.Gets += gets
			res.Sets += sets
			res.Hits += hits
			res.Errors += errs
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Ops = res.Gets + res.Sets
	return res
}

// ---------------------------------------------------------------------------
// Network transport

// RunNetwork drives a server at addr with cfg.Concurrency connections using
// the text protocol, or the binary protocol when cfg.Binary is set.
func RunNetwork(addr string, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	clients := make([]*reconnExec, cfg.Concurrency)
	for i := range clients {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, c := range clients[:i] {
				c.conn.Close()
			}
			return Result{}, err
		}
		clients[i] = &reconnExec{
			addr:   addr,
			binary: cfg.Binary,
			every:  cfg.Reconnect,
			conn:   conn,
			inner:  newNetExec(conn, cfg.Binary),
		}
	}
	defer func() {
		for _, c := range clients {
			c.conn.Close()
		}
	}()

	var res Result
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			gets, sets, hits, errs := drive(i, cfg, clients[i])
			mu.Lock()
			res.Gets += gets
			res.Sets += sets
			res.Hits += hits
			res.Errors += errs
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Ops = res.Gets + res.Sets
	return res, nil
}

func newNetExec(conn net.Conn, binary bool) executor {
	if binary {
		return &binClient{r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	}
	return &textClient{r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// reconnExec wraps a network executor with the -reconnect behavior: after
// every N operations the connection is torn down and re-dialed, so a long
// run continuously exercises the server's accept, registration, and
// teardown paths instead of settling into long-lived connections.
type reconnExec struct {
	addr   string
	binary bool
	every  int // 0 = never reconnect
	ops    int
	conn   net.Conn
	inner  executor
}

func (e *reconnExec) cycle() error {
	if e.every <= 0 || e.ops < e.every {
		return nil
	}
	e.conn.Close()
	conn, err := net.Dial("tcp", e.addr)
	if err != nil {
		return err
	}
	e.conn, e.inner, e.ops = conn, newNetExec(conn, e.binary), 0
	return nil
}

func (e *reconnExec) get(k []byte) (bool, error) {
	if err := e.cycle(); err != nil {
		return false, err
	}
	e.ops++
	return e.inner.get(k)
}

func (e *reconnExec) set(k, v []byte) error {
	if err := e.cycle(); err != nil {
		return err
	}
	e.ops++
	return e.inner.set(k, v)
}

// textClient speaks the text protocol.
type textClient struct {
	r *bufio.Reader
	w *bufio.Writer
}

func (c *textClient) set(k, v []byte) error {
	fmt.Fprintf(c.w, "set %s 0 0 %d\r\n", k, len(v))
	c.w.Write(v)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return err
	}
	if line != "STORED\r\n" {
		return fmt.Errorf("memslap: set reply %q", line)
	}
	return nil
}

func (c *textClient) get(k []byte) (bool, error) {
	fmt.Fprintf(c.w, "get %s\r\n", k)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	hit := false
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return false, err
		}
		if line == "END\r\n" {
			return hit, nil
		}
		var key string
		var flags, n int
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &key, &flags, &n); err != nil {
			return false, fmt.Errorf("memslap: get reply %q", line)
		}
		if _, err := io.CopyN(io.Discard, c.r, int64(n)+2); err != nil {
			return false, err
		}
		hit = true
	}
}

// binClient speaks the binary protocol (Get/Set only, as memslap does).
type binClient struct {
	r *bufio.Reader
	w *bufio.Writer
}

func (c *binClient) frame(opcode byte, extras, key, value []byte) error {
	var hdr [24]byte
	hdr[0] = 0x80
	hdr[1] = opcode
	hdr[2] = byte(len(key) >> 8)
	hdr[3] = byte(len(key))
	hdr[4] = byte(len(extras))
	body := len(extras) + len(key) + len(value)
	hdr[8] = byte(body >> 24)
	hdr[9] = byte(body >> 16)
	hdr[10] = byte(body >> 8)
	hdr[11] = byte(body)
	c.w.Write(hdr[:])
	c.w.Write(extras)
	c.w.Write(key)
	c.w.Write(value)
	return c.w.Flush()
}

func (c *binClient) readRes() (status uint16, bodyLen int, err error) {
	var hdr [24]byte
	if _, err = io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, 0, err
	}
	status = uint16(hdr[6])<<8 | uint16(hdr[7])
	bodyLen = int(hdr[8])<<24 | int(hdr[9])<<16 | int(hdr[10])<<8 | int(hdr[11])
	if _, err = io.CopyN(io.Discard, c.r, int64(bodyLen)); err != nil {
		return 0, 0, err
	}
	return status, bodyLen, nil
}

func (c *binClient) set(k, v []byte) error {
	extras := make([]byte, 8) // flags 0, exptime 0
	if err := c.frame(0x01, extras, k, v); err != nil {
		return err
	}
	status, _, err := c.readRes()
	if err != nil {
		return err
	}
	if status != 0 {
		return fmt.Errorf("memslap: binary set status %#x", status)
	}
	return nil
}

func (c *binClient) get(k []byte) (bool, error) {
	if err := c.frame(0x00, nil, k, nil); err != nil {
		return false, err
	}
	status, _, err := c.readRes()
	if err != nil {
		return false, err
	}
	return status == 0, nil
}
