package stm

import (
	"runtime"
	"time"
)

// Condition synchronization.
//
// §5 of the paper: "The Specification Must Address Condition Synchronization
// ... Given the widespread use of condition variables in real-world programs,
// it is essential that the specification provide a solution. Otherwise, TM
// adoption will remain limited." The paper lists candidate mechanisms; this
// file implements the first one it cites — the `retry` of composable memory
// transactions (Harris et al., PPoPP 2005, the paper's [12]) — so the
// repository can demonstrate what the Draft specification was missing.
//
// Tx.Retry aborts the transaction and blocks the thread until some location
// in the transaction's read set is modified by another commit, then re-runs
// the body. Because the wait predicate is exactly the read set, the classic
// condvar pitfalls (lost wake-ups, spurious predicates, signaling protocol)
// disappear: the Figure 2 maintenance-thread pattern becomes
//
//	th.Run(props, func(tx *stm.Tx) {
//	    if !workAvailable(tx) {
//	        tx.Retry()
//	    }
//	    takeWork(tx)
//	})
//
// with no semaphore, no mx_running flag, and no manual transformation.

// retrySignal is thrown by Tx.Retry and handled by the run loop.
type retrySignal struct{}

// Retry aborts the transaction and blocks until another transaction commits a
// change to something this attempt read, then re-executes the body. The read
// set must be non-empty (otherwise nothing could ever wake the transaction).
// In serial-irrevocable mode the wait degrades to yield-and-re-run, since an
// irrevocable transaction has no tracked read set.
func (tx *Tx) Retry() {
	if !tx.serial && tx.algo != TML &&
		len(tx.reads) == 0 && len(tx.nReadsW) == 0 && len(tx.nReadsA) == 0 {
		panic("stm: Retry with an empty read set would never wake")
	}
	panic(retrySignal{})
}

// waitReadSetChange blocks until the rolled-back attempt's read set is dirty.
// Called between rollback and the next begin; the attempt's logs are still
// intact. Wake-ups may be spurious (an orec rollback restores its version, a
// colliding location shares the orec): the re-run then simply retries again,
// which is correct, only wasteful.
func (tx *Tx) waitReadSetChange() {
	if tx.serial {
		runtime.Gosched()
		return
	}
	if tx.algo == TML {
		// Invisible readers keep no read set; wait for any global commit.
		seq := tx.rt.nseq.Load()
		spins := 0
		for tx.rt.nseq.Load() == seq {
			spins++
			if spins < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
		return
	}
	spins := 0
	for {
		switch tx.algo {
		case NOrec:
			for _, r := range tx.nReadsW {
				if r.p.Load() != r.v {
					return
				}
			}
			for _, r := range tx.nReadsA {
				if r.a.p.Load() != r.b {
					return
				}
			}
		default: // orec-based: MLWT, HTM, Lazy
			for _, r := range tx.reads {
				if r.o.v.Load() != r.ver {
					return
				}
			}
		}
		spins++
		switch {
		case spins < 64:
			runtime.Gosched()
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
}
