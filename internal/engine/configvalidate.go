package engine

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrInvalidConfig is the sentinel every engine *ConfigError matches via
// errors.Is, mirroring stm.ErrInvalidConfig one layer up.
var ErrInvalidConfig = errors.New("engine: invalid config")

// ConfigError reports one invalid engine.Config field. New still applies
// defaults silently for zero values; front ends that accept user input (flag
// parsing) call Config.Validate first so a nonsense request is refused with
// the field and reason instead of being clamped or panicking deep inside New.
type ConfigError struct {
	Field  string
	Reason string
	// Err is the underlying cause when the problem lives in an embedded
	// configuration (the STM override); nil otherwise.
	Err error
}

func (e *ConfigError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("engine: invalid config: %s: %s: %v", e.Field, e.Reason, e.Err)
	}
	return fmt.Sprintf("engine: invalid config: %s: %s", e.Field, e.Reason)
}

// Is makes errors.Is(err, ErrInvalidConfig) true for every ConfigError.
func (e *ConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// Unwrap exposes the embedded cause, so errors.Is(err, stm.ErrInvalidConfig)
// also holds when the STM override is the culprit.
func (e *ConfigError) Unwrap() error { return e.Err }

// Validate checks the configuration for values New would either clamp
// silently or trip over. Zero values are legal (New applies defaults);
// Validate only rejects settings that cannot mean what the user asked for.
func (c Config) Validate() error {
	if _, ok := branchNames[c.Branch]; !ok {
		return &ConfigError{Field: "Branch", Reason: fmt.Sprintf("unknown branch %d", int(c.Branch))}
	}
	if c.STM != nil {
		if !configFor(c.Branch).tm {
			return &ConfigError{Field: "STM", Reason: fmt.Sprintf("branch %s is not transactional; an STM override is meaningless", c.Branch)}
		}
		if err := c.STM.Validate(); err != nil {
			return &ConfigError{Field: "STM", Reason: "invalid STM override", Err: err}
		}
	}
	if c.Shards < 0 || c.Shards > 1024 {
		return &ConfigError{Field: "Shards", Reason: "must be in [0, 1024] (0 = GOMAXPROCS)"}
	}
	if c.HashPower > 30 {
		return &ConfigError{Field: "HashPower", Reason: "must be in [0, 30] (0 = default)"}
	}
	if c.Stripes < 0 || (c.Stripes > 0 && bits.OnesCount(uint(c.Stripes)) != 1) {
		return &ConfigError{Field: "Stripes", Reason: "must be a power of two (0 = default)"}
	}
	if c.GrowthFactor != 0 && c.GrowthFactor <= 1 {
		return &ConfigError{Field: "GrowthFactor", Reason: "must be > 1 (0 = default)"}
	}
	if c.Watchdog < 0 {
		return &ConfigError{Field: "Watchdog", Reason: "must be >= 0 (0 = disabled)"}
	}
	if c.TMCtl != nil {
		if !configFor(c.Branch).tm {
			return &ConfigError{Field: "TMCtl", Reason: fmt.Sprintf("branch %s is not transactional; there is nothing to control", c.Branch)}
		}
		if c.STM != nil && c.STM.NoSerialLock {
			return &ConfigError{Field: "TMCtl", Reason: "NoSerialLock runtimes cannot quiesce, so their configuration is frozen"}
		}
	}
	return nil
}
