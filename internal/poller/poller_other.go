//go:build !linux

package poller

func newPlatform(onReady func(Token)) (Poller, error) {
	return NewFallback(onReady)
}
