package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
)

// startServer boots a wire-transaction-capable server on a loopback port.
func startServer(t *testing.T, branch engine.Branch, shards int) string {
	t.Helper()
	c := engine.New(engine.Config{Branch: branch, HashPower: 10, Shards: shards, MemLimit: 32 << 20})
	c.Start()
	s, err := server.Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return s.Addr()
}

func dial(t *testing.T, addr string, opts ...Option) *Client {
	t.Helper()
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicOps(t *testing.T) {
	addr := startServer(t, engine.ITMax, 2)
	c := dial(t, addr)

	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := c.Add("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("Add on existing = %v, want ErrNotStored", err)
	}
	items, err := c.Gets("k", "missing")
	if err != nil || len(items) != 1 || items[0].CAS == 0 {
		t.Fatalf("Gets = %+v, %v", items, err)
	}
	if err := c.CompareAndSwap("k", []byte("v2"), items[0].CAS); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if err := c.CompareAndSwap("k", []byte("v3"), items[0].CAS); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale CAS = %v, want ErrCASConflict", err)
	}
	if err := c.Set("n", []byte("10")); err != nil {
		t.Fatalf("Set n: %v", err)
	}
	if v, err := c.Incr("n", 5); err != nil || v != 15 {
		t.Fatalf("Incr = %d, %v", v, err)
	}
	if v, err := c.Decr("n", 3); err != nil || v != 12 {
		t.Fatalf("Decr = %d, %v", v, err)
	}
	if ok, err := c.Delete("k"); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("k survived delete")
	}
	if ver, err := c.Version(); err != nil || ver == "" {
		t.Fatalf("Version = %q, %v", ver, err)
	}
}

func TestTxCommit(t *testing.T) {
	addr := startServer(t, engine.ITMax, 4)
	c := dial(t, addr)
	if err := c.Set("a", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", []byte("100")); err != nil {
		t.Fatal(err)
	}

	err := c.Tx(func(tx *Tx) error {
		v, ok, err := tx.Get("a")
		if err != nil || !ok {
			return fmt.Errorf("read a: %q %v %v", v, ok, err)
		}
		tx.DecrBy("a", 30)
		tx.IncrBy("b", 30)
		tx.Set("log", []byte("a->b:30"))
		return nil
	})
	if err != nil {
		t.Fatalf("Tx: %v", err)
	}
	for k, want := range map[string]string{"a": "70", "b": "130", "log": "a->b:30"} {
		v, ok, err := c.Get(k)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("%s = %q, %v, %v (want %q)", k, v, ok, err, want)
		}
	}
}

func TestTxReadYourWrites(t *testing.T) {
	addr := startServer(t, engine.ITMax, 2)
	c := dial(t, addr)
	if err := c.Set("k", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	err := c.Tx(func(tx *Tx) error {
		tx.Set("k", []byte("pending"))
		v, ok, err := tx.Get("k")
		if err != nil || !ok || string(v) != "pending" {
			return fmt.Errorf("read-your-writes: %q %v %v", v, ok, err)
		}
		tx.Delete("k")
		if _, ok, _ := tx.Get("k"); ok {
			return fmt.Errorf("read-your-deletes failed")
		}
		// A key never written in this tx reads committed state.
		if _, ok, err := tx.Get("other"); ok || err != nil {
			return fmt.Errorf("other = %v %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Tx: %v", err)
	}
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("delete did not commit")
	}
}

func TestTxCallbackErrorAborts(t *testing.T) {
	addr := startServer(t, engine.ITMax, 2)
	c := dial(t, addr)
	boom := errors.New("boom")
	err := c.Tx(func(tx *Tx) error {
		tx.Set("never", []byte("x"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Tx = %v, want boom", err)
	}
	if _, ok, _ := c.Get("never"); ok {
		t.Fatal("aborted transaction committed a write")
	}
	// The connection is reusable after an abort.
	if err := c.Set("after", []byte("y")); err != nil {
		t.Fatalf("Set after abort: %v", err)
	}
}

func TestTxConflictRetries(t *testing.T) {
	addr := startServer(t, engine.ITMax, 2)
	c := dial(t, addr)
	interferer := dial(t, addr)
	if err := c.Set("hot", []byte("0")); err != nil {
		t.Fatal(err)
	}

	// First attempt reads, then the interferer moves the key, so commit
	// conflicts; the retry sees the new value and wins.
	attempts := 0
	err := c.Tx(func(tx *Tx) error {
		attempts++
		if _, _, err := tx.Get("hot"); err != nil {
			return err
		}
		if attempts == 1 {
			if err := interferer.Set("hot", []byte("moved")); err != nil {
				return err
			}
		}
		tx.Set("out", []byte("done"))
		return nil
	})
	if err != nil {
		t.Fatalf("Tx: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if v, ok, _ := c.Get("out"); !ok || string(v) != "done" {
		t.Fatalf("out = %q, %v", v, ok)
	}
}

func TestTxConflictExhaustsRetries(t *testing.T) {
	addr := startServer(t, engine.ITMax, 2)
	c := dial(t, addr, WithMaxTxRetries(2))
	interferer := dial(t, addr)
	if err := c.Set("hot", []byte("0")); err != nil {
		t.Fatal(err)
	}
	err := c.Tx(func(tx *Tx) error {
		if _, _, err := tx.Get("hot"); err != nil {
			return err
		}
		// Invalidate our own read set every single attempt.
		if _, err := interferer.Incr("hot", 1); err != nil {
			return err
		}
		return nil
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("Tx = %v, want ErrConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Key != "hot" {
		t.Fatalf("conflict error = %#v", err)
	}
}

func TestTxNotSupported(t *testing.T) {
	addr := startServer(t, engine.Baseline, 1)
	c := dial(t, addr)
	err := c.Tx(func(tx *Tx) error { return nil })
	if !errors.Is(err, ErrNotSupported) {
		t.Fatalf("Tx on Baseline = %v, want ErrNotSupported", err)
	}
	// Plain commands still work on lock branches.
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
}

// TestTxConcurrentTransfers drives concurrent conflicting cross-shard
// transfers through the full client/server stack and checks conservation:
// the end-to-end version of the engine-level invariant test.
func TestTxConcurrentTransfers(t *testing.T) {
	addr := startServer(t, engine.ITMax, 4)
	seed := dial(t, addr)
	const accounts = 6
	const perAccount = 500
	for i := 0; i < accounts; i++ {
		if err := seed.Set(fmt.Sprintf("acct%d", i), []byte(fmt.Sprint(perAccount))); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	const transfersEach = 40
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, WithMaxTxRetries(50))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < transfersEach; i++ {
				from := fmt.Sprintf("acct%d", (g+i)%accounts)
				to := fmt.Sprintf("acct%d", (g+i+1+g%2)%accounts)
				if from == to {
					continue
				}
				err := c.Tx(func(tx *Tx) error {
					v, ok, err := tx.Get(from)
					if err != nil {
						return err
					}
					if !ok || string(v) == "0" {
						return nil // insufficient funds: commit empty read-only tx
					}
					tx.DecrBy(from, 1)
					tx.IncrBy(to, 1)
					return nil
				})
				if err != nil && !errors.Is(err, ErrConflict) {
					errCh <- fmt.Errorf("worker %d transfer %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	total := 0
	for i := 0; i < accounts; i++ {
		v, ok, err := seed.Get(fmt.Sprintf("acct%d", i))
		if err != nil || !ok {
			t.Fatalf("acct%d: %v %v", i, ok, err)
		}
		var n int
		fmt.Sscanf(string(v), "%d", &n)
		total += n
	}
	if total != accounts*perAccount {
		t.Fatalf("total = %d, want %d", total, accounts*perAccount)
	}
	stats, err := seed.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["tx_commits"] == "0" || stats["tx_commits"] == "" {
		t.Fatalf("tx_commits = %q", stats["tx_commits"])
	}
	t.Logf("tx_commits=%s tx_conflicts=%s tx_serial_fallbacks=%s",
		stats["tx_commits"], stats["tx_conflicts"], stats["tx_serial_fallbacks"])
}
